# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all check build test race cover bench benchfast bench-json benchdiff experiments examples fmt vet lint clean

all: build test

# Everything a change must keep green before it lands: build, vet, the
# module's own analysis passes, the full test suite, the race detector
# over the concurrency-heavy packages, and one fast benchmark pass to
# catch perf-path breakage.
check: build vet lint test race-hot benchfast

.PHONY: race-hot
race-hot:
	$(GO) test -race ./internal/store ./internal/core ./internal/occ ./internal/txn ./internal/transport ./internal/logstore ./internal/wal ./internal/service

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

# One quick pass over every figure/ablation benchmark.
bench:
	$(GO) test -bench=. -benchmem -benchtime=1x .

# Fast hot-path benchmarks only (store contention, shipping allocations):
# seconds, suitable for every edit-compile cycle and for `make check`.
benchfast:
	$(GO) test -run xxx -bench 'BenchmarkStoreParallel|BenchmarkStoreViewParallel|BenchmarkApplyGroup' -benchmem -benchtime=100000x ./internal/store
	$(GO) test -run xxx -bench 'BenchmarkReadMostly' -benchmem -benchtime=20000x ./internal/store
	$(GO) test -run xxx -bench 'BenchmarkShipperAllocs' -benchmem -benchtime=10000x ./internal/core
	$(GO) test -run xxx -bench 'BenchmarkStoreReadWrite|BenchmarkShippedCommit' -benchmem -benchtime=10000x .
	$(GO) test -run xxx -bench 'BenchmarkTokenize|BenchmarkServiceThroughput' -benchmem -benchtime=1000x ./internal/service

# Machine-readable hot-path benchmark results, one JSON file per
# package (BENCH_store.json, BENCH_core.json, BENCH_wal.json): the
# perf trajectory CI archives on every run.
bench-json:
	$(GO) test -run xxx -bench 'BenchmarkStoreParallel|BenchmarkStoreViewParallel|BenchmarkApplyGroup' -benchmem -benchtime=100000x ./internal/store | $(GO) run ./cmd/rodain-benchjson -o BENCH_store.json
	$(GO) test -run xxx -bench 'BenchmarkShipperAllocs|BenchmarkMirrorApplyParallel|BenchmarkEngineParallel' -benchmem -benchtime=10000x ./internal/core | $(GO) run ./cmd/rodain-benchjson -o BENCH_core.json
	$(GO) test -run xxx -bench 'BenchmarkOCCContention|BenchmarkDoomedPoll' -benchmem -benchtime=10000x ./internal/occ | $(GO) run ./cmd/rodain-benchjson -o BENCH_occ.json
	$(GO) test -run xxx -bench 'BenchmarkRecoverParallel' -benchmem -benchtime=3x ./internal/wal | $(GO) run ./cmd/rodain-benchjson -o BENCH_wal.json
	$(GO) test -run xxx -bench 'BenchmarkGroupCommit|BenchmarkTransientFsync' -benchmem -benchtime=5000x ./internal/core | $(GO) run ./cmd/rodain-benchjson -o BENCH_ship.json
	$(GO) test -run xxx -bench 'BenchmarkCheckpointPause|BenchmarkRecoverFromCheckpoint' -benchmem -benchtime=3x ./internal/core | $(GO) run ./cmd/rodain-benchjson -o BENCH_ckpt.json
	( $(GO) test -run xxx -bench 'BenchmarkReadMostly' -benchmem -benchtime=50000x ./internal/store ; \
	  $(GO) test -run xxx -bench 'BenchmarkReadOnlyTxn' -benchmem -benchtime=5000x ./internal/core ) | $(GO) run ./cmd/rodain-benchjson -o BENCH_read.json
	$(GO) test -run xxx -bench 'BenchmarkTokenize|BenchmarkServiceThroughput' -benchmem -benchtime=2000x ./internal/service | $(GO) run ./cmd/rodain-benchjson -o BENCH_service.json

# Per-benchmark deltas between two bench-json snapshots (ns/op, allocs,
# custom metrics), flagging regressions past THRESHOLD percent:
#   make benchdiff OLD=baseline/BENCH_core.json NEW=BENCH_core.json
THRESHOLD ?= 10
benchdiff:
	$(GO) run ./cmd/rodain-benchdiff -threshold $(THRESHOLD) $(OLD) $(NEW)

# Paper-scale regeneration of every figure (minutes).
experiments:
	$(GO) run ./cmd/rodain-experiments -fig all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/recovery
	$(GO) run ./examples/numbertranslation
	$(GO) run ./examples/failover
	$(GO) run ./examples/billing
	$(GO) run ./examples/sharded
	$(GO) run ./examples/simulation -count 2500 -reps 3

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

# rodain-vet: the module's own go/analysis passes — wall-clock use,
# ignored log-write errors, atomic-field discipline, stripe lock order
# and borrowed-view escapes (DESIGN.md §9).
lint:
	$(GO) run ./cmd/rodain-vet ./...

clean:
	rm -f test_output.txt bench_output.txt
