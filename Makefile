# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test race cover bench experiments examples fmt vet clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

# One quick pass over every figure/ablation benchmark.
bench:
	$(GO) test -bench=. -benchmem -benchtime=1x .

# Paper-scale regeneration of every figure (minutes).
experiments:
	$(GO) run ./cmd/rodain-experiments -fig all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/recovery
	$(GO) run ./examples/numbertranslation
	$(GO) run ./examples/failover
	$(GO) run ./examples/billing
	$(GO) run ./examples/sharded
	$(GO) run ./examples/simulation -count 2500 -reps 3

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

clean:
	rm -f test_output.txt bench_output.txt
