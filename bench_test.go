package rodain_test

// Benchmark harness: one benchmark per figure/table of the paper (quick
// settings — `cmd/rodain-experiments` runs the paper-scale versions) plus
// micro-benchmarks of the load-bearing components. Figure benchmarks
// report the key series points as custom metrics (miss ratios in
// percent).

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	. "repro"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/logstore"
	"repro/internal/object"
	"repro/internal/occ"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/txn"
	"repro/internal/wal"
	"repro/internal/workload"
)

func benchOptions() experiments.Options {
	return experiments.Options{Reps: 1, Count: 1200, DBSize: 5000, Seed: 1}
}

// reportSeries exposes each series' value at the given x as a metric.
func reportSeries(b *testing.B, r experiments.Result, x float64, unitPrefix string) {
	b.Helper()
	for _, s := range r.Series {
		for i := range s.X {
			if s.X[i] == x {
				b.ReportMetric(100*s.Y[i], fmt.Sprintf("%s:%s_miss%%", unitPrefix, sanitize(s.Name)))
			}
		}
	}
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			out = append(out, r)
		case r == ' ':
			out = append(out, '-')
		}
	}
	return string(out)
}

// BenchmarkFig2a regenerates Fig 2(a): normal vs transient mode with
// true log writes, write ratio 5%, miss ratio vs arrival rate.
func BenchmarkFig2a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig2a(benchOptions())
		reportSeries(b, r, 300, "at300tps")
	}
}

// BenchmarkFig2b regenerates Fig 2(b): the same comparison across write
// fractions at 300 txn/s.
func BenchmarkFig2b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig2b(benchOptions())
		reportSeries(b, r, 0.5, "atwf50")
	}
}

// BenchmarkFig3a regenerates Fig 3(a): no logs vs 1 node vs 2 nodes,
// disk off, write ratio 0%.
func BenchmarkFig3a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig3a(benchOptions())
		reportSeries(b, r, 400, "at400tps")
	}
}

// BenchmarkFig3b is Fig 3(b): write ratio 20%.
func BenchmarkFig3b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig3b(benchOptions())
		reportSeries(b, r, 400, "at400tps")
	}
}

// BenchmarkFig3c is Fig 3(c): write ratio 80%.
func BenchmarkFig3c(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig3c(benchOptions())
		reportSeries(b, r, 400, "at400tps")
	}
}

// BenchmarkTakeover regenerates the availability comparison (§4 closing
// claim): live mirror takeover vs restart recovery from disk.
func BenchmarkTakeover(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rs, err := experiments.Takeover([]int{10000}, 500)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rs[0].TakeoverTime.Microseconds())/1000, "takeover_ms")
		b.ReportMetric(float64(rs[0].RecoveryTime.Microseconds())/1000, "recovery_ms")
	}
}

// BenchmarkProtocolAblation compares OCC-DATI/TI/DA/BC commit counts on
// the contended workload (DESIGN.md §8).
func BenchmarkProtocolAblation(b *testing.B) {
	wl := workload.Config{
		ArrivalRate: 250, WriteFraction: 0.6, DBSize: 30,
		ReadsPerTxn: 4, WritesPerTxn: 2,
		ReadDeadline: 50 * time.Millisecond, WriteDeadline: 150 * time.Millisecond,
		ValueSize: 16, Count: 2000, Seed: 3, NonRTFraction: 0.3,
	}
	for i := 0; i < b.N; i++ {
		for _, k := range []occ.Kind{occ.DATI, occ.BC} {
			r := sim.Run(sim.Config{Workload: wl, LogMode: core.LogNone, Protocol: k, NonRTReserve: 0.1})
			b.ReportMetric(float64(r.Outcome.Committed), sanitize(k.String())+"_commits")
		}
	}
}

// BenchmarkReorderAblation measures recovery buffering with and without
// the mirror's validation-order reordering.
func BenchmarkReorderAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := experiments.ReorderAblation(2000, 2)
		if len(tab.Rows) != 2 {
			b.Fatal("ablation failed")
		}
	}
}

// BenchmarkGroupCommitAblation measures transient-mode commit throughput
// with per-commit syncs vs a 2 ms group-commit window on an 8 ms disk.
func BenchmarkGroupCommitAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := experiments.GroupCommitAblation(8*time.Millisecond,
			[]time.Duration{0, 2 * time.Millisecond}, 48)
		if len(tab.Rows) != 2 {
			b.Fatal("ablation failed")
		}
	}
}

// BenchmarkOverloadAblation compares the system with and without the
// overload manager past saturation.
func BenchmarkOverloadAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := experiments.OverloadAblation(experiments.Options{Reps: 1, Count: 1500, DBSize: 5000, Seed: 1})
		if len(tab.Rows) != 6 {
			b.Fatal("ablation failed")
		}
	}
}

// BenchmarkPredictability measures the commit-wait distribution per
// logging mode — the paper's "more predictable commit phase" argument.
func BenchmarkPredictability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := experiments.Predictability(experiments.Options{Reps: 1, Count: 1500, DBSize: 5000, Seed: 1})
		if len(tab.Rows) != 4 {
			b.Fatal("experiment failed")
		}
	}
}

// BenchmarkFailoverTimeline runs the dynamic normal→transient switch.
func BenchmarkFailoverTimeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := experiments.FailoverTimeline(
			experiments.Options{Reps: 1, Count: 2000, DBSize: 5000, Seed: 1},
			180, 5*time.Second)
		if len(tab.Rows) == 0 {
			b.Fatal("empty timeline")
		}
	}
}

// --- micro-benchmarks ---------------------------------------------------

// BenchmarkLogEncode measures redo-record encoding.
func BenchmarkLogEncode(b *testing.B) {
	rec := &wal.Record{Type: wal.TypeWrite, TxnID: 1, ObjectID: 42, AfterImage: make([]byte, 64)}
	buf := make([]byte, 0, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = wal.AppendEncoded(buf[:0], rec)
	}
	b.SetBytes(int64(len(buf)))
}

// BenchmarkLogDecode measures redo-record decoding.
func BenchmarkLogDecode(b *testing.B) {
	rec := &wal.Record{Type: wal.TypeWrite, TxnID: 1, ObjectID: 42, AfterImage: make([]byte, 64)}
	enc := wal.AppendEncoded(nil, rec)
	b.SetBytes(int64(len(enc)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := wal.Decode(bytes.NewReader(enc)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreReadWrite measures raw store operations.
func BenchmarkStoreReadWrite(b *testing.B) {
	db := store.New()
	for i := 0; i < 10000; i++ {
		db.Put(store.ObjectID(i), make([]byte, 32))
	}
	img := make([]byte, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := store.ObjectID(i % 10000)
		if _, ok := db.Get(id); !ok {
			b.Fatal("missing")
		}
		db.Apply(id, img, uint64(i))
	}
}

// BenchmarkOCCValidate measures one conflict-free DATI validation
// including the write phase.
func BenchmarkOCCValidate(b *testing.B) {
	db := store.New()
	for i := 0; i < 10000; i++ {
		db.Put(store.ObjectID(i), make([]byte, 32))
	}
	c := occ.NewController(occ.DATI, db)
	img := make([]byte, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := txn.New(txn.ID(i+1), txn.Firm, 0, txn.NoDeadline)
		c.Begin(t)
		t.Read(db, store.ObjectID(i%10000))
		t.StageWrite(store.ObjectID((i+1)%10000), img)
		if r := c.Validate(t); !r.OK {
			b.Fatal("validation failed")
		}
		c.Finish(t)
	}
}

// BenchmarkDiskCommit measures the transient-mode commit path against an
// in-memory device (pure software overhead, no device latency).
func BenchmarkDiskCommit(b *testing.B) {
	d := core.NewDiskCommitter(logstore.NewMem(), 0)
	defer d.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := &wal.Group{
			Writes: []*wal.Record{{Type: wal.TypeWrite, TxnID: txn.ID(i + 1), ObjectID: 1, AfterImage: make([]byte, 32)}},
			Commit: &wal.Record{Type: wal.TypeCommit, TxnID: txn.ID(i + 1), SerialOrder: uint64(i + 1), CommitTS: uint64(i+1) * 65536},
		}
		if err := d.Commit(g); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEmbeddedUpdate measures a full Update transaction through the
// public API on an embedded node (no logging wait).
func BenchmarkEmbeddedUpdate(b *testing.B) {
	db, err := Open(Options{Durability: DurNone, Workers: 2})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 1000; i++ {
		db.Load(ObjectID(i), make([]byte, 32))
	}
	img := make([]byte, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := db.Update(time.Second, func(tx *Tx) error {
			if _, err := tx.Read(ObjectID(i % 1000)); err != nil {
				return err
			}
			return tx.Write(ObjectID(i%1000), img)
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkShippedCommit measures a full update commit through a live
// primary+mirror pair over loopback TCP — the paper's normal mode.
func BenchmarkShippedCommit(b *testing.B) {
	primary, err := OpenPrimary(Options{Workers: 2}, "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer primary.Close()
	for i := 0; i < 1000; i++ {
		primary.Load(ObjectID(i), make([]byte, 32))
	}
	mirror, err := OpenMirror(Options{Workers: 2}, primary.ReplAddr(), "")
	if err != nil {
		b.Fatal(err)
	}
	defer mirror.Close()
	deadline := time.After(10 * time.Second)
	for {
		select {
		case ev := <-primary.Events():
			if ev.Kind == EventMirrorAttached {
				goto attached
			}
		case <-deadline:
			b.Fatal("mirror never attached")
		}
	}
attached:
	img := make([]byte, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := primary.Update(time.Second, func(tx *Tx) error {
			return tx.Write(ObjectID(i%1000), img)
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimThroughput measures simulator performance itself:
// simulated transactions per wall second.
func BenchmarkSimThroughput(b *testing.B) {
	wl := workload.Default()
	wl.Count = 2000
	wl.DBSize = 5000
	wl.ArrivalRate = 250
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Run(sim.Config{Workload: wl, LogMode: core.LogShip, MirrorDisk: true})
	}
	b.ReportMetric(float64(2000*b.N)/b.Elapsed().Seconds(), "sim-txns/s")
}

// BenchmarkObjectEncodeDecode measures the typed object layer round
// trip (a subscriber-profile-sized object).
func BenchmarkObjectEncodeDecode(b *testing.B) {
	class := object.MustClass("Bench",
		object.Field{Name: "msisdn", Type: object.String},
		object.Field{Name: "name", Type: object.String},
		object.Field{Name: "balance", Type: object.Int},
		object.Field{Name: "prepaid", Type: object.Bool},
	)
	o := class.New()
	o.SetString("msisdn", "+358501234567")
	o.SetString("name", "Subscriber 42")
	o.SetInt("balance", 10000)
	o.SetBool("prepaid", true)
	enc := o.Encode()
	b.SetBytes(int64(len(enc)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := class.Decode(o.Encode()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRecover measures single-pass log replay throughput: how fast
// a restarting node rebuilds its database from the stored redo log.
func BenchmarkRecover(b *testing.B) {
	var log bytes.Buffer
	const txns = 5000
	for i := 1; i <= txns; i++ {
		wal.Encode(&log, &wal.Record{
			Type: wal.TypeWrite, TxnID: txn.ID(i),
			ObjectID: store.ObjectID(i % 1000), AfterImage: make([]byte, 64),
		})
		wal.Encode(&log, &wal.Record{
			Type: wal.TypeCommit, TxnID: txn.ID(i),
			SerialOrder: uint64(i), CommitTS: uint64(i) * 65536,
		})
	}
	data := log.Bytes()
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db := store.New()
		st, err := wal.Recover(bytes.NewReader(data), db)
		if err != nil || st.Applied != txns {
			b.Fatalf("recover: %+v %v", st, err)
		}
	}
	b.ReportMetric(float64(txns*b.N)/b.Elapsed().Seconds(), "txns/s")
}
