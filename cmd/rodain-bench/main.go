// Command rodain-bench drives a live rodaind node through its client
// protocol with the paper's workload — a Poisson mix of read-only
// TRANSLATE and update REROUTE service-provision transactions — and
// reports the measured miss ratio and latency, like the prototype's
// interface process reading an off-line generated test file.
//
//	rodain-bench -addr 127.0.0.1:7100 -rate 200 -writes 0.05 -count 10000
//	rodain-bench -addr 127.0.0.1:7100 -trace session.trace
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/service"
	"repro/internal/workload"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7100", "node service address")
		rate     = flag.Float64("rate", 200, "mean arrival rate, transactions/second")
		writes   = flag.Float64("writes", 0.05, "update-transaction fraction")
		count    = flag.Int("count", 10000, "transactions in the session")
		dbSize   = flag.Int("db", 30000, "provisioned number range")
		deadline = flag.Int("deadline", 50, "firm deadline (ms) announced to the node")
		conns    = flag.Int("conns", 16, "client connections")
		seed     = flag.Int64("seed", 1, "workload seed")
		trace    = flag.String("trace", "", "replay this trace file instead of generating")
		emit     = flag.String("emit", "", "write the generated trace to this file and exit")
	)
	flag.Parse()

	cfg := workload.Default()
	cfg.ArrivalRate = *rate
	cfg.WriteFraction = *writes
	cfg.Count = *count
	cfg.DBSize = *dbSize
	cfg.Seed = *seed

	var specs []*workload.Spec
	if *trace != "" {
		f, err := os.Open(*trace)
		if err != nil {
			log.Fatal(err)
		}
		specs, err = workload.ReadTrace(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
	} else {
		specs = workload.NewGenerator(cfg).All()
	}
	if *emit != "" {
		f, err := os.Create(*emit)
		if err != nil {
			log.Fatal(err)
		}
		if err := workload.WriteTrace(f, specs); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %d transactions to %s", len(specs), *emit)
		return
	}

	clients := make([]*service.Client, *conns)
	for i := range clients {
		c, err := service.Dial(*addr, 5*time.Second)
		if err != nil {
			log.Fatalf("dial %s: %v", *addr, err)
		}
		defer c.Close()
		if _, err := c.Do(fmt.Sprintf("DEADLINE %d", *deadline)); err != nil {
			log.Fatal(err)
		}
		clients[i] = c
	}

	var (
		ok, miss, errs atomic.Uint64
		latSum         atomic.Int64
		wg             sync.WaitGroup
		sem            = make(chan *service.Client, len(clients))
	)
	for _, c := range clients {
		sem <- c
	}
	rng := rand.New(rand.NewSource(*seed))
	start := time.Now()
	for i, spec := range specs {
		// Pace requests to the trace's arrival times.
		if sleep := time.Duration(spec.Arrival) - time.Since(start); sleep > 0 {
			time.Sleep(sleep)
		}
		line := fmt.Sprintf("TRANSLATE %d", uint64(spec.Reads[0]))
		if spec.IsWrite() {
			line = fmt.Sprintf("REROUTE %d +35840%07d", uint64(spec.Writes[0]), rng.Intn(10000000))
		}
		c := <-sem
		wg.Add(1)
		go func(i int, line string) {
			defer wg.Done()
			defer func() { sem <- c }()
			t0 := time.Now()
			resp, err := c.Do(line)
			latSum.Add(int64(time.Since(t0)))
			switch {
			case err != nil:
				errs.Add(1)
			case service.Miss(resp):
				miss.Add(1)
			case service.OK(resp):
				ok.Add(1)
			default:
				errs.Add(1)
			}
		}(i, line)
	}
	wg.Wait()
	elapsed := time.Since(start)

	total := ok.Load() + miss.Load() + errs.Load()
	fmt.Printf("session: %d transactions in %v (offered %.0f tps, achieved %.0f tps)\n",
		total, elapsed.Round(time.Millisecond), *rate, float64(total)/elapsed.Seconds())
	fmt.Printf("committed %d, missed %d (%.2f%%), errors %d\n",
		ok.Load(), miss.Load(), 100*float64(miss.Load())/float64(total), errs.Load())
	if total > 0 {
		fmt.Printf("mean client-observed latency: %v\n",
			(time.Duration(latSum.Load()) / time.Duration(total)).Round(time.Microsecond))
	}
	if stats, err := clients[0].Do("STATS"); err == nil {
		fmt.Printf("node: %s\n", stats)
	}
}
