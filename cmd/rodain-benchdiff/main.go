// Command rodain-benchdiff compares two benchmark snapshots produced by
// rodain-benchjson (BENCH_*.json) and prints per-benchmark deltas:
// ns/op, allocs/op and any custom metrics (commits/sec, MB/s). It is
// the review end of the perf trajectory CI archives on every run.
//
//	rodain-benchdiff old/BENCH_core.json new/BENCH_core.json
//	rodain-benchdiff -threshold 15 -fail base.json head.json
//
// A benchmark counts as a regression when its ns/op grew by more than
// -threshold percent (or its allocs/op grew at all, when both sides
// report them); -fail turns any regression into exit status 1 so CI can
// gate on it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

// Result mirrors rodain-benchjson's output schema.
type Result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *int64             `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64             `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Delta is one benchmark's before/after comparison.
type Delta struct {
	Name       string
	Old, New   *Result // nil when the benchmark exists on one side only
	NsPct      float64 // ns/op change in percent (+ = slower)
	AllocsDiff int64   // allocs/op change (+ = more allocations)
	Regressed  bool
}

func main() {
	threshold := flag.Float64("threshold", 10, "ns/op growth in percent that counts as a regression")
	failOnRegress := flag.Bool("fail", false, "exit 1 when any benchmark regressed")
	out := flag.String("o", "", "write the report to a file as well as stdout")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: rodain-benchdiff [-threshold pct] [-fail] [-o report] OLD.json NEW.json")
		os.Exit(2)
	}

	oldR, err := load(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	newR, err := load(flag.Arg(1))
	if err != nil {
		fatal(err)
	}

	deltas := diff(oldR, newR, *threshold)
	report := render(flag.Arg(0), flag.Arg(1), deltas, *threshold)
	os.Stdout.WriteString(report)
	if *out != "" {
		if err := os.WriteFile(*out, []byte(report), 0o644); err != nil {
			fatal(err)
		}
	}
	if *failOnRegress {
		for _, d := range deltas {
			if d.Regressed {
				os.Exit(1)
			}
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rodain-benchdiff:", err)
	os.Exit(2)
}

func load(path string) ([]Result, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rs []Result
	if err := json.Unmarshal(b, &rs); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return rs, nil
}

// diff pairs results by name and computes deltas. Benchmarks present on
// one side only are reported with a nil counterpart and never count as
// regressions (a renamed or new benchmark is not a slowdown).
func diff(oldR, newR []Result, threshold float64) []Delta {
	oldBy := map[string]*Result{}
	for i := range oldR {
		oldBy[oldR[i].Name] = &oldR[i]
	}
	seen := map[string]bool{}
	var out []Delta
	for i := range newR {
		n := &newR[i]
		seen[n.Name] = true
		d := Delta{Name: n.Name, New: n}
		if o := oldBy[n.Name]; o != nil {
			d.Old = o
			if o.NsPerOp > 0 {
				d.NsPct = (n.NsPerOp - o.NsPerOp) / o.NsPerOp * 100
			}
			if o.AllocsPerOp != nil && n.AllocsPerOp != nil {
				d.AllocsDiff = *n.AllocsPerOp - *o.AllocsPerOp
			}
			d.Regressed = d.NsPct > threshold || d.AllocsDiff > 0
		}
		out = append(out, d)
	}
	for i := range oldR {
		if !seen[oldR[i].Name] {
			out = append(out, Delta{Name: oldR[i].Name, Old: &oldR[i]})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func render(oldPath, newPath string, deltas []Delta, threshold float64) string {
	var b []byte
	app := func(format string, args ...any) { b = fmt.Appendf(b, format, args...) }
	app("benchdiff: %s -> %s (regression threshold %+.0f%% ns/op)\n\n", oldPath, newPath, threshold)
	app("%-60s %12s %12s %8s %8s  %s\n", "benchmark", "old ns/op", "new ns/op", "Δns/op", "Δallocs", "verdict")
	regressions := 0
	for _, d := range deltas {
		switch {
		case d.Old == nil:
			app("%-60s %12s %12.1f %8s %8s  new\n", d.Name, "-", d.New.NsPerOp, "-", "-")
		case d.New == nil:
			app("%-60s %12.1f %12s %8s %8s  removed\n", d.Name, d.Old.NsPerOp, "-", "-", "-")
		default:
			verdict := "ok"
			if d.Regressed {
				verdict = "REGRESSED"
				regressions++
			} else if d.NsPct < -threshold {
				verdict = "improved"
			}
			app("%-60s %12.1f %12.1f %+7.1f%% %+8d  %s\n",
				d.Name, d.Old.NsPerOp, d.New.NsPerOp, d.NsPct, d.AllocsDiff, verdict)
			for _, m := range metricNames(d) {
				ov, nv := d.Old.Metrics[m], d.New.Metrics[m]
				pct := 0.0
				if ov != 0 {
					pct = (nv - ov) / ov * 100
				}
				app("%-60s %12.1f %12.1f %+7.1f%%           (%s)\n", "", ov, nv, pct, m)
			}
		}
	}
	app("\n%d benchmark(s) regressed\n", regressions)
	return string(b)
}

// metricNames lists custom metrics present on both sides, sorted.
func metricNames(d Delta) []string {
	var names []string
	for m := range d.New.Metrics {
		if _, ok := d.Old.Metrics[m]; ok {
			names = append(names, m)
		}
	}
	sort.Strings(names)
	return names
}
