package main

import (
	"strings"
	"testing"
)

func i64(v int64) *int64 { return &v }

func TestDiffFlagsRegressions(t *testing.T) {
	oldR := []Result{
		{Name: "BenchmarkA", NsPerOp: 100, AllocsPerOp: i64(2)},
		{Name: "BenchmarkB", NsPerOp: 100, AllocsPerOp: i64(0)},
		{Name: "BenchmarkGone", NsPerOp: 50},
	}
	newR := []Result{
		{Name: "BenchmarkA", NsPerOp: 125, AllocsPerOp: i64(2)}, // +25% ns/op
		{Name: "BenchmarkB", NsPerOp: 90, AllocsPerOp: i64(1)},  // faster but allocates
		{Name: "BenchmarkNew", NsPerOp: 10},
	}
	ds := diff(oldR, newR, 10)
	byName := map[string]Delta{}
	for _, d := range ds {
		byName[d.Name] = d
	}
	if d := byName["BenchmarkA"]; !d.Regressed || d.NsPct != 25 {
		t.Fatalf("A = %+v, want regressed at +25%%", d)
	}
	if d := byName["BenchmarkB"]; !d.Regressed || d.AllocsDiff != 1 {
		t.Fatalf("B = %+v, want regressed on +1 alloc", d)
	}
	if d := byName["BenchmarkGone"]; d.New != nil || d.Regressed {
		t.Fatalf("Gone = %+v, want removed and not regressed", d)
	}
	if d := byName["BenchmarkNew"]; d.Old != nil || d.Regressed {
		t.Fatalf("New = %+v, want new and not regressed", d)
	}
}

func TestDiffWithinThresholdOK(t *testing.T) {
	oldR := []Result{{Name: "BenchmarkA", NsPerOp: 100}}
	newR := []Result{{Name: "BenchmarkA", NsPerOp: 105}}
	ds := diff(oldR, newR, 10)
	if len(ds) != 1 || ds[0].Regressed {
		t.Fatalf("ds = %+v, want one non-regressed delta", ds)
	}
}

func TestRenderReport(t *testing.T) {
	oldR := []Result{{Name: "BenchmarkA", NsPerOp: 100, Metrics: map[string]float64{"commits/sec": 1000}}}
	newR := []Result{{Name: "BenchmarkA", NsPerOp: 200, Metrics: map[string]float64{"commits/sec": 500}}}
	report := render("old.json", "new.json", diff(oldR, newR, 10), 10)
	for _, want := range []string{"BenchmarkA", "REGRESSED", "commits/sec", "1 benchmark(s) regressed"} {
		if !strings.Contains(report, want) {
			t.Fatalf("report missing %q:\n%s", want, report)
		}
	}
}
