// Command rodain-benchjson converts `go test -bench` text output on
// stdin into machine-readable JSON: one object per benchmark result with
// the name, iteration count, ns/op and — when -benchmem is on — B/op
// and allocs/op, plus any custom metrics (MB/s, txn/s). Non-benchmark
// lines pass through to stderr so interleaved test output stays visible.
//
//	go test -bench . -benchmem ./internal/store | rodain-benchjson -o BENCH_store.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line in JSON form.
type Result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *int64             `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64             `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	var results []Result
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if r, ok := parseBenchLine(line); ok {
			results = append(results, r)
		} else {
			fmt.Fprintln(os.Stderr, line)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "rodain-benchjson:", err)
		os.Exit(1)
	}

	enc, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "rodain-benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "rodain-benchjson:", err)
		os.Exit(1)
	}
}

// parseBenchLine parses one `go test -bench` result line, e.g.
//
//	BenchmarkFoo/bar-8   1000   123.4 ns/op   56 B/op   7 allocs/op   9.8 MB/s
func parseBenchLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: fields[0], Iterations: iters}
	// The remainder is value/unit pairs.
	seenNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		unit := fields[i+1]
		switch unit {
		case "ns/op":
			r.NsPerOp = v
			seenNs = true
		case "B/op":
			b := int64(v)
			r.BytesPerOp = &b
		case "allocs/op":
			a := int64(v)
			r.AllocsPerOp = &a
		default:
			if r.Metrics == nil {
				r.Metrics = make(map[string]float64)
			}
			r.Metrics[unit] = v
		}
	}
	if !seenNs {
		return Result{}, false
	}
	return r, true
}
