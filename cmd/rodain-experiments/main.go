// Command rodain-experiments regenerates the paper's experimental study:
// every panel of Figures 2 and 3 (miss-ratio curves over the simulated
// node pair), the takeover-vs-recovery availability comparison, and the
// design ablations.
//
//	rodain-experiments -fig all            # the full study (paper-scale)
//	rodain-experiments -fig 2a -quick      # one figure, cheap settings
//	rodain-experiments -fig takeover
//	rodain-experiments -fig ablations
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		fig    = flag.String("fig", "all", "experiment: all, 2a, 2b, 3a, 3b, 3c, takeover, recovery, occscaling, readscaling, frontend, shipscaling, ckpt, ablations, timeline")
		quick  = flag.Bool("quick", false, "cheap settings (fewer repetitions and transactions)")
		reps   = flag.Int("reps", 0, "override repetitions per point")
		count  = flag.Int("count", 0, "override transactions per session")
		csvDir = flag.String("csv", "", "also write each figure's series as <dir>/<id>.csv")
	)
	flag.Parse()

	opts := experiments.DefaultOptions()
	if *quick {
		opts = experiments.QuickOptions()
	}
	if *reps > 0 {
		opts.Reps = *reps
	}
	if *count > 0 {
		opts.Count = *count
	}

	ids := map[string]string{"2a": "fig2a", "2b": "fig2b", "3a": "fig3a", "3b": "fig3b", "3c": "fig3c"}
	want := strings.ToLower(*fig)

	runFigure := func(id string) {
		start := time.Now()
		r, err := experiments.Run(id, opts)
		if err != nil {
			log.Fatal(err)
		}
		if err := r.Fprint(os.Stdout); err != nil {
			log.Fatal(err)
		}
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				log.Fatal(err)
			}
			f, err := os.Create(filepath.Join(*csvDir, r.ID+".csv"))
			if err != nil {
				log.Fatal(err)
			}
			if err := r.WriteCSV(f); err != nil {
				log.Fatal(err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Printf("  (%s in %v, %d reps × %d txns)\n\n", id, time.Since(start).Round(time.Second), opts.Reps, opts.Count)
	}

	runTakeover := func() {
		sizes := []int{10000, 30000, 100000}
		tail := 2000
		if *quick {
			sizes = []int{5000, 20000}
			tail = 500
		}
		rs, err := experiments.Takeover(sizes, tail)
		if err != nil {
			log.Fatal(err)
		}
		experiments.TakeoverTable(rs).Fprint(os.Stdout)
		fmt.Println()
	}

	runRecoveryScaling := func() {
		sizes := []int{10000, 50000, 200000}
		if *quick {
			sizes = []int{5000, 20000}
		}
		rs, err := experiments.RecoveryScaling(30000, sizes, []int{1, 2, 4, 8})
		if err != nil {
			log.Fatal(err)
		}
		experiments.RecoveryScalingTable(rs).Fprint(os.Stdout)
		fmt.Println()
	}

	runOCCScaling := func() {
		txns := 20000
		if *quick {
			txns = 4000
		}
		rs, err := experiments.OCCScaling(1024, txns, []int{1, 2, 4, 8}, []int{10, 60})
		if err != nil {
			log.Fatal(err)
		}
		experiments.OCCScalingTable(rs).Fprint(os.Stdout)
		fmt.Println()
	}

	runReadScaling := func() {
		txns := 20000
		if *quick {
			txns = 4000
		}
		rs, err := experiments.ReadScaling(1024, txns, []int{1, 2, 4, 8})
		if err != nil {
			log.Fatal(err)
		}
		experiments.ReadScalingTable(rs).Fprint(os.Stdout)
		fmt.Println()
	}

	runFrontend := func() {
		requests := 20000
		if *quick {
			requests = 4000
		}
		rs, err := experiments.Frontend(1024, requests, 4, []int{1, 2, 4, 8, 16})
		if err != nil {
			log.Fatal(err)
		}
		experiments.FrontendTable(rs).Fprint(os.Stdout)
		fmt.Println()
	}

	runShipScaling := func() {
		txns := 20000
		fsyncTxns := 4000
		if *quick {
			txns = 4000
			fsyncTxns = 1000
		}
		rs, err := experiments.ShipScaling(txns, []int{1, 2, 4, 8, 16})
		if err != nil {
			log.Fatal(err)
		}
		experiments.ShipScalingTable(rs).Fprint(os.Stdout)
		fmt.Println()
		fs, err := experiments.TransientFsync(fsyncTxns, []int{1, 2, 4, 8, 16}, 100*time.Microsecond)
		if err != nil {
			log.Fatal(err)
		}
		experiments.TransientFsyncTable(fs).Fprint(os.Stdout)
		fmt.Println()
	}

	runCheckpoint := func() {
		sizes := []int{2000, 8000, 32000}
		tail := 1000
		if *quick {
			sizes = []int{2000, 8000}
			tail = 300
		}
		rs, err := experiments.CheckpointStudy(sizes, tail)
		if err != nil {
			log.Fatal(err)
		}
		experiments.CheckpointTable(rs).Fprint(os.Stdout)
		fmt.Println()
	}

	runAblations := func() {
		experiments.ProtocolAblation(opts).Fprint(os.Stdout)
		fmt.Println()
		experiments.ReorderAblation(1000, 2).Fprint(os.Stdout)
		fmt.Println()
		experiments.GroupCommitAblation(8*time.Millisecond,
			[]time.Duration{0, 2 * time.Millisecond, 5 * time.Millisecond}, 100).Fprint(os.Stdout)
		fmt.Println()
		experiments.OverloadAblation(opts).Fprint(os.Stdout)
		fmt.Println()
		experiments.Predictability(opts).Fprint(os.Stdout)
		fmt.Println()
	}

	runTimeline := func() {
		experiments.FailoverTimeline(opts, 180, 5*time.Second).Fprint(os.Stdout)
		fmt.Println()
	}

	switch want {
	case "all":
		for _, short := range []string{"2a", "2b", "3a", "3b", "3c"} {
			runFigure(ids[short])
		}
		runTakeover()
		runRecoveryScaling()
		runOCCScaling()
		runReadScaling()
		runFrontend()
		runShipScaling()
		runCheckpoint()
		runAblations()
		runTimeline()
	case "takeover":
		runTakeover()
	case "recovery", "recovery-scaling":
		runRecoveryScaling()
	case "occscaling", "occ-scaling", "occ":
		runOCCScaling()
	case "readscaling", "read-scaling", "readonly":
		runReadScaling()
	case "frontend", "front-end", "pipeline":
		runFrontend()
	case "shipscaling", "ship-scaling", "ship":
		runShipScaling()
	case "ckpt", "checkpoint":
		runCheckpoint()
	case "ablations", "ablation":
		runAblations()
	case "timeline", "failover":
		runTimeline()
	default:
		id, ok := ids[want]
		if !ok {
			id = want // allow full ids like fig2a
		}
		runFigure(id)
	}
}
