// Command rodain-logdump inspects a RODAIN log file: it prints records,
// summarizes committed and uncommitted transactions, and can dry-run the
// recovery pass.
//
//	rodain-logdump primary.wal
//	rodain-logdump -recover -v primary.wal
//	rodain-logdump -recover -workers 4 primary.wal   # parallel replay
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"repro/internal/store"
	"repro/internal/wal"
)

func main() {
	var (
		verbose  = flag.Bool("v", false, "print every record")
		recover_ = flag.Bool("recover", false, "dry-run the recovery pass and report the resulting database")
		workers  = flag.Int("workers", 1, "recovery apply workers (0 = one per CPU, <=1 = sequential)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: rodain-logdump [-v] [-recover] [-workers N] <logfile>")
		os.Exit(2)
	}
	rawFile, err := os.Open(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	defer rawFile.Close()
	// Buffered: record-at-a-time decoding over a raw file pays a read
	// syscall per record.
	f := bufio.NewReaderSize(rawFile, 256<<10)

	if *recover_ {
		w := *workers
		if w == 0 {
			w = wal.DefaultRecoverWorkers()
		} else if w < 1 {
			w = 1
		}
		db := store.New()
		start := time.Now()
		st, err := wal.ParallelRecover(f, db, w)
		elapsed := time.Since(start)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("recovery: %d transactions applied, %d writes, %d uncommitted discarded\n",
			st.Applied, st.WritesApplied, st.Discarded)
		fmt.Printf("          last serial %d, truncated tail: %v, peak buffered records: %d\n",
			st.LastSerial, st.Truncated, st.PeakBuffered)
		rate := 0.0
		if s := elapsed.Seconds(); s > 0 {
			rate = float64(st.Applied) / s
		}
		fmt.Printf("          replayed in %v with %d worker(s) (%.0f txn/s)\n",
			elapsed.Round(time.Microsecond), w, rate)
		fmt.Printf("database: %d objects, checksum %08x\n", db.Len(), db.Checksum())
		return
	}

	var (
		records, writes, deletes, commits, aborts, heartbeats int
		bytesTotal                                            int
		committed                                             = map[uint64]bool{}
		seen                                                  = map[uint64]bool{}
	)
	for {
		rec, err := wal.Decode(f)
		if err != nil {
			switch {
			case err == io.EOF:
			case err == io.ErrUnexpectedEOF || errors.Is(err, wal.ErrCorrupt):
				fmt.Printf("-- truncated/corrupt tail after %d records --\n", records)
			default:
				log.Fatal(err)
			}
			break
		}
		records++
		bytesTotal += wal.EncodedSize(rec)
		seen[uint64(rec.TxnID)] = true
		switch rec.Type {
		case wal.TypeWrite:
			writes++
		case wal.TypeDelete:
			deletes++
		case wal.TypeCommit:
			commits++
			committed[uint64(rec.TxnID)] = true
		case wal.TypeAbort:
			aborts++
		case wal.TypeHeartbeat:
			heartbeats++
		}
		if *verbose {
			fmt.Println(rec)
		}
	}
	uncommitted := 0
	for id := range seen {
		if !committed[id] {
			uncommitted++
		}
	}
	fmt.Printf("%d records (%d bytes): %d writes, %d deletes, %d commits, %d aborts, %d heartbeats\n",
		records, bytesTotal, writes, deletes, commits, aborts, heartbeats)
	fmt.Printf("%d transactions touched, %d without a commit record\n", len(seen), uncommitted)
}
