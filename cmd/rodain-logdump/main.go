// Command rodain-logdump inspects RODAIN log artifacts: it prints
// records, summarizes committed and uncommitted transactions, dry-runs
// the recovery pass, decodes checkpoint files, and walks segmented log
// directories in order.
//
//	rodain-logdump primary.wal
//	rodain-logdump -recover -v primary.wal
//	rodain-logdump -recover -workers 4 primary.wal   # parallel replay
//	rodain-logdump -ckpt ckptdir/checkpoint.ckpt     # checkpoint header
//	rodain-logdump logdir                            # segment directory
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"time"

	"repro/internal/logstore"
	"repro/internal/store"
	"repro/internal/wal"
)

func main() {
	var (
		verbose  = flag.Bool("v", false, "print every record")
		recover_ = flag.Bool("recover", false, "dry-run the recovery pass and report the resulting database")
		workers  = flag.Int("workers", 1, "recovery apply workers (0 = one per CPU, <=1 = sequential)")
		ckpt     = flag.Bool("ckpt", false, "decode the argument as a checkpoint file: format version, stripe watermarks, record count")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: rodain-logdump [-v] [-recover] [-workers N] [-ckpt] <logfile|segmentdir|checkpoint>")
		os.Exit(2)
	}
	path := flag.Arg(0)

	if *ckpt {
		dumpCheckpoint(path)
		return
	}

	fi, err := os.Stat(path)
	if err != nil {
		log.Fatal(err)
	}

	if *recover_ {
		r := openLog(path, fi.IsDir())
		defer r.Close()
		dryRecover(r, *workers)
		return
	}

	if fi.IsDir() {
		dumpSegments(path, *verbose)
		return
	}
	rawFile, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer rawFile.Close()
	// Buffered: record-at-a-time decoding over a raw file pays a read
	// syscall per record.
	sum := summarize(bufio.NewReaderSize(rawFile, 256<<10), *verbose)
	sum.print()
}

// openLog opens a single log file or a segment directory as one stream.
func openLog(path string, isDir bool) io.ReadCloser {
	if isDir {
		r, err := logstore.OpenSegmentsReader(path)
		if err != nil {
			log.Fatal(err)
		}
		return r
	}
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	return struct {
		io.Reader
		io.Closer
	}{bufio.NewReaderSize(f, 256<<10), f}
}

func dryRecover(r io.Reader, workers int) {
	w := workers
	if w == 0 {
		w = wal.DefaultRecoverWorkers()
	} else if w < 1 {
		w = 1
	}
	db := store.New()
	start := time.Now()
	st, err := wal.ParallelRecover(r, db, w)
	elapsed := time.Since(start)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovery: %d transactions applied, %d writes, %d uncommitted discarded\n",
		st.Applied, st.WritesApplied, st.Discarded)
	fmt.Printf("          last serial %d, truncated tail: %v, peak buffered records: %d\n",
		st.LastSerial, st.Truncated, st.PeakBuffered)
	rate := 0.0
	if s := elapsed.Seconds(); s > 0 {
		rate = float64(st.Applied) / s
	}
	fmt.Printf("          replayed in %v with %d worker(s) (%.0f txn/s)\n",
		elapsed.Round(time.Microsecond), w, rate)
	fmt.Printf("database: %d objects, checksum %08x\n", db.Len(), db.Checksum())
}

// summary tallies one record stream.
type summary struct {
	records, writes, deletes, commits, aborts, heartbeats int
	bytesTotal                                            int
	maxSerial                                             uint64
	truncated                                             bool
	committed, seen                                       map[uint64]bool
}

func summarize(r io.Reader, verbose bool) *summary {
	s := &summary{committed: map[uint64]bool{}, seen: map[uint64]bool{}}
	s.scan(r, verbose)
	return s
}

func (s *summary) scan(r io.Reader, verbose bool) {
	for {
		rec, err := wal.Decode(r)
		if err != nil {
			switch {
			case err == io.EOF:
			case err == io.ErrUnexpectedEOF || errors.Is(err, wal.ErrCorrupt):
				s.truncated = true
				fmt.Printf("-- truncated/corrupt tail after %d records --\n", s.records)
			default:
				log.Fatal(err)
			}
			return
		}
		s.records++
		s.bytesTotal += wal.EncodedSize(rec)
		s.seen[uint64(rec.TxnID)] = true
		switch rec.Type {
		case wal.TypeWrite:
			s.writes++
		case wal.TypeDelete:
			s.deletes++
		case wal.TypeCommit:
			s.commits++
			s.committed[uint64(rec.TxnID)] = true
			if rec.SerialOrder > s.maxSerial {
				s.maxSerial = rec.SerialOrder
			}
		case wal.TypeAbort:
			s.aborts++
		case wal.TypeHeartbeat:
			s.heartbeats++
		}
		if verbose {
			fmt.Println(rec)
		}
	}
}

func (s *summary) print() {
	fmt.Printf("%d records (%d bytes): %d writes, %d deletes, %d commits, %d aborts, %d heartbeats\n",
		s.records, s.bytesTotal, s.writes, s.deletes, s.commits, s.aborts, s.heartbeats)
	uncommitted := 0
	for id := range s.seen {
		if !s.committed[id] {
			uncommitted++
		}
	}
	fmt.Printf("%d transactions touched, %d without a commit record\n", len(s.seen), uncommitted)
}

// dumpSegments walks a segmented log directory in log order, timing and
// summarizing each segment, then prints stream totals.
func dumpSegments(dir string, verbose bool) {
	names, err := logstore.ListSegments(dir)
	if err != nil {
		log.Fatal(err)
	}
	if len(names) == 0 {
		fmt.Printf("no segments in %s\n", dir)
		return
	}
	total := &summary{committed: map[uint64]bool{}, seen: map[uint64]bool{}}
	for _, name := range names {
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			log.Fatal(err)
		}
		before := *total
		start := time.Now()
		total.scan(bufio.NewReaderSize(f, 256<<10), verbose)
		elapsed := time.Since(start)
		f.Close()
		fmt.Printf("segment %s: %d records (%d bytes), %d commits, max serial %d, scanned in %v\n",
			name, total.records-before.records, total.bytesTotal-before.bytesTotal,
			total.commits-before.commits, total.maxSerial, elapsed.Round(time.Microsecond))
	}
	fmt.Printf("-- %d segments --\n", len(names))
	total.print()
}

// dumpCheckpoint decodes a checkpoint file of either format and prints
// its header facts; fuzzy (v2) checkpoints include the per-stripe
// watermark vector.
func dumpCheckpoint(path string) {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	ck, err := wal.DecodeCheckpoint(bufio.NewReaderSize(f, 256<<10))
	if err != nil {
		log.Fatal(err)
	}
	kind := "frozen (transaction-consistent)"
	if ck.Version == 2 {
		kind = "fuzzy (stripe-incremental)"
	}
	bytes := 0
	for _, rec := range ck.Snapshot {
		bytes += len(rec.Value)
	}
	fmt.Printf("checkpoint v%d: %s\n", ck.Version, kind)
	fmt.Printf("%d records (%d value bytes), last serial %d\n", len(ck.Snapshot), bytes, ck.LastSerial)
	if ck.Watermarks == nil {
		fmt.Println("no stripe watermarks: replay the whole log tail over the snapshot")
		return
	}
	wm := ck.Watermarks
	fmt.Printf("%d stripe watermarks: min %d, max %d (log below %d is redundant)\n",
		wm.Stripes(), wm.Min(), wm.Max(), wm.Min())
	for i := 0; i < wm.Stripes(); i += 8 {
		fmt.Printf("  [%3d]", i)
		for j := i; j < i+8 && j < wm.Stripes(); j++ {
			fmt.Printf(" %10d", wm.Mark(j))
		}
		fmt.Println()
	}
}
