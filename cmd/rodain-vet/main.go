// rodain-vet is the repository's static-analysis gate: five
// go/analysis passes that enforce the engine's concurrency and
// durability invariants at compile time (see DESIGN.md §9).
//
// It is a go-vet compatible unitchecker. Run it on package patterns
// directly —
//
//	go run ./cmd/rodain-vet ./...
//
// — and it re-executes itself through `go vet -vettool`, which handles
// package loading, dependency ordering and cross-package fact
// propagation. Exemptions are per-line //rodain:allow directives; see
// the individual pass documentation.
package main

import (
	"fmt"
	"os"
	"os/exec"
	"strings"

	"golang.org/x/tools/go/analysis/unitchecker"

	"repro/internal/analysis/atomicfield"
	"repro/internal/analysis/borrowedview"
	"repro/internal/analysis/durability"
	"repro/internal/analysis/lockorder"
	"repro/internal/analysis/wallclock"
)

func main() {
	args := os.Args[1:]
	if vetProtocol(args) {
		// Invoked by cmd/go as a vet tool: hand over to the unitchecker
		// (it parses the .cfg, runs the passes, emits JSON facts and
		// diagnostics). Never returns.
		unitchecker.Main(
			wallclock.Analyzer,
			durability.Analyzer,
			atomicfield.Analyzer,
			borrowedview.Analyzer,
			lockorder.Analyzer,
		)
	}

	// Invoked by a human with package patterns: re-exec through go vet
	// so the build system drives us over every package.
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "rodain-vet: %v\n", err)
		os.Exit(1)
	}
	vet := exec.Command("go", append([]string{"vet", "-vettool=" + self}, args...)...)
	vet.Stdout = os.Stdout
	vet.Stderr = os.Stderr
	vet.Stdin = os.Stdin
	if err := vet.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			os.Exit(ee.ExitCode())
		}
		fmt.Fprintf(os.Stderr, "rodain-vet: %v\n", err)
		os.Exit(1)
	}
}

// vetProtocol reports whether args look like a cmd/go vet-tool
// invocation: a single *.cfg unit file, or the -V / -flags protocol
// probes. Anything else (package patterns, possibly preceded by
// analyzer flags) is the human-facing driver mode.
func vetProtocol(args []string) bool {
	if len(args) == 0 {
		return true // let unitchecker print its usage
	}
	if strings.HasSuffix(args[len(args)-1], ".cfg") {
		return true
	}
	switch {
	case strings.HasPrefix(args[0], "-V"), args[0] == "-flags":
		return true
	}
	return false
}
