// Command rodaind runs one RODAIN database node: the primary of a pair,
// its hot stand-by mirror, or a standalone single node.
//
// A primary:
//
//	rodaind -role primary -listen :7100 -repl :7000 -db 30000 -log primary.wal
//
// Its mirror (takes over and serves on -listen if the primary dies):
//
//	rodaind -role mirror -peer primaryhost:7000 -repl :7000 -listen :7100 -log mirror.wal
//
// Clients speak the line protocol of internal/service on -listen
// (GET/SET/TRANSLATE/REROUTE/STATS).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	rodain "repro"
	"repro/internal/logstore"
	"repro/internal/service"
	"repro/internal/telecom"
)

func main() {
	var (
		role       = flag.String("role", "single", "node role: single, primary, or mirror")
		listen     = flag.String("listen", "127.0.0.1:7100", "client service address")
		repl       = flag.String("repl", "", "replication listen address (primary; mirror after takeover)")
		peer       = flag.String("peer", "", "primary replication address (mirror role)")
		dbSize     = flag.Int("db", 30000, "number-translation entries to populate")
		logPath    = flag.String("log", "", "log file (empty: in-memory)")
		durability = flag.String("durability", "disk", "single-node commit path: disk, relaxed, none")
		protocol   = flag.String("occ", "dati", "concurrency control: dati, ti, da, bc")
		workers    = flag.Int("workers", 2, "executor goroutines")
		recover_   = flag.String("recover", "", "replay this log file or segment directory into the database before serving")
		recWorkers = flag.Int("recover-workers", 0, "parallel log-replay workers (0 = one per CPU, <0 = sequential)")
		ckptDir    = flag.String("checkpoint-dir", "", "write periodic checkpoints here (and truncate the log)")
		ckptEvery  = flag.Duration("checkpoint-every", 5*time.Minute, "checkpoint interval when -checkpoint-dir is set (0 = off)")
		ckptBytes  = flag.Uint64("checkpoint-bytes", 0, "also checkpoint after this much log growth (0 = off)")
		frozenCkpt = flag.Bool("frozen-checkpoint", false, "use the legacy stop-the-world checkpoint instead of the fuzzy one (ablation)")
		segBytes   = flag.Int64("log-segment-bytes", 0, "roll the log into -log/<segments> at this size so checkpoints drop whole segments (0 = single file)")
		groupWin   = flag.Duration("group-commit", 0, "legacy fixed-window disk batching (0 = adaptive leader/follower group fsync)")
		maxCohort  = flag.Int("max-cohort", 0, "max transactions per group-commit cohort (0 = default 64)")
		cohortHold = flag.Duration("cohort-hold", 0, "max adaptive hold for group-commit stragglers (0 = default 200µs, <0 = off)")
		pipeDepth  = flag.Int("pipeline-depth", service.DefaultPipelineDepth, "per-connection request window (1 = no pipelining)")
		svcWorkers = flag.Int("service-workers", service.DefaultWorkers, "shared pool executing read-only requests")
		idleConn   = flag.Duration("idle-timeout", 2*time.Minute, "disconnect clients idle this long (0 = never)")
	)
	flag.Parse()

	opts := rodain.Options{
		Name:               fmt.Sprintf("rodaind-%s", *role),
		LogPath:            *logPath,
		Protocol:           *protocol,
		Workers:            *workers,
		GroupCommitWindow:  *groupWin,
		MaxCohort:          *maxCohort,
		MaxCohortHold:      *cohortHold,
		RecoverWorkers:     *recWorkers,
		LogSegmentBytes:    *segBytes,
		CheckpointDir:      *ckptDir,
		CheckpointEvery:    *ckptEvery,
		CheckpointLogBytes: *ckptBytes,
		FrozenCheckpoint:   *frozenCkpt,
	}
	switch *durability {
	case "disk":
		opts.Durability = rodain.DurDisk
	case "relaxed":
		opts.Durability = rodain.DurRelaxed
	case "none":
		opts.Durability = rodain.DurNone
	default:
		log.Fatalf("unknown durability %q", *durability)
	}

	var (
		db  *rodain.DB
		err error
	)
	switch *role {
	case "single":
		db, err = rodain.Open(opts)
	case "primary":
		if *repl == "" {
			log.Fatal("-role primary needs -repl")
		}
		db, err = rodain.OpenPrimary(opts, *repl)
	case "mirror":
		if *peer == "" {
			log.Fatal("-role mirror needs -peer")
		}
		db, err = rodain.OpenMirror(opts, *peer, *repl)
	default:
		log.Fatalf("unknown role %q", *role)
	}
	if err != nil {
		log.Fatalf("start: %v", err)
	}
	defer db.Close()

	if *ckptDir != "" {
		// Restore checkpoint + log tail as one pass: the tail replays
		// over the snapshot per stripe watermark, so ordering is handled
		// inside RecoverFromDir instead of here.
		var tail io.Reader
		if *recover_ != "" {
			rc, err := openLogReader(*recover_)
			if err != nil {
				log.Fatalf("recover: %v", err)
			}
			defer rc.Close()
			tail = rc
		}
		start := time.Now()
		if st, err := db.RecoverFromDir(*ckptDir, tail); err != nil {
			log.Fatalf("checkpoint recovery: %v", err)
		} else if st.LastSerial > 0 {
			log.Printf("restored checkpoint+tail to serial %d (%d txns replayed, %d writes skipped) in %v",
				st.LastSerial, st.Applied, st.WritesSkipped, time.Since(start).Round(time.Millisecond))
		}
	} else if *recover_ != "" {
		if err := recoverInto(db, *recover_); err != nil {
			log.Fatalf("recover: %v", err)
		}
	}
	if *role != "mirror" && db.Len() == 0 && *dbSize > 0 {
		log.Printf("populating %d number-translation entries", *dbSize)
		for i := 0; i < *dbSize; i++ {
			db.Load(rodain.ObjectID(i), telecom.Encode(&telecom.Entry{
				Routed:  fmt.Sprintf("+35850%07d", i),
				Weight:  100,
				Active:  true,
				Version: 1,
			}))
		}
	}

	srv := service.NewServerConfig(db, service.Config{
		PipelineDepth: *pipeDepth,
		Workers:       *svcWorkers,
		IdleTimeout:   *idleConn,
	})
	addr, err := srv.Listen(*listen)
	if err != nil {
		log.Fatalf("service listen: %v", err)
	}
	defer srv.Close()
	log.Printf("node %s serving clients on %s (repl %s)", *role, addr, db.ReplAddr())

	go func() {
		for ev := range db.Events() {
			log.Printf("event: %v %s", ev.Kind, ev.Detail)
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	log.Printf("shutting down; final stats: %+v", db.Stats().Outcome)
}

// openLogReader opens a stored log for replay: a single log file, or a
// directory of segments written by -log-segment-bytes (read in order).
func openLogReader(path string) (io.ReadCloser, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	if fi.IsDir() {
		return logstore.OpenSegmentsReader(path)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	// Buffered: the replay decodes one record at a time and would
	// otherwise pay a read syscall per record.
	return struct {
		io.Reader
		io.Closer
	}{bufio.NewReaderSize(f, 256<<10), f}, nil
}

func recoverInto(db *rodain.DB, path string) error {
	r, err := openLogReader(path)
	if err != nil {
		return err
	}
	defer r.Close()
	start := time.Now()
	st, err := db.Recover(r)
	if err != nil {
		return err
	}
	log.Printf("recovered %d transactions (%d writes, truncated=%v) in %v",
		st.Applied, st.WritesApplied, st.Truncated, time.Since(start).Round(time.Millisecond))
	return nil
}
