package rodain_test

import (
	"errors"
	"fmt"
	"time"

	rodain "repro"
)

// The basic lifecycle: open an embedded node, load data, run deadline-
// bound transactions.
func Example() {
	db, err := rodain.Open(rodain.Options{})
	if err != nil {
		panic(err)
	}
	defer db.Close()

	db.Load(800100200, []byte("+358501234567"))

	// An update transaction: read, modify, write — all deferred until
	// validation accepts the transaction.
	err = db.Update(50*time.Millisecond, func(tx *rodain.Tx) error {
		v, err := tx.Read(800100200)
		if err != nil {
			return err
		}
		return tx.Write(800100200, append(v, " (rerouted)"...))
	})
	if err != nil {
		panic(err)
	}

	v, _ := db.Get(800100200)
	fmt.Println(string(v))
	// Output: +358501234567 (rerouted)
}

// Firm deadlines abort rather than run late.
func ExampleDB_Update_deadline() {
	db, _ := rodain.Open(rodain.Options{Durability: rodain.DurNone})
	defer db.Close()
	db.Load(1, []byte("x"))

	err := db.Update(time.Millisecond, func(tx *rodain.Tx) error {
		time.Sleep(10 * time.Millisecond) // blows the 1 ms budget
		_, err := tx.Read(1)
		return err
	})
	fmt.Println(errors.Is(err, rodain.ErrDeadline))
	// Output: true
}

// Non-real-time transactions have no deadline and run in the
// scheduler's reserved share.
func ExampleDB_Exec() {
	db, _ := rodain.Open(rodain.Options{Durability: rodain.DurNone})
	defer db.Close()
	db.Load(1, []byte("value"))

	err := db.Exec(rodain.NonRealTime, 0, 0, func(tx *rodain.Tx) error {
		_, err := tx.Read(1)
		return err
	})
	fmt.Println(err)
	// Output: <nil>
}

// A replicated pair on loopback: the primary's commits wait for the
// mirror's acknowledgment instead of a disk write.
func ExampleOpenPrimary() {
	primary, err := rodain.OpenPrimary(rodain.Options{}, "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	defer primary.Close()
	primary.Load(1, []byte("replicated"))

	mirror, err := rodain.OpenMirror(rodain.Options{}, primary.ReplAddr(), "")
	if err != nil {
		panic(err)
	}
	defer mirror.Close()

	// Wait for the state transfer to finish.
	for ev := range primary.Events() {
		if ev.Kind == rodain.EventMirrorAttached {
			break
		}
	}
	err = primary.Update(50*time.Millisecond, func(tx *rodain.Tx) error {
		return tx.Write(1, []byte("shipped to the mirror"))
	})
	fmt.Println(err, primary.Stats().LogMode)
	// Output: <nil> ship
}
