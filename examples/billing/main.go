// Billing: typed subscriber profiles (the object layer) under concurrent
// update pressure. Many goroutines charge the same prepaid subscribers
// at once; optimistic concurrency control restarts the losers and the
// books still balance exactly — with every commit replicated to a hot
// stand-by.
package main

import (
	"errors"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	rodain "repro"
	"repro/internal/telecom"
)

const (
	subscribers = 3 // few subscribers → real contention
	workers     = 8
	chargesEach = 50
	chargeCents = 25
)

func main() {
	opts := rodain.Options{Workers: 4, MaxRestarts: 100}
	primary, err := rodain.OpenPrimary(opts, "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer primary.Close()
	mirror, err := rodain.OpenMirror(opts, primary.ReplAddr(), "")
	if err != nil {
		log.Fatal(err)
	}
	defer mirror.Close()
	for ev := range primary.Events() {
		if ev.Kind == rodain.EventMirrorAttached {
			break
		}
	}

	// Provision prepaid subscribers through transactions (replicated).
	const initialCents = 100_00
	for i := 0; i < subscribers; i++ {
		i := i
		err := primary.Update(150*time.Millisecond, func(tx *rodain.Tx) error {
			o := telecom.NewSubscriber(fmt.Sprintf("+35850%07d", i), fmt.Sprintf("Sub %d", i), true, initialCents)
			return tx.Write(telecom.SubscriberID(i), o.Encode())
		})
		if err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("provisioned %d prepaid subscribers with %d cents each\n", subscribers, initialCents)

	// Hammer the same subscribers from many goroutines.
	var succeeded, declined, conflicts atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := 0; c < chargesEach; c++ {
				id := telecom.SubscriberID((w + c) % subscribers)
				err := primary.Update(500*time.Millisecond, func(tx *rodain.Tx) error {
					enc, err := tx.Read(id)
					if err != nil {
						return err
					}
					// Rating: pricing the call takes real time, which
					// stretches the read→validate window and creates the
					// overlapping read-modify-writes OCC must arbitrate.
					time.Sleep(time.Millisecond)
					next, err := telecom.Charge(enc, chargeCents)
					if err != nil {
						return err // insufficient balance: business abort
					}
					return tx.Write(id, next)
				})
				switch {
				case err == nil:
					succeeded.Add(1)
				case errors.Is(err, rodain.ErrConflict):
					conflicts.Add(1)
				case err != nil && !errors.Is(err, rodain.ErrDeadline):
					declined.Add(1) // insufficient balance
				}
			}
		}()
	}
	wg.Wait()

	// Conservation check: every successful charge, and only those, left
	// the books.
	var total int64
	for i := 0; i < subscribers; i++ {
		enc, ok := primary.Get(telecom.SubscriberID(i))
		if !ok {
			log.Fatal("subscriber vanished")
		}
		o, err := telecom.Subscriber.Decode(enc)
		if err != nil {
			log.Fatal(err)
		}
		balance, _ := o.Int("balanceCents")
		total += balance
	}
	want := int64(subscribers*initialCents) - succeeded.Load()*chargeCents
	fmt.Printf("charges: %d succeeded, %d declined (balance), %d aborted after restarts\n",
		succeeded.Load(), declined.Load(), conflicts.Load())
	fmt.Printf("total balance %d cents, expected %d — ", total, want)
	if total == want {
		fmt.Println("books balance exactly")
	} else {
		log.Fatal("MONEY LEAKED")
	}
	st := primary.Stats()
	fmt.Printf("engine: %d commits, %d concurrency-control restarts, all shipped to the mirror\n",
		st.Outcome.Committed, st.Outcome.Restarts)
}
