// Failover: the availability story of the paper, live. A primary+mirror
// pair serves telecom traffic; the primary is killed mid-load; the
// mirror takes over almost instantly as a transient primary (logging to
// its own disk); the failed node restarts and rejoins — always as
// mirror — and the pair converges again.
package main

import (
	"errors"
	"fmt"
	"log"
	"time"

	rodain "repro"
)

func main() {
	opts := rodain.Options{
		Workers:         2,
		HeartbeatEvery:  25 * time.Millisecond,
		HeartbeatMisses: 4,
	}

	primary, err := rodain.OpenPrimary(opts, "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		primary.Load(rodain.ObjectID(i), []byte(fmt.Sprintf("entry-%d-v1", i)))
	}

	mirror, err := rodain.OpenMirror(opts, primary.ReplAddr(), "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer mirror.Close()
	waitEvent(primary, rodain.EventMirrorAttached)
	fmt.Println("pair is up: primary serving, mirror hot")

	// Committed work before the failure.
	for i := 0; i < 100; i++ {
		mustUpdate(primary, rodain.ObjectID(i), fmt.Sprintf("entry-%d-v2", i))
	}
	fmt.Println("committed 100 updates in normal (shipping) mode")

	// --- failure ---------------------------------------------------------
	fmt.Println("\n*** killing the primary ***")
	crash := time.Now()
	primary.Crash()

	waitEvent(mirror, rodain.EventTakeover)
	fmt.Printf("mirror took over after %v (watchdog detection + promotion)\n",
		time.Since(crash).Round(10*time.Microsecond))

	// The promoted node serves immediately, with every committed update.
	var v []byte
	err = mirror.View(100*time.Millisecond, func(tx *rodain.Tx) error {
		var rerr error
		v, rerr = tx.Read(42)
		return rerr
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read after takeover: object 42 = %q (committed data survived)\n", v)
	if string(v) != "entry-42-v2" {
		log.Fatal("committed update lost!")
	}
	for i := 100; i < 150; i++ {
		mustUpdate(mirror, rodain.ObjectID(i), fmt.Sprintf("entry-%d-v3", i))
	}
	fmt.Printf("committed 50 more updates in transient mode [log mode=%s]\n", mirror.Stats().LogMode)

	// --- rejoin ----------------------------------------------------------
	fmt.Println("\n*** restarting the failed node — it always rejoins as mirror ***")
	rejoined, err := rodain.OpenMirror(opts, mirror.ReplAddr(), "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer rejoined.Close()
	waitEvent(mirror, rodain.EventMirrorAttached)
	fmt.Printf("rejoined as mirror; server back in normal mode [log mode=%s]\n", mirror.Stats().LogMode)

	// Traffic ships to the new mirror again; verify convergence.
	for i := 150; i < 200; i++ {
		mustUpdate(mirror, rodain.ObjectID(i), fmt.Sprintf("entry-%d-v4", i))
	}
	deadline := time.Now().Add(5 * time.Second)
	for rejoined.Len() != mirror.Len() && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	v2, _ := rejoined.Get(120)
	fmt.Printf("rejoined mirror sees object 120 = %q (history transferred + live shipping)\n", v2)
	if string(v2) != "entry-120-v3" {
		log.Fatal("state transfer missed transient-mode commits")
	}
	fmt.Println("\nthe database service never moved off a live node; only the failed node changed roles")
}

func mustUpdate(db *rodain.DB, id rodain.ObjectID, value string) {
	err := db.Update(150*time.Millisecond, func(tx *rodain.Tx) error {
		if _, err := tx.Read(id); err != nil {
			return err
		}
		return tx.Write(id, []byte(value))
	})
	if err != nil && !errors.Is(err, rodain.ErrDeadline) {
		log.Fatalf("update %d: %v", id, err)
	}
}

func waitEvent(db *rodain.DB, kind rodain.EventKind) {
	deadline := time.After(10 * time.Second)
	for {
		select {
		case ev := <-db.Events():
			if ev.Kind == kind {
				return
			}
		case <-deadline:
			log.Fatalf("event %v never arrived", kind)
		}
	}
}
