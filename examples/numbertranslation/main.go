// Number translation: the paper's motivating telecom workload on a live
// primary + hot-stand-by pair over loopback TCP. It shows the paper's
// core effect — with the mirror attached, the disk leaves the commit
// critical path and commit waits drop from disk latency to a network
// round trip.
package main

import (
	"fmt"
	"log"
	"time"

	rodain "repro"
	"repro/internal/telecom"
)

const numbers = 20000

func main() {
	// The simulated 8 ms log-disk latency stands in for the paper era's
	// disk; modern storage would hide the effect being demonstrated.
	opts := rodain.Options{Workers: 2, SimulatedDiskLatency: 8 * time.Millisecond}

	primary, err := rodain.OpenPrimary(opts, "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer primary.Close()

	// Provision the number-translation database: 0800 service numbers
	// mapped to routing entries.
	for i := 0; i < numbers; i++ {
		primary.Load(rodain.ObjectID(i), telecom.Encode(&telecom.Entry{
			Routed:  fmt.Sprintf("+35850%07d", i),
			Weight:  100,
			Active:  true,
			Version: 1,
		}))
	}
	fmt.Printf("provisioned %d service numbers\n", numbers)

	// Phase 1: single node — every update commit waits for the disk.
	runLoad(primary, "transient mode (single node, disk on the commit path)")

	// Phase 2: attach the hot stand-by; commits now wait only for the
	// mirror's acknowledgment.
	mirror, err := rodain.OpenMirror(opts, primary.ReplAddr(), "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer mirror.Close()
	waitEvent(primary, rodain.EventMirrorAttached)
	fmt.Println("\nmirror attached — log shipping active")
	runLoad(primary, "normal mode (logs shipped to the mirror)")

	fmt.Println("\nthe update-commit drop is the paper's point: one message round trip replaces one disk write")
}

// runLoad performs a short burst of translate + reroute transactions and
// prints the commit-wait statistics.
func runLoad(db *rodain.DB, label string) {
	const n = 200
	before := db.Stats()
	start := time.Now()
	var updateTime time.Duration
	updates := 0
	for i := 0; i < n; i++ {
		id := rodain.ObjectID(i % numbers)
		var err error
		if i%5 == 0 { // update service provision
			t0 := time.Now()
			updates++
			err = db.Update(150*time.Millisecond, func(tx *rodain.Tx) error {
				v, err := tx.Read(id)
				if err != nil {
					return err
				}
				old, err := telecom.Decode(v)
				if err != nil {
					return err
				}
				next := telecom.Reroute(old, fmt.Sprintf("+35840%07d", i))
				return tx.Write(id, telecom.Encode(next))
			})
			updateTime += time.Since(t0)
		} else { // read-only service provision
			err = db.View(50*time.Millisecond, func(tx *rodain.Tx) error {
				_, terr := telecom.Translate(func(id rodain.ObjectID) ([]byte, bool) {
					v, rerr := tx.Read(id)
					return v, rerr == nil
				}, id)
				return terr
			})
		}
		if err != nil {
			log.Fatalf("transaction %d: %v", i, err)
		}
	}
	elapsed := time.Since(start)
	after := db.Stats()
	fmt.Printf("%s:\n", label)
	fmt.Printf("  %d transactions in %v (%.0f tps), commits %d\n",
		n, elapsed.Round(time.Millisecond), float64(n)/elapsed.Seconds(),
		after.Outcome.Committed-before.Outcome.Committed)
	fmt.Printf("  mean update-commit latency %v [mode=%s]\n",
		(updateTime / time.Duration(updates)).Round(10*time.Microsecond), after.LogMode)
}

func waitEvent(db *rodain.DB, kind rodain.EventKind) {
	deadline := time.After(10 * time.Second)
	for {
		select {
		case ev := <-db.Events():
			if ev.Kind == kind {
				return
			}
		case <-deadline:
			log.Fatalf("event %v never arrived", kind)
		}
	}
}
