// Quickstart: an embedded single-node RODAIN database — firm-deadline
// transactions over a main-memory store with a local redo log.
package main

import (
	"errors"
	"fmt"
	"log"
	"time"

	rodain "repro"
)

func main() {
	db, err := rodain.Open(rodain.Options{Name: "quickstart"})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Bulk-load some initial data (outside transactions).
	for i := 0; i < 1000; i++ {
		db.Load(rodain.ObjectID(i), []byte(fmt.Sprintf("subscriber-%04d", i)))
	}
	fmt.Printf("loaded %d objects\n", db.Len())

	// A read-write transaction with a 50 ms firm deadline. The body may
	// be retried after a concurrency-control restart, so it must be a
	// pure function of its reads.
	err = db.Update(50*time.Millisecond, func(tx *rodain.Tx) error {
		v, err := tx.Read(42)
		if err != nil {
			return err
		}
		return tx.Write(42, append(v, []byte(" (updated)")...))
	})
	if err != nil {
		log.Fatal(err)
	}

	// A read-only view.
	var got string
	err = db.View(50*time.Millisecond, func(tx *rodain.Tx) error {
		v, err := tx.Read(42)
		got = string(v)
		return err
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("object 42: %s\n", got)

	// Firm deadlines are real: a transaction that cannot finish in time
	// is aborted, never late. (The body sleeps past its 1 ms budget.)
	err = db.Update(time.Millisecond, func(tx *rodain.Tx) error {
		time.Sleep(10 * time.Millisecond)
		_, err := tx.Read(1)
		return err
	})
	switch {
	case errors.Is(err, rodain.ErrDeadline):
		fmt.Println("late transaction was aborted at its firm deadline — as designed")
	case err == nil:
		fmt.Println("unexpected: late transaction committed")
	default:
		fmt.Println("aborted:", err)
	}

	// Non-real-time work runs in a reserved share and has no deadline.
	err = db.Exec(rodain.NonRealTime, 0, 0, func(tx *rodain.Tx) error {
		_, err := tx.Read(1)
		return err
	})
	if err != nil {
		log.Fatal(err)
	}

	s := db.Stats()
	fmt.Printf("stats: %d submitted, %d committed, %d missed, mean response %v\n",
		s.Outcome.Submitted, s.Outcome.Committed, s.Outcome.Missed, s.MeanResponse)
}
