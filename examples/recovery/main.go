// Recovery: what the logs buy you when nodes die. Demonstrates
//
//  1. checkpoint + log-tail recovery after a crash (no data loss in
//     transient mode, where commits sync the disk), and
//  2. the paper's data-loss window: "the data storing to the disk is not
//     synchronized with the transaction commits" — a relaxed-durability
//     node that crashes loses the committed-but-unflushed tail, which
//     the paper accepts for telecom's temporal data.
package main

import (
	"bufio"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	rodain "repro"
)

func main() {
	dir, err := os.MkdirTemp("", "rodain-recovery")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	part1(dir)
	part2(dir)
}

// part1: disk-durable transient mode — everything committed survives.
func part1(dir string) {
	fmt.Println("— part 1: transient mode with true log writes —")
	logPath := filepath.Join(dir, "node.wal")
	db, err := rodain.Open(rodain.Options{LogPath: logPath, Durability: rodain.DurDisk})
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		db.Load(rodain.ObjectID(i), []byte("initial"))
	}
	for i := 0; i < 200; i++ {
		if err := db.Update(150*time.Millisecond, func(tx *rodain.Tx) error {
			return tx.Write(rodain.ObjectID(i), []byte(fmt.Sprintf("committed-%d", i)))
		}); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("committed 200 updates, log synced per commit")
	db.Crash()
	fmt.Println("*** node crashed ***")

	// A fresh node replays the log.
	recovered, err := rodain.Open(rodain.Options{Durability: rodain.DurDisk})
	if err != nil {
		log.Fatal(err)
	}
	defer recovered.Close()
	for i := 0; i < 1000; i++ {
		recovered.Load(rodain.ObjectID(i), []byte("initial"))
	}
	f, err := os.Open(logPath)
	if err != nil {
		log.Fatal(err)
	}
	st, err := recovered.Recover(bufio.NewReader(f))
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replayed the log in a single pass: %d transactions, %d writes, %d uncommitted discarded\n",
		st.Applied, st.WritesApplied, st.Discarded)
	v, _ := recovered.Get(199)
	fmt.Printf("object 199 after recovery: %q — nothing was lost\n\n", v)
	if string(v) != "committed-199" {
		log.Fatal("disk-durable commit lost!")
	}
}

// part2: relaxed durability — fast commits, bounded loss window.
func part2(dir string) {
	fmt.Println("— part 2: the data-loss window of asynchronous disk writes —")
	db, err := rodain.Open(rodain.Options{Durability: rodain.DurRelaxed})
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		db.Load(rodain.ObjectID(i), []byte("initial"))
	}
	start := time.Now()
	for i := 0; i < 200; i++ {
		if err := db.Update(150*time.Millisecond, func(tx *rodain.Tx) error {
			return tx.Write(rodain.ObjectID(i%100), []byte("relaxed"))
		}); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("200 relaxed commits in %v — no disk wait on the commit path\n",
		time.Since(start).Round(time.Millisecond))
	db.Crash()
	fmt.Println("*** node crashed: commits since the last flush are gone ***")
	fmt.Println("the paper's position: in two-node operation the mirror IS the stable storage,")
	fmt.Println("so this window only opens if both nodes fail inside it; for telecom's temporal")
	fmt.Println("data (it will be updated again soon) that residual risk is acceptable.")
}
