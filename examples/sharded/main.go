// Sharded: distribution across several RODAIN pairs. Three shards, each
// its own primary + hot-standby pair; transactions route by key; one
// shard's primary is killed and only that shard fails over — the others
// never notice.
package main

import (
	"fmt"
	"log"
	"time"

	rodain "repro"
	"repro/internal/cluster"
)

func main() {
	opts := rodain.Options{
		Workers:         2,
		HeartbeatEvery:  25 * time.Millisecond,
		HeartbeatMisses: 4,
	}

	// Boot three pairs.
	const shards = 3
	members := make([][]*rodain.DB, shards)
	for i := 0; i < shards; i++ {
		primary, err := rodain.OpenPrimary(opts, "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		mirror, err := rodain.OpenMirror(opts, primary.ReplAddr(), "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		waitEvent(primary, rodain.EventMirrorAttached)
		members[i] = []*rodain.DB{primary, mirror}
		defer primary.Close()
		defer mirror.Close()
	}
	c, err := cluster.New(members, 10*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cluster up: %d shards, each a primary+mirror pair\n", c.Shards())

	// Provision through transactions so every insert is logged and
	// shipped to the shard's mirror (Load would bypass replication).
	const keys = 3000
	for i := 0; i < keys; i++ {
		id := rodain.ObjectID(i)
		if err := c.Update(id, 150*time.Millisecond, func(tx *rodain.Tx) error {
			return tx.Write(id, []byte("v1"))
		}); err != nil {
			log.Fatal(err)
		}
	}
	for i := 0; i < 300; i++ {
		id := rodain.ObjectID(i * 7 % keys)
		if err := c.Update(id, 150*time.Millisecond, func(tx *rodain.Tx) error {
			return tx.Write(id, []byte("v2"))
		}); err != nil {
			log.Fatal(err)
		}
	}
	for i, m := range members {
		fmt.Printf("  shard %d holds %d keys\n", i, m[0].Len())
	}

	// Kill one shard's primary.
	fmt.Println("\n*** killing shard 1's primary ***")
	members[1][0].Crash()
	waitEvent(members[1][1], rodain.EventTakeover)
	fmt.Println("shard 1's mirror took over")

	// All keys stay reachable; the other shards never skipped a beat.
	ok := 0
	deadline := time.Now().Add(10 * time.Second)
	for i := 0; i < keys && time.Now().Before(deadline); i++ {
		id := rodain.ObjectID(i)
		err := c.View(id, 150*time.Millisecond, func(tx *rodain.Tx) error {
			_, err := tx.Read(id)
			return err
		})
		if err == nil {
			ok++
		}
	}
	fmt.Printf("after the failover %d/%d keys remain readable through the cluster\n", ok, keys)
	if ok != keys {
		log.Fatal("data became unreachable")
	}
	fmt.Println("distribution + per-shard hot standby: node failures stay local to one shard")
}

func waitEvent(db *rodain.DB, kind rodain.EventKind) {
	deadline := time.After(10 * time.Second)
	for {
		select {
		case ev := <-db.Events():
			if ev.Kind == kind {
				return
			}
		case <-deadline:
			log.Fatalf("event %v never arrived", kind)
		}
	}
}
