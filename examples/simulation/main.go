// Simulation: run one panel of the paper's study in seconds — the
// deterministic discrete-event model sweeps the arrival rate and prints
// the miss-ratio series of Fig 2(a) (two-node shipping vs single-node
// disk logging) plus an ASCII sketch of the curves.
package main

import (
	"flag"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	var (
		writeFrac = flag.Float64("writes", 0.05, "update-transaction fraction")
		count     = flag.Int("count", 5000, "transactions per session")
		reps      = flag.Int("reps", 5, "repetitions per point")
	)
	flag.Parse()

	rates := []float64{50, 100, 150, 200, 250, 300, 350, 400, 450, 500}
	fmt.Printf("miss ratio vs arrival rate (write fraction %.0f%%, %d txns × %d reps per point)\n\n",
		100**writeFrac, *count, *reps)
	fmt.Printf("%8s  %14s  %14s\n", "rate", "2 nodes (ship)", "1 node (disk)")

	var ship, disk []float64
	for _, rate := range rates {
		wl := workload.Default()
		wl.ArrivalRate = rate
		wl.WriteFraction = *writeFrac
		wl.Count = *count

		s := sim.MeanMissRatio(sim.RunRepeated(sim.Config{
			Workload: wl, LogMode: core.LogShip, MirrorDisk: true,
		}, *reps))
		d := sim.MeanMissRatio(sim.RunRepeated(sim.Config{
			Workload: wl, LogMode: core.LogDisk,
		}, *reps))
		ship = append(ship, s)
		disk = append(disk, d)
		fmt.Printf("%8.0f  %13.1f%%  %13.1f%%\n", rate, 100*s, 100*d)
	}

	fmt.Println("\nsketch (s = 2 nodes, d = 1 node, x axis = rate, y axis = miss ratio):")
	plot(rates, map[byte][]float64{'s': ship, 'd': disk})
	fmt.Println("\nthe single node saturates on its log disk long before the pair hits its CPU limit")
}

// plot draws a tiny ASCII chart, one column per rate.
func plot(xs []float64, series map[byte][]float64) {
	const rows = 12
	grid := make([][]byte, rows)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", len(xs)*6))
	}
	for mark, ys := range series {
		for i, y := range ys {
			row := rows - 1 - int(y*float64(rows-1)+0.5)
			col := i*6 + 3
			if grid[row][col] == ' ' {
				grid[row][col] = mark
			} else {
				grid[row][col] = '*' // overlap
			}
		}
	}
	for i, line := range grid {
		label := "    "
		switch i {
		case 0:
			label = "100%"
		case rows - 1:
			label = "  0%"
		}
		fmt.Printf("%s |%s\n", label, string(line))
	}
	fmt.Printf("     +%s\n      ", strings.Repeat("-", len(xs)*6))
	for _, x := range xs {
		fmt.Printf("%5.0f ", x)
	}
	fmt.Println()
}
