// Package atomicfield enforces all-or-nothing atomic access to struct
// fields.
//
// A field that is written with sync/atomic anywhere must be read and
// written with sync/atomic everywhere: one plain load of the engine's
// doomed flag, or of the lock-free File.Stats counters, is a data race
// that the race detector only catches if a test happens to interleave
// it. The pass records every field whose address is passed to a
// sync/atomic operation (atomic.AddUint64(&s.n, 1) and friends) as an
// object fact — so cross-package misuse is caught too — and then flags
// every other plain selector access to such a field.
//
// Fields of the typed atomic.Int64/Uint64/Bool/... kinds need no pass:
// their type makes non-atomic access impossible. Constructor-time plain
// initialization before the value is published takes a
// //rodain:allow atomicfield directive.
package atomicfield

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"repro/internal/analysis/rodainallow"
)

// IsAtomic marks a struct field as atomically accessed somewhere in the
// program.
type IsAtomic struct{}

// AFact marks IsAtomic as a serializable analysis fact.
func (*IsAtomic) AFact() {}

func (*IsAtomic) String() string { return "atomic" }

// Analyzer is the atomicfield pass.
var Analyzer = &analysis.Analyzer{
	Name:      "atomicfield",
	Doc:       "a field accessed via sync/atomic must never be read or written non-atomically",
	Requires:  []*analysis.Analyzer{inspect.Analyzer},
	FactTypes: []analysis.Fact{(*IsAtomic)(nil)},
	Run:       run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	allow := rodainallow.New(pass)
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	// Pass 1: find every &x.f handed to a sync/atomic call. The selector
	// positions are sanctioned (they ARE the atomic access); the field
	// objects become facts.
	sanctioned := make(map[token.Pos]bool)
	localAtomic := make(map[*types.Var]bool) // includes imported fields this package touches atomically
	ins.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		call := n.(*ast.CallExpr)
		if !isAtomicCall(pass, call) {
			return
		}
		for _, arg := range call.Args {
			un, ok := arg.(*ast.UnaryExpr)
			if !ok || un.Op != token.AND {
				continue
			}
			sel, ok := un.X.(*ast.SelectorExpr)
			if !ok {
				continue
			}
			field := fieldObject(pass, sel)
			if field == nil {
				continue
			}
			sanctioned[sel.Sel.Pos()] = true
			localAtomic[field] = true
			if field.Pkg() == pass.Pkg {
				pass.ExportObjectFact(field, &IsAtomic{})
			}
		}
	})

	// Pass 2: any other selector touching a marked field — declared in
	// this package (fact just exported) or imported (fact from upstream)
	// — is a non-atomic access.
	ins.Preorder([]ast.Node{(*ast.SelectorExpr)(nil)}, func(n ast.Node) {
		sel := n.(*ast.SelectorExpr)
		if sanctioned[sel.Sel.Pos()] {
			return
		}
		field := fieldObject(pass, sel)
		if field == nil {
			return
		}
		if !localAtomic[field] && !pass.ImportObjectFact(field, &IsAtomic{}) {
			return
		}
		if allow.Allowed("atomicfield", sel.Pos()) {
			return
		}
		pass.Reportf(sel.Pos(), "non-atomic access to field %s, which is accessed via sync/atomic elsewhere (or annotate with //rodain:allow atomicfield)", field.Name())
	})
	return nil, nil
}

// isAtomicCall reports whether call is a package-level sync/atomic
// operation (Load/Store/Add/Swap/CompareAndSwap variants).
func isAtomicCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	return fn.Type().(*types.Signature).Recv() == nil
}

// fieldObject resolves sel to the struct field it selects, if any.
func fieldObject(pass *analysis.Pass, sel *ast.SelectorExpr) *types.Var {
	obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Var)
	if !ok || !obj.IsField() {
		return nil
	}
	return obj
}
