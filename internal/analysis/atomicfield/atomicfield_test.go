package atomicfield_test

import (
	"testing"

	"repro/internal/analysis/atomicfield"
	"repro/internal/analysis/vettest"
)

func TestAtomicField(t *testing.T) {
	vettest.Run(t, "../testdata", atomicfield.Analyzer, "internal/counters")
}

// TestCrossPackage checks the IsAtomic object fact flows from the
// package that marks the field to a downstream importer.
func TestCrossPackage(t *testing.T) {
	vettest.Run(t, "../testdata", atomicfield.Analyzer, "internal/counteruse")
}
