// Package borrowedview keeps zero-copy reads zero-copy AND safe.
//
// store.View, store.ViewMeta and the transaction-level ReadView return
// slices that borrow the store's own memory: valid to read, never to
// stash. A caller that stores a borrowed slice into a struct field, a
// package variable, or a channel extends the borrow past the read —
// the slice silently stops reflecting the database after the next
// overwrite, and a later reader sees stale bytes with no race report.
// The sanctioned pattern is decode-and-discard (or copy with
// append/copy, which the pass does not flag because the stored value
// is then owned).
//
// The pass tracks, per function, the local variables bound to a
// borrowed result and flags the statements that let the slice header
// itself escape: assignment to a field or package-level variable
// (directly, via composite literal, or as an append element) and
// channel sends. Passing the borrow to a function or returning it is
// not flagged — the callee/caller inherits the same obligation.
package borrowedview

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"repro/internal/analysis/rodainallow"
)

// borrowMethods are the zero-copy read entry points. They are matched
// by name and a first []byte result, so the pass covers store.Store,
// txn.Transaction, core.Tx and any future wrapper uniformly.
var borrowMethods = map[string]bool{
	"View":     true,
	"ViewMeta": true,
	"ReadView": true,
}

// Analyzer is the borrowedview pass.
var Analyzer = &analysis.Analyzer{
	Name:     "borrowedview",
	Doc:      "View/ReadView borrowed slices must not escape into fields, globals or channels",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	allow := rodainallow.New(pass)
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	// Borrowed locals are tracked per enclosing function.
	type frame struct {
		borrowed map[*types.Var]bool
	}
	var stack []*frame
	top := func() *frame {
		if len(stack) == 0 {
			return nil
		}
		return stack[len(stack)-1]
	}

	report := func(pos ast.Node, what string) {
		if allow.Allowed("borrowedview", pos.Pos()) {
			return
		}
		pass.Reportf(pos.Pos(), "borrowed View/ReadView slice escapes into %s: the borrow is only valid until the next overwrite — copy the bytes instead (or annotate with //rodain:allow borrowedview)", what)
	}

	// isBorrowed reports whether e evaluates to a borrowed slice: a
	// tracked local, or a borrow call's direct result.
	isBorrowed := func(f *frame, e ast.Expr) bool {
		switch e := e.(type) {
		case *ast.Ident:
			v, ok := pass.TypesInfo.Uses[e].(*types.Var)
			return ok && f != nil && f.borrowed[v]
		case *ast.CallExpr:
			return isBorrowCall(pass, e)
		}
		return false
	}

	// escapingValue reports whether storing e stores a borrowed slice
	// header: e itself borrowed, a composite literal carrying one, or an
	// append with a borrowed element.
	var escapingValue func(f *frame, e ast.Expr) bool
	escapingValue = func(f *frame, e ast.Expr) bool {
		if isBorrowed(f, e) {
			return true
		}
		switch e := e.(type) {
		case *ast.CompositeLit:
			for _, el := range e.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					el = kv.Value
				}
				if escapingValue(f, el) {
					return true
				}
			}
		case *ast.UnaryExpr:
			return escapingValue(f, e.X)
		case *ast.CallExpr:
			// append(list, v) stores the header; append(dst, v...) copies.
			if id, ok := e.Fun.(*ast.Ident); ok && id.Name == "append" && e.Ellipsis == 0 {
				for _, arg := range e.Args[1:] {
					if escapingValue(f, arg) {
						return true
					}
				}
			}
		}
		return false
	}

	nodeFilter := []ast.Node{
		(*ast.FuncDecl)(nil),
		(*ast.FuncLit)(nil),
		(*ast.AssignStmt)(nil),
		(*ast.SendStmt)(nil),
	}
	ins.Nodes(nodeFilter, func(n ast.Node, push bool) bool {
		switch n := n.(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			if push {
				stack = append(stack, &frame{borrowed: make(map[*types.Var]bool)})
			} else {
				stack = stack[:len(stack)-1]
			}
		case *ast.AssignStmt:
			if !push {
				return true
			}
			f := top()
			if f == nil {
				return true
			}
			// First: does this statement bind or clear borrowed locals?
			// v, ok := s.View(id) marks v; v = anythingElse clears it.
			fromBorrow := len(n.Rhs) == 1 && isBorrowCall(pass, n.Rhs[0])
			for i, lhs := range n.Lhs {
				id, isIdent := lhs.(*ast.Ident)
				if isIdent && id.Name == "_" {
					continue // discarding a borrow is the sanctioned pattern
				}
				if isIdent {
					if v, ok := defOrUse(pass, id); ok {
						switch {
						case fromBorrow && i == 0 && isByteSlice(v.Type()):
							f.borrowed[v] = true
						case len(n.Rhs) == len(n.Lhs) && isBorrowed(f, n.Rhs[i]):
							f.borrowed[v] = true // alias of a borrow
						default:
							delete(f.borrowed, v) // overwritten with owned data
						}
						continue
					}
				}
				// Second: storing into a field, package var or element of
				// one lets the borrow escape.
				var rhs ast.Expr
				if len(n.Rhs) == len(n.Lhs) {
					rhs = n.Rhs[i]
				} else if len(n.Rhs) == 1 {
					rhs = n.Rhs[0]
					if fromBorrow && i != 0 {
						continue // multi-result borrow call: later positions get ok/ts values, not the slice
					}
				}
				if rhs == nil || !escapingValue(f, rhs) {
					continue
				}
				switch dst := lhs.(type) {
				case *ast.SelectorExpr:
					report(n, "field "+types.ExprString(dst))
				case *ast.IndexExpr:
					report(n, "element of "+types.ExprString(dst.X))
				case *ast.Ident:
					report(n, "package variable "+dst.Name)
				}
			}
		case *ast.SendStmt:
			if push {
				if f := top(); f != nil && escapingValue(f, n.Value) {
					report(n, "a channel")
				}
			}
		}
		return true
	})
	return nil, nil
}

// defOrUse resolves an identifier on the LHS of an assignment to the
// local variable it names (nil, false for fields, globals and _).
func defOrUse(pass *analysis.Pass, id *ast.Ident) (*types.Var, bool) {
	var obj types.Object
	if d, ok := pass.TypesInfo.Defs[id]; ok && d != nil {
		obj = d
	} else {
		obj = pass.TypesInfo.Uses[id]
	}
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return nil, false
	}
	if v.Parent() == v.Pkg().Scope() {
		return nil, false // package-level var: storing into it is an escape
	}
	return v, true
}

// isBorrowCall reports whether call invokes a zero-copy read: a method
// named View/ViewMeta/ReadView whose first result is []byte.
func isBorrowCall(pass *analysis.Pass, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !borrowMethods[sel.Sel.Name] {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	sig := fn.Type().(*types.Signature)
	if sig.Recv() == nil || sig.Results().Len() == 0 {
		return false
	}
	return isByteSlice(sig.Results().At(0).Type())
}

func isByteSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}
