package borrowedview_test

import (
	"testing"

	"repro/internal/analysis/borrowedview"
	"repro/internal/analysis/vettest"
)

func TestBorrowedView(t *testing.T) {
	vettest.Run(t, "../testdata", borrowedview.Analyzer, "internal/viewer")
}
