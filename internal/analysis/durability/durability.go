// Package durability flags ignored errors from log-device and WAL
// writes.
//
// The engine's crash-consistency property — every acknowledged commit
// is covered by a completed sync — only holds if every Append,
// AppendBatch and Sync on a log device, and every WAL encode that
// feeds one, has its error checked. An ignored Sync error acks a
// transaction whose log may not be on stable media; an ignored Append
// error corrupts the redo stream the mirror and recovery replay.
//
// A "log device" is recognized structurally: any type (or interface)
// whose method set includes Append([]byte) error and Sync() error —
// the logstore.Store contract — so the pass needs no dependency on the
// logstore package and covers test doubles too. WAL writer calls are
// matched by package name: wal.Encode, wal.WriteCheckpoint and the
// fuzzy-checkpoint header/trailer writers. The checkpoint publish path
// is covered too: (*os.File).Sync and os.Rename — a dropped error there
// lets a checkpoint that never reached disk justify truncating the log.
//
// Both silently dropped results (s.Sync() as a statement, go/defer
// s.Sync()) and explicit discards (_ = s.Sync()) are flagged; a
// deliberate best-effort call on a teardown path takes a
// //rodain:allow durability directive. Test files are exempt: tests
// routinely model the crashes these errors signal.
package durability

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"repro/internal/analysis/rodainallow"
)

// storeMethods are the logstore.Store operations whose errors carry the
// durability of acknowledged commits.
var storeMethods = map[string]bool{
	"Append":      true,
	"AppendBatch": true,
	"Sync":        true,
}

// walFuncs are the package-level WAL writers whose errors mean the redo
// stream — or a checkpoint a truncated log depends on — was not written.
var walFuncs = map[string]bool{
	"Encode":                 true,
	"WriteCheckpoint":        true,
	"WriteCheckpointHeader":  true,
	"WriteCheckpointTrailer": true,
}

// osFuncs are the os-package calls on the checkpoint publish path whose
// errors, if dropped, let a checkpoint that never reached disk justify
// truncating the log: the rename that publishes checkpoint.tmp, and the
// file/directory fsync that makes it durable ((*os.File).Sync is matched
// as a method, below).
var osFuncs = map[string]bool{
	"Rename": true,
}

// Analyzer is the durability pass.
var Analyzer = &analysis.Analyzer{
	Name:     "durability",
	Doc:      "flag ignored errors from log-device Append/AppendBatch/Sync and WAL writes",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	allow := rodainallow.New(pass)
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	report := func(call *ast.CallExpr, how string) {
		name := calleeName(call)
		if allow.Allowed("durability", call.Pos()) {
			return
		}
		pass.Reportf(call.Pos(), "%s error %s: an unchecked log write breaks the acked⟹synced crash-consistency property (or annotate with //rodain:allow durability)", name, how)
	}

	nodeFilter := []ast.Node{
		(*ast.ExprStmt)(nil),
		(*ast.GoStmt)(nil),
		(*ast.DeferStmt)(nil),
		(*ast.AssignStmt)(nil),
	}
	ins.Preorder(nodeFilter, func(n ast.Node) {
		if strings.HasSuffix(pass.Fset.Position(n.Pos()).Filename, "_test.go") {
			return
		}
		switch n := n.(type) {
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok && critical(pass, call) {
				report(call, "ignored")
			}
		case *ast.GoStmt:
			if critical(pass, n.Call) {
				report(n.Call, "ignored (go statement)")
			}
		case *ast.DeferStmt:
			if critical(pass, n.Call) {
				report(n.Call, "ignored (deferred)")
			}
		case *ast.AssignStmt:
			// _ = s.Sync() and err-position blanks in multi-assign.
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name != "_" {
					continue
				}
				var rhs ast.Expr
				if len(n.Rhs) == len(n.Lhs) {
					rhs = n.Rhs[i]
				} else if len(n.Rhs) == 1 {
					// Multi-value call: only the error result matters,
					// and every critical callee returns error last.
					if i != len(n.Lhs)-1 {
						continue
					}
					rhs = n.Rhs[0]
				}
				if call, ok := rhs.(*ast.CallExpr); ok && critical(pass, call) {
					report(call, "discarded into _")
				}
			}
		}
	})
	return nil, nil
}

func calleeName(call *ast.CallExpr) string {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		return sel.Sel.Name
	}
	return "call"
}

// critical reports whether call is a durability-critical write whose
// (last) result is an error.
func critical(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || !lastResultIsError(sig) {
		return false
	}
	if sig.Recv() != nil {
		// Method call: a log device, or an os.File fsync (checkpoint
		// files and directories are made durable through it)?
		if storeMethods[fn.Name()] && isLogDevice(sig.Recv().Type()) {
			return true
		}
		return fn.Name() == "Sync" && isOSFile(sig.Recv().Type())
	}
	if fn.Pkg() == nil {
		return false
	}
	// Package-level call: a WAL writer, or a checkpoint-publishing os
	// call?
	if fn.Pkg().Name() == "wal" && walFuncs[fn.Name()] {
		return true
	}
	return fn.Pkg().Path() == "os" && osFuncs[fn.Name()]
}

// isOSFile reports whether t is *os.File or os.File.
func isOSFile(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	return ok && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "os" && n.Obj().Name() == "File"
}

func lastResultIsError(sig *types.Signature) bool {
	res := sig.Results()
	if res.Len() == 0 {
		return false
	}
	t, ok := res.At(res.Len() - 1).Type().(*types.Named)
	return ok && t.Obj().Pkg() == nil && t.Obj().Name() == "error"
}

// isLogDevice reports whether t's method set carries the logstore.Store
// write contract: Append([]byte) error and Sync() error.
func isLogDevice(t types.Type) bool {
	return hasMethod(t, "Append", func(sig *types.Signature) bool {
		if sig.Params().Len() != 1 || sig.Results().Len() != 1 {
			return false
		}
		sl, ok := sig.Params().At(0).Type().Underlying().(*types.Slice)
		if !ok {
			return false
		}
		b, ok := sl.Elem().Underlying().(*types.Basic)
		return ok && b.Kind() == types.Byte && lastResultIsError(sig)
	}) && hasMethod(t, "Sync", func(sig *types.Signature) bool {
		return sig.Params().Len() == 0 && sig.Results().Len() == 1 && lastResultIsError(sig)
	})
}

func hasMethod(t types.Type, name string, match func(*types.Signature) bool) bool {
	// Use the pointer method set for addressable receivers.
	if _, ok := t.Underlying().(*types.Interface); !ok {
		if _, ok := t.(*types.Pointer); !ok {
			t = types.NewPointer(t)
		}
	}
	ms := types.NewMethodSet(t)
	for i := 0; i < ms.Len(); i++ {
		m := ms.At(i).Obj()
		if m.Name() != name {
			continue
		}
		sig, ok := m.Type().(*types.Signature)
		return ok && match(sig)
	}
	return false
}
