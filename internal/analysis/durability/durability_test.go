package durability_test

import (
	"testing"

	"repro/internal/analysis/durability"
	"repro/internal/analysis/vettest"
)

func TestDurability(t *testing.T) {
	vettest.Run(t, "../testdata", durability.Analyzer, "internal/durlog")
}
