// Package lockorder guards the store's multi-object atomics protocol.
//
// The striped store (and the sharded OCC controller) stay deadlock-free
// because every code path that needs more than one stripe acquires the
// stripes in ascending index order — in practice, by iterating the
// stripe slice with a range loop (range order is ascending by
// construction). A second stripe lock taken while one is held anywhere
// else is an unordered acquisition: two such paths running against each
// other deadlock.
//
// The pass recognizes a "lock family" by the type of the mutex's owner:
// acquiring a second lock whose owner has the same type as one already
// held (stripe/stripe, shard/shard) is flagged unless the acquisition
// site is inside a range loop. It also flags calls into other packages
// of this module made while a striped lock (a lock whose owner type is
// the element of some slice or array field, i.e. a stripe) is held:
// a cross-package call can re-enter the store and re-acquire.
//
// The analysis is intra-procedural and tracks statement order, not full
// control flow; the rare provably-safe nesting it cannot see takes a
// //rodain:allow lockorder directive.
package lockorder

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"repro/internal/analysis/rodainallow"
)

// Analyzer is the lockorder pass.
var Analyzer = &analysis.Analyzer{
	Name:     "lockorder",
	Doc:      "second stripe lock while one is held must be an ascending (range-loop) acquisition; no cross-package calls under a stripe lock",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

type heldLock struct {
	owner string     // rendered owner expression, for unlock matching
	typ   types.Type // owner type, the lock family
}

// frame is the per-function analysis state.
type frame struct {
	held       []heldLock
	rangeDepth int
	deferDepth int
}

func run(pass *analysis.Pass) (interface{}, error) {
	allow := rodainallow.New(pass)
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	striped := stripedTypes(pass.Pkg)

	var stack []*frame // one frame per enclosing func literal/decl
	top := func() *frame {
		if len(stack) == 0 {
			return nil
		}
		return stack[len(stack)-1]
	}

	nodeFilter := []ast.Node{
		(*ast.FuncDecl)(nil),
		(*ast.FuncLit)(nil),
		(*ast.RangeStmt)(nil),
		(*ast.DeferStmt)(nil),
		(*ast.CallExpr)(nil),
	}
	ins.Nodes(nodeFilter, func(n ast.Node, push bool) bool {
		if strings.HasSuffix(pass.Fset.Position(n.Pos()).Filename, "_test.go") {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			if push {
				stack = append(stack, &frame{})
			} else {
				stack = stack[:len(stack)-1]
			}
		case *ast.RangeStmt:
			if f := top(); f != nil {
				if push {
					f.rangeDepth++
				} else {
					f.rangeDepth--
				}
			}
		case *ast.DeferStmt:
			// A deferred unlock runs at function exit, not here: it must
			// not clear the held set at its source position.
			if f := top(); f != nil {
				if push {
					f.deferDepth++
				} else {
					f.deferDepth--
				}
			}
		case *ast.CallExpr:
			if push {
				visitCall(pass, allow, striped, top(), n)
			}
		}
		return true
	})
	return nil, nil
}

func visitCall(pass *analysis.Pass, allow *rodainallow.Index, striped map[types.Type]bool, f *frame, call *ast.CallExpr) {
	if f == nil || f.deferDepth > 0 {
		return
	}
	owner, typ, name := lockOp(pass, call)
	switch name {
	case "Lock", "RLock":
		for _, h := range f.held {
			if types.Identical(h.typ, typ) && f.rangeDepth == 0 && !allow.Allowed("lockorder", call.Pos()) {
				pass.Reportf(call.Pos(), "acquiring a second %s lock (%s) while %s is held: multi-stripe acquisition must iterate stripes in ascending order (range loop) (or annotate with //rodain:allow lockorder)",
					typeName(typ), owner, h.owner)
				break
			}
		}
		f.held = append(f.held, heldLock{owner: owner, typ: typ})
	case "Unlock", "RUnlock":
		for i := len(f.held) - 1; i >= 0; i-- {
			if f.held[i].owner == owner && types.Identical(f.held[i].typ, typ) {
				f.held = append(f.held[:i], f.held[i+1:]...)
				break
			}
		}
	default:
		// Any other call while a striped lock is held: flag if it leaves
		// this package for another package of this module.
		holdingStripe := ""
		for _, h := range f.held {
			if striped[h.typ] {
				holdingStripe = h.owner
				break
			}
		}
		if holdingStripe == "" {
			return
		}
		fn := callee(pass, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg() == pass.Pkg {
			return
		}
		if !strings.Contains(fn.Pkg().Path(), "internal/") {
			return // stdlib and external helpers cannot re-enter our locks
		}
		if allow.Allowed("lockorder", call.Pos()) {
			return
		}
		pass.Reportf(call.Pos(), "call to %s.%s while holding stripe lock %s: cross-package calls under a stripe lock can re-enter and deadlock (or annotate with //rodain:allow lockorder)",
			fn.Pkg().Name(), fn.Name(), holdingStripe)
	}
}

// lockOp decodes a mutex Lock/RLock/Unlock/RUnlock call, returning the
// rendered owner expression, the owner's type (the lock family), and
// the operation name. name is "" for any other call.
func lockOp(pass *analysis.Pass, call *ast.CallExpr) (owner string, typ types.Type, name string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", nil, ""
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", nil, ""
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", nil, ""
	}
	// Owner of the mutex: for x.mu.Lock() the owner is x; for an
	// embedded mutex (x.Lock()) the owner is x itself.
	ownerExpr := sel.X
	if inner, ok := sel.X.(*ast.SelectorExpr); ok && isMutexType(pass.TypesInfo.TypeOf(sel.X)) {
		ownerExpr = inner.X
	}
	t := pass.TypesInfo.TypeOf(ownerExpr)
	if t == nil {
		return "", nil, ""
	}
	return types.ExprString(ownerExpr), deref(t), sel.Sel.Name
}

func isMutexType(t types.Type) bool {
	n, ok := deref(t).(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

func deref(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

func typeName(t types.Type) string {
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return t.String()
}

func callee(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if fn, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	case *ast.Ident:
		if fn, ok := pass.TypesInfo.Uses[fun].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// stripedTypes collects the lock-stripe element types of the package:
// every named type that appears as the element of a slice or array
// field of some struct (store.stripe, occ.shard, ...).
func stripedTypes(pkg *types.Package) map[types.Type]bool {
	striped := make(map[types.Type]bool)
	for _, name := range pkg.Scope().Names() {
		tn, ok := pkg.Scope().Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			var elem types.Type
			switch ft := st.Field(i).Type().Underlying().(type) {
			case *types.Slice:
				elem = ft.Elem()
			case *types.Array:
				elem = ft.Elem()
			default:
				continue
			}
			if _, ok := deref(elem).(*types.Named); ok {
				striped[deref(elem)] = true
			}
		}
	}
	return striped
}
