package lockorder_test

import (
	"testing"

	"repro/internal/analysis/lockorder"
	"repro/internal/analysis/vettest"
)

func TestLockOrder(t *testing.T) {
	vettest.Run(t, "../testdata", lockorder.Analyzer, "internal/striped")
}
