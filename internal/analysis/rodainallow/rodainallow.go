// Package rodainallow parses //rodain:allow escape comments, the one
// sanctioned way to silence a rodain-vet pass at a call site that is
// deliberately outside its invariant (the wall-clock implementation
// itself, a measurement harness, a best-effort sync on a teardown
// path). The directive names the passes it silences, so an exemption
// from one invariant never leaks into another:
//
//	//rodain:allow wallclock (the clock implementation is the one place real time enters)
//	//rodain:allow wallclock,durability reason...
//
// A directive on its own line exempts the next line; a trailing
// directive exempts its own line.
package rodainallow

import (
	"go/ast"
	"go/token"
	"strings"

	"golang.org/x/tools/go/analysis"
)

const prefix = "//rodain:allow"

// Index records, per file and line, which passes have been exempted.
type Index struct {
	fset  *token.FileSet
	lines map[string]map[int]map[string]bool // filename -> line -> pass set
}

// New scans every file of pass for //rodain:allow directives.
func New(pass *analysis.Pass) *Index {
	ix := &Index{fset: pass.Fset, lines: make(map[string]map[int]map[string]bool)}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				ix.add(c)
			}
		}
	}
	return ix
}

func (ix *Index) add(c *ast.Comment) {
	if !strings.HasPrefix(c.Text, prefix) {
		return
	}
	rest := strings.TrimPrefix(c.Text, prefix)
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return // e.g. //rodain:allowother
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return
	}
	pos := ix.fset.Position(c.Pos())
	byLine := ix.lines[pos.Filename]
	if byLine == nil {
		byLine = make(map[int]map[string]bool)
		ix.lines[pos.Filename] = byLine
	}
	// The directive covers its own line (trailing comment) and the next
	// (standalone comment above the exempted statement).
	for _, line := range []int{pos.Line, pos.Line + 1} {
		set := byLine[line]
		if set == nil {
			set = make(map[string]bool)
			byLine[line] = set
		}
		for _, name := range strings.Split(fields[0], ",") {
			if name != "" {
				set[name] = true
			}
		}
	}
}

// Allowed reports whether a diagnostic from the named pass at pos has
// been exempted.
func (ix *Index) Allowed(name string, pos token.Pos) bool {
	p := ix.fset.Position(pos)
	return ix.lines[p.Filename][p.Line][name]
}
