package rodainallow

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"

	"golang.org/x/tools/go/analysis"
)

const src = `package p

func f() {
	//rodain:allow wallclock,durability (both invariants are off here)
	stmt()
	stmt() //rodain:allow lockorder trailing form
	stmt()
	//rodain:allowother not a directive
	stmt()
}

func stmt() {}
`

func TestDirectives(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	ix := New(&analysis.Pass{Fset: fset, Files: []*ast.File{f}})

	at := func(line int) token.Pos {
		return fset.File(f.Pos()).LineStart(line)
	}
	for _, tc := range []struct {
		name string
		line int
		want bool
	}{
		{"wallclock", 4, true},  // the directive's own line
		{"wallclock", 5, true},  // the next line
		{"durability", 5, true}, // comma-separated second pass
		{"lockorder", 5, false}, // not named by the directive
		{"wallclock", 6, false}, // out of range
		{"lockorder", 6, true},  // trailing form covers its own line
		{"lockorder", 7, true},  // ... and the next
		{"wallclock", 9, false}, // //rodain:allowother is not a directive
	} {
		if got := ix.Allowed(tc.name, at(tc.line)); got != tc.want {
			t.Errorf("Allowed(%q, line %d) = %v, want %v", tc.name, tc.line, got, tc.want)
		}
	}
}
