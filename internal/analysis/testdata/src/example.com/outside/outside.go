// Package outside sits outside the wallclock scope: its import path
// contains no "internal/", so the pass skips it entirely.
package outside

import "time"

func Sleepy() {
	time.Sleep(time.Millisecond)
	_ = time.Now()
}
