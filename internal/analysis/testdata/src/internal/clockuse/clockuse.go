// Package clockuse exercises the wallclock pass: forbidden time
// package clock reads, the method-call exemption, and the
// //rodain:allow escape hatch.
package clockuse

import "time"

func bad() {
	time.Sleep(time.Millisecond)  // want `time\.Sleep reads the wall clock`
	_ = time.Now()                // want `time\.Now reads the wall clock`
	ch := time.After(time.Second) // want `time\.After reads the wall clock`
	<-ch
	tm := time.NewTimer(time.Second) // want `time\.NewTimer reads the wall clock`
	tm.Stop()
	tk := time.NewTicker(time.Second) // want `time\.NewTicker reads the wall clock`
	tk.Stop()
	_ = time.Since(time.Time{}) // want `time\.Since reads the wall clock`
}

// methodsAreFine: Time.After is a method on a value — it compares two
// instants and carries no clock of its own.
func methodsAreFine(deadline time.Time) bool {
	return deadline.After(time.Time{})
}

// typesAreFine: durations and zero Times are pure data.
func typesAreFine() time.Duration {
	var t time.Time
	_ = t
	return 3 * time.Millisecond
}

func annotatedTrailing() {
	time.Sleep(time.Millisecond) //rodain:allow wallclock (fixture: sanctioned wall-clock use)
}

func annotatedStandalone() {
	//rodain:allow wallclock (fixture: sanctioned wall-clock use)
	time.Sleep(time.Millisecond)
}

func wrongPassName() {
	//rodain:allow durability (an exemption from one invariant must not leak into another)
	time.Sleep(time.Millisecond) // want `time\.Sleep reads the wall clock`
}
