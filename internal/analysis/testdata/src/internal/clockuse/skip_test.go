package clockuse

import "time"

// Test files are exempt: tests drive real goroutines and may use the
// wall clock freely. Nothing in this file is flagged.
func sleepInTest() {
	time.Sleep(time.Nanosecond)
	_ = time.Now()
}
