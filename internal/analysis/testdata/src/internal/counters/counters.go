// Package counters exercises the atomicfield pass within one package:
// a field whose address feeds sync/atomic must never be touched
// plainly. The exported Gauge is also imported by internal/counteruse
// to check that the fact crosses package boundaries.
package counters

import "sync/atomic"

type Gauge struct {
	N uint64
}

// Inc is the sanctioned access: it is what marks N as atomic.
func (g *Gauge) Inc() {
	atomic.AddUint64(&g.N, 1)
}

// Load is also sanctioned: the selector is an atomic operand.
func (g *Gauge) Load() uint64 {
	return atomic.LoadUint64(&g.N)
}

func plainRead(g *Gauge) uint64 {
	return g.N // want `non-atomic access to field N`
}

func plainWrite(g *Gauge) {
	g.N = 0 // want `non-atomic access to field N`
}

// NewGauge initializes the field before the value is published — the
// one place a plain write is deliberate.
func NewGauge(start uint64) *Gauge {
	g := &Gauge{}
	//rodain:allow atomicfield (constructor: g is not yet shared)
	g.N = start
	return g
}

// other is never touched atomically; plain access is fine.
type plain struct{ n uint64 }

func bump(p *plain) { p.n++ }

// stripe mimics the versioned store's structural-change counter: the
// generation is published with atomic stores (marking the field), so the
// seqlock-style miss check must load it atomically too — a plain read
// could tear against a concurrent republication.
type stripe struct {
	gen   uint64
	items map[uint64]uint64
}

func (s *stripe) republish() {
	atomic.AddUint64(&s.gen, 1)
}

// lookupMiss is the sanctioned lock-free miss check.
func (s *stripe) lookupMiss(tableGen uint64) bool {
	return atomic.LoadUint64(&s.gen) == tableGen
}

func (s *stripe) plainGen() uint64 {
	return s.gen // want `non-atomic access to field gen`
}
