// Package counteruse exercises the atomicfield pass across packages:
// counters.Gauge.N carries an IsAtomic fact exported by the counters
// package, so a plain access here is caught too.
package counteruse

import (
	"sync/atomic"

	"internal/counters"
)

func Read(g *counters.Gauge) uint64 {
	return g.N // want `non-atomic access to field N`
}

func ReadAtomic(g *counters.Gauge) uint64 {
	return atomic.LoadUint64(&g.N)
}
