// Package durlog exercises the durability pass: ignored and discarded
// errors on a structurally recognized log device (Append/Sync), on the
// wal package-level writers (including the fuzzy-checkpoint header and
// trailer), and on the checkpoint publish path (os.File fsync,
// os.Rename), plus the checked-good paths and the //rodain:allow escape
// hatch.
package durlog

import (
	"bytes"
	"os"

	"internal/wal"
)

// Dev satisfies the log-device contract structurally: the pass needs
// no logstore import to recognize it.
type Dev struct{}

func (*Dev) Append(b []byte) error         { _ = b; return nil }
func (*Dev) AppendBatch(bs [][]byte) error { _ = bs; return nil }
func (*Dev) Sync() error                   { return nil }

func ignored(d *Dev, b []byte) {
	d.Append(b)        // want `Append error ignored`
	d.AppendBatch(nil) // want `AppendBatch error ignored`
	d.Sync()           // want `Sync error ignored`
	_ = d.Sync()       // want `Sync error discarded into _`
	go d.Sync()        // want `Sync error ignored \(go statement\)`
	defer d.Sync()     // want `Sync error ignored \(deferred\)`
}

func encodeIgnored(buf *bytes.Buffer, r *wal.Record) {
	wal.Encode(buf, r)                   // want `Encode error ignored`
	wal.WriteCheckpoint(buf, nil)        // want `WriteCheckpoint error ignored`
	_ = wal.Encode(buf, r)               // want `Encode error discarded into _`
	wal.WriteCheckpointHeader(buf, 64)   // want `WriteCheckpointHeader error ignored`
	wal.WriteCheckpointTrailer(buf, nil) // want `WriteCheckpointTrailer error ignored`
}

// checkpointPublish: the tmp→final rename and the file/dir fsyncs that
// make a checkpoint durable are as critical as the log writes the
// checkpoint lets us truncate.
func checkpointPublish(f *os.File, dir *os.File) {
	f.Sync()                         // want `Sync error ignored`
	defer dir.Sync()                 // want `Sync error ignored \(deferred\)`
	os.Rename("a.tmp", "a.ckpt")     // want `Rename error ignored`
	_ = os.Rename("a.tmp", "a.ckpt") // want `Rename error discarded into _`
}

func checkedPublish(f *os.File, dir *os.File) error {
	if err := f.Sync(); err != nil {
		return err
	}
	if err := os.Rename("a.tmp", "a.ckpt"); err != nil {
		return err
	}
	return dir.Sync()
}

func harmlessOS(f *os.File) {
	f.Close()          // Close is not on the publish path: not flagged
	os.Remove("a.tmp") // stale-tmp cleanup is best-effort: not flagged
}

func checked(d *Dev, b []byte) error {
	if err := d.Append(b); err != nil {
		return err
	}
	return d.Sync()
}

func checkedEncode(buf *bytes.Buffer, r *wal.Record) error {
	if err := wal.Encode(buf, r); err != nil {
		return err
	}
	return wal.WriteCheckpoint(buf, buf.Bytes())
}

func bestEffortTeardown(d *Dev) {
	//rodain:allow durability (teardown: best-effort flush, errors have nowhere to go)
	d.Sync()
}

// notADevice: Append/Sync on a type without the full contract is not a
// log write.
type counter struct{ n int }

func (c *counter) Append(b []byte) error { c.n += len(b); return nil }

func harmless(c *counter) {
	c.Append(nil) // no Sync method: not a log device, not flagged
}
