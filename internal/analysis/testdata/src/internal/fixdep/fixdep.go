// Package fixdep is a module-internal dependency for the lockorder
// fixture: calling into it while a stripe lock is held is what the
// pass flags.
package fixdep

var hits int

func Touch() { hits++ }
