// Package shipper reproduces the regression shape the wallclock pass
// exists to prevent: the PR-3 group-commit shipper once parked its
// cohort hold loop on a real time.Sleep, blocking every commit on the
// wall clock regardless of the engine's configured simtime.Clock.
package shipper

import "time"

type cohort struct {
	open bool
	hold time.Duration
}

// awaitStragglers is the hold loop. The sleep below is exactly the
// bug: it must go through simtime.SleepOn(clock, c.hold) instead.
func (c *cohort) awaitStragglers() {
	for c.open {
		time.Sleep(c.hold) // want `time\.Sleep reads the wall clock`
	}
}
