// Package striped exercises the lockorder pass: unordered second
// stripe acquisitions, the range-loop (ascending order) exemption,
// cross-package calls under a stripe lock, deferred unlocks keeping
// the lock held, and the //rodain:allow escape hatch.
package striped

import (
	"sync"

	"internal/fixdep"
)

type stripe struct {
	mu sync.Mutex
	m  map[int]int
}

// Table's stripes field is what makes stripe a striped type.
type Table struct {
	stripes []stripe
}

func unordered(t *Table, i, j int) {
	t.stripes[i].mu.Lock()
	t.stripes[j].mu.Lock() // want `acquiring a second stripe lock`
	t.stripes[j].mu.Unlock()
	t.stripes[i].mu.Unlock()
}

// lockAll is the sanctioned multi-stripe pattern: range order is
// ascending by construction.
func lockAll(t *Table) {
	for i := range t.stripes {
		t.stripes[i].mu.Lock()
	}
	for i := range t.stripes {
		t.stripes[i].mu.Unlock()
	}
}

func crossPackage(t *Table, i int) {
	t.stripes[i].mu.Lock()
	fixdep.Touch() // want `cross-package calls under a stripe lock`
	t.stripes[i].mu.Unlock()
}

// deferredUnlock: the deferred unlock runs at return, so the call in
// between really is made under the stripe lock.
func deferredUnlock(t *Table, i int) {
	t.stripes[i].mu.Lock()
	defer t.stripes[i].mu.Unlock()
	fixdep.Touch() // want `cross-package calls under a stripe lock`
}

// sequential lock/unlock pairs never hold two stripes at once.
func sequential(t *Table, i, j int) {
	t.stripes[i].mu.Lock()
	t.stripes[i].mu.Unlock()
	t.stripes[j].mu.Lock()
	t.stripes[j].mu.Unlock()
}

// afterUnlock: once the stripe is released, calls out are fine.
func afterUnlock(t *Table, i int) {
	t.stripes[i].mu.Lock()
	t.stripes[i].mu.Unlock()
	fixdep.Touch()
}

func allowNested(t *Table, i, j int) {
	if i >= j {
		return
	}
	t.stripes[i].mu.Lock()
	//rodain:allow lockorder (fixture: the guard above proves i < j)
	t.stripes[j].mu.Lock()
	t.stripes[j].mu.Unlock()
	t.stripes[i].mu.Unlock()
}

// otherFamily: a lock of a different owner type is not a second
// stripe acquisition.
type registry struct {
	mu sync.Mutex
}

func mixedFamilies(t *Table, r *registry, i int) {
	t.stripes[i].mu.Lock()
	r.mu.Lock()
	r.mu.Unlock()
	t.stripes[i].mu.Unlock()
}
