// Package viewer exercises the borrowedview pass: borrowed zero-copy
// slices escaping into fields, package variables, channels and slice
// elements; the copy-and-own sanctioned patterns; alias tracking;
// reassignment clearing the borrow; and the //rodain:allow escape
// hatch.
package viewer

// Store is recognized structurally: View's first result is []byte.
type Store struct {
	buf []byte
}

func (s *Store) View(id uint64) ([]byte, bool) { _ = id; return s.buf, true }

type cache struct {
	last  []byte
	items [][]byte
}

var global []byte

func escapes(s *Store, c *cache, ch chan []byte, list [][]byte) {
	v, ok := s.View(1)
	_ = ok
	c.last = v  // want `escapes into field c\.last`
	global = v  // want `escapes into package variable global`
	ch <- v     // want `escapes into a channel`
	list[0] = v // want `escapes into element of list`
}

func escapesDirectCall(s *Store, c *cache) {
	c.last, _ = s.View(2) // want `escapes into field c\.last`
	_ = c.last
}

type pair struct {
	id uint64
	b  []byte
}

func escapesViaLiteral(s *Store, ch chan pair) {
	v, _ := s.View(3)
	ch <- pair{id: 3, b: v} // want `escapes into a channel`
}

func escapesViaAppend(s *Store, c *cache) {
	v, _ := s.View(4)
	c.items = append(c.items, v) // want `escapes into field c\.items`
}

func escapesViaAlias(s *Store, c *cache) {
	v, _ := s.View(5)
	w := v
	c.last = w // want `escapes into field c\.last`
}

// copies owns the bytes before storing: the sanctioned pattern.
func copies(s *Store, c *cache) {
	v, _ := s.View(6)
	c.last = append([]byte(nil), v...)
}

// reassigned: overwriting the local with owned data ends the borrow.
func reassigned(s *Store, c *cache) {
	v, _ := s.View(7)
	v = []byte("owned")
	c.last = v
}

// passing a borrow on, or returning it, hands the obligation to the
// caller — not flagged.
func returned(s *Store) []byte {
	v, _ := s.View(8)
	return v
}

func allowed(s *Store, c *cache) {
	v, _ := s.View(9)
	//rodain:allow borrowedview (fixture: consumer synchronizes with the store's epoch)
	c.last = v
}

// ViewMeta mirrors the versioned store's copy-free metadata read: the
// borrowed value slice comes back alongside the version's timestamps.
func (s *Store) ViewMeta(id uint64) ([]byte, uint64, uint64, bool) {
	_ = id
	return s.buf, 1, 2, true
}

// version mimics the store's published immutable version struct; caching
// a borrowed slice inside one re-publishes the borrow and must be
// flagged just like a plain field escape.
type version struct {
	value   []byte
	writeTS uint64
}

func escapesViaVersionLiteral(s *Store, ch chan *version) {
	v, _, wts, _ := s.ViewMeta(10)
	ch <- &version{value: v, writeTS: wts} // want `escapes into a channel`
}

func escapesViaVersionField(s *Store, ver *version) {
	v, _, wts, _ := s.ViewMeta(11)
	ver.writeTS = wts
	ver.value = v // want `escapes into field ver\.value`
}

// copiesVersion owns the bytes before installing them in a version —
// the sanctioned publication pattern (what store.Apply does).
func copiesVersion(s *Store, ch chan *version) {
	v, _, wts, _ := s.ViewMeta(12)
	ch <- &version{value: append([]byte(nil), v...), writeTS: wts}
}
