// Package wal is a stub of the engine's WAL writer API: the
// durability pass matches its package-level writers by package name
// and function name, so this fixture only needs the signatures.
package wal

import "io"

type Record struct {
	Type  int
	TxnID uint64
}

func Encode(w io.Writer, r *Record) error { _ = w; _ = r; return nil }

func WriteCheckpoint(w io.Writer, img []byte) error { _ = w; _ = img; return nil }

func WriteCheckpointHeader(w io.Writer, stripes int) error { _ = w; _ = stripes; return nil }

func WriteCheckpointTrailer(w io.Writer, marks []uint64) error { _ = w; _ = marks; return nil }
