// Package vettest is a miniature analysistest: it loads fixture
// packages from a testdata/src tree, type-checks them against the real
// standard library, runs an analyzer (and its inspect prerequisite)
// over every loaded package in dependency order, and compares the
// diagnostics against "// want" comments in the fixture sources.
//
// The vendored x/tools subset this module carries has no analysistest
// (which would drag in go/packages and an external driver); this
// harness covers what the rodain-vet passes need — multi-file fixture
// packages, fixture-local imports, object facts flowing between
// fixture packages, and regexp want-matching — in plain go/types.
//
// Fixture layout mirrors analysistest:
//
//	testdata/src/<import/path>/*.go
//
// Every import in a fixture file that resolves to a directory under
// testdata/src is loaded as another fixture package (facts propagate
// from it); anything else is resolved from the standard library
// source.
//
// Expectations are end-of-line comments of the form
//
//	expr // want "regexp"
//	expr // want `regexp` "second regexp"
//
// Each regexp must match the message of a diagnostic reported on that
// line; diagnostics with no matching want, and wants with no matching
// diagnostic, fail the test.
package vettest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// Run loads the fixture package at testdata/src/<path> (testdata is
// resolved relative to the test's working directory), runs a over it
// and all fixture packages it imports, and reports every mismatch
// between diagnostics and want comments as a test error.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, path string) {
	t.Helper()
	l := newLoader(filepath.Join(testdata, "src"))
	if _, err := l.load(path); err != nil {
		t.Fatalf("load %s: %v", path, err)
	}

	facts := make(factStore)
	var diags []diag
	for _, p := range l.order { // dependencies first, so facts flow forward
		pkg := l.pkgs[p]
		results := make(map[*analysis.Analyzer]interface{})
		if err := runWithDeps(a, pkg, l.fset, facts, results, func(d analysis.Diagnostic) {
			pos := l.fset.Position(d.Pos)
			diags = append(diags, diag{file: pos.Filename, line: pos.Line, msg: d.Message})
		}); err != nil {
			t.Fatalf("run %s on %s: %v", a.Name, p, err)
		}
	}

	wants := collectWants(t, l)
	matchDiagnostics(t, wants, diags)
}

// diag is one reported diagnostic, positioned by file and line.
type diag struct {
	file string
	line int
	msg  string
}

// want is one expectation parsed from a fixture comment.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	used bool
}

// loader loads fixture packages, recursively resolving fixture-local
// imports and falling back to the standard library's source for the
// rest.
type loader struct {
	srcdir string
	fset   *token.FileSet
	std    types.Importer
	pkgs   map[string]*fixturePkg
	order  []string // load (topological) order, dependencies first
}

type fixturePkg struct {
	path  string
	files []*ast.File
	pkg   *types.Package
	info  *types.Info
}

func newLoader(srcdir string) *loader {
	fset := token.NewFileSet()
	return &loader{
		srcdir: srcdir,
		fset:   fset,
		std:    importer.ForCompiler(fset, "source", nil),
		pkgs:   make(map[string]*fixturePkg),
	}
}

// Import implements types.Importer over the fixture tree: fixture
// directories shadow everything else; the rest is standard library.
func (l *loader) Import(path string) (*types.Package, error) {
	if dir := filepath.Join(l.srcdir, filepath.FromSlash(path)); isDir(dir) {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return p.pkg, nil
	}
	return l.std.Import(path)
}

// load parses and type-checks the fixture package at srcdir/path.
func (l *loader) load(path string) (*fixturePkg, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	dir := filepath.Join(l.srcdir, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := &types.Info{
		Types:        make(map[ast.Expr]types.TypeAndValue),
		Instances:    make(map[*ast.Ident]types.Instance),
		Defs:         make(map[*ast.Ident]types.Object),
		Uses:         make(map[*ast.Ident]types.Object),
		Implicits:    make(map[ast.Node]types.Object),
		Selections:   make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:       make(map[ast.Node]*types.Scope),
		FileVersions: make(map[*ast.File]string),
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, err
	}
	p := &fixturePkg{path: path, files: files, pkg: pkg, info: info}
	l.pkgs[path] = p
	l.order = append(l.order, path)
	return p, nil
}

func isDir(path string) bool {
	fi, err := os.Stat(path)
	return err == nil && fi.IsDir()
}

// factStore holds object facts across fixture packages, in memory: the
// in-process equivalent of the fact files a vet driver would persist.
type factStore map[types.Object][]analysis.Fact

func (s factStore) export(obj types.Object, f analysis.Fact) {
	for i, got := range s[obj] {
		if reflect.TypeOf(got) == reflect.TypeOf(f) {
			s[obj][i] = f
			return
		}
	}
	s[obj] = append(s[obj], f)
}

func (s factStore) importFact(obj types.Object, f analysis.Fact) bool {
	for _, got := range s[obj] {
		if reflect.TypeOf(got) == reflect.TypeOf(f) {
			reflect.ValueOf(f).Elem().Set(reflect.ValueOf(got).Elem())
			return true
		}
	}
	return false
}

// runWithDeps runs a's prerequisite analyzers (memoized in results),
// then a itself, over one fixture package.
func runWithDeps(a *analysis.Analyzer, pkg *fixturePkg, fset *token.FileSet, facts factStore, results map[*analysis.Analyzer]interface{}, report func(analysis.Diagnostic)) error {
	for _, dep := range a.Requires {
		if _, done := results[dep]; done {
			continue
		}
		if err := runWithDeps(dep, pkg, fset, facts, results, func(analysis.Diagnostic) {}); err != nil {
			return err
		}
	}
	pass := &analysis.Pass{
		Analyzer:   a,
		Fset:       fset,
		Files:      pkg.files,
		Pkg:        pkg.pkg,
		TypesInfo:  pkg.info,
		TypesSizes: types.SizesFor("gc", "amd64"),
		ResultOf:   results,
		Report:     report,
		ImportObjectFact: func(obj types.Object, f analysis.Fact) bool {
			return facts.importFact(obj, f)
		},
		ExportObjectFact: func(obj types.Object, f analysis.Fact) {
			facts.export(obj, f)
		},
		ImportPackageFact: func(*types.Package, analysis.Fact) bool { return false },
		ExportPackageFact: func(analysis.Fact) {},
		AllObjectFacts:    func() []analysis.ObjectFact { return nil },
		AllPackageFacts:   func() []analysis.PackageFact { return nil },
	}
	res, err := a.Run(pass)
	if err != nil {
		return err
	}
	results[a] = res
	return nil
}

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)

// collectWants parses every "// want" comment in the loaded fixture
// files into line-anchored expectations.
func collectWants(t *testing.T, l *loader) []*want {
	t.Helper()
	var wants []*want
	for _, p := range l.order {
		for _, f := range l.pkgs[p].files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRE.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := l.fset.Position(c.Pos())
					for _, pat := range splitPatterns(m[1]) {
						re, err := regexp.Compile(pat)
						if err != nil {
							t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, pat, err)
						}
						wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
					}
				}
			}
		}
	}
	return wants
}

// splitPatterns extracts the quoted regexps of a want comment body:
// "..." (interpreted) or `...` (raw), space-separated.
func splitPatterns(s string) []string {
	var pats []string
	s = strings.TrimSpace(s)
	for s != "" {
		switch s[0] {
		case '"':
			end := 1
			for end < len(s) && (s[end] != '"' || s[end-1] == '\\') {
				end++
			}
			if end >= len(s) {
				return pats
			}
			if unq, err := strconv.Unquote(s[:end+1]); err == nil {
				pats = append(pats, unq)
			}
			s = strings.TrimSpace(s[end+1:])
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return pats
			}
			pats = append(pats, s[1:1+end])
			s = strings.TrimSpace(s[2+end:])
		default:
			return pats
		}
	}
	return pats
}

// matchDiagnostics pairs diagnostics with wants and reports every
// leftover on either side.
func matchDiagnostics(t *testing.T, wants []*want, diags []diag) {
	t.Helper()
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].file != diags[j].file {
			return diags[i].file < diags[j].file
		}
		return diags[i].line < diags[j].line
	})
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.used || w.file != d.file || w.line != d.line || !w.re.MatchString(d.msg) {
				continue
			}
			w.used = true
			matched = true
			break
		}
		if !matched {
			t.Errorf("%s:%d: unexpected diagnostic: %s", filepath.Base(d.file), d.line, d.msg)
		}
	}
	for _, w := range wants {
		if !w.used {
			t.Errorf("%s:%d: no diagnostic matching %q", filepath.Base(w.file), w.line, w.re)
		}
	}
}
