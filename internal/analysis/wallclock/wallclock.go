// Package wallclock forbids direct wall-clock time in engine code.
//
// The engine's latency and availability numbers are only reproducible —
// and its simulated-time tests only deterministic — if every "what time
// is it" and "call me later" goes through simtime.Clock. A hard-coded
// time.Sleep on the hot path (the PR-3 shipper bug) blocks a commit on
// the wall clock no matter what clock the engine was configured with;
// a stray time.Now splits the timeline between virtual and real time.
//
// The pass flags any reference to the time package's clock-reading and
// timer primitives (time.Now, Sleep, Since, Until, After, Tick,
// NewTimer, NewTicker, AfterFunc) in non-test code of in-scope
// packages. Places where real time is the point — the wall-clock
// implementation itself, socket deadlines, measurement harnesses —
// carry a //rodain:allow wallclock directive.
package wallclock

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"repro/internal/analysis/rodainallow"
)

// forbidden are the time package functions that read or schedule on the
// wall clock. Pure data types and conversions (time.Duration,
// time.Time{}, time.Millisecond) stay legal: they carry no clock.
var forbidden = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"Since":     true,
	"Until":     true,
	"After":     true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
	"AfterFunc": true,
}

var scope string

// Analyzer is the wallclock pass.
var Analyzer = &analysis.Analyzer{
	Name:     "wallclock",
	Doc:      "forbid time.Now/Sleep/timers in engine code: all time must flow through simtime.Clock",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func init() {
	Analyzer.Flags.StringVar(&scope, "scope", "internal/",
		"restrict the pass to packages whose import path contains this substring (empty = every package)")
}

func run(pass *analysis.Pass) (interface{}, error) {
	if scope != "" && !strings.Contains(pass.Pkg.Path(), scope) {
		return nil, nil
	}
	allow := rodainallow.New(pass)
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	nodeFilter := []ast.Node{(*ast.SelectorExpr)(nil)}
	ins.Preorder(nodeFilter, func(n ast.Node) {
		sel := n.(*ast.SelectorExpr)
		if !forbidden[sel.Sel.Name] {
			return
		}
		obj := pass.TypesInfo.Uses[sel.Sel]
		if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "time" {
			return
		}
		fn, ok := obj.(*types.Func)
		if !ok || fn.Type().(*types.Signature).Recv() != nil {
			return // methods like Time.After carry no clock of their own
		}
		if inTestFile(pass, sel) {
			return
		}
		if allow.Allowed("wallclock", sel.Pos()) {
			return
		}
		pass.Reportf(sel.Pos(), "time.%s reads the wall clock: engine code must use simtime.Clock (or annotate with //rodain:allow wallclock)", sel.Sel.Name)
	})
	return nil, nil
}

func inTestFile(pass *analysis.Pass, n ast.Node) bool {
	return strings.HasSuffix(pass.Fset.Position(n.Pos()).Filename, "_test.go")
}
