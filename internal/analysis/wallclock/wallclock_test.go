package wallclock_test

import (
	"testing"

	"repro/internal/analysis/vettest"
	"repro/internal/analysis/wallclock"
)

func TestWallclock(t *testing.T) {
	vettest.Run(t, "../testdata", wallclock.Analyzer, "internal/clockuse")
}

// TestShipperRegression replays the PR-3 bug shape: a real sleep in a
// group-commit hold loop must be flagged.
func TestShipperRegression(t *testing.T) {
	vettest.Run(t, "../testdata", wallclock.Analyzer, "internal/shipper")
}

// TestScope: packages outside the configured import-path scope are
// skipped entirely.
func TestScope(t *testing.T) {
	vettest.Run(t, "../testdata", wallclock.Analyzer, "example.com/outside")
}
