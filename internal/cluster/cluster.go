// Package cluster distributes a database over several RODAIN pairs.
// Distribution is one of the requirements the RODAIN architecture lists
// (each node in the architecture diagram carries a "Distributed Database
// Management" subsystem): the key space is partitioned into shards, each
// shard is one primary+mirror pair, and every transaction executes on
// the single node that owns its keys — exactly the paper's execution
// model, scaled out.
//
// The cluster offers no cross-shard transactions (RODAIN transactions
// run on one node; there is no two-phase commit here). A transaction
// that needs keys from several shards must be split by the application;
// ScatterView helps with read-only fan-outs but gives only per-shard
// consistency.
package cluster

import (
	"errors"
	"fmt"
	"time"

	rodain "repro"
	"repro/internal/simtime"
)

// Cluster routes transactions to the RODAIN pair owning their keys.
type Cluster struct {
	shards  [][]*rodain.DB // members of each shard (any order; the serving one is found)
	timeout time.Duration
	clock   simtime.Clock // times takeover waits; the shared wall clock by default
}

// New builds a cluster from shard member lists. Each inner slice holds
// the nodes of one pair (primary and mirror, in any order — the cluster
// finds whichever is serving). timeout bounds how long a routed
// transaction may spend waiting out a takeover.
func New(shards [][]*rodain.DB, timeout time.Duration) (*Cluster, error) {
	if len(shards) == 0 {
		return nil, errors.New("cluster: no shards")
	}
	for i, members := range shards {
		if len(members) == 0 {
			return nil, fmt.Errorf("cluster: shard %d has no members", i)
		}
	}
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	return &Cluster{shards: shards, timeout: timeout, clock: simtime.Wall}, nil
}

// Shards reports the number of shards.
func (c *Cluster) Shards() int { return len(c.shards) }

// ShardFor maps a key to its owning shard: a multiplicative hash so that
// dense key ranges still spread evenly.
func (c *Cluster) ShardFor(id rodain.ObjectID) int {
	h := uint64(id) * 0x9E3779B97F4A7C15
	return int(h % uint64(len(c.shards)))
}

// Load bulk-inserts a value on its owning shard's serving node. Like
// rodain.DB.Load it bypasses logging and replication: use it only before
// mirrors attach, and use Update for replicated inserts.
func (c *Cluster) Load(id rodain.ObjectID, value []byte) error {
	db, err := c.serving(c.ShardFor(id))
	if err != nil {
		return err
	}
	db.Load(id, value)
	return nil
}

// Get reads the latest committed value from the owning shard.
func (c *Cluster) Get(id rodain.ObjectID) ([]byte, bool) {
	db, err := c.serving(c.ShardFor(id))
	if err != nil {
		return nil, false
	}
	return db.Get(id)
}

// Update runs fn as a firm-deadline transaction on the shard owning key.
// Every object the transaction touches must belong to that shard — the
// routing key is the application's promise, like a partition key in any
// sharded store.
func (c *Cluster) Update(key rodain.ObjectID, deadline time.Duration, fn func(*rodain.Tx) error) error {
	return c.execute(c.ShardFor(key), func(db *rodain.DB) error {
		return db.Update(deadline, fn)
	})
}

// View runs fn as a read-only transaction on the shard owning key.
func (c *Cluster) View(key rodain.ObjectID, deadline time.Duration, fn func(*rodain.Tx) error) error {
	return c.execute(c.ShardFor(key), func(db *rodain.DB) error {
		return db.View(deadline, fn)
	})
}

// ScatterView runs one read-only transaction per shard (fn receives the
// shard index). Each shard's view is transactionally consistent; the
// combination across shards is not — there is no global snapshot.
func (c *Cluster) ScatterView(deadline time.Duration, fn func(shard int, tx *rodain.Tx) error) error {
	errs := make(chan error, len(c.shards))
	for i := range c.shards {
		i := i
		go func() {
			errs <- c.execute(i, func(db *rodain.DB) error {
				return db.View(deadline, func(tx *rodain.Tx) error { return fn(i, tx) })
			})
		}()
	}
	var first error
	for range c.shards {
		if err := <-errs; err != nil && first == nil {
			first = err
		}
	}
	return first
}

// execute runs op on the shard's serving member, waiting out takeovers
// within the cluster timeout.
func (c *Cluster) execute(shard int, op func(*rodain.DB) error) error {
	deadline := c.clock.Now().Add(c.timeout)
	var lastErr error
	for {
		for _, db := range c.shards[shard] {
			err := op(db)
			if err == nil ||
				(!errors.Is(err, rodain.ErrNotServing) && !errors.Is(err, rodain.ErrClosed)) {
				return err
			}
			lastErr = err
		}
		if c.clock.Now() > deadline {
			return fmt.Errorf("cluster: shard %d has no serving node: %w", shard, lastErr)
		}
		simtime.SleepOn(c.clock, 10*time.Millisecond)
	}
}

// serving returns the shard's currently serving member.
func (c *Cluster) serving(shard int) (*rodain.DB, error) {
	deadline := c.clock.Now().Add(c.timeout)
	for {
		for _, db := range c.shards[shard] {
			if db.Serving() {
				return db, nil
			}
		}
		if c.clock.Now() > deadline {
			return nil, fmt.Errorf("cluster: shard %d has no serving node", shard)
		}
		simtime.SleepOn(c.clock, 10*time.Millisecond)
	}
}

// Stats aggregates the outcome tallies of every shard's serving node.
func (c *Cluster) Stats() []rodain.Stats {
	out := make([]rodain.Stats, len(c.shards))
	for i := range c.shards {
		if db, err := c.serving(i); err == nil {
			out[i] = db.Stats()
		}
	}
	return out
}
