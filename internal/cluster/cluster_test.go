package cluster

import (
	"errors"
	"fmt"
	"testing"
	"time"

	rodain "repro"
)

// startShardPair boots one primary+mirror pair for a shard.
func startShardPair(t *testing.T, name string) (*rodain.DB, *rodain.DB) {
	t.Helper()
	opts := rodain.Options{
		Name:            name,
		Workers:         2,
		HeartbeatEvery:  25 * time.Millisecond,
		HeartbeatMisses: 4,
	}
	primary, err := rodain.OpenPrimary(opts, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	mirror, err := rodain.OpenMirror(opts, primary.ReplAddr(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		primary.Close()
		mirror.Close()
	})
	deadline := time.After(10 * time.Second)
	for {
		select {
		case ev := <-primary.Events():
			if ev.Kind == rodain.EventMirrorAttached {
				return primary, mirror
			}
		case <-deadline:
			t.Fatal("mirror never attached")
		}
	}
}

func newTestCluster(t *testing.T, shards int) (*Cluster, [][]*rodain.DB) {
	t.Helper()
	members := make([][]*rodain.DB, shards)
	for i := range members {
		p, m := startShardPair(t, fmt.Sprintf("shard%d", i))
		members[i] = []*rodain.DB{p, m}
	}
	c, err := New(members, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	return c, members
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, 0); err == nil {
		t.Fatal("empty cluster accepted")
	}
	if _, err := New([][]*rodain.DB{{}}, 0); err == nil {
		t.Fatal("empty shard accepted")
	}
}

func TestRoutingIsStableAndSpread(t *testing.T) {
	c, _ := newTestCluster(t, 3)
	counts := make([]int, 3)
	for i := 0; i < 3000; i++ {
		s := c.ShardFor(rodain.ObjectID(i))
		if s != c.ShardFor(rodain.ObjectID(i)) {
			t.Fatal("routing not stable")
		}
		counts[s]++
	}
	for s, n := range counts {
		if n < 600 || n > 1400 {
			t.Fatalf("shard %d got %d of 3000 keys — poor spread", s, n)
		}
	}
}

func TestUpdateAndViewRouted(t *testing.T) {
	c, members := newTestCluster(t, 2)
	const keys = 200
	for i := 0; i < keys; i++ {
		if err := c.Load(rodain.ObjectID(i), []byte("init")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < keys; i++ {
		id := rodain.ObjectID(i)
		err := c.Update(id, time.Second, func(tx *rodain.Tx) error {
			return tx.Write(id, []byte(fmt.Sprintf("updated-%d", i)))
		})
		if err != nil {
			t.Fatalf("update %d: %v", i, err)
		}
	}
	for i := 0; i < keys; i++ {
		id := rodain.ObjectID(i)
		var got []byte
		err := c.View(id, time.Second, func(tx *rodain.Tx) error {
			v, err := tx.Read(id)
			got = v
			return err
		})
		if err != nil || string(got) != fmt.Sprintf("updated-%d", i) {
			t.Fatalf("view %d: %q %v", i, got, err)
		}
	}
	// The shards hold disjoint key subsets that sum to the whole.
	total := 0
	for _, m := range members {
		total += m[0].Len()
	}
	if total != keys {
		t.Fatalf("shard sizes sum to %d, want %d", total, keys)
	}
	for _, m := range members {
		if m[0].Len() == 0 {
			t.Fatal("a shard holds no keys — routing is degenerate")
		}
	}
}

func TestWrongShardKeyMissing(t *testing.T) {
	c, _ := newTestCluster(t, 2)
	if err := c.Load(1, []byte("v")); err != nil {
		t.Fatal(err)
	}
	// Reading key 1 while routing by some other shard's key fails: the
	// object lives elsewhere.
	other := rodain.ObjectID(0)
	for c.ShardFor(other) == c.ShardFor(1) {
		other++
	}
	err := c.View(other, time.Second, func(tx *rodain.Tx) error {
		_, err := tx.Read(1)
		return err
	})
	if err == nil {
		t.Fatal("cross-shard read succeeded — partitioning is broken")
	}
}

func TestScatterView(t *testing.T) {
	c, _ := newTestCluster(t, 3)
	for i := 0; i < 300; i++ {
		if err := c.Load(rodain.ObjectID(i), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	seen := make([]bool, 3)
	err := c.ScatterView(time.Second, func(shard int, tx *rodain.Tx) error {
		seen[shard] = true
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for s, ok := range seen {
		if !ok {
			t.Fatalf("shard %d not visited", s)
		}
	}
	boom := errors.New("boom")
	err = c.ScatterView(time.Second, func(shard int, tx *rodain.Tx) error {
		if shard == 1 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("scatter error = %v", err)
	}
}

func TestClusterSurvivesShardFailover(t *testing.T) {
	c, members := newTestCluster(t, 2)
	// Find a key on shard 0 and commit through the cluster.
	key := rodain.ObjectID(0)
	for c.ShardFor(key) != 0 {
		key++
	}
	if err := c.Load(key, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := c.Update(key, time.Second, func(tx *rodain.Tx) error {
		return tx.Write(key, []byte("v2"))
	}); err != nil {
		t.Fatal(err)
	}

	// Kill shard 0's primary; the cluster routes to the promoted mirror.
	members[0][0].Crash()
	deadline := time.Now().Add(10 * time.Second)
	for {
		err := c.Update(key, time.Second, func(tx *rodain.Tx) error {
			v, err := tx.Read(key)
			if err != nil {
				return err
			}
			if string(v) != "v2" {
				return fmt.Errorf("lost committed data: %q", v)
			}
			return tx.Write(key, []byte("v3"))
		})
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("cluster never recovered shard 0: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	// Other shards were unaffected throughout.
	other := rodain.ObjectID(0)
	for c.ShardFor(other) != 1 {
		other++
	}
	if err := c.Load(other, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := c.View(other, time.Second, func(tx *rodain.Tx) error {
		_, err := tx.Read(other)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	stats := c.Stats()
	if len(stats) != 2 {
		t.Fatalf("stats = %d shards", len(stats))
	}
}

func TestShardsCount(t *testing.T) {
	c, _ := newTestCluster(t, 2)
	if c.Shards() != 2 {
		t.Fatalf("Shards = %d", c.Shards())
	}
}

func TestClusterTimesOutWithNoServingNode(t *testing.T) {
	// A shard whose only member is a mirror that never promotes: the
	// cluster gives up within its timeout.
	opts := rodain.Options{Workers: 1}
	primary, err := rodain.OpenPrimary(opts, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	mirror, err := rodain.OpenMirror(opts, primary.ReplAddr(), "")
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	defer mirror.Close()

	c, err := New([][]*rodain.DB{{mirror}}, 300*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	err = c.Update(1, time.Second, func(tx *rodain.Tx) error { return nil })
	if err == nil {
		t.Fatal("mirror-only shard accepted a transaction")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("cluster did not respect its timeout")
	}
	if _, ok := c.Get(1); ok {
		t.Fatal("Get from mirror-only shard succeeded")
	}
}
