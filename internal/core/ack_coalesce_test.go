package core

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/store"
	"repro/internal/transport"
	"repro/internal/wal"
)

// TestShipperCumulativeAckReleasesAll pins down the ack protocol the
// mirror's coalescing relies on: acknowledgments are cumulative, so a
// single MsgAck carrying the highest serial must release every pending
// commit with a lower serial.
func TestShipperCumulativeAckReleasesAll(t *testing.T) {
	const n = 3
	a, b := transport.Pipe()
	var failed atomic.Bool
	s := NewMirrorShipper(a, 1, ShipperOptions{
		AckTimeout: 5 * time.Second,
		Heartbeat:  20 * time.Millisecond,
		OnFailure:  func() { failed.Store(true) },
	})
	s.Start()
	t.Cleanup(func() {
		s.Close()
		b.Close()
	})

	// A mirror that stays quiet until it has seen all n commit records,
	// then answers with one cumulative ack for the last serial.
	go func() {
		commits := 0
		for {
			m, err := b.Recv()
			if err != nil {
				return
			}
			switch m.Type {
			case transport.MsgPing:
				b.Send(&transport.Msg{Type: transport.MsgPong})
			case transport.MsgRecord:
				rec, err := wal.Decode(newReader(m.Payload))
				if err != nil {
					return
				}
				if rec.Type == wal.TypeCommit {
					commits++
					if commits == n {
						b.Send(&transport.Msg{Type: transport.MsgAck, Serial: rec.SerialOrder})
					}
				}
			}
		}
	}()

	done := make(chan error, n)
	for i := uint64(1); i <= n; i++ {
		i := i
		go func() { done <- s.Commit(shipGroup(i)) }()
	}
	for i := 0; i < n; i++ {
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("commit: %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("cumulative ack did not release all pending commits")
		}
	}
	if s.Acked() != n {
		t.Fatalf("Acked = %d, want %d", s.Acked(), n)
	}
	if failed.Load() {
		t.Fatal("shipper reported failure")
	}
}

// TestMirrorBatchGetsOneCumulativeAck drives the mirror engine with
// three transactions shipped as one wire batch (a single flush, so they
// land in the mirror's read buffer together) and expects a single
// cumulative MsgAck for the highest serial instead of one ack per
// commit record.
func TestMirrorBatchGetsOneCumulativeAck(t *testing.T) {
	a, b := transport.Pipe()
	cfg := fastCfg()
	cfg.MirrorApplyWorkers = -1 // inline apply: groups land before the ack is flushed
	m := NewMirrorEngine(cfg, store.New(), newMemLog())
	errc := make(chan error, 1)
	go func() { errc <- m.Run(b) }()

	hello, err := a.Recv()
	if err != nil || hello.Type != transport.MsgHello {
		t.Fatalf("hello: %+v, %v", hello, err)
	}

	var msgs []*transport.Msg
	for serial := uint64(1); serial <= 3; serial++ {
		g := shipGroup(serial)
		for _, rec := range g.Writes {
			msgs = append(msgs, &transport.Msg{Type: transport.MsgRecord, Serial: serial, Payload: wal.AppendEncoded(nil, rec)})
		}
		msgs = append(msgs, &transport.Msg{Type: transport.MsgRecord, Serial: serial, Payload: wal.AppendEncoded(nil, g.Commit)})
	}
	if err := a.SendBatch(msgs); err != nil {
		t.Fatal(err)
	}

	ack, err := a.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if ack.Type != transport.MsgAck || ack.Serial != 3 {
		t.Fatalf("first reply = type %v serial %d, want one cumulative ack with serial 3", ack.Type, ack.Serial)
	}
	// The coalesced ack is sent only after the whole buffered batch is
	// processed, so all three groups are already applied.
	if got := m.Applied(); got != 3 {
		t.Fatalf("Applied = %d at ack time, want 3", got)
	}
	a.Close()
	<-errc
}
