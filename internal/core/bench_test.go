package core

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/logstore"
	"repro/internal/store"
	"repro/internal/transport"
	"repro/internal/txn"
	"repro/internal/wal"
)

// BenchmarkShipperAllocs isolates the normal-mode Log Writer: groups are
// shipped over an in-process pipe to an immediately-acknowledging mirror,
// so the numbers are pure software overhead of the shipping hot path
// (encode, framing, wait/wakeup) with no real network or engine around it.
func BenchmarkShipperAllocs(b *testing.B) {
	a, c := transport.Pipe()
	fm := &fakeMirror{conn: c}
	go fm.run()
	var failed atomic.Bool
	s := NewMirrorShipper(a, 1, ShipperOptions{
		AckTimeout: time.Second,
		Heartbeat:  20 * time.Millisecond,
		OnFailure:  func() { failed.Store(true) },
	})
	s.Start()
	defer func() {
		s.Close()
		c.Close()
	}()

	img := make([]byte, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		serial := uint64(i + 1)
		g := &wal.Group{
			Writes: []*wal.Record{
				{Type: wal.TypeWrite, TxnID: txn.ID(serial), ObjectID: store.ObjectID(i % 128), AfterImage: img},
				{Type: wal.TypeWrite, TxnID: txn.ID(serial), ObjectID: store.ObjectID((i + 1) % 128), AfterImage: img},
			},
			Commit: &wal.Record{Type: wal.TypeCommit, TxnID: txn.ID(serial), SerialOrder: serial, CommitTS: serial * 65536},
		}
		if err := s.Commit(g); err != nil {
			b.Fatal(err)
		}
	}
	if failed.Load() {
		b.Fatal("mirror connection failed during benchmark")
	}
}

// BenchmarkMirrorApplyParallel measures the mirror's full per-group
// apply path — database install plus the ordered log append — with the
// inline sequential loop (workers=1) and the conflict-aware parallel
// sink (workers 2/4/8), under disjoint and hot-object write sets. On a
// single-CPU host the worker variants only add scheduling overhead; on a
// multicore host the disjoint case scales with workers because groups
// land on different store stripes.
func BenchmarkMirrorApplyParallel(b *testing.B) {
	img := make([]byte, 64)
	for _, c := range []struct {
		name     string
		idDomain int
	}{
		{"lowContention", 1 << 20},
		{"highContention", 64},
	} {
		for _, workers := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/workers=%d", c.name, workers), func(b *testing.B) {
				rng := rand.New(rand.NewSource(1))
				groups := make([]*wal.Group, 4096)
				for i := range groups {
					serial := uint64(i + 1)
					groups[i] = &wal.Group{
						Writes: []*wal.Record{
							{Type: wal.TypeWrite, TxnID: txn.ID(serial), ObjectID: store.ObjectID(rng.Intn(c.idDomain)), AfterImage: img},
							{Type: wal.TypeWrite, TxnID: txn.ID(serial), ObjectID: store.ObjectID(rng.Intn(c.idDomain)), AfterImage: img},
						},
						Commit: &wal.Record{Type: wal.TypeCommit, TxnID: txn.ID(serial), SerialOrder: serial, CommitTS: serial * 65536},
					}
				}
				m := NewMirrorEngine(Config{}, store.New(), logstore.NewMem())
				if workers > 1 {
					m.applier = wal.NewParallelApplier(m.db, workers, false)
					defer func() {
						m.applier.Close()
						m.applier = nil
					}()
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					m.apply(groups[i%len(groups)])
				}
				if m.applier != nil {
					m.applier.Wait()
				}
			})
		}
	}
}

// BenchmarkEngineParallel runs whole transactions through the engine —
// scheduler, OCC validation, write phase, log-record building — with a
// growing worker pool. With the sharded controller the only remaining
// global section is the validation ticket, so on a multicore host
// commits/sec should rise with workers; the old single-mutex controller
// flatlined here. LogDiscard keeps log building on the path without a
// mirror or disk; LogNone strips logging entirely for contrast.
func BenchmarkEngineParallel(b *testing.B) {
	const nObjects = 1024
	mixes := []struct {
		name     string
		writePct int
	}{
		{"readmostly", 10},
		{"writeheavy", 60},
	}
	for _, logMode := range []LogMode{LogDiscard, LogNone} {
		for _, workers := range []int{1, 2, 4, 8} {
			for _, mix := range mixes {
				b.Run(fmt.Sprintf("log=%s/workers=%d/%s", logMode, workers, mix.name), func(b *testing.B) {
					db := store.New()
					for i := 0; i < nObjects; i++ {
						db.Put(store.ObjectID(i), []byte{0, 0, 0, 0})
					}
					e := NewEngine(Config{Workers: workers, MaxRestarts: 100},
						db, buildCommitter(logMode, nil, Config{}.withDefaults()), logMode)
					defer e.Stop()
					var committed atomic.Uint64
					val := []byte{1, 2, 3, 4}
					b.ReportAllocs()
					b.ResetTimer()
					var wg sync.WaitGroup
					per := b.N / workers
					if per == 0 {
						per = 1
					}
					for w := 0; w < workers; w++ {
						w := w
						wg.Add(1)
						go func() {
							defer wg.Done()
							rng := rand.New(rand.NewSource(int64(w) * 99991))
							for n := 0; n < per; n++ {
								ops := make([]int, 6)
								for i := range ops {
									ops[i] = rng.Intn(100)*nObjects + rng.Intn(nObjects)
								}
								err := e.Execute(Request{Do: func(tx *Tx) error {
									for _, op := range ops {
										obj := store.ObjectID(op % nObjects)
										if op/nObjects < mix.writePct {
											if err := tx.Write(obj, val); err != nil {
												return err
											}
										} else if _, err := tx.ReadView(obj); err != nil {
											return err
										}
									}
									return nil
								}})
								if err == nil {
									committed.Add(1)
								}
							}
						}()
					}
					wg.Wait()
					b.StopTimer()
					b.ReportMetric(float64(committed.Load())/b.Elapsed().Seconds(), "commits/sec")
				})
			}
		}
	}
}

// BenchmarkGroupCommit compares cohort-batched shipping against strict
// per-transaction shipping through the full Log Writer → wire → mirror →
// cumulative-ack loop, as the concurrent committer count grows. The
// grouped mode amortizes the encode pass and the transport flush across
// the cohort, so at high committer counts its commits/sec should pull
// clearly ahead of mode=pertxn (the acceptance criterion at 8+).
func BenchmarkGroupCommit(b *testing.B) {
	modes := []struct {
		name string
		opts ShipperOptions
	}{
		{"grouped", ShipperOptions{
			AckTimeout: 10 * time.Second, Heartbeat: 50 * time.Millisecond,
			MaxCohort: DefaultMaxCohort, MaxHold: DefaultMaxCohortHold,
		}},
		{"pertxn", ShipperOptions{
			AckTimeout: 10 * time.Second, Heartbeat: 50 * time.Millisecond,
			MaxCohort: 1, // one group per wire batch, no hold
		}},
	}
	img := make([]byte, 64)
	for _, mode := range modes {
		for _, committers := range []int{1, 4, 8, 16} {
			b.Run(fmt.Sprintf("mode=%s/committers=%d", mode.name, committers), func(b *testing.B) {
				s, _, stop := mirrorPairShipper(b, mode.opts)
				defer stop()
				var next atomic.Uint64
				var wg sync.WaitGroup
				b.ReportAllocs()
				b.ResetTimer()
				for w := 0; w < committers; w++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						for {
							serial := next.Add(1)
							if serial > uint64(b.N) {
								return
							}
							g := &wal.Group{
								Writes: []*wal.Record{
									{Type: wal.TypeWrite, TxnID: txn.ID(serial), ObjectID: store.ObjectID(serial % 128), AfterImage: img},
									{Type: wal.TypeWrite, TxnID: txn.ID(serial), ObjectID: store.ObjectID((serial + 1) % 128), AfterImage: img},
								},
								Commit: &wal.Record{Type: wal.TypeCommit, TxnID: txn.ID(serial), SerialOrder: serial, CommitTS: serial * 65536},
							}
							if err := s.Commit(g); err != nil {
								b.Error(err)
								return
							}
						}
					}()
				}
				wg.Wait()
				b.StopTimer()
				b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "commits/sec")
				st := s.Stats()
				if st.Cohorts > 0 {
					b.ReportMetric(float64(st.GroupsShipped)/float64(st.Cohorts), "groups/batch")
				}
			})
		}
	}
}

// BenchmarkTransientFsync compares the leader/follower group-fsync
// committer against the per-commit-sync DiskCommitter over a device with
// a realistic sync latency. syncs/commit should drop well below 1 in
// group mode under 8 committers — the transient primary takes the disk
// off the per-transaction critical path.
func BenchmarkTransientFsync(b *testing.B) {
	const committers = 8
	for _, mode := range []string{"group", "persync"} {
		b.Run(fmt.Sprintf("mode=%s/committers=%d", mode, committers), func(b *testing.B) {
			mem := logstore.NewMem()
			slow := logstore.NewDelayed(mem, 50*time.Microsecond)
			var c Committer
			if mode == "group" {
				c = NewGroupCommitter(slow, GroupOptions{})
			} else {
				c = NewDiskCommitter(slow, 0)
			}
			defer c.Close()
			var next atomic.Uint64
			var wg sync.WaitGroup
			b.ReportAllocs()
			b.ResetTimer()
			for w := 0; w < committers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						serial := next.Add(1)
						if serial > uint64(b.N) {
							return
						}
						if err := c.Commit(diskGroup(serial)); err != nil {
							b.Error(err)
							return
						}
					}
				}()
			}
			wg.Wait()
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "commits/sec")
			b.ReportMetric(float64(mem.Stats().Syncs)/float64(b.N), "syncs/commit")
		})
	}
}
