package core

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/logstore"
	"repro/internal/store"
	"repro/internal/transport"
	"repro/internal/txn"
	"repro/internal/wal"
)

// BenchmarkShipperAllocs isolates the normal-mode Log Writer: groups are
// shipped over an in-process pipe to an immediately-acknowledging mirror,
// so the numbers are pure software overhead of the shipping hot path
// (encode, framing, wait/wakeup) with no real network or engine around it.
func BenchmarkShipperAllocs(b *testing.B) {
	a, c := transport.Pipe()
	fm := &fakeMirror{conn: c}
	go fm.run()
	var failed atomic.Bool
	s := NewMirrorShipper(a, 1, time.Second, 20*time.Millisecond, func() { failed.Store(true) })
	s.Start()
	defer func() {
		s.Close()
		c.Close()
	}()

	img := make([]byte, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		serial := uint64(i + 1)
		g := &wal.Group{
			Writes: []*wal.Record{
				{Type: wal.TypeWrite, TxnID: txn.ID(serial), ObjectID: store.ObjectID(i % 128), AfterImage: img},
				{Type: wal.TypeWrite, TxnID: txn.ID(serial), ObjectID: store.ObjectID((i + 1) % 128), AfterImage: img},
			},
			Commit: &wal.Record{Type: wal.TypeCommit, TxnID: txn.ID(serial), SerialOrder: serial, CommitTS: serial * 65536},
		}
		if err := s.Commit(g); err != nil {
			b.Fatal(err)
		}
	}
	if failed.Load() {
		b.Fatal("mirror connection failed during benchmark")
	}
}

// BenchmarkMirrorApplyParallel measures the mirror's full per-group
// apply path — database install plus the ordered log append — with the
// inline sequential loop (workers=1) and the conflict-aware parallel
// sink (workers 2/4/8), under disjoint and hot-object write sets. On a
// single-CPU host the worker variants only add scheduling overhead; on a
// multicore host the disjoint case scales with workers because groups
// land on different store stripes.
func BenchmarkMirrorApplyParallel(b *testing.B) {
	img := make([]byte, 64)
	for _, c := range []struct {
		name     string
		idDomain int
	}{
		{"lowContention", 1 << 20},
		{"highContention", 64},
	} {
		for _, workers := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/workers=%d", c.name, workers), func(b *testing.B) {
				rng := rand.New(rand.NewSource(1))
				groups := make([]*wal.Group, 4096)
				for i := range groups {
					serial := uint64(i + 1)
					groups[i] = &wal.Group{
						Writes: []*wal.Record{
							{Type: wal.TypeWrite, TxnID: txn.ID(serial), ObjectID: store.ObjectID(rng.Intn(c.idDomain)), AfterImage: img},
							{Type: wal.TypeWrite, TxnID: txn.ID(serial), ObjectID: store.ObjectID(rng.Intn(c.idDomain)), AfterImage: img},
						},
						Commit: &wal.Record{Type: wal.TypeCommit, TxnID: txn.ID(serial), SerialOrder: serial, CommitTS: serial * 65536},
					}
				}
				m := NewMirrorEngine(Config{}, store.New(), logstore.NewMem())
				if workers > 1 {
					m.applier = wal.NewParallelApplier(m.db, workers, false)
					defer func() {
						m.applier.Close()
						m.applier = nil
					}()
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					m.apply(groups[i%len(groups)])
				}
				if m.applier != nil {
					m.applier.Wait()
				}
			})
		}
	}
}
