package core

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/store"
	"repro/internal/transport"
	"repro/internal/txn"
	"repro/internal/wal"
)

// BenchmarkShipperAllocs isolates the normal-mode Log Writer: groups are
// shipped over an in-process pipe to an immediately-acknowledging mirror,
// so the numbers are pure software overhead of the shipping hot path
// (encode, framing, wait/wakeup) with no real network or engine around it.
func BenchmarkShipperAllocs(b *testing.B) {
	a, c := transport.Pipe()
	fm := &fakeMirror{conn: c}
	go fm.run()
	var failed atomic.Bool
	s := NewMirrorShipper(a, 1, time.Second, 20*time.Millisecond, func() { failed.Store(true) })
	s.Start()
	defer func() {
		s.Close()
		c.Close()
	}()

	img := make([]byte, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		serial := uint64(i + 1)
		g := &wal.Group{
			Writes: []*wal.Record{
				{Type: wal.TypeWrite, TxnID: txn.ID(serial), ObjectID: store.ObjectID(i % 128), AfterImage: img},
				{Type: wal.TypeWrite, TxnID: txn.ID(serial), ObjectID: store.ObjectID((i + 1) % 128), AfterImage: img},
			},
			Commit: &wal.Record{Type: wal.TypeCommit, TxnID: txn.ID(serial), SerialOrder: serial, CommitTS: serial * 65536},
		}
		if err := s.Commit(g); err != nil {
			b.Fatal(err)
		}
	}
	if failed.Load() {
		b.Fatal("mirror connection failed during benchmark")
	}
}
