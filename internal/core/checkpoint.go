package core

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/logstore"
	"repro/internal/store"
	"repro/internal/wal"
)

// Checkpoint writes a transaction-consistent snapshot of the node's
// database to w and returns the validation order it corresponds to.
// Validation is frozen for the duration of the snapshot copy (not the
// encoding), exactly as for mirror state transfer — this is the
// stop-the-world path FuzzyCheckpoint replaces; it stays as the
// Config.FrozenCheckpoint ablation. Replaying the log from the returned
// serial over the checkpoint reproduces the current database.
func (n *Node) Checkpoint(w io.Writer) (uint64, error) {
	n.mu.Lock()
	engine := n.engine
	n.mu.Unlock()
	if engine == nil {
		return 0, ErrNotServing
	}
	var (
		serial uint64
		data   []store.Record
	)
	start := n.cfg.Clock.Now()
	engine.Controller().WithFrozen(func(lastSerial uint64) {
		serial = lastSerial
		data = n.db.Snapshot()
	})
	// The whole freeze lands in the pause histogram, so frozen and fuzzy
	// cycles are directly comparable: per-commit stall is one whole-store
	// freeze here versus one stripe copy there.
	n.ckptPause.Observe(n.cfg.Clock.Now().Sub(start))
	if err := wal.WriteCheckpoint(w, data, serial); err != nil {
		return 0, err
	}
	return serial, nil
}

// checkpointFile names within a checkpoint directory.
const (
	checkpointTmp   = "checkpoint.tmp"
	checkpointFinal = "checkpoint.ckpt"
)

// CheckpointToDir writes a checkpoint file into dir atomically
// (tmp+rename+directory fsync) and then truncates the node's log below
// the checkpoint's minimum stripe watermark if the log device supports
// serial truncation: the checkpoint-and-truncate cycle that bounds
// recovery time. It returns the checkpoint's serial.
//
// The checkpoint is fuzzy (stripe-incremental, no validation freeze)
// unless Config.FrozenCheckpoint selects the legacy stop-the-world copy.
//
// Ordering matters: the checkpoint — and the rename that publishes it —
// is durable before the log shrinks, so a crash at any point leaves a
// recoverable pair on disk. A stale checkpoint.tmp from an earlier
// failed attempt is removed first; it was never published and holds
// nothing recovery may read.
func (n *Node) CheckpointToDir(dir string) (uint64, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, err
	}
	tmp := filepath.Join(dir, checkpointTmp)
	if err := os.Remove(tmp); err != nil && !os.IsNotExist(err) {
		return 0, err
	}
	f, err := os.Create(tmp)
	if err != nil {
		return 0, err
	}
	// Buffered: the checkpointer writes one stripe (or one record, on
	// the frozen path) at a time and would otherwise pay a write syscall
	// each.
	w := bufio.NewWriterSize(f, 256<<10)
	var serial, truncBelow uint64
	if n.cfg.FrozenCheckpoint {
		// A frozen snapshot is transaction-consistent at its serial, so
		// the whole log below it is redundant.
		serial, err = n.Checkpoint(w)
		truncBelow = serial
	} else {
		var st CheckpointStats
		st, err = n.FuzzyCheckpoint(w)
		serial = st.Serial
		truncBelow = st.MinWatermark
	}
	if err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	if err := os.Rename(tmp, filepath.Join(dir, checkpointFinal)); err != nil {
		return 0, err
	}
	// The rename must be durable before the log shrinks: fsync the
	// directory, or a crash could surface the old directory entry next
	// to a truncated log.
	if err := syncDir(dir); err != nil {
		return serial, fmt.Errorf("core: checkpoint written but directory sync failed: %w", err)
	}
	// The log below every stripe watermark is now redundant.
	did, _, err := logstore.TruncateBelow(n.log, truncBelow)
	if err != nil {
		return serial, fmt.Errorf("core: checkpoint written but log truncation failed: %w", err)
	}
	if !did && n.cfg.FrozenCheckpoint {
		// Legacy devices without serial truncation can still drop
		// everything after a frozen (transaction-consistent) checkpoint.
		// After a fuzzy one they cannot — the tail above MinWatermark
		// still matters — so the fuzzy path keeps the log; use a
		// segmented store to reclaim space.
		if _, err := logstore.Reset(n.log); err != nil {
			return serial, fmt.Errorf("core: checkpoint written but log truncation failed: %w", err)
		}
	}
	return serial, nil
}

// syncDir fsyncs a directory so a just-renamed entry survives a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		d.Close()
		return err
	}
	return d.Close()
}

// RecoverFromDir restores the node's database from a directory written
// by CheckpointToDir plus the given log reader (the tail written after
// the checkpoint). Either part may be absent: a missing checkpoint file
// replays the log alone; a nil log restores the checkpoint alone.
//
// A fuzzy (v2) checkpoint carries per-stripe watermarks; each logged
// record then replays only if its group's serial exceeds the watermark
// of its stripe. A frozen (v1) checkpoint replays the whole log reader —
// re-applying records the snapshot already contains is idempotent.
func (n *Node) RecoverFromDir(dir string, log io.Reader) (wal.RecoverStats, error) {
	var st wal.RecoverStats
	var wm *wal.StripeWatermarks
	ckpt := filepath.Join(dir, checkpointFinal)
	if f, err := os.Open(ckpt); err == nil {
		// Buffered: DecodeCheckpoint decodes record by record and would
		// otherwise pay a read syscall per record.
		ck, cerr := wal.DecodeCheckpoint(bufio.NewReaderSize(f, 256<<10))
		f.Close()
		if cerr != nil {
			return st, fmt.Errorf("core: bad checkpoint %s: %w", ckpt, cerr)
		}
		n.db.LoadSnapshot(ck.Snapshot)
		st.LastSerial = ck.LastSerial
		wm = ck.Watermarks
	} else if !os.IsNotExist(err) {
		return st, err
	}
	if log != nil {
		tail, err := wal.ParallelRecoverSuffix(log, n.db, n.cfg.RecoverWorkers, wm)
		if err != nil {
			return st, err
		}
		tail.LastSerial = maxU64(tail.LastSerial, st.LastSerial)
		st = tail
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.engine != nil {
		maxTS := uint64(0)
		for _, rec := range n.db.Snapshot() {
			if rec.WriteTS > maxTS {
				maxTS = rec.WriteTS
			}
		}
		n.engine.Controller().Seed(st.LastSerial, maxTS)
	}
	return st, nil
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
