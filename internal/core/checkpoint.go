package core

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/logstore"
	"repro/internal/store"
	"repro/internal/wal"
)

// Checkpoint writes a transaction-consistent snapshot of the node's
// database to w and returns the validation order it corresponds to.
// Validation is frozen for the duration of the snapshot copy (not the
// encoding), exactly as for mirror state transfer. Replaying the log
// from the returned serial over the checkpoint reproduces the current
// database.
func (n *Node) Checkpoint(w io.Writer) (uint64, error) {
	n.mu.Lock()
	engine := n.engine
	n.mu.Unlock()
	if engine == nil {
		return 0, ErrNotServing
	}
	var (
		serial uint64
		data   []store.Record
	)
	engine.Controller().WithFrozen(func(lastSerial uint64) {
		serial = lastSerial
		data = n.db.Snapshot()
	})
	if err := wal.WriteCheckpoint(w, data, serial); err != nil {
		return 0, err
	}
	return serial, nil
}

// CheckpointToDir writes a checkpoint file into dir atomically
// (tmp+rename) and then truncates the node's log if the log device
// supports it: the classic checkpoint-and-truncate cycle that bounds
// recovery time. It returns the checkpoint's serial.
//
// Ordering matters: the checkpoint is durable before the log shrinks, so
// a crash at any point leaves a recoverable pair on disk.
func (n *Node) CheckpointToDir(dir string) (uint64, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, err
	}
	tmp := filepath.Join(dir, "checkpoint.tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return 0, err
	}
	serial, err := n.Checkpoint(f)
	if err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	final := filepath.Join(dir, "checkpoint.ckpt")
	if err := os.Rename(tmp, final); err != nil {
		return 0, err
	}
	// The log tail below the checkpoint is now redundant.
	if _, err := logstore.Reset(n.log); err != nil {
		return serial, fmt.Errorf("core: checkpoint written but log truncation failed: %w", err)
	}
	return serial, nil
}

// RecoverFromDir restores the node's database from a directory written
// by CheckpointToDir plus the given log reader (the tail written after
// the checkpoint). Either part may be absent: a missing checkpoint file
// replays the log alone; a nil log restores the checkpoint alone.
func (n *Node) RecoverFromDir(dir string, log io.Reader) (wal.RecoverStats, error) {
	var st wal.RecoverStats
	ckpt := filepath.Join(dir, "checkpoint.ckpt")
	if f, err := os.Open(ckpt); err == nil {
		// Buffered: ReadCheckpoint decodes record by record and would
		// otherwise pay a read syscall per record.
		snap, serial, cerr := wal.ReadCheckpoint(bufio.NewReaderSize(f, 256<<10))
		f.Close()
		if cerr != nil {
			return st, fmt.Errorf("core: bad checkpoint %s: %w", ckpt, cerr)
		}
		n.db.LoadSnapshot(snap)
		st.LastSerial = serial
	} else if !os.IsNotExist(err) {
		return st, err
	}
	if log != nil {
		tail, err := wal.ParallelRecover(log, n.db, n.cfg.RecoverWorkers)
		if err != nil {
			return st, err
		}
		tail.LastSerial = maxU64(tail.LastSerial, st.LastSerial)
		st = tail
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.engine != nil {
		maxTS := uint64(0)
		for _, rec := range n.db.Snapshot() {
			if rec.WriteTS > maxTS {
				maxTS = rec.WriteTS
			}
		}
		n.engine.Controller().Seed(st.LastSerial, maxTS)
	}
	return st, nil
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
