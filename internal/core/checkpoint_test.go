package core

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/logstore"
	"repro/internal/store"
	"repro/internal/transport"
	"repro/internal/wal"
)

func TestCheckpointRoundTripThroughNode(t *testing.T) {
	log := logstore.NewMem()
	n := NewNode("cp", fastCfg(), newDBWith(200), log)
	if err := n.ServePrimary("", LogDisk); err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	for i := 0; i < 30; i++ {
		if err := n.Execute(Request{Deadline: time.Second, Do: func(tx *Tx) error {
			return tx.Write(store.ObjectID(i), []byte("checkpointed"))
		}}); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	serial, err := n.Checkpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if serial != 30 {
		t.Fatalf("serial = %d, want 30", serial)
	}
	snap, gotSerial, err := wal.ReadCheckpoint(&buf)
	if err != nil || gotSerial != 30 {
		t.Fatalf("read: %v serial=%d", err, gotSerial)
	}
	restored := store.New()
	restored.LoadSnapshot(snap)
	if restored.Checksum() != n.DB().Checksum() {
		t.Fatal("checkpoint does not reproduce the database")
	}
}

func TestCheckpointOnMirrorFails(t *testing.T) {
	n := NewNode("m", fastCfg(), store.New(), logstore.NewMem())
	var buf bytes.Buffer
	if _, err := n.Checkpoint(&buf); err != ErrNotServing {
		t.Fatalf("err = %v", err)
	}
}

func TestCheckpointToDirAndRecover(t *testing.T) {
	dir := t.TempDir()
	log := logstore.NewMem()
	n := NewNode("cp", fastCfg(), newDBWith(100), log)
	if err := n.ServePrimary("", LogDisk); err != nil {
		t.Fatal(err)
	}
	// Phase 1: commits, then checkpoint (which truncates the log).
	for i := 0; i < 10; i++ {
		if err := n.Execute(Request{Deadline: time.Second, Do: func(tx *Tx) error {
			return tx.Write(store.ObjectID(i), []byte("phase-1"))
		}}); err != nil {
			t.Fatal(err)
		}
	}
	serial, err := n.CheckpointToDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if serial != 10 {
		t.Fatalf("serial = %d", serial)
	}
	if len(log.Bytes()) != 0 {
		t.Fatalf("log not truncated: %d bytes", len(log.Bytes()))
	}
	if _, err := os.Stat(filepath.Join(dir, "checkpoint.ckpt")); err != nil {
		t.Fatal(err)
	}
	// Phase 2: more commits into the fresh log tail, then crash.
	for i := 10; i < 20; i++ {
		if err := n.Execute(Request{Deadline: time.Second, Do: func(tx *Tx) error {
			return tx.Write(store.ObjectID(i), []byte("phase-2"))
		}}); err != nil {
			t.Fatal(err)
		}
	}
	want := n.DB().Checksum()
	n.Crash()

	// Recovery: checkpoint + log tail reproduces everything.
	n2 := NewNode("re", fastCfg(), store.New(), logstore.NewMem())
	st, err := n2.RecoverFromDir(dir, bytes.NewReader(log.SyncedBytes()))
	if err != nil {
		t.Fatal(err)
	}
	if st.Applied != 10 {
		t.Fatalf("tail applied = %d, want 10", st.Applied)
	}
	if st.LastSerial != 20 {
		t.Fatalf("LastSerial = %d, want 20", st.LastSerial)
	}
	if n2.DB().Checksum() != want {
		t.Fatal("recovered database differs")
	}
	// The recovered node serves and continues the epoch.
	if err := n2.ServePrimary("", LogDisk); err != nil {
		t.Fatal(err)
	}
	defer n2.Close()
	if err := n2.Execute(Request{Deadline: time.Second, Do: func(tx *Tx) error {
		return tx.Write(1, []byte("phase-3"))
	}}); err != nil {
		t.Fatal(err)
	}
}

func TestRecoverFromDirWithoutCheckpoint(t *testing.T) {
	dir := t.TempDir()
	log := logstore.NewMem()
	n1 := NewNode("a", fastCfg(), newDBWith(10), log)
	n1.ServePrimary("", LogDisk)
	n1.Execute(Request{Deadline: time.Second, Do: func(tx *Tx) error {
		return tx.Write(1, []byte("only-log"))
	}})
	n1.Crash()

	n2 := NewNode("b", fastCfg(), newDBWith(10), logstore.NewMem())
	st, err := n2.RecoverFromDir(dir, bytes.NewReader(log.SyncedBytes()))
	if err != nil || st.Applied != 1 {
		t.Fatalf("recover: %+v %v", st, err)
	}
	v, _ := n2.DB().Get(1)
	if string(v) != "only-log" {
		t.Fatalf("value = %q", v)
	}
}

func TestRecoverFromDirCheckpointOnly(t *testing.T) {
	dir := t.TempDir()
	n1 := NewNode("a", fastCfg(), newDBWith(50), logstore.NewMem())
	n1.ServePrimary("", LogDisk)
	if _, err := n1.CheckpointToDir(dir); err != nil {
		t.Fatal(err)
	}
	want := n1.DB().Checksum()
	n1.Crash()

	n2 := NewNode("b", fastCfg(), store.New(), logstore.NewMem())
	if _, err := n2.RecoverFromDir(dir, nil); err != nil {
		t.Fatal(err)
	}
	if n2.DB().Checksum() != want {
		t.Fatal("checkpoint-only recovery differs")
	}
}

func TestRecoverFromDirBadCheckpoint(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "checkpoint.ckpt"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	n := NewNode("x", fastCfg(), store.New(), logstore.NewMem())
	if _, err := n.RecoverFromDir(dir, nil); err == nil {
		t.Fatal("garbage checkpoint accepted")
	}
}

// TestMirrorWatchdogTimeout exercises the heartbeat-timeout detection
// path: a primary that goes silent (without closing the connection) must
// be declared dead after HeartbeatMisses × HeartbeatEvery.
func TestMirrorWatchdogTimeout(t *testing.T) {
	l, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	// A fake primary: completes the handshake, pings once (so the
	// mirror considers the stream live), then hangs.
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		if _, err := conn.Recv(); err != nil { // hello
			return
		}
		conn.Send(&transport.Msg{Type: transport.MsgPing})
		time.Sleep(10 * time.Second) // silence
	}()

	cfg := fastCfg() // 25ms × 4 = 100ms watchdog
	m := NewMirrorEngine(cfg, store.New(), logstore.NewMem())
	conn, err := transport.Dial(l.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	err = m.Run(conn)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("silent primary not detected")
	}
	if elapsed < 90*time.Millisecond {
		t.Fatalf("detection after %v — too fast for a watchdog timeout", elapsed)
	}
	if elapsed > 3*time.Second {
		t.Fatalf("detection took %v — watchdog did not fire", elapsed)
	}
}
