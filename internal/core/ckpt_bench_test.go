package core

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/logstore"
	"repro/internal/store"
)

// benchNode builds a serving primary with objs populated objects and
// background committers hammering a contended id range, so checkpoint
// pauses are measured against live commit traffic.
func benchNode(b *testing.B, objs int, frozen bool) (*Node, func()) {
	b.Helper()
	db := store.New()
	val := make([]byte, 64)
	for i := 0; i < objs; i++ {
		db.Put(store.ObjectID(i), val)
	}
	cfg := fastCfg()
	cfg.FrozenCheckpoint = frozen
	n := NewNode("bench", cfg, db, logstore.NewMem())
	if err := n.ServePrimary("", LogDisk); err != nil {
		b.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			img := make([]byte, 64)
			for {
				select {
				case <-stop:
					return
				default:
				}
				id := store.ObjectID(rng.Intn(objs))
				n.Execute(Request{Deadline: time.Second, Do: func(tx *Tx) error {
					return tx.Write(id, img)
				}})
			}
		}(int64(w + 1))
	}
	return n, func() {
		close(stop)
		wg.Wait()
		n.Close()
	}
}

// BenchmarkCheckpointPause compares the commit-visible pause of one
// checkpoint cycle: the frozen (ablation) path stalls validation for the
// whole database copy, the fuzzy path for at most one stripe copy at a
// time. max-pause-ns is the longest single stall a committer could see
// behind the checkpointer — the paper's availability argument in one
// number.
func BenchmarkCheckpointPause(b *testing.B) {
	for _, mode := range []struct {
		name   string
		frozen bool
	}{{"fuzzy", false}, {"frozen", true}} {
		for _, objs := range []int{10000, 40000} {
			b.Run(fmt.Sprintf("%s/objs=%d", mode.name, objs), func(b *testing.B) {
				n, cleanup := benchNode(b, objs, mode.frozen)
				defer cleanup()
				var bytesOut int64
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if mode.frozen {
						if _, err := n.Checkpoint(io.Discard); err != nil {
							b.Fatal(err)
						}
					} else {
						st, err := n.FuzzyCheckpoint(io.Discard)
						if err != nil {
							b.Fatal(err)
						}
						bytesOut += int64(st.Bytes)
					}
				}
				b.StopTimer()
				b.ReportMetric(float64(n.CheckpointPauses().Max().Nanoseconds()), "max-pause-ns")
				b.ReportMetric(float64(n.CheckpointPauses().Quantile(0.99).Nanoseconds()), "p99-pause-ns")
				if !mode.frozen && b.N > 0 {
					b.ReportMetric(float64(bytesOut)/float64(b.N), "ckpt-bytes/op")
				}
			})
		}
	}
}

// BenchmarkRecoverFromCheckpoint measures cold-start restore: load a
// fuzzy checkpoint and replay the log tail above the stripe watermarks.
func BenchmarkRecoverFromCheckpoint(b *testing.B) {
	for _, objs := range []int{10000, 40000} {
		b.Run(fmt.Sprintf("objs=%d", objs), func(b *testing.B) {
			dir := b.TempDir()
			log := logstore.NewMem()
			n, cleanup := func() (*Node, func()) {
				db := store.New()
				val := make([]byte, 64)
				for i := 0; i < objs; i++ {
					db.Put(store.ObjectID(i), val)
				}
				n := NewNode("seed", fastCfg(), db, log)
				if err := n.ServePrimary("", LogDisk); err != nil {
					b.Fatal(err)
				}
				return n, func() { n.Close() }
			}()
			// A checkpoint plus a tail of later commits to replay over it.
			if _, err := n.CheckpointToDir(dir); err != nil {
				b.Fatal(err)
			}
			img := make([]byte, 64)
			for i := 0; i < 1000; i++ {
				id := store.ObjectID(i % objs)
				if err := n.Execute(Request{Deadline: time.Second, Do: func(tx *Tx) error {
					return tx.Write(id, img)
				}}); err != nil {
					b.Fatal(err)
				}
			}
			cleanup()
			tail := log.SyncedBytes()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n2 := NewNode("re", fastCfg(), store.New(), logstore.NewMem())
				st, err := n2.RecoverFromDir(dir, bytes.NewReader(tail))
				if err != nil {
					b.Fatal(err)
				}
				if st.Applied != 1000 {
					b.Fatalf("tail applied = %d", st.Applied)
				}
			}
		})
	}
}
