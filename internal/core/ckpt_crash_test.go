package core

import (
	"bytes"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/logstore"
	"repro/internal/store"
	"repro/internal/wal"
)

// shadowLog wraps a log store and keeps the complete append history,
// surviving the truncation the checkpoint cycle performs on the inner
// store — the crash tests need both the full stream (what a crash at an
// earlier step would find) and the truncated one (what is actually left).
// Appends serialize under the shadow lock so the history matches the
// inner stream byte for byte.
type shadowLog struct {
	mu    sync.Mutex
	inner logstore.Store
	all   []byte
}

func (s *shadowLog) Append(p []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.inner.Append(p); err != nil {
		return err
	}
	s.all = append(s.all, p...)
	return nil
}

func (s *shadowLog) AppendBatch(chunks [][]byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.inner.AppendBatch(chunks); err != nil {
		return err
	}
	for _, p := range chunks {
		s.all = append(s.all, p...)
	}
	return nil
}

func (s *shadowLog) Sync() error  { return s.inner.Sync() }
func (s *shadowLog) Close() error { return s.inner.Close() }

// TruncateBelow forwards to the inner store (both inner stores used in
// these tests support it), so CheckpointToDir truncates for real while
// the shadow history stays whole.
func (s *shadowLog) TruncateBelow(serial uint64) (int, error) {
	return s.inner.(logstore.SerialTruncator).TruncateBelow(serial)
}

func (s *shadowLog) History() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]byte(nil), s.all...)
}

// runCommitters hammers the node with small write/delete transactions
// from several goroutines until the returned stop function is called.
func runCommitters(n *Node, workers, idDomain int) (stop func()) {
	stopCh := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; ; i++ {
				select {
				case <-stopCh:
					return
				default:
				}
				id := store.ObjectID(rng.Intn(idDomain))
				val := []byte{byte(seed), byte(i), byte(i >> 8)}
				n.Execute(Request{Deadline: time.Second, Do: func(tx *Tx) error {
					if rng.Intn(25) == 0 {
						return tx.Delete(id)
					}
					return tx.Write(id, val)
				}})
			}
		}(int64(w + 1))
	}
	return func() {
		close(stopCh)
		wg.Wait()
	}
}

// recoverChecksum runs RecoverFromDir on a fresh node and returns the
// resulting checksum.
func recoverChecksum(t *testing.T, dir string, log []byte) uint32 {
	t.Helper()
	n := NewNode("rec", fastCfg(), store.New(), logstore.NewMem())
	var r io.Reader
	if log != nil {
		r = bytes.NewReader(log)
	}
	if _, err := n.RecoverFromDir(dir, r); err != nil {
		t.Fatal(err)
	}
	return n.DB().Checksum()
}

// TestCheckpointCrashConsistency walks the checkpoint → fsync → rename →
// truncate cycle and materializes the on-disk state a crash at every
// step would leave behind (including a crash mid-fuzzy-copy, simulated
// by cutting the checkpoint stream at arbitrary byte offsets). From each
// state, recovery must either reproduce the reference checksum exactly
// or refuse the damaged checkpoint — never silently restore wrong data.
func TestCheckpointCrashConsistency(t *testing.T) {
	mem := logstore.NewMem()
	shadow := &shadowLog{inner: mem}
	// The store starts empty so the log is the COMPLETE history: the
	// log-only crash state (step 0) must be able to rebuild everything.
	n := NewNode("crash", fastCfg(), store.New(), shadow)
	if err := n.ServePrimary("", LogDisk); err != nil {
		t.Fatal(err)
	}

	stop := runCommitters(n, 3, 128)
	time.Sleep(15 * time.Millisecond)

	// The real cycle runs with committers in full flight.
	dir := t.TempDir()
	if _, err := n.CheckpointToDir(dir); err != nil {
		t.Fatal(err)
	}
	time.Sleep(15 * time.Millisecond)
	stop()

	want := n.DB().Checksum()
	full := shadow.History()
	remaining := mem.SyncedBytes()
	ckptBytes, err := os.ReadFile(filepath.Join(dir, "checkpoint.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	n.Crash()

	// Step 0 — crash before any checkpoint: the full log alone recovers.
	if got := recoverChecksum(t, t.TempDir(), full); got != want {
		t.Fatal("log-only recovery differs")
	}

	// Step 1 — crash mid-tmp-write: an unpublished, partial (or garbage)
	// checkpoint.tmp is ignored; the full log still recovers.
	for _, tmp := range [][]byte{[]byte("garbage"), ckptBytes[:len(ckptBytes)/3]} {
		d := t.TempDir()
		if err := os.WriteFile(filepath.Join(d, "checkpoint.tmp"), tmp, 0o644); err != nil {
			t.Fatal(err)
		}
		if got := recoverChecksum(t, d, full); got != want {
			t.Fatal("recovery with a stale checkpoint.tmp differs")
		}
	}

	// Step 2 — crash after rename, before truncation: published
	// checkpoint plus the FULL log. Replaying records the checkpoint
	// already holds must be idempotent.
	d2 := t.TempDir()
	if err := os.WriteFile(filepath.Join(d2, "checkpoint.ckpt"), ckptBytes, 0o644); err != nil {
		t.Fatal(err)
	}
	if got := recoverChecksum(t, d2, full); got != want {
		t.Fatal("checkpoint + untruncated log differs")
	}

	// Step 3 — the completed cycle: published checkpoint + truncated log.
	if got := recoverChecksum(t, dir, remaining); got != want {
		t.Fatal("checkpoint + truncated log differs")
	}

	// Truncation safety: the dropped prefix contains only groups at or
	// below the checkpoint's watermark for every object they touch.
	ck, err := wal.DecodeCheckpoint(bytes.NewReader(ckptBytes))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasSuffix(full, remaining) {
		t.Fatal("surviving log is not a suffix of the append history")
	}
	dropped := full[:len(full)-len(remaining)]
	assertDroppedCovered(t, dropped, ck.Watermarks)

	// Step 4 — crash mid-fuzzy-copy, torn file published by a buggy or
	// hostile filesystem: every prefix of the checkpoint must be
	// rejected, not half-restored.
	for _, cut := range []int{0, 7, len(ckptBytes) / 2, len(ckptBytes) - 1} {
		d := t.TempDir()
		if err := os.WriteFile(filepath.Join(d, "checkpoint.ckpt"), ckptBytes[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		n4 := NewNode("torn", fastCfg(), store.New(), logstore.NewMem())
		if _, err := n4.RecoverFromDir(d, bytes.NewReader(full)); err == nil {
			t.Fatalf("torn checkpoint (cut at %d/%d) accepted", cut, len(ckptBytes))
		}
	}
}

// assertDroppedCovered decodes a truncated-away log prefix and fails if
// any committed group in it carries a write above the watermark of the
// written object's stripe — the invariant that makes truncation safe.
func assertDroppedCovered(t *testing.T, dropped []byte, wm *wal.StripeWatermarks) {
	t.Helper()
	if wm == nil {
		t.Fatal("fuzzy checkpoint without watermarks")
	}
	r := bytes.NewReader(dropped)
	pending := make(map[uint64][]*wal.Record)
	commits := 0
	for {
		rec, err := wal.Decode(r)
		if err != nil {
			if err == io.EOF {
				break
			}
			t.Fatalf("dropped prefix does not decode cleanly: %v", err)
		}
		switch rec.Type {
		case wal.TypeWrite, wal.TypeDelete:
			pending[uint64(rec.TxnID)] = append(pending[uint64(rec.TxnID)], rec)
		case wal.TypeAbort:
			delete(pending, uint64(rec.TxnID))
		case wal.TypeCommit:
			commits++
			if rec.SerialOrder > wm.Min() {
				t.Fatalf("dropped group serial %d above the minimum watermark %d",
					rec.SerialOrder, wm.Min())
			}
			for _, w := range pending[uint64(rec.TxnID)] {
				if rec.SerialOrder > wm.For(w.ObjectID) {
					t.Fatalf("dropped write to object %d at serial %d above its stripe watermark %d",
						w.ObjectID, rec.SerialOrder, wm.For(w.ObjectID))
				}
			}
			delete(pending, uint64(rec.TxnID))
		}
	}
	if len(pending) != 0 {
		t.Fatalf("truncation stranded %d uncommitted transactions' writes", len(pending))
	}
}

// TestSegmentedCheckpointTruncationInvariant drives repeated fuzzy
// checkpoint cycles against a segmented log under concurrent commit
// load, then proves (a) whole-segment truncation never dropped a record
// above any stripe watermark of the final published checkpoint and (b)
// crash recovery from the checkpoint plus the surviving segments
// reproduces the live database.
func TestSegmentedCheckpointTruncationInvariant(t *testing.T) {
	logDir := t.TempDir()
	seg, err := logstore.OpenSegmented(logDir, 2<<10) // tiny segments: rolls constantly
	if err != nil {
		t.Fatal(err)
	}
	shadow := &shadowLog{inner: seg}
	n := NewNode("seginv", fastCfg(), newDBWith(128), shadow)
	if err := n.ServePrimary("", LogDisk); err != nil {
		t.Fatal(err)
	}

	stop := runCommitters(n, 3, 128)
	ckptDir := t.TempDir()
	for cycle := 0; cycle < 4; cycle++ {
		time.Sleep(15 * time.Millisecond)
		if _, err := n.CheckpointToDir(ckptDir); err != nil {
			t.Fatal(err)
		}
	}
	stop()

	want := n.DB().Checksum()
	full := shadow.History()
	if seg.Reclaimed() == 0 {
		t.Fatal("no segment was ever truncated; the invariant was not exercised")
	}
	if err := seg.Close(); err != nil {
		t.Fatal(err)
	}
	n.Crash()

	rc, err := logstore.OpenSegmentsReader(logDir)
	if err != nil {
		t.Fatal(err)
	}
	remaining, err := io.ReadAll(rc)
	rc.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasSuffix(full, remaining) {
		t.Fatal("surviving segments are not a suffix of the append history")
	}

	ckptBytes, err := os.ReadFile(filepath.Join(ckptDir, "checkpoint.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	ck, err := wal.DecodeCheckpoint(bytes.NewReader(ckptBytes))
	if err != nil {
		t.Fatal(err)
	}
	// (a) Every record in every dropped segment is covered by the final
	// checkpoint's watermarks. Earlier cycles' watermarks were only
	// lower, so coverage by the final vector is the binding check.
	assertDroppedCovered(t, full[:len(full)-len(remaining)], ck.Watermarks)

	// (b) Recovery from the checkpoint directory plus the surviving
	// segment stream reproduces the crashed primary.
	if got := recoverChecksum(t, ckptDir, remaining); got != want {
		t.Fatal("segmented crash recovery differs from the live database")
	}
}
