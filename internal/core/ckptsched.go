package core

import (
	"time"

	"repro/internal/logstore"
	"repro/internal/simtime"
)

// CheckpointSchedulerOptions configures a background checkpoint loop.
type CheckpointSchedulerOptions struct {
	// Every triggers a checkpoint when this much time passed since the
	// last one. Zero disables the time trigger.
	Every time.Duration
	// LogBytes triggers a checkpoint when the node's log device reports
	// this many bytes appended since the last one (the device must
	// expose Stats; others never fire this trigger). Zero disables it.
	LogBytes uint64
	// Poll is how often the triggers are evaluated. Zero picks a quarter
	// of Every, clamped to [10ms, 1s].
	Poll time.Duration
	// OnCycle, if set, observes every completed cycle (serial, or the
	// error that stopped it). Called from the scheduler goroutine.
	OnCycle func(serial uint64, err error)
}

// CheckpointScheduler runs CheckpointToDir in the background on the
// node's clock, triggered by elapsed time or log growth — the paper's
// checkpoint-and-truncate cycle made continuous, which is what bounds
// both recovery time and log disk usage.
type CheckpointScheduler struct {
	stop chan struct{}
	done chan struct{}
}

// logStats is the optional accounting surface of a log device.
type logStats interface{ Stats() logstore.Stats }

// StartCheckpointScheduler begins checkpointing into dir. While the node
// is a mirror (no engine) the loop idles; it resumes checkpointing after
// a takeover promotes the node. Stop the scheduler before closing the
// node.
func (n *Node) StartCheckpointScheduler(dir string, opts CheckpointSchedulerOptions) *CheckpointScheduler {
	poll := opts.Poll
	if poll <= 0 {
		poll = opts.Every / 4
		if poll < 10*time.Millisecond {
			poll = 10 * time.Millisecond
		}
		if poll > time.Second {
			poll = time.Second
		}
	}
	s := &CheckpointScheduler{stop: make(chan struct{}), done: make(chan struct{})}
	go s.run(n, dir, opts, poll)
	return s
}

func (s *CheckpointScheduler) run(n *Node, dir string, opts CheckpointSchedulerOptions, poll time.Duration) {
	defer close(s.done)
	ticker := simtime.NewTicker(n.cfg.Clock, poll)
	defer ticker.Stop()
	last := n.cfg.Clock.Now()
	var lastBytes uint64
	if ls, ok := n.log.(logStats); ok {
		lastBytes = ls.Stats().BytesAppended
	}
	for {
		select {
		case <-s.stop:
			return
		case <-ticker.C:
		}
		now := n.cfg.Clock.Now()
		fire := opts.Every > 0 && now.Sub(last) >= opts.Every
		var bytes uint64
		if ls, ok := n.log.(logStats); ok {
			bytes = ls.Stats().BytesAppended
			if opts.LogBytes > 0 && bytes-lastBytes >= opts.LogBytes {
				fire = true
			}
		}
		if !fire {
			continue
		}
		if n.Engine() == nil {
			// Mirror: nothing to checkpoint here; the primary owns the
			// cycle. Try again after a takeover.
			continue
		}
		serial, err := n.CheckpointToDir(dir)
		last, lastBytes = n.cfg.Clock.Now(), bytes
		if opts.OnCycle != nil {
			opts.OnCycle(serial, err)
		}
	}
}

// Stop ends the loop and waits for an in-flight cycle to finish.
func (s *CheckpointScheduler) Stop() {
	close(s.stop)
	<-s.done
}
