package core

import (
	"sync"
	"time"

	"repro/internal/logstore"
	"repro/internal/simtime"
	"repro/internal/wal"
)

// DiskCommitter makes transactions durable on a local log device: the
// transient-mode Log Writer, which "must store the logs directly to the
// disk before allowing the transaction to commit".
//
// With GroupCommitWindow > 0, commits arriving while a sync is pending
// share one device sync (group commit) — an ablation the paper does not
// use but that quantifies the cost of its per-commit sync choice.
type DiskCommitter struct {
	log   logstore.Store
	clock simtime.Clock

	mu        sync.Mutex
	cond      *sync.Cond
	window    time.Duration
	appended  uint64 // sequence of appended commit groups
	synced    uint64 // highest sequence covered by a completed sync
	syncerUp  bool
	closed    bool
	encodeBuf []byte

	stats CommitterStats
}

// CommitterStats counts committer activity.
type CommitterStats struct {
	Commits uint64
	Syncs   uint64
	Bytes   uint64
	// Cohorts is the number of group-commit cohorts synced and MaxCohort
	// the largest one; committers without cohorts leave them zero.
	Cohorts   uint64
	MaxCohort uint64
}

// NewDiskCommitter returns a committer over log running on the shared
// wall clock. window > 0 enables group commit.
func NewDiskCommitter(log logstore.Store, window time.Duration) *DiskCommitter {
	return NewDiskCommitterClock(log, window, simtime.Wall)
}

// NewDiskCommitterClock is NewDiskCommitter with an explicit clock for
// the group-commit window, so simulated-time runs gather their cohorts
// on virtual time.
func NewDiskCommitterClock(log logstore.Store, window time.Duration, clock simtime.Clock) *DiskCommitter {
	d := &DiskCommitter{log: log, window: window, clock: clock}
	d.cond = sync.NewCond(&d.mu)
	return d
}

// Commit implements Committer: append the group's records and sync.
func (d *DiskCommitter) Commit(g *wal.Group) error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return ErrStopped
	}
	buf := g.AppendEncoded(d.encodeBuf[:0])
	d.encodeBuf = buf
	if err := d.log.Append(buf); err != nil {
		d.mu.Unlock()
		return err
	}
	d.stats.Commits++
	d.stats.Bytes += uint64(len(buf))
	d.appended++
	seq := d.appended

	if d.window <= 0 {
		// Per-commit sync, serialized on the device by holding the lock.
		err := d.log.Sync()
		if err == nil {
			d.stats.Syncs++
			if seq > d.synced {
				d.synced = seq
			}
		}
		d.mu.Unlock()
		return err
	}

	// Group commit: one syncer gathers everything appended within the
	// window; the rest wait for a sync that covers their sequence.
	if !d.syncerUp {
		d.syncerUp = true
		d.mu.Unlock()
		simtime.SleepOn(d.clock, d.window)
		d.mu.Lock()
		cover := d.appended
		err := d.log.Sync()
		d.syncerUp = false
		if err == nil {
			d.stats.Syncs++
			if cover > d.synced {
				d.synced = cover
			}
		}
		d.cond.Broadcast()
		d.mu.Unlock()
		return err
	}
	for d.synced < seq && d.syncerUp && !d.closed {
		d.cond.Wait()
	}
	var err error
	switch {
	case d.closed:
		err = ErrStopped
	case d.synced < seq:
		// Our syncer failed or finished without covering us: sync
		// ourselves.
		err = d.log.Sync()
		if err == nil {
			d.stats.Syncs++
			if seq > d.synced {
				d.synced = seq
			}
		}
	}
	d.mu.Unlock()
	return err
}

// Stats returns committer accounting.
func (d *DiskCommitter) Stats() CommitterStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// Close implements Committer.
func (d *DiskCommitter) Close() error {
	d.mu.Lock()
	d.closed = true
	d.cond.Broadcast()
	d.mu.Unlock()
	return nil
}

// discardCommitter builds and then drops the records: "disk writing
// turned off". The group was already constructed by the engine (that is
// the overhead being measured); nothing further happens.
type discardCommitter struct{}

func (discardCommitter) Commit(*wal.Group) error { return nil }
func (discardCommitter) Close() error            { return nil }

// nullCommitter is the "No logs" baseline.
type nullCommitter struct{}

func (nullCommitter) Commit(*wal.Group) error { return nil }
func (nullCommitter) Close() error            { return nil }
