// Package core implements the paper's primary contribution: the RODAIN
// node — a real-time main-memory database engine whose availability comes
// from a hot stand-by Mirror Node kept up to date with redo logs shipped
// synchronously at commit.
//
// A node runs in one of three operating modes:
//
//   - Primary: transactions execute here; the Log Writer ships each
//     committing transaction's redo records plus a commit record to the
//     mirror and lets the transaction commit as soon as the mirror's
//     acknowledgment arrives. The disk write is off the critical path:
//     commit costs one message round trip instead of one disk write.
//   - Mirror: receives the log stream, reorders it into true validation
//     order, applies updates only on commit records (never undoes
//     anything), stores the log to disk asynchronously, and acknowledges
//     each commit record immediately on arrival. It is ready to take
//     over at any moment.
//   - Transient primary: a node running alone after its peer failed. It
//     must put log records onto its own disk before letting transactions
//     commit. A recovered peer always rejoins as mirror — the database
//     service never switches away from a live node.
//
// The engine uses deferred writes (abort = discard the private
// workspace), optimistic concurrency control (OCC-DATI by default, see
// package occ), modified-EDF scheduling with an overload manager
// (package sched), and the log formats of package wal.
package core

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/logstore"
	"repro/internal/occ"
	"repro/internal/sched"
	"repro/internal/simtime"
	"repro/internal/wal"
)

// Mode is a node's operating mode.
type Mode int32

// Operating modes.
const (
	// ModePrimary executes transactions and ships logs to a mirror.
	ModePrimary Mode = iota
	// ModeMirror maintains the database copy and acknowledges logs.
	ModeMirror
	// ModeTransient executes transactions and logs directly to disk
	// because no mirror is available.
	ModeTransient
)

func (m Mode) String() string {
	switch m {
	case ModePrimary:
		return "primary"
	case ModeMirror:
		return "mirror"
	case ModeTransient:
		return "transient"
	default:
		return fmt.Sprintf("Mode(%d)", int32(m))
	}
}

// LogMode selects what happens on the commit path — the experimental
// axis of the paper's study.
type LogMode int

// Logging modes.
const (
	// LogShip ships log records to the mirror and waits for its
	// acknowledgment (normal two-node operation).
	LogShip LogMode = iota
	// LogDisk stores log records on the local disk synchronously before
	// commit (single node / transient mode with true log writes).
	LogDisk
	// LogDiscard generates log records but drops them without waiting
	// (single node, disk writing turned off — isolates log-building
	// overhead).
	LogDiscard
	// LogNone generates no log records at all (the "No logs" optimal
	// baseline).
	LogNone
)

func (m LogMode) String() string {
	switch m {
	case LogShip:
		return "ship"
	case LogDisk:
		return "disk"
	case LogDiscard:
		return "discard"
	case LogNone:
		return "none"
	default:
		return fmt.Sprintf("LogMode(%d)", int(m))
	}
}

// Committer is the commit step of the transaction pipeline: it must make
// the transaction's log records stable (per the node's logging mode)
// before returning. Validate has already applied the write phase; commit
// record fields are filled in.
type Committer interface {
	// Commit blocks until the transaction's records are stable.
	Commit(g *wal.Group) error
	// Close releases resources; pending commits fail.
	Close() error
}

// ErrMirrorDown reports that the mirror connection failed mid-commit;
// the node should switch to transient mode and retry the commit against
// the disk.
var ErrMirrorDown = errors.New("core: mirror down")

// ErrStopped reports an engine that is shutting down.
var ErrStopped = errors.New("core: engine stopped")

// Config parameterizes a node.
type Config struct {
	// Protocol is the concurrency-control protocol (default OCC-DATI).
	Protocol occ.Kind
	// Workers is the number of executor goroutines — the "CPUs" of the
	// node (default 1, like the prototype's single Pentium Pro).
	Workers int
	// MaxRestarts bounds concurrency-control restarts per transaction
	// before it is aborted with a conflict (default 10; firm deadlines
	// usually fire first).
	MaxRestarts int
	// NonRTReserve is the dispatch fraction reserved on demand for
	// non-real-time transactions (default 0.05).
	NonRTReserve float64
	// Overload configures the overload manager.
	Overload sched.OverloadConfig
	// GroupCommitWindow selects the legacy fixed-sleep disk committer
	// when > 0: every commit cohort holds for the whole window before
	// one sync (the ablation DESIGN §8 documents). Zero uses the
	// leader/follower group-fsync committer, which syncs immediately
	// when idle and batches naturally under load.
	GroupCommitWindow time.Duration
	// MaxCohort caps how many committing transactions one group-commit
	// cohort may carry: a single wire batch to the mirror in shipping
	// mode, or one vectored AppendBatch + Sync in transient mode
	// (default 64).
	MaxCohort int
	// MaxCohortHold bounds the adaptive hold window group commit may
	// wait for stragglers: the shipper holds a cohort open across a
	// serial gap, and the transient-mode fsync leader holds under
	// sustained contention. Zero defaults to 200µs; negative disables
	// holding entirely (ship/sync the moment a cohort is drainable).
	MaxCohortHold time.Duration
	// MirrorSyncEvery is how often the mirror syncs buffered log
	// records to disk (asynchronously; default 50 ms). Zero keeps the
	// default; negative disables mirror disk syncs.
	MirrorSyncEvery time.Duration
	// MirrorApplyWorkers sizes the mirror's parallel apply pool:
	// committed groups with disjoint write sets install into the
	// database copy concurrently while receive/ack and the stored log
	// stay strictly ordered. Zero defaults to one worker per CPU;
	// negative (or 1) applies inline on the session goroutine.
	MirrorApplyWorkers int
	// RecoverWorkers sizes the worker pool for log replay
	// (RecoverFromLog / RecoverFromDir). Zero defaults to one worker
	// per CPU; negative (or 1) replays sequentially.
	RecoverWorkers int
	// AckTimeout bounds how long a commit waits for the mirror's
	// acknowledgment before declaring the mirror down (default 2 s).
	AckTimeout time.Duration
	// HeartbeatEvery is the watchdog ping interval (default 100 ms).
	HeartbeatEvery time.Duration
	// HeartbeatMisses is how many missed heartbeats declare the peer
	// dead (default 3).
	HeartbeatMisses int
	// Clock supplies time to the engine (deadline checks, latency
	// histograms, commit retry backoff). Nil uses the wall clock; a
	// simtime.SimClock lets simulated-time runs pass through commit
	// retries without real sleeps.
	Clock simtime.Clock
	// FrozenCheckpoint selects the legacy stop-the-world checkpoint for
	// CheckpointToDir — the ablation DESIGN §8 measures against. The
	// default (false) is the fuzzy stripe-incremental checkpointer,
	// which never freezes validation.
	FrozenCheckpoint bool
	// NoReadOnlyFastPath disables the read-only snapshot fast path (the
	// ablation DESIGN §8 measures against): every transaction, declared
	// read-only or not, registers its reads with the concurrency
	// controller and commits through full validation. The default
	// (false) lets read-only transactions certify against their snapshot
	// and commit without a serial ticket, log record or mirror round
	// trip.
	NoReadOnlyFastPath bool
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.MaxRestarts <= 0 {
		c.MaxRestarts = 10
	}
	if c.NonRTReserve == 0 {
		c.NonRTReserve = 0.05
	}
	if c.MirrorSyncEvery == 0 {
		c.MirrorSyncEvery = 50 * time.Millisecond
	}
	if c.MirrorApplyWorkers == 0 {
		c.MirrorApplyWorkers = wal.DefaultRecoverWorkers()
	}
	if c.RecoverWorkers == 0 {
		c.RecoverWorkers = wal.DefaultRecoverWorkers()
	}
	if c.AckTimeout <= 0 {
		c.AckTimeout = 2 * time.Second
	}
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = 100 * time.Millisecond
	}
	if c.HeartbeatMisses <= 0 {
		c.HeartbeatMisses = 3
	}
	if c.MaxCohort <= 0 {
		c.MaxCohort = DefaultMaxCohort
	}
	if c.MaxCohortHold == 0 {
		c.MaxCohortHold = DefaultMaxCohortHold
	} else if c.MaxCohortHold < 0 {
		c.MaxCohortHold = 0
	}
	if c.Clock == nil {
		c.Clock = simtime.NewWallClock()
	}
	return c
}

// Group-commit defaults: cohorts big enough to amortize a flush or an
// fsync across a burst, a hold window short enough to be invisible next
// to a device sync or a network round trip.
const (
	DefaultMaxCohort     = 64
	DefaultMaxCohortHold = 200 * time.Microsecond
)

// buildCommitter constructs the committer for a logging mode. cfg must
// already have its defaults applied.
func buildCommitter(mode LogMode, log logstore.Store, cfg Config) Committer {
	switch mode {
	case LogDisk:
		if cfg.GroupCommitWindow > 0 {
			return NewDiskCommitterClock(log, cfg.GroupCommitWindow, cfg.Clock)
		}
		return NewGroupCommitter(log, GroupOptions{
			MaxCohort: cfg.MaxCohort,
			MaxHold:   cfg.MaxCohortHold,
			Clock:     cfg.Clock,
		})
	case LogDiscard:
		return discardCommitter{}
	case LogNone:
		return nullCommitter{}
	default:
		panic("core: LogShip committers are built from a mirror connection")
	}
}
