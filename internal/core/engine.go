package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/occ"
	"repro/internal/sched"
	"repro/internal/simtime"
	"repro/internal/store"
	"repro/internal/txn"
	"repro/internal/wal"
)

// Errors surfaced to transaction submitters.
var (
	// ErrOverload: the overload manager denied admission.
	ErrOverload = errors.New("core: admission denied by overload manager")
	// ErrDeadline: a firm deadline expired before commit.
	ErrDeadline = errors.New("core: firm deadline expired")
	// ErrConflict: concurrency control aborted the transaction after
	// exhausting its restarts.
	ErrConflict = errors.New("core: concurrency-control conflict")
	// ErrNodeFailure: the node failed mid-commit.
	ErrNodeFailure = errors.New("core: node failure during commit")
)

// internal restart signal raised by Tx operations on doomed transactions.
var errRestart = errors.New("core: restart requested")

// Request is one client transaction to execute.
type Request struct {
	// Class is the criticality class (default Firm).
	Class txn.Class
	// Deadline is the relative firm/soft deadline; ignored for
	// NonRealTime requests. Zero means NoDeadline.
	Deadline time.Duration
	// Criticality orders transactions of equal class under overload.
	Criticality int
	// ReadOnly declares that Do stages no writes or deletes. A declared
	// read-only transaction skips per-read conflict registration and
	// commits through the controller's snapshot fast path — no serial
	// ticket, no log record, no mirror round trip. The declaration is a
	// hint, not a contract: a body that writes anyway is transparently
	// demoted and restarted through the fully registered path (costing
	// one restart), never executed incorrectly.
	ReadOnly bool
	// Do is the transaction body. It may run several times (restarts);
	// it must be a pure function of the Tx reads.
	Do func(*Tx) error
}

// Tx is the operation surface a transaction body sees. Reads and writes
// are transactional: writes are deferred to the private workspace and
// reads see them (read-your-writes).
type Tx struct {
	e *Engine
	t *txn.Transaction
}

// ID reports the transaction id.
func (x *Tx) ID() txn.ID { return x.t.ID }

// Restarts reports how many times this transaction has been restarted.
func (x *Tx) Restarts() int { return x.t.Restarts }

// Read returns the value of id. It fails with errRestart (internally
// retried) when the transaction has been doomed by a conflicting commit,
// with ErrDeadline past a firm deadline, and reports missing objects.
func (x *Tx) Read(id store.ObjectID) ([]byte, error) {
	if err := x.check(); err != nil {
		return nil, err
	}
	start := x.e.clock.Now()
	v, ok := x.t.Read(x.e.db, id)
	x.e.ctl.ObserveReadLatency(x.e.clock.Now().Sub(start))
	if !ok {
		return nil, fmt.Errorf("core: object %d does not exist", id)
	}
	if x.t.ReadOnlyDeclared() {
		// Declared read-only: no conflict-set registration. The snapshot
		// fast path revalidates every read at commit instead.
		return v, nil
	}
	if wts, observed := x.t.ObservedWriteTS(id); observed {
		if !x.e.ctl.OnRead(x.t, id, wts) {
			return nil, errRestart
		}
	}
	return v, nil
}

// ReadView is Read without the defensive copy: the returned slice is
// borrowed from the database (or from this transaction's own deferred
// write) and MUST NOT be modified, nor used after the transaction body
// stages another write to the same object or returns. It exists for
// decode-and-discard lookups on the hot path — a number translation that
// parses the routing entry and drops the bytes pays no per-read
// allocation. Use Read when in doubt.
func (x *Tx) ReadView(id store.ObjectID) ([]byte, error) {
	if err := x.check(); err != nil {
		return nil, err
	}
	start := x.e.clock.Now()
	v, ok := x.t.ReadView(x.e.db, id)
	x.e.ctl.ObserveReadLatency(x.e.clock.Now().Sub(start))
	if !ok {
		return nil, fmt.Errorf("core: object %d does not exist", id)
	}
	if x.t.ReadOnlyDeclared() {
		return v, nil
	}
	if wts, observed := x.t.ObservedWriteTS(id); observed {
		if !x.e.ctl.OnRead(x.t, id, wts) {
			return nil, errRestart
		}
	}
	return v, nil
}

// Delete stages a deletion of id in the private workspace. For
// concurrency control a delete is a write.
func (x *Tx) Delete(id store.ObjectID) error {
	if err := x.check(); err != nil {
		return err
	}
	if x.t.ReadOnlyDeclared() {
		// The read-only declaration was wrong: the reads so far skipped
		// conflict registration, so the only sound continuation is a
		// fresh, fully registered attempt.
		x.t.DemoteReadOnly()
		return errRestart
	}
	x.t.StageDelete(id)
	if !x.e.ctl.OnWrite(x.t, id) {
		return errRestart
	}
	return nil
}

// Write stages an after image for id in the private workspace.
func (x *Tx) Write(id store.ObjectID, value []byte) error {
	if err := x.check(); err != nil {
		return err
	}
	if x.t.ReadOnlyDeclared() {
		x.t.DemoteReadOnly()
		return errRestart
	}
	x.t.StageWrite(id, value)
	if !x.e.ctl.OnWrite(x.t, id) {
		return errRestart
	}
	return nil
}

func (x *Tx) check() error {
	if _, dead := x.e.ctl.Doomed(x.t); dead {
		return errRestart
	}
	if x.t.Class == txn.Firm && x.t.Expired(x.e.clock.Now()) {
		return ErrDeadline
	}
	return nil
}

// job couples a queued transaction with its submitter.
type job struct {
	t    *txn.Transaction
	req  Request
	done chan error
}

// Engine executes transactions on a (transient) primary node.
type Engine struct {
	cfg      Config
	db       *store.Store
	ctl      *occ.Controller
	queue    *sched.Queue
	overload *sched.Overload
	clock    simtime.Clock

	outcome    *metrics.Outcome
	respTime   *metrics.Histogram // submit → commit
	commitWait *metrics.Histogram // validation → commit (the LogWait step)

	committer atomic.Value // Committer
	logMode   atomic.Int32

	mu      sync.Mutex
	jobs    map[txn.ID]*job
	nextID  atomic.Uint64
	stopped atomic.Bool

	inflight sync.WaitGroup // outstanding Execute calls
	workers  sync.WaitGroup
}

// committerBox wraps a Committer for atomic.Value (which needs a single
// concrete type).
type committerBox struct{ c Committer }

// NewEngine builds an engine over db. The committer defines the commit
// path; swap it with SetCommitter on failover.
func NewEngine(cfg Config, db *store.Store, committer Committer, logMode LogMode) *Engine {
	cfg = cfg.withDefaults()
	e := &Engine{
		cfg:        cfg,
		db:         db,
		ctl:        occ.NewController(cfg.Protocol, db),
		queue:      sched.NewQueue(cfg.NonRTReserve),
		overload:   sched.NewOverload(cfg.Overload),
		clock:      cfg.Clock,
		outcome:    metrics.NewOutcome(),
		respTime:   new(metrics.Histogram),
		commitWait: new(metrics.Histogram),
		jobs:       make(map[txn.ID]*job),
	}
	e.committer.Store(committerBox{committer})
	e.logMode.Store(int32(logMode))
	for i := 0; i < cfg.Workers; i++ {
		e.workers.Add(1)
		go e.worker()
	}
	return e
}

// DB exposes the engine's database (reads outside transactions see the
// latest committed state).
func (e *Engine) DB() *store.Store { return e.db }

// Controller exposes the concurrency controller, for stats.
func (e *Engine) Controller() *occ.Controller { return e.ctl }

// Outcome exposes the outcome tally.
func (e *Engine) Outcome() *metrics.Outcome { return e.outcome }

// ResponseTimes exposes the submit→commit latency histogram.
func (e *Engine) ResponseTimes() *metrics.Histogram { return e.respTime }

// CommitWaits exposes the validation→commit (log wait) histogram — the
// cost the hot stand-by removes from the critical path.
func (e *Engine) CommitWaits() *metrics.Histogram { return e.commitWait }

// Overload exposes the overload manager.
func (e *Engine) Overload() *sched.Overload { return e.overload }

// AtAdmissionLimit reports whether the overload manager would deny an
// arriving transaction right now. Service front ends consult it at the
// socket so overload misses are answered before any work is queued;
// Execute still runs real admission, so the check is advisory.
func (e *Engine) AtAdmissionLimit() bool {
	return !e.overload.WouldAdmit(e.clock.Now())
}

// LogMode reports the engine's current logging mode.
func (e *Engine) LogMode() LogMode { return LogMode(e.logMode.Load()) }

// SetCommitter atomically swaps the commit path (failover: ship→disk).
// The previous committer is returned; the caller decides when to close
// it.
func (e *Engine) SetCommitter(c Committer, mode LogMode) Committer {
	prev := e.committer.Swap(committerBox{c}).(committerBox)
	e.logMode.Store(int32(mode))
	return prev.c
}

// Execute submits a transaction and blocks until it commits or aborts.
func (e *Engine) Execute(req Request) error {
	if e.stopped.Load() {
		return ErrStopped
	}
	e.inflight.Add(1)
	defer e.inflight.Done()
	if e.stopped.Load() { // recheck under the inflight guard
		return ErrStopped
	}

	e.outcome.Submit()
	now := e.clock.Now()
	if !e.overload.Admit(now) {
		// The overload manager is at its limit: the arriving
		// transaction is the lowest-priority work in the system unless
		// its criticality displaces something still queued.
		victim := e.queue.EvictLowerCriticality(req.Criticality)
		if victim == nil {
			e.outcome.Abort(txn.OverloadDenied)
			return ErrOverload
		}
		e.mu.Lock()
		vj := e.jobs[victim.ID]
		e.mu.Unlock()
		if vj != nil {
			e.finish(vj, txn.OverloadDenied, ErrOverload)
		}
		e.overload.ForceAdmit()
	}

	deadline := txn.NoDeadline
	if req.Class != txn.NonRealTime && req.Deadline > 0 {
		deadline = now.Add(req.Deadline)
	}
	t := txn.New(txn.ID(e.nextID.Add(1)), req.Class, now, deadline)
	t.Criticality = req.Criticality
	if req.ReadOnly && !e.cfg.NoReadOnlyFastPath {
		t.DeclareReadOnly()
	}
	j := &job{t: t, req: req, done: make(chan error, 1)}

	e.mu.Lock()
	e.jobs[t.ID] = j
	e.mu.Unlock()

	e.queue.Push(t)
	err := <-j.done

	e.mu.Lock()
	delete(e.jobs, t.ID)
	e.mu.Unlock()
	e.overload.Done()
	return err
}

// Stop drains outstanding requests and shuts the workers down.
func (e *Engine) Stop() {
	if e.stopped.Swap(true) {
		return
	}
	e.inflight.Wait()
	e.queue.Close()
	e.workers.Wait()
	if box, ok := e.committer.Load().(committerBox); ok {
		box.c.Close()
	}
}

func (e *Engine) worker() {
	defer e.workers.Done()
	for {
		t := e.queue.PopWait()
		if t == nil {
			return
		}
		e.mu.Lock()
		j := e.jobs[t.ID]
		e.mu.Unlock()
		if j == nil {
			continue // job abandoned (shutdown race)
		}
		e.run(j)
	}
}

// run executes one attempt chain (with restarts) of a job to completion.
func (e *Engine) run(j *job) {
	t := j.t
	for {
		now := e.clock.Now()
		if t.Class == txn.Firm && t.Expired(now) {
			e.finish(j, txn.DeadlineMiss, ErrDeadline)
			return
		}
		e.ctl.Begin(t)
		t.State = txn.Running
		err := j.req.Do(&Tx{e: e, t: t})

		switch {
		case err == nil:
			// fall through to validation
		case errors.Is(err, errRestart):
			if !e.restart(j) {
				return
			}
			continue
		case errors.Is(err, ErrDeadline):
			e.ctl.Finish(t)
			e.finish(j, txn.DeadlineMiss, ErrDeadline)
			return
		default:
			// User error: the transaction aborts by its own choice;
			// deferred writes are simply discarded.
			e.ctl.Finish(t)
			t.Abort(txn.UserAbort)
			e.outcome.Abort(txn.UserAbort)
			j.done <- err
			return
		}

		now = e.clock.Now()
		if t.Class == txn.Firm && t.Expired(now) {
			e.ctl.Finish(t)
			e.finish(j, txn.DeadlineMiss, ErrDeadline)
			return
		}

		t.State = txn.Validating
		var res occ.Result
		roFast := false
		if !e.cfg.NoReadOnlyFastPath && t.ReadOnly() {
			var decided bool
			if res, decided = e.ctl.ValidateReadOnly(t); decided {
				roFast = res.OK
			} else if t.ReadOnlyDeclared() {
				// The fast path could not certify the snapshot and this
				// transaction's reads were never registered, so full
				// validation would be unsound for it: restart into the
				// fully registered path.
				t.DemoteReadOnly()
				if !e.restart(j) {
					return
				}
				continue
			} else {
				// Detected read-only (reads fully registered): full
				// validation is sound and may still serialize the
				// transaction below the conflicting writer.
				res = e.ctl.Validate(t)
			}
		} else {
			res = e.ctl.Validate(t)
		}
		if !res.OK {
			if !e.restart(j) {
				return
			}
			continue
		}
		// Victims have been marked doomed; their own workers restart
		// them at the next operation or validation.

		if !roFast {
			// Write phase already applied inside Validate. Build the
			// redo group and run the commit step for the current logging
			// mode. A fast-path read-only commit skips all of this: it
			// wrote nothing, consumed no serial, and per the paper needs
			// no shipped log — the committer is never touched.
			t.State = txn.LogWait
			validated := e.clock.Now()
			err = e.commitStable(t)
			e.commitWait.Observe(e.clock.Now().Sub(validated))
			e.ctl.Finish(t)
			if err != nil {
				// The write phase is already in local memory; losing the
				// log path mid-commit is a node-level failure for this
				// transaction.
				e.outcome.Abort(txn.NodeFailure)
				j.done <- fmt.Errorf("%w: %v", ErrNodeFailure, err)
				return
			}
		} else {
			e.ctl.Finish(t)
		}
		t.State = txn.Committed
		end := e.clock.Now()
		e.respTime.Observe(end.Sub(t.Arrival))
		if t.Class == txn.Soft && t.Expired(end) {
			e.outcome.CommitLate()
			e.overload.RecordMiss(end)
		} else {
			e.outcome.Commit()
		}
		j.done <- nil
		return
	}
}

// commitStable runs the commit step, retrying once through a swapped
// committer if the mirror vanished mid-commit.
func (e *Engine) commitStable(t *txn.Transaction) error {
	if e.LogMode() == LogNone {
		return nil
	}
	g := &wal.Group{Writes: wal.WriteRecordsFor(t), Commit: wal.CommitRecordFor(t)}
	backoff := 100 * time.Microsecond
	for attempt := 0; attempt < 3; attempt++ {
		c := e.committer.Load().(committerBox).c
		err := c.Commit(g)
		if err == nil {
			return nil
		}
		if errors.Is(err, ErrMirrorDown) {
			// The node (or a watchdog) swaps in a disk committer; wait
			// briefly for the swap and retry. The wait goes through the
			// engine clock so simulated-time runs advance instead of
			// stalling on a real sleep.
			e.sleep(backoff)
			backoff *= 2
			if backoff > time.Millisecond {
				backoff = time.Millisecond
			}
			continue
		}
		return err
	}
	return ErrMirrorDown
}

// sleep blocks until d has elapsed on the engine clock.
func (e *Engine) sleep(d time.Duration) {
	done := make(chan struct{})
	e.clock.AfterFunc(d, func() { close(done) })
	<-done
}

// restart resets the transaction for another attempt if it has restarts
// and time left; otherwise it finishes with a conflict abort. It reports
// whether the caller should retry.
func (e *Engine) restart(j *job) bool {
	t := j.t
	e.ctl.Finish(t)
	if t.Restarts >= e.cfg.MaxRestarts {
		e.finish(j, txn.Conflict, ErrConflict)
		return false
	}
	if t.Class == txn.Firm && t.Expired(e.clock.Now()) {
		e.finish(j, txn.DeadlineMiss, ErrDeadline)
		return false
	}
	e.outcome.Restart()
	t.ResetForRestart()
	return true
}

// finish completes a job with a terminal abort.
func (e *Engine) finish(j *job, reason txn.AbortReason, err error) {
	t := j.t
	t.Abort(reason)
	e.outcome.Abort(reason)
	if reason == txn.DeadlineMiss {
		e.overload.RecordMiss(e.clock.Now())
	}
	var final error
	switch reason {
	case txn.DeadlineMiss:
		final = ErrDeadline
	case txn.Conflict:
		final = ErrConflict
	default:
		final = err
	}
	j.done <- final
}
