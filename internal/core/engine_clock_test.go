package core

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/simtime"
	"repro/internal/store"
	"repro/internal/txn"
	"repro/internal/wal"
)

// jumpClock is a Clock whose AfterFunc fires immediately, advancing
// virtual time by the requested delay: waits complete instantly while
// recording how long they would have been. It stands in for a
// simulation loop in tests that only care that code waits through the
// clock instead of time.Sleep.
type jumpClock struct {
	mu    sync.Mutex
	now   simtime.Time
	waits []time.Duration
}

func (c *jumpClock) Now() simtime.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *jumpClock) AfterFunc(d simtime.Duration, fn func()) func() bool {
	c.mu.Lock()
	c.waits = append(c.waits, d)
	c.now = c.now.Add(d)
	c.mu.Unlock()
	fn()
	return func() bool { return false }
}

// downCommitter always reports the mirror as down.
type downCommitter struct{}

func (downCommitter) Commit(*wal.Group) error { return ErrMirrorDown }
func (downCommitter) Close() error            { return nil }

// TestCommitStableBacksOffOnEngineClock checks that the mirror-down
// retry loop waits through the engine clock with capped exponential
// backoff instead of a hard-coded real sleep: under a simulated clock
// the whole retry sequence completes without blocking wall time.
func TestCommitStableBacksOffOnEngineClock(t *testing.T) {
	clk := &jumpClock{}
	e := NewEngine(Config{Workers: 1, Clock: clk}, store.New(), downCommitter{}, LogShip)
	defer e.Stop()

	tx := txn.New(1, txn.Firm, 0, txn.NoDeadline)
	tx.StageWrite(1, []byte("v"))

	start := time.Now()
	err := e.commitStable(tx)
	elapsed := time.Since(start)

	if !errors.Is(err, ErrMirrorDown) {
		t.Fatalf("err = %v, want ErrMirrorDown", err)
	}
	clk.mu.Lock()
	waits := append([]time.Duration(nil), clk.waits...)
	clk.mu.Unlock()
	want := []time.Duration{100 * time.Microsecond, 200 * time.Microsecond, 400 * time.Microsecond}
	if len(waits) != len(want) {
		t.Fatalf("waits = %v, want %v", waits, want)
	}
	for i := range want {
		if waits[i] != want[i] {
			t.Fatalf("wait %d = %v, want %v (waits %v)", i, waits[i], want[i], waits)
		}
	}
	// All waiting went through the clock: real time spent should be far
	// below even one of the old 1 ms sleeps. Allow generous slack for
	// slow CI machines.
	if elapsed > 100*time.Millisecond {
		t.Fatalf("commitStable blocked %v of wall time under a simulated clock", elapsed)
	}
}

// TestEngineDefaultsToWallClock just pins the default: a nil Config
// clock must still produce a working engine.
func TestEngineDefaultsToWallClock(t *testing.T) {
	e := NewEngine(Config{Workers: 1}, store.New(), nullCommitter{}, LogNone)
	defer e.Stop()
	if e.clock == nil {
		t.Fatal("engine clock not defaulted")
	}
	if _, ok := e.clock.(*simtime.WallClock); !ok {
		t.Fatalf("default clock is %T, want *simtime.WallClock", e.clock)
	}
}
