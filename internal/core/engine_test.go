package core

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/logstore"
	"repro/internal/occ"
	"repro/internal/sched"
	"repro/internal/store"
	"repro/internal/txn"
	"repro/internal/wal"
)

func newTestEngine(t *testing.T, cfg Config, mode LogMode) (*Engine, *store.Store, *logstore.Mem) {
	t.Helper()
	db := store.New()
	for i := 0; i < 100; i++ {
		db.Put(store.ObjectID(i), []byte{byte(i)})
	}
	mem := logstore.NewMem()
	var c Committer
	switch mode {
	case LogDisk:
		c = NewDiskCommitter(mem, cfg.GroupCommitWindow)
	default:
		c = buildCommitter(mode, mem, cfg.withDefaults())
	}
	e := NewEngine(cfg, db, c, mode)
	t.Cleanup(e.Stop)
	return e, db, mem
}

func TestExecuteReadOnly(t *testing.T) {
	e, _, _ := newTestEngine(t, Config{}, LogNone)
	var got []byte
	err := e.Execute(Request{Deadline: time.Second, Do: func(tx *Tx) error {
		v, err := tx.Read(5)
		got = v
		return err
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 5 {
		t.Fatalf("read = %v", got)
	}
	s := e.Outcome().Snapshot()
	if s.Committed != 1 || s.Missed != 0 {
		t.Fatalf("outcome = %+v", s)
	}
}

func TestExecuteWriteVisible(t *testing.T) {
	e, db, mem := newTestEngine(t, Config{}, LogDisk)
	err := e.Execute(Request{Deadline: time.Second, Do: func(tx *Tx) error {
		v, err := tx.Read(1)
		if err != nil {
			return err
		}
		v[0]++
		return tx.Write(1, v)
	}})
	if err != nil {
		t.Fatal(err)
	}
	v, _ := db.Get(1)
	if v[0] != 2 {
		t.Fatalf("db value = %v", v)
	}
	// The commit must be durable: the log holds the group, synced.
	recovered := store.New()
	st, err := wal.Recover(readerOf(mem.SyncedBytes()), recovered)
	if err != nil || st.Applied != 1 {
		t.Fatalf("recover: %+v %v", st, err)
	}
	rv, _ := recovered.Get(1)
	if rv[0] != 2 {
		t.Fatalf("recovered value = %v", rv)
	}
}

func TestReadYourWritesThroughTx(t *testing.T) {
	e, _, _ := newTestEngine(t, Config{}, LogNone)
	err := e.Execute(Request{Deadline: time.Second, Do: func(tx *Tx) error {
		if err := tx.Write(3, []byte("mine")); err != nil {
			return err
		}
		v, err := tx.Read(3)
		if err != nil {
			return err
		}
		if string(v) != "mine" {
			t.Errorf("read-your-writes = %q", v)
		}
		return nil
	}})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReadMissingObject(t *testing.T) {
	e, _, _ := newTestEngine(t, Config{}, LogNone)
	err := e.Execute(Request{Deadline: time.Second, Do: func(tx *Tx) error {
		_, err := tx.Read(9999)
		return err
	}})
	if err == nil {
		t.Fatal("missing object read succeeded")
	}
	s := e.Outcome().Snapshot()
	if s.ByReason[txn.UserAbort] != 1 {
		t.Fatalf("outcome = %+v", s)
	}
}

func TestUserAbortDiscardsWrites(t *testing.T) {
	e, db, _ := newTestEngine(t, Config{}, LogNone)
	boom := errors.New("boom")
	before := db.Checksum()
	err := e.Execute(Request{Deadline: time.Second, Do: func(tx *Tx) error {
		tx.Write(1, []byte("junk"))
		return boom
	}})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if db.Checksum() != before {
		t.Fatal("aborted transaction changed the database")
	}
}

func TestFirmDeadlineMiss(t *testing.T) {
	e, _, _ := newTestEngine(t, Config{}, LogNone)
	err := e.Execute(Request{Class: txn.Firm, Deadline: 5 * time.Millisecond, Do: func(tx *Tx) error {
		time.Sleep(30 * time.Millisecond)
		_, err := tx.Read(1)
		return err
	}})
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v", err)
	}
	s := e.Outcome().Snapshot()
	if s.ByReason[txn.DeadlineMiss] != 1 {
		t.Fatalf("outcome = %+v", s)
	}
}

func TestSoftDeadlineCommitsLate(t *testing.T) {
	e, _, _ := newTestEngine(t, Config{}, LogNone)
	err := e.Execute(Request{Class: txn.Soft, Deadline: time.Millisecond, Do: func(tx *Tx) error {
		time.Sleep(20 * time.Millisecond)
		_, err := tx.Read(1)
		return err
	}})
	if err != nil {
		t.Fatalf("soft transaction should commit late, got %v", err)
	}
	s := e.Outcome().Snapshot()
	if s.Committed != 1 || s.LateCommits != 1 || s.Missed != 1 {
		t.Fatalf("outcome = %+v", s)
	}
}

func TestNonRealTimeRuns(t *testing.T) {
	e, _, _ := newTestEngine(t, Config{}, LogNone)
	err := e.Execute(Request{Class: txn.NonRealTime, Do: func(tx *Tx) error {
		_, err := tx.Read(1)
		return err
	}})
	if err != nil {
		t.Fatal(err)
	}
}

func TestOverloadDenial(t *testing.T) {
	cfg := Config{Workers: 1, Overload: sched.OverloadConfig{MaxActive: 1, MinActive: 1}}
	e, _, _ := newTestEngine(t, cfg, LogNone)
	hold := make(chan struct{})
	started := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		e.Execute(Request{Deadline: time.Second, Do: func(tx *Tx) error {
			close(started)
			<-hold
			return nil
		}})
	}()
	<-started
	err := e.Execute(Request{Deadline: time.Second, Do: func(tx *Tx) error { return nil }})
	if !errors.Is(err, ErrOverload) {
		t.Fatalf("err = %v", err)
	}
	close(hold)
	wg.Wait()
	s := e.Outcome().Snapshot()
	if s.ByReason[txn.OverloadDenied] != 1 {
		t.Fatalf("outcome = %+v", s)
	}
}

func TestConflictRestartSucceeds(t *testing.T) {
	// With OCC-BC, a reader whose item is overwritten restarts; the
	// second attempt commits.
	cfg := Config{Workers: 2, Protocol: occ.BC}
	e, db, _ := newTestEngine(t, cfg, LogNone)

	readerInFirstAttempt := make(chan struct{})
	writerDone := make(chan struct{})
	var once sync.Once

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		err := e.Execute(Request{Deadline: 5 * time.Second, Do: func(tx *Tx) error {
			if _, err := tx.Read(7); err != nil {
				return err
			}
			once.Do(func() { close(readerInFirstAttempt) })
			<-writerDone // ensure overlap with the writer's commit
			return nil
		}})
		if err != nil {
			t.Errorf("reader failed: %v", err)
		}
	}()

	<-readerInFirstAttempt
	if err := e.Execute(Request{Deadline: 5 * time.Second, Do: func(tx *Tx) error {
		return tx.Write(7, []byte("overwritten"))
	}}); err != nil {
		t.Fatalf("writer failed: %v", err)
	}
	close(writerDone)
	wg.Wait()

	s := e.Outcome().Snapshot()
	if s.Restarts == 0 {
		t.Fatalf("expected at least one restart, outcome = %+v", s)
	}
	if s.Committed != 2 {
		t.Fatalf("outcome = %+v", s)
	}
	v, _ := db.Get(7)
	if string(v) != "overwritten" {
		t.Fatalf("final value = %q", v)
	}
}

func TestConflictExhaustsRestarts(t *testing.T) {
	cfg := Config{Workers: 2, Protocol: occ.BC, MaxRestarts: 2}
	e, _, _ := newTestEngine(t, cfg, LogNone)

	readerReady := make(chan struct{}, 16)
	proceed := make(chan struct{}, 16)
	var wg sync.WaitGroup
	wg.Add(1)
	var readerErr error
	go func() {
		defer wg.Done()
		readerErr = e.Execute(Request{Deadline: 10 * time.Second, Do: func(tx *Tx) error {
			if _, err := tx.Read(7); err != nil {
				return err
			}
			readerReady <- struct{}{}
			<-proceed
			return nil
		}})
	}()

	// Overwrite object 7 during every reader attempt: initial + 2
	// restarts = 3 attempts.
	for i := 0; i < 3; i++ {
		<-readerReady
		if err := e.Execute(Request{Deadline: 5 * time.Second, Do: func(tx *Tx) error {
			return tx.Write(7, []byte{byte(i)})
		}}); err != nil {
			t.Fatalf("writer %d: %v", i, err)
		}
		proceed <- struct{}{}
	}
	wg.Wait()
	if !errors.Is(readerErr, ErrConflict) {
		t.Fatalf("reader err = %v", readerErr)
	}
	s := e.Outcome().Snapshot()
	if s.ByReason[txn.Conflict] != 1 || s.Restarts != 2 {
		t.Fatalf("outcome = %+v", s)
	}
}

func TestStopRejectsNewWork(t *testing.T) {
	e, _, _ := newTestEngine(t, Config{}, LogNone)
	e.Stop()
	if err := e.Execute(Request{Do: func(tx *Tx) error { return nil }}); !errors.Is(err, ErrStopped) {
		t.Fatalf("err = %v", err)
	}
	e.Stop() // idempotent
}

func TestCommitWaitHistogram(t *testing.T) {
	e, _, _ := newTestEngine(t, Config{}, LogDisk)
	for i := 0; i < 5; i++ {
		if err := e.Execute(Request{Deadline: time.Second, Do: func(tx *Tx) error {
			return tx.Write(1, []byte("x"))
		}}); err != nil {
			t.Fatal(err)
		}
	}
	if e.CommitWaits().Count() != 5 {
		t.Fatalf("commit waits = %d", e.CommitWaits().Count())
	}
	if e.ResponseTimes().Count() != 5 {
		t.Fatalf("response times = %d", e.ResponseTimes().Count())
	}
}

func TestSetCommitterSwitchesMode(t *testing.T) {
	e, _, mem := newTestEngine(t, Config{}, LogNone)
	if e.LogMode() != LogNone {
		t.Fatalf("mode = %v", e.LogMode())
	}
	prev := e.SetCommitter(NewDiskCommitter(mem, 0), LogDisk)
	if prev == nil || e.LogMode() != LogDisk {
		t.Fatalf("swap failed: %v %v", prev, e.LogMode())
	}
	if err := e.Execute(Request{Deadline: time.Second, Do: func(tx *Tx) error {
		return tx.Write(2, []byte("y"))
	}}); err != nil {
		t.Fatal(err)
	}
	if mem.Stats().Syncs == 0 {
		t.Fatal("disk committer not used after swap")
	}
}

// --- DiskCommitter ------------------------------------------------------------

func TestDiskCommitterPerCommitSync(t *testing.T) {
	mem := logstore.NewMem()
	d := NewDiskCommitter(mem, 0)
	defer d.Close()
	for i := 0; i < 3; i++ {
		g := testGroup(txn.ID(i+1), uint64(i+1))
		if err := d.Commit(g); err != nil {
			t.Fatal(err)
		}
	}
	st := d.Stats()
	if st.Commits != 3 || st.Syncs != 3 {
		t.Fatalf("stats = %+v", st)
	}
	if mem.Stats().Syncs != 3 {
		t.Fatalf("device syncs = %d", mem.Stats().Syncs)
	}
}

func TestDiskCommitterGroupCommit(t *testing.T) {
	mem := logstore.NewMem()
	d := NewDiskCommitter(mem, 10*time.Millisecond)
	defer d.Close()
	var wg sync.WaitGroup
	const n = 8
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := d.Commit(testGroup(txn.ID(i+1), uint64(i+1))); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	st := d.Stats()
	if st.Commits != n {
		t.Fatalf("commits = %d", st.Commits)
	}
	if st.Syncs >= n {
		t.Fatalf("group commit did not batch: %d syncs for %d commits", st.Syncs, n)
	}
	// All records durable.
	recovered := store.New()
	rst, err := wal.Recover(readerOf(mem.SyncedBytes()), recovered)
	if err != nil || rst.Applied != n {
		t.Fatalf("recover: %+v %v", rst, err)
	}
}

func TestDiskCommitterClosed(t *testing.T) {
	d := NewDiskCommitter(logstore.NewMem(), 0)
	d.Close()
	if err := d.Commit(testGroup(1, 1)); !errors.Is(err, ErrStopped) {
		t.Fatalf("err = %v", err)
	}
}

func testGroup(id txn.ID, serial uint64) *wal.Group {
	return &wal.Group{
		Writes: []*wal.Record{{Type: wal.TypeWrite, TxnID: id, ObjectID: store.ObjectID(serial), AfterImage: []byte("v")}},
		Commit: &wal.Record{Type: wal.TypeCommit, TxnID: id, SerialOrder: serial, CommitTS: serial * 100},
	}
}

func readerOf(b []byte) *bytes.Reader { return bytes.NewReader(b) }

func TestCriticalityDisplacement(t *testing.T) {
	// One worker busy with a held transaction; the queue holds a
	// low-criticality transaction; the admission limit is 2. A
	// high-criticality arrival displaces the queued one.
	cfg := Config{Workers: 1, Overload: sched.OverloadConfig{MaxActive: 2, MinActive: 2}}
	e, _, _ := newTestEngine(t, cfg, LogNone)

	hold := make(chan struct{})
	started := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		e.Execute(Request{Deadline: 5 * time.Second, Do: func(tx *Tx) error {
			close(started)
			<-hold
			return nil
		}})
	}()
	<-started

	var lowErr error
	lowDone := make(chan struct{})
	go func() {
		defer wg.Done()
		defer close(lowDone)
		lowErr = e.Execute(Request{Deadline: 5 * time.Second, Criticality: 1, Do: func(tx *Tx) error {
			return nil
		}})
	}()
	// Wait until the low-criticality txn is queued (admitted, not
	// running: the single worker is held).
	deadline := time.After(2 * time.Second)
	for e.queue.Len() == 0 {
		select {
		case <-deadline:
			t.Fatal("low-criticality txn never queued")
		default:
			time.Sleep(time.Millisecond)
		}
	}

	// Limit reached; a zero-criticality arrival is denied...
	if err := e.Execute(Request{Deadline: time.Second, Do: func(tx *Tx) error { return nil }}); !errors.Is(err, ErrOverload) {
		t.Fatalf("plain arrival: %v", err)
	}
	// ...but a criticality-9 arrival displaces the queued one. It runs
	// in a goroutine: it cannot finish until the held worker frees up.
	highDone := make(chan error, 1)
	go func() {
		highDone <- e.Execute(Request{Deadline: 5 * time.Second, Criticality: 9, Do: func(tx *Tx) error {
			return nil
		}})
	}()
	select {
	case <-lowDone:
	case <-time.After(5 * time.Second):
		t.Fatal("victim was never displaced")
	}
	if !errors.Is(lowErr, ErrOverload) {
		t.Fatalf("victim err = %v", lowErr)
	}
	close(hold)
	wg.Wait()
	if err := <-highDone; err != nil {
		t.Fatalf("high-criticality arrival failed: %v", err)
	}
	s := e.Outcome().Snapshot()
	if s.ByReason[txn.OverloadDenied] != 2 { // plain arrival + victim
		t.Fatalf("outcome = %+v", s)
	}
}

func TestEngineAccessors(t *testing.T) {
	e, db, _ := newTestEngine(t, Config{}, LogNone)
	if e.DB() != db {
		t.Fatal("DB accessor mismatch")
	}
	if e.Overload() == nil || e.Controller() == nil {
		t.Fatal("nil accessors")
	}
	var gotID txn.ID
	var gotRestarts int
	if err := e.Execute(Request{Deadline: time.Second, Do: func(tx *Tx) error {
		gotID = tx.ID()
		gotRestarts = tx.Restarts()
		return nil
	}}); err != nil {
		t.Fatal(err)
	}
	if gotID == 0 || gotRestarts != 0 {
		t.Fatalf("tx accessors: id=%d restarts=%d", gotID, gotRestarts)
	}
}

func TestDiscardCommitterThroughEngine(t *testing.T) {
	e, _, mem := newTestEngine(t, Config{}, LogDiscard)
	if err := e.Execute(Request{Deadline: time.Second, Do: func(tx *Tx) error {
		return tx.Write(1, []byte("x"))
	}}); err != nil {
		t.Fatal(err)
	}
	if mem.Stats().BytesAppended != 0 {
		t.Fatal("LogDiscard wrote to the device")
	}
}

func TestWriteAfterDeadline(t *testing.T) {
	e, _, _ := newTestEngine(t, Config{}, LogNone)
	err := e.Execute(Request{Class: txn.Firm, Deadline: time.Millisecond, Do: func(tx *Tx) error {
		time.Sleep(10 * time.Millisecond)
		return tx.Write(1, []byte("late")) // Write's deadline check fires
	}})
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v", err)
	}
}

func TestCommitStableRetriesThroughSwap(t *testing.T) {
	// A committer that reports the mirror down once; commitStable must
	// retry and succeed after a swap.
	e, _, mem := newTestEngine(t, Config{}, LogNone)
	e.SetCommitter(&failingOnceCommitter{next: NewDiskCommitter(mem, 0), e: e}, LogShip)
	if err := e.Execute(Request{Deadline: 2 * time.Second, Do: func(tx *Tx) error {
		return tx.Write(1, []byte("retried"))
	}}); err != nil {
		t.Fatalf("commit through failing committer: %v", err)
	}
	if mem.Stats().Syncs == 0 {
		t.Fatal("retry never reached the disk committer")
	}
}

// failingOnceCommitter fails its first commit with ErrMirrorDown and
// swaps the engine to its fallback, mimicking a mirror loss mid-commit.
type failingOnceCommitter struct {
	next   Committer
	e      *Engine
	failed bool
}

func (f *failingOnceCommitter) Commit(g *wal.Group) error {
	if !f.failed {
		f.failed = true
		f.e.SetCommitter(f.next, LogDisk)
		return ErrMirrorDown
	}
	return f.next.Commit(g)
}

func (f *failingOnceCommitter) Close() error { return f.next.Close() }
