package core

import (
	"io"

	"repro/internal/metrics"
	"repro/internal/wal"
)

// CheckpointStats summarizes one fuzzy checkpoint cycle.
type CheckpointStats struct {
	// Serial is the validation order the checkpoint corresponds to once
	// the log suffix is replayed (the maximum stripe watermark).
	Serial uint64
	// Stripes is the store's stripe count.
	Stripes int
	// Copied is how many stripes were snapshotted this cycle.
	Copied int
	// Skipped is how many clean stripes reused their cached encoding.
	Skipped int
	// Records is the total record count written.
	Records int
	// Bytes is the checkpoint's encoded size.
	Bytes int
	// MinWatermark is the smallest stripe watermark — the serial below
	// which the log is redundant and may be truncated.
	MinWatermark uint64
}

// stripeCache remembers one stripe's last encoding so a checkpoint cycle
// can skip stripes nothing mutated since the previous cycle.
type stripeCache struct {
	valid   bool
	epoch   uint64 // store epoch the encoding was copied at
	records int
	enc     []byte
}

// FuzzyCheckpoint writes a fuzzy, stripe-incremental checkpoint of the
// node's database to w and returns its statistics. Unlike Checkpoint it
// never freezes validation: each stripe is copied under only that
// stripe's read lock — commits proceed on the other stripes throughout —
// and is tagged with the controller's stable serial observed before the
// copy, which bounds exactly which logged groups the copy is guaranteed
// to contain. Stripes whose change epoch has not moved since the last
// cycle reuse their cached encoding and merely raise their watermark.
//
// Correctness of the watermark: StableSerial is read before the stripe
// copy, so every group at or below it had completed its write phase —
// and therefore installed its effects in the stripe, happens-before
// ordered by the controller's mutex and the stripe lock — by the time
// the copy starts. Groups above the watermark may or may not be in the
// copy; replaying them from the log is idempotent (last-writer-wins
// timestamps, tombstones), so recovery replays each record's suffix from
// its stripe's watermark and converges on the live state.
func (n *Node) FuzzyCheckpoint(w io.Writer) (CheckpointStats, error) {
	n.mu.Lock()
	engine := n.engine
	n.mu.Unlock()
	if engine == nil {
		return CheckpointStats{}, ErrNotServing
	}
	ctl := engine.Controller()

	// One checkpoint cycle at a time: the cache is cycle state.
	n.ckptMu.Lock()
	defer n.ckptMu.Unlock()
	stripes := n.db.NumStripes()
	if len(n.ckptCache) != stripes {
		n.ckptCache = make([]stripeCache, stripes)
	}
	st := CheckpointStats{Stripes: stripes}
	cw := &countingWriter{w: w}
	if err := wal.WriteCheckpointHeader(cw, stripes); err != nil {
		return st, err
	}
	marks := make([]uint64, stripes)
	for i := 0; i < stripes; i++ {
		c := &n.ckptCache[i]
		// Order matters: read the stable serial BEFORE looking at the
		// stripe. Reversed, a group could apply into the stripe and
		// retire between the two reads and the watermark would claim it.
		stable := ctl.StableSerial()
		if c.valid && n.db.StripeEpoch(i) == c.epoch {
			// Clean stripe: contents unchanged since the cached copy, so
			// the cache equals the live stripe right now — which makes
			// raising the watermark to the fresh stable serial sound.
			marks[i] = stable
			st.Skipped++
		} else {
			start := n.cfg.Clock.Now()
			recs, epoch := n.db.SnapshotStripe(i)
			n.ckptPause.Observe(n.cfg.Clock.Now().Sub(start))
			// Encoding happens outside the stripe lock: SnapshotStripe
			// borrows the after images under the store's immutable-value
			// contract.
			enc := c.enc[:0]
			for _, rec := range recs {
				enc = wal.AppendCheckpointRecord(enc, rec)
			}
			*c = stripeCache{valid: true, epoch: epoch, records: len(recs), enc: enc}
			marks[i] = stable
			st.Copied++
		}
		if _, err := cw.Write(c.enc); err != nil {
			return st, err
		}
		st.Records += c.records
	}
	if err := wal.WriteCheckpointTrailer(cw, marks); err != nil {
		return st, err
	}
	wm := wal.NewStripeWatermarks(marks)
	st.Serial = wm.Max()
	st.MinWatermark = wm.Min()
	st.Bytes = cw.n
	n.ckptBytes.Observe(st.Bytes)
	n.ckptSkip.Observe(st.Skipped) // note: IntDist floors 0 at 1
	return st, nil
}

type countingWriter struct {
	w io.Writer
	n int
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += n
	return n, err
}

// CheckpointPauses is the distribution of per-stripe copy pauses — the
// longest a committer can stall behind the checkpointer on one stripe.
// The frozen (ablation) path records its whole freeze here, which is
// exactly the comparison BenchmarkCheckpointPause draws.
func (n *Node) CheckpointPauses() *metrics.Histogram { return &n.ckptPause }

// CheckpointBytes is the distribution of checkpoint sizes written.
func (n *Node) CheckpointBytes() *metrics.IntDist { return &n.ckptBytes }

// CheckpointCleanStripes is the distribution of clean (skipped) stripe
// counts per cycle; IntDist floors zero at one, so a fully-dirty cycle
// records as 1.
func (n *Node) CheckpointCleanStripes() *metrics.IntDist { return &n.ckptSkip }
