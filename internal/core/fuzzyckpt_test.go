package core

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/logstore"
	"repro/internal/store"
	"repro/internal/wal"
)

// restoreFuzzy decodes a fuzzy checkpoint and replays the given log
// suffix over it, returning the recovered store.
func restoreFuzzy(t *testing.T, ckpt, logBytes []byte) *store.Store {
	t.Helper()
	ck, err := wal.DecodeCheckpoint(bytes.NewReader(ckpt))
	if err != nil {
		t.Fatal(err)
	}
	db := store.New()
	db.LoadSnapshot(ck.Snapshot)
	if _, err := wal.ParallelRecoverSuffix(bytes.NewReader(logBytes), db, 4, ck.Watermarks); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestFuzzyCheckpointIdleNode(t *testing.T) {
	log := logstore.NewMem()
	n := NewNode("fz", fastCfg(), newDBWith(200), log)
	if err := n.ServePrimary("", LogDisk); err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	for i := 0; i < 25; i++ {
		if err := n.Execute(Request{Deadline: time.Second, Do: func(tx *Tx) error {
			return tx.Write(store.ObjectID(i), []byte("fuzzy"))
		}}); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	st, err := n.FuzzyCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if st.Serial != 25 || st.MinWatermark != 25 {
		t.Fatalf("idle node: serial=%d min=%d, want 25/25", st.Serial, st.MinWatermark)
	}
	if st.Copied != st.Stripes || st.Skipped != 0 {
		t.Fatalf("first cycle: copied=%d skipped=%d stripes=%d", st.Copied, st.Skipped, st.Stripes)
	}
	if st.Bytes != buf.Len() {
		t.Fatalf("Bytes=%d, wrote %d", st.Bytes, buf.Len())
	}
	if st.Records != 200 {
		t.Fatalf("Records=%d, want 200", st.Records)
	}
	got := restoreFuzzy(t, buf.Bytes(), nil)
	if got.Checksum() != n.DB().Checksum() {
		t.Fatal("idle fuzzy checkpoint does not reproduce the database")
	}
	if n.CheckpointPauses().Count() == 0 || n.CheckpointBytes().Count() != 1 {
		t.Fatal("checkpoint metrics not recorded")
	}
}

// TestFuzzyCheckpointEquivalenceUnderLoad is the acceptance property of
// the fuzzy checkpointer: checkpoints taken while committers are running
// full tilt, plus a watermark-filtered replay of the log, reproduce
// exactly the checksum of the frozen snapshot they replace.
func TestFuzzyCheckpointEquivalenceUnderLoad(t *testing.T) {
	log := logstore.NewMem()
	n := NewNode("fz", fastCfg(), newDBWith(256), log)
	if err := n.ServePrimary("", LogDisk); err != nil {
		t.Fatal(err)
	}
	defer n.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				id := store.ObjectID(rng.Intn(256))
				val := []byte{byte(seed), byte(i), byte(i >> 8)}
				n.Execute(Request{Deadline: time.Second, Do: func(tx *Tx) error {
					if rng.Intn(20) == 0 {
						return tx.Delete(id)
					}
					return tx.Write(id, val)
				}})
			}
		}(int64(w + 1))
	}

	// Several fuzzy cycles mid-flight; the second and later ones also
	// exercise the clean-stripe cache under concurrent mutation.
	var ckpts [][]byte
	for c := 0; c < 3; c++ {
		time.Sleep(10 * time.Millisecond)
		var buf bytes.Buffer
		if _, err := n.FuzzyCheckpoint(&buf); err != nil {
			t.Fatal(err)
		}
		ckpts = append(ckpts, append([]byte(nil), buf.Bytes()...))
	}
	close(stop)
	wg.Wait()

	// Quiesced: the frozen snapshot the fuzzy path replaces.
	var frozen bytes.Buffer
	if _, err := n.Checkpoint(&frozen); err != nil {
		t.Fatal(err)
	}
	snap, _, err := wal.ReadCheckpoint(&frozen)
	if err != nil {
		t.Fatal(err)
	}
	ref := store.New()
	ref.LoadSnapshot(snap)
	want := ref.Checksum()
	if want != n.DB().Checksum() {
		t.Fatal("frozen reference diverged from the live database")
	}

	logBytes := log.Bytes()
	for i, ck := range ckpts {
		got := restoreFuzzy(t, ck, logBytes)
		if got.Checksum() != want {
			t.Fatalf("checkpoint %d + suffix replay != frozen snapshot checksum", i)
		}
	}
}

func TestFuzzyCheckpointIncrementalSkipsCleanStripes(t *testing.T) {
	log := logstore.NewMem()
	n := NewNode("inc", fastCfg(), newDBWith(300), log)
	if err := n.ServePrimary("", LogDisk); err != nil {
		t.Fatal(err)
	}
	defer n.Close()

	var first bytes.Buffer
	st1, err := n.FuzzyCheckpoint(&first)
	if err != nil {
		t.Fatal(err)
	}
	if st1.Copied != st1.Stripes {
		t.Fatalf("first cycle copied %d/%d stripes", st1.Copied, st1.Stripes)
	}

	// Nothing changed: every stripe is clean, and the cycle still
	// produces a complete, restorable checkpoint.
	var second bytes.Buffer
	st2, err := n.FuzzyCheckpoint(&second)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Copied != 0 || st2.Skipped != st2.Stripes {
		t.Fatalf("clean cycle: copied=%d skipped=%d", st2.Copied, st2.Skipped)
	}
	if second.Len() != first.Len() {
		t.Fatalf("clean cycle size %d differs from first %d", second.Len(), first.Len())
	}
	if got := restoreFuzzy(t, second.Bytes(), nil); got.Checksum() != n.DB().Checksum() {
		t.Fatal("clean-cycle checkpoint does not reproduce the database")
	}

	// One mutated object: exactly its stripe is re-copied.
	if err := n.Execute(Request{Deadline: time.Second, Do: func(tx *Tx) error {
		return tx.Write(7, []byte("dirty"))
	}}); err != nil {
		t.Fatal(err)
	}
	var third bytes.Buffer
	st3, err := n.FuzzyCheckpoint(&third)
	if err != nil {
		t.Fatal(err)
	}
	if st3.Copied != 1 || st3.Skipped != st3.Stripes-1 {
		t.Fatalf("single-stripe cycle: copied=%d skipped=%d", st3.Copied, st3.Skipped)
	}
	// Clean stripes still raised their watermarks to the new stable
	// serial: the whole log is redundant again.
	ck, err := wal.DecodeCheckpoint(bytes.NewReader(third.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if ck.Watermarks.Min() != ck.LastSerial {
		t.Fatalf("clean stripes kept stale watermarks: min=%d last=%d",
			ck.Watermarks.Min(), ck.LastSerial)
	}
	if got := restoreFuzzy(t, third.Bytes(), log.Bytes()); got.Checksum() != n.DB().Checksum() {
		t.Fatal("incremental checkpoint does not reproduce the database")
	}
}

func TestFuzzyCheckpointOnMirrorFails(t *testing.T) {
	n := NewNode("m", fastCfg(), store.New(), logstore.NewMem())
	var buf bytes.Buffer
	if _, err := n.FuzzyCheckpoint(&buf); err != ErrNotServing {
		t.Fatalf("err = %v, want ErrNotServing", err)
	}
}

func TestCheckpointToDirFrozenAblation(t *testing.T) {
	dir := t.TempDir()
	log := logstore.NewMem()
	cfg := fastCfg()
	cfg.FrozenCheckpoint = true
	n := NewNode("frz", cfg, newDBWith(50), log)
	if err := n.ServePrimary("", LogDisk); err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	for i := 0; i < 10; i++ {
		if err := n.Execute(Request{Deadline: time.Second, Do: func(tx *Tx) error {
			return tx.Write(store.ObjectID(i), []byte("frozen"))
		}}); err != nil {
			t.Fatal(err)
		}
	}
	serial, err := n.CheckpointToDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if serial != 10 {
		t.Fatalf("serial = %d", serial)
	}
	f, err := os.Open(filepath.Join(dir, "checkpoint.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	ck, err := wal.DecodeCheckpoint(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ck.Version != 1 || ck.Watermarks != nil {
		t.Fatalf("ablation wrote a v%d checkpoint", ck.Version)
	}
	if len(log.Bytes()) != 0 {
		t.Fatalf("frozen checkpoint left %d log bytes", len(log.Bytes()))
	}
	want := n.DB().Checksum()
	n2 := NewNode("re", fastCfg(), store.New(), logstore.NewMem())
	if _, err := n2.RecoverFromDir(dir, nil); err != nil {
		t.Fatal(err)
	}
	if n2.DB().Checksum() != want {
		t.Fatal("frozen-ablation recovery differs")
	}
}

type cycleResult struct {
	serial uint64
	err    error
}

func TestCheckpointSchedulerTimeTrigger(t *testing.T) {
	dir := t.TempDir()
	n := NewNode("sched", fastCfg(), newDBWith(64), logstore.NewMem())
	if err := n.ServePrimary("", LogDisk); err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	cycles := make(chan cycleResult, 64)
	s := n.StartCheckpointScheduler(dir, CheckpointSchedulerOptions{
		Every: 30 * time.Millisecond,
		Poll:  10 * time.Millisecond,
		OnCycle: func(serial uint64, err error) {
			cycles <- cycleResult{serial, err}
		},
	})
	defer s.Stop()
	select {
	case c := <-cycles:
		if c.err != nil {
			t.Fatal(c.err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no checkpoint cycle within 5s at a 30ms interval")
	}
	if _, err := os.Stat(filepath.Join(dir, "checkpoint.ckpt")); err != nil {
		t.Fatal(err)
	}
}

func TestCheckpointSchedulerLogBytesTrigger(t *testing.T) {
	dir := t.TempDir()
	log := logstore.NewMem()
	n := NewNode("schedb", fastCfg(), newDBWith(64), log)
	if err := n.ServePrimary("", LogDisk); err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	cycles := make(chan cycleResult, 64)
	s := n.StartCheckpointScheduler(dir, CheckpointSchedulerOptions{
		LogBytes: 1, // any growth
		Poll:     10 * time.Millisecond,
		OnCycle: func(serial uint64, err error) {
			cycles <- cycleResult{serial, err}
		},
	})
	defer s.Stop()
	// No log growth, no cycles.
	select {
	case c := <-cycles:
		t.Fatalf("cycle %+v before any log growth", c)
	case <-time.After(60 * time.Millisecond):
	}
	if err := n.Execute(Request{Deadline: time.Second, Do: func(tx *Tx) error {
		return tx.Write(1, []byte("growth"))
	}}); err != nil {
		t.Fatal(err)
	}
	select {
	case c := <-cycles:
		if c.err != nil {
			t.Fatal(c.err)
		}
		if c.serial == 0 {
			t.Fatal("cycle reported serial 0 after a commit")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("log growth did not trigger a checkpoint")
	}
}

// TestCheckpointSchedulerIdlesOnMirror: a node without an engine (a
// mirror) must not checkpoint; after promotion the same scheduler
// resumes.
func TestCheckpointSchedulerIdlesOnMirror(t *testing.T) {
	dir := t.TempDir()
	n := NewNode("mir", fastCfg(), newDBWith(16), logstore.NewMem())
	cycles := make(chan cycleResult, 64)
	s := n.StartCheckpointScheduler(dir, CheckpointSchedulerOptions{
		Every: 20 * time.Millisecond,
		Poll:  10 * time.Millisecond,
		OnCycle: func(serial uint64, err error) {
			cycles <- cycleResult{serial, err}
		},
	})
	defer s.Stop()
	select {
	case c := <-cycles:
		t.Fatalf("mirror checkpointed: %+v", c)
	case <-time.After(100 * time.Millisecond):
	}
	if err := n.ServePrimary("", LogDisk); err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	select {
	case c := <-cycles:
		if c.err != nil {
			t.Fatal(c.err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("scheduler did not resume after promotion")
	}
}
