package core

import (
	"sync"
	"time"

	"repro/internal/logstore"
	"repro/internal/metrics"
	"repro/internal/simtime"
	"repro/internal/wal"
)

// GroupCommitter is the transient-primary Log Writer with leader/follower
// group fsync: committers append their encoded records into the open
// cohort, and exactly one of them — the cohort leader — puts the whole
// cohort on the device with one vectored AppendBatch and one Sync, on
// behalf of every follower parked on the cohort latch.
//
// The batching window is the device itself: while a sync is in flight,
// arriving committers pile into the next cohort, whose leader waits for
// the device and then covers them all. When the committer is idle the
// leader syncs immediately, so an uncontended commit pays exactly the
// paper's one-sync cost; under load the sync amortizes across the cohort
// and the disk leaves the per-transaction critical path — the same cost
// the Mirror Node removes in normal mode, recovered without a second
// machine. An optional adaptive hold (MaxHold, waited out on the
// simtime.Clock so simulated runs stay deterministic) lets a leader that
// already had to queue for the device linger briefly for stragglers.
//
// Durability is unchanged from the per-commit DiskCommitter: Commit
// returns only after a Sync covering this transaction's records has
// completed, so an acknowledged transaction is always recoverable.
type GroupCommitter struct {
	log   logstore.Store
	clock simtime.Clock

	maxCohort int
	maxHold   time.Duration

	mu         sync.Mutex
	cond       *sync.Cond // wakes cohort leaders queueing for the device
	cur        *fsyncCohort
	syncing    bool
	closed     bool
	lastCohort int // size of the last completed cohort (contention signal)

	stats CommitterStats
	sizes metrics.IntDist
	waits metrics.Histogram // append → sync-complete, per committer
}

// fsyncCohort accumulates the encoded records of the transactions that
// will share one AppendBatch + Sync. done is the cohort latch: closed by
// the leader once the covering sync has completed (or failed).
type fsyncCohort struct {
	arena []byte
	ends  []int // arena end offset of each member's encoding
	n     int
	done  chan struct{}
	err   error
}

// chunks slices the arena into one chunk per member for AppendBatch.
// Only valid after the cohort is sealed (the arena no longer grows).
func (c *fsyncCohort) chunks() [][]byte {
	out := make([][]byte, len(c.ends))
	start := 0
	for i, end := range c.ends {
		out[i] = c.arena[start:end]
		start = end
	}
	return out
}

// GroupOptions parameterizes a GroupCommitter.
type GroupOptions struct {
	// MaxCohort caps how many transactions share one sync (default 64).
	MaxCohort int
	// MaxHold lets a leader that queued for the device hold the cohort
	// open a little longer for stragglers. Zero disables holding.
	MaxHold time.Duration
	// Clock supplies the hold timer; nil uses the wall clock.
	Clock simtime.Clock
}

// NewGroupCommitter returns a leader/follower group-fsync committer over
// log.
func NewGroupCommitter(log logstore.Store, opts GroupOptions) *GroupCommitter {
	if opts.MaxCohort <= 0 {
		opts.MaxCohort = DefaultMaxCohort
	}
	if opts.Clock == nil {
		opts.Clock = simtime.NewWallClock()
	}
	g := &GroupCommitter{
		log:       log,
		clock:     opts.Clock,
		maxCohort: opts.MaxCohort,
		maxHold:   opts.MaxHold,
	}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// Commit implements Committer: join (or open) the current cohort, then
// either lead its sync or wait on its latch.
func (c *GroupCommitter) Commit(g *wal.Group) error {
	start := c.clock.Now()
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrStopped
	}
	co := c.cur
	lead := false
	if co == nil || co.n >= c.maxCohort {
		co = &fsyncCohort{done: make(chan struct{})}
		c.cur = co
		lead = true
	}
	co.arena = g.AppendEncoded(co.arena)
	co.ends = append(co.ends, len(co.arena))
	co.n++

	if !lead {
		// Follower: the cohort's leader syncs for us; park on the latch.
		c.cond.Broadcast() // a holding leader re-checks its cohort size
		c.mu.Unlock()
		<-co.done
		c.waits.Observe(c.clock.Now().Sub(start))
		return co.err
	}

	// Leader. Queue for the device; followers join the cohort meanwhile.
	waited := false
	for c.syncing && !c.closed {
		c.cond.Wait()
		waited = true
	}
	if c.closed {
		if c.cur == co {
			c.cur = nil
		}
		c.mu.Unlock()
		c.finish(co, ErrStopped)
		return ErrStopped
	}
	// Adaptive hold: only when commits are actually overlapping — we
	// queued behind a sync, or the previous cohort carried more than one
	// transaction — and the cohort still has room. When idle this is
	// skipped entirely and the commit syncs immediately.
	if c.maxHold > 0 && co.n < c.maxCohort && (waited || c.lastCohort > 1) {
		c.holdLocked(co)
	}
	c.syncing = true
	if c.cur == co {
		c.cur = nil // seal: later arrivals open the next cohort
	}
	chunks := co.chunks()
	c.mu.Unlock()

	err := c.log.AppendBatch(chunks)
	if err == nil {
		err = c.log.Sync()
	}

	c.mu.Lock()
	c.syncing = false
	c.lastCohort = co.n
	if err == nil {
		c.stats.Commits += uint64(co.n)
		c.stats.Syncs++
		c.stats.Bytes += uint64(len(co.arena))
	}
	c.sizes.Observe(co.n)
	c.cond.Broadcast() // hand the device to the next cohort's leader
	c.mu.Unlock()

	c.finish(co, err)
	c.waits.Observe(c.clock.Now().Sub(start))
	return err
}

// holdLocked keeps the cohort open for up to maxHold (on the clock) or
// until it fills. Must hold c.mu; the timer callback must not run inline
// (both the wall clock and the simulation loop satisfy this).
func (c *GroupCommitter) holdLocked(co *fsyncCohort) {
	expired := false
	cancel := c.clock.AfterFunc(c.maxHold, func() {
		c.mu.Lock()
		expired = true
		c.cond.Broadcast()
		c.mu.Unlock()
	})
	for !expired && co.n < c.maxCohort && !c.closed {
		c.cond.Wait()
	}
	cancel()
}

// finish resolves the cohort latch, releasing every follower.
func (c *GroupCommitter) finish(co *fsyncCohort, err error) {
	co.err = err
	close(co.done)
}

// Stats returns committer accounting.
func (c *GroupCommitter) Stats() CommitterStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.stats
	st.Cohorts = c.sizes.Count()
	st.MaxCohort = c.sizes.Max()
	return st
}

// CohortSizes exposes the cohort-size distribution.
func (c *GroupCommitter) CohortSizes() *metrics.IntDist { return &c.sizes }

// SyncWaits exposes the per-committer append→durable latency histogram.
func (c *GroupCommitter) SyncWaits() *metrics.Histogram { return &c.waits }

// Close implements Committer. The open cohort (if any) fails with
// ErrStopped; a sync already on the device completes normally.
func (c *GroupCommitter) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.cond.Broadcast()
	c.mu.Unlock()
	return nil
}
