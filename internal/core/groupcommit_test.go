package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/logstore"
	"repro/internal/store"
	"repro/internal/txn"
	"repro/internal/wal"
)

// diskGroup builds a one-write group whose after image is the serial
// itself, so recovery output can be checked transaction by transaction.
func diskGroup(serial uint64) *wal.Group {
	img := make([]byte, 8)
	binary.LittleEndian.PutUint64(img, serial)
	return &wal.Group{
		Writes: []*wal.Record{{Type: wal.TypeWrite, TxnID: txn.ID(serial), ObjectID: store.ObjectID(serial), AfterImage: img}},
		Commit: &wal.Record{Type: wal.TypeCommit, TxnID: txn.ID(serial), SerialOrder: serial, CommitTS: serial * 65536},
	}
}

// TestGroupCommitFewerSyncsThanCommits is the acceptance test for the
// transient-primary group fsync: under concurrent committers over a slow
// device, cohorts form and the committer issues measurably fewer Sync()
// calls than commits — verified against the logstore's own Stats — and
// every committed transaction still recovers from the synced log.
func TestGroupCommitFewerSyncsThanCommits(t *testing.T) {
	const (
		committers = 8
		perWorker  = 50
		total      = committers * perWorker
	)
	mem := logstore.NewMem()
	slow := logstore.NewDelayed(mem, 200*time.Microsecond)
	gc := NewGroupCommitter(slow, GroupOptions{})
	defer gc.Close()

	var serials atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < committers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if err := gc.Commit(diskGroup(serials.Add(1))); err != nil {
					t.Errorf("commit: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()

	st := gc.Stats()
	if st.Commits != total {
		t.Fatalf("Commits = %d, want %d", st.Commits, total)
	}
	if st.Syncs >= st.Commits {
		t.Fatalf("Syncs = %d not fewer than Commits = %d: no batching happened", st.Syncs, st.Commits)
	}
	if st.MaxCohort < 2 {
		t.Fatalf("MaxCohort = %d, want > 1 under %d concurrent committers", st.MaxCohort, committers)
	}
	if st.Cohorts != st.Syncs {
		t.Fatalf("Cohorts = %d, Syncs = %d: one sync per cohort expected", st.Cohorts, st.Syncs)
	}
	if dev := mem.Stats().Syncs; dev != st.Syncs {
		t.Fatalf("device saw %d syncs, committer counted %d", dev, st.Syncs)
	}
	if n := gc.CohortSizes().Count(); n != st.Cohorts {
		t.Fatalf("CohortSizes.Count = %d, want %d", n, st.Cohorts)
	}
	if n := gc.SyncWaits().Count(); n != total {
		t.Fatalf("SyncWaits.Count = %d, want %d", n, total)
	}

	// Everything that committed is on stable media.
	recovered := store.New()
	rst, err := wal.ParallelRecover(bytes.NewReader(mem.SyncedBytes()), recovered, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rst.Applied != total {
		t.Fatalf("recovered %d groups, want %d", rst.Applied, total)
	}
	for s := uint64(1); s <= total; s++ {
		v, ok := recovered.Get(store.ObjectID(s))
		if !ok || binary.LittleEndian.Uint64(v) != s {
			t.Fatalf("txn %d missing or wrong after recovery", s)
		}
	}
}

// TestGroupCommitCrashConsistency kills the transient primary mid-cohort
// and checks the durability invariant: every transaction whose Commit had
// returned by the crash point is present after recovering the synced
// prefix of the log. (Unacknowledged in-flight transactions may or may
// not appear; acknowledged ones must.)
func TestGroupCommitCrashConsistency(t *testing.T) {
	const committers = 8
	mem := logstore.NewMem()
	slow := logstore.NewDelayed(mem, 50*time.Microsecond)
	gc := NewGroupCommitter(slow, GroupOptions{MaxCohort: 8})

	var (
		serials atomic.Uint64
		stop    atomic.Bool
		ackMu   sync.Mutex
		acked   []uint64
	)
	var wg sync.WaitGroup
	for w := 0; w < committers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				s := serials.Add(1)
				if err := gc.Commit(diskGroup(s)); err != nil {
					if errors.Is(err, ErrStopped) {
						return
					}
					t.Errorf("commit: %v", err)
					return
				}
				ackMu.Lock()
				acked = append(acked, s)
				ackMu.Unlock()
			}
		}()
	}

	time.Sleep(30 * time.Millisecond)
	// Crash point: snapshot the acknowledged set FIRST, then the synced
	// log. Every transaction acknowledged before the first snapshot was
	// covered by a sync before it, so it must be inside the second.
	ackMu.Lock()
	ackedAtCrash := append([]uint64(nil), acked...)
	ackMu.Unlock()
	synced := mem.SyncedBytes()

	stop.Store(true)
	gc.Close()
	wg.Wait()
	if len(ackedAtCrash) == 0 {
		t.Fatal("no transactions acknowledged before the crash point")
	}

	recovered := store.New()
	if _, err := wal.ParallelRecover(bytes.NewReader(synced), recovered, 2); err != nil {
		t.Fatal(err)
	}
	for _, s := range ackedAtCrash {
		v, ok := recovered.Get(store.ObjectID(s))
		if !ok || binary.LittleEndian.Uint64(v) != s {
			t.Fatalf("acknowledged txn %d lost by the crash (%d acked)", s, len(ackedAtCrash))
		}
	}
}

// TestGroupCommitLeaderCoversQueuedFollowers pins the leader/follower
// handoff with a deterministic schedule on a slow device: a lone commit
// syncs immediately; two commits arriving while that sync is in flight
// share the next cohort and its single sync.
func TestGroupCommitLeaderCoversQueuedFollowers(t *testing.T) {
	mem := logstore.NewMem()
	slow := logstore.NewDelayed(mem, 20*time.Millisecond)
	gc := NewGroupCommitter(slow, GroupOptions{MaxCohort: 2})
	defer gc.Close()

	done := make(chan error, 3)
	go func() { done <- gc.Commit(diskGroup(1)) }()
	time.Sleep(5 * time.Millisecond) // first sync now in flight
	go func() { done <- gc.Commit(diskGroup(2)) }()
	go func() { done <- gc.Commit(diskGroup(3)) }()
	for i := 0; i < 3; i++ {
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("commit: %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("group commit hung")
		}
	}
	st := gc.Stats()
	if st.Commits != 3 || st.Syncs != 2 {
		t.Fatalf("Commits = %d Syncs = %d, want 3 commits over 2 syncs", st.Commits, st.Syncs)
	}
	if st.MaxCohort != 2 {
		t.Fatalf("MaxCohort = %d, want 2", st.MaxCohort)
	}
}

// TestGroupCommitCloseReleasesWaiters: closing mid-cohort fails the open
// cohort with ErrStopped instead of leaving committers parked forever.
func TestGroupCommitCloseReleasesWaiters(t *testing.T) {
	mem := logstore.NewMem()
	slow := logstore.NewDelayed(mem, 20*time.Millisecond)
	gc := NewGroupCommitter(slow, GroupOptions{})

	done := make(chan error, 2)
	go func() { done <- gc.Commit(diskGroup(1)) }()
	time.Sleep(5 * time.Millisecond) // sync in flight
	go func() { done <- gc.Commit(diskGroup(2)) }()
	time.Sleep(2 * time.Millisecond) // second cohort open, leader queued
	gc.Close()
	for i := 0; i < 2; i++ {
		select {
		case err := <-done:
			if err != nil && !errors.Is(err, ErrStopped) {
				t.Fatalf("commit: %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("commit hung across Close")
		}
	}
	if err := gc.Commit(diskGroup(3)); !errors.Is(err, ErrStopped) {
		t.Fatalf("commit after close: %v", err)
	}
}
