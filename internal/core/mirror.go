package core

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/logstore"
	"repro/internal/simtime"
	"repro/internal/store"
	"repro/internal/transport"
	"repro/internal/wal"
)

// ErrPrimaryDown reports that the mirror lost its primary (connection
// error or watchdog timeout): the trigger for takeover.
var ErrPrimaryDown = errors.New("core: primary down")

// MirrorEngine is the hot stand-by side of a RODAIN pair: it receives
// the primary's log stream, acknowledges every commit record immediately
// on arrival, reorders records into true validation order, applies each
// transaction's updates to its database copy only once the commit record
// has been seen (so it never needs to undo anything), and stores the
// reordered log to disk asynchronously — the disk write is not
// synchronized with transaction commits.
type MirrorEngine struct {
	cfg Config
	db  *store.Store
	log logstore.Store

	mu           sync.Mutex
	lastSerial   uint64 // last applied validation order
	maxCommitTS  uint64
	applied      uint64
	ackedCommits uint64
	logBuf       []byte
	opsBuf       []store.Op // group-apply scratch, reused per group
	logErr       error      // first log-device failure; fails the session

	// applier, when non-nil, fans the database apply out over a
	// conflict-aware worker pool; receive/ack and the stored log stay
	// strictly ordered on the session goroutine. Only the session
	// goroutine touches it.
	applier *wal.ParallelApplier

	stopFlush chan struct{}
	flushWG   sync.WaitGroup
}

// NewMirrorEngine returns a mirror over db whose received log is stored
// to log.
func NewMirrorEngine(cfg Config, db *store.Store, log logstore.Store) *MirrorEngine {
	return &MirrorEngine{cfg: cfg.withDefaults(), db: db, log: log}
}

// DB exposes the database copy.
func (m *MirrorEngine) DB() *store.Store { return m.db }

// LastSerial reports the validation order of the last applied
// transaction — the replay position a takeover or rejoin resumes from.
func (m *MirrorEngine) LastSerial() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lastSerial
}

// MaxCommitTS reports the largest commit timestamp applied; a takeover
// seeds its concurrency controller above it.
func (m *MirrorEngine) MaxCommitTS() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.maxCommitTS
}

// Applied reports how many transactions have been applied.
func (m *MirrorEngine) Applied() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.applied
}

// Run drives one mirror session over conn until the primary fails or
// the session is closed. It sends the hello (with the mirror's current
// replay position), processes an optional state transfer, then consumes
// the log stream. The returned error is ErrPrimaryDown for failures that
// should trigger takeover.
func (m *MirrorEngine) Run(conn *transport.Conn) (err error) {
	defer conn.Close()

	m.mu.Lock()
	hello := m.lastSerial
	m.mu.Unlock()
	if err := conn.Send(&transport.Msg{Type: transport.MsgHello, Serial: hello}); err != nil {
		return fmt.Errorf("%w: hello: %v", ErrPrimaryDown, err)
	}

	// Parallel apply sink: commit acknowledgment and log storage stay
	// synchronous and ordered below, but the database apply itself fans
	// out so the mirror's copy keeps up with a multicore primary. Closed
	// (drained) before Run returns, so a takeover always promotes a
	// fully-applied database.
	if workers := m.cfg.MirrorApplyWorkers; workers > 1 {
		m.applier = wal.NewParallelApplier(m.db, workers, false)
		defer func() {
			m.applier.Close()
			m.applier = nil
		}()
	}

	// Background log flusher: "the data storing to the disk is not
	// synchronized with the transaction commits".
	if m.cfg.MirrorSyncEvery > 0 {
		m.stopFlush = make(chan struct{})
		m.flushWG.Add(1)
		go m.flusher()
		defer func() {
			close(m.stopFlush)
			m.flushWG.Wait()
			// Final sync so a clean shutdown loses nothing. The session
			// is already ending; surface a failure rather than mask the
			// original error.
			if serr := m.log.Sync(); serr != nil && err == nil {
				err = fmt.Errorf("core: mirror: final log sync: %v", serr)
			}
		}()
	}

	reorderer := wal.NewReorderer(hello + 1)
	watchdog := time.Duration(m.cfg.HeartbeatMisses) * m.cfg.HeartbeatEvery
	// Until the log stream is live (state transfer done, heartbeats
	// flowing) the primary may legitimately be busy building and
	// shipping a multi-megabyte snapshot; use a generous deadline.
	handshake := 10 * time.Second
	if handshake < watchdog {
		handshake = watchdog
	}
	live := false

	// Ack coalescing: the shipper treats acknowledgments as cumulative
	// (an ack for serial n releases every commit with serial <= n), so
	// while more of the received batch is still buffered the mirror only
	// notes the highest commit serial seen and sends one MsgAck when the
	// read buffer drains (or after ackCoalesceMax commits, to bound how
	// long a waiter rides along). One control frame per wire batch
	// instead of one per commit record.
	var (
		pendingAckSerial uint64 // highest commit serial not yet acked
		pendingAckCount  uint64 // commit records covered by it
	)

	var snapshotBuf *bytes.Buffer // non-nil while a state transfer is in progress
	for {
		if live {
			conn.SetRecvDeadline(time.Now().Add(watchdog)) //rodain:allow wallclock (socket I/O deadlines are wall-clock by nature)
		} else {
			conn.SetRecvDeadline(time.Now().Add(handshake)) //rodain:allow wallclock (socket I/O deadlines are wall-clock by nature)
		}
		msg, err := conn.RecvPooled()
		if err != nil {
			// Discard buffered, uncommitted transactions: when the
			// Primary Node fails, transactions without a commit record
			// are considered aborted.
			reorderer.DiscardPending()
			return fmt.Errorf("%w: %v", ErrPrimaryDown, err)
		}
		// Every arm below either copies or fully decodes the payload, so
		// the frame goes straight back to the pool: the log stream is
		// consumed without a per-message allocation.
		switch msg.Type {
		case transport.MsgPing:
			transport.ReleaseMsg(msg)
			live = true
			if err := conn.SendControl(transport.MsgPong, 0); err != nil {
				return fmt.Errorf("%w: pong: %v", ErrPrimaryDown, err)
			}
		case transport.MsgSnapshotBegin:
			transport.ReleaseMsg(msg)
			snapshotBuf = new(bytes.Buffer)
		case transport.MsgSnapshotChunk:
			if snapshotBuf == nil {
				transport.ReleaseMsg(msg)
				return fmt.Errorf("core: mirror: snapshot chunk without begin")
			}
			snapshotBuf.Write(msg.Payload)
			transport.ReleaseMsg(msg)
		case transport.MsgSnapshotEnd:
			transport.ReleaseMsg(msg)
			if snapshotBuf == nil {
				return fmt.Errorf("core: mirror: snapshot end without begin")
			}
			snap, serial, err := wal.ReadCheckpoint(snapshotBuf)
			if err != nil {
				return fmt.Errorf("core: mirror: state transfer: %v", err)
			}
			if m.applier != nil {
				m.applier.Wait() // no in-flight group may race the reload
			}
			m.db.LoadSnapshot(snap)
			m.mu.Lock()
			m.lastSerial = serial
			for _, r := range snap {
				if r.WriteTS > m.maxCommitTS {
					m.maxCommitTS = r.WriteTS
				}
			}
			m.mu.Unlock()
			reorderer = wal.NewReorderer(serial + 1)
			snapshotBuf = nil
			// Persist the transferred state so this node's own disk
			// can recover without the peer. A failure here means this
			// node could not replay alone after a crash — fail the
			// session instead of running with silently degraded
			// durability.
			var cp bytes.Buffer
			if err := wal.WriteCheckpoint(&cp, snap, serial); err != nil {
				return fmt.Errorf("core: mirror: persist state transfer: %v", err)
			}
			if err := m.log.Append(cp.Bytes()); err != nil {
				return fmt.Errorf("core: mirror: persist state transfer: %v", err)
			}
		case transport.MsgRecord:
			live = true
			rec, err := wal.DecodeBytes(msg.Payload)
			transport.ReleaseMsg(msg)
			if err != nil {
				return fmt.Errorf("core: mirror: bad record: %v", err)
			}
			// Commit records are acknowledged on arrival — the signal
			// that this transaction's logs are on the mirror — but the
			// send itself is coalesced per wire batch (below).
			if rec.Type == wal.TypeCommit {
				if rec.SerialOrder > pendingAckSerial {
					pendingAckSerial = rec.SerialOrder
				}
				pendingAckCount++
			}
			groups, err := reorderer.Add(rec)
			if err != nil {
				return fmt.Errorf("core: mirror: %v", err)
			}
			for _, g := range groups {
				if err := m.apply(g); err != nil {
					// The database copy is still good, but the stored
					// log no longer is: stop acking commits this node
					// could not replay on its own.
					return fmt.Errorf("core: mirror: log store: %v", err)
				}
			}
		default:
			typ := msg.Type
			transport.ReleaseMsg(msg)
			return fmt.Errorf("core: mirror: unexpected message %v", typ)
		}
		// Flush the coalesced ack before blocking on the next receive.
		// Buffered() > 0 means more frames of this batch are already on
		// this side (the primary flushed them, so they arrive without
		// needing the ack first) — keep coalescing; == 0 means the wire
		// is drained and the primary may be waiting on us.
		if pendingAckCount > 0 && (conn.Buffered() == 0 || pendingAckCount >= ackCoalesceMax) {
			if err := conn.SendControl(transport.MsgAck, pendingAckSerial); err != nil {
				reorderer.DiscardPending()
				return fmt.Errorf("%w: ack: %v", ErrPrimaryDown, err)
			}
			m.mu.Lock()
			m.ackedCommits += pendingAckCount
			m.mu.Unlock()
			pendingAckSerial, pendingAckCount = 0, 0
		}
	}
}

// ackCoalesceMax bounds how many commit records one cumulative ack may
// cover: even in a continuous burst the primary hears back at least
// this often.
const ackCoalesceMax = 32

// apply installs one committed group into the database copy and appends
// its records (already in validation order) to the log buffer. With a
// parallel applier the database install is handed to the worker pool
// (per-object order preserved, so the drained copy is identical to a
// sequential apply); otherwise the group goes through ApplyGroup inline.
// Either way its writes become visible atomically, mirroring the
// primary's write phase, and the stored log stays in validation order.
// A log-device failure (this append, or an earlier background flush) is
// returned: the mirror must not keep acknowledging commits it cannot
// replay from its own disk.
func (m *MirrorEngine) apply(g *wal.Group) error {
	if m.applier != nil {
		m.applier.Apply(g)
	} else {
		// opsBuf needs no lock: apply only runs on the session goroutine.
		ops := m.opsBuf[:0]
		for _, w := range g.Writes {
			ops = append(ops, store.Op{ID: w.ObjectID, Value: w.AfterImage, Delete: w.Type == wal.TypeDelete})
		}
		m.opsBuf = ops
		m.db.ApplyGroup(ops, g.Commit.CommitTS)
	}
	m.mu.Lock()
	buf := g.AppendEncoded(m.logBuf[:0])
	m.logBuf = buf
	m.applied++
	if g.SerialOrder() > m.lastSerial {
		m.lastSerial = g.SerialOrder()
	}
	if g.Commit.CommitTS > m.maxCommitTS {
		m.maxCommitTS = g.Commit.CommitTS
	}
	logErr := m.logErr
	m.mu.Unlock()
	if logErr != nil {
		return logErr
	}
	if err := m.log.Append(buf); err != nil {
		m.mu.Lock()
		if m.logErr == nil {
			m.logErr = err
		}
		m.mu.Unlock()
		return err
	}
	return nil
}

// flusher syncs the log store periodically, off the commit path. It
// runs on the configured clock, so simulated-time runs flush on virtual
// time. A sync failure is recorded and stops the flusher: the next
// apply sees it and fails the session rather than acking commits whose
// local log can no longer reach stable media.
func (m *MirrorEngine) flusher() {
	defer m.flushWG.Done()
	t := simtime.NewTicker(m.cfg.Clock, m.cfg.MirrorSyncEvery)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if err := m.log.Sync(); err != nil {
				m.mu.Lock()
				if m.logErr == nil {
					m.logErr = fmt.Errorf("background flush: %v", err)
				}
				m.mu.Unlock()
				return
			}
		case <-m.stopFlush:
			return
		}
	}
}
