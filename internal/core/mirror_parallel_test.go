package core

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"repro/internal/logstore"
	"repro/internal/store"
	"repro/internal/wal"
)

// startPairWorkers boots a loopback pair whose mirror fans its database
// apply out over the given worker count.
func startPairWorkers(t *testing.T, workers int) (primary, mirror *Node, mLog *logstore.Mem) {
	t.Helper()
	cfg := fastCfg()
	cfg.MirrorApplyWorkers = workers
	pLog := logstore.NewMem()
	mLog = logstore.NewMem()
	primary = NewNode("primary", cfg, newDBWith(100), pLog)
	if err := primary.ServePrimary("127.0.0.1:0", LogDisk); err != nil {
		t.Fatal(err)
	}
	mirror = NewNode("mirror", cfg, store.New(), mLog)
	go func() {
		if err := mirror.RunMirror(primary.ReplAddr(), "127.0.0.1:0"); err != nil {
			t.Logf("mirror RunMirror: %v", err)
		}
	}()
	waitEvent(t, primary, EventMirrorAttached, 5*time.Second)
	return primary, mirror, mLog
}

// TestPairConvergesWithParallelMirrorApply runs a live pair with the
// mirror's parallel apply sink enabled and a workload that mixes
// disjoint and write-write conflicting transactions: the mirror's copy
// must converge to the primary's, and its stored log must stay in
// validation order (it replays to the same state).
func TestPairConvergesWithParallelMirrorApply(t *testing.T) {
	primary, mirror, mLog := startPairWorkers(t, 4)
	defer primary.Close()
	defer mirror.Close()

	for i := 0; i < 60; i++ {
		i := i
		err := primary.Execute(Request{Deadline: 2 * time.Second, Do: func(tx *Tx) error {
			// Disjoint per-transaction object plus a hot shared object:
			// every pair of transactions conflicts on object 0.
			if err := tx.Write(store.ObjectID(i+1), []byte(fmt.Sprintf("v-%d", i))); err != nil {
				return err
			}
			return tx.Write(0, []byte(fmt.Sprintf("hot-%d", i)))
		}})
		if err != nil {
			t.Fatalf("txn %d: %v", i, err)
		}
	}
	waitConverged(t, primary.DB(), mirror.DB(), 3*time.Second)

	time.Sleep(30 * time.Millisecond) // one async flush cycle
	recovered := store.New()
	st, err := wal.Recover(bytes.NewReader(mLog.SyncedBytes()), recovered)
	if err != nil {
		t.Fatal(err)
	}
	if st.Applied == 0 {
		t.Fatal("mirror stored no committed groups")
	}
	if recovered.Checksum() != primary.DB().Checksum() {
		t.Fatal("mirror disk log does not replay to the primary state")
	}
}

// TestTakeoverDrainsParallelApply crashes the primary while the mirror
// runs the parallel sink: the takeover must promote a fully-applied
// database (Run drains the applier before returning), so the promoted
// node's state matches the primary's last committed state and it serves
// immediately.
func TestTakeoverDrainsParallelApply(t *testing.T) {
	primary, mirror, _ := startPairWorkers(t, 8)
	defer primary.Close()
	defer mirror.Close()

	for i := 0; i < 40; i++ {
		i := i
		if err := primary.Execute(Request{Deadline: 2 * time.Second, Do: func(tx *Tx) error {
			return tx.Write(store.ObjectID(i%7), []byte(fmt.Sprintf("pre-crash-%d", i)))
		}}); err != nil {
			t.Fatalf("txn %d: %v", i, err)
		}
	}
	want := primary.DB().Checksum()
	primary.Crash()
	waitEvent(t, mirror, EventTakeover, 5*time.Second)
	if got := mirror.DB().Checksum(); got != want {
		t.Fatalf("promoted database diverged: got %08x want %08x", got, want)
	}
	if err := mirror.Execute(Request{Deadline: 2 * time.Second, Do: func(tx *Tx) error {
		return tx.Write(1, []byte("post-takeover"))
	}}); err != nil {
		t.Fatalf("post-takeover txn: %v", err)
	}
}
