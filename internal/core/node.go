package core

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/logstore"
	"repro/internal/metrics"
	"repro/internal/simtime"
	"repro/internal/store"
	"repro/internal/transport"
	"repro/internal/wal"
)

// ErrNotServing reports a transaction submitted to a node that is not
// (yet) a primary — transactions are executed only on the Primary Node.
var ErrNotServing = errors.New("core: node is not serving transactions")

// EventKind classifies node role-change events.
type EventKind int

// Node events.
const (
	// EventMirrorAttached: a mirror completed state transfer and log
	// shipping is live; commits now wait on the mirror, not the disk.
	EventMirrorAttached EventKind = iota
	// EventMirrorLost: the mirror connection failed; the node switched
	// to transient mode (direct disk logging).
	EventMirrorLost
	// EventTakeover: this mirror node detected primary failure and is
	// now serving as transient primary.
	EventTakeover
)

func (k EventKind) String() string {
	switch k {
	case EventMirrorAttached:
		return "mirror-attached"
	case EventMirrorLost:
		return "mirror-lost"
	case EventTakeover:
		return "takeover"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is a node role-change notification.
type Event struct {
	Kind   EventKind
	Detail string
	When   time.Time
}

// Node ties the pieces into one RODAIN node: the execution engine, the
// replication endpoints, and the role state machine (primary / mirror /
// transient primary). A failed node always rejoins as mirror; the
// database server role only moves when the current server dies.
type Node struct {
	cfg  Config
	name string
	db   *store.Store
	log  logstore.Store

	mu         sync.Mutex
	mode       Mode
	engine     *Engine
	mirror     *MirrorEngine
	listener   *transport.Listener
	shipper    *MirrorShipper
	mirrorConn *transport.Conn // the upstream connection while in mirror mode
	disk       Committer       // transient-mode disk committer (group fsync by default)
	closed     bool

	events chan Event
	wg     sync.WaitGroup

	// Checkpoint cycle state: one fuzzy checkpoint at a time, with the
	// per-stripe encoding cache that makes steady-state cycles
	// incremental.
	ckptMu    sync.Mutex
	ckptCache []stripeCache
	ckptPause metrics.Histogram
	ckptBytes metrics.IntDist
	ckptSkip  metrics.IntDist
}

// NewNode creates a node over its database and local log device. The
// node does nothing until ServePrimary or RunMirror is called.
func NewNode(name string, cfg Config, db *store.Store, log logstore.Store) *Node {
	return &Node{
		cfg:    cfg.withDefaults(),
		name:   name,
		db:     db,
		log:    log,
		events: make(chan Event, 64),
	}
}

// Name reports the node's name.
func (n *Node) Name() string { return n.name }

// DB exposes the node's database.
func (n *Node) DB() *store.Store { return n.db }

// Mode reports the node's current role.
func (n *Node) Mode() Mode {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.mode
}

// Events delivers role-change notifications. The channel is buffered;
// events are dropped rather than blocking the node.
func (n *Node) Events() <-chan Event { return n.events }

// Engine returns the execution engine, nil while the node is a mirror.
func (n *Node) Engine() *Engine {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.engine
}

func (n *Node) emit(kind EventKind, detail string) {
	select {
	case n.events <- Event{Kind: kind, Detail: detail, When: time.Now()}: //rodain:allow wallclock (observability timestamp on an exported event, not engine control flow)
	default:
	}
}

// ServePrimary starts the node as the database server. It begins in
// transient mode (logs to its own disk) and switches to mirror shipping
// when a mirror connects to listenAddr. Pass listenAddr "" to run
// without a replication endpoint (pure single-node configurations).
// logMode selects the single-node commit path: LogDisk (true log
// writes), LogDiscard (disk off) or LogNone (no logs at all).
func (n *Node) ServePrimary(listenAddr string, logMode LogMode) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return ErrStopped
	}
	if n.engine != nil {
		return fmt.Errorf("core: node %s already serving", n.name)
	}
	var c Committer
	switch logMode {
	case LogDisk:
		n.disk = buildCommitter(LogDisk, n.log, n.cfg)
		c = n.disk
	case LogDiscard, LogNone:
		c = buildCommitter(logMode, n.log, n.cfg)
	case LogShip:
		return fmt.Errorf("core: a primary starts in a single-node mode; shipping begins when a mirror attaches")
	}
	n.engine = NewEngine(n.cfg, n.db, c, logMode)
	n.mode = ModeTransient
	if listenAddr != "" {
		l, err := transport.Listen(listenAddr)
		if err != nil {
			return err
		}
		n.listener = l
		n.wg.Add(1)
		go n.acceptMirrors()
	}
	return nil
}

// ReplAddr reports the replication listener address ("" if none).
func (n *Node) ReplAddr() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.listener == nil {
		return ""
	}
	return n.listener.Addr()
}

// acceptMirrors admits (re)joining mirrors, one session at a time.
func (n *Node) acceptMirrors() {
	defer n.wg.Done()
	for {
		conn, err := n.listener.Accept()
		if err != nil {
			return // listener closed
		}
		n.attachMirror(conn)
	}
}

// attachMirror performs the handshake and state transfer for a joining
// mirror and switches the commit path to log shipping.
func (n *Node) attachMirror(conn *transport.Conn) {
	conn.SetRecvDeadline(time.Now().Add(5 * time.Second)) //rodain:allow wallclock (socket I/O deadlines are wall-clock by nature)
	hello, err := conn.Recv()
	if err != nil || hello.Type != transport.MsgHello {
		conn.Close()
		return
	}
	conn.SetRecvDeadline(time.Time{})

	n.mu.Lock()
	if n.closed || n.engine == nil {
		n.mu.Unlock()
		conn.Close()
		return
	}
	if n.shipper != nil {
		// Replace any previous mirror session.
		old := n.shipper
		n.shipper = nil
		n.mu.Unlock()
		old.Close()
		n.mu.Lock()
	}
	engine := n.engine
	n.mu.Unlock()

	// Quiescent point: freeze validation, snapshot the committed state,
	// and install the shipper so every transaction validated after the
	// snapshot ships to this mirror.
	var (
		snap    []store.Record
		serial  uint64
		shipper *MirrorShipper
	)
	engine.Controller().WithFrozen(func(lastSerial uint64) {
		serial = lastSerial
		// A mirror that is already at our position (fresh pair started
		// together) needs no data, but the snapshot is cheap insurance
		// and makes rejoin identical to first join.
		snap = n.db.Snapshot()
		shipper = NewMirrorShipper(conn, serial+1, ShipperOptions{
			AckTimeout: n.cfg.AckTimeout,
			Heartbeat:  n.cfg.HeartbeatEvery,
			MaxCohort:  n.cfg.MaxCohort,
			MaxHold:    n.cfg.MaxCohortHold,
			Clock:      n.cfg.Clock,
			OnFailure:  func() { n.mirrorLost() },
		})
		engine.SetCommitter(shipper, LogShip)
	})

	n.mu.Lock()
	n.shipper = shipper
	n.mode = ModePrimary
	n.mu.Unlock()

	// Ship the snapshot outside the freeze; commits queue in the
	// shipper meanwhile.
	if err := sendSnapshot(conn, snap, serial); err != nil {
		shipper.fail()
		return
	}
	shipper.Start()
	n.emit(EventMirrorAttached, fmt.Sprintf("serial=%d objects=%d", serial, len(snap)))
}

// sendSnapshot streams a checkpoint over the wire in bounded chunks.
func sendSnapshot(conn *transport.Conn, snap []store.Record, serial uint64) error {
	var buf bytes.Buffer
	if err := wal.WriteCheckpoint(&buf, snap, serial); err != nil {
		return err
	}
	if err := conn.Send(&transport.Msg{Type: transport.MsgSnapshotBegin, Serial: serial}); err != nil {
		return err
	}
	const chunk = 64 << 10
	data := buf.Bytes()
	for off := 0; off < len(data); off += chunk {
		end := off + chunk
		if end > len(data) {
			end = len(data)
		}
		if err := conn.Send(&transport.Msg{Type: transport.MsgSnapshotChunk, Payload: data[off:end]}); err != nil {
			return err
		}
	}
	return conn.Send(&transport.Msg{Type: transport.MsgSnapshotEnd, Serial: serial})
}

// mirrorLost switches the node back to transient mode: the Log Writer
// must store logs directly to disk again.
func (n *Node) mirrorLost() {
	n.mu.Lock()
	if n.closed || n.engine == nil {
		n.mu.Unlock()
		return
	}
	if n.disk == nil {
		n.disk = buildCommitter(LogDisk, n.log, n.cfg)
	}
	n.engine.SetCommitter(n.disk, LogDisk)
	n.shipper = nil
	n.mode = ModeTransient
	n.mu.Unlock()
	n.emit(EventMirrorLost, "switched to direct disk logging")
}

// RunMirror runs the node as the hot stand-by of the primary at
// primaryAddr. It blocks until either the node is closed (returns nil)
// or the primary fails — in which case the node takes over as transient
// primary, starts its replication listener on takeoverListen (so the
// recovered peer can rejoin as mirror), and returns nil. Any other error
// is returned.
func (n *Node) RunMirror(primaryAddr, takeoverListen string) error {
	conn, err := dialRetry(primaryAddr, 5*time.Second, n.cfg.Clock)
	if err != nil {
		return err
	}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		conn.Close()
		return ErrStopped
	}
	n.mode = ModeMirror
	n.mirror = NewMirrorEngine(n.cfg, n.db, n.log)
	n.mirrorConn = conn
	mirror := n.mirror
	n.mu.Unlock()

	err = mirror.Run(conn)

	n.mu.Lock()
	n.mirrorConn = nil
	closed := n.closed
	n.mu.Unlock()
	if closed {
		return nil
	}
	if errors.Is(err, ErrPrimaryDown) {
		return n.takeover(takeoverListen)
	}
	return err
}

// takeover promotes a mirror to transient primary: transactions execute
// here now, with logs stored directly to disk before commit.
func (n *Node) takeover(listenAddr string) error {
	n.mu.Lock()
	if n.closed || n.engine != nil {
		n.mu.Unlock()
		return nil
	}
	n.disk = buildCommitter(LogDisk, n.log, n.cfg)
	n.engine = NewEngine(n.cfg, n.db, n.disk, LogDisk)
	n.engine.Controller().Seed(n.mirror.LastSerial(), n.mirror.MaxCommitTS())
	n.mode = ModeTransient
	var err error
	if listenAddr != "" {
		n.listener, err = transport.Listen(listenAddr)
		if err == nil {
			n.wg.Add(1)
			go n.acceptMirrors()
		}
	}
	serial := n.mirror.LastSerial()
	n.mu.Unlock()
	n.emit(EventTakeover, fmt.Sprintf("resuming from serial %d", serial))
	return err
}

// Execute submits a transaction to the node; it fails with ErrNotServing
// on a mirror.
func (n *Node) Execute(req Request) error {
	n.mu.Lock()
	engine := n.engine
	n.mu.Unlock()
	if engine == nil {
		return ErrNotServing
	}
	return engine.Execute(req)
}

// RecoverFromLog replays a stored log (as written by a transient primary
// or a mirror) into the node's database before it starts, fanning the
// apply phase out over cfg.RecoverWorkers conflict-aware workers (the
// result is bit-identical to a sequential replay). It returns the
// recovery statistics; the engine's counters are seeded so a subsequent
// ServePrimary continues the epoch.
func (n *Node) RecoverFromLog(r io.Reader) (wal.RecoverStats, error) {
	st, err := wal.ParallelRecover(r, n.db, n.cfg.RecoverWorkers)
	if err != nil {
		return st, err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.engine != nil {
		maxTS := uint64(0)
		for _, rec := range n.db.Snapshot() {
			if rec.WriteTS > maxTS {
				maxTS = rec.WriteTS
			}
		}
		n.engine.Controller().Seed(st.LastSerial, maxTS)
	}
	return st, nil
}

// Close shuts the node down gracefully: outstanding transactions drain,
// the log is synced, connections close.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	listener := n.listener
	shipper := n.shipper
	mirrorConn := n.mirrorConn
	engine := n.engine
	n.mu.Unlock()

	if listener != nil {
		listener.Close()
	}
	if mirrorConn != nil {
		mirrorConn.Close()
	}
	if engine != nil {
		engine.Stop()
	}
	if shipper != nil {
		shipper.Close()
	}
	n.wg.Wait()
	return n.log.Sync()
}

// Crash kills the node abruptly: connections drop, nothing is drained or
// synced. It models the failures of the paper's availability story.
func (n *Node) Crash() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	listener := n.listener
	shipper := n.shipper
	mirrorConn := n.mirrorConn
	engine := n.engine
	n.mu.Unlock()

	if listener != nil {
		listener.Close()
	}
	if mirrorConn != nil {
		mirrorConn.Close()
	}
	if shipper != nil {
		shipper.Close()
	}
	if engine != nil {
		engine.Stop()
	}
	n.wg.Wait()
}

// dialRetry dials addr until it answers or the budget runs out on
// clock — the peer may still be starting up.
func dialRetry(addr string, budget time.Duration, clock simtime.Clock) (*transport.Conn, error) {
	deadline := clock.Now().Add(budget)
	for {
		conn, err := transport.Dial(addr, time.Second)
		if err == nil {
			return conn, nil
		}
		if clock.Now() > deadline {
			return nil, fmt.Errorf("core: dial %s: %w", addr, err)
		}
		simtime.SleepOn(clock, 20*time.Millisecond)
	}
}
