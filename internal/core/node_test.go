package core

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/logstore"
	"repro/internal/simtime"
	"repro/internal/store"
	"repro/internal/wal"
)

// fastCfg keeps watchdog intervals short so failover tests run quickly.
func fastCfg() Config {
	return Config{
		Workers:         2,
		AckTimeout:      2 * time.Second,
		HeartbeatEvery:  25 * time.Millisecond,
		HeartbeatMisses: 4,
		MirrorSyncEvery: 10 * time.Millisecond,
	}
}

func newDBWith(n int) *store.Store {
	db := store.New()
	for i := 0; i < n; i++ {
		db.Put(store.ObjectID(i), []byte(fmt.Sprintf("init-%d", i)))
	}
	return db
}

func waitEvent(t *testing.T, n *Node, kind EventKind, within time.Duration) Event {
	t.Helper()
	deadline := time.After(within)
	for {
		select {
		case ev := <-n.Events():
			if ev.Kind == kind {
				return ev
			}
		case <-deadline:
			t.Fatalf("node %s: event %v not seen within %v", n.Name(), kind, within)
		}
	}
}

func waitConverged(t *testing.T, a, b *store.Store, within time.Duration) {
	t.Helper()
	deadline := time.Now().Add(within)
	for {
		if a.Checksum() == b.Checksum() {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("databases did not converge within %v", within)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// startPair boots a primary+mirror pair connected over loopback TCP.
func startPair(t *testing.T) (primary, mirror *Node, pLog, mLog *logstore.Mem) {
	t.Helper()
	pLog, mLog = logstore.NewMem(), logstore.NewMem()
	primary = NewNode("primary", fastCfg(), newDBWith(100), pLog)
	if err := primary.ServePrimary("127.0.0.1:0", LogDisk); err != nil {
		t.Fatal(err)
	}
	mirror = NewNode("mirror", fastCfg(), store.New(), mLog)
	go func() {
		if err := mirror.RunMirror(primary.ReplAddr(), "127.0.0.1:0"); err != nil {
			t.Logf("mirror RunMirror: %v", err)
		}
	}()
	waitEvent(t, primary, EventMirrorAttached, 5*time.Second)
	return primary, mirror, pLog, mLog
}

func TestPairShipsAndConverges(t *testing.T) {
	primary, mirror, _, mLog := startPair(t)
	defer primary.Close()
	defer mirror.Close()

	for i := 0; i < 20; i++ {
		i := i
		err := primary.Execute(Request{Deadline: 2 * time.Second, Do: func(tx *Tx) error {
			v, err := tx.Read(store.ObjectID(i))
			if err != nil {
				return err
			}
			return tx.Write(store.ObjectID(i), append(v, '!'))
		}})
		if err != nil {
			t.Fatalf("txn %d: %v", i, err)
		}
	}
	if primary.Engine().LogMode() != LogShip {
		t.Fatalf("primary log mode = %v", primary.Engine().LogMode())
	}
	if primary.Mode() != ModePrimary {
		t.Fatalf("primary mode = %v", primary.Mode())
	}
	waitConverged(t, primary.DB(), mirror.DB(), 3*time.Second)

	// The mirror's disk log replays to the same database.
	time.Sleep(30 * time.Millisecond) // allow one async flush cycle
	recovered := store.New()
	st, err := wal.Recover(bytes.NewReader(mLog.SyncedBytes()), recovered)
	if err != nil {
		t.Fatal(err)
	}
	if st.Applied == 0 {
		t.Fatal("mirror stored no committed groups")
	}
	if recovered.Checksum() != primary.DB().Checksum() {
		t.Fatal("mirror disk log does not replay to the primary state")
	}
}

func TestCommitWaitsForMirrorAck(t *testing.T) {
	primary, mirror, pLog, _ := startPair(t)
	defer primary.Close()
	defer mirror.Close()

	if err := primary.Execute(Request{Deadline: 2 * time.Second, Do: func(tx *Tx) error {
		return tx.Write(1, []byte("shipped"))
	}}); err != nil {
		t.Fatal(err)
	}
	// In shipping mode the primary's own disk sees no commit syncs: the
	// disk write is off the critical path.
	if pLog.Stats().Syncs != 0 {
		t.Fatalf("primary synced its disk %d times in shipping mode", pLog.Stats().Syncs)
	}
}

func TestMirrorLossSwitchesToTransient(t *testing.T) {
	primary, mirror, pLog, _ := startPair(t)
	defer primary.Close()

	mirror.Crash()
	waitEvent(t, primary, EventMirrorLost, 5*time.Second)

	if err := primary.Execute(Request{Deadline: 2 * time.Second, Do: func(tx *Tx) error {
		return tx.Write(2, []byte("after mirror loss"))
	}}); err != nil {
		t.Fatalf("transient-mode txn: %v", err)
	}
	if primary.Engine().LogMode() != LogDisk {
		t.Fatalf("log mode = %v", primary.Engine().LogMode())
	}
	if pLog.Stats().Syncs == 0 {
		t.Fatal("transient mode must sync the local disk on commit")
	}
}

func TestTakeoverOnPrimaryFailure(t *testing.T) {
	primary, mirror, _, _ := startPair(t)
	defer mirror.Close()

	// Commit some state, then kill the primary.
	for i := 0; i < 5; i++ {
		if err := primary.Execute(Request{Deadline: 2 * time.Second, Do: func(tx *Tx) error {
			return tx.Write(store.ObjectID(i), []byte("pre-failure"))
		}}); err != nil {
			t.Fatal(err)
		}
	}
	waitConverged(t, primary.DB(), mirror.DB(), 3*time.Second)
	primary.Crash()

	waitEvent(t, mirror, EventTakeover, 5*time.Second)
	if mirror.Mode() != ModeTransient {
		t.Fatalf("mirror mode = %v", mirror.Mode())
	}
	// The promoted node serves transactions, including reads of
	// pre-failure commits.
	err := mirror.Execute(Request{Deadline: 2 * time.Second, Do: func(tx *Tx) error {
		v, err := tx.Read(3)
		if err != nil {
			return err
		}
		if string(v) != "pre-failure" {
			return fmt.Errorf("lost committed data: %q", v)
		}
		return tx.Write(3, []byte("post-takeover"))
	}})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecoveredNodeRejoinsAsMirror(t *testing.T) {
	primary, mirror, _, _ := startPair(t)

	if err := primary.Execute(Request{Deadline: 2 * time.Second, Do: func(tx *Tx) error {
		return tx.Write(1, []byte("epoch-1"))
	}}); err != nil {
		t.Fatal(err)
	}
	primary.Crash()
	waitEvent(t, mirror, EventTakeover, 5*time.Second)
	defer mirror.Close()

	// More commits while the old primary is down.
	for i := 10; i < 15; i++ {
		if err := mirror.Execute(Request{Deadline: 2 * time.Second, Do: func(tx *Tx) error {
			return tx.Write(store.ObjectID(i), []byte("epoch-2"))
		}}); err != nil {
			t.Fatal(err)
		}
	}

	// The failed node restarts empty and always rejoins as mirror.
	rejoined := NewNode("rejoined", fastCfg(), store.New(), logstore.NewMem())
	go rejoined.RunMirror(mirror.ReplAddr(), "127.0.0.1:0")
	defer rejoined.Close()
	waitEvent(t, mirror, EventMirrorAttached, 5*time.Second)
	if mirror.Mode() != ModePrimary {
		t.Fatalf("promoted node mode = %v", mirror.Mode())
	}

	// New commits ship to the rejoined mirror; state transfer carried
	// the history.
	if err := mirror.Execute(Request{Deadline: 2 * time.Second, Do: func(tx *Tx) error {
		return tx.Write(20, []byte("epoch-2-shipped"))
	}}); err != nil {
		t.Fatal(err)
	}
	waitConverged(t, mirror.DB(), rejoined.DB(), 3*time.Second)
	v, ok := rejoined.DB().Get(1)
	if !ok || string(v) != "epoch-1" {
		t.Fatalf("rejoined mirror missing epoch-1 data: %q %v", v, ok)
	}
}

func TestExecuteOnMirrorFails(t *testing.T) {
	primary, mirror, _, _ := startPair(t)
	defer primary.Close()
	defer mirror.Close()
	err := mirror.Execute(Request{Do: func(tx *Tx) error { return nil }})
	if !errors.Is(err, ErrNotServing) {
		t.Fatalf("err = %v", err)
	}
}

func TestTransientRecoveryFromDiskLog(t *testing.T) {
	// A single node with true log writes crashes; a fresh node recovers
	// the synced log.
	log := logstore.NewMem()
	n1 := NewNode("n1", fastCfg(), newDBWith(50), log)
	if err := n1.ServePrimary("", LogDisk); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := n1.Execute(Request{Deadline: 2 * time.Second, Do: func(tx *Tx) error {
			return tx.Write(store.ObjectID(i), []byte("durable"))
		}}); err != nil {
			t.Fatal(err)
		}
	}
	want := n1.DB().Checksum()
	n1.Crash()

	n2 := NewNode("n2", fastCfg(), newDBWith(50), logstore.NewMem())
	st, err := n2.RecoverFromLog(bytes.NewReader(log.SyncedBytes()))
	if err != nil {
		t.Fatal(err)
	}
	if st.Applied != 10 {
		t.Fatalf("recovered %d transactions, want 10", st.Applied)
	}
	if n2.DB().Checksum() != want {
		t.Fatal("recovered database differs")
	}
	// The recovered node can serve, continuing the epoch.
	if err := n2.ServePrimary("", LogDisk); err != nil {
		t.Fatal(err)
	}
	defer n2.Close()
	if err := n2.Execute(Request{Deadline: 2 * time.Second, Do: func(tx *Tx) error {
		return tx.Write(1, []byte("new epoch"))
	}}); err != nil {
		t.Fatal(err)
	}
}

func TestSingleNodeModes(t *testing.T) {
	for _, mode := range []LogMode{LogDisk, LogDiscard, LogNone} {
		t.Run(mode.String(), func(t *testing.T) {
			log := logstore.NewMem()
			n := NewNode("solo", fastCfg(), newDBWith(10), log)
			if err := n.ServePrimary("", mode); err != nil {
				t.Fatal(err)
			}
			defer n.Close()
			if err := n.Execute(Request{Deadline: 2 * time.Second, Do: func(tx *Tx) error {
				return tx.Write(1, []byte("x"))
			}}); err != nil {
				t.Fatal(err)
			}
			syncs := log.Stats().Syncs
			switch mode {
			case LogDisk:
				if syncs == 0 {
					t.Fatal("LogDisk must sync")
				}
			default:
				if syncs != 0 {
					t.Fatalf("%v synced %d times", mode, syncs)
				}
			}
		})
	}
}

func TestServePrimaryRejectsLogShip(t *testing.T) {
	n := NewNode("x", fastCfg(), store.New(), logstore.NewMem())
	if err := n.ServePrimary("", LogShip); err == nil {
		t.Fatal("LogShip accepted as initial mode")
	}
}

func TestDoubleServeRejected(t *testing.T) {
	n := NewNode("x", fastCfg(), store.New(), logstore.NewMem())
	if err := n.ServePrimary("", LogNone); err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if err := n.ServePrimary("", LogNone); err == nil {
		t.Fatal("second ServePrimary accepted")
	}
}

func TestNodeCloseIdempotent(t *testing.T) {
	n := NewNode("x", fastCfg(), store.New(), logstore.NewMem())
	n.ServePrimary("", LogNone)
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	if err := n.Execute(Request{Do: func(tx *Tx) error { return nil }}); err == nil {
		t.Fatal("execute after close succeeded")
	}
}

func TestModeAndEventStrings(t *testing.T) {
	for _, m := range []Mode{ModePrimary, ModeMirror, ModeTransient, Mode(9)} {
		if m.String() == "" {
			t.Fatal("empty mode string")
		}
	}
	for _, m := range []LogMode{LogShip, LogDisk, LogDiscard, LogNone, LogMode(9)} {
		if m.String() == "" {
			t.Fatal("empty log mode string")
		}
	}
	for _, k := range []EventKind{EventMirrorAttached, EventMirrorLost, EventTakeover, EventKind(9)} {
		if k.String() == "" {
			t.Fatal("empty event kind string")
		}
	}
}

func TestUpdateLatencyUnderShipping(t *testing.T) {
	// Sanity: commit latency in shipping mode stays near the loopback
	// round trip — the disk is off the critical path even with a slow
	// disk attached.
	slowDisk := logstore.NewDelayed(logstore.NewMem(), 10*time.Millisecond)
	primary := NewNode("primary", fastCfg(), newDBWith(10), slowDisk)
	if err := primary.ServePrimary("127.0.0.1:0", LogDisk); err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	mirror := NewNode("mirror", fastCfg(), store.New(), logstore.NewMem())
	go mirror.RunMirror(primary.ReplAddr(), "")
	defer mirror.Close()
	waitEvent(t, primary, EventMirrorAttached, 5*time.Second)

	const n = 20
	start := time.Now()
	for i := 0; i < n; i++ {
		if err := primary.Execute(Request{Deadline: time.Second, Do: func(tx *Tx) error {
			return tx.Write(1, []byte("fast"))
		}}); err != nil {
			t.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	// 20 sequential commits through a 10ms disk would take ≥200ms; via
	// the mirror they take a few ms of loopback round trips.
	if elapsed > 150*time.Millisecond {
		t.Fatalf("shipping commits took %v — disk appears to be on the critical path", elapsed)
	}
}

func TestSimultaneousFailureRecoversFromMirrorLog(t *testing.T) {
	// Both nodes die. The mirror's disk log — written asynchronously,
	// reordered into validation order — rebuilds everything that had
	// been synced; with a graceful mirror stop, that is everything.
	primary, mirror, _, mLog := startPair(t)
	for i := 0; i < 30; i++ {
		if err := primary.Execute(Request{Deadline: 2 * time.Second, Do: func(tx *Tx) error {
			return tx.Write(store.ObjectID(i), []byte("both-fail"))
		}}); err != nil {
			t.Fatal(err)
		}
	}
	want := primary.DB().Checksum()
	waitConverged(t, primary.DB(), mirror.DB(), 3*time.Second)
	primary.Crash()
	// The mirror begins takeover; stop it gracefully (final log sync).
	waitEvent(t, mirror, EventTakeover, 5*time.Second)
	mirror.Close()

	fresh := NewNode("fresh", fastCfg(), newDBWith(100), logstore.NewMem())
	st, err := fresh.RecoverFromLog(bytes.NewReader(mLog.SyncedBytes()))
	if err != nil {
		t.Fatal(err)
	}
	if st.Applied < 30 {
		t.Fatalf("replayed only %d transactions", st.Applied)
	}
	if fresh.DB().Checksum() != want {
		t.Fatal("recovered database differs from the failed primary")
	}
}

func TestNodeAccessors(t *testing.T) {
	n := NewNode("named", fastCfg(), newDBWith(1), logstore.NewMem())
	if n.Name() != "named" {
		t.Fatalf("Name = %q", n.Name())
	}
	if n.ReplAddr() != "" {
		t.Fatal("ReplAddr before listen should be empty")
	}
	n.ServePrimary("", LogNone)
	defer n.Close()
	if n.Engine() == nil {
		t.Fatal("Engine nil after serve")
	}
}

func TestMirrorEngineAccessors(t *testing.T) {
	m := NewMirrorEngine(fastCfg(), newDBWith(3), logstore.NewMem())
	if m.DB().Len() != 3 {
		t.Fatal("DB accessor")
	}
	if m.Applied() != 0 || m.LastSerial() != 0 || m.MaxCommitTS() != 0 {
		t.Fatal("fresh mirror has history")
	}
}

func TestRecoverFromLogSeedsServingEngine(t *testing.T) {
	// Recover into a node that is already serving: counters must seed.
	log := logstore.NewMem()
	n1 := NewNode("a", fastCfg(), newDBWith(10), log)
	n1.ServePrimary("", LogDisk)
	for i := 0; i < 3; i++ {
		n1.Execute(Request{Deadline: time.Second, Do: func(tx *Tx) error {
			return tx.Write(store.ObjectID(i), []byte("v"))
		}})
	}
	n1.Crash()

	n2 := NewNode("b", fastCfg(), newDBWith(10), logstore.NewMem())
	n2.ServePrimary("", LogDisk)
	defer n2.Close()
	st, err := n2.RecoverFromLog(bytes.NewReader(log.SyncedBytes()))
	if err != nil || st.Applied != 3 {
		t.Fatalf("recover: %+v %v", st, err)
	}
	if got := n2.Engine().Controller().LastSerial(); got != 3 {
		t.Fatalf("seeded serial = %d", got)
	}
}

func TestDialRetryFailsEventually(t *testing.T) {
	start := time.Now()
	_, err := dialRetry("127.0.0.1:1", 200*time.Millisecond, simtime.Wall)
	if err == nil {
		t.Fatal("dial to closed port succeeded")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("dialRetry did not respect its budget")
	}
}

func TestBuildCommitterVariants(t *testing.T) {
	mem := logstore.NewMem()
	cfg := Config{}.withDefaults()
	if c := buildCommitter(LogDiscard, mem, cfg); c == nil {
		t.Fatal("nil discard committer")
	}
	if c := buildCommitter(LogNone, mem, cfg); c == nil {
		t.Fatal("nil null committer")
	}
	if c := buildCommitter(LogDisk, mem, cfg); c == nil {
		t.Fatal("nil disk committer")
	} else if _, ok := c.(*GroupCommitter); !ok {
		t.Fatalf("LogDisk default committer is %T, want *GroupCommitter", c)
	}
	win := cfg
	win.GroupCommitWindow = time.Millisecond
	if c := buildCommitter(LogDisk, mem, win); c == nil {
		t.Fatal("nil disk committer")
	} else if _, ok := c.(*DiskCommitter); !ok {
		t.Fatalf("GroupCommitWindow>0 committer is %T, want *DiskCommitter", c)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("buildCommitter(LogShip) should panic")
		}
	}()
	buildCommitter(LogShip, mem, cfg)
}

func TestDeleteReplicatesAndRecovers(t *testing.T) {
	primary, mirror, _, mLog := startPair(t)
	defer mirror.Close()
	// Insert then delete, both replicated.
	if err := primary.Execute(Request{Deadline: 2 * time.Second, Do: func(tx *Tx) error {
		return tx.Write(200, []byte("temp"))
	}}); err != nil {
		t.Fatal(err)
	}
	if err := primary.Execute(Request{Deadline: 2 * time.Second, Do: func(tx *Tx) error {
		if _, err := tx.Read(200); err != nil {
			return err
		}
		return tx.Delete(200)
	}}); err != nil {
		t.Fatal(err)
	}
	if _, ok := primary.DB().Get(200); ok {
		t.Fatal("delete not applied locally")
	}
	waitConverged(t, primary.DB(), mirror.DB(), 3*time.Second)
	if _, ok := mirror.DB().Get(200); ok {
		t.Fatal("delete not applied on the mirror")
	}
	want := primary.DB().Checksum()
	primary.Close()
	time.Sleep(30 * time.Millisecond)

	// The mirror's log replays the delete too.
	fresh := NewNode("fresh", fastCfg(), store.New(), logstore.NewMem())
	if _, err := fresh.RecoverFromLog(bytes.NewReader(mLog.SyncedBytes())); err != nil {
		t.Fatal(err)
	}
	if _, ok := fresh.DB().Get(200); ok {
		t.Fatal("recovery resurrected a deleted object")
	}
	if fresh.DB().Checksum() != want {
		t.Fatal("recovered state differs")
	}
}
