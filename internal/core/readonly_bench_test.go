package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/logstore"
	"repro/internal/store"
)

// BenchmarkReadOnlyTxn runs whole read-only transactions through the
// engine with the snapshot fast path on and off (the ablation pair the
// read-only knob exposes). On the fast path a transaction skips OnRead
// shard registration, the validation serial ticket, and the commit
// group entirely; the fullpath rows pay all three. LogDisk keeps the
// group committer live so the skipped work is real, and a background
// writer mix keeps the certification scan honest.
func BenchmarkReadOnlyTxn(b *testing.B) {
	const nObjects = 1024
	variants := []struct {
		name string
		cfg  Config
	}{
		{"fastpath", Config{}},
		{"fullpath", Config{NoReadOnlyFastPath: true}},
	}
	for _, v := range variants {
		for _, workers := range []int{1, 2, 4} {
			b.Run(fmt.Sprintf("%s/workers=%d", v.name, workers), func(b *testing.B) {
				db := store.New()
				for i := 0; i < nObjects; i++ {
					db.Put(store.ObjectID(i), []byte{0, 0, 0, 0})
				}
				cfg := v.cfg
				cfg.Workers = workers
				cfg.MaxRestarts = 100
				mem := logstore.NewMem()
				e := NewEngine(cfg, db, NewDiskCommitter(mem, cfg.GroupCommitWindow), LogDisk)
				defer e.Stop()
				b.ReportAllocs()
				b.ResetTimer()
				per := b.N / workers
				if per == 0 {
					per = 1
				}
				var wg sync.WaitGroup
				for w := 0; w < workers; w++ {
					w := w
					wg.Add(1)
					go func() {
						defer wg.Done()
						rng := rand.New(rand.NewSource(int64(w) * 99991))
						for n := 0; n < per; n++ {
							base := rng.Intn(nObjects - 4)
							err := e.Execute(Request{Deadline: time.Second, ReadOnly: true, Do: func(tx *Tx) error {
								for i := 0; i < 4; i++ {
									if _, err := tx.ReadView(store.ObjectID(base + i)); err != nil {
										return err
									}
								}
								return nil
							}})
							if err != nil {
								panic(err)
							}
						}
					}()
				}
				wg.Wait()
			})
		}
	}
}
