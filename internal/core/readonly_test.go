package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/store"
)

// TestReadOnlyFastPathSkipsLogAndCommitter is the acceptance check for
// the snapshot fast path: a read-only transaction commits without a
// single byte reaching the log store and without a group-commit sync —
// the committer is never involved.
func TestReadOnlyFastPathSkipsLogAndCommitter(t *testing.T) {
	e, _, mem := newTestEngine(t, Config{}, LogDisk)
	// One write first, so the log is live and a silent no-op committer
	// cannot masquerade as a skipped one.
	if err := e.Execute(Request{Deadline: time.Second, Do: func(tx *Tx) error {
		return tx.Write(1, []byte("w"))
	}}); err != nil {
		t.Fatal(err)
	}
	before := mem.Stats()
	if before.BytesAppended == 0 {
		t.Fatal("sanity: the write must have reached the log")
	}
	const readers = 5
	for i := 0; i < readers; i++ {
		if err := e.Execute(Request{Deadline: time.Second, ReadOnly: true, Do: func(tx *Tx) error {
			_, err := tx.Read(1)
			return err
		}}); err != nil {
			t.Fatal(err)
		}
	}
	after := mem.Stats()
	if after != before {
		t.Fatalf("read-only commits touched the log: before %+v, after %+v", before, after)
	}
	st := e.Controller().Stats()
	if st.ROFastCommits != readers {
		t.Fatalf("ROFastCommits = %d, want %d", st.ROFastCommits, readers)
	}
	if got := e.Outcome().Snapshot().Committed; got != readers+1 {
		t.Fatalf("committed = %d, want %d", got, readers+1)
	}
}

// TestDetectedReadOnlyUsesFastPath: a request that never declares
// ReadOnly but happens to only read still rides the fast path — the
// controller detects the empty write set at validation.
func TestDetectedReadOnlyUsesFastPath(t *testing.T) {
	e, _, _ := newTestEngine(t, Config{}, LogNone)
	if err := e.Execute(Request{Deadline: time.Second, Do: func(tx *Tx) error {
		_, err := tx.Read(2)
		return err
	}}); err != nil {
		t.Fatal(err)
	}
	if st := e.Controller().Stats(); st.ROFastCommits != 1 {
		t.Fatalf("ROFastCommits = %d, want 1 (detected read-only)", st.ROFastCommits)
	}
}

// TestNoReadOnlyFastPathKnob: with the ablation knob set, declared
// read-only requests run full validation — they still commit, but no
// fast-path commits are counted.
func TestNoReadOnlyFastPathKnob(t *testing.T) {
	e, _, _ := newTestEngine(t, Config{NoReadOnlyFastPath: true}, LogNone)
	if err := e.Execute(Request{Deadline: time.Second, ReadOnly: true, Do: func(tx *Tx) error {
		_, err := tx.Read(3)
		return err
	}}); err != nil {
		t.Fatal(err)
	}
	st := e.Controller().Stats()
	if st.ROFastCommits != 0 || st.ROFallbacks != 0 {
		t.Fatalf("stats = %+v, want the fast path never attempted", st)
	}
	if st.Commits != 1 {
		t.Fatalf("Commits = %d, want 1", st.Commits)
	}
}

// TestDeclaredReadOnlyDemotesOnWrite: declaring ReadOnly is a
// performance hint, not a contract — a declared transaction that writes
// is demoted and restarted into the fully registered path, and its
// write commits durably.
func TestDeclaredReadOnlyDemotesOnWrite(t *testing.T) {
	e, db, _ := newTestEngine(t, Config{}, LogDisk)
	if err := e.Execute(Request{Deadline: time.Second, ReadOnly: true, Do: func(tx *Tx) error {
		v, err := tx.Read(4)
		if err != nil {
			return err
		}
		v[0]++
		return tx.Write(4, v)
	}}); err != nil {
		t.Fatal(err)
	}
	v, _ := db.Get(4)
	if v[0] != 5 {
		t.Fatalf("db value = %v, want the demoted write applied", v)
	}
	st := e.Controller().Stats()
	if st.ROFastCommits != 0 {
		t.Fatalf("ROFastCommits = %d, want 0 for a demoted writer", st.ROFastCommits)
	}
	if s := e.Outcome().Snapshot(); s.Committed != 1 {
		t.Fatalf("outcome = %+v", s)
	}
}

// TestReadOnlySnapshotSerializable is the serializability property
// test: concurrent transfers preserve a sum invariant, and every
// read-only snapshot — fast path or full validation — must observe it.
// A torn snapshot (one account pre-transfer, the other post-transfer)
// would break the sum.
func TestReadOnlySnapshotSerializable(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"fastpath", Config{}},
		{"fullvalidation", Config{NoReadOnlyFastPath: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			e, db, _ := newTestEngine(t, tc.cfg, LogNone)
			const (
				accounts = 8
				perAcct  = 10
				writers  = 3
				readers  = 2
				iters    = 150
			)
			for i := 0; i < accounts; i++ {
				db.Put(store.ObjectID(i), []byte{perAcct})
			}
			var wg sync.WaitGroup
			var torn sync.Once
			var tornErr error
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < iters; i++ {
						from := store.ObjectID((w + i) % accounts)
						to := store.ObjectID((w + i + 1 + i%3) % accounts)
						if from == to {
							continue
						}
						// Transfers may miss deadlines under contention;
						// only the invariant matters, not throughput.
						_ = e.Execute(Request{Deadline: time.Second, Do: func(tx *Tx) error {
							fv, err := tx.Read(from)
							if err != nil {
								return err
							}
							tv, err := tx.Read(to)
							if err != nil {
								return err
							}
							if fv[0] == 0 {
								return nil
							}
							fv[0]--
							tv[0]++
							if err := tx.Write(from, fv); err != nil {
								return err
							}
							return tx.Write(to, tv)
						}})
					}
				}(w)
			}
			for r := 0; r < readers; r++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < iters; i++ {
						var sum int
						err := e.Execute(Request{Deadline: time.Second, ReadOnly: true, Do: func(tx *Tx) error {
							sum = 0
							for id := 0; id < accounts; id++ {
								v, err := tx.Read(store.ObjectID(id))
								if err != nil {
									return err
								}
								sum += int(v[0])
							}
							return nil
						}})
						if err == nil && sum != accounts*perAcct {
							torn.Do(func() {
								tornErr = fmt.Errorf("torn read-only snapshot: sum %d, want %d", sum, accounts*perAcct)
							})
							return
						}
					}
				}()
			}
			wg.Wait()
			if tornErr != nil {
				t.Fatal(tornErr)
			}
			st := e.Controller().Stats()
			if tc.cfg.NoReadOnlyFastPath {
				if st.ROFastCommits != 0 {
					t.Fatalf("ablation ran the fast path: %+v", st)
				}
			} else if st.ROFastCommits == 0 {
				t.Fatalf("fast path never certified under read-mostly load: %+v", st)
			}
			// The read-latency histogram must have recorded every tx.Read.
			if st.ReadLatency.Count == 0 {
				t.Fatalf("read latency histogram empty: %+v", st.ReadLatency)
			}
		})
	}
}
