package core

import (
	"sync"
	"time"

	"repro/internal/transport"
	"repro/internal/wal"
)

// MirrorShipper is the Log Writer of a primary node in normal two-node
// operation: it ships each committing transaction's redo records and
// commit record to the Mirror Node and releases the transaction to its
// final commit step when the mirror's acknowledgment arrives. The
// communication between the committing transaction and the Log Writer is
// synchronous; commit time contains one message round trip instead of a
// disk write.
//
// Groups are shipped in true validation order (contiguous SerialOrder),
// giving the stream the prefix property: a transaction's records — and
// the records of everything it might depend on — are on the mirror
// before its acknowledgment is sent.
type MirrorShipper struct {
	conn       *transport.Conn
	ackTimeout time.Duration
	ping       time.Duration

	mu        sync.Mutex
	cond      *sync.Cond
	pending   map[uint64]*wal.Group // serial → group awaiting its turn
	nextSend  uint64                // next serial to ship
	acked     uint64                // highest acknowledged serial
	lastHeard time.Time             // last message from the mirror
	failed    bool
	closed    bool

	// Commit waiters share one resettable timer that broadcasts at a
	// coarse tick while any waiter exists, instead of arming a fresh
	// time.AfterFunc per wait iteration per committing transaction.
	commitWaiters int
	waitTimer     *time.Timer
	idleTimer     *time.Timer // sender-only wakeup (heartbeat interval)

	failOnce  sync.Once
	onFailure func()

	wg sync.WaitGroup

	// sender scratch, reused across batches so the steady-state shipping
	// path does not allocate per record: all records of a batch are
	// encoded back to back into encBuf and the wire messages borrow
	// sub-slices of it.
	encBuf    []byte
	spans     []recSpan
	msgBuf    []transport.Msg
	msgPtrs   []*transport.Msg
	groupsBuf []*wal.Group

	stats ShipperStats
}

// recSpan locates one encoded record inside the batch encode buffer.
type recSpan struct {
	start, end int
	serial     uint64
}

// ShipperStats counts shipping activity.
type ShipperStats struct {
	GroupsShipped  uint64
	RecordsShipped uint64
	BytesShipped   uint64
	Acks           uint64
}

// NewMirrorShipper returns a shipper over an established mirror
// connection. firstSerial is the validation order of the first group
// this mirror session will carry (lastSerial at attach time + 1).
// onFailure runs exactly once when the mirror connection breaks; the
// node uses it to switch to transient (disk) mode.
func NewMirrorShipper(conn *transport.Conn, firstSerial uint64, ackTimeout, ping time.Duration, onFailure func()) *MirrorShipper {
	if firstSerial == 0 {
		firstSerial = 1
	}
	s := &MirrorShipper{
		conn:       conn,
		ackTimeout: ackTimeout,
		ping:       ping,
		pending:    make(map[uint64]*wal.Group),
		nextSend:   firstSerial,
		acked:      firstSerial - 1,
		onFailure:  onFailure,
	}
	s.cond = sync.NewCond(&s.mu)
	s.lastHeard = time.Now()
	// Both timers are created stopped; their callbacks only broadcast.
	// waitTimer re-arms itself while commit waiters remain, so however
	// many transactions are blocked in Commit there is exactly one timer.
	s.waitTimer = time.AfterFunc(time.Hour, func() {
		s.mu.Lock()
		if s.commitWaiters > 0 {
			s.waitTimer.Reset(waitTick)
		}
		s.cond.Broadcast()
		s.mu.Unlock()
	})
	s.waitTimer.Stop()
	s.idleTimer = time.AfterFunc(time.Hour, func() {
		s.mu.Lock()
		s.cond.Broadcast()
		s.mu.Unlock()
	})
	s.idleTimer.Stop()
	return s
}

// waitTick is the coarse wakeup period commit waiters use to re-check
// their ack-timeout deadline.
const waitTick = 50 * time.Millisecond

// Start launches the sender and acknowledgment reader. It is separate
// from construction so a rejoining mirror can receive its snapshot on
// the same connection first.
func (s *MirrorShipper) Start() {
	s.wg.Add(2)
	go s.sender()
	go s.ackReader()
}

// Commit implements Committer: enqueue the group and wait until the
// mirror has acknowledged its commit record.
func (s *MirrorShipper) Commit(g *wal.Group) error {
	serial := g.SerialOrder()
	s.mu.Lock()
	if s.failed || s.closed {
		s.mu.Unlock()
		return ErrMirrorDown
	}
	s.pending[serial] = g
	s.cond.Broadcast()

	deadline := time.Now().Add(s.ackTimeout)
	for s.acked < serial && !s.failed && !s.closed {
		if time.Now().After(deadline) {
			s.mu.Unlock()
			s.fail()
			return ErrMirrorDown
		}
		s.timedWait()
	}
	ok := s.acked >= serial
	s.mu.Unlock()
	if !ok {
		return ErrMirrorDown
	}
	return nil
}

// timedWait waits on the condition with a coarse timer wakeup so ack
// timeouts are honored without a timer per commit — or even per wait:
// the first waiter arms the shared timer, its callback re-arms itself
// while waiters remain, and the last waiter out stops it. The callback
// only broadcasts; a late firing is a harmless spurious wakeup. Must
// hold s.mu.
func (s *MirrorShipper) timedWait() {
	if s.commitWaiters == 0 {
		s.waitTimer.Reset(waitTick)
	}
	s.commitWaiters++
	s.cond.Wait()
	s.commitWaiters--
	if s.commitWaiters == 0 {
		s.waitTimer.Stop()
	}
}

// sender ships pending groups in contiguous serial order, emitting
// heartbeats while idle.
func (s *MirrorShipper) sender() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for s.pending[s.nextSend] == nil && !s.failed && !s.closed {
			// A mirror that is connected but silent is as dead as a
			// closed one: if nothing (ack, pong) has arrived within the
			// ack timeout despite our pings, declare it down.
			if s.ackTimeout > 0 && time.Since(s.lastHeard) > s.ackTimeout {
				s.mu.Unlock()
				s.fail()
				return
			}
			s.idleWait()
			if s.pending[s.nextSend] == nil && !s.failed && !s.closed {
				// Idle: heartbeat so the mirror's watchdog stays calm.
				s.mu.Unlock()
				if err := s.conn.SendControl(transport.MsgPing, 0); err != nil {
					s.fail()
					return
				}
				s.mu.Lock()
			}
		}
		if s.failed || s.closed {
			s.mu.Unlock()
			return
		}
		// Drain every contiguous pending group into one wire batch:
		// under bursty commit load several transactions validate before
		// the previous flush completes, and one writev-style batch
		// amortizes the syscall per group while keeping strict
		// validation order.
		const maxBatchGroups = 64
		groups := s.groupsBuf[:0]
		for len(groups) < maxBatchGroups {
			g := s.pending[s.nextSend]
			if g == nil {
				break
			}
			delete(s.pending, s.nextSend)
			s.nextSend++
			groups = append(groups, g)
		}
		s.mu.Unlock()

		// Encode every record of the batch back to back into the scratch
		// buffer, then hand the transport sub-slices of it: one grown
		// buffer instead of one allocation per record. Offsets are
		// recorded first because appending may relocate the buffer.
		enc := s.encBuf[:0]
		spans := s.spans[:0]
		for _, g := range groups {
			for _, rec := range g.Writes {
				start := len(enc)
				enc = wal.AppendEncoded(enc, rec)
				spans = append(spans, recSpan{start: start, end: len(enc), serial: rec.SerialOrder})
			}
			start := len(enc)
			enc = wal.AppendEncoded(enc, g.Commit)
			spans = append(spans, recSpan{start: start, end: len(enc), serial: g.Commit.SerialOrder})
		}
		mbuf := s.msgBuf[:0]
		for _, sp := range spans {
			mbuf = append(mbuf, transport.Msg{
				Type:    transport.MsgRecord,
				Serial:  sp.serial,
				Payload: enc[sp.start:sp.end],
			})
		}
		msgs := s.msgPtrs[:0]
		for i := range mbuf {
			msgs = append(msgs, &mbuf[i])
		}
		err := s.conn.SendBatch(msgs)
		// SendBatch copies payloads into the connection's write buffer
		// before returning, so the scratch storage can be reused for the
		// next batch.
		nGroups, nRecords, nBytes := len(groups), len(msgs), len(enc)
		for i := range groups {
			groups[i] = nil // do not retain applied groups
		}
		s.encBuf, s.spans, s.msgBuf, s.msgPtrs, s.groupsBuf = enc, spans, mbuf, msgs, groups
		if err != nil {
			s.fail()
			return
		}
		s.mu.Lock()
		s.stats.GroupsShipped += uint64(nGroups)
		s.stats.RecordsShipped += uint64(nRecords)
		s.stats.BytesShipped += uint64(nBytes)
		s.mu.Unlock()
	}
}

// idleWait waits for work with a heartbeat-interval wakeup on the
// sender's dedicated resettable timer (the sender is a single goroutine,
// so a plain Reset before each wait suffices). Must hold s.mu; same
// broadcast-only discipline as timedWait.
func (s *MirrorShipper) idleWait() {
	interval := s.ping
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	s.idleTimer.Reset(interval)
	s.cond.Wait()
	s.idleTimer.Stop()
}

// ackReader consumes acknowledgments (and pongs) from the mirror. Acks
// are drawn from the transport frame pool and released immediately:
// nothing on this per-commit path survives the loop iteration.
func (s *MirrorShipper) ackReader() {
	defer s.wg.Done()
	for {
		m, err := s.conn.RecvPooled()
		if err != nil {
			s.fail()
			return
		}
		typ, serial := m.Type, m.Serial
		transport.ReleaseMsg(m)
		s.mu.Lock()
		s.lastHeard = time.Now()
		s.mu.Unlock()
		switch typ {
		case transport.MsgAck:
			s.mu.Lock()
			if serial > s.acked {
				s.acked = serial
			}
			s.stats.Acks++
			s.cond.Broadcast()
			s.mu.Unlock()
		case transport.MsgPong, transport.MsgPing:
			// watchdog traffic; liveness already noted
		default:
			// Unexpected message from the mirror: treat as protocol
			// failure.
			s.fail()
			return
		}
	}
}

// fail marks the mirror dead, runs the failure callback once, and only
// then wakes the waiters. The ordering is a guarantee, not a nicety: by
// the time a pending Commit returns ErrMirrorDown the node has already
// switched to transient mode, so the caller can immediately retry on
// the disk path. (The callback must therefore not block on a commit
// waiter; mirrorLost only flips node state.)
func (s *MirrorShipper) fail() {
	s.mu.Lock()
	already := s.failed || s.closed
	s.failed = true
	s.mu.Unlock()
	if !already {
		s.failOnce.Do(func() {
			if s.onFailure != nil {
				s.onFailure()
			}
		})
	}
	s.mu.Lock()
	s.cond.Broadcast()
	s.mu.Unlock()
	s.conn.Close()
}

// Acked reports the highest acknowledged serial order.
func (s *MirrorShipper) Acked() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.acked
}

// Stats returns shipping accounting.
func (s *MirrorShipper) Stats() ShipperStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Close implements Committer. Pending commits fail with ErrMirrorDown.
func (s *MirrorShipper) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	s.conn.Close()
	s.wg.Wait()
	return nil
}
