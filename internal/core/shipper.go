package core

import (
	"sync"
	"time"

	"repro/internal/transport"
	"repro/internal/wal"
)

// MirrorShipper is the Log Writer of a primary node in normal two-node
// operation: it ships each committing transaction's redo records and
// commit record to the Mirror Node and releases the transaction to its
// final commit step when the mirror's acknowledgment arrives. The
// communication between the committing transaction and the Log Writer is
// synchronous; commit time contains one message round trip instead of a
// disk write.
//
// Groups are shipped in true validation order (contiguous SerialOrder),
// giving the stream the prefix property: a transaction's records — and
// the records of everything it might depend on — are on the mirror
// before its acknowledgment is sent.
type MirrorShipper struct {
	conn       *transport.Conn
	ackTimeout time.Duration
	ping       time.Duration

	mu        sync.Mutex
	cond      *sync.Cond
	pending   map[uint64]*wal.Group // serial → group awaiting its turn
	nextSend  uint64                // next serial to ship
	acked     uint64                // highest acknowledged serial
	lastHeard time.Time             // last message from the mirror
	failed    bool
	closed    bool

	failOnce  sync.Once
	onFailure func()

	wg sync.WaitGroup

	stats ShipperStats
}

// ShipperStats counts shipping activity.
type ShipperStats struct {
	GroupsShipped  uint64
	RecordsShipped uint64
	BytesShipped   uint64
	Acks           uint64
}

// NewMirrorShipper returns a shipper over an established mirror
// connection. firstSerial is the validation order of the first group
// this mirror session will carry (lastSerial at attach time + 1).
// onFailure runs exactly once when the mirror connection breaks; the
// node uses it to switch to transient (disk) mode.
func NewMirrorShipper(conn *transport.Conn, firstSerial uint64, ackTimeout, ping time.Duration, onFailure func()) *MirrorShipper {
	if firstSerial == 0 {
		firstSerial = 1
	}
	s := &MirrorShipper{
		conn:       conn,
		ackTimeout: ackTimeout,
		ping:       ping,
		pending:    make(map[uint64]*wal.Group),
		nextSend:   firstSerial,
		acked:      firstSerial - 1,
		onFailure:  onFailure,
	}
	s.cond = sync.NewCond(&s.mu)
	s.lastHeard = time.Now()
	return s
}

// Start launches the sender and acknowledgment reader. It is separate
// from construction so a rejoining mirror can receive its snapshot on
// the same connection first.
func (s *MirrorShipper) Start() {
	s.wg.Add(2)
	go s.sender()
	go s.ackReader()
}

// Commit implements Committer: enqueue the group and wait until the
// mirror has acknowledged its commit record.
func (s *MirrorShipper) Commit(g *wal.Group) error {
	serial := g.SerialOrder()
	s.mu.Lock()
	if s.failed || s.closed {
		s.mu.Unlock()
		return ErrMirrorDown
	}
	s.pending[serial] = g
	s.cond.Broadcast()

	deadline := time.Now().Add(s.ackTimeout)
	for s.acked < serial && !s.failed && !s.closed {
		if time.Now().After(deadline) {
			s.mu.Unlock()
			s.fail()
			return ErrMirrorDown
		}
		s.timedWait()
	}
	ok := s.acked >= serial
	s.mu.Unlock()
	if !ok {
		return ErrMirrorDown
	}
	return nil
}

// timedWait waits on the condition with a coarse timer wakeup so ack
// timeouts are honored without a timer per commit. Must hold s.mu. The
// timer callback only broadcasts; if it fires after a regular wakeup the
// extra broadcast is a harmless spurious wakeup. (Waiting for the
// callback to finish here would deadlock: we hold the mutex the callback
// needs.)
func (s *MirrorShipper) timedWait() {
	t := time.AfterFunc(50*time.Millisecond, func() {
		s.mu.Lock()
		s.cond.Broadcast()
		s.mu.Unlock()
	})
	s.cond.Wait()
	t.Stop()
}

// sender ships pending groups in contiguous serial order, emitting
// heartbeats while idle.
func (s *MirrorShipper) sender() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for s.pending[s.nextSend] == nil && !s.failed && !s.closed {
			// A mirror that is connected but silent is as dead as a
			// closed one: if nothing (ack, pong) has arrived within the
			// ack timeout despite our pings, declare it down.
			if s.ackTimeout > 0 && time.Since(s.lastHeard) > s.ackTimeout {
				s.mu.Unlock()
				s.fail()
				return
			}
			s.idleWait()
			if s.pending[s.nextSend] == nil && !s.failed && !s.closed {
				// Idle: heartbeat so the mirror's watchdog stays calm.
				s.mu.Unlock()
				if err := s.conn.Send(&transport.Msg{Type: transport.MsgPing}); err != nil {
					s.fail()
					return
				}
				s.mu.Lock()
			}
		}
		if s.failed || s.closed {
			s.mu.Unlock()
			return
		}
		// Drain every contiguous pending group into one wire batch:
		// under bursty commit load several transactions validate before
		// the previous flush completes, and one writev-style batch
		// amortizes the syscall per group while keeping strict
		// validation order.
		const maxBatchGroups = 64
		groups := make([]*wal.Group, 0, 4)
		for len(groups) < maxBatchGroups {
			g := s.pending[s.nextSend]
			if g == nil {
				break
			}
			delete(s.pending, s.nextSend)
			s.nextSend++
			groups = append(groups, g)
		}
		s.mu.Unlock()

		msgs := make([]*transport.Msg, 0, 2*len(groups))
		var bytes uint64
		for _, g := range groups {
			for _, rec := range g.Flatten() {
				payload := wal.AppendEncoded(nil, rec)
				bytes += uint64(len(payload))
				msgs = append(msgs, &transport.Msg{
					Type:    transport.MsgRecord,
					Serial:  rec.SerialOrder,
					Payload: payload,
				})
			}
		}
		if err := s.conn.SendBatch(msgs); err != nil {
			s.fail()
			return
		}
		s.mu.Lock()
		s.stats.GroupsShipped += uint64(len(groups))
		s.stats.RecordsShipped += uint64(len(msgs))
		s.stats.BytesShipped += bytes
		s.mu.Unlock()
	}
}

// idleWait waits for work with a heartbeat-interval wakeup. Must hold
// s.mu; same broadcast-only timer discipline as timedWait.
func (s *MirrorShipper) idleWait() {
	interval := s.ping
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	t := time.AfterFunc(interval, func() {
		s.mu.Lock()
		s.cond.Broadcast()
		s.mu.Unlock()
	})
	s.cond.Wait()
	t.Stop()
}

// ackReader consumes acknowledgments (and pongs) from the mirror.
func (s *MirrorShipper) ackReader() {
	defer s.wg.Done()
	for {
		m, err := s.conn.Recv()
		if err != nil {
			s.fail()
			return
		}
		s.mu.Lock()
		s.lastHeard = time.Now()
		s.mu.Unlock()
		switch m.Type {
		case transport.MsgAck:
			s.mu.Lock()
			if m.Serial > s.acked {
				s.acked = m.Serial
			}
			s.stats.Acks++
			s.cond.Broadcast()
			s.mu.Unlock()
		case transport.MsgPong, transport.MsgPing:
			// watchdog traffic; liveness already noted
		default:
			// Unexpected message from the mirror: treat as protocol
			// failure.
			s.fail()
			return
		}
	}
}

// fail marks the mirror dead, wakes every waiter, and runs the failure
// callback once.
func (s *MirrorShipper) fail() {
	s.mu.Lock()
	already := s.failed || s.closed
	s.failed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	s.conn.Close()
	if !already {
		s.failOnce.Do(func() {
			if s.onFailure != nil {
				s.onFailure()
			}
		})
	}
}

// Acked reports the highest acknowledged serial order.
func (s *MirrorShipper) Acked() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.acked
}

// Stats returns shipping accounting.
func (s *MirrorShipper) Stats() ShipperStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Close implements Committer. Pending commits fail with ErrMirrorDown.
func (s *MirrorShipper) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	s.conn.Close()
	s.wg.Wait()
	return nil
}
