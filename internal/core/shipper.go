package core

import (
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/simtime"
	"repro/internal/transport"
	"repro/internal/wal"
)

// MirrorShipper is the Log Writer of a primary node in normal two-node
// operation: it ships each committing transaction's redo records and
// commit record to the Mirror Node and releases the transaction to its
// final commit step when the mirror's acknowledgment arrives. The
// communication between the committing transaction and the Log Writer is
// synchronous; commit time contains one message round trip instead of a
// disk write.
//
// Groups are shipped in true validation order (contiguous SerialOrder),
// giving the stream the prefix property: a transaction's records — and
// the records of everything it might depend on — are on the mirror
// before its acknowledgment is sent.
//
// Commits are group-committed into cohorts: every contiguous pending
// group is drained into one wire batch (one encode pass, one flush), the
// mirror's cumulative ack releases the whole cohort at once, and the
// waiters park on the shared condition latch rather than per-transaction
// timers. The window is adaptive — an idle commit ships immediately;
// under contention the sender may hold a partially drained cohort open
// for up to MaxHold waiting for a serial gap to fill, trading a bounded
// sliver of latency for fewer, fuller batches.
//
// All timing (ack deadlines, heartbeat pacing, the hold window) goes
// through a simtime.Clock, so simulated runs are deterministic and tests
// can drive timeouts without real sleeps.
type MirrorShipper struct {
	conn       *transport.Conn
	ackTimeout time.Duration
	ping       time.Duration
	maxCohort  int
	maxHold    time.Duration
	clock      simtime.Clock

	mu        sync.Mutex
	cond      *sync.Cond
	pending   map[uint64]*wal.Group   // serial → group awaiting its turn
	pendingAt map[uint64]simtime.Time // serial → enqueue time (queue-delay metric)
	nextSend  uint64                  // next serial to ship
	acked     uint64                  // highest acknowledged serial
	lastHeard simtime.Time            // last message from the mirror
	failed    bool
	closed    bool

	// Commit waiters share one self-re-arming clock tick that broadcasts
	// at a coarse period while any waiter exists, instead of arming a
	// fresh timer per wait iteration per committing transaction. waitGen
	// invalidates stale tick chains when the waiter count touches zero.
	commitWaiters int
	waitGen       uint64
	waitCancel    func() bool

	failOnce  sync.Once
	onFailure func()

	wg sync.WaitGroup

	// sender scratch, reused across batches so the steady-state shipping
	// path does not allocate per record: all records of a batch are
	// encoded back to back into encBuf and the wire messages borrow
	// sub-slices of it.
	encBuf    []byte
	spans     []recSpan
	msgBuf    []transport.Msg
	msgPtrs   []*transport.Msg
	groupsBuf []*wal.Group

	stats       ShipperStats
	cohortSizes metrics.IntDist
	queueDelay  metrics.Histogram // enqueue → handed to the wire
}

// recSpan locates one encoded record inside the batch encode buffer.
type recSpan struct {
	start, end int
	serial     uint64
}

// ShipperStats counts shipping activity.
type ShipperStats struct {
	GroupsShipped  uint64
	RecordsShipped uint64
	BytesShipped   uint64
	Acks           uint64
	// Cohorts is the number of wire batches shipped; MaxCohort the most
	// groups any one of them carried; HoldWaits how many times the sender
	// held a partial cohort open for a serial gap.
	Cohorts   uint64
	MaxCohort uint64
	HoldWaits uint64
}

// ShipperOptions parameterizes a MirrorShipper.
type ShipperOptions struct {
	// AckTimeout bounds how long a commit waits for the mirror's
	// acknowledgment (and how long the sender tolerates a silent mirror)
	// before declaring it down. Zero or negative disables the timeout.
	AckTimeout time.Duration
	// Heartbeat is the idle ping interval (default 100 ms).
	Heartbeat time.Duration
	// MaxCohort caps how many groups one wire batch may carry
	// (default DefaultMaxCohort).
	MaxCohort int
	// MaxHold bounds how long the sender holds a partially drained cohort
	// open waiting for a serial gap to fill. Zero or negative ships the
	// moment the contiguous run is drained.
	MaxHold time.Duration
	// Clock supplies deadlines and timers; nil uses the wall clock.
	Clock simtime.Clock
	// OnFailure runs exactly once when the mirror connection breaks; the
	// node uses it to switch to transient (disk) mode.
	OnFailure func()
}

// NewMirrorShipper returns a shipper over an established mirror
// connection. firstSerial is the validation order of the first group
// this mirror session will carry (lastSerial at attach time + 1).
func NewMirrorShipper(conn *transport.Conn, firstSerial uint64, opts ShipperOptions) *MirrorShipper {
	if firstSerial == 0 {
		firstSerial = 1
	}
	if opts.Heartbeat <= 0 {
		opts.Heartbeat = 100 * time.Millisecond
	}
	if opts.MaxCohort <= 0 {
		opts.MaxCohort = DefaultMaxCohort
	}
	if opts.Clock == nil {
		opts.Clock = simtime.NewWallClock()
	}
	s := &MirrorShipper{
		conn:       conn,
		ackTimeout: opts.AckTimeout,
		ping:       opts.Heartbeat,
		maxCohort:  opts.MaxCohort,
		maxHold:    opts.MaxHold,
		clock:      opts.Clock,
		pending:    make(map[uint64]*wal.Group),
		pendingAt:  make(map[uint64]simtime.Time),
		nextSend:   firstSerial,
		acked:      firstSerial - 1,
		onFailure:  opts.OnFailure,
	}
	s.cond = sync.NewCond(&s.mu)
	s.lastHeard = s.clock.Now()
	return s
}

// waitTick is the coarse wakeup period commit waiters use to re-check
// their ack-timeout deadline.
const waitTick = 50 * time.Millisecond

// Start launches the sender and acknowledgment reader. It is separate
// from construction so a rejoining mirror can receive its snapshot on
// the same connection first.
func (s *MirrorShipper) Start() {
	s.wg.Add(2)
	go s.sender()
	go s.ackReader()
}

// Commit implements Committer: enqueue the group and wait until the
// mirror has acknowledged its commit record. Concurrent committers form
// a cohort — the sender drains them into one wire batch and the mirror's
// cumulative ack releases them together.
func (s *MirrorShipper) Commit(g *wal.Group) error {
	serial := g.SerialOrder()
	s.mu.Lock()
	if s.failed || s.closed {
		s.mu.Unlock()
		return ErrMirrorDown
	}
	now := s.clock.Now()
	s.pending[serial] = g
	s.pendingAt[serial] = now
	s.cond.Broadcast()

	deadline := now.Add(s.ackTimeout)
	for s.acked < serial && !s.failed && !s.closed {
		if s.ackTimeout > 0 && s.clock.Now() > deadline {
			s.mu.Unlock()
			s.fail()
			return ErrMirrorDown
		}
		s.timedWait()
	}
	ok := s.acked >= serial
	s.mu.Unlock()
	if !ok {
		return ErrMirrorDown
	}
	return nil
}

// armWaitTick schedules the shared commit-waiter tick on the clock. The
// callback re-arms itself while waiters remain; a generation bump
// invalidates the chain so a stale callback never double-arms. Must hold
// s.mu.
func (s *MirrorShipper) armWaitTick() {
	gen := s.waitGen
	s.waitCancel = s.clock.AfterFunc(waitTick, func() {
		s.mu.Lock()
		if gen == s.waitGen {
			if s.commitWaiters > 0 && !s.closed {
				s.armWaitTick()
			} else {
				s.waitCancel = nil
			}
		}
		s.cond.Broadcast()
		s.mu.Unlock()
	})
}

// timedWait waits on the condition with a coarse timer wakeup so ack
// timeouts are honored without a timer per commit — or even per wait:
// the first waiter arms the shared tick, the tick re-arms itself while
// waiters remain, and the last waiter out cancels it. The callback only
// broadcasts; a late firing is a harmless spurious wakeup. Must hold
// s.mu.
func (s *MirrorShipper) timedWait() {
	if s.commitWaiters == 0 {
		s.waitGen++
		s.armWaitTick()
	}
	s.commitWaiters++
	s.cond.Wait()
	s.commitWaiters--
	if s.commitWaiters == 0 {
		s.waitGen++ // invalidate the chain even if the tick already fired
		if s.waitCancel != nil {
			s.waitCancel()
			s.waitCancel = nil
		}
	}
}

// drainLocked moves contiguous pending groups (up to the cohort cap)
// into groups, recording each one's queue delay. Must hold s.mu.
func (s *MirrorShipper) drainLocked(groups []*wal.Group) []*wal.Group {
	now := s.clock.Now()
	for len(groups) < s.maxCohort {
		g := s.pending[s.nextSend]
		if g == nil {
			break
		}
		delete(s.pending, s.nextSend)
		if at, ok := s.pendingAt[s.nextSend]; ok {
			s.queueDelay.Observe(now.Sub(at))
			delete(s.pendingAt, s.nextSend)
		}
		s.nextSend++
		groups = append(groups, g)
	}
	return groups
}

// gapWait holds a partially drained cohort open for up to maxHold,
// waiting for the serial gap at nextSend to fill. This is the adaptive
// half of the window: it only runs when a transaction has validated but
// not yet enqueued (pending is non-empty with a gap in front), i.e. when
// contention is observable — an idle commit never waits here. Must hold
// s.mu.
func (s *MirrorShipper) gapWait() {
	s.stats.HoldWaits++
	expired := false
	cancel := s.clock.AfterFunc(s.maxHold, func() {
		s.mu.Lock()
		expired = true
		s.cond.Broadcast()
		s.mu.Unlock()
	})
	for !expired && s.pending[s.nextSend] == nil && !s.failed && !s.closed {
		s.cond.Wait()
	}
	cancel()
}

// sender ships pending cohorts in contiguous serial order, emitting
// heartbeats while idle.
func (s *MirrorShipper) sender() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for s.pending[s.nextSend] == nil && !s.failed && !s.closed {
			// A mirror that is connected but silent is as dead as a
			// closed one: if nothing (ack, pong) has arrived within the
			// ack timeout despite our pings, declare it down.
			if s.ackTimeout > 0 && s.clock.Now().Sub(s.lastHeard) > s.ackTimeout {
				s.mu.Unlock()
				s.fail()
				return
			}
			s.idleWait()
			if s.pending[s.nextSend] == nil && !s.failed && !s.closed {
				// Idle: heartbeat so the mirror's watchdog stays calm.
				s.mu.Unlock()
				if err := s.conn.SendControl(transport.MsgPing, 0); err != nil {
					s.fail()
					return
				}
				s.mu.Lock()
			}
		}
		if s.failed || s.closed {
			s.mu.Unlock()
			return
		}
		// Drain every contiguous pending group into one wire batch:
		// under bursty commit load several transactions validate before
		// the previous flush completes, and one writev-style batch
		// amortizes the syscall per group while keeping strict
		// validation order. If the contiguous run ends at a serial gap
		// with later groups already queued behind it, hold the cohort
		// open briefly — the gap-filler is mid-enqueue and catching it
		// turns two half batches into one.
		groups := s.drainLocked(s.groupsBuf[:0])
		if s.maxHold > 0 && len(groups) < s.maxCohort && len(s.pending) > 0 {
			s.gapWait()
			groups = s.drainLocked(groups)
		}
		s.mu.Unlock()

		// Encode every record of the batch back to back into the scratch
		// buffer, then hand the transport sub-slices of it: one grown
		// buffer instead of one allocation per record. Offsets are
		// recorded first because appending may relocate the buffer.
		enc := s.encBuf[:0]
		spans := s.spans[:0]
		for _, g := range groups {
			for _, rec := range g.Writes {
				start := len(enc)
				enc = wal.AppendEncoded(enc, rec)
				spans = append(spans, recSpan{start: start, end: len(enc), serial: rec.SerialOrder})
			}
			start := len(enc)
			enc = wal.AppendEncoded(enc, g.Commit)
			spans = append(spans, recSpan{start: start, end: len(enc), serial: g.Commit.SerialOrder})
		}
		mbuf := s.msgBuf[:0]
		for _, sp := range spans {
			mbuf = append(mbuf, transport.Msg{
				Type:    transport.MsgRecord,
				Serial:  sp.serial,
				Payload: enc[sp.start:sp.end],
			})
		}
		msgs := s.msgPtrs[:0]
		for i := range mbuf {
			msgs = append(msgs, &mbuf[i])
		}
		err := s.conn.SendBatch(msgs)
		// SendBatch copies payloads into the connection's write buffer
		// before returning, so the scratch storage can be reused for the
		// next batch.
		nGroups, nRecords, nBytes := len(groups), len(msgs), len(enc)
		for i := range groups {
			groups[i] = nil // do not retain applied groups
		}
		s.encBuf, s.spans, s.msgBuf, s.msgPtrs, s.groupsBuf = enc, spans, mbuf, msgs, groups
		if err != nil {
			s.fail()
			return
		}
		s.cohortSizes.Observe(nGroups)
		s.mu.Lock()
		s.stats.GroupsShipped += uint64(nGroups)
		s.stats.RecordsShipped += uint64(nRecords)
		s.stats.BytesShipped += uint64(nBytes)
		s.stats.Cohorts++
		if uint64(nGroups) > s.stats.MaxCohort {
			s.stats.MaxCohort = uint64(nGroups)
		}
		s.mu.Unlock()
	}
}

// idleWait waits for work with a heartbeat-interval wakeup (one-shot,
// canceled on the way out; the sender is a single goroutine). Must hold
// s.mu; same broadcast-only discipline as timedWait.
func (s *MirrorShipper) idleWait() {
	cancel := s.clock.AfterFunc(s.ping, func() {
		s.mu.Lock()
		s.cond.Broadcast()
		s.mu.Unlock()
	})
	s.cond.Wait()
	cancel()
}

// ackReader consumes acknowledgments (and pongs) from the mirror. Acks
// are drawn from the transport frame pool and released immediately:
// nothing on this per-commit path survives the loop iteration.
func (s *MirrorShipper) ackReader() {
	defer s.wg.Done()
	for {
		m, err := s.conn.RecvPooled()
		if err != nil {
			s.fail()
			return
		}
		typ, serial := m.Type, m.Serial
		transport.ReleaseMsg(m)
		s.mu.Lock()
		s.lastHeard = s.clock.Now()
		s.mu.Unlock()
		switch typ {
		case transport.MsgAck:
			s.mu.Lock()
			if serial > s.acked {
				s.acked = serial
			}
			s.stats.Acks++
			s.cond.Broadcast()
			s.mu.Unlock()
		case transport.MsgPong, transport.MsgPing:
			// watchdog traffic; liveness already noted
		default:
			// Unexpected message from the mirror: treat as protocol
			// failure.
			s.fail()
			return
		}
	}
}

// fail marks the mirror dead, runs the failure callback once, and only
// then wakes the waiters. The ordering is a guarantee, not a nicety: by
// the time a pending Commit returns ErrMirrorDown the node has already
// switched to transient mode, so the caller can immediately retry on
// the disk path. (The callback must therefore not block on a commit
// waiter; mirrorLost only flips node state.)
func (s *MirrorShipper) fail() {
	s.mu.Lock()
	already := s.failed || s.closed
	s.failed = true
	s.mu.Unlock()
	if !already {
		s.failOnce.Do(func() {
			if s.onFailure != nil {
				s.onFailure()
			}
		})
	}
	s.mu.Lock()
	s.cond.Broadcast()
	s.mu.Unlock()
	s.conn.Close()
}

// Acked reports the highest acknowledged serial order.
func (s *MirrorShipper) Acked() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.acked
}

// Stats returns shipping accounting.
func (s *MirrorShipper) Stats() ShipperStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// CohortSizes exposes the wire-batch size distribution.
func (s *MirrorShipper) CohortSizes() *metrics.IntDist { return &s.cohortSizes }

// QueueDelay exposes the enqueue→wire latency histogram: how long a
// committed group waited for its cohort to ship.
func (s *MirrorShipper) QueueDelay() *metrics.Histogram { return &s.queueDelay }

// Close implements Committer. Pending commits fail with ErrMirrorDown.
func (s *MirrorShipper) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	s.conn.Close()
	s.wg.Wait()
	return nil
}
