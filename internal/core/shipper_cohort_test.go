package core

import (
	"errors"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/simtime"
	"repro/internal/store"
	"repro/internal/transport"
	"repro/internal/txn"
	"repro/internal/wal"
)

// manualClock is a hand-advanced Clock safe for concurrent use: Advance
// collects due callbacks under its lock and runs them after releasing it,
// so callbacks may freely take other locks (the shipper's mutex).
type manualClock struct {
	mu     sync.Mutex
	now    simtime.Time
	nextID int
	timers map[int]*manualTimer
}

type manualTimer struct {
	at simtime.Time
	fn func()
}

func newManualClock() *manualClock {
	return &manualClock{timers: make(map[int]*manualTimer)}
}

func (c *manualClock) Now() simtime.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *manualClock) AfterFunc(d simtime.Duration, fn func()) func() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	id := c.nextID
	c.nextID++
	c.timers[id] = &manualTimer{at: c.now.Add(d), fn: fn}
	return func() bool {
		c.mu.Lock()
		defer c.mu.Unlock()
		_, ok := c.timers[id]
		delete(c.timers, id)
		return ok
	}
}

// Advance moves virtual time forward and fires every timer that came due.
func (c *manualClock) Advance(d simtime.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	var due []func()
	for id, t := range c.timers {
		if t.at <= c.now {
			due = append(due, t.fn)
			delete(c.timers, id)
		}
	}
	c.mu.Unlock()
	for _, fn := range due {
		fn()
	}
}

// TestShipperClockDrivenAckTimeout proves the satellite: all shipper
// timing flows through the injected Clock. The ack timeout here is one
// hour of virtual time against a mirror that never answers — the commit
// must fail with ErrMirrorDown after Advance, in milliseconds of real
// time.
func TestShipperClockDrivenAckTimeout(t *testing.T) {
	a, b := transport.Pipe()
	defer b.Close()
	go func() { // swallow the shipped records, never ack
		for {
			if _, err := b.Recv(); err != nil {
				return
			}
		}
	}()
	mc := newManualClock()
	var failed atomic.Bool
	s := NewMirrorShipper(a, 1, ShipperOptions{
		AckTimeout: time.Hour,
		Heartbeat:  time.Minute,
		Clock:      mc,
		OnFailure:  func() { failed.Store(true) },
	})
	s.Start()
	defer s.Close()

	done := make(chan error, 1)
	go func() { done <- s.Commit(shipGroup(1)) }()

	// Walk virtual time past the timeout; each step wakes whichever
	// waiter armed a timer. Real-time budget is only a safety net.
	deadline := time.Now().Add(10 * time.Second)
	for {
		select {
		case err := <-done:
			if !errors.Is(err, ErrMirrorDown) {
				t.Fatalf("err = %v, want ErrMirrorDown", err)
			}
			if !failed.Load() {
				t.Fatal("failure callback not invoked")
			}
			return
		default:
		}
		if time.Now().After(deadline) {
			t.Fatal("virtual-time advance never expired the ack timeout")
		}
		mc.Advance(10 * time.Minute)
		time.Sleep(time.Millisecond)
	}
}

// TestShipperGapHoldFormsOneCohort drives the adaptive window: serial 1
// ships ahead of a gap while 3 is already queued, so the sender holds the
// partial cohort open until 2 arrives — all three groups leave in ONE
// wire batch instead of two.
func TestShipperGapHoldFormsOneCohort(t *testing.T) {
	a, b := transport.Pipe()
	fm := &fakeMirror{conn: b}
	go fm.run()
	var failed atomic.Bool
	s := NewMirrorShipper(a, 1, ShipperOptions{
		AckTimeout: 5 * time.Second,
		Heartbeat:  time.Second,
		MaxHold:    2 * time.Second,
		OnFailure:  func() { failed.Store(true) },
	})
	s.Start()
	t.Cleanup(func() {
		s.Close()
		b.Close()
	})

	done := make(chan error, 3)
	go func() { done <- s.Commit(shipGroup(3)) }()
	time.Sleep(30 * time.Millisecond) // 3 is pending behind the gap
	go func() { done <- s.Commit(shipGroup(1)) }()
	time.Sleep(30 * time.Millisecond) // sender drained 1, now holding for 2
	go func() { done <- s.Commit(shipGroup(2)) }()
	for i := 0; i < 3; i++ {
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("commit: %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("commit hung")
		}
	}
	st := s.Stats()
	if st.GroupsShipped != 3 {
		t.Fatalf("GroupsShipped = %d, want 3", st.GroupsShipped)
	}
	if st.Cohorts != 1 {
		t.Fatalf("Cohorts = %d, want 1: the hold window should have merged the batch", st.Cohorts)
	}
	if st.MaxCohort != 3 {
		t.Fatalf("MaxCohort = %d, want 3", st.MaxCohort)
	}
	if st.HoldWaits == 0 {
		t.Fatal("HoldWaits = 0, want at least one gap hold")
	}
	if failed.Load() {
		t.Fatal("shipper reported failure")
	}
}

// mirrorPairShipper wires a shipper to a real MirrorEngine over an
// in-process pipe (consuming the mirror's hello like attachMirror does)
// and returns the mirror's database for end-state comparison.
func mirrorPairShipper(t testing.TB, opts ShipperOptions) (*MirrorShipper, *store.Store, func()) {
	t.Helper()
	a, b := transport.Pipe()
	db := store.New()
	m := NewMirrorEngine(fastCfg(), db, newMemLog())
	errc := make(chan error, 1)
	go func() { errc <- m.Run(b) }()
	hello, err := a.Recv()
	if err != nil || hello.Type != transport.MsgHello {
		t.Fatalf("hello: %+v, %v", hello, err)
	}
	s := NewMirrorShipper(a, 1, opts)
	s.Start()
	stop := func() {
		s.Close()
		b.Close()
		<-errc
	}
	return s, db, stop
}

// TestShipperBatchingEquivalence is the property test: the same random
// workload committed concurrently through a per-txn shipper (cohorts of
// one, no hold) and through a cohort-batched shipper must leave two real
// mirrors in identical end states with every commit acknowledged —
// batching changes the wire schedule, never the observable outcome.
func TestShipperBatchingEquivalence(t *testing.T) {
	const (
		nTxns      = 400
		committers = 8
	)
	rng := rand.New(rand.NewSource(20260808))
	groups := make([]*wal.Group, nTxns)
	for i := range groups {
		serial := uint64(i + 1)
		nw := 1 + rng.Intn(3)
		g := &wal.Group{Commit: &wal.Record{
			Type: wal.TypeCommit, TxnID: txn.ID(serial), SerialOrder: serial, CommitTS: serial * 65536,
		}}
		for j := 0; j < nw; j++ {
			img := make([]byte, 4+rng.Intn(12))
			rng.Read(img)
			g.Writes = append(g.Writes, &wal.Record{
				Type: wal.TypeWrite, TxnID: txn.ID(serial),
				ObjectID: store.ObjectID(rng.Intn(64)), AfterImage: img,
			})
		}
		groups[i] = g
	}

	run := func(opts ShipperOptions) []store.Record {
		s, db, stop := mirrorPairShipper(t, opts)
		defer stop()
		var next atomic.Uint64
		var wg sync.WaitGroup
		for w := 0; w < committers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := next.Add(1) - 1
					if i >= nTxns {
						return
					}
					if err := s.Commit(groups[i]); err != nil {
						t.Errorf("commit %d: %v", i+1, err)
						return
					}
				}
			}()
		}
		wg.Wait()
		if got := s.Acked(); got != nTxns {
			t.Fatalf("Acked = %d, want %d", got, nTxns)
		}
		snap := db.Snapshot()
		sort.Slice(snap, func(i, j int) bool { return snap[i].ID < snap[j].ID })
		return snap
	}

	perTxn := run(ShipperOptions{
		AckTimeout: 10 * time.Second, Heartbeat: 50 * time.Millisecond,
		MaxCohort: 1, // every wire batch carries exactly one group
	})
	batched := run(ShipperOptions{
		AckTimeout: 10 * time.Second, Heartbeat: 50 * time.Millisecond,
		MaxCohort: DefaultMaxCohort, MaxHold: DefaultMaxCohortHold,
	})

	if len(perTxn) != len(batched) {
		t.Fatalf("mirror object counts differ: %d vs %d", len(perTxn), len(batched))
	}
	for i := range perTxn {
		p, q := perTxn[i], batched[i]
		if p.ID != q.ID || p.WriteTS != q.WriteTS || string(p.Value) != string(q.Value) {
			t.Fatalf("object %d diverged: pertxn=%+v batched=%+v", p.ID, p, q)
		}
	}
}

// TestShipperCohortStatsConsistent checks the new accounting plumbing
// under concurrent load: batch counters and the two distributions agree
// with each other.
func TestShipperCohortStatsConsistent(t *testing.T) {
	s, _, stop := mirrorPairShipper(t, ShipperOptions{
		AckTimeout: 10 * time.Second, Heartbeat: 50 * time.Millisecond,
	})
	defer stop()
	const n = 100
	var next atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1)
				if i > n {
					return
				}
				if err := s.Commit(shipGroup(i)); err != nil {
					t.Errorf("commit: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	st := s.Stats()
	if st.GroupsShipped != n {
		t.Fatalf("GroupsShipped = %d, want %d", st.GroupsShipped, n)
	}
	if st.Cohorts == 0 || st.Cohorts > st.GroupsShipped {
		t.Fatalf("Cohorts = %d out of range (GroupsShipped = %d)", st.Cohorts, st.GroupsShipped)
	}
	if got := s.CohortSizes().Count(); got != st.Cohorts {
		t.Fatalf("CohortSizes.Count = %d, want %d", got, st.Cohorts)
	}
	if got := s.QueueDelay().Count(); got != st.GroupsShipped {
		t.Fatalf("QueueDelay.Count = %d, want %d", got, st.GroupsShipped)
	}
	if max := s.CohortSizes().Max(); max != st.MaxCohort {
		t.Fatalf("CohortSizes.Max = %d, stats.MaxCohort = %d", max, st.MaxCohort)
	}
}
