package core

import (
	"errors"

	"repro/internal/logstore"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/store"
	"repro/internal/transport"
	"repro/internal/txn"
	"repro/internal/wal"
)

// fakeMirror consumes records on conn and acknowledges commit records,
// with optional behavior switches.
type fakeMirror struct {
	conn     *transport.Conn
	silent   atomic.Bool // stop answering (stay connected)
	received atomic.Uint64
}

func (f *fakeMirror) run() {
	for {
		m, err := f.conn.Recv()
		if err != nil {
			return
		}
		if f.silent.Load() {
			continue
		}
		switch m.Type {
		case transport.MsgPing:
			f.conn.Send(&transport.Msg{Type: transport.MsgPong})
		case transport.MsgRecord:
			f.received.Add(1)
			rec, err := wal.Decode(newReader(m.Payload))
			if err != nil {
				return
			}
			if rec.Type == wal.TypeCommit {
				f.conn.Send(&transport.Msg{Type: transport.MsgAck, Serial: rec.SerialOrder})
			}
		}
	}
}

func newReader(b []byte) *sliceReader { return &sliceReader{b: b} }

type sliceReader struct {
	b   []byte
	off int
}

func (r *sliceReader) Read(p []byte) (int, error) {
	if r.off >= len(r.b) {
		return 0, errEOF()
	}
	n := copy(p, r.b[r.off:])
	r.off += n
	return n, nil
}

func errEOF() error { return errEOFSentinel }

var errEOFSentinel = errors.New("EOF")

func shipperPair(t *testing.T, ackTimeout time.Duration) (*MirrorShipper, *fakeMirror, *atomic.Bool) {
	t.Helper()
	a, b := transport.Pipe()
	fm := &fakeMirror{conn: b}
	go fm.run()
	var failed atomic.Bool
	s := NewMirrorShipper(a, 1, ShipperOptions{
		AckTimeout: ackTimeout,
		Heartbeat:  20 * time.Millisecond,
		OnFailure:  func() { failed.Store(true) },
	})
	s.Start()
	t.Cleanup(func() {
		s.Close()
		b.Close()
	})
	return s, fm, &failed
}

func shipGroup(serial uint64) *wal.Group {
	return &wal.Group{
		Writes: []*wal.Record{{Type: wal.TypeWrite, TxnID: txn.ID(serial), ObjectID: store.ObjectID(serial), AfterImage: []byte("v")}},
		Commit: &wal.Record{Type: wal.TypeCommit, TxnID: txn.ID(serial), SerialOrder: serial, CommitTS: serial * 65536},
	}
}

func TestShipperCommitAcked(t *testing.T) {
	s, fm, _ := shipperPair(t, 2*time.Second)
	for i := uint64(1); i <= 5; i++ {
		if err := s.Commit(shipGroup(i)); err != nil {
			t.Fatalf("commit %d: %v", i, err)
		}
	}
	if s.Acked() != 5 {
		t.Fatalf("Acked = %d", s.Acked())
	}
	// Stats are updated by the sender after the wire write; the ack can
	// race ahead of the bookkeeping, so poll briefly.
	deadline := time.Now().Add(2 * time.Second)
	for {
		st := s.Stats()
		if st.GroupsShipped == 5 && st.RecordsShipped == 10 && st.Acks == 5 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stats = %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
	if fm.received.Load() != 10 {
		t.Fatalf("mirror received %d records", fm.received.Load())
	}
}

func TestShipperOutOfOrderCommitsSerialize(t *testing.T) {
	s, _, _ := shipperPair(t, 2*time.Second)
	// Commit serial 2 from one goroutine and serial 1 from another; the
	// sender must ship 1 before 2 regardless of arrival order.
	done2 := make(chan error, 1)
	go func() { done2 <- s.Commit(shipGroup(2)) }()
	time.Sleep(20 * time.Millisecond) // let 2 queue first
	if err := s.Commit(shipGroup(1)); err != nil {
		t.Fatal(err)
	}
	if err := <-done2; err != nil {
		t.Fatal(err)
	}
	if s.Acked() != 2 {
		t.Fatalf("Acked = %d", s.Acked())
	}
}

func TestShipperAckTimeout(t *testing.T) {
	s, fm, failed := shipperPair(t, 150*time.Millisecond)
	// First commit flows; then the mirror goes silent mid-protocol.
	if err := s.Commit(shipGroup(1)); err != nil {
		t.Fatal(err)
	}
	fm.silent.Store(true)
	start := time.Now()
	err := s.Commit(shipGroup(2))
	if !errors.Is(err, ErrMirrorDown) {
		t.Fatalf("err = %v", err)
	}
	if time.Since(start) < 100*time.Millisecond {
		t.Fatal("timed out too early")
	}
	if !failed.Load() {
		t.Fatal("failure callback not invoked")
	}
	// Subsequent commits fail fast.
	if err := s.Commit(shipGroup(3)); !errors.Is(err, ErrMirrorDown) {
		t.Fatalf("post-failure commit: %v", err)
	}
}

func TestShipperDetectsSilentMirrorWhileIdle(t *testing.T) {
	s, fm, failed := shipperPair(t, 150*time.Millisecond)
	if err := s.Commit(shipGroup(1)); err != nil {
		t.Fatal(err)
	}
	fm.silent.Store(true)
	// No commits at all: the idle watchdog alone must notice within a
	// few timeouts.
	deadline := time.Now().Add(3 * time.Second)
	for !failed.Load() {
		if time.Now().After(deadline) {
			t.Fatal("idle shipper never detected the silent mirror")
		}
		time.Sleep(10 * time.Millisecond)
	}
	_ = s
}

func TestShipperConnCloseFailsPending(t *testing.T) {
	a, b := transport.Pipe()
	var failed atomic.Bool
	s := NewMirrorShipper(a, 1, ShipperOptions{
		AckTimeout: 2 * time.Second,
		Heartbeat:  20 * time.Millisecond,
		OnFailure:  func() { failed.Store(true) },
	})
	s.Start()
	defer s.Close()
	done := make(chan error, 1)
	go func() { done <- s.Commit(shipGroup(1)) }()
	time.Sleep(20 * time.Millisecond)
	b.Close() // peer vanishes
	select {
	case err := <-done:
		if !errors.Is(err, ErrMirrorDown) {
			t.Fatalf("err = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("pending commit never failed")
	}
	if !failed.Load() {
		t.Fatal("failure callback not invoked")
	}
}

func TestShipperUnexpectedMessageFails(t *testing.T) {
	a, b := transport.Pipe()
	var failed atomic.Bool
	s := NewMirrorShipper(a, 1, ShipperOptions{
		AckTimeout: 2 * time.Second,
		Heartbeat:  20 * time.Millisecond,
		OnFailure:  func() { failed.Store(true) },
	})
	s.Start()
	defer s.Close()
	defer b.Close()
	go b.Send(&transport.Msg{Type: transport.MsgSnapshotBegin})
	deadline := time.Now().Add(3 * time.Second)
	for !failed.Load() {
		if time.Now().After(deadline) {
			t.Fatal("protocol violation not detected")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestShipperCloseIdempotent(t *testing.T) {
	s, _, _ := shipperPair(t, time.Second)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(shipGroup(1)); !errors.Is(err, ErrMirrorDown) {
		t.Fatalf("commit after close: %v", err)
	}
}

// --- mirror protocol robustness ------------------------------------------

func TestMirrorRejectsBadRecordPayload(t *testing.T) {
	a, b := transport.Pipe()
	m := NewMirrorEngine(fastCfg(), store.New(), newMemLog())
	errc := make(chan error, 1)
	go func() { errc <- m.Run(b) }()
	if _, err := a.Recv(); err != nil { // hello
		t.Fatal(err)
	}
	a.Send(&transport.Msg{Type: transport.MsgRecord, Payload: []byte("garbage")})
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("bad record accepted")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("mirror did not reject the bad record")
	}
	a.Close()
}

func TestMirrorRejectsChunkWithoutBegin(t *testing.T) {
	a, b := transport.Pipe()
	m := NewMirrorEngine(fastCfg(), store.New(), newMemLog())
	errc := make(chan error, 1)
	go func() { errc <- m.Run(b) }()
	a.Recv() // hello
	a.Send(&transport.Msg{Type: transport.MsgSnapshotChunk, Payload: []byte("x")})
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("orphan chunk accepted")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("mirror did not reject the orphan chunk")
	}
	a.Close()
}

func TestMirrorRejectsUnknownMessage(t *testing.T) {
	a, b := transport.Pipe()
	m := NewMirrorEngine(fastCfg(), store.New(), newMemLog())
	errc := make(chan error, 1)
	go func() { errc <- m.Run(b) }()
	a.Recv() // hello
	a.Send(&transport.Msg{Type: transport.MsgHello})
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("unknown message accepted")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("mirror did not reject the message")
	}
	a.Close()
}

func newMemLog() *logstore.Mem { return logstore.NewMem() }
