package experiments

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro/internal/core"
	"repro/internal/logstore"
	"repro/internal/metrics"
	"repro/internal/store"
	"repro/internal/workload"
)

// CheckpointResult is one row of the fuzzy-checkpoint study: for one
// database size and checkpoint mode, the worst commit-visible stall any
// cycle caused, what the steady-state (second) cycle had to copy, the
// published checkpoint's size, and cold-restart recovery time from the
// checkpoint plus the surviving log tail.
type CheckpointResult struct {
	Objects  int
	Mode     string // "frozen" (stop-the-world ablation) or "fuzzy"
	MaxPause time.Duration
	Cycle2   string // what the second cycle copied
	Bytes    int64  // published checkpoint file size
	Recovery time.Duration
	TailTxns int
}

// CheckpointStudy compares the legacy frozen checkpoint against the
// fuzzy stripe-incremental one across database sizes. Each run takes a
// first (cold) cycle, dirties a handful of objects, takes a steady-state
// cycle, and finally publishes a checkpoint to disk, commits a log tail
// past it, and measures restart recovery. The availability claim is in
// the MaxPause column: the frozen path stalls validation for a whole
// database copy, the fuzzy path for at most one stripe — the pause
// shrinks by the stripe count instead of growing with the database. The
// Cycle2 column shows the incremental effect: a mostly-clean store
// recopies only its dirty stripes.
func CheckpointStudy(sizes []int, tail int) ([]CheckpointResult, error) {
	if len(sizes) == 0 {
		sizes = []int{2000, 8000, 32000}
	}
	if tail <= 0 {
		tail = 1000
	}
	var out []CheckpointResult
	for _, size := range sizes {
		for _, frozen := range []bool{false, true} {
			r, err := checkpointOne(size, tail, frozen)
			if err != nil {
				return out, err
			}
			out = append(out, r)
		}
	}
	return out, nil
}

func checkpointOne(objects, tail int, frozen bool) (CheckpointResult, error) {
	res := CheckpointResult{Objects: objects, Mode: "fuzzy", TailTxns: tail}
	if frozen {
		res.Mode = "frozen"
	}

	wl := workload.Default()
	wl.DBSize = objects
	db := store.New()
	workload.Populate(db, wl)

	cfg := core.Config{Workers: 2, FrozenCheckpoint: frozen}
	mem := logstore.NewMem()
	n := core.NewNode("ckpt", cfg, db, mem)
	if err := n.ServePrimary("", core.LogDisk); err != nil {
		return res, err
	}
	defer n.Close()

	update := func(i int, id store.ObjectID) error {
		return n.Execute(core.Request{Deadline: time.Second, Do: func(tx *core.Tx) error {
			return tx.Write(id, []byte(fmt.Sprintf("upd-%d", i)))
		}})
	}
	for i := 0; i < tail; i++ {
		if err := update(i, store.ObjectID(i%objects)); err != nil {
			return res, err
		}
	}

	// Cycle 1 — cold: every stripe is dirty, the whole store is copied
	// either way. The frozen path records its whole-store freeze and the
	// fuzzy path its per-stripe copies in the same pause histogram.
	if err := cycle(n, frozen); err != nil {
		return res, err
	}

	// Dirty a handful of objects, then take the steady-state cycle: the
	// fuzzy checkpointer recopies only the stripes those writes touched.
	for i := 0; i < 64; i++ {
		if err := update(i, store.ObjectID(i%8)); err != nil {
			return res, err
		}
	}
	if frozen {
		if err := cycle(n, frozen); err != nil {
			return res, err
		}
		res.Cycle2 = "whole store"
	} else {
		st, err := n.FuzzyCheckpoint(io.Discard)
		if err != nil {
			return res, err
		}
		res.Cycle2 = fmt.Sprintf("%d/%d stripes", st.Copied, st.Stripes)
	}
	res.MaxPause = n.CheckpointPauses().Max()

	// Publish a checkpoint, commit a tail past it, and measure restart
	// recovery from the pair — the single-node availability axis.
	dir, err := os.MkdirTemp("", "rodain-ckpt-study-*")
	if err != nil {
		return res, err
	}
	defer os.RemoveAll(dir)
	if _, err := n.CheckpointToDir(dir); err != nil {
		return res, err
	}
	fi, err := os.Stat(filepath.Join(dir, "checkpoint.ckpt"))
	if err != nil {
		return res, err
	}
	res.Bytes = fi.Size()
	for i := 0; i < tail; i++ {
		if err := update(i, store.ObjectID((i*13)%objects)); err != nil {
			return res, err
		}
	}
	logTail := mem.SyncedBytes()
	want := n.DB().Checksum()

	fresh := core.NewNode("restart", cfg, store.New(), logstore.NewMem())
	//rodain:allow wallclock (benchmark harness: measures real elapsed time of real work)
	start := time.Now()
	if _, err := fresh.RecoverFromDir(dir, bytes.NewReader(logTail)); err != nil {
		return res, err
	}
	//rodain:allow wallclock (benchmark harness: measures real elapsed time of real work)
	res.Recovery = time.Since(start)
	if fresh.DB().Checksum() != want {
		return res, fmt.Errorf("experiments: %s recovery diverged at %d objects", res.Mode, objects)
	}
	return res, nil
}

// cycle runs one checkpoint of the configured flavor into the void,
// populating the node's pause metrics.
func cycle(n *core.Node, frozen bool) error {
	if frozen {
		_, err := n.Checkpoint(io.Discard)
		return err
	}
	_, err := n.FuzzyCheckpoint(io.Discard)
	return err
}

// CheckpointTable renders the study with fuzzy and frozen rows adjacent
// per database size.
func CheckpointTable(rs []CheckpointResult) *metrics.Table {
	t := &metrics.Table{
		Title:  "fuzzy vs frozen checkpointing — commit stall, incrementality, restart recovery",
		Header: []string{"objects", "mode", "max pause", "2nd cycle copies", "ckpt bytes", "restart recovery"},
	}
	for _, r := range rs {
		t.AddRow(
			fmt.Sprintf("%d", r.Objects),
			r.Mode,
			r.MaxPause.Round(time.Microsecond).String(),
			r.Cycle2,
			fmt.Sprintf("%d", r.Bytes),
			r.Recovery.Round(100*time.Microsecond).String(),
		)
	}
	return t
}
