// Package experiments regenerates every figure of the paper's
// experimental study (§4): the miss-ratio curves of Figures 2 and 3 via
// the discrete-event simulator, the takeover-vs-recovery availability
// comparison the section closes with, and the ablations DESIGN.md calls
// out (concurrency-control protocol, mirror reordering, group commit).
//
// Each experiment returns a Result holding the same series the paper
// plots; absolute values belong to our calibrated cost model, the shape
// is what reproduces.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/occ"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Options tune how heavy a run is.
type Options struct {
	// Reps is the number of seeded repetitions averaged per point
	// (the paper repeats every session at least 20 times).
	Reps int
	// Count is the number of transactions per session (paper: 10,000).
	Count int
	// DBSize is the number of objects (paper: 30,000).
	DBSize int
	// Seed is the base seed.
	Seed int64
}

// DefaultOptions mirrors the paper's setup.
func DefaultOptions() Options {
	return Options{Reps: 20, Count: 10000, DBSize: 30000, Seed: 1}
}

// QuickOptions is a cheaper configuration for tests and demos that
// preserves the shapes.
func QuickOptions() Options {
	return Options{Reps: 3, Count: 2500, DBSize: 10000, Seed: 1}
}

func (o Options) withDefaults() Options {
	d := DefaultOptions()
	if o.Reps <= 0 {
		o.Reps = d.Reps
	}
	if o.Count <= 0 {
		o.Count = d.Count
	}
	if o.DBSize <= 0 {
		o.DBSize = d.DBSize
	}
	if o.Seed == 0 {
		o.Seed = d.Seed
	}
	return o
}

// Series is one plotted line.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Result is one regenerated figure.
type Result struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
	Notes  []string
}

// Table renders the result in the row form the paper's figures report.
func (r *Result) Table() *metrics.Table {
	t := &metrics.Table{Title: fmt.Sprintf("%s — %s", r.ID, r.Title)}
	t.Header = append(t.Header, r.XLabel)
	for _, s := range r.Series {
		t.Header = append(t.Header, s.Name)
	}
	if len(r.Series) == 0 {
		return t
	}
	for i := range r.Series[0].X {
		row := []string{trimFloat(r.Series[0].X[i])}
		for _, s := range r.Series {
			row = append(row, metrics.Pct(s.Y[i]))
		}
		t.AddRow(row...)
	}
	return t
}

// WriteCSV writes the result as CSV: x, then one column per series.
func (r *Result) WriteCSV(w io.Writer) error {
	cols := []string{csvEscape(r.XLabel)}
	for _, s := range r.Series {
		cols = append(cols, csvEscape(s.Name))
	}
	if _, err := fmt.Fprintln(w, strings.Join(cols, ",")); err != nil {
		return err
	}
	if len(r.Series) == 0 {
		return nil
	}
	for i := range r.Series[0].X {
		row := []string{trimFloat(r.Series[0].X[i])}
		for _, s := range r.Series {
			row = append(row, fmt.Sprintf("%.6f", s.Y[i]))
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return strconv.Quote(s)
	}
	return s
}

// Fprint writes the table plus notes.
func (r *Result) Fprint(w io.Writer) error {
	if err := r.Table().Fprint(w); err != nil {
		return err
	}
	for _, n := range r.Notes {
		if _, err := fmt.Fprintf(w, "  note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.2f", v)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}

// baseWorkload is the paper's test database and transaction mix.
func baseWorkload(o Options) workload.Config {
	cfg := workload.Default()
	cfg.Count = o.Count
	cfg.DBSize = o.DBSize
	cfg.Seed = o.Seed
	return cfg
}

// point runs one (mode, workload) configuration and averages the miss
// ratio over repetitions.
func point(o Options, wl workload.Config, mode core.LogMode, mirrorDisk bool) float64 {
	rs := sim.RunRepeated(sim.Config{
		Workload:   wl,
		LogMode:    mode,
		MirrorDisk: mirrorDisk,
	}, o.Reps)
	return sim.MeanMissRatio(rs)
}

// ArrivalRates is the x axis of the rate sweeps.
var ArrivalRates = []float64{50, 100, 150, 200, 250, 300, 350, 400, 450, 500}

// WriteFractions is the x axis of Fig 2(b).
var WriteFractions = []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}

// Fig2a reproduces Fig 2(a): miss ratio vs arrival rate at a 5% write
// ratio, normal mode (both nodes, logs shipped) vs transient mode
// (single node, true disk log writes).
func Fig2a(o Options) Result {
	o = o.withDefaults()
	r := Result{
		ID:     "fig2a",
		Title:  "normal (2 nodes) vs transient (1 node) mode, true log writes, write ratio 5%",
		XLabel: "arrival rate (txn/s)",
		YLabel: "miss ratio",
	}
	two := Series{Name: "2 nodes (ship)"}
	one := Series{Name: "1 node (disk)"}
	for _, rate := range ArrivalRates {
		wl := baseWorkload(o)
		wl.ArrivalRate = rate
		wl.WriteFraction = 0.05
		two.X = append(two.X, rate)
		two.Y = append(two.Y, point(o, wl, core.LogShip, true))
		one.X = append(one.X, rate)
		one.Y = append(one.Y, point(o, wl, core.LogDisk, false))
	}
	r.Series = []Series{two, one}
	r.Notes = append(r.Notes,
		"expected shape: the single node saturates on its log disk far below the two-node CPU knee (paper Fig 2a)")
	return r
}

// Fig2b reproduces Fig 2(b): miss ratio vs write fraction at 300 txn/s.
func Fig2b(o Options) Result {
	o = o.withDefaults()
	r := Result{
		ID:     "fig2b",
		Title:  "normal vs transient mode, true log writes, arrival rate 300 txn/s",
		XLabel: "write fraction",
		YLabel: "miss ratio",
	}
	two := Series{Name: "2 nodes (ship)"}
	one := Series{Name: "1 node (disk)"}
	for _, wf := range WriteFractions {
		wl := baseWorkload(o)
		wl.ArrivalRate = 300
		wl.WriteFraction = wf
		two.X = append(two.X, wf)
		two.Y = append(two.Y, point(o, wl, core.LogShip, true))
		one.X = append(one.X, wf)
		one.Y = append(one.Y, point(o, wl, core.LogDisk, false))
	}
	r.Series = []Series{two, one}
	r.Notes = append(r.Notes,
		"expected shape: the single-node curve is high at every write fraction — even read-only transactions flush a commit record (paper Fig 2b)")
	return r
}

// fig3 reproduces one panel of Fig 3: optimal (no logs) vs single node
// (logging, disk off) vs two nodes (shipping, mirror disk off).
func fig3(id string, o Options, writeFraction float64) Result {
	o = o.withDefaults()
	r := Result{
		ID:     id,
		Title:  fmt.Sprintf("no logs vs 1 node vs 2 nodes, disk writes off, write ratio %.0f%%", 100*writeFraction),
		XLabel: "arrival rate (txn/s)",
		YLabel: "miss ratio",
	}
	none := Series{Name: "No logs"}
	solo := Series{Name: "1 node"}
	pair := Series{Name: "2 nodes"}
	for _, rate := range ArrivalRates {
		wl := baseWorkload(o)
		wl.ArrivalRate = rate
		wl.WriteFraction = writeFraction
		none.X = append(none.X, rate)
		none.Y = append(none.Y, point(o, wl, core.LogNone, false))
		solo.X = append(solo.X, rate)
		solo.Y = append(solo.Y, point(o, wl, core.LogDiscard, false))
		pair.X = append(pair.X, rate)
		pair.Y = append(pair.Y, point(o, wl, core.LogShip, false))
	}
	r.Series = []Series{none, solo, pair}
	r.Notes = append(r.Notes,
		"expected shape: all curves saturate at 200-300 txn/s; gaps between them are small (log handling overhead is modest; paper Fig 3)")
	return r
}

// Fig3a is Fig 3(a): write ratio 0%.
func Fig3a(o Options) Result { return fig3("fig3a", o, 0.0) }

// Fig3b is Fig 3(b): write ratio 20%.
func Fig3b(o Options) Result { return fig3("fig3b", o, 0.2) }

// Fig3c is Fig 3(c): write ratio 80%.
func Fig3c(o Options) Result { return fig3("fig3c", o, 0.8) }

// ProtocolAblation compares the concurrency-control protocols under the
// contended mixed workload (DESIGN.md §8).
func ProtocolAblation(o Options) *metrics.Table {
	o = o.withDefaults()
	t := &metrics.Table{
		Title:  "protocol ablation — contended load (30-object hotspot, 60% writes, 30% non-RT)",
		Header: []string{"protocol", "committed", "miss", "restarts", "validations", "victim-restarts", "access-restarts"},
	}
	for _, k := range []occ.Kind{occ.DATI, occ.TI, occ.DA, occ.BC} {
		wl := workload.Config{
			ArrivalRate: 250, WriteFraction: 0.6, DBSize: 30,
			ReadsPerTxn: 4, WritesPerTxn: 2,
			ReadDeadline: 50e6, WriteDeadline: 150e6,
			ValueSize: 16, Count: o.Count, Seed: o.Seed, NonRTFraction: 0.3,
		}
		rs := sim.RunRepeated(sim.Config{
			Workload: wl, LogMode: core.LogNone, Protocol: k, NonRTReserve: 0.1,
		}, o.Reps)
		var committed, restarts, validations, victims, access uint64
		miss := 0.0
		for _, r := range rs {
			committed += r.Outcome.Committed
			restarts += r.Outcome.Restarts
			validations += r.OCC.Validations
			victims += r.OCC.VictimRestarts
			access += r.OCC.AccessRestarts
			miss += r.MissRatio
		}
		n := uint64(len(rs))
		t.AddRow(k.String(),
			fmt.Sprintf("%d", committed/n),
			metrics.Pct(miss/float64(len(rs))),
			fmt.Sprintf("%d", restarts/n),
			fmt.Sprintf("%d", validations/n),
			fmt.Sprintf("%d", victims/n),
			fmt.Sprintf("%d", access/n))
	}
	return t
}

// SortedIDs lists the available figure experiments.
func SortedIDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

var registry = map[string]func(Options) Result{
	"fig2a": Fig2a,
	"fig2b": Fig2b,
	"fig3a": Fig3a,
	"fig3b": Fig3b,
	"fig3c": Fig3c,
}

// Run executes the figure experiment with the given id.
func Run(id string, o Options) (Result, error) {
	f, ok := registry[id]
	if !ok {
		return Result{}, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, SortedIDs())
	}
	return f(o), nil
}
