package experiments

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

// tinyOptions keeps test runtime low while preserving shapes.
func tinyOptions() Options {
	return Options{Reps: 2, Count: 1500, DBSize: 5000, Seed: 1}
}

func seriesByName(t *testing.T, r Result, name string) Series {
	t.Helper()
	for _, s := range r.Series {
		if strings.Contains(s.Name, name) {
			return s
		}
	}
	t.Fatalf("series %q not found in %v", name, r.ID)
	return Series{}
}

func atRate(t *testing.T, s Series, rate float64) float64 {
	t.Helper()
	for i, x := range s.X {
		if x == rate {
			return s.Y[i]
		}
	}
	t.Fatalf("rate %v not in series", rate)
	return 0
}

func TestFig2aShape(t *testing.T) {
	r := Fig2a(tinyOptions())
	if len(r.Series) != 2 {
		t.Fatalf("series count = %d", len(r.Series))
	}
	two := seriesByName(t, r, "2 nodes")
	one := seriesByName(t, r, "1 node")

	// Below the knee both are near zero.
	if atRate(t, two, 100) > 0.05 || atRate(t, one, 100) > 0.15 {
		t.Fatalf("low-rate miss ratios: two=%.3f one=%.3f", atRate(t, two, 100), atRate(t, one, 100))
	}
	// At 200-250 tps the single node has saturated its disk, the pair
	// has not: the paper's headline gap.
	if atRate(t, one, 250)-atRate(t, two, 250) < 0.2 {
		t.Fatalf("no disk-vs-ship gap at 250 tps: one=%.3f two=%.3f",
			atRate(t, one, 250), atRate(t, two, 250))
	}
	// Both saturate eventually, and miss ratios are monotone-ish in rate.
	if atRate(t, two, 500) < 0.3 {
		t.Fatalf("two-node at 500 tps: %.3f", atRate(t, two, 500))
	}
}

func TestFig2bShape(t *testing.T) {
	r := Fig2b(tinyOptions())
	two := seriesByName(t, r, "2 nodes")
	one := seriesByName(t, r, "1 node")
	// The single node is badly saturated at every write fraction
	// (every commit flushes), the pair only moderately loaded at 300.
	for i := range one.X {
		if one.Y[i]-two.Y[i] < 0.1 {
			t.Fatalf("at write fraction %.1f: one=%.3f two=%.3f — gap missing",
				one.X[i], one.Y[i], two.Y[i])
		}
	}
	// Write-ratio effect on the pair is modest.
	if two.Y[len(two.Y)-1]-two.Y[0] > 0.45 {
		t.Fatalf("two-node write-ratio swing too large: %.3f → %.3f", two.Y[0], two.Y[len(two.Y)-1])
	}
}

func TestFig3Shape(t *testing.T) {
	r := Fig3b(tinyOptions())
	none := seriesByName(t, r, "No logs")
	solo := seriesByName(t, r, "1 node")
	pair := seriesByName(t, r, "2 nodes")
	// All three saturate between 200 and 300: miss at 200 small-ish,
	// miss at 400 large.
	for _, s := range []Series{none, solo, pair} {
		if atRate(t, s, 150) > 0.08 {
			t.Fatalf("%s at 150 tps: %.3f", s.Name, atRate(t, s, 150))
		}
		if atRate(t, s, 450) < 0.25 {
			t.Fatalf("%s at 450 tps: %.3f", s.Name, atRate(t, s, 450))
		}
	}
	// Ordering at saturation: No logs ≤ 1 node ≤ 2 nodes (small gaps).
	at := func(s Series) float64 { return atRate(t, s, 400) }
	if at(none) > at(solo)+0.03 || at(solo) > at(pair)+0.03 {
		t.Fatalf("fig3 ordering violated: none=%.3f solo=%.3f pair=%.3f",
			at(none), at(solo), at(pair))
	}
}

func TestRunRegistry(t *testing.T) {
	ids := SortedIDs()
	if len(ids) != 5 {
		t.Fatalf("ids = %v", ids)
	}
	if _, err := Run("nope", tinyOptions()); err == nil {
		t.Fatal("unknown id accepted")
	}
	r, err := Run("fig3a", Options{Reps: 1, Count: 300, DBSize: 1000})
	if err != nil || r.ID != "fig3a" {
		t.Fatalf("Run: %v %v", r.ID, err)
	}
}

func TestResultTableRendering(t *testing.T) {
	r := Result{
		ID: "x", Title: "t", XLabel: "rate",
		Series: []Series{
			{Name: "a", X: []float64{100, 200}, Y: []float64{0.1, 0.25}},
			{Name: "b", X: []float64{100, 200}, Y: []float64{0.2, 0.5}},
		},
		Notes: []string{"note"},
	}
	var b strings.Builder
	if err := r.Fprint(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"rate", "a", "b", "10.0%", "50.0%", "note"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	empty := Result{ID: "e"}
	if empty.Table() == nil {
		t.Fatal("empty table nil")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Reps != 20 || o.Count != 10000 || o.DBSize != 30000 {
		t.Fatalf("defaults = %+v", o)
	}
	q := QuickOptions()
	if q.Reps <= 0 || q.Count <= 0 {
		t.Fatalf("quick = %+v", q)
	}
}

func TestProtocolAblationTable(t *testing.T) {
	tab := ProtocolAblation(Options{Reps: 1, Count: 1200, DBSize: 5000, Seed: 3})
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// DATI commits at least as much as BC.
	var dati, bc int
	for _, row := range tab.Rows {
		n, _ := strconv.Atoi(row[1])
		switch row[0] {
		case "OCC-DATI":
			dati = n
		case "OCC-BC":
			bc = n
		}
	}
	if dati < bc {
		t.Fatalf("DATI committed %d < BC %d", dati, bc)
	}
}

func TestTakeoverExperiment(t *testing.T) {
	rs, err := Takeover([]int{2000, 20000}, 500)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 {
		t.Fatalf("results = %d", len(rs))
	}
	for _, r := range rs {
		if r.TakeoverTime <= 0 || r.RecoveryTime <= 0 {
			t.Fatalf("zero times: %+v", r)
		}
		if r.TakeoverTime < r.DetectionTime {
			t.Fatalf("takeover %v < detection %v", r.TakeoverTime, r.DetectionTime)
		}
	}
	// Recovery grows with database size; takeover does not (within a
	// generous factor — wall-clock noise).
	if rs[1].RecoveryTime < rs[0].RecoveryTime {
		t.Fatalf("recovery time did not grow with size: %v vs %v",
			rs[0].RecoveryTime, rs[1].RecoveryTime)
	}
	// At the larger size the mirror's takeover beats restart recovery —
	// the availability claim.
	if rs[1].TakeoverTime > rs[1].RecoveryTime {
		t.Fatalf("takeover (%v) slower than recovery (%v) at 20k objects",
			rs[1].TakeoverTime, rs[1].RecoveryTime)
	}
	var b strings.Builder
	if err := TakeoverTable(rs).Fprint(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "takeover") {
		t.Fatal("table missing header")
	}
}

func TestReorderAblation(t *testing.T) {
	tab := ReorderAblation(200, 3)
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	reordered, _ := strconv.Atoi(tab.Rows[0][2])
	interleaved, _ := strconv.Atoi(tab.Rows[1][2])
	if reordered > 3 {
		t.Fatalf("reordered log peak buffering = %d, want ≤ writes per txn", reordered)
	}
	if interleaved < 100*3 {
		t.Fatalf("interleaved log peak buffering = %d, want hundreds", interleaved)
	}
}

func TestGroupCommitAblation(t *testing.T) {
	tab := GroupCommitAblation(5*time.Millisecond, []time.Duration{0, 2 * time.Millisecond}, 40)
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	syncs0, _ := strconv.Atoi(tab.Rows[0][2])
	syncsG, _ := strconv.Atoi(tab.Rows[1][2])
	if syncsG >= syncs0 {
		t.Fatalf("group commit did not reduce syncs: %d vs %d", syncsG, syncs0)
	}
}

func TestOverloadAblation(t *testing.T) {
	tab := OverloadAblation(Options{Reps: 1, Count: 2000, DBSize: 5000, Seed: 1})
	if len(tab.Rows) != 6 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// At 450 tps: with the manager on, denials dominate; with it off,
	// deadline misses dominate and the p95 response time is worse.
	var on, off []string
	for _, row := range tab.Rows {
		if row[0] == "450" {
			if row[1] == "on" {
				on = row
			} else {
				off = row
			}
		}
	}
	if on == nil || off == nil {
		t.Fatalf("450-tps rows missing: %v", tab.Rows)
	}
	onDenied, _ := strconv.Atoi(on[5])
	offDeadline, _ := strconv.Atoi(off[4])
	offDenied, _ := strconv.Atoi(off[5])
	if onDenied == 0 {
		t.Fatalf("manager on: no denials at 450 tps: %v", on)
	}
	if offDenied != 0 {
		t.Fatalf("manager off still denied admissions: %v", off)
	}
	if offDeadline == 0 {
		t.Fatalf("manager off: no deadline misses at 450 tps: %v", off)
	}
}

func TestPredictability(t *testing.T) {
	tab := Predictability(Options{Reps: 1, Count: 2000, DBSize: 5000, Seed: 1})
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	parse := func(s string) time.Duration {
		d, err := time.ParseDuration(s)
		if err != nil {
			t.Fatalf("bad duration %q", s)
		}
		return d
	}
	// Rows: ship, disk, discard, none. Disk p99 must exceed ship p99 by
	// at least the device latency; no-logs must be ~zero.
	shipP99 := parse(tab.Rows[0][3])
	diskP99 := parse(tab.Rows[1][3])
	noneMean := parse(tab.Rows[3][1])
	if diskP99 < shipP99+5*time.Millisecond {
		t.Fatalf("disk p99 %v not clearly above ship p99 %v", diskP99, shipP99)
	}
	if noneMean != 0 {
		t.Fatalf("no-logs mean commit wait = %v", noneMean)
	}
}

func TestWriteCSV(t *testing.T) {
	r := Result{
		ID: "x", XLabel: "rate, txn/s",
		Series: []Series{
			{Name: "a", X: []float64{100, 200}, Y: []float64{0.1, 0.25}},
			{Name: "b", X: []float64{100, 200}, Y: []float64{0.2, 0.5}},
		},
	}
	var b strings.Builder
	if err := r.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, `"rate, txn/s",a,b`) {
		t.Fatalf("header = %q", out)
	}
	if !strings.Contains(out, "200,0.250000,0.500000") {
		t.Fatalf("rows = %q", out)
	}
	empty := Result{XLabel: "x"}
	var eb strings.Builder
	if err := empty.WriteCSV(&eb); err != nil {
		t.Fatal(err)
	}
}

func TestOCCScalingExperiment(t *testing.T) {
	rs, err := OCCScaling(256, 800, []int{1, 2}, []int{10, 60})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 4 {
		t.Fatalf("results = %d, want 4", len(rs))
	}
	for _, r := range rs {
		if r.Committed == 0 || r.Throughput <= 0 {
			t.Fatalf("dead cell: %+v", r)
		}
		if r.Workers == 1 && r.Speedup != 1.0 {
			t.Fatalf("baseline speedup = %v", r.Speedup)
		}
	}
	var b strings.Builder
	if err := OCCScalingTable(rs).Fprint(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "controller sharding") {
		t.Fatal("table missing title")
	}
}

func TestShipScalingExperiment(t *testing.T) {
	rs, err := ShipScaling(400, []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 4 {
		t.Fatalf("results = %d, want 4", len(rs))
	}
	for _, r := range rs {
		if r.Throughput <= 0 {
			t.Fatalf("dead cell: %+v", r)
		}
		if r.Mode == "pertxn" && r.MeanCohort > 1.0001 {
			t.Fatalf("pertxn cohort = %v, want exactly 1", r.MeanCohort)
		}
	}
	var b strings.Builder
	if err := ShipScalingTable(rs).Fprint(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "shipscaling") {
		t.Fatal("table missing title")
	}
}

func TestTransientFsyncExperiment(t *testing.T) {
	rs, err := TransientFsync(300, []int{1, 8}, 50*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 4 {
		t.Fatalf("results = %d, want 4", len(rs))
	}
	for _, r := range rs {
		if r.Throughput <= 0 || r.Syncs == 0 {
			t.Fatalf("dead cell: %+v", r)
		}
		if r.Mode == "persync" && r.SyncsPerCommit != 1.0 {
			t.Fatalf("persync syncs/commit = %v, want 1", r.SyncsPerCommit)
		}
		if r.Mode == "group" && r.Committers == 8 && r.SyncsPerCommit >= 1.0 {
			t.Fatalf("group fsync never batched: %+v", r)
		}
	}
	var b strings.Builder
	if err := TransientFsyncTable(rs).Fprint(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "transient primary") {
		t.Fatal("table missing title")
	}
}
