package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/txn"
)

// OverloadAblation compares the system with and without the overload
// manager at rates past saturation (DESIGN.md §8). Without admission
// control every arriving transaction is admitted, queues balloon, and
// work is wasted on transactions that expire mid-execution; with it,
// excess load is rejected on arrival and the admitted work still meets
// its deadlines.
func OverloadAblation(o Options) *metrics.Table {
	o = o.withDefaults()
	t := &metrics.Table{
		Title: "overload manager ablation — two-node shipping mode",
		Header: []string{"rate", "manager", "miss", "committed", "deadline-misses",
			"overload-denials", "p95 response"},
	}
	for _, rate := range []float64{250, 350, 450} {
		for _, managed := range []bool{true, false} {
			wl := baseWorkload(o)
			wl.ArrivalRate = rate
			wl.WriteFraction = 0.2
			cfg := sim.Config{Workload: wl, LogMode: core.LogShip, MirrorDisk: true}
			if !managed {
				// Effectively unlimited admission: the hard cap far
				// above anything reachable and no adaptive shrinking.
				cfg.Overload = sched.OverloadConfig{
					MaxActive: 1 << 20, MinActive: 1 << 20,
					MissHighWater: 1 << 30,
				}
			}
			rs := sim.RunRepeated(cfg, o.Reps)
			var committed, deadline, denied uint64
			miss := 0.0
			var p95 time.Duration
			for _, r := range rs {
				committed += r.Outcome.Committed
				deadline += r.Outcome.ByReason[txn.DeadlineMiss]
				denied += r.Outcome.ByReason[txn.OverloadDenied]
				miss += r.MissRatio
				if r.P95Response > p95 {
					p95 = r.P95Response
				}
			}
			n := uint64(len(rs))
			label := "on"
			if !managed {
				label = "off"
			}
			t.AddRow(
				fmt.Sprintf("%.0f", rate), label,
				metrics.Pct(miss/float64(len(rs))),
				fmt.Sprintf("%d", committed/n),
				fmt.Sprintf("%d", deadline/n),
				fmt.Sprintf("%d", denied/n),
				p95.Round(time.Millisecond).String(),
			)
		}
	}
	return t
}

// Predictability quantifies the paper's qualitative argument for the hot
// stand-by: removing the disk from the commit path gives shorter *and
// more predictable* commit-phase execution. It reports the commit-wait
// (LogWait) distribution per logging mode at a moderate load.
func Predictability(o Options) *metrics.Table {
	o = o.withDefaults()
	t := &metrics.Table{
		Title:  "commit-wait predictability — 100 txn/s (all modes stable), write ratio 20%",
		Header: []string{"mode", "mean commit wait", "p95", "p99", "max", "miss"},
	}
	rows := []struct {
		name string
		mode core.LogMode
		md   bool
	}{
		{"2 nodes (ship)", core.LogShip, true},
		{"1 node (disk)", core.LogDisk, false},
		{"1 node (no disk)", core.LogDiscard, false},
		{"no logs", core.LogNone, false},
	}
	for _, row := range rows {
		wl := baseWorkload(o)
		wl.ArrivalRate = 100
		wl.WriteFraction = 0.2
		// One representative repetition with the percentile detail.
		r := sim.Run(sim.Config{Workload: wl, LogMode: row.mode, MirrorDisk: row.md})
		t.AddRow(row.name,
			r.MeanCommitWait.Round(10*time.Microsecond).String(),
			r.CommitWaitP95.Round(10*time.Microsecond).String(),
			r.CommitWaitP99.Round(10*time.Microsecond).String(),
			r.CommitWaitMax.Round(10*time.Microsecond).String(),
			metrics.Pct(r.MissRatio))
	}
	return t
}

// FailoverTimeline runs the dynamic version of the paper's
// normal-vs-transient comparison: a two-node system at a load its
// shipping mode handles comfortably loses its mirror mid-session and
// must switch to direct disk logging. The per-second series shows the
// commit-wait step and the miss-ratio surge the moment the disk lands on
// the critical path.
func FailoverTimeline(o Options, rate float64, failAt time.Duration) *metrics.Table {
	o = o.withDefaults()
	wl := baseWorkload(o)
	wl.ArrivalRate = rate
	wl.WriteFraction = 0.2
	r := sim.Run(sim.Config{
		Workload:     wl,
		LogMode:      core.LogShip,
		MirrorDisk:   true,
		FailMirrorAt: failAt,
	})
	t := &metrics.Table{
		Title:  fmt.Sprintf("failover timeline — %.0f txn/s, mirror dies at t=%v", rate, failAt),
		Header: []string{"second", "committed", "missed", "mean commit wait"},
	}
	for _, b := range r.Timeline {
		t.AddRow(
			fmt.Sprintf("%d", b.Second),
			fmt.Sprintf("%d", b.Committed),
			fmt.Sprintf("%d", b.Missed),
			b.MeanCommitWait.Round(10*time.Microsecond).String(),
		)
	}
	return t
}
