package experiments

import (
	"fmt"
	"math/rand"
	"time"

	rodain "repro"
	"repro/internal/metrics"
	"repro/internal/service"
	"repro/internal/telecom"
)

// FrontendResult is one cell of the pipelined-front-end series: closed-
// loop throughput over real TCP connections at one (connections,
// pipeline depth) point. Depth 1 is the serial ablation — one request
// in flight per connection, the pre-pipelining front end — and Speedup
// is measured against it at the same connection count.
type FrontendResult struct {
	Conns      int
	Depth      int
	Requests   int
	Misses     int
	Errors     int
	Elapsed    time.Duration
	Throughput float64 // requests per second
	Speedup    float64 // vs depth 1 at the same connection count
}

// Frontend measures the service front end end to end: a populated
// single node behind the line protocol, driven closed-loop by conns
// connections each keeping depth requests in flight, over a telecom mix
// of 90% GET lookups and 10% SET updates. The depth sweep shows what
// pipelining buys over the one-request-per-round-trip ablation: with
// several requests parsed ahead, lookups from one connection overlap on
// the worker pool and responses coalesce into batched writes.
func Frontend(objects, requests, conns int, depths []int) ([]FrontendResult, error) {
	if objects <= 0 {
		objects = 1024
	}
	if requests <= 0 {
		requests = 20000
	}
	if conns <= 0 {
		conns = 4
	}
	if len(depths) == 0 {
		depths = []int{1, 2, 4, 8, 16}
	}
	var out []FrontendResult
	var serial float64
	for _, depth := range depths {
		r, err := frontendPoint(objects, requests, conns, depth)
		if err != nil {
			return out, err
		}
		if depth == 1 {
			serial = r.Throughput
		}
		if serial > 0 {
			r.Speedup = r.Throughput / serial
		}
		out = append(out, r)
	}
	return out, nil
}

func frontendPoint(objects, requests, conns, depth int) (FrontendResult, error) {
	db, err := rodain.Open(rodain.Options{
		Durability: rodain.DurNone, Workers: 4, MaxActive: 512,
	})
	if err != nil {
		return FrontendResult{}, err
	}
	defer db.Close()
	for i := 0; i < objects; i++ {
		db.Load(rodain.ObjectID(i), telecom.Encode(&telecom.Entry{
			Routed: fmt.Sprintf("+35850%07d", i), Weight: 100, Active: true, Version: 1,
		}))
	}
	srv := service.NewServerConfig(db, service.Config{PipelineDepth: depth, Workers: 16})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return FrontendResult{}, err
	}
	defer srv.Close()

	rngs := make([]*rand.Rand, conns)
	for c := range rngs {
		rngs[c] = rand.New(rand.NewSource(int64(c)*15485863 + 1))
	}
	line := func(c, i int) string {
		if i == 0 {
			return "DEADLINE 5000" // closed loop measures throughput, not misses
		}
		rng := rngs[c]
		if rng.Intn(100) < 90 {
			return fmt.Sprintf("GET %d", rng.Intn(objects))
		}
		return fmt.Sprintf("REROUTE %d +35840%07d", rng.Intn(objects), rng.Intn(objects))
	}
	res, err := service.GenerateLoad(addr, conns, depth, requests, 2*time.Second, line)
	if err != nil {
		return FrontendResult{}, err
	}
	return FrontendResult{
		Conns: conns, Depth: depth,
		Requests: res.Requests, Misses: res.Misses, Errors: res.Errors,
		Elapsed: res.Elapsed, Throughput: res.Throughput,
	}, nil
}

// FrontendTable renders the depth sweep, depth-1 ablation first so the
// speedup column reads as "what pipelining buys".
func FrontendTable(rs []FrontendResult) *metrics.Table {
	t := &metrics.Table{
		Title:  "pipelined front end — closed-loop service throughput, 90% GET mix",
		Header: []string{"conns", "depth", "requests", "misses", "errors", "elapsed", "req/sec", "speedup"},
	}
	for _, r := range rs {
		speed := ""
		if r.Depth != 1 && r.Speedup > 0 {
			speed = fmt.Sprintf("%.2fx", r.Speedup)
		}
		t.AddRow(
			fmt.Sprintf("%d", r.Conns),
			fmt.Sprintf("%d", r.Depth),
			fmt.Sprintf("%d", r.Requests),
			fmt.Sprintf("%d", r.Misses),
			fmt.Sprintf("%d", r.Errors),
			r.Elapsed.Round(time.Millisecond).String(),
			fmt.Sprintf("%.0f", r.Throughput),
			speed,
		)
	}
	return t
}
