package experiments

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/logstore"
	"repro/internal/metrics"
	"repro/internal/store"
)

// OCCScalingResult is one cell of the controller-sharding series: real
// engine commit throughput with Workers executor goroutines under a
// given write mix.
type OCCScalingResult struct {
	Workers    int
	WritePct   int
	Txns       int
	Committed  uint64
	Elapsed    time.Duration
	Throughput float64 // committed transactions per second
	Speedup    float64 // vs the first (usually 1) worker count of the same mix
}

// OCCScaling measures multicore commit throughput through the whole
// engine — scheduler, sharded OCC validation, write phase, log-record
// building (LogDiscard, so no mirror or disk noise) — as a function of
// the worker count and write mix. With the sharded controller the only
// global section left on the commit path is the short validation
// ticket, so throughput should rise with workers on multicore hardware;
// on a single-CPU host the series mainly demonstrates that extra
// workers do not cost throughput.
func OCCScaling(objects, txns int, workers, writePcts []int) ([]OCCScalingResult, error) {
	if objects <= 0 {
		objects = 1024
	}
	if txns <= 0 {
		txns = 20000
	}
	if len(workers) == 0 {
		workers = []int{1, 2, 4, 8}
	}
	if len(writePcts) == 0 {
		writePcts = []int{10, 60}
	}
	var out []OCCScalingResult
	for _, pct := range writePcts {
		var base float64
		for i, w := range workers {
			r, err := occScalingPoint(objects, txns, w, pct)
			if err != nil {
				return out, err
			}
			if i == 0 {
				base = r.Throughput
			}
			if base > 0 {
				r.Speedup = r.Throughput / base
			}
			out = append(out, r)
		}
	}
	return out, nil
}

func occScalingPoint(objects, txns, workers, writePct int) (OCCScalingResult, error) {
	db := store.New()
	for i := 0; i < objects; i++ {
		db.Put(store.ObjectID(i), []byte{0, 0, 0, 0})
	}
	n := core.NewNode("occscaling", core.Config{Workers: workers, MaxRestarts: 100}, db, logstore.NewMem())
	if err := n.ServePrimary("", core.LogDiscard); err != nil {
		return OCCScalingResult{}, err
	}
	defer n.Close()

	var committed atomic.Uint64
	val := []byte{1, 2, 3, 4}
	per := txns / workers
	if per == 0 {
		per = 1
	}
	var wg sync.WaitGroup
	//rodain:allow wallclock (benchmark harness: measures real elapsed time of real work)
	start := time.Now()
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)*6700417 + 1))
			for i := 0; i < per; i++ {
				// Pre-draw the op script so restarts replay the same
				// accesses (the body must be a pure function of its reads).
				ops := make([]int, 6)
				for j := range ops {
					ops[j] = rng.Intn(100)*objects + rng.Intn(objects)
				}
				err := n.Execute(core.Request{Do: func(tx *core.Tx) error {
					for _, op := range ops {
						obj := store.ObjectID(op % objects)
						if op/objects < writePct {
							if err := tx.Write(obj, val); err != nil {
								return err
							}
						} else if _, err := tx.ReadView(obj); err != nil {
							return err
						}
					}
					return nil
				}})
				if err == nil {
					committed.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	//rodain:allow wallclock (benchmark harness: measures real elapsed time of real work)
	elapsed := time.Since(start)
	return OCCScalingResult{
		Workers: workers, WritePct: writePct, Txns: per * workers,
		Committed: committed.Load(), Elapsed: elapsed,
		Throughput: float64(committed.Load()) / elapsed.Seconds(),
	}, nil
}

// OCCScalingTable renders the series grouped by write mix.
func OCCScalingTable(rs []OCCScalingResult) *metrics.Table {
	t := &metrics.Table{
		Title:  "controller sharding — engine commit throughput vs workers and write mix",
		Header: []string{"write %", "workers", "txns", "committed", "elapsed", "commits/sec", "speedup"},
	}
	for _, r := range rs {
		t.AddRow(
			fmt.Sprintf("%d", r.WritePct),
			fmt.Sprintf("%d", r.Workers),
			fmt.Sprintf("%d", r.Txns),
			fmt.Sprintf("%d", r.Committed),
			r.Elapsed.Round(time.Millisecond).String(),
			fmt.Sprintf("%.0f", r.Throughput),
			fmt.Sprintf("%.2fx", r.Speedup),
		)
	}
	return t
}
