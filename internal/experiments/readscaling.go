package experiments

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/logstore"
	"repro/internal/metrics"
	"repro/internal/store"
)

// ReadScalingResult is one cell of the read-only fast-path series:
// real engine throughput for a read-dominated mix with the snapshot
// fast path on or ablated, plus how the read-only population actually
// committed (fast certifications vs fallbacks into full validation).
type ReadScalingResult struct {
	Workers     int
	FastPath    bool
	Txns        int
	Committed   uint64
	ROFast      uint64
	ROFallbacks uint64
	Elapsed     time.Duration
	Throughput  float64 // committed transactions per second
	Speedup     float64 // fast path vs ablation at the same worker count
}

// ReadScaling measures end-to-end throughput of a telecom-shaped
// read-dominated workload — 90% read-only requests (GET-style lookups)
// against 10% small updates — with the read-only snapshot fast path
// enabled and ablated. A fast-path read-only transaction skips OnRead
// shard registration, the validation serial ticket and the commit
// group; the ablation pays the full OCC pipeline for every request.
// LogDiscard keeps log-record building on the update path without
// mirror or disk noise, so the delta isolates the concurrency-control
// work the fast path removes.
func ReadScaling(objects, txns int, workers []int) ([]ReadScalingResult, error) {
	if objects <= 0 {
		objects = 1024
	}
	if txns <= 0 {
		txns = 20000
	}
	if len(workers) == 0 {
		workers = []int{1, 2, 4, 8}
	}
	var out []ReadScalingResult
	for _, w := range workers {
		var ablated float64
		for _, fast := range []bool{false, true} {
			r, err := readScalingPoint(objects, txns, w, fast)
			if err != nil {
				return out, err
			}
			if !fast {
				ablated = r.Throughput
			} else if ablated > 0 {
				r.Speedup = r.Throughput / ablated
			}
			out = append(out, r)
		}
	}
	return out, nil
}

func readScalingPoint(objects, txns, workers int, fastPath bool) (ReadScalingResult, error) {
	db := store.New()
	for i := 0; i < objects; i++ {
		db.Put(store.ObjectID(i), []byte{0, 0, 0, 0})
	}
	cfg := core.Config{Workers: workers, MaxRestarts: 100, NoReadOnlyFastPath: !fastPath}
	n := core.NewNode("readscaling", cfg, db, logstore.NewMem())
	if err := n.ServePrimary("", core.LogDiscard); err != nil {
		return ReadScalingResult{}, err
	}
	defer n.Close()

	var committed atomic.Uint64
	val := []byte{1, 2, 3, 4}
	per := txns / workers
	if per == 0 {
		per = 1
	}
	var wg sync.WaitGroup
	//rodain:allow wallclock (benchmark harness: measures real elapsed time of real work)
	start := time.Now()
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)*15485863 + 1))
			for i := 0; i < per; i++ {
				if rng.Intn(100) < 90 {
					// GET-style read-only request over a small key set.
					base := rng.Intn(objects - 4)
					err := n.Execute(core.Request{ReadOnly: true, Do: func(tx *core.Tx) error {
						for j := 0; j < 4; j++ {
							if _, err := tx.ReadView(store.ObjectID(base + j)); err != nil {
								return err
							}
						}
						return nil
					}})
					if err == nil {
						committed.Add(1)
					}
					continue
				}
				obj := store.ObjectID(rng.Intn(objects))
				err := n.Execute(core.Request{Do: func(tx *core.Tx) error {
					return tx.Write(obj, val)
				}})
				if err == nil {
					committed.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	//rodain:allow wallclock (benchmark harness: measures real elapsed time of real work)
	elapsed := time.Since(start)
	st := n.Engine().Controller().Stats()
	return ReadScalingResult{
		Workers: workers, FastPath: fastPath, Txns: per * workers,
		Committed: committed.Load(), ROFast: st.ROFastCommits, ROFallbacks: st.ROFallbacks,
		Elapsed:    elapsed,
		Throughput: float64(committed.Load()) / elapsed.Seconds(),
	}, nil
}

// ReadScalingTable renders the series grouped by worker count, ablation
// row first so the speedup column reads as "what the fast path buys".
func ReadScalingTable(rs []ReadScalingResult) *metrics.Table {
	t := &metrics.Table{
		Title:  "read-only fast path — engine throughput, 90% read-only mix",
		Header: []string{"workers", "fast path", "txns", "committed", "ro fast", "ro fallback", "elapsed", "commits/sec", "speedup"},
	}
	for _, r := range rs {
		mode, speed := "off", ""
		if r.FastPath {
			mode = "on"
			speed = fmt.Sprintf("%.2fx", r.Speedup)
		}
		t.AddRow(
			fmt.Sprintf("%d", r.Workers),
			mode,
			fmt.Sprintf("%d", r.Txns),
			fmt.Sprintf("%d", r.Committed),
			fmt.Sprintf("%d", r.ROFast),
			fmt.Sprintf("%d", r.ROFallbacks),
			r.Elapsed.Round(time.Millisecond).String(),
			fmt.Sprintf("%.0f", r.Throughput),
			speed,
		)
	}
	return t
}
