package experiments

import (
	"bytes"
	"fmt"
	"io"
	"time"

	"repro/internal/metrics"
	"repro/internal/store"
	"repro/internal/wal"
)

// RecoveryScalingResult is one cell of the parallel-redo takeover
// series: how long replaying a log of LogRecords update transactions
// takes with Workers apply workers.
type RecoveryScalingResult struct {
	Objects    int
	LogRecords int
	Workers    int
	Replay     time.Duration
	Speedup    float64 // sequential replay time / this replay time
}

// RecoveryScaling measures the recovery axis the parallel redo pipeline
// attacks: the time to replay a log tail back into an in-memory store,
// as a function of log size and worker count. The paper's availability
// story needs a failed node back in mirror role quickly; replay time is
// the dominant term once the log has grown, and with conflict-aware
// parallel redo it should flatten as workers are added (on real
// multicore hardware — a single-CPU host shows only the scheduling
// overhead). The log is built the way a mirror stores it (groups in
// validation order, ~5 writes per transaction over a uniform key space),
// and replay correctness is checked against the sequential pass.
func RecoveryScaling(objects int, logSizes, workers []int) ([]RecoveryScalingResult, error) {
	if objects <= 0 {
		objects = 30000
	}
	if len(logSizes) == 0 {
		logSizes = []int{10000, 50000, 200000}
	}
	if len(workers) == 0 {
		workers = []int{1, 2, 4, 8}
	}
	var out []RecoveryScalingResult
	for _, n := range logSizes {
		logBytes := updateLog(objects, n)
		seq := store.New()
		//rodain:allow wallclock (benchmark harness: measures real elapsed time of real work)
		seqStart := time.Now()
		if _, err := wal.Recover(bytes.NewReader(logBytes), seq); err != nil {
			return out, err
		}
		//rodain:allow wallclock (benchmark harness: measures real elapsed time of real work)
		seqTime := time.Since(seqStart)
		want := seq.Checksum()
		for _, w := range workers {
			db := store.New()
			//rodain:allow wallclock (benchmark harness: measures real elapsed time of real work)
			start := time.Now()
			if _, err := wal.ParallelRecover(bytes.NewReader(logBytes), db, w); err != nil {
				return out, err
			}
			//rodain:allow wallclock (benchmark harness: measures real elapsed time of real work)
			elapsed := time.Since(start)
			if w <= 1 {
				elapsed = seqTime // the measured sequential pass is the baseline
			}
			if db.Checksum() != want {
				return out, fmt.Errorf("experiments: parallel replay diverged at %d workers", w)
			}
			out = append(out, RecoveryScalingResult{
				Objects: objects, LogRecords: n, Workers: w,
				Replay:  elapsed,
				Speedup: seqTime.Seconds() / elapsed.Seconds(),
			})
		}
	}
	return out, nil
}

// updateLog builds a validation-order log of n single-to-many-write
// update transactions over a key space of the given size.
func updateLog(objects, n int) []byte {
	var buf bytes.Buffer
	img := []byte("updated-value-0123456789abcdef")
	for i := 1; i <= n; i++ {
		writes := 1 + i%5
		for w := 0; w < writes; w++ {
			mustEncode(&buf, &wal.Record{
				Type: wal.TypeWrite, TxnID: txnID(i),
				ObjectID:   store.ObjectID((i*7 + w*131) % objects),
				AfterImage: img,
			})
		}
		mustEncode(&buf, &wal.Record{
			Type: wal.TypeCommit, TxnID: txnID(i),
			SerialOrder: uint64(i), CommitTS: uint64(i) * 65536,
		})
	}
	return buf.Bytes()
}

// RecoveryScalingTable renders the series grouped by log size.
func RecoveryScalingTable(rs []RecoveryScalingResult) *metrics.Table {
	t := &metrics.Table{
		Title:  "parallel redo — log replay time vs size and workers (rejoin/restart axis)",
		Header: []string{"objects", "log txns", "workers", "replay", "speedup"},
	}
	for _, r := range rs {
		t.AddRow(
			fmt.Sprintf("%d", r.Objects),
			fmt.Sprintf("%d", r.LogRecords),
			fmt.Sprintf("%d", r.Workers),
			r.Replay.Round(100*time.Microsecond).String(),
			fmt.Sprintf("%.2fx", r.Speedup),
		)
	}
	return t
}

// mustEncode appends a record to a synthetic log fixture. The targets
// are in-memory buffers and the records are well formed, so a failure
// here is a bug in the fixture builder, not an I/O condition callers
// could handle.
func mustEncode(w io.Writer, r *wal.Record) {
	if err := wal.Encode(w, r); err != nil {
		panic(fmt.Sprintf("experiments: encode fixture record: %v", err))
	}
}
