package experiments

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/logstore"
	"repro/internal/metrics"
	"repro/internal/store"
	"repro/internal/transport"
	"repro/internal/txn"
	"repro/internal/wal"
)

// ShipScalingResult is one cell of the group-commit shipping series:
// commit throughput through the full Log Writer → wire → mirror →
// cumulative-ack loop, cohort-batched versus strictly per transaction.
type ShipScalingResult struct {
	Mode       string // "grouped" or "pertxn"
	Committers int
	Txns       int
	Elapsed    time.Duration
	Throughput float64 // committed transactions per second
	MeanCohort float64 // groups per wire batch
	QueueP99   time.Duration
}

// ShipScaling measures the primary's commit path against a real mirror
// engine over an in-process pipe, as the number of concurrent committers
// grows. mode=grouped uses the adaptive cohort collector; mode=pertxn
// caps every wire batch at one group — the pre-group-commit behavior.
// On a single-CPU host the committers time-share, but the batching win
// (fewer flushes and wakeups per commit) still shows as higher
// throughput and cohort sizes above one.
func ShipScaling(txns int, committers []int) ([]ShipScalingResult, error) {
	if txns <= 0 {
		txns = 20000
	}
	if len(committers) == 0 {
		committers = []int{1, 2, 4, 8, 16}
	}
	var out []ShipScalingResult
	for _, mode := range []string{"grouped", "pertxn"} {
		for _, c := range committers {
			r, err := shipScalingPoint(mode, txns, c)
			if err != nil {
				return out, err
			}
			out = append(out, r)
		}
	}
	return out, nil
}

func shipScalingPoint(mode string, txns, committers int) (ShipScalingResult, error) {
	opts := core.ShipperOptions{
		AckTimeout: 30 * time.Second,
		Heartbeat:  50 * time.Millisecond,
	}
	if mode == "pertxn" {
		opts.MaxCohort = 1
	}
	a, b := transport.Pipe()
	m := core.NewMirrorEngine(core.Config{MirrorSyncEvery: -1}, store.New(), logstore.NewMem())
	errc := make(chan error, 1)
	go func() { errc <- m.Run(b) }()
	hello, err := a.Recv()
	if err != nil || hello.Type != transport.MsgHello {
		return ShipScalingResult{}, fmt.Errorf("mirror hello: %v", err)
	}
	s := core.NewMirrorShipper(a, 1, opts)
	s.Start()
	defer func() {
		s.Close()
		b.Close()
		<-errc
	}()

	img := make([]byte, 64)
	var next atomic.Uint64
	var commitErr atomic.Value
	var wg sync.WaitGroup
	//rodain:allow wallclock (benchmark harness: measures real elapsed time of real work)
	start := time.Now()
	for w := 0; w < committers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				serial := next.Add(1)
				if serial > uint64(txns) {
					return
				}
				g := &wal.Group{
					Writes: []*wal.Record{
						{Type: wal.TypeWrite, TxnID: txn.ID(serial), ObjectID: store.ObjectID(serial % 1024), AfterImage: img},
					},
					Commit: &wal.Record{Type: wal.TypeCommit, TxnID: txn.ID(serial), SerialOrder: serial, CommitTS: serial * 65536},
				}
				if err := s.Commit(g); err != nil {
					commitErr.Store(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	//rodain:allow wallclock (benchmark harness: measures real elapsed time of real work)
	elapsed := time.Since(start)
	if err, _ := commitErr.Load().(error); err != nil {
		return ShipScalingResult{}, err
	}
	st := s.Stats()
	mean := 0.0
	if st.Cohorts > 0 {
		mean = float64(st.GroupsShipped) / float64(st.Cohorts)
	}
	return ShipScalingResult{
		Mode: mode, Committers: committers, Txns: txns, Elapsed: elapsed,
		Throughput: float64(txns) / elapsed.Seconds(),
		MeanCohort: mean,
		QueueP99:   s.QueueDelay().Quantile(0.99),
	}, nil
}

// ShipScalingTable renders the shipping series.
func ShipScalingTable(rs []ShipScalingResult) *metrics.Table {
	t := &metrics.Table{
		Title:  "shipscaling — grouped vs per-txn log shipping, real mirror over in-process pipe",
		Header: []string{"mode", "committers", "txns", "elapsed", "commits/sec", "groups/batch", "queue p99"},
	}
	for _, r := range rs {
		t.AddRow(
			r.Mode,
			fmt.Sprintf("%d", r.Committers),
			fmt.Sprintf("%d", r.Txns),
			r.Elapsed.Round(time.Millisecond).String(),
			fmt.Sprintf("%.0f", r.Throughput),
			fmt.Sprintf("%.2f", r.MeanCohort),
			r.QueueP99.Round(time.Microsecond).String(),
		)
	}
	return t
}

// TransientFsyncResult is one cell of the transient-primary series: the
// leader/follower group-fsync committer against the per-commit-sync
// DiskCommitter over a device with realistic sync latency.
type TransientFsyncResult struct {
	Mode           string // "group" or "persync"
	Committers     int
	Txns           int
	Elapsed        time.Duration
	Throughput     float64
	Syncs          uint64
	SyncsPerCommit float64
	MeanCohort     float64
}

// TransientFsync measures the takeover-path commit cost: after the
// mirror is lost, every commit must reach the local disk. Group fsync
// amortizes the device sync across the cohort, so syncs/commit falls
// well below one as committers grow while per-sync stays pinned at one.
func TransientFsync(txns int, committers []int, syncDelay time.Duration) ([]TransientFsyncResult, error) {
	if txns <= 0 {
		txns = 4000
	}
	if len(committers) == 0 {
		committers = []int{1, 2, 4, 8, 16}
	}
	if syncDelay <= 0 {
		syncDelay = 100 * time.Microsecond
	}
	var out []TransientFsyncResult
	for _, mode := range []string{"group", "persync"} {
		for _, c := range committers {
			r, err := transientFsyncPoint(mode, txns, c, syncDelay)
			if err != nil {
				return out, err
			}
			out = append(out, r)
		}
	}
	return out, nil
}

func transientFsyncPoint(mode string, txns, committers int, syncDelay time.Duration) (TransientFsyncResult, error) {
	mem := logstore.NewMem()
	slow := logstore.NewDelayed(mem, syncDelay)
	var c core.Committer
	var gc *core.GroupCommitter
	if mode == "group" {
		gc = core.NewGroupCommitter(slow, core.GroupOptions{})
		c = gc
	} else {
		c = core.NewDiskCommitter(slow, 0)
	}
	defer c.Close()

	img := make([]byte, 64)
	var next atomic.Uint64
	var commitErr atomic.Value
	var wg sync.WaitGroup
	//rodain:allow wallclock (benchmark harness: measures real elapsed time of real work)
	start := time.Now()
	for w := 0; w < committers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				serial := next.Add(1)
				if serial > uint64(txns) {
					return
				}
				g := &wal.Group{
					Writes: []*wal.Record{
						{Type: wal.TypeWrite, TxnID: txn.ID(serial), ObjectID: store.ObjectID(serial % 1024), AfterImage: img},
					},
					Commit: &wal.Record{Type: wal.TypeCommit, TxnID: txn.ID(serial), SerialOrder: serial, CommitTS: serial * 65536},
				}
				if err := c.Commit(g); err != nil {
					commitErr.Store(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	//rodain:allow wallclock (benchmark harness: measures real elapsed time of real work)
	elapsed := time.Since(start)
	if err, _ := commitErr.Load().(error); err != nil {
		return TransientFsyncResult{}, err
	}
	syncs := mem.Stats().Syncs
	mean := 1.0
	if gc != nil {
		if st := gc.Stats(); st.Cohorts > 0 {
			mean = float64(st.Commits) / float64(st.Cohorts)
		}
	}
	return TransientFsyncResult{
		Mode: mode, Committers: committers, Txns: txns, Elapsed: elapsed,
		Throughput:     float64(txns) / elapsed.Seconds(),
		Syncs:          syncs,
		SyncsPerCommit: float64(syncs) / float64(txns),
		MeanCohort:     mean,
	}, nil
}

// TransientFsyncTable renders the transient-primary series.
func TransientFsyncTable(rs []TransientFsyncResult) *metrics.Table {
	t := &metrics.Table{
		Title:  "shipscaling — transient primary: group fsync vs per-commit sync",
		Header: []string{"mode", "committers", "txns", "elapsed", "commits/sec", "syncs", "syncs/commit", "mean cohort"},
	}
	for _, r := range rs {
		t.AddRow(
			r.Mode,
			fmt.Sprintf("%d", r.Committers),
			fmt.Sprintf("%d", r.Txns),
			r.Elapsed.Round(time.Millisecond).String(),
			fmt.Sprintf("%.0f", r.Throughput),
			fmt.Sprintf("%d", r.Syncs),
			fmt.Sprintf("%.3f", r.SyncsPerCommit),
			fmt.Sprintf("%.2f", r.MeanCohort),
		)
	}
	return t
}
