package experiments

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/logstore"
	"repro/internal/metrics"
	"repro/internal/store"
	"repro/internal/txn"
	"repro/internal/wal"
	"repro/internal/workload"
)

// diskReadBandwidth models the sequential read rate of the prototype
// era's disk when a restarting node reloads its database image and log
// tail — the part of single-node recovery the paper says makes the
// database "down much longer".
const diskReadBandwidth = 20 << 20 // 20 MiB/s

// throttledReader limits r to a byte rate, simulating a disk read. It
// accumulates the owed delay and sleeps in ≥1 ms slices, because tiny
// per-read sleeps round up to the scheduler's granularity and would
// overstate the throttle by orders of magnitude.
type throttledReader struct {
	r       io.Reader
	perByte time.Duration
	debt    time.Duration
}

func newThrottledReader(r io.Reader, bytesPerSec int) *throttledReader {
	return &throttledReader{r: r, perByte: time.Second / time.Duration(bytesPerSec)}
}

func (t *throttledReader) Read(p []byte) (int, error) {
	n, err := t.r.Read(p)
	if n > 0 {
		t.debt += time.Duration(n) * t.perByte
		if t.debt >= time.Millisecond {
			//rodain:allow wallclock (benchmark harness: measures real elapsed time of real work)
			time.Sleep(t.debt)
			t.debt = 0
		}
	}
	return n, err
}

// TakeoverResult is one row of the availability comparison.
type TakeoverResult struct {
	Objects       int
	LogRecords    int
	TakeoverTime  time.Duration // crash → promoted node commits
	DetectionTime time.Duration // crash → takeover event (watchdog)
	RecoveryTime  time.Duration // load checkpoint + replay log from disk
}

// Takeover runs the availability experiment behind the paper's closing
// claim: "the Mirror Node can almost instantaneously serve incoming
// requests", while a node recovering from the backup on disk "would be
// down much longer". For each database size it measures (a) real mirror
// takeover on a live pair over loopback TCP and (b) restart recovery —
// reading a checkpoint plus log tail through a disk-bandwidth-limited
// reader.
func Takeover(sizes []int, logTail int) ([]TakeoverResult, error) {
	if len(sizes) == 0 {
		sizes = []int{10000, 30000, 100000}
	}
	if logTail <= 0 {
		logTail = 2000
	}
	var out []TakeoverResult
	for _, size := range sizes {
		r, err := takeoverOne(size, logTail)
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
	return out, nil
}

func takeoverOne(objects, logTail int) (TakeoverResult, error) {
	res := TakeoverResult{Objects: objects, LogRecords: logTail}

	// --- (b) restart recovery through the disk --------------------------
	wl := workload.Default()
	wl.DBSize = objects
	db := store.New()
	workload.Populate(db, wl)

	var image bytes.Buffer
	if err := wal.WriteCheckpoint(&image, db.Snapshot(), 0); err != nil {
		return res, err
	}
	// A log tail of update transactions past the checkpoint.
	var tail bytes.Buffer
	for i := 0; i < logTail; i++ {
		id := store.ObjectID(i % objects)
		if err := wal.Encode(&tail, &wal.Record{
			Type: wal.TypeWrite, TxnID: 1 + txnID(i), ObjectID: id,
			AfterImage: []byte(fmt.Sprintf("upd-%d", i)),
		}); err != nil {
			return res, err
		}
		if err := wal.Encode(&tail, &wal.Record{
			Type: wal.TypeCommit, TxnID: 1 + txnID(i),
			SerialOrder: uint64(i + 1), CommitTS: uint64(i+1) * 65536,
		}); err != nil {
			return res, err
		}
	}

	//rodain:allow wallclock (benchmark harness: measures real elapsed time of real work)
	start := time.Now()
	fresh := store.New()
	snap, serial, err := wal.ReadCheckpoint(bufio.NewReaderSize(
		newThrottledReader(bytes.NewReader(image.Bytes()), diskReadBandwidth), 64<<10))
	if err != nil {
		return res, err
	}
	fresh.LoadSnapshot(snap)
	_ = serial
	if _, err := wal.Recover(bufio.NewReaderSize(
		newThrottledReader(bytes.NewReader(tail.Bytes()), diskReadBandwidth), 64<<10), fresh); err != nil {
		return res, err
	}
	//rodain:allow wallclock (benchmark harness: measures real elapsed time of real work)
	res.RecoveryTime = time.Since(start)

	// --- (a) live mirror takeover ---------------------------------------
	cfg := core.Config{
		Workers:         2,
		HeartbeatEvery:  25 * time.Millisecond,
		HeartbeatMisses: 4,
	}
	pdb := store.New()
	workload.Populate(pdb, wl)
	primary := core.NewNode("primary", cfg, pdb, logstore.NewMem())
	if err := primary.ServePrimary("127.0.0.1:0", core.LogDisk); err != nil {
		return res, err
	}
	mirror := core.NewNode("mirror", cfg, store.New(), logstore.NewMem())
	go mirror.RunMirror(primary.ReplAddr(), "")
	defer mirror.Close()

	if err := waitFor(primary, core.EventMirrorAttached, 10*time.Second); err != nil {
		return res, err
	}
	// A little committed traffic before the failure.
	for i := 0; i < 20; i++ {
		if err := primary.Execute(core.Request{Deadline: time.Second, Do: func(tx *core.Tx) error {
			return tx.Write(store.ObjectID(i), []byte("pre-crash"))
		}}); err != nil {
			return res, err
		}
	}

	//rodain:allow wallclock (benchmark harness: measures real elapsed time of real work)
	crash := time.Now()
	primary.Crash()
	if err := waitFor(mirror, core.EventTakeover, 10*time.Second); err != nil {
		return res, err
	}
	//rodain:allow wallclock (benchmark harness: measures real elapsed time of real work)
	res.DetectionTime = time.Since(crash)
	// First transaction on the promoted node.
	if err := mirror.Execute(core.Request{Deadline: time.Second, Do: func(tx *core.Tx) error {
		return tx.Write(1, []byte("post-takeover"))
	}}); err != nil {
		return res, err
	}
	//rodain:allow wallclock (benchmark harness: measures real elapsed time of real work)
	res.TakeoverTime = time.Since(crash)
	return res, nil
}

func txnID(i int) txn.ID { return txn.ID(i) }

func waitFor(n *core.Node, kind core.EventKind, within time.Duration) error {
	//rodain:allow wallclock (benchmark harness: measures real elapsed time of real work)
	deadline := time.After(within)
	for {
		select {
		case ev := <-n.Events():
			if ev.Kind == kind {
				return nil
			}
		case <-deadline:
			return fmt.Errorf("experiments: node %s: no %v within %v", n.Name(), kind, within)
		}
	}
}

// TakeoverTable renders the availability comparison.
func TakeoverTable(rs []TakeoverResult) *metrics.Table {
	t := &metrics.Table{
		Title:  "takeover vs restart recovery (availability, §4 closing claim)",
		Header: []string{"objects", "log tail", "mirror takeover", "(detection)", "restart recovery"},
	}
	for _, r := range rs {
		t.AddRow(
			fmt.Sprintf("%d", r.Objects),
			fmt.Sprintf("%d", r.LogRecords),
			r.TakeoverTime.Round(100*time.Microsecond).String(),
			r.DetectionTime.Round(100*time.Microsecond).String(),
			r.RecoveryTime.Round(time.Millisecond).String(),
		)
	}
	return t
}

// ReorderAblation quantifies the mirror's validation-order reordering:
// recovery of a grouped (reordered) log needs to buffer only one
// transaction's records, an interleaved log needs far more.
func ReorderAblation(txns, writesPer int) *metrics.Table {
	grouped := new(bytes.Buffer)
	interleaved := new(bytes.Buffer)

	// Grouped: writes immediately followed by their commit record.
	for i := 0; i < txns; i++ {
		id := txnID(i) + 1
		for w := 0; w < writesPer; w++ {
			mustEncode(grouped, &wal.Record{Type: wal.TypeWrite, TxnID: 1 + txnID(i), ObjectID: store.ObjectID(w), AfterImage: []byte{byte(i)}})
		}
		mustEncode(grouped, &wal.Record{Type: wal.TypeCommit, TxnID: 1 + txnID(i), SerialOrder: uint64(id), CommitTS: uint64(id) * 65536})
	}
	// Interleaved: all writes first, then all commit records — the
	// worst case an unordered stream can produce.
	for i := 0; i < txns; i++ {
		for w := 0; w < writesPer; w++ {
			mustEncode(interleaved, &wal.Record{Type: wal.TypeWrite, TxnID: 1 + txnID(i), ObjectID: store.ObjectID(w), AfterImage: []byte{byte(i)}})
		}
	}
	for i := 0; i < txns; i++ {
		id := txnID(i) + 1
		mustEncode(interleaved, &wal.Record{Type: wal.TypeCommit, TxnID: 1 + txnID(i), SerialOrder: uint64(id), CommitTS: uint64(id) * 65536})
	}

	t := &metrics.Table{
		Title:  "mirror reordering ablation — recovery buffering",
		Header: []string{"log layout", "records", "peak buffered", "applied"},
	}
	for _, c := range []struct {
		name string
		buf  *bytes.Buffer
	}{{"reordered (as stored by mirror)", grouped}, {"interleaved (no reordering)", interleaved}} {
		db := store.New()
		st, err := wal.Recover(bytes.NewReader(c.buf.Bytes()), db)
		if err != nil {
			continue
		}
		t.AddRow(c.name,
			fmt.Sprintf("%d", txns*(writesPer+1)),
			fmt.Sprintf("%d", st.PeakBuffered),
			fmt.Sprintf("%d", st.Applied))
	}
	return t
}

// GroupCommitAblation measures transient-mode commit throughput with and
// without group commit on a slow log device.
func GroupCommitAblation(diskLatency time.Duration, windows []time.Duration, commits int) *metrics.Table {
	t := &metrics.Table{
		Title:  fmt.Sprintf("group commit ablation — %v disk, %d concurrent committers", diskLatency, commits),
		Header: []string{"window", "wall time", "device syncs", "commits/s"},
	}
	for _, w := range windows {
		mem := logstore.NewMem()
		slow := logstore.NewDelayed(mem, diskLatency)
		d := core.NewDiskCommitter(slow, w)
		//rodain:allow wallclock (benchmark harness: measures real elapsed time of real work)
		start := time.Now()
		done := make(chan error, commits)
		for i := 0; i < commits; i++ {
			go func(i int) {
				done <- d.Commit(&wal.Group{
					Writes: []*wal.Record{{Type: wal.TypeWrite, TxnID: 1 + txnID(i), ObjectID: store.ObjectID(i), AfterImage: []byte("v")}},
					Commit: &wal.Record{Type: wal.TypeCommit, TxnID: 1 + txnID(i), SerialOrder: uint64(i + 1), CommitTS: uint64(i+1) * 65536},
				})
			}(i)
		}
		for i := 0; i < commits; i++ {
			if err := <-done; err != nil {
				break
			}
		}
		//rodain:allow wallclock (benchmark harness: measures real elapsed time of real work)
		elapsed := time.Since(start)
		d.Close()
		t.AddRow(w.String(), elapsed.Round(time.Millisecond).String(),
			fmt.Sprintf("%d", mem.Stats().Syncs),
			fmt.Sprintf("%.0f", float64(commits)/elapsed.Seconds()))
	}
	return t
}
