// Package logstore provides the stable-storage backends a RODAIN node
// writes its transaction log to: a real file, an in-memory store for
// tests (which models the synced/unsynced distinction of a crash), a
// null device for "logging disabled" configurations, and a delaying
// wrapper that emulates a slow disk on the commit path.
package logstore

import (
	"bufio"
	"bytes"
	"errors"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/simtime"
	"repro/internal/wal"
)

// Store is an append-only log device. Append buffers data; Sync forces
// everything appended so far onto stable media. Implementations are safe
// for concurrent use.
type Store interface {
	// Append adds p to the log buffer.
	Append(p []byte) error
	// AppendBatch adds every chunk to the log buffer, in order, as one
	// vectored operation: a group-commit cohort lands with one call (and
	// one lock acquisition / syscall batch) instead of N.
	AppendBatch(chunks [][]byte) error
	// Sync forces all appended data to stable storage.
	Sync() error
	// Close syncs and releases the store.
	Close() error
}

// Stats reports I/O accounting for a store that supports it.
type Stats struct {
	BytesAppended uint64
	Syncs         uint64
}

// ErrClosed is returned for operations on a closed store.
var ErrClosed = errors.New("logstore: closed")

// Resetter is implemented by stores whose contents can be discarded —
// used after a checkpoint makes the old log tail redundant.
type Resetter interface {
	// Reset discards everything appended so far.
	Reset() error
}

// Reset truncates s if it supports truncation; it reports whether it
// did. A Delayed wrapper is unwrapped first: capability detection must
// see the real device, not the latency shim.
func Reset(s Store) (bool, error) {
	if d, ok := s.(*Delayed); ok {
		return Reset(d.Inner)
	}
	r, ok := s.(Resetter)
	if !ok {
		return false, nil
	}
	return true, r.Reset()
}

// SerialTruncator is implemented by stores that can drop a log prefix
// made redundant by a durable checkpoint: everything dropped must lie
// below the given commit serial. Unlike Reset, data above the serial —
// which the checkpoint does not cover — survives.
type SerialTruncator interface {
	// TruncateBelow drops log data containing only groups whose commit
	// serial is ≤ serial, and returns the number of bytes dropped. It is
	// free to drop less than the maximum (truncation is an optimization;
	// keeping extra log only costs replay time), never more.
	TruncateBelow(serial uint64) (int, error)
}

// TruncateBelow drops the ≤ serial prefix of s if it supports serial
// truncation; it reports whether it did and how many bytes went away.
// A Delayed wrapper is unwrapped first, like in Reset.
func TruncateBelow(s Store, serial uint64) (bool, int, error) {
	if d, ok := s.(*Delayed); ok {
		return TruncateBelow(d.Inner, serial)
	}
	t, ok := s.(SerialTruncator)
	if !ok {
		return false, 0, nil
	}
	n, err := t.TruncateBelow(serial)
	return true, n, err
}

// --- File -------------------------------------------------------------------

// File is a file-backed log store using buffered appends and fsync.
// The I/O counters are atomics so Stats never blocks behind the device:
// a monitoring read during a slow fsync (which holds mu for its whole
// duration) must not stall.
type File struct {
	mu     sync.Mutex
	f      *os.File
	w      *bufio.Writer
	closed bool

	bytesAppended atomic.Uint64
	syncs         atomic.Uint64
}

// OpenFile opens (creating, appending) the log file at path.
func OpenFile(path string) (*File, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &File{f: f, w: bufio.NewWriterSize(f, 1<<16)}, nil
}

// Append implements Store.
func (s *File) Append(p []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	n, err := s.w.Write(p)
	s.bytesAppended.Add(uint64(n))
	return err
}

// AppendBatch implements Store: every chunk goes into the write buffer
// under one lock acquisition.
func (s *File) AppendBatch(chunks [][]byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	var total uint64
	for _, p := range chunks {
		n, err := s.w.Write(p)
		total += uint64(n)
		if err != nil {
			s.bytesAppended.Add(total)
			return err
		}
	}
	s.bytesAppended.Add(total)
	return nil
}

// Sync implements Store.
func (s *File) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if err := s.w.Flush(); err != nil {
		return err
	}
	s.syncs.Add(1)
	return s.f.Sync()
}

// Close implements Store.
func (s *File) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if err := s.w.Flush(); err != nil {
		s.f.Close()
		return err
	}
	if err := s.f.Sync(); err != nil {
		s.f.Close()
		return err
	}
	return s.f.Close()
}

// Stats returns I/O accounting. It is lock-free: safe to call while an
// Append or a long device Sync is in flight.
func (s *File) Stats() Stats {
	return Stats{
		BytesAppended: s.bytesAppended.Load(),
		Syncs:         s.syncs.Load(),
	}
}

// Reset implements Resetter: the file is truncated to zero length.
func (s *File) Reset() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	s.w.Reset(s.f)
	if err := s.f.Truncate(0); err != nil {
		return err
	}
	_, err := s.f.Seek(0, 0)
	return err
}

// --- Mem --------------------------------------------------------------------

// Mem is an in-memory log store. It distinguishes appended-but-unsynced
// data from synced data so tests can model exactly what survives a
// crash.
type Mem struct {
	mu     sync.Mutex
	data   []byte
	synced int // bytes guaranteed on "stable media"
	stats  Stats
	closed bool
}

// NewMem returns an empty in-memory store.
func NewMem() *Mem { return &Mem{} }

// Append implements Store.
func (m *Mem) Append(p []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	m.data = append(m.data, p...)
	m.stats.BytesAppended += uint64(len(p))
	return nil
}

// AppendBatch implements Store: all chunks land under one lock, so a
// concurrent Sync can never split a cohort.
func (m *Mem) AppendBatch(chunks [][]byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	for _, p := range chunks {
		m.data = append(m.data, p...)
		m.stats.BytesAppended += uint64(len(p))
	}
	return nil
}

// Sync implements Store.
func (m *Mem) Sync() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	m.synced = len(m.data)
	m.stats.Syncs++
	return nil
}

// Close implements Store.
func (m *Mem) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.synced = len(m.data)
	m.closed = true
	return nil
}

// Bytes returns a copy of everything appended, synced or not.
func (m *Mem) Bytes() []byte {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]byte(nil), m.data...)
}

// SyncedBytes returns a copy of the data that had been synced — what a
// recovery after a crash would find.
func (m *Mem) SyncedBytes() []byte {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]byte(nil), m.data[:m.synced]...)
}

// Stats returns I/O accounting.
func (m *Mem) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// Reset implements Resetter.
func (m *Mem) Reset() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	m.data = m.data[:0]
	m.synced = 0
	return nil
}

// TruncateBelow implements SerialTruncator by decoding the stored
// stream and cutting at the last group boundary before any commit above
// serial: the dropped prefix holds only commits the checkpoint covers,
// and no write whose commit lies beyond the cut. The synced marker
// shifts with the data so crash modeling stays exact.
func (m *Mem) TruncateBelow(serial uint64) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return 0, ErrClosed
	}
	cut := 0
	open := make(map[uint64]int)
	r := bytes.NewReader(m.data)
	for {
		rec, err := wal.Decode(r)
		if err != nil {
			// Clean EOF, a partial tail record, or damage: stop scanning;
			// everything decoded so far determined the cut.
			break
		}
		switch rec.Type {
		case wal.TypeWrite, wal.TypeDelete:
			open[uint64(rec.TxnID)]++
		case wal.TypeAbort:
			delete(open, uint64(rec.TxnID))
		case wal.TypeCommit:
			if rec.SerialOrder > serial {
				// First uncovered group: the cut stands where it is.
				r = nil
			}
			delete(open, uint64(rec.TxnID))
		case wal.TypeHeartbeat:
			// no state
		}
		if r == nil {
			break
		}
		if len(open) == 0 {
			cut = len(m.data) - r.Len()
		}
	}
	if cut == 0 {
		return 0, nil
	}
	m.data = append(m.data[:0], m.data[cut:]...)
	if m.synced -= cut; m.synced < 0 {
		m.synced = 0
	}
	return cut, nil
}

// --- Null -------------------------------------------------------------------

// Null discards everything: the "logging disabled" configuration of the
// paper's optimal baseline.
type Null struct{}

// NewNull returns a discarding store.
func NewNull() Null { return Null{} }

// Append implements Store.
func (Null) Append([]byte) error { return nil }

// AppendBatch implements Store.
func (Null) AppendBatch([][]byte) error { return nil }

// Sync implements Store.
func (Null) Sync() error { return nil }

// Close implements Store.
func (Null) Close() error { return nil }

// --- Delayed ----------------------------------------------------------------

// Delayed wraps a Store and sleeps on every Sync, emulating the latency
// of a physical log disk on the commit critical path.
type Delayed struct {
	Inner Store
	// SyncDelay is added to every Sync call.
	SyncDelay time.Duration
	// Clock times the emulated device latency. Nil uses the shared wall
	// clock; a simtime.SimClock makes the emulated disk run on virtual
	// time.
	Clock simtime.Clock

	mu      sync.Mutex // serializes syncs like a single disk head
	pending int
}

// NewDelayed wraps inner with a per-sync latency.
func NewDelayed(inner Store, syncDelay time.Duration) *Delayed {
	return &Delayed{Inner: inner, SyncDelay: syncDelay}
}

// Append implements Store.
func (d *Delayed) Append(p []byte) error { return d.Inner.Append(p) }

// AppendBatch implements Store.
func (d *Delayed) AppendBatch(chunks [][]byte) error { return d.Inner.AppendBatch(chunks) }

// Sync implements Store. Concurrent Syncs serialize, as on one device.
func (d *Delayed) Sync() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	clock := d.Clock
	if clock == nil {
		clock = simtime.Wall
	}
	simtime.SleepOn(clock, d.SyncDelay)
	return d.Inner.Sync()
}

// Close implements Store.
func (d *Delayed) Close() error { return d.Inner.Close() }
