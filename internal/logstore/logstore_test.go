package logstore

import (
	"bytes"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func TestFileAppendSyncClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "test.log")
	f, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Append([]byte("hello ")); err != nil {
		t.Fatal(err)
	}
	if err := f.Append([]byte("world")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	st := f.Stats()
	if st.BytesAppended != 11 || st.Syncs != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "hello world" {
		t.Fatalf("file contents = %q", data)
	}
	// Operations after close fail (Close is idempotent).
	if err := f.Append([]byte("x")); err != ErrClosed {
		t.Fatalf("Append after close: %v", err)
	}
	if err := f.Sync(); err != ErrClosed {
		t.Fatalf("Sync after close: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestFileAppendsAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "test.log")
	for _, chunk := range []string{"one", "two"} {
		f, err := OpenFile(path)
		if err != nil {
			t.Fatal(err)
		}
		f.Append([]byte(chunk))
		f.Close()
	}
	data, _ := os.ReadFile(path)
	if string(data) != "onetwo" {
		t.Fatalf("contents = %q", data)
	}
}

func TestMemSyncedVsUnsynced(t *testing.T) {
	m := NewMem()
	m.Append([]byte("durable"))
	m.Sync()
	m.Append([]byte(" lost"))
	if string(m.Bytes()) != "durable lost" {
		t.Fatalf("Bytes = %q", m.Bytes())
	}
	if string(m.SyncedBytes()) != "durable" {
		t.Fatalf("SyncedBytes = %q", m.SyncedBytes())
	}
	st := m.Stats()
	if st.BytesAppended != 12 || st.Syncs != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestMemCloseSyncs(t *testing.T) {
	m := NewMem()
	m.Append([]byte("data"))
	m.Close()
	if string(m.SyncedBytes()) != "data" {
		t.Fatal("Close should sync")
	}
	if err := m.Append([]byte("x")); err != ErrClosed {
		t.Fatalf("Append after close: %v", err)
	}
	if err := m.Sync(); err != ErrClosed {
		t.Fatalf("Sync after close: %v", err)
	}
}

func TestNull(t *testing.T) {
	n := NewNull()
	if err := n.Append([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := n.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestDelayedAddsLatencyAndSerializes(t *testing.T) {
	d := NewDelayed(NewMem(), 20*time.Millisecond)
	d.Append([]byte("x"))
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			d.Sync()
		}()
	}
	wg.Wait()
	if elapsed := time.Since(start); elapsed < 55*time.Millisecond {
		t.Fatalf("3 concurrent syncs at 20ms each finished in %v; device must serialize", elapsed)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestMemConcurrent(t *testing.T) {
	m := NewMem()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				m.Append(bytes.Repeat([]byte{'a'}, 10))
				if i%10 == 0 {
					m.Sync()
				}
			}
		}()
	}
	wg.Wait()
	if got := m.Stats().BytesAppended; got != 8*200*10 {
		t.Fatalf("BytesAppended = %d", got)
	}
}

func TestFileReset(t *testing.T) {
	path := filepath.Join(t.TempDir(), "reset.log")
	f, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	f.Append([]byte("old data"))
	f.Sync()
	if err := f.Reset(); err != nil {
		t.Fatal(err)
	}
	f.Append([]byte("new"))
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(path)
	if string(data) != "new" {
		t.Fatalf("contents after reset = %q", data)
	}
}

func TestFileResetClosed(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.log")
	f, _ := OpenFile(path)
	f.Close()
	if err := f.Reset(); err != ErrClosed {
		t.Fatalf("Reset after close: %v", err)
	}
}

func TestMemReset(t *testing.T) {
	m := NewMem()
	m.Append([]byte("junk"))
	m.Sync()
	if err := m.Reset(); err != nil {
		t.Fatal(err)
	}
	if len(m.Bytes()) != 0 || len(m.SyncedBytes()) != 0 {
		t.Fatal("Reset did not clear")
	}
	m.Close()
	if err := m.Reset(); err != ErrClosed {
		t.Fatalf("Reset after close: %v", err)
	}
}

func TestResetHelper(t *testing.T) {
	m := NewMem()
	m.Append([]byte("x"))
	ok, err := Reset(m)
	if !ok || err != nil {
		t.Fatalf("Reset(Mem) = %v, %v", ok, err)
	}
	if ok, _ := Reset(NewNull()); ok {
		t.Fatal("Null should not report Resetter support")
	}
}

func TestAppendBatchEquivalence(t *testing.T) {
	chunks := [][]byte{[]byte("alpha"), []byte("beta"), []byte("gamma")}
	want := []byte("alphabetagamma")

	m := NewMem()
	if err := m.AppendBatch(chunks); err != nil {
		t.Fatal(err)
	}
	if string(m.Bytes()) != string(want) {
		t.Fatalf("Mem batch contents = %q", m.Bytes())
	}
	if st := m.Stats(); st.BytesAppended != uint64(len(want)) {
		t.Fatalf("Mem BytesAppended = %d, want %d", st.BytesAppended, len(want))
	}

	path := filepath.Join(t.TempDir(), "batch.log")
	f, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.AppendBatch(chunks); err != nil {
		t.Fatal(err)
	}
	if st := f.Stats(); st.BytesAppended != uint64(len(want)) {
		t.Fatalf("File BytesAppended = %d, want %d", st.BytesAppended, len(want))
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(want) {
		t.Fatalf("File batch contents = %q", data)
	}

	if err := NewNull().AppendBatch(chunks); err != nil {
		t.Fatal(err)
	}
	inner := NewMem()
	d := NewDelayed(inner, 0)
	if err := d.AppendBatch(chunks); err != nil {
		t.Fatal(err)
	}
	if string(inner.Bytes()) != string(want) {
		t.Fatalf("Delayed batch contents = %q", inner.Bytes())
	}
}

func TestAppendBatchClosed(t *testing.T) {
	m := NewMem()
	m.Close()
	if err := m.AppendBatch([][]byte{[]byte("x")}); err != ErrClosed {
		t.Fatalf("Mem AppendBatch after close: %v", err)
	}
	f, _ := OpenFile(filepath.Join(t.TempDir(), "c.log"))
	f.Close()
	if err := f.AppendBatch([][]byte{[]byte("x")}); err != ErrClosed {
		t.Fatalf("File AppendBatch after close: %v", err)
	}
}

// TestFileStatsConcurrent hammers Append/AppendBatch/Sync while reading
// Stats from another goroutine; under -race this pins the satellite fix
// (the counters are atomics, so Stats never tears or blocks on the
// device mutex).
func TestFileStatsConcurrent(t *testing.T) {
	f, err := OpenFile(filepath.Join(t.TempDir(), "conc.log"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	const writers = 4
	const per = 200
	var writerWg, readerWg sync.WaitGroup
	stop := make(chan struct{})
	readerWg.Add(1)
	go func() { // concurrent Stats reader
		defer readerWg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = f.Stats()
			}
		}
	}()
	for w := 0; w < writers; w++ {
		writerWg.Add(1)
		go func() {
			defer writerWg.Done()
			for i := 0; i < per; i++ {
				if i%3 == 0 {
					if err := f.AppendBatch([][]byte{[]byte("ab"), []byte("cd")}); err != nil {
						t.Errorf("AppendBatch: %v", err)
						return
					}
				} else if err := f.Append([]byte("abcd")); err != nil {
					t.Errorf("Append: %v", err)
					return
				}
				if i%17 == 0 {
					if err := f.Sync(); err != nil {
						t.Errorf("Sync: %v", err)
						return
					}
				}
			}
		}()
	}
	writerWg.Wait()
	close(stop)
	readerWg.Wait()
	st := f.Stats()
	if st.BytesAppended != writers*per*4 {
		t.Fatalf("BytesAppended = %d, want %d", st.BytesAppended, writers*per*4)
	}
	if st.Syncs == 0 {
		t.Fatal("no syncs recorded")
	}
}
