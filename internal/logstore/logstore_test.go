package logstore

import (
	"bytes"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func TestFileAppendSyncClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "test.log")
	f, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Append([]byte("hello ")); err != nil {
		t.Fatal(err)
	}
	if err := f.Append([]byte("world")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	st := f.Stats()
	if st.BytesAppended != 11 || st.Syncs != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "hello world" {
		t.Fatalf("file contents = %q", data)
	}
	// Operations after close fail (Close is idempotent).
	if err := f.Append([]byte("x")); err != ErrClosed {
		t.Fatalf("Append after close: %v", err)
	}
	if err := f.Sync(); err != ErrClosed {
		t.Fatalf("Sync after close: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestFileAppendsAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "test.log")
	for _, chunk := range []string{"one", "two"} {
		f, err := OpenFile(path)
		if err != nil {
			t.Fatal(err)
		}
		f.Append([]byte(chunk))
		f.Close()
	}
	data, _ := os.ReadFile(path)
	if string(data) != "onetwo" {
		t.Fatalf("contents = %q", data)
	}
}

func TestMemSyncedVsUnsynced(t *testing.T) {
	m := NewMem()
	m.Append([]byte("durable"))
	m.Sync()
	m.Append([]byte(" lost"))
	if string(m.Bytes()) != "durable lost" {
		t.Fatalf("Bytes = %q", m.Bytes())
	}
	if string(m.SyncedBytes()) != "durable" {
		t.Fatalf("SyncedBytes = %q", m.SyncedBytes())
	}
	st := m.Stats()
	if st.BytesAppended != 12 || st.Syncs != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestMemCloseSyncs(t *testing.T) {
	m := NewMem()
	m.Append([]byte("data"))
	m.Close()
	if string(m.SyncedBytes()) != "data" {
		t.Fatal("Close should sync")
	}
	if err := m.Append([]byte("x")); err != ErrClosed {
		t.Fatalf("Append after close: %v", err)
	}
	if err := m.Sync(); err != ErrClosed {
		t.Fatalf("Sync after close: %v", err)
	}
}

func TestNull(t *testing.T) {
	n := NewNull()
	if err := n.Append([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := n.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestDelayedAddsLatencyAndSerializes(t *testing.T) {
	d := NewDelayed(NewMem(), 20*time.Millisecond)
	d.Append([]byte("x"))
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			d.Sync()
		}()
	}
	wg.Wait()
	if elapsed := time.Since(start); elapsed < 55*time.Millisecond {
		t.Fatalf("3 concurrent syncs at 20ms each finished in %v; device must serialize", elapsed)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestMemConcurrent(t *testing.T) {
	m := NewMem()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				m.Append(bytes.Repeat([]byte{'a'}, 10))
				if i%10 == 0 {
					m.Sync()
				}
			}
		}()
	}
	wg.Wait()
	if got := m.Stats().BytesAppended; got != 8*200*10 {
		t.Fatalf("BytesAppended = %d", got)
	}
}

func TestFileReset(t *testing.T) {
	path := filepath.Join(t.TempDir(), "reset.log")
	f, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	f.Append([]byte("old data"))
	f.Sync()
	if err := f.Reset(); err != nil {
		t.Fatal(err)
	}
	f.Append([]byte("new"))
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(path)
	if string(data) != "new" {
		t.Fatalf("contents after reset = %q", data)
	}
}

func TestFileResetClosed(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.log")
	f, _ := OpenFile(path)
	f.Close()
	if err := f.Reset(); err != ErrClosed {
		t.Fatalf("Reset after close: %v", err)
	}
}

func TestMemReset(t *testing.T) {
	m := NewMem()
	m.Append([]byte("junk"))
	m.Sync()
	if err := m.Reset(); err != nil {
		t.Fatal(err)
	}
	if len(m.Bytes()) != 0 || len(m.SyncedBytes()) != 0 {
		t.Fatal("Reset did not clear")
	}
	m.Close()
	if err := m.Reset(); err != ErrClosed {
		t.Fatalf("Reset after close: %v", err)
	}
}

func TestResetHelper(t *testing.T) {
	m := NewMem()
	m.Append([]byte("x"))
	ok, err := Reset(m)
	if !ok || err != nil {
		t.Fatalf("Reset(Mem) = %v, %v", ok, err)
	}
	if ok, _ := Reset(NewNull()); ok {
		t.Fatal("Null should not report Resetter support")
	}
}
