package logstore

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/wal"
)

// Segmented is a file-backed log store that rolls to a fresh segment
// file once the active one crosses a size threshold, so a checkpoint can
// reclaim log space by unlinking whole sealed segments instead of
// truncating one ever-growing file. Two invariants make that safe:
//
//   - Segments roll only at group boundaries (tracked by a streaming
//     wal.LogScanner over the appended bytes), so every segment is a
//     self-contained sequence of complete groups — no transaction's
//     writes are split from its commit by a segment edge.
//   - A segment seals with the maximum commit serial the log has carried
//     up to that point (cumulative, hence conservative): TruncateBelow
//     drops a prefix of sealed segments only while that serial is at or
//     below the caller's bound, so no dropped segment can contain a
//     group above any stripe watermark.
//
// The active segment is fsynced before it seals, so a sealed segment is
// always durable in full.
type Segmented struct {
	mu       sync.Mutex
	dir      string
	segBytes int64
	seq      uint64 // sequence number of the active segment
	f        *os.File
	w        *bufio.Writer
	size     int64 // bytes appended to the active segment
	scan     wal.LogScanner
	sealed   []SegmentInfo
	closed   bool

	bytesAppended atomic.Uint64
	syncs         atomic.Uint64
	rolls         atomic.Uint64
	reclaimed     atomic.Uint64
}

// SegmentInfo describes one log segment.
type SegmentInfo struct {
	// Name is the file name within the segment directory.
	Name string
	// Bytes is the segment's size.
	Bytes int64
	// MaxSerial is the sealing bound: no group in this segment commits
	// with a serial above it (cumulative across earlier segments, so it
	// may overstate — which only delays truncation, never breaks it).
	// Zero for the active segment, whose bound is still moving.
	MaxSerial uint64
	// Sealed reports whether the segment is closed for appends.
	Sealed bool
}

// DefaultSegmentBytes is the roll threshold used when OpenSegmented is
// given a non-positive one.
const DefaultSegmentBytes = 64 << 20

const segPrefix, segSuffix = "wal-", ".seg"

func segmentName(seq uint64) string {
	return fmt.Sprintf("%s%08d%s", segPrefix, seq, segSuffix)
}

func segmentSeq(name string) (uint64, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	n, err := strconv.ParseUint(name[len(segPrefix):len(name)-len(segSuffix)], 10, 64)
	return n, err == nil
}

// ListSegments returns the segment file names in dir in log order.
func ListSegments(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if _, ok := segmentSeq(e.Name()); ok && !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Slice(names, func(i, j int) bool {
		a, _ := segmentSeq(names[i])
		b, _ := segmentSeq(names[j])
		return a < b
	})
	return names, nil
}

// OpenSegmentsReader returns a reader over the concatenation of every
// segment in dir, in log order — the stream recovery replays. An empty
// or absent directory yields an empty stream.
func OpenSegmentsReader(dir string) (io.ReadCloser, error) {
	names, err := ListSegments(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return io.NopCloser(strings.NewReader("")), nil
		}
		return nil, err
	}
	mr := &multiFileReader{}
	for _, name := range names {
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			mr.Close()
			return nil, err
		}
		mr.files = append(mr.files, f)
		mr.readers = append(mr.readers, bufio.NewReaderSize(f, 1<<16))
	}
	return mr, nil
}

type multiFileReader struct {
	files   []*os.File
	readers []io.Reader
}

func (m *multiFileReader) Read(p []byte) (int, error) {
	for len(m.readers) > 0 {
		n, err := m.readers[0].Read(p)
		if err == io.EOF {
			m.readers = m.readers[1:]
			if n > 0 {
				return n, nil
			}
			continue
		}
		return n, err
	}
	return 0, io.EOF
}

func (m *multiFileReader) Close() error {
	var first error
	for _, f := range m.files {
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
	}
	m.files = nil
	m.readers = nil
	return first
}

// OpenSegmented opens (creating if needed) a segmented log in dir,
// rolling segments at segBytes. Existing segments are scanned to rebuild
// sealing serials and the active segment is truncated back to its last
// group boundary, discarding a torn tail exactly like single-file
// recovery does at decode time.
func OpenSegmented(dir string, segBytes int64) (*Segmented, error) {
	if segBytes <= 0 {
		segBytes = DefaultSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	names, err := ListSegments(dir)
	if err != nil {
		return nil, err
	}
	s := &Segmented{dir: dir, segBytes: segBytes}
	for i, name := range names {
		boundary, err := s.scanSegment(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		if i < len(names)-1 {
			s.sealed = append(s.sealed, SegmentInfo{
				Name: name, Bytes: boundary, MaxSerial: s.scan.MaxSerial(), Sealed: true,
			})
			continue
		}
		// Last segment: drop the torn tail and keep appending to it.
		f, err := os.OpenFile(filepath.Join(dir, name), os.O_WRONLY, 0o644)
		if err != nil {
			return nil, err
		}
		if err := f.Truncate(boundary); err != nil {
			f.Close()
			return nil, err
		}
		if _, err := f.Seek(boundary, io.SeekStart); err != nil {
			f.Close()
			return nil, err
		}
		seq, _ := segmentSeq(name)
		s.seq, s.f, s.size = seq, f, boundary
	}
	if s.f == nil {
		if err := s.openNextLocked(1); err != nil {
			return nil, err
		}
	}
	s.w = bufio.NewWriterSize(s.f, 1<<16)
	return s, nil
}

// scanSegment feeds one segment file through the boundary scanner and
// returns the offset of its last group boundary. Damage or a torn tail
// ends the scan at the last complete record, exactly as replay would.
func (s *Segmented) scanSegment(path string) (int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	var boundary, off int64
	r := bufio.NewReaderSize(f, 1<<16)
	for {
		rec, err := wal.Decode(r)
		if err != nil {
			return boundary, nil
		}
		off += int64(wal.EncodedSize(rec))
		s.scan.Scan(wal.AppendEncoded(nil, rec))
		if s.scan.AtBoundary() {
			boundary = off
		}
	}
}

// openNextLocked creates and switches to segment seq; the bufio writer
// is rewired by the caller (or created by OpenSegmented).
func (s *Segmented) openNextLocked(seq uint64) error {
	f, err := os.OpenFile(filepath.Join(s.dir, segmentName(seq)), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	s.seq, s.f, s.size = seq, f, 0
	if s.w != nil {
		s.w.Reset(f)
	}
	return nil
}

// Append implements Store.
func (s *Segmented) Append(p []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if err := s.appendLocked(p); err != nil {
		return err
	}
	return s.maybeRollLocked()
}

// AppendBatch implements Store: the whole cohort lands under one lock,
// and the roll check runs once at the end — a cohort is a sequence of
// complete groups, so its end is a boundary whenever the scanner says
// so.
func (s *Segmented) AppendBatch(chunks [][]byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	for _, p := range chunks {
		if err := s.appendLocked(p); err != nil {
			return err
		}
	}
	return s.maybeRollLocked()
}

func (s *Segmented) appendLocked(p []byte) error {
	n, err := s.w.Write(p)
	s.size += int64(n)
	s.bytesAppended.Add(uint64(n))
	s.scan.Scan(p[:n])
	return err
}

// maybeRollLocked seals the active segment once it crosses the size
// threshold, but only at a group boundary; mid-group the roll waits for
// the next append that closes the group.
func (s *Segmented) maybeRollLocked() error {
	if s.size < s.segBytes || !s.scan.AtBoundary() {
		return nil
	}
	// Seal order matters: flush and fsync the old segment BEFORE sealing
	// and switching, so a later Sync on the new segment cannot leave
	// acked commits unsynced in a file nothing writes to anymore.
	if err := s.w.Flush(); err != nil {
		return err
	}
	if err := s.f.Sync(); err != nil {
		return err
	}
	old, oldName, oldSize := s.f, segmentName(s.seq), s.size
	if err := s.openNextLocked(s.seq + 1); err != nil {
		// Could not create the next file: openNextLocked left all state
		// untouched, so appends continue on the current segment.
		return err
	}
	s.sealed = append(s.sealed, SegmentInfo{
		Name: oldName, Bytes: oldSize, MaxSerial: s.scan.MaxSerial(), Sealed: true,
	})
	s.rolls.Add(1)
	s.syncs.Add(1)
	return old.Close()
}

// Sync implements Store.
func (s *Segmented) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if err := s.w.Flush(); err != nil {
		return err
	}
	s.syncs.Add(1)
	return s.f.Sync()
}

// Close implements Store.
func (s *Segmented) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if err := s.w.Flush(); err != nil {
		s.f.Close()
		return err
	}
	if err := s.f.Sync(); err != nil {
		s.f.Close()
		return err
	}
	return s.f.Close()
}

// Stats returns I/O accounting. Lock-free, like File.Stats.
func (s *Segmented) Stats() Stats {
	return Stats{
		BytesAppended: s.bytesAppended.Load(),
		Syncs:         s.syncs.Load(),
	}
}

// Segments returns the current segment list, sealed first, active last.
func (s *Segmented) Segments() []SegmentInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]SegmentInfo, 0, len(s.sealed)+1)
	out = append(out, s.sealed...)
	out = append(out, SegmentInfo{Name: segmentName(s.seq), Bytes: s.size})
	return out
}

// Reclaimed reports the total bytes of sealed segments dropped by
// TruncateBelow over the store's lifetime.
func (s *Segmented) Reclaimed() uint64 { return s.reclaimed.Load() }

// TruncateBelow implements SerialTruncator: it unlinks the longest
// prefix of sealed segments whose sealing serial is at or below serial.
// The active segment and any sealed segment that might hold a group
// above the bound survive untouched.
func (s *Segmented) TruncateBelow(serial uint64) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, ErrClosed
	}
	dropped := 0
	var bytes int64
	for _, seg := range s.sealed {
		if seg.MaxSerial > serial {
			break
		}
		if err := os.Remove(filepath.Join(s.dir, seg.Name)); err != nil {
			break
		}
		dropped++
		bytes += seg.Bytes
	}
	if dropped == 0 {
		return 0, nil
	}
	s.sealed = append([]SegmentInfo(nil), s.sealed[dropped:]...)
	s.reclaimed.Add(uint64(bytes))
	return int(bytes), nil
}

// Reset implements Resetter: every segment is removed and the log
// restarts at segment 1.
func (s *Segmented) Reset() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if err := s.f.Close(); err != nil {
		return err
	}
	for _, seg := range s.sealed {
		if err := os.Remove(filepath.Join(s.dir, seg.Name)); err != nil {
			return err
		}
	}
	if err := os.Remove(filepath.Join(s.dir, segmentName(s.seq))); err != nil {
		return err
	}
	s.sealed = nil
	s.scan = wal.LogScanner{}
	return s.openNextLocked(1)
}
