package logstore

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/store"
	"repro/internal/txn"
	"repro/internal/wal"
)

// group encodes one committed transaction (a write plus its commit) as
// one appendable chunk — the unit the committer hands the log store.
func group(id, serial uint64, obj store.ObjectID, val string) []byte {
	b := wal.AppendEncoded(nil, &wal.Record{
		Type: wal.TypeWrite, TxnID: txn.ID(id), ObjectID: obj, AfterImage: []byte(val),
	})
	return wal.AppendEncoded(b, &wal.Record{
		Type: wal.TypeCommit, TxnID: txn.ID(id), SerialOrder: serial, CommitTS: serial,
	})
}

// readAll drains the directory's segment concatenation.
func readAll(t *testing.T, dir string) []byte {
	t.Helper()
	r, err := OpenSegmentsReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	b, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// appendGroups appends n committed groups starting at serial start and
// returns the concatenated bytes it appended.
func appendGroups(t *testing.T, s Store, start uint64, n int) []byte {
	t.Helper()
	var all []byte
	for i := 0; i < n; i++ {
		serial := start + uint64(i)
		g := group(serial, serial, store.ObjectID(serial%17), fmt.Sprintf("v%d", serial))
		if err := s.Append(g); err != nil {
			t.Fatal(err)
		}
		all = append(all, g...)
	}
	return all
}

func TestSegmentedRollsAtGroupBoundaries(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSegmented(dir, 256) // tiny: rolls every couple of groups
	if err != nil {
		t.Fatal(err)
	}
	want := appendGroups(t, s, 1, 40)
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	segs := s.Segments()
	if len(segs) < 3 {
		t.Fatalf("only %d segments after 40 groups at a 256-byte threshold", len(segs))
	}
	// Every sealed segment is a self-contained group sequence with a
	// truthful (if conservative) sealing serial.
	var prevMax uint64
	var cursor wal.LogScanner
	for _, seg := range segs[:len(segs)-1] {
		if !seg.Sealed {
			t.Fatalf("segment %s not sealed", seg.Name)
		}
		if seg.MaxSerial < prevMax {
			t.Fatalf("sealing serials not monotone: %s at %d after %d", seg.Name, seg.MaxSerial, prevMax)
		}
		prevMax = seg.MaxSerial
		b, err := os.ReadFile(filepath.Join(dir, seg.Name))
		if err != nil {
			t.Fatal(err)
		}
		if int64(len(b)) != seg.Bytes {
			t.Fatalf("segment %s: %d bytes on disk, info says %d", seg.Name, len(b), seg.Bytes)
		}
		var one wal.LogScanner
		one.Scan(b)
		if !one.AtBoundary() {
			t.Fatalf("segment %s does not end at a group boundary", seg.Name)
		}
		if one.MaxSerial() > seg.MaxSerial {
			t.Fatalf("segment %s holds serial %d above its sealing bound %d",
				seg.Name, one.MaxSerial(), seg.MaxSerial)
		}
		cursor.Scan(b)
	}
	if got := readAll(t, dir); !bytes.Equal(got, want) {
		t.Fatalf("segment concatenation differs: %d bytes, want %d", len(got), len(want))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestSegmentedAppendBatch(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSegmented(dir, 300)
	if err != nil {
		t.Fatal(err)
	}
	var want []byte
	var batch [][]byte
	for i := uint64(1); i <= 30; i++ {
		g := group(i, i, store.ObjectID(i), "batched")
		batch = append(batch, g)
		want = append(want, g...)
		if len(batch) == 5 {
			if err := s.AppendBatch(batch); err != nil {
				t.Fatal(err)
			}
			batch = nil
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if got := readAll(t, dir); !bytes.Equal(got, want) {
		t.Fatal("batched segment stream differs from appended bytes")
	}
}

func TestSegmentedReopenContinues(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSegmented(dir, 256)
	if err != nil {
		t.Fatal(err)
	}
	want := appendGroups(t, s, 1, 20)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenSegmented(dir, 256)
	if err != nil {
		t.Fatal(err)
	}
	want = append(want, appendGroups(t, s2, 21, 20)...)
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	if got := readAll(t, dir); !bytes.Equal(got, want) {
		t.Fatal("stream across reopen differs")
	}
	// Sealing serials survived the reopen rescan.
	s3, err := OpenSegmented(dir, 256)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	segs := s3.Segments()
	if segs[0].MaxSerial == 0 || !segs[0].Sealed {
		t.Fatalf("first segment after reopen: %+v", segs[0])
	}
}

func TestSegmentedReopenDropsTornTail(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSegmented(dir, 1<<20) // one active segment
	if err != nil {
		t.Fatal(err)
	}
	want := appendGroups(t, s, 1, 5)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Crash mid-append: garbage half-record at the tail.
	name := filepath.Join(dir, "wal-00000001.seg")
	f, err := os.OpenFile(name, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	torn := wal.AppendEncoded(nil, &wal.Record{
		Type: wal.TypeWrite, TxnID: 99, ObjectID: 1, AfterImage: []byte("never committed"),
	})
	if _, err := f.Write(torn[:len(torn)-3]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, err := OpenSegmented(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	want = append(want, appendGroups(t, s2, 6, 1)...)
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	got := readAll(t, dir)
	if !bytes.Equal(got, want) {
		t.Fatalf("torn tail not truncated back to the boundary: %d bytes, want %d", len(got), len(want))
	}
}

// TestSegmentedReopenDropsUncommittedBoundary: a complete record stream
// that ends mid-transaction (write without commit) is also not a
// boundary; reopen must rewind behind the whole dangling group.
func TestSegmentedReopenDropsUncommittedTail(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSegmented(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	want := appendGroups(t, s, 1, 3)
	dangling := wal.AppendEncoded(nil, &wal.Record{
		Type: wal.TypeWrite, TxnID: 50, ObjectID: 9, AfterImage: []byte("no commit"),
	})
	if err := s.Append(dangling); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenSegmented(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	if got := readAll(t, dir); !bytes.Equal(got, want) {
		t.Fatalf("dangling group survived reopen: %d bytes, want %d", len(got), len(want))
	}
}

func TestSegmentedTruncateBelowDropsOnlyCoveredPrefix(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSegmented(dir, 256)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	appendGroups(t, s, 1, 40)
	segs := s.Segments()
	if len(segs) < 4 {
		t.Fatalf("need several segments, got %d", len(segs))
	}
	bound := segs[1].MaxSerial // covers the first two sealed segments

	n, err := s.TruncateBelow(bound)
	if err != nil {
		t.Fatal(err)
	}
	if want := int(segs[0].Bytes + segs[1].Bytes); n != want {
		t.Fatalf("reclaimed %d bytes, want %d", n, want)
	}
	if s.Reclaimed() != uint64(n) {
		t.Fatalf("Reclaimed() = %d, want %d", s.Reclaimed(), n)
	}
	after := s.Segments()
	if after[0].Name != segs[2].Name {
		t.Fatalf("surviving head = %s, want %s", after[0].Name, segs[2].Name)
	}
	// Every surviving record above the bound is still replayable, and
	// nothing above the bound was dropped: the remaining stream must
	// contain every commit with serial > bound.
	var scan wal.LogScanner
	remaining := readAll(t, dir)
	scan.Scan(remaining)
	if scan.MaxSerial() != 40 {
		t.Fatalf("surviving stream tops out at %d, want 40", scan.MaxSerial())
	}
	db := store.New()
	st, err := wal.Recover(bytes.NewReader(remaining), db)
	if err != nil {
		t.Fatal(err)
	}
	if st.LastSerial != 40 {
		t.Fatalf("replay of survivors ends at %d, want 40", st.LastSerial)
	}

	// Truncating below everything leaves the active segment.
	if _, err := s.TruncateBelow(1 << 60); err != nil {
		t.Fatal(err)
	}
	final := s.Segments()
	if len(final) != 1 || final[0].Sealed {
		t.Fatalf("after full truncation: %+v", final)
	}
}

func TestSegmentedTruncateBelowZeroIsNoOp(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSegmented(dir, 256)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	appendGroups(t, s, 1, 20)
	before := len(s.Segments())
	if n, err := s.TruncateBelow(0); err != nil || n != 0 {
		t.Fatalf("TruncateBelow(0) = %d, %v", n, err)
	}
	if len(s.Segments()) != before {
		t.Fatal("TruncateBelow(0) dropped segments")
	}
}

func TestSegmentedReset(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSegmented(dir, 256)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	appendGroups(t, s, 1, 20)
	if err := s.Reset(); err != nil {
		t.Fatal(err)
	}
	if got := readAll(t, dir); len(got) != 0 {
		t.Fatalf("%d bytes survived Reset", len(got))
	}
	segs := s.Segments()
	if len(segs) != 1 || segs[0].Name != "wal-00000001.seg" {
		t.Fatalf("after Reset: %+v", segs)
	}
	// The store still works, and the boundary scanner restarted.
	appendGroups(t, s, 1, 5)
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	db := store.New()
	if _, err := wal.Recover(bytes.NewReader(readAll(t, dir)), db); err != nil {
		t.Fatal(err)
	}
}

func TestSegmentedClosed(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSegmented(dir, 256)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
	if err := s.Append([]byte("x")); err != ErrClosed {
		t.Fatalf("Append after close: %v", err)
	}
	if err := s.Sync(); err != ErrClosed {
		t.Fatalf("Sync after close: %v", err)
	}
	if _, err := s.TruncateBelow(1); err != ErrClosed {
		t.Fatalf("TruncateBelow after close: %v", err)
	}
	if err := s.Reset(); err != ErrClosed {
		t.Fatalf("Reset after close: %v", err)
	}
}

func TestOpenSegmentsReaderAbsentDir(t *testing.T) {
	r, err := OpenSegmentsReader(filepath.Join(t.TempDir(), "nope"))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	b, err := io.ReadAll(r)
	if err != nil || len(b) != 0 {
		t.Fatalf("absent dir: %d bytes, %v", len(b), err)
	}
}

func TestListSegmentsOrderAndFilter(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"wal-00000010.seg", "wal-00000002.seg", "notes.txt", "wal-x.seg"} {
		if err := os.WriteFile(filepath.Join(dir, name), nil, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	names, err := ListSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "wal-00000002.seg" || names[1] != "wal-00000010.seg" {
		t.Fatalf("ListSegments = %v", names)
	}
}

func TestMemTruncateBelow(t *testing.T) {
	m := NewMem()
	var chunks [][]byte
	for i := uint64(1); i <= 10; i++ {
		chunks = append(chunks, group(i, i, store.ObjectID(i), "mem"))
	}
	for _, c := range chunks {
		if err := m.Append(c); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Sync(); err != nil {
		t.Fatal(err)
	}
	// Truncate below serial 4: groups 1..4 go, 5..10 stay.
	n, err := m.TruncateBelow(4)
	if err != nil {
		t.Fatal(err)
	}
	wantDropped := len(chunks[0]) + len(chunks[1]) + len(chunks[2]) + len(chunks[3])
	if n != wantDropped {
		t.Fatalf("dropped %d bytes, want %d", n, wantDropped)
	}
	db := store.New()
	st, err := wal.Recover(bytes.NewReader(m.Bytes()), db)
	if err != nil {
		t.Fatal(err)
	}
	if st.Applied != 6 || st.LastSerial != 10 {
		t.Fatalf("survivors: %+v", st)
	}
	// SyncedBytes stayed consistent with Bytes.
	if !bytes.Equal(m.SyncedBytes(), m.Bytes()) {
		t.Fatal("synced marker diverged from the data after truncation")
	}
	// Truncating below everything empties the log.
	if _, err := m.TruncateBelow(100); err != nil {
		t.Fatal(err)
	}
	if len(m.Bytes()) != 0 {
		t.Fatalf("%d bytes survived full truncation", len(m.Bytes()))
	}
}

// TestMemTruncateBelowStopsAtOpenTransaction: the cut point can only be
// a group boundary — a covered commit inside an interleaved stretch must
// not strand another transaction's writes behind the cut.
func TestMemTruncateBelowStopsAtOpenTransaction(t *testing.T) {
	m := NewMem()
	// txn 1 writes, txn 2 writes, txn 1 commits (serial 1), txn 2
	// commits (serial 2): no boundary exists between the two commits.
	var b []byte
	b = wal.AppendEncoded(b, &wal.Record{Type: wal.TypeWrite, TxnID: 1, ObjectID: 1, AfterImage: []byte("a")})
	b = wal.AppendEncoded(b, &wal.Record{Type: wal.TypeWrite, TxnID: 2, ObjectID: 2, AfterImage: []byte("b")})
	b = wal.AppendEncoded(b, &wal.Record{Type: wal.TypeCommit, TxnID: 1, SerialOrder: 1, CommitTS: 1})
	if err := m.Append(b); err != nil {
		t.Fatal(err)
	}
	if n, err := m.TruncateBelow(1); err != nil || n != 0 {
		t.Fatalf("cut inside an open group: dropped %d bytes, %v", n, err)
	}
	tail := wal.AppendEncoded(nil, &wal.Record{Type: wal.TypeCommit, TxnID: 2, SerialOrder: 2, CommitTS: 2})
	if err := m.Append(tail); err != nil {
		t.Fatal(err)
	}
	// Now serial 1's group closes at the very end only; truncating below
	// 1 still keeps serial 2's group — the boundary cut keeps everything.
	n, err := m.TruncateBelow(1)
	if err != nil {
		t.Fatal(err)
	}
	db := store.New()
	st, err := wal.Recover(bytes.NewReader(m.Bytes()), db)
	if err != nil {
		t.Fatal(err)
	}
	if st.LastSerial != 2 && n != 0 {
		t.Fatalf("serial-2 group lost: %+v after dropping %d bytes", st, n)
	}
}

func TestTruncateBelowHelper(t *testing.T) {
	m := NewMem()
	if err := m.Append(group(1, 1, 1, "x")); err != nil {
		t.Fatal(err)
	}
	did, n, err := TruncateBelow(m, 1)
	if err != nil || !did || n == 0 {
		t.Fatalf("Mem: did=%v n=%d err=%v", did, n, err)
	}
	// A store without the capability reports !did and no error.
	did, n, err = TruncateBelow(Null{}, 1)
	if err != nil || did || n != 0 {
		t.Fatalf("Null: did=%v n=%d err=%v", did, n, err)
	}
	// Delayed forwards to its inner store.
	d := NewDelayed(NewMem(), 0)
	if err := d.Append(group(2, 2, 2, "y")); err != nil {
		t.Fatal(err)
	}
	did, _, err = TruncateBelow(d, 2)
	if err != nil || !did {
		t.Fatalf("Delayed: did=%v err=%v", did, err)
	}
	if did, _, err := TruncateBelow(NewDelayed(Null{}, 0), 2); err != nil || did {
		t.Fatalf("Delayed(Null): did=%v err=%v", did, err)
	}
}
