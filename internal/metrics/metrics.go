// Package metrics collects the measurements the paper's experimental
// study reports: transaction miss ratio with its abort-reason breakdown,
// and commit-latency distributions, plus small table/series formatting
// helpers used by the experiment harness.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/txn"
)

// Outcome tallies transaction completions. The miss ratio is the
// fraction of transactions that did not commit: deadline expiry,
// concurrency-control conflict that exhausted its chances, or admission
// denial by the overload manager — the paper's three abort classes.
type Outcome struct {
	mu sync.Mutex

	Submitted uint64
	Committed uint64
	// LateCommits counts soft-deadline transactions that committed past
	// their deadline: complete, but missed.
	LateCommits uint64
	Aborts      map[txn.AbortReason]uint64
	Restarts    uint64 // concurrency-control restarts that later succeeded or failed
}

// NewOutcome returns an empty tally.
func NewOutcome() *Outcome {
	return &Outcome{Aborts: make(map[txn.AbortReason]uint64)}
}

// Submit counts an arriving transaction.
func (o *Outcome) Submit() {
	o.mu.Lock()
	o.Submitted++
	o.mu.Unlock()
}

// Commit counts a successful commit.
func (o *Outcome) Commit() {
	o.mu.Lock()
	o.Committed++
	o.mu.Unlock()
}

// CommitLate counts a successful commit that finished past a soft
// deadline.
func (o *Outcome) CommitLate() {
	o.mu.Lock()
	o.Committed++
	o.LateCommits++
	o.mu.Unlock()
}

// Abort counts a terminal abort with its reason.
func (o *Outcome) Abort(reason txn.AbortReason) {
	o.mu.Lock()
	o.Aborts[reason]++
	o.mu.Unlock()
}

// Restart counts a concurrency-control restart (not terminal).
func (o *Outcome) Restart() {
	o.mu.Lock()
	o.Restarts++
	o.mu.Unlock()
}

// Snapshot is a consistent copy of the tallies.
type Snapshot struct {
	Submitted   uint64
	Committed   uint64
	LateCommits uint64
	Missed      uint64
	Restarts    uint64
	ByReason    map[txn.AbortReason]uint64
}

// Snapshot returns a copy of the current tallies.
func (o *Outcome) Snapshot() Snapshot {
	o.mu.Lock()
	defer o.mu.Unlock()
	s := Snapshot{
		Submitted:   o.Submitted,
		Committed:   o.Committed,
		LateCommits: o.LateCommits,
		Restarts:    o.Restarts,
		ByReason:    make(map[txn.AbortReason]uint64, len(o.Aborts)),
	}
	for r, n := range o.Aborts {
		s.ByReason[r] = n
		s.Missed += n
	}
	s.Missed += o.LateCommits
	return s
}

// MissRatio reports missed/submitted, the paper's headline metric.
func (s Snapshot) MissRatio() float64 {
	if s.Submitted == 0 {
		return 0
	}
	return float64(s.Missed) / float64(s.Submitted)
}

func (s Snapshot) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "submitted=%d committed=%d missed=%d (%.1f%%)",
		s.Submitted, s.Committed, s.Missed, 100*s.MissRatio())
	reasons := make([]txn.AbortReason, 0, len(s.ByReason))
	for r := range s.ByReason {
		reasons = append(reasons, r)
	}
	sort.Slice(reasons, func(i, j int) bool { return reasons[i] < reasons[j] })
	for _, r := range reasons {
		fmt.Fprintf(&b, " %s=%d", r, s.ByReason[r])
	}
	return b.String()
}

// --- Histogram ---------------------------------------------------------------

// Histogram is a latency histogram with logarithmic buckets from 1 µs to
// ~17 s, safe for concurrent use.
type Histogram struct {
	mu      sync.Mutex
	buckets [bucketCount]uint64
	count   uint64
	sum     time.Duration
	max     time.Duration
}

const bucketCount = 48 // 1µs * 2^(i/2): covers to beyond 10s

// bucketFor maps d to a bucket index (half-powers of two above 1µs).
func bucketFor(d time.Duration) int {
	us := float64(d) / float64(time.Microsecond)
	if us < 1 {
		return 0
	}
	i := int(2 * math.Log2(us))
	if i < 0 {
		i = 0
	}
	if i >= bucketCount {
		i = bucketCount - 1
	}
	return i
}

// boundFor is the upper duration bound of bucket i.
func boundFor(i int) time.Duration {
	return time.Duration(math.Pow(2, float64(i+1)/2) * float64(time.Microsecond))
}

// Observe records one sample.
func (h *Histogram) Observe(d time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.buckets[bucketFor(d)]++
	h.count++
	h.sum += d
	if d > h.max {
		h.max = d
	}
}

// Count reports the number of samples.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Mean reports the mean sample.
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / time.Duration(h.count)
}

// Max reports the largest sample.
func (h *Histogram) Max() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Quantile reports an upper bound for the q-quantile (0 < q ≤ 1).
func (h *Histogram) Quantile(q float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(h.count)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, n := range h.buckets {
		cum += n
		if cum >= target {
			// The bucket bound can overshoot the true maximum; never
			// report a quantile above the largest observed sample.
			if b := boundFor(i); b < h.max {
				return b
			}
			return h.max
		}
	}
	return h.max
}

// Summary digests the histogram into its copyable snapshot form.
func (h *Histogram) Summary() HistogramSummary {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramSummary{Count: h.count, Max: h.max}
	if h.count == 0 {
		return s
	}
	s.Mean = h.sum / time.Duration(h.count)
	quantile := func(q float64) time.Duration {
		target := uint64(math.Ceil(q * float64(h.count)))
		if target == 0 {
			target = 1
		}
		var cum uint64
		for i, n := range h.buckets {
			cum += n
			if cum >= target {
				if b := boundFor(i); b < h.max {
					return b
				}
				return h.max
			}
		}
		return h.max
	}
	s.P50 = quantile(0.50)
	s.P95 = quantile(0.95)
	s.P99 = quantile(0.99)
	return s
}

// --- AtomicHistogram ---------------------------------------------------------

// AtomicHistogram is the lock-free sibling of Histogram: the same
// logarithmic 1 µs … ~17 s buckets, but every cell is an atomic, so
// Observe costs a few uncontended atomic adds and never serializes
// observers — fit for instrumenting paths that are themselves
// lock-free, like the store's versioned read path. The zero value is
// ready to use.
type AtomicHistogram struct {
	buckets [bucketCount]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Int64 // total nanoseconds across samples
	max     atomic.Int64 // largest sample in nanoseconds (CAS-max)
}

// Observe records one sample.
func (h *AtomicHistogram) Observe(d time.Duration) {
	h.buckets[bucketFor(d)].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
	for {
		cur := h.max.Load()
		if int64(d) <= cur || h.max.CompareAndSwap(cur, int64(d)) {
			return
		}
	}
}

// Count reports the number of samples.
func (h *AtomicHistogram) Count() uint64 { return h.count.Load() }

// Mean reports the mean sample.
func (h *AtomicHistogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / int64(n))
}

// Max reports the largest sample.
func (h *AtomicHistogram) Max() time.Duration { return time.Duration(h.max.Load()) }

// HistogramSummary is a point-in-time digest of a latency histogram:
// the copyable form embedded in stats snapshots.
type HistogramSummary struct {
	Count uint64
	Mean  time.Duration
	P50   time.Duration
	P95   time.Duration
	P99   time.Duration
	Max   time.Duration
}

// Summary digests the histogram. Concurrent observers may land between
// the field loads, so the digest is only approximately consistent —
// each quantity is individually correct to within the in-flight
// samples, which is all a monitoring snapshot needs.
func (h *AtomicHistogram) Summary() HistogramSummary {
	var counts [bucketCount]uint64
	var total uint64
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	max := time.Duration(h.max.Load())
	s := HistogramSummary{Count: total, Max: max}
	if total == 0 {
		return s
	}
	s.Mean = time.Duration(h.sum.Load() / int64(total))
	quantile := func(q float64) time.Duration {
		target := uint64(math.Ceil(q * float64(total)))
		if target == 0 {
			target = 1
		}
		var cum uint64
		for i, n := range counts {
			cum += n
			if cum >= target {
				if b := boundFor(i); b < max {
					return b
				}
				return max
			}
		}
		return max
	}
	s.P50 = quantile(0.50)
	s.P95 = quantile(0.95)
	s.P99 = quantile(0.99)
	return s
}

// --- IntDist -----------------------------------------------------------------

// IntDist is a concurrency-safe distribution of small positive integers
// — group-commit cohort sizes, batch lengths — with power-of-two
// buckets. It is the integer sibling of Histogram.
type IntDist struct {
	mu      sync.Mutex
	buckets [intDistBuckets]uint64 // bucket i holds values in [2^i, 2^(i+1))
	count   uint64
	sum     uint64
	max     uint64
}

const intDistBuckets = 32

func intBucketFor(v uint64) int {
	if v == 0 {
		return 0
	}
	i := 0
	for v > 1 {
		v >>= 1
		i++
	}
	if i >= intDistBuckets {
		i = intDistBuckets - 1
	}
	return i
}

// Observe records one sample; values below 1 count as 1.
func (d *IntDist) Observe(v int) {
	u := uint64(1)
	if v > 1 {
		u = uint64(v)
	}
	d.mu.Lock()
	d.buckets[intBucketFor(u)]++
	d.count++
	d.sum += u
	if u > d.max {
		d.max = u
	}
	d.mu.Unlock()
}

// Count reports the number of samples.
func (d *IntDist) Count() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.count
}

// Mean reports the mean sample.
func (d *IntDist) Mean() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.count == 0 {
		return 0
	}
	return float64(d.sum) / float64(d.count)
}

// Max reports the largest sample.
func (d *IntDist) Max() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.max
}

// Quantile reports an upper bound for the q-quantile (0 < q ≤ 1),
// capped at the largest observed sample.
func (d *IntDist) Quantile(q float64) uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.count == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(d.count)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, n := range d.buckets {
		cum += n
		if cum >= target {
			bound := uint64(1) << uint(i+1)
			bound-- // inclusive upper edge of the bucket
			if bound > d.max {
				return d.max
			}
			return bound
		}
	}
	return d.max
}

// --- Table -------------------------------------------------------------------

// Table is a simple aligned-text table used to print the experiment
// series in the shape the paper's figures report.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Fprint writes the table, aligned, to w.
func (t *Table) Fprint(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", t.Title); err != nil {
			return err
		}
	}
	line := func(cells []string) error {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			for p := len(c); p < widths[i]; p++ {
				b.WriteByte(' ')
			}
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
		return err
	}
	if err := line(t.Header); err != nil {
		return err
	}
	rule := make([]string, len(t.Header))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	if err := line(rule); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := line(row); err != nil {
			return err
		}
	}
	return nil
}

// Pct formats a ratio as a percentage with one decimal.
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }
