package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/txn"
)

func TestOutcomeTallies(t *testing.T) {
	o := NewOutcome()
	for i := 0; i < 10; i++ {
		o.Submit()
	}
	for i := 0; i < 7; i++ {
		o.Commit()
	}
	o.Abort(txn.DeadlineMiss)
	o.Abort(txn.OverloadDenied)
	o.Abort(txn.OverloadDenied)
	o.Restart()
	s := o.Snapshot()
	if s.Submitted != 10 || s.Committed != 7 || s.Missed != 3 || s.Restarts != 1 {
		t.Fatalf("snapshot = %+v", s)
	}
	if s.ByReason[txn.OverloadDenied] != 2 {
		t.Fatalf("overload count = %d", s.ByReason[txn.OverloadDenied])
	}
	if got := s.MissRatio(); got != 0.3 {
		t.Fatalf("MissRatio = %v", got)
	}
	str := s.String()
	if !strings.Contains(str, "missed=3") || !strings.Contains(str, "overload=2") {
		t.Fatalf("String = %q", str)
	}
}

func TestMissRatioEmpty(t *testing.T) {
	var s Snapshot
	if s.MissRatio() != 0 {
		t.Fatal("empty snapshot should have zero miss ratio")
	}
}

func TestOutcomeConcurrent(t *testing.T) {
	o := NewOutcome()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				o.Submit()
				if i%2 == 0 {
					o.Commit()
				} else {
					o.Abort(txn.Conflict)
				}
			}
		}()
	}
	wg.Wait()
	s := o.Snapshot()
	if s.Submitted != 8000 || s.Committed != 4000 || s.Missed != 4000 {
		t.Fatalf("snapshot = %+v", s)
	}
}

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	samples := []time.Duration{
		time.Microsecond, 10 * time.Microsecond, 100 * time.Microsecond,
		time.Millisecond, 10 * time.Millisecond, 100 * time.Millisecond,
	}
	for _, s := range samples {
		h.Observe(s)
	}
	if h.Count() != 6 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Max() != 100*time.Millisecond {
		t.Fatalf("Max = %v", h.Max())
	}
	mean := h.Mean()
	if mean < 15*time.Millisecond || mean > 25*time.Millisecond {
		t.Fatalf("Mean = %v", mean)
	}
	// The median upper bound must be within a bucket (≈41%) of 1ms but
	// certainly between 100µs and 10ms.
	med := h.Quantile(0.5)
	if med < 100*time.Microsecond || med > 10*time.Millisecond {
		t.Fatalf("median = %v", med)
	}
	p100 := h.Quantile(1.0)
	if p100 < 100*time.Millisecond/2 {
		t.Fatalf("p100 = %v", p100)
	}
}

func TestHistogramQuantileMonotone(t *testing.T) {
	var h Histogram
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	prev := time.Duration(0)
	for _, q := range []float64{0.1, 0.25, 0.5, 0.9, 0.99, 1.0} {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("quantiles not monotone at %v: %v < %v", q, v, prev)
		}
		prev = v
	}
}

func TestHistogramExtremes(t *testing.T) {
	var h Histogram
	h.Observe(0)                // below first bucket
	h.Observe(time.Minute)      // beyond last bucket
	h.Observe(-time.Nanosecond) // nonsense input: clamps to bucket 0
	if h.Count() != 3 {
		t.Fatalf("Count = %d", h.Count())
	}
}

func TestTableFormatting(t *testing.T) {
	tab := &Table{
		Title:  "fig 2(a)",
		Header: []string{"rate", "2 nodes", "1 node"},
	}
	tab.AddRow("100", "1.0%", "12.0%")
	tab.AddRow("300", "25.5%", "80.1%")
	var b strings.Builder
	if err := tab.Fprint(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"fig 2(a)", "rate", "2 nodes", "80.1%", "----"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("line count = %d:\n%s", len(lines), out)
	}
}

func TestPct(t *testing.T) {
	if Pct(0.255) != "25.5%" {
		t.Fatalf("Pct = %q", Pct(0.255))
	}
}

func TestIntDistBasics(t *testing.T) {
	var d IntDist
	if d.Count() != 0 || d.Mean() != 0 || d.Max() != 0 || d.Quantile(0.5) != 0 {
		t.Fatal("empty IntDist not zero")
	}
	for _, v := range []int{1, 1, 2, 4, 8, 64} {
		d.Observe(v)
	}
	if d.Count() != 6 {
		t.Fatalf("Count = %d", d.Count())
	}
	if d.Max() != 64 {
		t.Fatalf("Max = %d", d.Max())
	}
	if got, want := d.Mean(), 80.0/6.0; got < want-0.001 || got > want+0.001 {
		t.Fatalf("Mean = %v, want %v", got, want)
	}
	// Median of {1,1,2,4,8,64} falls in the [2,4) bucket; the reported
	// bound is that bucket's inclusive upper edge.
	if q := d.Quantile(0.5); q < 2 || q > 4 {
		t.Fatalf("Quantile(0.5) = %d, want within [2,4]", q)
	}
	if q := d.Quantile(1); q != 64 {
		t.Fatalf("Quantile(1) = %d, want 64 (capped at max)", q)
	}
	// Values below 1 count as 1 so a cohort of "zero" cannot hide.
	d.Observe(0)
	d.Observe(-3)
	if d.Count() != 8 || d.Quantile(0.01) != 1 {
		t.Fatalf("low-value clamp: count=%d q01=%d", d.Count(), d.Quantile(0.01))
	}
}

func TestIntDistConcurrent(t *testing.T) {
	var d IntDist
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				d.Observe(w + 1)
			}
		}()
	}
	wg.Wait()
	if d.Count() != 4000 {
		t.Fatalf("Count = %d, want 4000", d.Count())
	}
	if d.Max() != 4 {
		t.Fatalf("Max = %d, want 4", d.Max())
	}
}
