package object_test

import (
	"fmt"

	"repro/internal/object"
)

func ExampleClass() {
	subscriber := object.MustClass("Subscriber",
		object.Field{Name: "msisdn", Type: object.String},
		object.Field{Name: "balanceCents", Type: object.Int},
		object.Field{Name: "active", Type: object.Bool},
	)
	o := subscriber.New()
	o.SetString("msisdn", "+358501234567")
	o.SetInt("balanceCents", 1250)
	o.SetBool("active", true)

	// Encode for a transactional write; decode what a read returns.
	back, err := subscriber.Decode(o.Encode())
	if err != nil {
		panic(err)
	}
	msisdn, _ := back.String("msisdn")
	balance, _ := back.Int("balanceCents")
	fmt.Printf("%s has %d cents\n", msisdn, balance)
	// Output: +358501234567 has 1250 cents
}
