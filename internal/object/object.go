// Package object is RODAIN's object-oriented data model: the
// architecture's "Object-Oriented Database Management" subsystem. It
// layers typed classes over the flat byte-valued store — a class declares
// named, typed attributes; instances encode to a tagged binary form that
// survives schema growth (unknown attributes are preserved, missing ones
// default) — so telecom service data can be declared instead of
// hand-packed.
//
//	var subscriber = object.MustClass("Subscriber",
//	    object.Field{Name: "msisdn", Type: object.String},
//	    object.Field{Name: "balanceCents", Type: object.Int},
//	    object.Field{Name: "active", Type: object.Bool},
//	)
//	obj := subscriber.New()
//	obj.SetString("msisdn", "+358501234567")
//	bytes := obj.Encode()            // store with tx.Write
//	back, err := subscriber.Decode(bytes)
package object

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"
)

// Type is an attribute type.
type Type uint8

// Attribute types.
const (
	// Int is a signed 64-bit integer.
	Int Type = iota + 1
	// Float is a 64-bit float.
	Float
	// String is a UTF-8 string.
	String
	// Bytes is an opaque byte slice.
	Bytes
	// Bool is a boolean.
	Bool
)

func (t Type) String() string {
	switch t {
	case Int:
		return "int"
	case Float:
		return "float"
	case String:
		return "string"
	case Bytes:
		return "bytes"
	case Bool:
		return "bool"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// Field declares one attribute of a class.
type Field struct {
	Name string
	Type Type
}

// Class is a declared object type. Fields get stable tags in declaration
// order (1-based), so adding fields at the end keeps old encodings
// readable.
type Class struct {
	name   string
	fields []Field
	byName map[string]int // name → index
}

// Errors of the object layer.
var (
	ErrUnknownField = errors.New("object: unknown field")
	ErrWrongType    = errors.New("object: wrong type")
	ErrBadEncoding  = errors.New("object: bad encoding")
)

// NewClass declares a class. Field names must be unique and non-empty.
func NewClass(name string, fields ...Field) (*Class, error) {
	if name == "" {
		return nil, errors.New("object: empty class name")
	}
	if len(fields) == 0 {
		return nil, fmt.Errorf("object: class %s has no fields", name)
	}
	c := &Class{name: name, fields: fields, byName: make(map[string]int, len(fields))}
	for i, f := range fields {
		if f.Name == "" {
			return nil, fmt.Errorf("object: class %s: empty field name", name)
		}
		switch f.Type {
		case Int, Float, String, Bytes, Bool:
		default:
			return nil, fmt.Errorf("object: class %s field %s: unknown type", name, f.Name)
		}
		if _, dup := c.byName[f.Name]; dup {
			return nil, fmt.Errorf("object: class %s: duplicate field %s", name, f.Name)
		}
		c.byName[f.Name] = i
	}
	return c, nil
}

// MustClass is NewClass that panics on declaration errors (init-time
// schemas).
func MustClass(name string, fields ...Field) *Class {
	c, err := NewClass(name, fields...)
	if err != nil {
		panic(err)
	}
	return c
}

// Name reports the class name.
func (c *Class) Name() string { return c.name }

// Fields returns the declared fields (shared slice; do not modify).
func (c *Class) Fields() []Field { return c.fields }

// New returns an instance with every attribute at its zero value.
func (c *Class) New() *Object {
	return &Object{class: c, values: make(map[string]any, len(c.fields))}
}

// Object is one instance of a class.
type Object struct {
	class  *Class
	values map[string]any
	// unknown preserves attributes with tags beyond the class's current
	// schema (round-trips encodings from newer schema versions).
	unknown []rawField
}

type rawField struct {
	tag  uint32
	wire uint8
	data []byte
}

// Class reports the object's class.
func (o *Object) Class() *Class { return o.class }

func (o *Object) field(name string, want Type) (int, error) {
	i, ok := o.class.byName[name]
	if !ok {
		return 0, fmt.Errorf("%w: %s.%s", ErrUnknownField, o.class.name, name)
	}
	if o.class.fields[i].Type != want {
		return 0, fmt.Errorf("%w: %s.%s is %v", ErrWrongType, o.class.name, name, o.class.fields[i].Type)
	}
	return i, nil
}

// SetInt sets an Int attribute.
func (o *Object) SetInt(name string, v int64) error {
	if _, err := o.field(name, Int); err != nil {
		return err
	}
	o.values[name] = v
	return nil
}

// Int returns an Int attribute (zero if unset).
func (o *Object) Int(name string) (int64, error) {
	if _, err := o.field(name, Int); err != nil {
		return 0, err
	}
	v, _ := o.values[name].(int64)
	return v, nil
}

// SetFloat sets a Float attribute.
func (o *Object) SetFloat(name string, v float64) error {
	if _, err := o.field(name, Float); err != nil {
		return err
	}
	o.values[name] = v
	return nil
}

// Float returns a Float attribute.
func (o *Object) Float(name string) (float64, error) {
	if _, err := o.field(name, Float); err != nil {
		return 0, err
	}
	v, _ := o.values[name].(float64)
	return v, nil
}

// SetString sets a String attribute.
func (o *Object) SetString(name, v string) error {
	if _, err := o.field(name, String); err != nil {
		return err
	}
	o.values[name] = v
	return nil
}

// String returns a String attribute.
func (o *Object) String(name string) (string, error) {
	if _, err := o.field(name, String); err != nil {
		return "", err
	}
	v, _ := o.values[name].(string)
	return v, nil
}

// SetBytes sets a Bytes attribute (copied).
func (o *Object) SetBytes(name string, v []byte) error {
	if _, err := o.field(name, Bytes); err != nil {
		return err
	}
	o.values[name] = append([]byte(nil), v...)
	return nil
}

// Bytes returns a Bytes attribute (copy).
func (o *Object) Bytes(name string) ([]byte, error) {
	if _, err := o.field(name, Bytes); err != nil {
		return nil, err
	}
	v, _ := o.values[name].([]byte)
	return append([]byte(nil), v...), nil
}

// SetBool sets a Bool attribute.
func (o *Object) SetBool(name string, v bool) error {
	if _, err := o.field(name, Bool); err != nil {
		return err
	}
	o.values[name] = v
	return nil
}

// Bool returns a Bool attribute.
func (o *Object) Bool(name string) (bool, error) {
	if _, err := o.field(name, Bool); err != nil {
		return false, err
	}
	v, _ := o.values[name].(bool)
	return v, nil
}

// wire kinds
const (
	wireVarint = 0 // Int (zigzag), Bool
	wireF64    = 1 // Float
	wireBytes  = 2 // String, Bytes
)

// Encode serializes the object: a varint field count, then per attribute
// tag, wire kind, payload. Zero-valued attributes are encoded too —
// explicit beats implicit in a redo log after image.
func (o *Object) Encode() []byte {
	buf := make([]byte, 0, 16*len(o.class.fields))
	count := uint64(len(o.class.fields) + len(o.unknown))
	buf = binary.AppendUvarint(buf, count)
	for i, f := range o.class.fields {
		tag := uint32(i + 1)
		buf = binary.AppendUvarint(buf, uint64(tag))
		switch f.Type {
		case Int:
			v, _ := o.values[f.Name].(int64)
			buf = append(buf, wireVarint)
			buf = binary.AppendVarint(buf, v)
		case Bool:
			v, _ := o.values[f.Name].(bool)
			buf = append(buf, wireVarint)
			n := int64(0)
			if v {
				n = 1
			}
			buf = binary.AppendVarint(buf, n)
		case Float:
			v, _ := o.values[f.Name].(float64)
			buf = append(buf, wireF64)
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
		case String:
			v, _ := o.values[f.Name].(string)
			buf = append(buf, wireBytes)
			buf = binary.AppendUvarint(buf, uint64(len(v)))
			buf = append(buf, v...)
		case Bytes:
			v, _ := o.values[f.Name].([]byte)
			buf = append(buf, wireBytes)
			buf = binary.AppendUvarint(buf, uint64(len(v)))
			buf = append(buf, v...)
		}
	}
	for _, u := range o.unknown {
		buf = binary.AppendUvarint(buf, uint64(u.tag))
		buf = append(buf, u.wire)
		if u.wire == wireBytes {
			buf = binary.AppendUvarint(buf, uint64(len(u.data)))
		}
		buf = append(buf, u.data...)
	}
	return buf
}

// Decode parses an encoding into an instance of c. Attributes with tags
// the class does not declare are preserved opaquely; declared attributes
// absent from the encoding stay at their zero values (schema growth in
// both directions).
func (c *Class) Decode(data []byte) (*Object, error) {
	o := c.New()
	off := 0
	count, n := binary.Uvarint(data)
	if n <= 0 {
		return nil, ErrBadEncoding
	}
	off += n
	if count > uint64(len(data)) { // cheap sanity bound: ≥1 byte per field
		return nil, ErrBadEncoding
	}
	for i := uint64(0); i < count; i++ {
		tag64, n := binary.Uvarint(data[off:])
		if n <= 0 || tag64 > math.MaxUint32 {
			return nil, ErrBadEncoding
		}
		off += n
		if off >= len(data) {
			return nil, ErrBadEncoding
		}
		wire := data[off]
		off++
		var payload []byte
		switch wire {
		case wireVarint:
			v, n := binary.Varint(data[off:])
			if n <= 0 {
				return nil, ErrBadEncoding
			}
			payload = data[off : off+n]
			off += n
			if err := o.applyVarint(uint32(tag64), v, payload); err != nil {
				return nil, err
			}
			continue
		case wireF64:
			if off+8 > len(data) {
				return nil, ErrBadEncoding
			}
			payload = data[off : off+8]
			off += 8
		case wireBytes:
			l, n := binary.Uvarint(data[off:])
			if n <= 0 {
				return nil, ErrBadEncoding
			}
			off += n
			if l > uint64(len(data)-off) {
				return nil, ErrBadEncoding
			}
			payload = data[off : off+int(l)]
			off += int(l)
		default:
			return nil, ErrBadEncoding
		}
		if err := o.apply(uint32(tag64), wire, payload); err != nil {
			return nil, err
		}
	}
	if off != len(data) {
		return nil, ErrBadEncoding
	}
	return o, nil
}

// applyVarint installs a varint-wire attribute.
func (o *Object) applyVarint(tag uint32, v int64, raw []byte) error {
	idx := int(tag) - 1
	if idx < 0 || idx >= len(o.class.fields) {
		o.unknown = append(o.unknown, rawField{tag: tag, wire: wireVarint, data: append([]byte(nil), raw...)})
		return nil
	}
	f := o.class.fields[idx]
	switch f.Type {
	case Int:
		o.values[f.Name] = v
	case Bool:
		o.values[f.Name] = v != 0
	default:
		return fmt.Errorf("%w: field %s encoded as varint, declared %v", ErrBadEncoding, f.Name, f.Type)
	}
	return nil
}

// apply installs a fixed64/bytes-wire attribute.
func (o *Object) apply(tag uint32, wire uint8, payload []byte) error {
	idx := int(tag) - 1
	if idx < 0 || idx >= len(o.class.fields) {
		o.unknown = append(o.unknown, rawField{tag: tag, wire: wire, data: append([]byte(nil), payload...)})
		return nil
	}
	f := o.class.fields[idx]
	switch {
	case wire == wireF64 && f.Type == Float:
		o.values[f.Name] = math.Float64frombits(binary.LittleEndian.Uint64(payload))
	case wire == wireBytes && f.Type == String:
		o.values[f.Name] = string(payload)
	case wire == wireBytes && f.Type == Bytes:
		o.values[f.Name] = append([]byte(nil), payload...)
	default:
		return fmt.Errorf("%w: field %s wire %d, declared %v", ErrBadEncoding, f.Name, wire, f.Type)
	}
	return nil
}

// GoString renders the object for debugging, attributes sorted by name.
func (o *Object) GoString() string {
	names := make([]string, 0, len(o.class.fields))
	for _, f := range o.class.fields {
		names = append(names, f.Name)
	}
	sort.Strings(names)
	s := o.class.name + "{"
	for i, n := range names {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%s: %v", n, o.values[n])
	}
	return s + "}"
}
