package object

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func subscriberClass(t *testing.T) *Class {
	t.Helper()
	return MustClass("Subscriber",
		Field{Name: "msisdn", Type: String},
		Field{Name: "balanceCents", Type: Int},
		Field{Name: "active", Type: Bool},
		Field{Name: "weight", Type: Float},
		Field{Name: "blob", Type: Bytes},
	)
}

func TestClassValidation(t *testing.T) {
	cases := []struct {
		name   string
		fields []Field
	}{
		{"", []Field{{Name: "a", Type: Int}}},
		{"C", nil},
		{"C", []Field{{Name: "", Type: Int}}},
		{"C", []Field{{Name: "a", Type: Type(99)}}},
		{"C", []Field{{Name: "a", Type: Int}, {Name: "a", Type: Int}}},
	}
	for _, c := range cases {
		if _, err := NewClass(c.name, c.fields...); err == nil {
			t.Fatalf("class %q %v accepted", c.name, c.fields)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustClass did not panic")
		}
	}()
	MustClass("")
}

func TestSetGetRoundTrip(t *testing.T) {
	c := subscriberClass(t)
	o := c.New()
	if err := o.SetString("msisdn", "+358501234567"); err != nil {
		t.Fatal(err)
	}
	if err := o.SetInt("balanceCents", -250); err != nil {
		t.Fatal(err)
	}
	if err := o.SetBool("active", true); err != nil {
		t.Fatal(err)
	}
	if err := o.SetFloat("weight", 0.75); err != nil {
		t.Fatal(err)
	}
	if err := o.SetBytes("blob", []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}

	back, err := c.Decode(o.Encode())
	if err != nil {
		t.Fatal(err)
	}
	s, _ := back.String("msisdn")
	i, _ := back.Int("balanceCents")
	b, _ := back.Bool("active")
	f, _ := back.Float("weight")
	bl, _ := back.Bytes("blob")
	if s != "+358501234567" || i != -250 || !b || f != 0.75 || string(bl) != "\x01\x02\x03" {
		t.Fatalf("round trip: %#v", back)
	}
	if back.Class().Name() != "Subscriber" {
		t.Fatalf("class = %s", back.Class().Name())
	}
}

func TestZeroValuesRoundTrip(t *testing.T) {
	c := subscriberClass(t)
	back, err := c.Decode(c.New().Encode())
	if err != nil {
		t.Fatal(err)
	}
	s, _ := back.String("msisdn")
	i, _ := back.Int("balanceCents")
	if s != "" || i != 0 {
		t.Fatalf("zero object round trip: %#v", back)
	}
}

func TestTypeErrors(t *testing.T) {
	c := subscriberClass(t)
	o := c.New()
	if err := o.SetInt("msisdn", 1); !errors.Is(err, ErrWrongType) {
		t.Fatalf("err = %v", err)
	}
	if err := o.SetString("nosuch", "x"); !errors.Is(err, ErrUnknownField) {
		t.Fatalf("err = %v", err)
	}
	if _, err := o.Int("msisdn"); !errors.Is(err, ErrWrongType) {
		t.Fatalf("err = %v", err)
	}
	if _, err := o.Bool("nosuch"); !errors.Is(err, ErrUnknownField) {
		t.Fatalf("err = %v", err)
	}
	if _, err := o.Float("msisdn"); !errors.Is(err, ErrWrongType) {
		t.Fatalf("err = %v", err)
	}
	if _, err := o.Bytes("msisdn"); !errors.Is(err, ErrWrongType) {
		t.Fatalf("err = %v", err)
	}
	if _, err := o.String("balanceCents"); !errors.Is(err, ErrWrongType) {
		t.Fatalf("err = %v", err)
	}
}

func TestSchemaGrowthForward(t *testing.T) {
	// Old schema encodes; new schema (extra field) decodes: the new
	// field defaults.
	v1 := MustClass("C", Field{Name: "a", Type: Int})
	v2 := MustClass("C", Field{Name: "a", Type: Int}, Field{Name: "b", Type: String})
	o := v1.New()
	o.SetInt("a", 7)
	back, err := v2.Decode(o.Encode())
	if err != nil {
		t.Fatal(err)
	}
	a, _ := back.Int("a")
	b, _ := back.String("b")
	if a != 7 || b != "" {
		t.Fatalf("forward growth: a=%d b=%q", a, b)
	}
}

func TestSchemaGrowthBackward(t *testing.T) {
	// New schema encodes; old schema decodes and re-encodes without
	// losing the unknown attribute.
	v1 := MustClass("C", Field{Name: "a", Type: Int})
	v2 := MustClass("C", Field{Name: "a", Type: Int}, Field{Name: "b", Type: String})
	o := v2.New()
	o.SetInt("a", 7)
	o.SetString("b", "kept")
	throughOld, err := v1.Decode(o.Encode())
	if err != nil {
		t.Fatal(err)
	}
	// The old schema cannot see "b"...
	if _, err := throughOld.String("b"); !errors.Is(err, ErrUnknownField) {
		t.Fatal("old schema sees the new field?")
	}
	// ...but must not destroy it.
	back, err := v2.Decode(throughOld.Encode())
	if err != nil {
		t.Fatal(err)
	}
	b, _ := back.String("b")
	if b != "kept" {
		t.Fatalf("unknown attribute lost: %q", b)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	c := subscriberClass(t)
	cases := [][]byte{
		nil,
		{0xff},                 // bad count varint
		{1},                    // count 1, no field
		{1, 1},                 // tag, no wire
		{1, 1, 9},              // unknown wire kind
		{1, 1, wireF64, 1, 2},  // truncated float
		{1, 1, wireBytes, 200}, // length beyond data
	}
	for _, data := range cases {
		if _, err := c.Decode(data); err == nil {
			t.Fatalf("garbage %v accepted", data)
		}
	}
	// Trailing junk after all fields is also rejected.
	good := c.New().Encode()
	if _, err := c.Decode(append(good, 0)); err == nil {
		t.Fatal("trailing junk accepted")
	}
}

func TestWireTypeMismatchRejected(t *testing.T) {
	// A field encoded as bytes but declared Int must be rejected, not
	// silently coerced.
	enc := MustClass("C", Field{Name: "a", Type: String})
	dec := MustClass("C", Field{Name: "a", Type: Int})
	o := enc.New()
	o.SetString("a", "text")
	if _, err := dec.Decode(o.Encode()); !errors.Is(err, ErrBadEncoding) {
		t.Fatalf("err = %v", err)
	}
}

func TestGoString(t *testing.T) {
	c := subscriberClass(t)
	o := c.New()
	o.SetString("msisdn", "+358")
	s := o.GoString()
	if !strings.Contains(s, "Subscriber{") || !strings.Contains(s, "msisdn: +358") {
		t.Fatalf("GoString = %q", s)
	}
}

func TestTypeStrings(t *testing.T) {
	for _, ty := range []Type{Int, Float, String, Bytes, Bool, Type(9)} {
		if ty.String() == "" {
			t.Fatal("empty type string")
		}
	}
}

// Property: every (int, float, string, bytes, bool) tuple round-trips.
func TestPropertyRoundTrip(t *testing.T) {
	c := MustClass("P",
		Field{Name: "i", Type: Int},
		Field{Name: "f", Type: Float},
		Field{Name: "s", Type: String},
		Field{Name: "b", Type: Bytes},
		Field{Name: "t", Type: Bool},
	)
	fn := func(i int64, f float64, s string, b []byte, tt bool) bool {
		o := c.New()
		o.SetInt("i", i)
		o.SetFloat("f", f)
		o.SetString("s", s)
		o.SetBytes("b", b)
		o.SetBool("t", tt)
		back, err := c.Decode(o.Encode())
		if err != nil {
			return false
		}
		gi, _ := back.Int("i")
		gf, _ := back.Float("f")
		gs, _ := back.String("s")
		gb, _ := back.Bytes("b")
		gt, _ := back.Bool("t")
		if f != f { // NaN: compare bit identity via encode equality
			return gf != gf && gi == i && gs == s && string(gb) == string(b) && gt == tt
		}
		return gi == i && gf == f && gs == s && string(gb) == string(b) && gt == tt
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// FuzzClassDecode: arbitrary bytes never panic the decoder.
func FuzzClassDecode(f *testing.F) {
	c := MustClass("F",
		Field{Name: "i", Type: Int},
		Field{Name: "s", Type: String},
	)
	o := c.New()
	o.SetInt("i", 42)
	o.SetString("s", "seed")
	f.Add(o.Encode())
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		if obj, err := c.Decode(data); err == nil {
			// Valid decodes must re-encode decodably.
			if _, err := c.Decode(obj.Encode()); err != nil {
				t.Fatalf("re-decode failed: %v", err)
			}
		}
	})
}
