package occ

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/store"
	"repro/internal/txn"
)

// TestConcurrentSerializability hammers one controller from several
// goroutines and checks the committed history afterwards: commit
// timestamps are unique and every committed read observed exactly the
// latest committed write with a smaller timestamp. Under -race this
// also proves the sharded hot path is data-race free.
func TestConcurrentSerializability(t *testing.T) {
	for _, k := range []Kind{DATI, TI, DA, BC} {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			const (
				workers    = 4
				nObjects   = 16
				perWorker  = 400
				maxRetries = 50
			)
			db := store.New()
			for i := 0; i < nObjects; i++ {
				db.Put(store.ObjectID(i), []byte{0})
			}
			c := NewController(k, db)

			var (
				histMu  sync.Mutex
				history []histEntry
				nextID  atomic.Uint64
			)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				w := w
				wg.Add(1)
				go func() {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(w) * 7919))
					for n := 0; n < perWorker; n++ {
						var entry *histEntry
						for attempt := 0; attempt < maxRetries; attempt++ {
							tx := txn.New(txn.ID(nextID.Add(1)), txn.Firm, 0, txn.NoDeadline)
							c.Begin(tx)
							ok := true
							for op := 0; op < 2+rng.Intn(4) && ok; op++ {
								obj := store.ObjectID(rng.Intn(nObjects))
								if _, dead := c.Doomed(tx); dead {
									ok = false
									break
								}
								if rng.Intn(100) < 60 {
									if _, found := tx.Read(db, obj); found {
										if wts, obs := tx.ObservedWriteTS(obj); obs {
											ok = c.OnRead(tx, obj, wts)
										}
									}
								} else {
									tx.StageWrite(obj, []byte{byte(w), byte(n), byte(attempt)})
									ok = c.OnWrite(tx, obj)
								}
							}
							if ok {
								if _, dead := c.Doomed(tx); dead {
									ok = false
								}
							}
							if ok {
								if r := c.Validate(tx); r.OK {
									entry = &histEntry{
										ts:     tx.CommitTS,
										reads:  append([]txn.ReadEntry(nil), tx.ReadSet()...),
										writes: append([]store.ObjectID(nil), tx.WriteIDs()...),
									}
								}
							}
							c.Finish(tx)
							if entry != nil {
								break
							}
						}
						if entry != nil {
							histMu.Lock()
							history = append(history, *entry)
							histMu.Unlock()
						}
					}
				}()
			}
			wg.Wait()

			if len(history) < workers*perWorker/2 {
				t.Fatalf("%v: only %d/%d commits — harness starved", k, len(history), workers*perWorker)
			}
			seen := map[uint64]bool{}
			for _, h := range history {
				if seen[h.ts] {
					t.Fatalf("%v: duplicate commit timestamp %d", k, h.ts)
				}
				seen[h.ts] = true
			}
			writersOf := map[store.ObjectID][]uint64{}
			for _, h := range history {
				for _, w := range h.writes {
					writersOf[w] = append(writersOf[w], h.ts)
				}
			}
			for _, h := range history {
				for _, re := range h.reads {
					want := uint64(0)
					for _, wts := range writersOf[re.ID] {
						if wts < h.ts && wts > want {
							want = wts
						}
					}
					if re.WriteTS != want {
						t.Fatalf("%v: txn@ts=%d read obj %d written@%d, but latest earlier committed write is @%d — history not serializable",
							k, h.ts, re.ID, re.WriteTS, want)
					}
					if re.WriteTS >= h.ts {
						t.Fatalf("%v: read from the future: read@%d ts=%d", k, re.WriteTS, h.ts)
					}
				}
			}
			if c.ActiveCount() != 0 {
				t.Fatalf("%v: actives leaked: %d", k, c.ActiveCount())
			}
		})
	}
}

// TestConcurrentWithFrozenQuiesces checks that WithFrozen observes a
// transaction-consistent database while validations race it: the write
// phase now runs outside the controller ticket, so WithFrozen must
// drain in-flight applies before letting the snapshot run.
func TestConcurrentWithFrozenQuiesces(t *testing.T) {
	const nObjects = 8
	db := store.New()
	for i := 0; i < nObjects; i++ {
		db.Put(store.ObjectID(i), []byte{0, 0})
	}
	c := NewController(DATI, db)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) * 31))
			id := uint64(w) << 32
			for {
				select {
				case <-stop:
					return
				default:
				}
				id++
				tx := txn.New(txn.ID(id), txn.Firm, 0, txn.NoDeadline)
				c.Begin(tx)
				// Write every object with the same tag so a torn write
				// phase is visible as mixed tags across objects.
				tag := []byte{byte(id), byte(id >> 8)}
				okAll := true
				for i := 0; i < nObjects && okAll; i++ {
					tx.StageWrite(store.ObjectID(i), tag)
					okAll = c.OnWrite(tx, store.ObjectID(i))
				}
				if okAll {
					c.Validate(tx)
				}
				c.Finish(tx)
				if rng.Intn(64) == 0 {
					c.LastSerial() // sprinkle ticket traffic
				}
			}
		}()
	}
	for i := 0; i < 50; i++ {
		c.WithFrozen(func(uint64) {
			snap := db.Snapshot()
			if len(snap) != nObjects {
				t.Errorf("snapshot has %d objects, want %d", len(snap), nObjects)
				return
			}
			first := snap[0].Value
			for _, rec := range snap {
				if string(rec.Value) != string(first) {
					t.Errorf("torn frozen snapshot: object %d has tag %v, object %d has tag %v",
						snap[0].ID, first, rec.ID, rec.Value)
					return
				}
			}
		})
	}
	close(stop)
	wg.Wait()
}

// TestDoomedPollFastPath is the regression test for the lock-free doom
// poll: the per-operation Doomed check must not allocate. (It compiles
// down to one atomic load on the transaction; any future reintroduction
// of map lookups or lock acquisition on this path shows up as
// allocations or as contention in BenchmarkDoomedPoll.)
func TestDoomedPollFastPath(t *testing.T) {
	c, _ := newController(DATI)
	tx := txn.New(1, txn.Firm, 0, txn.NoDeadline)
	c.Begin(tx)
	defer c.Finish(tx)
	if allocs := testing.AllocsPerRun(1000, func() {
		if _, dead := c.Doomed(tx); dead {
			t.Fatal("unexpectedly doomed")
		}
	}); allocs != 0 {
		t.Fatalf("Doomed allocates %.1f per call, want 0", allocs)
	}
}

// BenchmarkDoomedPoll measures the per-operation doom poll in isolation.
func BenchmarkDoomedPoll(b *testing.B) {
	db := store.New()
	c := NewController(DATI, db)
	tx := txn.New(1, txn.Firm, 0, txn.NoDeadline)
	c.Begin(tx)
	defer c.Finish(tx)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, dead := c.Doomed(tx); dead {
			b.Fatal("doomed")
		}
	}
}

// benchController is the controller surface the contention benchmark
// drives, satisfied by both the sharded Controller and the in-test
// single-mutex refController so the two are directly comparable.
type benchController interface {
	Begin(*txn.Transaction)
	Finish(*txn.Transaction)
	Doomed(*txn.Transaction) (txn.AbortReason, bool)
	OnRead(*txn.Transaction, store.ObjectID, uint64) bool
	OnWrite(*txn.Transaction, store.ObjectID) bool
	Validate(*txn.Transaction) Result
}

// BenchmarkOCCContention runs full transactions (begin, reads/writes
// with registration, validate, finish) against one DATI controller from
// a fixed number of worker goroutines, for a read-mostly and a
// write-heavy mix, with the sharded controller and the single-mutex
// reference it replaced. On a multicore host the sharded variant's
// throughput should rise with the worker count while the global mutex
// flatlines; a single-CPU host shows parity (serialized execution never
// contends either lock).
func BenchmarkOCCContention(b *testing.B) {
	const nObjects = 1024
	mixes := []struct {
		name     string
		writePct int
	}{
		{"readmostly", 10},
		{"writeheavy", 60},
	}
	impls := []struct {
		name  string
		build func(*store.Store) benchController
	}{
		{"sharded", func(db *store.Store) benchController { return NewController(DATI, db) }},
		{"refmutex", func(db *store.Store) benchController { return newRefController(DATI, db) }},
	}
	for _, impl := range impls {
		for _, workers := range []int{1, 2, 4, 8} {
			for _, mix := range mixes {
				b.Run(fmt.Sprintf("%s/workers=%d/%s", impl.name, workers, mix.name), func(b *testing.B) {
					db := store.New()
					for i := 0; i < nObjects; i++ {
						db.Put(store.ObjectID(i), []byte{0, 0, 0, 0})
					}
					c := impl.build(db)
					var nextID atomic.Uint64
					var committed atomic.Uint64
					b.ReportAllocs()
					b.ResetTimer()
					var wg sync.WaitGroup
					per := b.N / workers
					if per == 0 {
						per = 1
					}
					for w := 0; w < workers; w++ {
						w := w
						wg.Add(1)
						go func() {
							defer wg.Done()
							rng := rand.New(rand.NewSource(int64(w) * 104729))
							val := []byte{1, 2, 3, 4}
							for n := 0; n < per; n++ {
								tx := txn.New(txn.ID(nextID.Add(1)), txn.Firm, 0, txn.NoDeadline)
								c.Begin(tx)
								ok := true
								for op := 0; op < 6 && ok; op++ {
									obj := store.ObjectID(rng.Intn(nObjects))
									if _, dead := c.Doomed(tx); dead {
										ok = false
										break
									}
									if rng.Intn(100) < mix.writePct {
										tx.StageWrite(obj, val)
										ok = c.OnWrite(tx, obj)
									} else {
										if _, found := tx.ReadView(db, obj); found {
											if wts, obs := tx.ObservedWriteTS(obj); obs {
												ok = c.OnRead(tx, obj, wts)
											}
										}
									}
								}
								if ok {
									if r := c.Validate(tx); r.OK {
										committed.Add(1)
									}
								}
								c.Finish(tx)
							}
						}()
					}
					wg.Wait()
					b.StopTimer()
					b.ReportMetric(float64(committed.Load())/b.Elapsed().Seconds(), "commits/sec")
				})
			}
		}
	}
}
