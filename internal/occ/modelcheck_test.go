package occ

// Exhaustive small-model check: enumerate EVERY interleaving of a small
// set of transactions over a tiny database and verify that each protocol
// accepts only timestamp-serializable histories. Unlike the randomized
// harness in occ_test.go, this cannot miss a corner case within the
// model bounds.

import (
	"fmt"
	"sort"
	"testing"

	"repro/internal/store"
	"repro/internal/txn"
)

// mcOp is one step of a scripted transaction: read, write or delete an
// object; validation is the implied final step.
type mcOp struct {
	kind mcKind
	obj  store.ObjectID
}

type mcKind int

const (
	mcRead mcKind = iota
	mcWrite
	mcDelete
)

// mcScript is one transaction's operations (validation appended
// implicitly as the last step).
type mcScript []mcOp

// interleavings enumerates all ways to interleave the step sequences of
// n transactions, where transaction i has steps[i] steps. Each
// interleaving is a sequence of transaction indices.
func interleavings(steps []int) [][]int {
	total := 0
	for _, s := range steps {
		total += s
	}
	var out [][]int
	var cur []int
	remaining := append([]int(nil), steps...)
	var rec func()
	rec = func() {
		if len(cur) == total {
			out = append(out, append([]int(nil), cur...))
			return
		}
		for i := range remaining {
			if remaining[i] == 0 {
				continue
			}
			remaining[i]--
			cur = append(cur, i)
			rec()
			cur = cur[:len(cur)-1]
			remaining[i]++
		}
	}
	rec()
	return out
}

// mcRun executes one interleaving of the scripts under protocol k and
// returns the committed history (ts → reads with observed versions,
// writes). Restarted transactions are abandoned (not retried): the check
// is about what the protocol ACCEPTS, not its liveness.
func mcRun(k Kind, scripts []mcScript, order []int) ([]histEntry, *store.Store) {
	db := store.New()
	const nObjects = 2
	for i := 0; i < nObjects; i++ {
		db.Put(store.ObjectID(i), []byte{0})
	}
	c := NewController(k, db)

	txns := make([]*txn.Transaction, len(scripts))
	pos := make([]int, len(scripts))
	dead := make([]bool, len(scripts))
	for i := range scripts {
		txns[i] = txn.New(txn.ID(i+1), txn.Firm, 0, txn.NoDeadline)
		c.Begin(txns[i])
	}
	var history []histEntry
	for _, i := range order {
		if dead[i] {
			pos[i]++ // consume the step slot; the txn is gone
			continue
		}
		t := txns[i]
		if _, d := c.Doomed(t); d {
			dead[i] = true
			c.Finish(t)
			pos[i]++
			continue
		}
		script := scripts[i]
		step := pos[i]
		pos[i]++
		if step < len(script) {
			op := script[step]
			switch op.kind {
			case mcRead:
				if _, ok := t.Read(db, op.obj); ok {
					if wts, observed := t.ObservedWriteTS(op.obj); observed {
						if !c.OnRead(t, op.obj, wts) {
							dead[i] = true
							c.Finish(t)
						}
					}
				}
			case mcWrite:
				t.StageWrite(op.obj, []byte{byte(i + 1)})
				if !c.OnWrite(t, op.obj) {
					dead[i] = true
					c.Finish(t)
				}
			case mcDelete:
				t.StageDelete(op.obj)
				if !c.OnWrite(t, op.obj) {
					dead[i] = true
					c.Finish(t)
				}
			}
			continue
		}
		// Final step: validation.
		if r := c.Validate(t); r.OK {
			h := histEntry{
				ts:     t.CommitTS,
				reads:  append([]txn.ReadEntry(nil), t.ReadSet()...),
				writes: append([]store.ObjectID(nil), t.WriteIDs()...),
			}
			h.images = make(map[store.ObjectID][]byte, len(h.writes))
			h.deletes = make(map[store.ObjectID]bool)
			for _, id := range h.writes {
				if t.IsDelete(id) {
					h.deletes[id] = true
					continue
				}
				img, _ := t.WriteImage(id)
				h.images[id] = append([]byte(nil), img...)
			}
			history = append(history, h)
		}
		dead[i] = true
		c.Finish(t)
	}
	return history, db
}

// checkHistory asserts the serializability condition on a committed
// history: every read observed exactly the latest committed write with a
// smaller timestamp.
func checkHistory(t *testing.T, k Kind, scripts []mcScript, order []int, history []histEntry) {
	t.Helper()
	writersOf := map[store.ObjectID][]uint64{}
	seen := map[uint64]bool{}
	for _, h := range history {
		if seen[h.ts] {
			t.Fatalf("%v order %v: duplicate commit timestamp %d", k, order, h.ts)
		}
		seen[h.ts] = true
		for _, w := range h.writes {
			writersOf[w] = append(writersOf[w], h.ts)
		}
	}
	for _, h := range history {
		for _, re := range h.reads {
			want := uint64(0)
			for _, wts := range writersOf[re.ID] {
				if wts < h.ts && wts > want {
					want = wts
				}
			}
			if re.WriteTS != want {
				t.Fatalf("%v order %v: txn@%d read obj %d @%d, latest earlier write @%d — not serializable\nhistory: %+v",
					k, order, h.ts, re.ID, re.WriteTS, want, history)
			}
			if re.WriteTS >= h.ts {
				t.Fatalf("%v order %v: read from the future", k, order)
			}
		}
	}
}

// TestModelCheckAllInterleavings runs every interleaving of three
// adversarial transaction shapes over a two-object database through all
// four protocols. With 3 transactions × 3 steps each this is
// 9!/(3!3!3!) = 1680 interleavings per scenario per protocol.
func TestModelCheckAllInterleavings(t *testing.T) {
	r := func(o store.ObjectID) mcOp { return mcOp{kind: mcRead, obj: o} }
	w := func(o store.ObjectID) mcOp { return mcOp{kind: mcWrite, obj: o} }
	d := func(o store.ObjectID) mcOp { return mcOp{kind: mcDelete, obj: o} }

	scenarios := [][]mcScript{
		// Classic write skew shape: each reads the other's write target.
		{{r(0), w(1)}, {r(1), w(0)}, {r(0), r(1)}},
		// Read-modify-write collisions on one object.
		{{r(0), w(0)}, {r(0), w(0)}, {r(0), w(0)}},
		// Readers racing a blind writer across both objects.
		{{w(0), w(1)}, {r(0), r(1)}, {r(1), r(0)}},
		// Mixed: rmw, inverse rmw, and a read-only txn.
		{{r(0), w(1)}, {w(0), r(1)}, {r(1), r(0)}},
		// Deletes racing writes and readers of the same object.
		{{r(0), d(0)}, {r(0), w(0)}, {r(0), r(0)}},
		// Delete one object while another transaction recreates it.
		{{d(0), w(1)}, {w(0), r(1)}, {r(0), w(0)}},
	}

	for si, scripts := range scenarios {
		steps := make([]int, len(scripts))
		for i, s := range scripts {
			steps[i] = len(s) + 1 // +1 for validation
		}
		orders := interleavings(steps)
		for _, k := range []Kind{DATI, TI, DA, BC} {
			committed := 0
			for _, order := range orders {
				history, db := mcRun(k, scripts, order)
				committed += len(history)
				checkHistory(t, k, scripts, order, history)
				checkFinalState(t, k, order, history, db)
			}
			if committed == 0 {
				t.Fatalf("%v scenario %d: nothing ever committed across %d interleavings", k, si, len(orders))
			}
			t.Logf("%v scenario %d: %d interleavings, %d total commits", k, si, len(orders), committed)
		}
	}
}

// checkFinalState replays the committed history in timestamp order over
// the initial database and requires byte-identical final contents — the
// other half of serializability.
func checkFinalState(t *testing.T, k Kind, order []int, history []histEntry, db *store.Store) {
	t.Helper()
	sorted := append([]histEntry(nil), history...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ts < sorted[j].ts })
	replay := store.New()
	for i := 0; i < 2; i++ {
		replay.Put(store.ObjectID(i), []byte{0})
	}
	for _, h := range sorted {
		for _, id := range h.writes {
			if h.deletes[id] {
				replay.ApplyDelete(id, h.ts)
				continue
			}
			replay.Apply(id, h.images[id], h.ts)
		}
	}
	if replay.Checksum() != db.Checksum() {
		t.Fatalf("%v order %v: final state differs from timestamp-order replay; history: %+v", k, order, history)
	}
}

// TestModelCheckIntervalBeatsBC verifies, exhaustively, the ordering
// claim: over all interleavings the interval protocols never commit
// fewer transactions than classic backward validation.
func TestModelCheckIntervalBeatsBC(t *testing.T) {
	r := func(o store.ObjectID) mcOp { return mcOp{kind: mcRead, obj: o} }
	w := func(o store.ObjectID) mcOp { return mcOp{kind: mcWrite, obj: o} }
	scripts := []mcScript{{r(0), w(1)}, {w(0), r(1)}, {r(1), r(0)}}
	steps := []int{3, 3, 3}
	orders := interleavings(steps)

	commits := map[Kind]int{}
	for _, k := range []Kind{DATI, BC} {
		for _, order := range orders {
			h, _ := mcRun(k, scripts, order)
			commits[k] += len(h)
		}
	}
	if commits[DATI] < commits[BC] {
		t.Fatalf("DATI committed %d < BC %d over %d interleavings",
			commits[DATI], commits[BC], len(orders))
	}
	t.Logf("commits over %d interleavings: DATI=%d BC=%d", len(orders), commits[DATI], commits[BC])
}

func TestInterleavingsCount(t *testing.T) {
	// 2 txns × 2 steps: C(4,2) = 6 interleavings.
	got := interleavings([]int{2, 2})
	if len(got) != 6 {
		t.Fatalf("interleavings = %d, want 6", len(got))
	}
	for _, o := range got {
		if len(o) != 4 {
			t.Fatalf("bad order %v", o)
		}
	}
	_ = fmt.Sprint(got)
}
