// Package occ implements the optimistic concurrency-control protocols of
// the RODAIN database: OCC-DATI (the paper's protocol, combining OCC-DA
// and OCC-TI), plus the OCC-TI, OCC-DA and classic backward-validation
// OCC-BC baselines.
//
// All four protocols share a timestamp formulation. Every committed
// transaction carries a unique commit timestamp; the serialization order
// of accepted transactions is exactly commit-timestamp order. The
// interval protocols (DA, TI, DATI) keep a timestamp interval
// [tsLow, tsHigh] per active transaction ("dynamic adjustment of
// serialization order using timestamp intervals"): a validating
// transaction picks its final timestamp inside its interval and then
// narrows the intervals of conflicting active transactions — a reader of
// an overwritten item is pushed before the writer, a writer of a read or
// written item is pushed after — restarting an active transaction only
// when its interval becomes empty. OCC-BC instead restarts the validating
// transaction whenever any item it read was overwritten after the read,
// which is the classic source of unnecessary restarts the paper's
// protocol avoids.
//
// Differences between the interval protocols as implemented here:
//
//   - OCC-DATI defers all conflict detection and interval adjustment to
//     the atomic validation step and assigns the earliest feasible
//     timestamp, leaving maximal room for active transactions to
//     serialize after it.
//   - OCC-TI additionally narrows the running transaction's interval at
//     every read and write against the committed item timestamps, so a
//     doomed transaction is detected (and restarted) as early as
//     possible, at the price of bookkeeping on every data access.
//   - OCC-DA assigns the latest feasible timestamp (validation order
//     where unconstrained) and performs no access-time narrowing.
//
// # Concurrency structure
//
// The controller is built so the common case never takes a global lock:
//
//   - Doomed polls read an atomic flag on the transaction itself.
//   - Begin/Finish touch one shard of the active-transaction registry.
//   - OnRead/OnWrite register the access in one shard of a per-object
//     index (the conflict sets a validator scans), plus one striped
//     store lookup.
//   - Validate holds a short serial "ticket" mutex for timestamp and
//     serial-order assignment, conflict-set snapshot against the object
//     shards, and interval adjustment of conflicting actives — then
//     applies the write phase through the striped store's ApplyGroup
//     outside the ticket. Validation order (SerialOrder) is assigned
//     under the ticket, and the store installs concurrent write phases
//     in commit-timestamp order, so the applied state equals the
//     serial application of the validation sequence.
//
// Committed-but-not-yet-applied effects are covered by a per-object
// overlay (committedRead/Write/Delete below): a validator folds the
// overlay over the store's item timestamps, so a second transaction
// validating during the first one's in-flight write phase still sees
// its constraints. An access that registers after a conflicting
// validation already scanned the object's conflict sets is doomed
// conservatively (it missed its interval adjustment); that window
// cannot occur in sequential use, so single-threaded behaviour is
// identical to the classic single-mutex controller.
package occ

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/store"
	"repro/internal/txn"
)

// Kind selects a concurrency-control protocol.
type Kind int

// The available protocols.
const (
	// DATI is OCC-DATI, the paper's protocol.
	DATI Kind = iota
	// TI is OCC-TI (Lee & Son): timestamp intervals with access-time
	// narrowing.
	TI
	// DA is OCC-DA (Lam, Lam & Hung): dynamic adjustment at validation,
	// latest feasible timestamp.
	DA
	// BC is classic backward-validation OCC: the validating transaction
	// restarts on any read overwritten since it was read.
	BC
)

// ParseKind converts a protocol name ("dati", "ti", "da", "bc") to a Kind.
func ParseKind(name string) (Kind, error) {
	switch name {
	case "dati", "occ-dati", "OCC-DATI":
		return DATI, nil
	case "ti", "occ-ti", "OCC-TI":
		return TI, nil
	case "da", "occ-da", "OCC-DA":
		return DA, nil
	case "bc", "occ-bc", "OCC-BC":
		return BC, nil
	}
	return 0, fmt.Errorf("occ: unknown protocol %q", name)
}

func (k Kind) String() string {
	switch k {
	case DATI:
		return "OCC-DATI"
	case TI:
		return "OCC-TI"
	case DA:
		return "OCC-DA"
	case BC:
		return "OCC-BC"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Result reports the outcome of a validation.
type Result struct {
	// OK reports whether the validating transaction was accepted. When
	// true its CommitTS and SerialOrder are set and its writes have been
	// applied to the database.
	OK bool
	// Victims lists active transactions whose timestamp interval became
	// empty during adjustment; the engine must restart (or abort) them.
	// Victims is only non-empty when OK is true.
	Victims []*txn.Transaction
}

// Stats counts protocol events, for the restart-behaviour ablation.
type Stats struct {
	Validations     uint64 // validation attempts
	Commits         uint64 // accepted validations
	SelfRestarts    uint64 // validating transaction rejected
	VictimRestarts  uint64 // active transactions killed by adjustment
	AccessRestarts  uint64 // transactions doomed at read/write time
	IntervalAdjusts uint64 // interval narrowings applied to actives
	ROFastCommits   uint64 // read-only transactions committed on the fast path
	ROFallbacks     uint64 // read-only fast-path attempts that fell back to full validation

	// ReadLatency summarizes the engine-observed data-read latency
	// distribution (lock-free histogram; see Controller.ObserveReadLatency).
	ReadLatency metrics.HistogramSummary
}

// counters is the controller's live (atomic) form of Stats.
type counters struct {
	validations     atomic.Uint64
	commits         atomic.Uint64
	selfRestarts    atomic.Uint64
	victimRestarts  atomic.Uint64
	accessRestarts  atomic.Uint64
	intervalAdjusts atomic.Uint64
	roFastCommits   atomic.Uint64
	roFallbacks     atomic.Uint64
}

const (
	objShardBits  = 6
	objShardCount = 1 << objShardBits // object-index shards
	txnShardBits  = 4
	txnShardCount = 1 << txnShardBits // active-registry shards
)

// objectState is the per-object concurrency bookkeeping: the active
// transactions registered as readers/writers of the object (the conflict
// sets a validator adjusts), and the committed-timestamp overlay that
// covers the window between a transaction's acceptance under the ticket
// and the completion of its write phase against the store. Overlay
// fields are zero when no apply is pending; they are published at
// acceptance and retired (reset) once the owning apply has reached the
// store, at which point the store's own item timestamps subsume them.
type objectState struct {
	committedRead   uint64
	committedWrite  uint64
	committedDelete uint64
	readers         map[txn.ID]*txn.Transaction
	writers         map[txn.ID]*txn.Transaction
}

func (os *objectState) idle() bool {
	return len(os.readers) == 0 && len(os.writers) == 0 &&
		os.committedRead == 0 && os.committedWrite == 0 && os.committedDelete == 0
}

// objShard is one lock-striped slice of the per-object index.
type objShard struct {
	mu      sync.Mutex
	objects map[store.ObjectID]*objectState
	// pool holds retired objectStates (maps emptied, overlay zero) for
	// reuse, so a cold object's first reader does not pay two map
	// allocations on the hot path. Guarded by mu, bounded by
	// objShardResident.
	pool []*objectState
	_    [40]byte // keep shards on separate cache lines
}

// readerMapSeed pre-sizes the reader/writer maps of a fresh objectState.
// Most objects see a handful of concurrent registrants; seeding the maps
// at that size makes the first registrations growth-free.
const readerMapSeed = 4

// ensure returns the object's state, creating it if absent — from the
// shard's retire pool when one is available, so steady-state churn on a
// shedding shard allocates nothing. Caller holds the shard mutex.
// ensure is the only creator of objectStates, and every state it hands
// out has non-nil, pre-sized reader/writer maps.
func (sh *objShard) ensure(id store.ObjectID) *objectState {
	os := sh.objects[id]
	if os == nil {
		if n := len(sh.pool); n > 0 {
			os = sh.pool[n-1]
			sh.pool[n-1] = nil
			sh.pool = sh.pool[:n-1]
		} else {
			os = &objectState{
				readers: make(map[txn.ID]*txn.Transaction, readerMapSeed),
				writers: make(map[txn.ID]*txn.Transaction, readerMapSeed),
			}
		}
		sh.objects[id] = os
	}
	return os
}

// objShardResident is how many idle entries a shard keeps resident
// before it starts freeing them. Hot objects cycle between idle and
// registered on every transaction; keeping a bounded working set
// resident (with its pre-built reader/writer maps) avoids re-allocating
// the state on each touch, while unbounded keyspaces still shed entries
// once a shard grows past the cap.
const objShardResident = 64

// freeIfIdle drops the object's state once nothing references it and
// the shard already holds a full resident set, so the index stays
// bounded without churning allocations on a small hot set. Shed states
// (maps already empty by idleness, overlay zero) go back to the shard
// pool for the next cold object. Caller holds the shard mutex.
func (sh *objShard) freeIfIdle(id store.ObjectID, os *objectState) {
	if os.idle() && len(sh.objects) > objShardResident {
		delete(sh.objects, id)
		if len(sh.pool) < objShardResident {
			sh.pool = append(sh.pool, os)
		}
	}
}

// txnShard is one slice of the active-transaction registry.
type txnShard struct {
	mu     sync.Mutex
	active map[txn.ID]*txn.Transaction
	_      [40]byte
}

// Controller coordinates one protocol instance over one database. It is
// safe for concurrent use.
type Controller struct {
	kind Kind
	db   *store.Store

	txns [txnShardCount]txnShard
	objs [objShardCount]objShard

	activeN atomic.Int64

	// mu is the serial ticket: it orders validations and guards the
	// timestamp/serial state below. Nothing on the per-operation path
	// (Begin, Finish, OnRead, OnWrite, Doomed) takes it.
	mu           sync.Mutex
	applyIdle    *sync.Cond // signaled when pendingApply drops to zero
	pendingApply int        // accepted validations whose write phase is in flight
	// applying holds the serial orders of those in-flight write phases;
	// StableSerial derives the fuzzy checkpointer's watermark from it.
	// Bounded by the worker count, so the min scan is a few entries.
	applying   map[uint64]struct{}
	usedTS     map[uint64]struct{}
	maxTS      uint64
	tsFloor    uint64 // all new timestamps must exceed this (takeover seeding)
	nextSerial uint64

	// adjustment scratch, reused across validations (single validator at
	// a time under the ticket).
	adjTxns []adjEntry
	adjIdx  map[txn.ID]int

	// validateSeq is the acceptance seqlock the read-only fast path
	// scans against: odd while a validator's acceptance window (overlay
	// publication through serial assignment, all under the ticket) is
	// open, even otherwise. A read-only certification scan that observes
	// the same even value before and after knows no acceptance
	// interleaved it.
	validateSeq atomic.Uint64

	// readLat is the engine-fed data-read latency distribution; it uses
	// the lock-free histogram so observation costs two atomic adds on
	// the zero-lock read path it measures.
	readLat metrics.AtomicHistogram

	n counters
}

// adjEntry aggregates the conflict directions between the validating
// transaction and one active transaction, mirroring the classic per-
// active conflict classification: precede means the active must
// serialize before the validator (it read an item the validator
// overwrites), follow means after (it writes an item the validator read
// or wrote).
type adjEntry struct {
	u       *txn.Transaction
	precede bool
	follow  bool
}

// NewController returns a controller running protocol kind over db.
func NewController(kind Kind, db *store.Store) *Controller {
	c := &Controller{
		kind:     kind,
		db:       db,
		usedTS:   make(map[uint64]struct{}),
		adjIdx:   make(map[txn.ID]int),
		applying: make(map[uint64]struct{}),
	}
	c.applyIdle = sync.NewCond(&c.mu)
	for i := range c.txns {
		c.txns[i].active = make(map[txn.ID]*txn.Transaction)
	}
	for i := range c.objs {
		c.objs[i].objects = make(map[store.ObjectID]*objectState)
	}
	return c
}

// fibMix is the 64-bit Fibonacci hashing constant; it spreads dense
// object and transaction ids across shards.
const fibMix = 0x9E3779B97F4A7C15

func (c *Controller) objShardFor(id store.ObjectID) *objShard {
	return &c.objs[(uint64(id)*fibMix)>>(64-objShardBits)]
}

func (c *Controller) txnShardFor(id txn.ID) *txnShard {
	return &c.txns[(uint64(id)*fibMix)>>(64-txnShardBits)]
}

// Kind reports the protocol in use.
func (c *Controller) Kind() Kind { return c.kind }

// Stats returns a snapshot of the protocol counters.
func (c *Controller) Stats() Stats {
	return Stats{
		Validations:     c.n.validations.Load(),
		Commits:         c.n.commits.Load(),
		SelfRestarts:    c.n.selfRestarts.Load(),
		VictimRestarts:  c.n.victimRestarts.Load(),
		AccessRestarts:  c.n.accessRestarts.Load(),
		IntervalAdjusts: c.n.intervalAdjusts.Load(),
		ROFastCommits:   c.n.roFastCommits.Load(),
		ROFallbacks:     c.n.roFallbacks.Load(),
		ReadLatency:     c.readLat.Summary(),
	}
}

// ObserveReadLatency records one data-read latency into the
// controller's read histogram (surfaced through Stats.ReadLatency).
// Lock-free; safe from any number of workers.
func (c *Controller) ObserveReadLatency(d time.Duration) { c.readLat.Observe(d) }

// ActiveCount reports the number of registered active transactions.
func (c *Controller) ActiveCount() int {
	return int(c.activeN.Load())
}

// Seed initializes the validation-order and timestamp counters when a
// node takes over from an applied log position: serial orders continue
// from lastSerial and every new commit timestamp will exceed maxTS, so
// the new epoch never collides with timestamps issued before the
// failover.
func (c *Controller) Seed(lastSerial, maxTS uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if lastSerial > c.nextSerial {
		c.nextSerial = lastSerial
	}
	if maxTS > c.maxTS {
		c.maxTS = maxTS
	}
	if maxTS > c.tsFloor {
		c.tsFloor = maxTS
	}
}

// LastSerial reports the validation order of the most recent commit.
func (c *Controller) LastSerial() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.nextSerial
}

// StableSerial reports the largest validation order S such that every
// accepted transaction with serial ≤ S has completed its write phase:
// all of their after images are installed in the database. It is the
// watermark source for fuzzy checkpoints — a stripe copied after
// StableSerial returned S is guaranteed to contain every group ≤ S that
// touched it, so replaying the log suffix above S over the copy cannot
// miss anything. With no write phase in flight it equals LastSerial.
func (c *Controller) StableSerial() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.nextSerial
	for serial := range c.applying {
		if serial-1 < s {
			s = serial - 1
		}
	}
	return s
}

// WithFrozen runs f while validation is blocked and no accepted write
// phase is in flight, passing the last issued validation order. The
// database is transaction-consistent for the duration of f — this is
// the quiescent point used to snapshot state for a rejoining mirror.
func (c *Controller) WithFrozen(f func(lastSerial uint64)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for c.pendingApply > 0 {
		c.applyIdle.Wait()
	}
	f(c.nextSerial)
}

// Begin registers t as active. A transaction must be registered before
// any OnRead/OnWrite/Validate call and must eventually be Finished.
func (c *Controller) Begin(t *txn.Transaction) {
	sh := c.txnShardFor(t.ID)
	sh.mu.Lock()
	if _, ok := sh.active[t.ID]; !ok {
		c.activeN.Add(1)
	}
	sh.active[t.ID] = t
	sh.mu.Unlock()
	t.ClearDoom()
}

// Finish unregisters t after commit or abort, removing it from the
// conflict sets of every object it touched. It must be called before
// the transaction's workspace is discarded or reset.
func (c *Controller) Finish(t *txn.Transaction) {
	sh := c.txnShardFor(t.ID)
	sh.mu.Lock()
	if _, ok := sh.active[t.ID]; ok {
		delete(sh.active, t.ID)
		c.activeN.Add(-1)
	}
	sh.mu.Unlock()
	for _, re := range t.ReadSet() {
		osh := c.objShardFor(re.ID)
		osh.mu.Lock()
		if os := osh.objects[re.ID]; os != nil {
			delete(os.readers, t.ID)
			osh.freeIfIdle(re.ID, os)
		}
		osh.mu.Unlock()
	}
	for _, id := range t.WriteIDs() {
		osh := c.objShardFor(id)
		osh.mu.Lock()
		if os := osh.objects[id]; os != nil {
			delete(os.writers, t.ID)
			osh.freeIfIdle(id, os)
		}
		osh.mu.Unlock()
	}
	t.ClearDoom()
}

// Doomed reports whether t has been marked for restart by another
// transaction's validation, along with the reason. Engines poll this at
// operation boundaries; it is a single atomic load.
func (c *Controller) Doomed(t *txn.Transaction) (txn.AbortReason, bool) {
	return t.DoomState()
}

// OnRead registers that t read object id, observing write timestamp
// wts. It reports false if the transaction is now doomed and should
// restart without further work. Registration is what a later
// validator's conflict scan sees, so every recorded read must be
// registered here before the transaction validates.
func (c *Controller) OnRead(t *txn.Transaction, id store.ObjectID, wts uint64) bool {
	if c.kind == BC {
		return true
	}
	if c.kind == TI {
		if _, dead := t.DoomState(); dead {
			return false
		}
		t.RaiseLow(wts + 1)
		if t.IntervalEmpty() {
			c.n.accessRestarts.Add(1)
			t.MarkDoomed(txn.Conflict)
			return false
		}
	}
	sh := c.objShardFor(id)
	sh.mu.Lock()
	os := sh.objects[id]
	if os != nil {
		if _, already := os.readers[t.ID]; already {
			// Re-registration: t has been in this object's conflict set
			// since its first read, so every writer accepted since then
			// adjusted t's interval. Nothing to re-check.
			sh.mu.Unlock()
			return true
		}
	}
	// First-time-registration guard: if a writer of this object was
	// accepted after t read it but before this registration, t missed
	// that writer's interval adjustment and its read may already be
	// stale. The overlay covers writers whose apply is still in flight;
	// the store's item timestamp covers writers that have fully applied
	// (reading it under the shard mutex orders it after any overlay
	// retirement). Dooming is conservative but the window only exists
	// under concurrency — sequentially the store matches wts exactly.
	if os != nil && (os.committedWrite > wts || os.committedDelete > wts) {
		sh.mu.Unlock()
		if t.MarkDoomed(txn.Conflict) {
			c.n.accessRestarts.Add(1)
		}
		return false
	}
	if _, dbwts, ok := c.db.Timestamps(id); !ok || dbwts > wts {
		sh.mu.Unlock()
		if t.MarkDoomed(txn.Conflict) {
			c.n.accessRestarts.Add(1)
		}
		return false
	}
	if os == nil {
		os = sh.ensure(id)
	}
	os.readers[t.ID] = t
	sh.mu.Unlock()
	return true
}

// OnWrite registers that t staged a write (or delete) of object id. It
// reports false if the transaction is now doomed. As with OnRead, the
// registration feeds later validators' conflict scans.
func (c *Controller) OnWrite(t *txn.Transaction, id store.ObjectID) bool {
	if c.kind == BC {
		return true
	}
	if c.kind == TI {
		if _, dead := t.DoomState(); dead {
			return false
		}
		rts, wts, del, ok := c.db.ReadInfo(id)
		t.RaiseLow(del + 1)
		if ok {
			t.RaiseLow(rts + 1)
			t.RaiseLow(wts + 1)
		}
		if t.IntervalEmpty() {
			c.n.accessRestarts.Add(1)
			t.MarkDoomed(txn.Conflict)
			return false
		}
	}
	sh := c.objShardFor(id)
	sh.mu.Lock()
	os := sh.ensure(id)
	os.writers[t.ID] = t
	sh.mu.Unlock()
	return true
}

// Validate atomically validates t and, on success, assigns its commit
// timestamp and serial (validation) order, adjusts conflicting active
// transactions, and applies its deferred writes to the database. The
// acceptance decision and all interval adjustments happen under the
// serial ticket; only the write phase itself runs outside it, covered
// by the committed-timestamp overlay until it completes.
//
// On failure (Result.OK == false) the engine must restart or abort t.
// On success the engine must restart every transaction in Result.Victims.
func (c *Controller) Validate(t *txn.Transaction) Result {
	c.n.validations.Add(1)

	if _, dead := t.DoomState(); dead {
		t.ClearDoom()
		c.n.selfRestarts.Add(1)
		return Result{}
	}

	switch c.kind {
	case BC:
		return c.validateBC(t)
	default:
		return c.validateInterval(t)
	}
}

// roScanRetries bounds the certification rescans the read-only fast
// path attempts before giving up on the fast path. Each retry only
// happens when a writer's acceptance window interleaved the scan, so
// under read-mostly load the first pass nearly always certifies.
const roScanRetries = 3

// ValidateReadOnly attempts to commit a read-only transaction on the
// snapshot fast path: no serial ticket, no serial order, no write phase
// — and therefore nothing for the group committer or mirror shipper to
// do. It reports (Result, true) when it reached a decision (accepted,
// with t.CommitTS set and t.SerialOrder zero, or rejected because t was
// already doomed) and (Result{}, false) when the fast path could not
// certify the snapshot, in which case the caller must fall back to full
// Validate (sound for a read-registered transaction; a transaction that
// skipped OnRead registration must instead restart into the registered
// path).
//
// Correctness under the interval protocols rests on three pieces:
//
//  1. snapTS — the largest write timestamp the transaction observed —
//     is its commit timestamp: it serializes directly after the newest
//     writer it read. Before certifying, every read item's store read
//     timestamp is raised to snapTS (a lock-free CAS-max), so any
//     writer of those items accepted afterwards is forced to serialize
//     above snapTS; the gap-spaced timestamp allocator can never
//     squeeze a later writer of a read item underneath the snapshot.
//  2. The certification scan proves no already-accepted writer
//     invalidates the snapshot: per read item, the committed-timestamp
//     overlay (covering accepted writes whose apply is still in
//     flight) must not exceed the observed write timestamp, and the
//     store's current version must still be exactly the one read —
//     overlay first, then store, so an apply retiring its overlay entry
//     between the two loads is caught by the store check.
//  3. The acceptance seqlock detects writers whose acceptance window
//     interleaved the scan (their overlay may have been published after
//     the scan passed that item): the scan only certifies if
//     validateSeq was even and unchanged across it, retrying a bounded
//     number of times otherwise.
//
// Committed fast-path transactions consume no timestamp slot and no
// serial: two read-only commits may share a timestamp with each other
// (they cannot observe one another) and with the writer at snapTS
// (they serialize immediately after it). Because no serial is
// consumed, skipping the shipped log leaves no gap in the cohort
// shipper's contiguous serial sequence.
func (c *Controller) ValidateReadOnly(t *txn.Transaction) (Result, bool) {
	if !t.ReadOnly() {
		return Result{}, false
	}
	if _, dead := t.DoomState(); dead {
		// Only read-registered transactions can be doomed; the decision
		// is the same one Validate would reach, without the ticket.
		t.ClearDoom()
		c.n.validations.Add(1)
		c.n.selfRestarts.Add(1)
		return Result{}, true
	}
	reads := t.ReadSet()
	var snapTS uint64
	for i := range reads {
		if reads[i].WriteTS > snapTS {
			snapTS = reads[i].WriteTS
		}
	}
	// Pin the snapshot before proving it: once these read timestamps are
	// installed, no future writer of a read item can serialize at or
	// below snapTS. If the fast path falls back after this, the raised
	// read timestamps are merely conservative (they constrain writers a
	// committed reader at snapTS would have constrained anyway).
	for i := range reads {
		c.db.ObserveRead(reads[i].ID, snapTS)
	}
	for attempt := 0; attempt < roScanRetries; attempt++ {
		s0 := c.validateSeq.Load()
		if s0&1 != 0 {
			continue // an acceptance window is open right now; rescan
		}
		current := true
		for i := range reads {
			re := &reads[i]
			sh := c.objShardFor(re.ID)
			sh.mu.Lock()
			os := sh.objects[re.ID]
			stale := os != nil && (os.committedWrite > re.WriteTS || os.committedDelete > re.WriteTS)
			sh.mu.Unlock()
			if stale {
				current = false
				break
			}
			if _, wts, ok := c.db.Timestamps(re.ID); !ok || wts != re.WriteTS {
				current = false
				break
			}
		}
		if !current {
			// Genuinely overwritten (or deleted) since the read. Full
			// interval validation may still salvage the transaction by
			// serializing it below the overwriter — that is DATI's whole
			// point — so this is a fallback, not a rejection.
			break
		}
		if c.validateSeq.Load() != s0 {
			continue // an acceptance interleaved the scan; rescan
		}
		t.CommitTS = snapTS
		t.SerialOrder = 0
		c.n.validations.Add(1)
		c.n.commits.Add(1)
		c.n.roFastCommits.Add(1)
		return Result{OK: true}, true
	}
	c.n.roFallbacks.Add(1)
	return Result{}, false
}

// validateBC is classic backward validation: reject the validating
// transaction if any item it read has been overwritten since.
func (c *Controller) validateBC(t *txn.Transaction) Result {
	c.mu.Lock()
	for _, re := range t.ReadSet() {
		_, wts, ok := c.db.Timestamps(re.ID)
		// A read-set item that has vanished was deleted since the read
		// — as much an invalidation as an overwrite.
		if !ok || wts != re.WriteTS {
			c.mu.Unlock()
			c.n.selfRestarts.Add(1)
			return Result{}
		}
		// A committed overwrite or delete whose apply is still in
		// flight invalidates the read just the same.
		sh := c.objShardFor(re.ID)
		sh.mu.Lock()
		os := sh.objects[re.ID]
		stale := os != nil && (os.committedWrite > re.WriteTS || os.committedDelete > re.WriteTS)
		sh.mu.Unlock()
		if stale {
			c.mu.Unlock()
			c.n.selfRestarts.Add(1)
			return Result{}
		}
	}
	ts := c.maxTS + 1
	c.validateSeq.Add(1) // acceptance window opens (odd)
	c.publishOverlay(t, ts)
	c.commitTicket(t, ts)
	c.validateSeq.Add(1) // acceptance window closes (even)
	c.mu.Unlock()

	c.applyAndRetire(t, ts)
	return Result{OK: true}
}

// validateInterval implements the shared interval machinery for DA, TI
// and DATI.
func (c *Controller) validateInterval(t *txn.Transaction) Result {
	// Serialize after every committed writer whose value t read. This
	// uses only the transaction's own read set, so it needs no lock.
	var lo uint64
	for _, re := range t.ReadSet() {
		if re.WriteTS+1 > lo {
			lo = re.WriteTS + 1
		}
	}

	c.mu.Lock()
	// A victim adjustment may have landed between the entry check and
	// taking the ticket; decisions made past this point are stable
	// because all dooming of other transactions happens under it.
	if _, dead := t.DoomState(); dead {
		c.mu.Unlock()
		t.ClearDoom()
		c.n.selfRestarts.Add(1)
		return Result{}
	}
	if c.tsFloor+1 > lo {
		lo = c.tsFloor + 1
	}
	// Serialize after every committed reader and writer of items t
	// writes. A transactionally deleted item keeps its deletion
	// timestamp as a tombstone: a re-creating writer must serialize
	// after the deletion (which itself serialized after every reader
	// and writer the item had). The overlay folds in committed
	// transactions whose write phase has not yet reached the store.
	for _, id := range t.WriteIDs() {
		rts, wts, del, ok := c.db.ReadInfo(id)
		if del+1 > lo {
			lo = del + 1
		}
		if ok {
			if rts+1 > lo {
				lo = rts + 1
			}
			if wts+1 > lo {
				lo = wts + 1
			}
		}
		sh := c.objShardFor(id)
		sh.mu.Lock()
		if os := sh.objects[id]; os != nil {
			if os.committedRead+1 > lo {
				lo = os.committedRead + 1
			}
			if os.committedWrite+1 > lo {
				lo = os.committedWrite + 1
			}
			if os.committedDelete+1 > lo {
				lo = os.committedDelete + 1
			}
		}
		sh.mu.Unlock()
	}
	tlo, hi := t.Interval()
	if tlo > lo {
		lo = tlo
	}
	if lo > hi {
		c.mu.Unlock()
		c.n.selfRestarts.Add(1)
		return Result{}
	}

	ts, ok := c.pickTimestamp(lo, hi)
	if !ok {
		c.mu.Unlock()
		c.n.selfRestarts.Add(1)
		return Result{}
	}

	c.validateSeq.Add(1) // acceptance window opens (odd)
	victims := c.adjustConflicting(t, ts)
	c.commitTicket(t, ts)
	c.validateSeq.Add(1) // acceptance window closes (even)
	c.mu.Unlock()

	c.applyAndRetire(t, ts)
	return Result{OK: true, Victims: victims}
}

// adjustConflicting publishes t's acceptance at timestamp ts into the
// object overlay and performs the forward adjustment of conflicting
// active transactions. Conflicts are collected per object from the
// shard conflict sets, then applied per transaction so each conflicting
// active receives both of its direction constraints before its interval
// is checked for emptiness — the same order as a per-active scan of the
// full registry, at per-shard cost. Caller holds the ticket.
func (c *Controller) adjustConflicting(t *txn.Transaction, ts uint64) []*txn.Transaction {
	adj := c.adjTxns[:0]
	note := func(u *txn.Transaction, precede bool) {
		if u.ID == t.ID {
			return
		}
		i, seen := c.adjIdx[u.ID]
		if !seen {
			i = len(adj)
			adj = append(adj, adjEntry{u: u})
			c.adjIdx[u.ID] = i
		}
		if precede {
			adj[i].precede = true
		} else {
			adj[i].follow = true
		}
	}
	for _, id := range t.WriteIDs() {
		sh := c.objShardFor(id)
		sh.mu.Lock()
		os := sh.ensure(id)
		//rodain:allow lockorder (IsDelete is a pure predicate on the txn's own write set; it takes no locks)
		if t.IsDelete(id) {
			if ts > os.committedDelete {
				os.committedDelete = ts
			}
		} else {
			if ts > os.committedWrite {
				os.committedWrite = ts
			}
		}
		for _, u := range os.readers {
			note(u, true)
		}
		for _, u := range os.writers {
			note(u, false)
		}
		sh.mu.Unlock()
	}
	for _, re := range t.ReadSet() {
		sh := c.objShardFor(re.ID)
		sh.mu.Lock()
		os := sh.ensure(re.ID)
		if ts > os.committedRead {
			os.committedRead = ts
		}
		for _, u := range os.writers {
			note(u, false)
		}
		sh.mu.Unlock()
	}

	var victims []*txn.Transaction
	for i := range adj {
		u := adj[i].u
		delete(c.adjIdx, u.ID)
		if _, dead := u.DoomState(); dead {
			continue
		}
		if adj[i].precede && u.LowerHigh(ts-1) {
			c.n.intervalAdjusts.Add(1)
		}
		if adj[i].follow && u.RaiseLow(ts+1) {
			c.n.intervalAdjusts.Add(1)
		}
		if u.IntervalEmpty() && u.MarkDoomed(txn.Conflict) {
			c.n.victimRestarts.Add(1)
			victims = append(victims, u)
		}
	}
	c.adjTxns = adj
	return victims
}

// publishOverlay records t's acceptance at ts in the object overlay
// without adjusting anyone — the BC path, which registers no actives.
// Caller holds the ticket.
func (c *Controller) publishOverlay(t *txn.Transaction, ts uint64) {
	for _, id := range t.WriteIDs() {
		sh := c.objShardFor(id)
		sh.mu.Lock()
		os := sh.ensure(id)
		//rodain:allow lockorder (IsDelete is a pure predicate on the txn's own write set; it takes no locks)
		if t.IsDelete(id) {
			if ts > os.committedDelete {
				os.committedDelete = ts
			}
		} else {
			if ts > os.committedWrite {
				os.committedWrite = ts
			}
		}
		sh.mu.Unlock()
	}
	for _, re := range t.ReadSet() {
		sh := c.objShardFor(re.ID)
		sh.mu.Lock()
		os := sh.ensure(re.ID)
		if ts > os.committedRead {
			os.committedRead = ts
		}
		sh.mu.Unlock()
	}
}

// applyAndRetire runs the write phase outside the ticket, then retires
// t's overlay entries (the store's item timestamps now subsume them)
// and releases the pending-apply count that WithFrozen waits on.
func (c *Controller) applyAndRetire(t *txn.Transaction, ts uint64) {
	t.ApplyWrites(c.db)

	for _, id := range t.WriteIDs() {
		sh := c.objShardFor(id)
		sh.mu.Lock()
		if os := sh.objects[id]; os != nil {
			// Only retire our own publication: a later accepted writer
			// may have raised the overlay past ts, and its window is
			// still open.
			//rodain:allow lockorder (IsDelete is a pure predicate on the txn's own write set; it takes no locks)
			if t.IsDelete(id) {
				if os.committedDelete == ts {
					os.committedDelete = 0
				}
			} else if os.committedWrite == ts {
				os.committedWrite = 0
			}
			sh.freeIfIdle(id, os)
		}
		sh.mu.Unlock()
	}
	for _, re := range t.ReadSet() {
		sh := c.objShardFor(re.ID)
		sh.mu.Lock()
		if os := sh.objects[re.ID]; os != nil {
			if os.committedRead == ts {
				os.committedRead = 0
			}
			sh.freeIfIdle(re.ID, os)
		}
		sh.mu.Unlock()
	}

	c.mu.Lock()
	c.pendingApply--
	delete(c.applying, t.SerialOrder)
	if c.pendingApply == 0 {
		c.applyIdle.Broadcast()
	}
	c.mu.Unlock()
	c.n.commits.Add(1)
}

// tsGap is the spacing between freshly allocated commit timestamps.
// Fresh (upper-unconstrained) validations take gap-spaced slots so that a
// transaction which must later serialize *between* two committed ones —
// the overrun reader that interval adjustment saves from restarting —
// still finds a free integer in the gap.
const tsGap = 1 << 16

// pickTimestamp chooses a free timestamp in [lo, hi]. Upper-constrained
// transactions squeeze into the gap (earliest slot for DATI/TI, latest
// for DA); unconstrained ones take a fresh gap-spaced slot — the earliest
// feasible one for DATI/TI, the next after all issued timestamps
// (validation order) for DA. Caller holds the ticket.
func (c *Controller) pickTimestamp(lo, hi uint64) (uint64, bool) {
	if hi == math.MaxUint64 {
		ts := nextGapSlot(lo)
		if c.kind == DA {
			if m := nextGapSlot(c.maxTS); m > ts {
				ts = m
			}
		}
		for {
			if _, used := c.usedTS[ts]; !used {
				return ts, true
			}
			ts += tsGap
		}
	}
	if c.kind == DA {
		for ts := hi; ts >= lo; ts-- {
			if _, used := c.usedTS[ts]; !used {
				return ts, true
			}
			if ts == 0 {
				break
			}
		}
		return 0, false
	}
	for ts := lo; ts <= hi; ts++ {
		if _, used := c.usedTS[ts]; !used {
			return ts, true
		}
	}
	return 0, false
}

// nextGapSlot returns the smallest multiple of tsGap strictly above v.
func nextGapSlot(v uint64) uint64 { return (v/tsGap + 1) * tsGap }

// maxUsedTS bounds the issued-timestamp set. When it fills, the floor
// rises to maxTS and the set is cleared: every future timestamp must
// exceed the floor, so uniqueness holds without remembering old slots.
// Active transactions squeezed into gaps below the new floor restart —
// a rare, bounded hiccup traded for bounded memory on long-lived nodes.
const maxUsedTS = 1 << 17

// commitTicket finalizes an accepted validation under the ticket:
// records the timestamp, assigns the serial order and opens the
// pending-apply window. The write phase itself runs after the ticket is
// released.
func (c *Controller) commitTicket(t *txn.Transaction, ts uint64) {
	c.usedTS[ts] = struct{}{}
	if ts > c.maxTS {
		c.maxTS = ts
	}
	if len(c.usedTS) >= maxUsedTS {
		c.usedTS = make(map[uint64]struct{})
		if c.maxTS > c.tsFloor {
			c.tsFloor = c.maxTS
		}
	}
	c.nextSerial++
	t.CommitTS = ts
	t.SerialOrder = c.nextSerial
	c.pendingApply++
	c.applying[t.SerialOrder] = struct{}{}
}
