// Package occ implements the optimistic concurrency-control protocols of
// the RODAIN database: OCC-DATI (the paper's protocol, combining OCC-DA
// and OCC-TI), plus the OCC-TI, OCC-DA and classic backward-validation
// OCC-BC baselines.
//
// All four protocols share a timestamp formulation. Every committed
// transaction carries a unique commit timestamp; the serialization order
// of accepted transactions is exactly commit-timestamp order. The
// interval protocols (DA, TI, DATI) keep a timestamp interval
// [TSLow, TSHigh] per active transaction ("dynamic adjustment of
// serialization order using timestamp intervals"): a validating
// transaction picks its final timestamp inside its interval and then
// narrows the intervals of conflicting active transactions — a reader of
// an overwritten item is pushed before the writer, a writer of a read or
// written item is pushed after — restarting an active transaction only
// when its interval becomes empty. OCC-BC instead restarts the validating
// transaction whenever any item it read was overwritten after the read,
// which is the classic source of unnecessary restarts the paper's
// protocol avoids.
//
// Differences between the interval protocols as implemented here:
//
//   - OCC-DATI defers all conflict detection and interval adjustment to
//     the atomic validation step and assigns the earliest feasible
//     timestamp, leaving maximal room for active transactions to
//     serialize after it.
//   - OCC-TI additionally narrows the running transaction's interval at
//     every read and write against the committed item timestamps, so a
//     doomed transaction is detected (and restarted) as early as
//     possible, at the price of bookkeeping on every data access.
//   - OCC-DA assigns the latest feasible timestamp (validation order
//     where unconstrained) and performs no access-time bookkeeping.
//
// A Controller is a passive, mutex-guarded component: the execution
// engine (real or simulated) calls it at begin, read, write, validation
// and finish. Validation applies the write phase inside the critical
// section, matching the paper's "transactions are validated atomically".
package occ

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/store"
	"repro/internal/txn"
)

// Kind selects a concurrency-control protocol.
type Kind int

// The available protocols.
const (
	// DATI is OCC-DATI, the paper's protocol.
	DATI Kind = iota
	// TI is OCC-TI (Lee & Son): timestamp intervals with access-time
	// narrowing.
	TI
	// DA is OCC-DA (Lam, Lam & Hung): dynamic adjustment at validation,
	// latest feasible timestamp.
	DA
	// BC is classic backward-validation OCC: the validating transaction
	// restarts on any read overwritten since it was read.
	BC
)

// ParseKind converts a protocol name ("dati", "ti", "da", "bc") to a Kind.
func ParseKind(name string) (Kind, error) {
	switch name {
	case "dati", "occ-dati", "OCC-DATI":
		return DATI, nil
	case "ti", "occ-ti", "OCC-TI":
		return TI, nil
	case "da", "occ-da", "OCC-DA":
		return DA, nil
	case "bc", "occ-bc", "OCC-BC":
		return BC, nil
	}
	return 0, fmt.Errorf("occ: unknown protocol %q", name)
}

func (k Kind) String() string {
	switch k {
	case DATI:
		return "OCC-DATI"
	case TI:
		return "OCC-TI"
	case DA:
		return "OCC-DA"
	case BC:
		return "OCC-BC"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Result reports the outcome of a validation.
type Result struct {
	// OK reports whether the validating transaction was accepted. When
	// true its CommitTS and SerialOrder are set and its writes have been
	// applied to the database.
	OK bool
	// Victims lists active transactions whose timestamp interval became
	// empty during adjustment; the engine must restart (or abort) them.
	// Victims is only non-empty when OK is true.
	Victims []*txn.Transaction
}

// Stats counts protocol events, for the restart-behaviour ablation.
type Stats struct {
	Validations     uint64 // validation attempts
	Commits         uint64 // accepted validations
	SelfRestarts    uint64 // validating transaction rejected
	VictimRestarts  uint64 // active transactions killed by adjustment
	AccessRestarts  uint64 // transactions doomed at read/write time (OCC-TI)
	IntervalAdjusts uint64 // interval narrowings applied to actives
}

// Controller coordinates one protocol instance over one database. It is
// safe for concurrent use.
type Controller struct {
	kind Kind
	db   *store.Store

	mu         sync.Mutex
	active     map[txn.ID]*txn.Transaction
	doomed     map[txn.ID]txn.AbortReason
	usedTS     map[uint64]struct{}
	maxTS      uint64
	tsFloor    uint64 // all new timestamps must exceed this (takeover seeding)
	nextSerial uint64
	stats      Stats
}

// NewController returns a controller running protocol kind over db.
func NewController(kind Kind, db *store.Store) *Controller {
	return &Controller{
		kind:   kind,
		db:     db,
		active: make(map[txn.ID]*txn.Transaction),
		doomed: make(map[txn.ID]txn.AbortReason),
		usedTS: make(map[uint64]struct{}),
	}
}

// Kind reports the protocol in use.
func (c *Controller) Kind() Kind { return c.kind }

// Stats returns a snapshot of the protocol counters.
func (c *Controller) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// ActiveCount reports the number of registered active transactions.
func (c *Controller) ActiveCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.active)
}

// Seed initializes the validation-order and timestamp counters when a
// node takes over from an applied log position: serial orders continue
// from lastSerial and every new commit timestamp will exceed maxTS, so
// the new epoch never collides with timestamps issued before the
// failover.
func (c *Controller) Seed(lastSerial, maxTS uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if lastSerial > c.nextSerial {
		c.nextSerial = lastSerial
	}
	if maxTS > c.maxTS {
		c.maxTS = maxTS
	}
	if maxTS > c.tsFloor {
		c.tsFloor = maxTS
	}
}

// LastSerial reports the validation order of the most recent commit.
func (c *Controller) LastSerial() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.nextSerial
}

// WithFrozen runs f while validation is blocked, passing the last issued
// validation order. Because the write phase runs inside validation, the
// database is transaction-consistent for the duration of f — this is the
// quiescent point used to snapshot state for a rejoining mirror.
func (c *Controller) WithFrozen(f func(lastSerial uint64)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	f(c.nextSerial)
}

// Begin registers t as active. A transaction must be registered before
// any OnRead/OnWrite/Validate call and must eventually be Finished.
func (c *Controller) Begin(t *txn.Transaction) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.active[t.ID] = t
	delete(c.doomed, t.ID)
}

// Finish unregisters t after commit or abort.
func (c *Controller) Finish(t *txn.Transaction) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.active, t.ID)
	delete(c.doomed, t.ID)
}

// Doomed reports whether t has been marked for restart by another
// transaction's validation, along with the reason. Engines should poll
// this at operation boundaries.
func (c *Controller) Doomed(t *txn.Transaction) (txn.AbortReason, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.doomed[t.ID]
	return r, ok
}

// OnRead gives the protocol a chance to react to t reading object id
// whose observed write timestamp is wts. It reports false if the
// transaction is now doomed and should restart without further work.
func (c *Controller) OnRead(t *txn.Transaction, id store.ObjectID, wts uint64) bool {
	if c.kind != TI {
		return true
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dead := c.doomed[t.ID]; dead {
		return false
	}
	if wts+1 > t.TSLow {
		t.TSLow = wts + 1
	}
	if t.TSLow > t.TSHigh {
		c.stats.AccessRestarts++
		c.doomed[t.ID] = txn.Conflict
		return false
	}
	return true
}

// OnWrite gives the protocol a chance to react to t staging a write of
// object id. It reports false if the transaction is now doomed.
func (c *Controller) OnWrite(t *txn.Transaction, id store.ObjectID) bool {
	if c.kind != TI {
		return true
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dead := c.doomed[t.ID]; dead {
		return false
	}
	rts, wts, del, ok := c.db.ReadInfo(id)
	if del+1 > t.TSLow {
		t.TSLow = del + 1
	}
	if ok {
		if rts+1 > t.TSLow {
			t.TSLow = rts + 1
		}
		if wts+1 > t.TSLow {
			t.TSLow = wts + 1
		}
	}
	if t.TSLow > t.TSHigh {
		c.stats.AccessRestarts++
		c.doomed[t.ID] = txn.Conflict
		return false
	}
	return true
}

// Validate atomically validates t and, on success, applies its deferred
// writes to the database, assigns its commit timestamp and serial
// (validation) order, and adjusts conflicting active transactions.
//
// On failure (Result.OK == false) the engine must restart or abort t.
// On success the engine must restart every transaction in Result.Victims.
func (c *Controller) Validate(t *txn.Transaction) Result {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.Validations++

	if _, dead := c.doomed[t.ID]; dead {
		delete(c.doomed, t.ID)
		c.stats.SelfRestarts++
		return Result{}
	}

	switch c.kind {
	case BC:
		return c.validateBC(t)
	default:
		return c.validateInterval(t)
	}
}

// validateBC is classic backward validation: reject the validating
// transaction if any item it read has been overwritten since.
func (c *Controller) validateBC(t *txn.Transaction) Result {
	for _, re := range t.ReadSet() {
		_, wts, ok := c.db.Timestamps(re.ID)
		// A read-set item that has vanished was deleted since the read
		// — as much an invalidation as an overwrite.
		if !ok || wts != re.WriteTS {
			c.stats.SelfRestarts++
			return Result{}
		}
	}
	ts := c.maxTS + 1
	c.commitLocked(t, ts)
	return Result{OK: true}
}

// validateInterval implements the shared interval machinery for DA, TI
// and DATI.
func (c *Controller) validateInterval(t *txn.Transaction) Result {
	lo, hi := t.TSLow, t.TSHigh
	if c.tsFloor+1 > lo {
		lo = c.tsFloor + 1
	}

	// Serialize after every committed writer whose value t read.
	for _, re := range t.ReadSet() {
		if re.WriteTS+1 > lo {
			lo = re.WriteTS + 1
		}
	}
	// Serialize after every committed reader and writer of items t
	// writes. A transactionally deleted item keeps its deletion
	// timestamp as a tombstone: a re-creating writer must serialize
	// after the deletion (which itself serialized after every reader
	// and writer the item had).
	for _, id := range t.WriteIDs() {
		rts, wts, del, ok := c.db.ReadInfo(id)
		if del+1 > lo {
			lo = del + 1
		}
		if !ok {
			continue // brand-new object: unconstrained beyond its tombstone
		}
		if rts+1 > lo {
			lo = rts + 1
		}
		if wts+1 > lo {
			lo = wts + 1
		}
	}
	if lo > hi {
		c.stats.SelfRestarts++
		return Result{}
	}

	ts, ok := c.pickTimestamp(lo, hi)
	if !ok {
		c.stats.SelfRestarts++
		return Result{}
	}

	// Forward adjustment of conflicting active transactions.
	var victims []*txn.Transaction
	for _, u := range c.active {
		if u.ID == t.ID {
			continue
		}
		if _, dead := c.doomed[u.ID]; dead {
			continue
		}
		precede, follow := conflict(t, u)
		if !precede && !follow {
			continue
		}
		if precede && ts-1 < u.TSHigh {
			u.TSHigh = ts - 1
			c.stats.IntervalAdjusts++
		}
		if follow && ts+1 > u.TSLow {
			u.TSLow = ts + 1
			c.stats.IntervalAdjusts++
		}
		if u.TSLow > u.TSHigh {
			c.doomed[u.ID] = txn.Conflict
			c.stats.VictimRestarts++
			victims = append(victims, u)
		}
	}

	c.commitLocked(t, ts)
	return Result{OK: true, Victims: victims}
}

// conflict classifies the conflicts between validating t and active u:
// precede means u must serialize before t (u read an item t overwrites);
// follow means u must serialize after t (u writes an item t read or
// wrote).
func conflict(t, u *txn.Transaction) (precede, follow bool) {
	for _, id := range t.WriteIDs() {
		if u.ReadsObject(id) {
			precede = true
		}
		if u.WritesObject(id) {
			follow = true
		}
		if precede && follow {
			return
		}
	}
	for _, re := range t.ReadSet() {
		if u.WritesObject(re.ID) {
			follow = true
			if precede {
				return
			}
		}
	}
	return
}

// tsGap is the spacing between freshly allocated commit timestamps.
// Fresh (upper-unconstrained) validations take gap-spaced slots so that a
// transaction which must later serialize *between* two committed ones —
// the overrun reader that interval adjustment saves from restarting —
// still finds a free integer in the gap.
const tsGap = 1 << 16

// pickTimestamp chooses a free timestamp in [lo, hi]. Upper-constrained
// transactions squeeze into the gap (earliest slot for DATI/TI, latest
// for DA); unconstrained ones take a fresh gap-spaced slot — the earliest
// feasible one for DATI/TI, the next after all issued timestamps
// (validation order) for DA.
func (c *Controller) pickTimestamp(lo, hi uint64) (uint64, bool) {
	if hi == math.MaxUint64 {
		ts := nextGapSlot(lo)
		if c.kind == DA {
			if m := nextGapSlot(c.maxTS); m > ts {
				ts = m
			}
		}
		for {
			if _, used := c.usedTS[ts]; !used {
				return ts, true
			}
			ts += tsGap
		}
	}
	if c.kind == DA {
		for ts := hi; ts >= lo; ts-- {
			if _, used := c.usedTS[ts]; !used {
				return ts, true
			}
			if ts == 0 {
				break
			}
		}
		return 0, false
	}
	for ts := lo; ts <= hi; ts++ {
		if _, used := c.usedTS[ts]; !used {
			return ts, true
		}
	}
	return 0, false
}

// nextGapSlot returns the smallest multiple of tsGap strictly above v.
func nextGapSlot(v uint64) uint64 { return (v/tsGap + 1) * tsGap }

// maxUsedTS bounds the issued-timestamp set. When it fills, the floor
// rises to maxTS and the set is cleared: every future timestamp must
// exceed the floor, so uniqueness holds without remembering old slots.
// Active transactions squeezed into gaps below the new floor restart —
// a rare, bounded hiccup traded for bounded memory on long-lived nodes.
const maxUsedTS = 1 << 17

// commitLocked finalizes an accepted validation: assigns timestamps,
// applies the write phase and stamps item read timestamps.
func (c *Controller) commitLocked(t *txn.Transaction, ts uint64) {
	c.usedTS[ts] = struct{}{}
	if ts > c.maxTS {
		c.maxTS = ts
	}
	if len(c.usedTS) >= maxUsedTS {
		c.usedTS = make(map[uint64]struct{})
		if c.maxTS > c.tsFloor {
			c.tsFloor = c.maxTS
		}
	}
	c.nextSerial++
	t.CommitTS = ts
	t.SerialOrder = c.nextSerial
	t.ApplyWrites(c.db)
	c.stats.Commits++
}
