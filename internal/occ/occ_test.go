package occ

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/store"
	"repro/internal/txn"
)

func newController(k Kind) (*Controller, *store.Store) {
	db := store.New()
	for i := 0; i < 32; i++ {
		db.Put(store.ObjectID(i), []byte{0})
	}
	return NewController(k, db), db
}

func runSimple(t *testing.T, c *Controller, db *store.Store, id txn.ID, reads, writes []store.ObjectID) *txn.Transaction {
	t.Helper()
	tx := txn.New(id, txn.Firm, 0, txn.NoDeadline)
	c.Begin(tx)
	for _, r := range reads {
		v, ok := tx.Read(db, r)
		if !ok {
			t.Fatalf("read %d failed", r)
		}
		if wts, obs := tx.ObservedWriteTS(r); obs {
			c.OnRead(tx, r, wts)
		}
		_ = v
	}
	for _, w := range writes {
		tx.StageWrite(w, []byte{byte(id)})
		c.OnWrite(tx, w)
	}
	return tx
}

func TestCommitDisjointTransactions(t *testing.T) {
	for _, k := range []Kind{DATI, TI, DA, BC} {
		t.Run(k.String(), func(t *testing.T) {
			c, db := newController(k)
			t1 := runSimple(t, c, db, 1, []store.ObjectID{0, 1}, []store.ObjectID{2})
			t2 := runSimple(t, c, db, 2, []store.ObjectID{3, 4}, []store.ObjectID{5})
			r1 := c.Validate(t1)
			r2 := c.Validate(t2)
			if !r1.OK || !r2.OK {
				t.Fatalf("disjoint transactions must both commit: %v %v", r1.OK, r2.OK)
			}
			if t1.CommitTS == t2.CommitTS {
				t.Fatal("commit timestamps must be unique")
			}
			if t1.SerialOrder >= t2.SerialOrder {
				t.Fatalf("serial order must follow validation order: %d %d", t1.SerialOrder, t2.SerialOrder)
			}
			c.Finish(t1)
			c.Finish(t2)
			if c.ActiveCount() != 0 {
				t.Fatalf("ActiveCount = %d", c.ActiveCount())
			}
		})
	}
}

func TestBCRestartsOverwrittenReader(t *testing.T) {
	c, db := newController(BC)
	reader := runSimple(t, c, db, 1, []store.ObjectID{7}, nil)
	writer := runSimple(t, c, db, 2, nil, []store.ObjectID{7})
	if r := c.Validate(writer); !r.OK {
		t.Fatal("writer must commit")
	}
	if r := c.Validate(reader); r.OK {
		t.Fatal("OCC-BC must restart a reader whose item was overwritten")
	}
	st := c.Stats()
	if st.SelfRestarts != 1 || st.Commits != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestIntervalProtocolsSerializeReaderBeforeWriter(t *testing.T) {
	// The defining improvement over OCC-BC: a reader that was overrun by
	// a committed writer may still commit, serialized before the writer.
	for _, k := range []Kind{DATI, TI, DA} {
		t.Run(k.String(), func(t *testing.T) {
			c, db := newController(k)
			reader := runSimple(t, c, db, 1, []store.ObjectID{7}, nil)
			writer := runSimple(t, c, db, 2, nil, []store.ObjectID{7})
			if r := c.Validate(writer); !r.OK {
				t.Fatal("writer must commit")
			}
			r := c.Validate(reader)
			if !r.OK {
				t.Fatalf("%v should commit the overrun reader (backward-adjusted)", k)
			}
			if reader.CommitTS >= writer.CommitTS {
				t.Fatalf("reader ts %d must precede writer ts %d", reader.CommitTS, writer.CommitTS)
			}
		})
	}
}

func TestWriterFollowsCommittedReader(t *testing.T) {
	for _, k := range []Kind{DATI, TI, DA} {
		c, db := newController(k)
		reader := runSimple(t, c, db, 1, []store.ObjectID{3}, nil)
		if r := c.Validate(reader); !r.OK {
			t.Fatal("reader must commit")
		}
		writer := runSimple(t, c, db, 2, nil, []store.ObjectID{3})
		if r := c.Validate(writer); !r.OK {
			t.Fatal("writer must commit")
		}
		if writer.CommitTS <= reader.CommitTS {
			t.Fatalf("%v: writer ts %d must follow reader ts %d", k, writer.CommitTS, reader.CommitTS)
		}
	}
}

func TestVictimOnContradiction(t *testing.T) {
	// u reads an item t writes (u before t) and writes an item t reads
	// (u after t): u's interval empties when t validates.
	for _, k := range []Kind{DATI, DA} {
		t.Run(k.String(), func(t *testing.T) {
			c, db := newController(k)
			u := runSimple(t, c, db, 1, []store.ObjectID{1}, []store.ObjectID{2})
			tt := runSimple(t, c, db, 2, []store.ObjectID{2}, []store.ObjectID{1})
			r := c.Validate(tt)
			if !r.OK {
				t.Fatal("validating transaction must be accepted")
			}
			if len(r.Victims) != 1 || r.Victims[0].ID != u.ID {
				t.Fatalf("victims = %v", r.Victims)
			}
			if reason, dead := c.Doomed(u); !dead || reason != txn.Conflict {
				t.Fatalf("victim not doomed: %v %v", reason, dead)
			}
			// The doomed transaction is rejected at its own validation.
			if rv := c.Validate(u); rv.OK {
				t.Fatal("doomed transaction validated")
			}
		})
	}
}

func TestTIDetectsDoomAtAccessTime(t *testing.T) {
	c, db := newController(TI)
	u := runSimple(t, c, db, 1, []store.ObjectID{1}, nil) // u read obj 1
	tt := runSimple(t, c, db, 2, nil, []store.ObjectID{1})
	if r := c.Validate(tt); !r.OK {
		t.Fatal("writer must commit")
	}
	// u is now constrained to precede tt. Re-reading the item and
	// observing tt's value would force u after tt: contradiction,
	// detected at read time.
	v, ok := u.Read(db, 1)
	if !ok {
		t.Fatal("read failed")
	}
	_ = v
	wts, _ := u.ObservedWriteTS(1)
	if c.OnRead(u, 1, wts) {
		t.Fatal("OCC-TI should doom the reader at access time")
	}
	if c.Stats().AccessRestarts != 1 {
		t.Fatalf("stats = %+v", c.Stats())
	}
}

func TestDAAssignsLatestTimestamp(t *testing.T) {
	c, db := newController(DA)
	t1 := runSimple(t, c, db, 1, nil, []store.ObjectID{1})
	t2 := runSimple(t, c, db, 2, nil, []store.ObjectID{2})
	c.Validate(t1)
	c.Validate(t2)
	if t2.CommitTS != t1.CommitTS+tsGap {
		t.Fatalf("DA should assign gap-spaced validation-order timestamps: %d then %d", t1.CommitTS, t2.CommitTS)
	}
}

func TestReaderFitsBetweenTwoWriters(t *testing.T) {
	// A reader of version 1 that validates after writer 2 has committed
	// must land strictly between the two writers' timestamps.
	for _, k := range []Kind{DATI, TI, DA} {
		t.Run(k.String(), func(t *testing.T) {
			c, db := newController(k)
			w1 := runSimple(t, c, db, 1, nil, []store.ObjectID{1})
			if r := c.Validate(w1); !r.OK {
				t.Fatal("w1 rejected")
			}
			reader := runSimple(t, c, db, 2, []store.ObjectID{1}, nil)
			w2 := runSimple(t, c, db, 3, nil, []store.ObjectID{1})
			if r := c.Validate(w2); !r.OK {
				t.Fatal("w2 rejected")
			}
			if r := c.Validate(reader); !r.OK {
				t.Fatalf("%v: intermediate reader rejected", k)
			}
			if !(w1.CommitTS < reader.CommitTS && reader.CommitTS < w2.CommitTS) {
				t.Fatalf("%v: reader ts %d not between writers %d and %d",
					k, reader.CommitTS, w1.CommitTS, w2.CommitTS)
			}
		})
	}
}

func TestWriteWriteOrdering(t *testing.T) {
	for _, k := range []Kind{DATI, TI, DA, BC} {
		c, db := newController(k)
		a := runSimple(t, c, db, 1, nil, []store.ObjectID{9})
		b := runSimple(t, c, db, 2, nil, []store.ObjectID{9})
		ra := c.Validate(a)
		if !ra.OK {
			t.Fatalf("%v: first writer rejected", k)
		}
		// b may have become a victim (interval protocols adjust b to
		// follow a); if not doomed it must commit after a.
		if _, dead := c.Doomed(b); !dead {
			rb := c.Validate(b)
			if !rb.OK {
				t.Fatalf("%v: blind second writer rejected", k)
			}
			if b.CommitTS <= a.CommitTS {
				t.Fatalf("%v: write-write order violated: %d %d", k, a.CommitTS, b.CommitTS)
			}
			v, _ := db.Get(9)
			if v[0] != 2 {
				t.Fatalf("%v: later writer's value lost: %v", k, v)
			}
		}
	}
}

func TestParseKindAndString(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Kind
	}{{"dati", DATI}, {"ti", TI}, {"da", DA}, {"bc", BC}, {"OCC-DATI", DATI}} {
		got, err := ParseKind(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseKind(%q) = %v, %v", tc.in, got, err)
		}
	}
	if _, err := ParseKind("nope"); err == nil {
		t.Fatal("ParseKind should reject unknown names")
	}
	if Kind(42).String() != "Kind(42)" {
		t.Fatalf("String = %q", Kind(42).String())
	}
}

// --- Serializability property harness -------------------------------------

// histEntry records a committed transaction for post-hoc checking.
type histEntry struct {
	ts      uint64
	reads   []txn.ReadEntry
	writes  []store.ObjectID
	images  map[store.ObjectID][]byte // after images (model checker)
	deletes map[store.ObjectID]bool   // staged deletions (model checker)
}

// TestPropertySerializability drives random interleaved transactions
// through each protocol and verifies that the accepted history is
// serializable in commit-timestamp order: every committed read observed
// exactly the latest committed write with a smaller timestamp.
func TestPropertySerializability(t *testing.T) {
	for _, k := range []Kind{DATI, TI, DA, BC} {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			for seed := int64(0); seed < 8; seed++ {
				checkSerializable(t, k, seed)
			}
		})
	}
}

type scriptedTxn struct {
	tx     *txn.Transaction
	script []scriptOp // remaining operations
	id     txn.ID
}

type scriptOp struct {
	read bool
	obj  store.ObjectID
}

func checkSerializable(t *testing.T, k Kind, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	const nObjects = 8 // small to force conflicts
	db := store.New()
	for i := 0; i < nObjects; i++ {
		db.Put(store.ObjectID(i), []byte{0})
	}
	c := NewController(k, db)

	var history []histEntry
	var nextID txn.ID
	newScripted := func() *scriptedTxn {
		nextID++
		nops := 2 + rng.Intn(5)
		s := &scriptedTxn{id: nextID}
		for i := 0; i < nops; i++ {
			s.script = append(s.script, scriptOp{
				read: rng.Intn(100) < 60,
				obj:  store.ObjectID(rng.Intn(nObjects)),
			})
		}
		s.tx = txn.New(s.id, txn.Firm, 0, txn.NoDeadline)
		c.Begin(s.tx)
		return s
	}

	live := make([]*scriptedTxn, 0, 6)
	for i := 0; i < 6; i++ {
		live = append(live, newScripted())
	}
	committed, aborted := 0, 0
	for steps := 0; steps < 3000 && committed < 120; steps++ {
		i := rng.Intn(len(live))
		s := live[i]
		restart := false
		if _, dead := c.Doomed(s.tx); dead {
			restart = true
		} else if len(s.script) == 0 {
			r := c.Validate(s.tx)
			if r.OK {
				history = append(history, histEntry{
					ts:     s.tx.CommitTS,
					reads:  append([]txn.ReadEntry(nil), s.tx.ReadSet()...),
					writes: append([]store.ObjectID(nil), s.tx.WriteIDs()...),
				})
				committed++
				c.Finish(s.tx)
				live[i] = newScripted()
				continue
			}
			restart = true
		} else {
			op := s.script[0]
			s.script = s.script[1:]
			if op.read {
				if _, ok := s.tx.Read(db, op.obj); ok {
					if wts, obs := s.tx.ObservedWriteTS(op.obj); obs {
						if !c.OnRead(s.tx, op.obj, wts) {
							restart = true
						}
					}
				}
			} else {
				s.tx.StageWrite(op.obj, []byte{byte(s.id), byte(s.id >> 8)})
				if !c.OnWrite(s.tx, op.obj) {
					restart = true
				}
			}
		}
		if restart {
			aborted++
			c.Finish(s.tx)
			s.tx.Abort(txn.Conflict)
			live[i] = newScripted()
		}
	}
	if committed < 20 {
		t.Fatalf("%v seed %d: only %d commits (%d aborts) — harness starved", k, seed, committed, aborted)
	}

	// Check 1: unique timestamps.
	seen := map[uint64]bool{}
	for _, h := range history {
		if seen[h.ts] {
			t.Fatalf("%v seed %d: duplicate commit timestamp %d", k, seed, h.ts)
		}
		seen[h.ts] = true
	}

	// Check 2: every committed read observed the latest committed write
	// with a smaller timestamp.
	writersOf := map[store.ObjectID][]uint64{}
	for _, h := range history {
		for _, w := range h.writes {
			writersOf[w] = append(writersOf[w], h.ts)
		}
	}
	for _, h := range history {
		for _, re := range h.reads {
			want := uint64(0) // initial load has write timestamp 0
			for _, wts := range writersOf[re.ID] {
				if wts < h.ts && wts > want {
					want = wts
				}
			}
			if re.WriteTS != want {
				t.Fatalf("%v seed %d: txn@ts=%d read obj %d written@%d, but latest earlier write is @%d — history not serializable",
					k, seed, h.ts, re.ID, re.WriteTS, want)
			}
			if re.WriteTS >= h.ts {
				t.Fatalf("%v seed %d: read from the future: read@%d ts=%d", k, seed, re.WriteTS, h.ts)
			}
		}
	}
}

// TestPropertyFinalStateMatchesTimestampReplay verifies that the store's
// final contents equal a replay of committed writes in timestamp order.
func TestPropertyFinalStateMatchesTimestampReplay(t *testing.T) {
	for _, k := range []Kind{DATI, TI, DA, BC} {
		rng := rand.New(rand.NewSource(99))
		db := store.New()
		for i := 0; i < 8; i++ {
			db.Put(store.ObjectID(i), []byte{0})
		}
		c := NewController(k, db)
		type commitRec struct {
			ts  uint64
			obj store.ObjectID
			val []byte
		}
		var commits []commitRec
		for n := 0; n < 200; n++ {
			tx := txn.New(txn.ID(n+1), txn.Firm, 0, txn.NoDeadline)
			c.Begin(tx)
			obj := store.ObjectID(rng.Intn(8))
			if _, ok := tx.Read(db, obj); ok {
				if wts, obs := tx.ObservedWriteTS(obj); obs {
					c.OnRead(tx, obj, wts)
				}
			}
			wobj := store.ObjectID(rng.Intn(8))
			val := []byte{byte(n), byte(n >> 8)}
			tx.StageWrite(wobj, val)
			c.OnWrite(tx, wobj)
			if _, dead := c.Doomed(tx); !dead {
				if r := c.Validate(tx); r.OK {
					commits = append(commits, commitRec{tx.CommitTS, wobj, val})
				}
			}
			c.Finish(tx)
		}
		replay := store.New()
		for i := 0; i < 8; i++ {
			replay.Put(store.ObjectID(i), []byte{0})
		}
		// Sort by timestamp and apply.
		for swapped := true; swapped; {
			swapped = false
			for i := 0; i+1 < len(commits); i++ {
				if commits[i].ts > commits[i+1].ts {
					commits[i], commits[i+1] = commits[i+1], commits[i]
					swapped = true
				}
			}
		}
		for _, cr := range commits {
			replay.Apply(cr.obj, cr.val, cr.ts)
		}
		if replay.Checksum() != db.Checksum() {
			t.Fatalf("%v: final state differs from timestamp-order replay", k)
		}
	}
}

// TestRestartCountsOrdering is the paper's qualitative claim: the
// interval protocols produce fewer transaction restarts than classic
// backward validation under the same contended workload.
func TestRestartCountsOrdering(t *testing.T) {
	restarts := map[Kind]int{}
	for _, k := range []Kind{DATI, TI, DA, BC} {
		total := 0
		for seed := int64(0); seed < 6; seed++ {
			total += countRestarts(t, k, seed)
		}
		restarts[k] = total
	}
	if restarts[DATI] >= restarts[BC] {
		t.Fatalf("OCC-DATI (%d restarts) should beat OCC-BC (%d) on contended load",
			restarts[DATI], restarts[BC])
	}
	t.Logf("restarts under identical load: DATI=%d TI=%d DA=%d BC=%d",
		restarts[DATI], restarts[TI], restarts[DA], restarts[BC])
}

func countRestarts(t *testing.T, k Kind, seed int64) int {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	db := store.New()
	const nObjects = 6
	for i := 0; i < nObjects; i++ {
		db.Put(store.ObjectID(i), []byte{0})
	}
	c := NewController(k, db)
	aborted := 0
	live := make([]*scriptedTxn, 0, 8)
	var nextID txn.ID
	newScripted := func() *scriptedTxn {
		nextID++
		s := &scriptedTxn{id: nextID}
		for i := 0; i < 3+rng.Intn(3); i++ {
			s.script = append(s.script, scriptOp{read: rng.Intn(100) < 50, obj: store.ObjectID(rng.Intn(nObjects))})
		}
		s.tx = txn.New(s.id, txn.Firm, 0, txn.NoDeadline)
		c.Begin(s.tx)
		return s
	}
	for i := 0; i < 8; i++ {
		live = append(live, newScripted())
	}
	committed := 0
	for steps := 0; steps < 5000 && committed < 150; steps++ {
		i := rng.Intn(len(live))
		s := live[i]
		kill := false
		if _, dead := c.Doomed(s.tx); dead {
			kill = true
		} else if len(s.script) == 0 {
			if r := c.Validate(s.tx); r.OK {
				committed++
				c.Finish(s.tx)
				live[i] = newScripted()
				continue
			}
			kill = true
		} else {
			op := s.script[0]
			s.script = s.script[1:]
			if op.read {
				if _, ok := s.tx.Read(db, op.obj); ok {
					if wts, obs := s.tx.ObservedWriteTS(op.obj); obs {
						if !c.OnRead(s.tx, op.obj, wts) {
							kill = true
						}
					}
				}
			} else {
				s.tx.StageWrite(op.obj, []byte{byte(s.id)})
				if !c.OnWrite(s.tx, op.obj) {
					kill = true
				}
			}
		}
		if kill {
			aborted++
			c.Finish(s.tx)
			live[i] = newScripted()
		}
	}
	return aborted
}

func TestStatsSnapshot(t *testing.T) {
	c, db := newController(DATI)
	tx := runSimple(t, c, db, 1, []store.ObjectID{1}, []store.ObjectID{2})
	c.Validate(tx)
	st := c.Stats()
	if st.Validations != 1 || st.Commits != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestInsertOfNewObject(t *testing.T) {
	for _, k := range []Kind{DATI, TI, DA, BC} {
		c, db := newController(k)
		tx := txn.New(1, txn.Firm, 0, txn.NoDeadline)
		c.Begin(tx)
		tx.StageWrite(1000, []byte("fresh")) // beyond the preloaded range
		c.OnWrite(tx, 1000)
		if r := c.Validate(tx); !r.OK {
			t.Fatalf("%v: insert rejected", k)
		}
		v, ok := db.Get(1000)
		if !ok || string(v) != "fresh" {
			t.Fatalf("%v: insert not applied: %q %v", k, v, ok)
		}
	}
}

func TestBeginClearsStaleDoom(t *testing.T) {
	c, _ := newController(DATI)
	tx := txn.New(1, txn.Firm, 0, txn.NoDeadline)
	c.Begin(tx)
	tx.MarkDoomed(txn.Conflict)
	c.Begin(tx) // re-begin after restart must clear the doom marker
	if _, dead := c.Doomed(tx); dead {
		t.Fatal("Begin did not clear doom marker")
	}
}

func ExampleController() {
	db := store.New()
	db.Put(1, []byte("x=0"))
	c := NewController(DATI, db)
	tx := txn.New(1, txn.Firm, 0, txn.NoDeadline)
	c.Begin(tx)
	tx.Read(db, 1)
	tx.StageWrite(1, []byte("x=1"))
	r := c.Validate(tx)
	c.Finish(tx)
	fmt.Println(r.OK, tx.CommitTS)
	// Output: true 65536
}

func TestTimestampSetPruning(t *testing.T) {
	c, db := newController(DATI)
	// Force a prune by lowering the effective fill via direct state:
	// simulate a long-lived controller by filling usedTS to the cap.
	c.mu.Lock()
	for i := uint64(0); i < maxUsedTS-1; i++ {
		c.usedTS[i*7+1] = struct{}{}
	}
	c.maxTS = (maxUsedTS - 1) * 7
	c.mu.Unlock()
	// The next commit crosses the threshold and prunes.
	tx1 := runSimple(t, c, db, 1, nil, []store.ObjectID{1})
	if r := c.Validate(tx1); !r.OK {
		t.Fatal("commit at prune boundary failed")
	}
	c.mu.Lock()
	pruned := len(c.usedTS) < maxUsedTS/2
	floor := c.tsFloor
	c.mu.Unlock()
	if !pruned {
		t.Fatal("usedTS not pruned")
	}
	if floor == 0 {
		t.Fatal("floor did not rise")
	}
	// Post-prune commits get unique timestamps above the floor.
	tx2 := runSimple(t, c, db, 2, nil, []store.ObjectID{2})
	if r := c.Validate(tx2); !r.OK {
		t.Fatal("post-prune commit failed")
	}
	if tx2.CommitTS <= floor {
		t.Fatalf("post-prune ts %d not above floor %d", tx2.CommitTS, floor)
	}
	if tx2.CommitTS == tx1.CommitTS {
		t.Fatal("duplicate timestamp after prune")
	}
}
