package occ

import (
	"testing"

	"repro/internal/store"
	"repro/internal/txn"
)

// TestValidateReadOnlyFastCommit: an unchallenged read-only transaction
// certifies on the fast path under every interval protocol, with its
// commit timestamp pinned to the newest version it observed and no
// serial order consumed.
func TestValidateReadOnlyFastCommit(t *testing.T) {
	for _, k := range []Kind{DATI, TI, DA} {
		t.Run(k.String(), func(t *testing.T) {
			c, db := newController(k)
			// Give the read set a non-trivial snapshot timestamp.
			db.Apply(1, []byte{9}, 500)
			db.Apply(2, []byte{9}, 300)
			reader := runSimple(t, c, db, 1, []store.ObjectID{1, 2}, nil)
			res, decided := c.ValidateReadOnly(reader)
			if !decided || !res.OK {
				t.Fatalf("fast path must certify: decided=%v ok=%v", decided, res.OK)
			}
			if reader.CommitTS != 500 {
				t.Fatalf("CommitTS = %d, want the snapshot timestamp 500", reader.CommitTS)
			}
			if reader.SerialOrder != 0 {
				t.Fatalf("SerialOrder = %d, want 0 (no serial consumed)", reader.SerialOrder)
			}
			// The snapshot must be pinned: both read items' read
			// timestamps advanced to snapTS so no later writer can
			// serialize underneath it.
			for _, id := range []store.ObjectID{1, 2} {
				if rts, _, _ := db.Timestamps(id); rts < 500 {
					t.Fatalf("readTS(%d) = %d, want >= 500 after pinning", id, rts)
				}
			}
			st := c.Stats()
			if st.ROFastCommits != 1 || st.ROFallbacks != 0 || st.Commits != 1 {
				t.Fatalf("stats = %+v", st)
			}
			c.Finish(reader)
			if c.ActiveCount() != 0 {
				t.Fatalf("ActiveCount = %d", c.ActiveCount())
			}
		})
	}
}

// TestValidateReadOnlyRefusesWriters: a transaction with staged writes
// is not the fast path's problem — it must report undecided without
// touching any counters.
func TestValidateReadOnlyRefusesWriters(t *testing.T) {
	c, db := newController(DATI)
	w := runSimple(t, c, db, 1, []store.ObjectID{1}, []store.ObjectID{2})
	if _, decided := c.ValidateReadOnly(w); decided {
		t.Fatal("fast path must not decide a transaction with writes")
	}
	st := c.Stats()
	if st.ROFastCommits != 0 || st.ROFallbacks != 0 || st.Validations != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if r := c.Validate(w); !r.OK {
		t.Fatal("writer must still commit through full validation")
	}
	c.Finish(w)
}

// TestValidateReadOnlyStaleFallsBackThenValidateSalvages: a committed
// overwrite of a read item forces the fast path to fall back — and full
// interval validation then salvages the reader by serializing it below
// the overwriter, which is exactly why stale means fallback rather than
// rejection.
func TestValidateReadOnlyStaleFallsBackThenValidateSalvages(t *testing.T) {
	c, db := newController(DATI)
	reader := runSimple(t, c, db, 1, []store.ObjectID{7}, nil)
	writer := runSimple(t, c, db, 2, nil, []store.ObjectID{7})
	if r := c.Validate(writer); !r.OK {
		t.Fatal("writer must commit")
	}
	res, decided := c.ValidateReadOnly(reader)
	if decided || res.OK {
		t.Fatalf("fast path must fall back on a stale read: decided=%v ok=%v", decided, res.OK)
	}
	if st := c.Stats(); st.ROFallbacks != 1 {
		t.Fatalf("stats = %+v, want one fallback", st)
	}
	r := c.Validate(reader)
	if !r.OK {
		t.Fatal("full validation should salvage the overrun read-only transaction")
	}
	if reader.CommitTS >= writer.CommitTS {
		t.Fatalf("salvaged reader at ts %d must precede writer at ts %d", reader.CommitTS, writer.CommitTS)
	}
	c.Finish(writer)
	c.Finish(reader)
}

// TestValidateReadOnlyDoomedIsDecided: a transaction doomed by a
// conflicting writer's adjustment is rejected on the fast path itself —
// the same decision full validation would reach, without the ticket.
func TestValidateReadOnlyDoomedIsDecided(t *testing.T) {
	c, db := newController(DATI)
	reader := runSimple(t, c, db, 1, []store.ObjectID{3}, nil)
	reader.MarkDoomed(txn.Conflict)
	res, decided := c.ValidateReadOnly(reader)
	if !decided || res.OK {
		t.Fatalf("doomed transaction must be decided as rejected: decided=%v ok=%v", decided, res.OK)
	}
	st := c.Stats()
	if st.SelfRestarts != 1 || st.ROFastCommits != 0 {
		t.Fatalf("stats = %+v", st)
	}
	c.Finish(reader)
}

// TestValidateReadOnlySharedTimestamps: two read-only transactions over
// the same snapshot may share a commit timestamp — neither consumes a
// slot, and they cannot observe one another.
func TestValidateReadOnlySharedTimestamps(t *testing.T) {
	c, db := newController(DATI)
	db.Apply(4, []byte{1}, 900)
	r1 := runSimple(t, c, db, 1, []store.ObjectID{4}, nil)
	r2 := runSimple(t, c, db, 2, []store.ObjectID{4}, nil)
	if res, decided := c.ValidateReadOnly(r1); !decided || !res.OK {
		t.Fatal("first reader must fast-commit")
	}
	if res, decided := c.ValidateReadOnly(r2); !decided || !res.OK {
		t.Fatal("second reader must fast-commit")
	}
	if r1.CommitTS != 900 || r2.CommitTS != 900 {
		t.Fatalf("commit timestamps = %d, %d; want both at the shared snapshot 900", r1.CommitTS, r2.CommitTS)
	}
	c.Finish(r1)
	c.Finish(r2)
}
