package occ

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"repro/internal/store"
	"repro/internal/txn"
)

// refController is the pre-sharding controller, kept verbatim as the
// reference model: one global mutex, a flat active map scanned per
// validation, doom markers in a map, and the write phase applied inside
// the critical section. The sharded controller must be observably
// indistinguishable from it under any sequential schedule.
type refController struct {
	kind Kind
	db   *store.Store

	mu         sync.Mutex
	active     map[txn.ID]*txn.Transaction
	doomed     map[txn.ID]txn.AbortReason
	usedTS     map[uint64]struct{}
	maxTS      uint64
	tsFloor    uint64
	nextSerial uint64
	stats      Stats
}

func newRefController(kind Kind, db *store.Store) *refController {
	return &refController{
		kind:   kind,
		db:     db,
		active: make(map[txn.ID]*txn.Transaction),
		doomed: make(map[txn.ID]txn.AbortReason),
		usedTS: make(map[uint64]struct{}),
	}
}

func (c *refController) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

func (c *refController) ActiveCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.active)
}

func (c *refController) LastSerial() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.nextSerial
}

func (c *refController) Begin(t *txn.Transaction) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.active[t.ID] = t
	delete(c.doomed, t.ID)
}

func (c *refController) Finish(t *txn.Transaction) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.active, t.ID)
	delete(c.doomed, t.ID)
}

func (c *refController) Doomed(t *txn.Transaction) (txn.AbortReason, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.doomed[t.ID]
	return r, ok
}

func (c *refController) OnRead(t *txn.Transaction, id store.ObjectID, wts uint64) bool {
	if c.kind != TI {
		return true
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dead := c.doomed[t.ID]; dead {
		return false
	}
	t.RaiseLow(wts + 1)
	if t.IntervalEmpty() {
		c.stats.AccessRestarts++
		c.doomed[t.ID] = txn.Conflict
		return false
	}
	return true
}

func (c *refController) OnWrite(t *txn.Transaction, id store.ObjectID) bool {
	if c.kind != TI {
		return true
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dead := c.doomed[t.ID]; dead {
		return false
	}
	rts, wts, del, ok := c.db.ReadInfo(id)
	t.RaiseLow(del + 1)
	if ok {
		t.RaiseLow(rts + 1)
		t.RaiseLow(wts + 1)
	}
	if t.IntervalEmpty() {
		c.stats.AccessRestarts++
		c.doomed[t.ID] = txn.Conflict
		return false
	}
	return true
}

func (c *refController) Validate(t *txn.Transaction) Result {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.Validations++

	if _, dead := c.doomed[t.ID]; dead {
		delete(c.doomed, t.ID)
		c.stats.SelfRestarts++
		return Result{}
	}

	switch c.kind {
	case BC:
		return c.validateBC(t)
	default:
		return c.validateInterval(t)
	}
}

func (c *refController) validateBC(t *txn.Transaction) Result {
	for _, re := range t.ReadSet() {
		_, wts, ok := c.db.Timestamps(re.ID)
		if !ok || wts != re.WriteTS {
			c.stats.SelfRestarts++
			return Result{}
		}
	}
	ts := c.maxTS + 1
	c.commitLocked(t, ts)
	return Result{OK: true}
}

func (c *refController) validateInterval(t *txn.Transaction) Result {
	lo, hi := t.Interval()
	if c.tsFloor+1 > lo {
		lo = c.tsFloor + 1
	}
	for _, re := range t.ReadSet() {
		if re.WriteTS+1 > lo {
			lo = re.WriteTS + 1
		}
	}
	for _, id := range t.WriteIDs() {
		rts, wts, del, ok := c.db.ReadInfo(id)
		if del+1 > lo {
			lo = del + 1
		}
		if !ok {
			continue
		}
		if rts+1 > lo {
			lo = rts + 1
		}
		if wts+1 > lo {
			lo = wts + 1
		}
	}
	if lo > hi {
		c.stats.SelfRestarts++
		return Result{}
	}

	ts, ok := c.pickTimestamp(lo, hi)
	if !ok {
		c.stats.SelfRestarts++
		return Result{}
	}

	var victims []*txn.Transaction
	for _, u := range c.active {
		if u.ID == t.ID {
			continue
		}
		if _, dead := c.doomed[u.ID]; dead {
			continue
		}
		precede, follow := refConflict(t, u)
		if !precede && !follow {
			continue
		}
		ulo, uhi := u.Interval()
		if precede && ts-1 < uhi {
			uhi = ts - 1
			c.stats.IntervalAdjusts++
		}
		if follow && ts+1 > ulo {
			ulo = ts + 1
			c.stats.IntervalAdjusts++
		}
		u.SetInterval(ulo, uhi)
		if ulo > uhi {
			c.doomed[u.ID] = txn.Conflict
			c.stats.VictimRestarts++
			victims = append(victims, u)
		}
	}

	c.commitLocked(t, ts)
	return Result{OK: true, Victims: victims}
}

func refConflict(t, u *txn.Transaction) (precede, follow bool) {
	for _, id := range t.WriteIDs() {
		if u.ReadsObject(id) {
			precede = true
		}
		if u.WritesObject(id) {
			follow = true
		}
		if precede && follow {
			return
		}
	}
	for _, re := range t.ReadSet() {
		if u.WritesObject(re.ID) {
			follow = true
			if precede {
				return
			}
		}
	}
	return
}

func (c *refController) pickTimestamp(lo, hi uint64) (uint64, bool) {
	if hi == math.MaxUint64 {
		ts := nextGapSlot(lo)
		if c.kind == DA {
			if m := nextGapSlot(c.maxTS); m > ts {
				ts = m
			}
		}
		for {
			if _, used := c.usedTS[ts]; !used {
				return ts, true
			}
			ts += tsGap
		}
	}
	if c.kind == DA {
		for ts := hi; ts >= lo; ts-- {
			if _, used := c.usedTS[ts]; !used {
				return ts, true
			}
			if ts == 0 {
				break
			}
		}
		return 0, false
	}
	for ts := lo; ts <= hi; ts++ {
		if _, used := c.usedTS[ts]; !used {
			return ts, true
		}
	}
	return 0, false
}

func (c *refController) commitLocked(t *txn.Transaction, ts uint64) {
	c.usedTS[ts] = struct{}{}
	if ts > c.maxTS {
		c.maxTS = ts
	}
	if len(c.usedTS) >= maxUsedTS {
		c.usedTS = make(map[uint64]struct{})
		if c.maxTS > c.tsFloor {
			c.tsFloor = c.maxTS
		}
	}
	c.nextSerial++
	t.CommitTS = ts
	t.SerialOrder = c.nextSerial
	t.ApplyWrites(c.db)
	c.stats.Commits++
}

// --- Sequential equivalence property --------------------------------------

// eqPair drives one logical transaction against both controllers: a
// against the sharded implementation, b against the reference.
type eqPair struct {
	a, b   *txn.Transaction
	script []eqOp
}

type eqOp struct {
	kind int // 0 read, 1 write, 2 delete
	obj  store.ObjectID
}

// TestPropertyEquivalenceWithReference drives identical random
// sequential schedules through the sharded controller and the retained
// single-mutex reference, for every protocol, and requires every
// observable — operation return values, doom reports, commit
// timestamps, serial orders, victim sets, statistics, and the final
// database state — to match exactly. Run it under -race to also catch
// unsynchronized internal state.
func TestPropertyEquivalenceWithReference(t *testing.T) {
	for _, k := range []Kind{DATI, TI, DA, BC} {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			for seed := int64(0); seed < 10; seed++ {
				checkEquivalence(t, k, seed)
			}
		})
	}
}

func checkEquivalence(t *testing.T, k Kind, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	const nObjects = 10
	dbA := store.New()
	dbB := store.New()
	for i := 0; i < nObjects; i++ {
		dbA.Put(store.ObjectID(i), []byte{0})
		dbB.Put(store.ObjectID(i), []byte{0})
	}
	ctl := NewController(k, dbA)
	ref := newRefController(k, dbB)

	var nextID txn.ID
	newPair := func() *eqPair {
		nextID++
		p := &eqPair{
			a: txn.New(nextID, txn.Firm, 0, txn.NoDeadline),
			b: txn.New(nextID, txn.Firm, 0, txn.NoDeadline),
		}
		for i := 0; i < 2+rng.Intn(5); i++ {
			kind := 0
			switch r := rng.Intn(100); {
			case r < 55:
				kind = 0
			case r < 90:
				kind = 1
			default:
				kind = 2
			}
			p.script = append(p.script, eqOp{kind: kind, obj: store.ObjectID(rng.Intn(nObjects))})
		}
		ctl.Begin(p.a)
		ref.Begin(p.b)
		return p
	}

	live := make([]*eqPair, 0, 6)
	for i := 0; i < 6; i++ {
		live = append(live, newPair())
	}
	committed := 0
	for steps := 0; steps < 4000 && committed < 150; steps++ {
		i := rng.Intn(len(live))
		p := live[i]
		retire := false
		ra, da := ctl.Doomed(p.a)
		rb, db := ref.Doomed(p.b)
		if da != db || ra != rb {
			t.Fatalf("%v seed %d step %d: Doomed diverged: sharded=(%v,%v) ref=(%v,%v)",
				k, seed, steps, ra, da, rb, db)
		}
		switch {
		case da:
			retire = true
		case len(p.script) == 0:
			resA := ctl.Validate(p.a)
			resB := ref.Validate(p.b)
			if resA.OK != resB.OK {
				t.Fatalf("%v seed %d step %d: Validate OK diverged: %v vs %v", k, seed, steps, resA.OK, resB.OK)
			}
			if resA.OK {
				if p.a.CommitTS != p.b.CommitTS || p.a.SerialOrder != p.b.SerialOrder {
					t.Fatalf("%v seed %d step %d: commit diverged: ts %d/%d serial %d/%d",
						k, seed, steps, p.a.CommitTS, p.b.CommitTS, p.a.SerialOrder, p.b.SerialOrder)
				}
				if va, vb := victimIDs(resA), victimIDs(resB); va != vb {
					t.Fatalf("%v seed %d step %d: victim sets diverged: %s vs %s", k, seed, steps, va, vb)
				}
				committed++
			}
			retire = true
		default:
			op := p.script[0]
			p.script = p.script[1:]
			switch op.kind {
			case 0:
				va, okA := p.a.Read(dbA, op.obj)
				vb, okB := p.b.Read(dbB, op.obj)
				if okA != okB || !bytes.Equal(va, vb) {
					t.Fatalf("%v seed %d step %d: Read(%d) diverged: (%q,%v) vs (%q,%v)",
						k, seed, steps, op.obj, va, okA, vb, okB)
				}
				wtsA, obsA := p.a.ObservedWriteTS(op.obj)
				wtsB, obsB := p.b.ObservedWriteTS(op.obj)
				if obsA != obsB || wtsA != wtsB {
					t.Fatalf("%v seed %d step %d: observed wts diverged", k, seed, steps)
				}
				if obsA {
					ba := ctl.OnRead(p.a, op.obj, wtsA)
					bb := ref.OnRead(p.b, op.obj, wtsB)
					if ba != bb {
						t.Fatalf("%v seed %d step %d: OnRead diverged: %v vs %v", k, seed, steps, ba, bb)
					}
					retire = !ba
				}
			case 1:
				val := []byte{byte(p.a.ID), byte(steps), byte(steps >> 8)}
				p.a.StageWrite(op.obj, val)
				p.b.StageWrite(op.obj, val)
				ba := ctl.OnWrite(p.a, op.obj)
				bb := ref.OnWrite(p.b, op.obj)
				if ba != bb {
					t.Fatalf("%v seed %d step %d: OnWrite diverged: %v vs %v", k, seed, steps, ba, bb)
				}
				retire = !ba
			case 2:
				p.a.StageDelete(op.obj)
				p.b.StageDelete(op.obj)
				ba := ctl.OnWrite(p.a, op.obj)
				bb := ref.OnWrite(p.b, op.obj)
				if ba != bb {
					t.Fatalf("%v seed %d step %d: OnWrite(delete) diverged: %v vs %v", k, seed, steps, ba, bb)
				}
				retire = !ba
			}
		}
		if retire {
			ctl.Finish(p.a)
			ref.Finish(p.b)
			live[i] = newPair()
		}
	}
	if committed < 20 {
		t.Fatalf("%v seed %d: only %d commits — harness starved", k, seed, committed)
	}
	for _, p := range live {
		ctl.Finish(p.a)
		ref.Finish(p.b)
	}

	if sa, sb := ctl.Stats(), ref.Stats(); sa != sb {
		t.Fatalf("%v seed %d: stats diverged:\n  sharded: %+v\n  ref:     %+v", k, seed, sa, sb)
	}
	if la, lb := ctl.LastSerial(), ref.LastSerial(); la != lb {
		t.Fatalf("%v seed %d: LastSerial diverged: %d vs %d", k, seed, la, lb)
	}
	if ca, cb := ctl.ActiveCount(), ref.ActiveCount(); ca != 0 || cb != 0 {
		t.Fatalf("%v seed %d: actives leaked: %d vs %d", k, seed, ca, cb)
	}
	if dbA.Checksum() != dbB.Checksum() {
		t.Fatalf("%v seed %d: final database state diverged", k, seed)
	}
}

func victimIDs(r Result) string {
	ids := make([]int, 0, len(r.Victims))
	for _, v := range r.Victims {
		ids = append(ids, int(v.ID))
	}
	sort.Ints(ids)
	return fmt.Sprint(ids)
}
