// Package sched implements the RODAIN transaction scheduler: a modified
// Earliest-Deadline-First ready queue and the overload manager.
//
// The modification to traditional EDF supports a small number of
// non-real-time transactions running alongside real-time ones. Without
// deadlines, non-RT transactions would only run when no real-time
// transaction is ready and would starve; the scheduler therefore reserves
// a fixed fraction of dispatches for them, claimed on demand — when no
// non-RT work is queued the reservation costs nothing.
//
// The overload manager limits the number of active transactions. It uses
// the number of transactions that missed their deadline within an
// observation period as the load-level signal: misses shrink the
// admission limit multiplicatively (down to a floor), miss-free periods
// recover it additively, and while the limit is reached an arriving
// transaction — the lowest-priority work in the system — is denied
// admission and aborted.
package sched

import (
	"container/heap"
	"container/list"
	"sync"

	"repro/internal/simtime"
	"repro/internal/txn"
)

// Queue is the modified-EDF ready queue. It is safe for concurrent use.
type Queue struct {
	mu sync.Mutex

	rt    edfHeap
	nonRT list.List // of *txn.Transaction, FIFO
	seq   uint64

	// reserve is the fraction of dispatches reserved, on demand, for
	// non-real-time transactions.
	reserve float64
	// dispatched and nonRTDispatched count Pop results, to enforce the
	// reservation.
	dispatched      uint64
	nonRTDispatched uint64

	closed bool
	cond   *sync.Cond
}

// NewQueue returns a ready queue that reserves the given fraction
// (0 ≤ reserve < 1) of dispatches for non-real-time transactions.
func NewQueue(reserve float64) *Queue {
	if reserve < 0 {
		reserve = 0
	}
	if reserve >= 1 {
		reserve = 0.99
	}
	q := &Queue{reserve: reserve}
	q.cond = sync.NewCond(&q.mu)
	return q
}

type edfItem struct {
	t   *txn.Transaction
	seq uint64
}

type edfHeap []edfItem

func (h edfHeap) Len() int { return len(h) }
func (h edfHeap) Less(i, j int) bool {
	if h[i].t.Deadline != h[j].t.Deadline {
		return h[i].t.Deadline < h[j].t.Deadline
	}
	return h[i].seq < h[j].seq // FIFO among equal deadlines
}
func (h edfHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *edfHeap) Push(x any)        { *h = append(*h, x.(edfItem)) }
func (h *edfHeap) Pop() any          { old := *h; n := len(old); it := old[n-1]; *h = old[:n-1]; return it }
func (h edfHeap) peek() edfItem      { return h[0] }
func (q *Queue) rtLenLocked() int    { return len(q.rt) }
func (q *Queue) nonRTLenLocked() int { return q.nonRT.Len() }

// Push enqueues a transaction. Non-real-time transactions (no deadline)
// go to the FIFO side queue; everything else is ordered by absolute
// deadline.
func (q *Queue) Push(t *txn.Transaction) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if t.Class == txn.NonRealTime || !t.HasDeadline() {
		q.nonRT.PushBack(t)
	} else {
		q.seq++
		heap.Push(&q.rt, edfItem{t: t, seq: q.seq})
	}
	q.cond.Signal()
}

// Pop removes and returns the next transaction to run, or nil if the
// queue is empty. The non-RT side queue is served when it is owed its
// reserved fraction, and whenever no real-time work is ready.
func (q *Queue) Pop() *txn.Transaction {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.popLocked()
}

// PopWait blocks until a transaction is available or the queue is
// closed, in which case it returns nil.
func (q *Queue) PopWait() *txn.Transaction {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if t := q.popLocked(); t != nil {
			return t
		}
		if q.closed {
			return nil
		}
		q.cond.Wait()
	}
}

// Close wakes all PopWait callers; they return nil once the queue
// drains. Push after Close is still accepted (drain continues).
func (q *Queue) Close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.cond.Broadcast()
}

func (q *Queue) popLocked() *txn.Transaction {
	useNonRT := false
	switch {
	case q.rtLenLocked() == 0 && q.nonRTLenLocked() == 0:
		return nil
	case q.rtLenLocked() == 0:
		useNonRT = true
	case q.nonRTLenLocked() == 0:
		useNonRT = false
	default:
		// Both queues have work: serve non-RT if it is owed its
		// reserved fraction of dispatches.
		owed := float64(q.nonRTDispatched) < q.reserve*float64(q.dispatched)
		useNonRT = owed
	}
	q.dispatched++
	if useNonRT {
		q.nonRTDispatched++
		front := q.nonRT.Front()
		q.nonRT.Remove(front)
		return front.Value.(*txn.Transaction)
	}
	return heap.Pop(&q.rt).(edfItem).t
}

// Len reports the number of queued transactions (both queues).
func (q *Queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.rtLenLocked() + q.nonRTLenLocked()
}

// NextDeadline reports the earliest queued real-time deadline, or
// txn.NoDeadline if no real-time work is queued.
func (q *Queue) NextDeadline() simtime.Time {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.rtLenLocked() == 0 {
		return txn.NoDeadline
	}
	return q.rt.peek().t.Deadline
}

// DropExpired removes and returns every queued firm transaction whose
// deadline has passed at now; they are aborted by the caller without
// consuming execution time.
func (q *Queue) DropExpired(now simtime.Time) []*txn.Transaction {
	q.mu.Lock()
	defer q.mu.Unlock()
	var dropped []*txn.Transaction
	for q.rtLenLocked() > 0 {
		it := q.rt.peek()
		if it.t.Class == txn.Firm && it.t.Expired(now) {
			heap.Pop(&q.rt)
			dropped = append(dropped, it.t)
			continue
		}
		break
	}
	return dropped
}

// EvictLowerCriticality removes and returns a queued transaction whose
// criticality is strictly below crit — the victim an arriving
// higher-priority transaction displaces when the overload manager's
// limit is reached. Among candidates the lowest criticality wins, with
// non-real-time work preferred and later deadlines breaking ties. It
// returns nil when nothing queued is less critical. Running transactions
// are never evicted.
func (q *Queue) EvictLowerCriticality(crit int) *txn.Transaction {
	q.mu.Lock()
	defer q.mu.Unlock()
	// Non-RT queue first: deadline-less work is the least critical of
	// equal-criticality candidates.
	var nonRTVictim *list.Element
	for e := q.nonRT.Front(); e != nil; e = e.Next() {
		t := e.Value.(*txn.Transaction)
		if t.Criticality >= crit {
			continue
		}
		if nonRTVictim == nil || t.Criticality < nonRTVictim.Value.(*txn.Transaction).Criticality {
			nonRTVictim = e
		}
	}
	rtVictim := -1
	for i := range q.rt {
		t := q.rt[i].t
		if t.Criticality >= crit {
			continue
		}
		if rtVictim < 0 {
			rtVictim = i
			continue
		}
		v := q.rt[rtVictim].t
		if t.Criticality < v.Criticality ||
			(t.Criticality == v.Criticality && t.Deadline > v.Deadline) {
			rtVictim = i
		}
	}
	switch {
	case nonRTVictim != nil && (rtVictim < 0 ||
		nonRTVictim.Value.(*txn.Transaction).Criticality <= q.rt[rtVictim].t.Criticality):
		t := nonRTVictim.Value.(*txn.Transaction)
		q.nonRT.Remove(nonRTVictim)
		return t
	case rtVictim >= 0:
		t := q.rt[rtVictim].t
		heap.Remove(&q.rt, rtVictim)
		return t
	default:
		return nil
	}
}

// OverloadConfig parameterizes the overload manager.
type OverloadConfig struct {
	// MaxActive is the hard cap on concurrently active transactions
	// (the paper's experiments use 50).
	MaxActive int
	// MinActive is the floor the dynamic limit can shrink to.
	MinActive int
	// Window is the observation period for deadline misses.
	Window simtime.Duration
	// MissHighWater is the number of misses within Window that triggers
	// a multiplicative shrink of the admission limit.
	MissHighWater int
}

// DefaultOverloadConfig mirrors the paper's experimental setup.
func DefaultOverloadConfig() OverloadConfig {
	return OverloadConfig{
		MaxActive:     50,
		MinActive:     8,
		Window:        simtime.Duration(500e6), // 500 ms
		MissHighWater: 10,
	}
}

// Overload is the overload manager. It is safe for concurrent use.
type Overload struct {
	cfg OverloadConfig

	mu       sync.Mutex
	active   int
	limit    int
	misses   []simtime.Time // miss times within the current window
	lastGrow simtime.Time

	denied uint64
}

// NewOverload returns an overload manager with the given configuration.
// Zero-valued fields are filled from DefaultOverloadConfig.
func NewOverload(cfg OverloadConfig) *Overload {
	def := DefaultOverloadConfig()
	if cfg.MaxActive <= 0 {
		cfg.MaxActive = def.MaxActive
	}
	if cfg.MinActive <= 0 {
		cfg.MinActive = def.MinActive
	}
	if cfg.MinActive > cfg.MaxActive {
		cfg.MinActive = cfg.MaxActive
	}
	if cfg.Window <= 0 {
		cfg.Window = def.Window
	}
	if cfg.MissHighWater <= 0 {
		cfg.MissHighWater = def.MissHighWater
	}
	return &Overload{cfg: cfg, limit: cfg.MaxActive}
}

// Admit decides whether a transaction arriving at now may enter the
// system. On true the active count is incremented; the caller must pair
// it with Done. On false the transaction must be aborted with reason
// OverloadDenied.
func (o *Overload) Admit(now simtime.Time) bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.pruneLocked(now)
	o.adaptLocked(now)
	if o.active >= o.limit {
		o.denied++
		return false
	}
	o.active++
	return true
}

// WouldAdmit reports whether a transaction arriving at now would be
// admitted, without taking a slot or counting a denial. It is the
// advisory pre-check a service front end runs at the socket: when false
// the request can be answered MISS overload before any execution
// resources are spent on it. The answer is a snapshot — a concurrent
// arrival may still take the last slot — so admission proper remains
// Admit's job.
func (o *Overload) WouldAdmit(now simtime.Time) bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.pruneLocked(now)
	o.adaptLocked(now)
	return o.active < o.limit
}

// ForceAdmit takes a slot unconditionally: used when an arriving
// high-criticality transaction displaces a queued victim whose slot is
// released asynchronously. The active count may transiently exceed the
// limit by the number of in-flight displacements.
func (o *Overload) ForceAdmit() {
	o.mu.Lock()
	o.active++
	o.mu.Unlock()
}

// Done releases an admitted transaction's slot.
func (o *Overload) Done() {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.active > 0 {
		o.active--
	}
}

// RecordMiss notes a deadline miss at now; misses within the observation
// window drive the admission limit down.
func (o *Overload) RecordMiss(now simtime.Time) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.pruneLocked(now)
	o.misses = append(o.misses, now)
}

// Active reports the number of admitted, unfinished transactions.
func (o *Overload) Active() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.active
}

// Limit reports the current dynamic admission limit.
func (o *Overload) Limit() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.limit
}

// Denied reports how many arrivals have been refused admission.
func (o *Overload) Denied() uint64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.denied
}

func (o *Overload) pruneLocked(now simtime.Time) {
	cut := 0
	for cut < len(o.misses) && o.misses[cut] < now.Add(-o.cfg.Window) {
		cut++
	}
	if cut > 0 {
		o.misses = append(o.misses[:0], o.misses[cut:]...)
	}
}

// adaptLocked applies the miss-driven limit policy: multiplicative
// decrease when misses within the window exceed the high-water mark,
// additive recovery after a miss-free window.
func (o *Overload) adaptLocked(now simtime.Time) {
	if len(o.misses) > o.cfg.MissHighWater {
		o.limit /= 2
		if o.limit < o.cfg.MinActive {
			o.limit = o.cfg.MinActive
		}
		// Consume the misses so one burst shrinks the limit once.
		o.misses = o.misses[:0]
		o.lastGrow = now
		return
	}
	if len(o.misses) == 0 && o.limit < o.cfg.MaxActive && now.Sub(o.lastGrow) >= o.cfg.Window {
		o.limit++
		o.lastGrow = now
	}
}
