package sched

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/simtime"
	"repro/internal/txn"
)

func rt(id txn.ID, deadline simtime.Time) *txn.Transaction {
	return txn.New(id, txn.Firm, 0, deadline)
}

func nonRT(id txn.ID) *txn.Transaction {
	return txn.New(id, txn.NonRealTime, 0, txn.NoDeadline)
}

func TestEDFOrder(t *testing.T) {
	q := NewQueue(0)
	q.Push(rt(1, 300))
	q.Push(rt(2, 100))
	q.Push(rt(3, 200))
	var got []txn.ID
	for tx := q.Pop(); tx != nil; tx = q.Pop() {
		got = append(got, tx.ID)
	}
	want := []txn.ID{2, 3, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("EDF order = %v, want %v", got, want)
		}
	}
}

func TestEqualDeadlinesFIFO(t *testing.T) {
	q := NewQueue(0)
	for i := 1; i <= 5; i++ {
		q.Push(rt(txn.ID(i), 100))
	}
	for i := 1; i <= 5; i++ {
		if tx := q.Pop(); tx.ID != txn.ID(i) {
			t.Fatalf("equal deadlines not FIFO: got %d at position %d", tx.ID, i)
		}
	}
}

func TestPopEmpty(t *testing.T) {
	q := NewQueue(0)
	if q.Pop() != nil {
		t.Fatal("Pop on empty queue should be nil")
	}
	if q.Len() != 0 {
		t.Fatal("Len should be 0")
	}
	if q.NextDeadline() != txn.NoDeadline {
		t.Fatal("NextDeadline on empty queue should be NoDeadline")
	}
}

func TestNonRTServedWhenIdle(t *testing.T) {
	q := NewQueue(0) // no reservation at all
	q.Push(nonRT(1))
	tx := q.Pop()
	if tx == nil || tx.ID != 1 {
		t.Fatal("non-RT transaction should run when no RT work exists")
	}
}

func TestNonRTStarvationWithoutReserve(t *testing.T) {
	q := NewQueue(0)
	q.Push(nonRT(100))
	for i := 1; i <= 20; i++ {
		q.Push(rt(txn.ID(i), simtime.Time(i)))
	}
	for i := 0; i < 20; i++ {
		if tx := q.Pop(); tx.Class == txn.NonRealTime {
			t.Fatal("non-RT ran before RT queue drained with zero reservation")
		}
	}
}

func TestNonRTReservationPreventsStarvation(t *testing.T) {
	q := NewQueue(0.1) // 10% of dispatches
	for i := 1; i <= 10; i++ {
		q.Push(nonRT(txn.ID(1000 + i)))
	}
	nonRTruns := 0
	// Keep the RT queue non-empty throughout: 100 dispatches.
	for i := 1; i <= 100; i++ {
		q.Push(rt(txn.ID(i), simtime.Time(i)))
	}
	for i := 0; i < 100; i++ {
		if tx := q.Pop(); tx != nil && tx.Class == txn.NonRealTime {
			nonRTruns++
		}
	}
	if nonRTruns == 0 {
		t.Fatal("reservation did not prevent starvation")
	}
	if nonRTruns > 10+2 {
		t.Fatalf("non-RT overserved: %d runs out of 100 at 10%% reserve", nonRTruns)
	}
}

func TestNextDeadline(t *testing.T) {
	q := NewQueue(0)
	q.Push(rt(1, 500))
	q.Push(rt(2, 100))
	if d := q.NextDeadline(); d != 100 {
		t.Fatalf("NextDeadline = %v, want 100", d)
	}
}

func TestDropExpired(t *testing.T) {
	q := NewQueue(0)
	q.Push(rt(1, 50))
	q.Push(rt(2, 150))
	q.Push(rt(3, 70))
	dropped := q.DropExpired(100)
	if len(dropped) != 2 {
		t.Fatalf("dropped %d, want 2", len(dropped))
	}
	next := q.Pop()
	if next == nil || next.ID != 2 {
		t.Fatalf("survivor = %v", next)
	}
}

func TestDropExpiredKeepsSoft(t *testing.T) {
	q := NewQueue(0)
	soft := txn.New(1, txn.Soft, 0, 50)
	q.Push(soft)
	if dropped := q.DropExpired(100); len(dropped) != 0 {
		t.Fatal("soft transactions must survive deadline expiry")
	}
}

func TestPopWaitAndClose(t *testing.T) {
	q := NewQueue(0)
	got := make(chan *txn.Transaction, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		got <- q.PopWait()
	}()
	time.Sleep(10 * time.Millisecond)
	q.Push(rt(7, 100))
	select {
	case tx := <-got:
		if tx.ID != 7 {
			t.Fatalf("PopWait = %v", tx)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("PopWait never returned")
	}
	wg.Wait()

	done := make(chan struct{})
	go func() {
		if q.PopWait() != nil {
			t.Error("PopWait after Close on empty queue should be nil")
		}
		close(done)
	}()
	time.Sleep(10 * time.Millisecond)
	q.Close()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not wake PopWait")
	}
}

// Property: Pop with no non-RT work always yields nondecreasing
// deadlines when nothing is pushed in between.
func TestPropertyEDFIsSorted(t *testing.T) {
	f := func(deadlines []uint16) bool {
		q := NewQueue(0)
		for i, d := range deadlines {
			q.Push(rt(txn.ID(i+1), simtime.Time(d)))
		}
		prev := simtime.Time(-1)
		for tx := q.Pop(); tx != nil; tx = q.Pop() {
			if tx.Deadline < prev {
				return false
			}
			prev = tx.Deadline
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: reservation accounting — over a long run with both queues
// always non-empty, the non-RT share approaches the reserve fraction.
func TestPropertyReservationShare(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, reserve := range []float64{0.05, 0.2, 0.5} {
		q := NewQueue(reserve)
		nonRTruns := 0
		const n = 2000
		for i := 0; i < n; i++ {
			// Keep both queues stocked.
			q.Push(rt(txn.ID(i), simtime.Time(rng.Intn(1000))))
			q.Push(nonRT(txn.ID(100000 + i)))
			if tx := q.Pop(); tx.Class == txn.NonRealTime {
				nonRTruns++
			}
		}
		share := float64(nonRTruns) / n
		if share < reserve-0.05 || share > reserve+0.05 {
			t.Fatalf("reserve %.2f: share %.3f", reserve, share)
		}
	}
}

// --- Overload manager ------------------------------------------------------

func TestOverloadHardCap(t *testing.T) {
	o := NewOverload(OverloadConfig{MaxActive: 3})
	for i := 0; i < 3; i++ {
		if !o.Admit(0) {
			t.Fatalf("admission %d refused below cap", i)
		}
	}
	if o.Admit(0) {
		t.Fatal("admission above cap")
	}
	if o.Denied() != 1 {
		t.Fatalf("Denied = %d", o.Denied())
	}
	o.Done()
	if !o.Admit(0) {
		t.Fatal("slot not released by Done")
	}
	if o.Active() != 3 {
		t.Fatalf("Active = %d", o.Active())
	}
}

func TestOverloadShrinksOnMisses(t *testing.T) {
	o := NewOverload(OverloadConfig{MaxActive: 40, MinActive: 5, Window: 100, MissHighWater: 4})
	for i := 0; i < 5; i++ {
		o.RecordMiss(simtime.Time(10 + i))
	}
	o.Admit(20) // triggers adaptation
	if o.Limit() >= 40 {
		t.Fatalf("limit did not shrink: %d", o.Limit())
	}
	if o.Limit() != 20 {
		t.Fatalf("limit = %d, want multiplicative halve to 20", o.Limit())
	}
}

func TestOverloadFloor(t *testing.T) {
	o := NewOverload(OverloadConfig{MaxActive: 16, MinActive: 6, Window: 100, MissHighWater: 1})
	for round := 0; round < 5; round++ {
		for i := 0; i < 3; i++ {
			o.RecordMiss(simtime.Time(round*10 + i))
		}
		o.Admit(simtime.Time(round*10 + 5))
		o.Done()
	}
	if o.Limit() < 6 {
		t.Fatalf("limit %d fell below floor", o.Limit())
	}
}

func TestOverloadRecovers(t *testing.T) {
	o := NewOverload(OverloadConfig{MaxActive: 16, MinActive: 2, Window: 100, MissHighWater: 1})
	for i := 0; i < 3; i++ {
		o.RecordMiss(simtime.Time(i))
	}
	o.Admit(5)
	o.Done()
	shrunk := o.Limit()
	if shrunk >= 16 {
		t.Fatal("limit did not shrink")
	}
	// A long miss-free stretch: limit grows back one step per window.
	for now := simtime.Time(200); now < 2000; now += 100 {
		o.Admit(now)
		o.Done()
	}
	if o.Limit() <= shrunk {
		t.Fatalf("limit did not recover: %d", o.Limit())
	}
}

func TestOverloadMissWindowExpires(t *testing.T) {
	o := NewOverload(OverloadConfig{MaxActive: 16, MinActive: 2, Window: 100, MissHighWater: 2})
	o.RecordMiss(0)
	o.RecordMiss(1)
	o.RecordMiss(2)
	// Far in the future the misses have aged out: no shrink.
	o.Admit(1000)
	if o.Limit() != 16 {
		t.Fatalf("stale misses shrank the limit to %d", o.Limit())
	}
}

func TestOverloadDefaults(t *testing.T) {
	o := NewOverload(OverloadConfig{})
	if o.Limit() != 50 {
		t.Fatalf("default limit = %d, want 50", o.Limit())
	}
	o2 := NewOverload(OverloadConfig{MaxActive: 4, MinActive: 10})
	if o2.Limit() != 4 {
		t.Fatalf("MinActive must clamp to MaxActive; limit = %d", o2.Limit())
	}
	o2.Done() // Done with zero active must not underflow
	if o2.Active() != 0 {
		t.Fatalf("Active underflowed: %d", o2.Active())
	}
}

func TestOverloadConcurrent(t *testing.T) {
	o := NewOverload(OverloadConfig{MaxActive: 10})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				if o.Admit(simtime.Time(i)) {
					o.Done()
				}
				if i%50 == 0 {
					o.RecordMiss(simtime.Time(i))
				}
			}
		}()
	}
	wg.Wait()
	if o.Active() != 0 {
		t.Fatalf("Active = %d after all Done", o.Active())
	}
}

func TestEvictLowerCriticality(t *testing.T) {
	q := NewQueue(0)
	lo := rt(1, 100)
	lo.Criticality = 1
	mid := rt(2, 200)
	mid.Criticality = 5
	q.Push(lo)
	q.Push(mid)

	if v := q.EvictLowerCriticality(1); v != nil {
		t.Fatalf("evicted %v for equal criticality", v.ID)
	}
	v := q.EvictLowerCriticality(3)
	if v == nil || v.ID != 1 {
		t.Fatalf("victim = %v, want txn 1", v)
	}
	if q.Len() != 1 {
		t.Fatalf("Len = %d", q.Len())
	}
	// Remaining queue still pops correctly.
	if got := q.Pop(); got == nil || got.ID != 2 {
		t.Fatalf("Pop = %v", got)
	}
}

func TestEvictPrefersNonRT(t *testing.T) {
	q := NewQueue(0)
	n := nonRT(10)
	n.Criticality = 2
	r := rt(20, 100)
	r.Criticality = 2
	q.Push(n)
	q.Push(r)
	v := q.EvictLowerCriticality(5)
	if v == nil || v.ID != 10 {
		t.Fatalf("victim = %v, want the non-RT txn", v)
	}
}

func TestEvictPicksLatestDeadlineAmongEqual(t *testing.T) {
	q := NewQueue(0)
	early := rt(1, 100)
	late := rt(2, 900)
	q.Push(early)
	q.Push(late)
	v := q.EvictLowerCriticality(1)
	if v == nil || v.ID != 2 {
		t.Fatalf("victim = %v, want the latest-deadline txn", v)
	}
}

func TestEvictEmptyQueue(t *testing.T) {
	q := NewQueue(0)
	if q.EvictLowerCriticality(100) != nil {
		t.Fatal("evicted from empty queue")
	}
}

func TestForceAdmit(t *testing.T) {
	o := NewOverload(OverloadConfig{MaxActive: 1})
	if !o.Admit(0) {
		t.Fatal("first admit refused")
	}
	o.ForceAdmit()
	if o.Active() != 2 {
		t.Fatalf("Active = %d", o.Active())
	}
	o.Done()
	o.Done()
}

func TestOverloadWouldAdmit(t *testing.T) {
	o := NewOverload(OverloadConfig{MaxActive: 2})
	if !o.WouldAdmit(0) {
		t.Fatal("WouldAdmit false on an empty manager")
	}
	o.Admit(0)
	if !o.WouldAdmit(0) {
		t.Fatal("WouldAdmit false below the limit")
	}
	o.Admit(0)
	if o.WouldAdmit(0) {
		t.Fatal("WouldAdmit true at the limit")
	}
	// Advisory only: no slot taken, no denial counted.
	if o.Active() != 2 {
		t.Fatalf("Active = %d, WouldAdmit must not take a slot", o.Active())
	}
	if o.Denied() != 0 {
		t.Fatalf("Denied = %d, WouldAdmit must not count a denial", o.Denied())
	}
	o.Done()
	if !o.WouldAdmit(0) {
		t.Fatal("WouldAdmit false after a slot freed")
	}
}
