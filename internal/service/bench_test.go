package service

import (
	"fmt"
	"testing"
	"time"

	rodain "repro"
)

// BenchmarkTokenize measures the request tokenizer on the hot protocol
// verbs. The acceptance bar is 0 allocs/op: the line is copied into the
// pooled request's buffer and split in place.
func BenchmarkTokenize(b *testing.B) {
	cases := []struct{ name, line string }{
		{"get", "GET 12345"},
		{"translate", "TRANSLATE 0401234567"},
		{"balance", "BALANCE 17"},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			req := getRequest()
			defer putRequest(req)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				req.buf = append(req.buf[:0], tc.line...)
				if !req.tokenize() || req.cmd == cmdUnknown {
					b.Fatalf("tokenize failed on %q", tc.line)
				}
				if req.cmd == cmdGet {
					if _, ok := parseUintBytes(req.args[0]); !ok {
						b.Fatal("parseUintBytes failed")
					}
				}
			}
		})
	}
}

// BenchmarkServiceThroughput drives the front end closed-loop over real
// TCP connections: conns connections, each keeping depth requests in
// flight. depth=1 is the serial ablation; the pipelined configurations
// should beat it on req/s once several connections contend.
func BenchmarkServiceThroughput(b *testing.B) {
	for _, tc := range []struct{ conns, depth int }{
		{1, 1}, {1, 8}, {4, 1}, {4, 8},
	} {
		b.Run(fmt.Sprintf("conns=%d/depth=%d", tc.conns, tc.depth), func(b *testing.B) {
			db := newTestDB(b, rodain.Options{Durability: rodain.DurNone, Workers: 4, MaxActive: 256})
			defer db.Close()
			srv := NewServerConfig(db, Config{PipelineDepth: tc.depth, Workers: 8})
			addr, err := srv.Listen("127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			defer srv.Close()

			total := b.N
			if total < tc.conns {
				total = tc.conns
			}
			line := func(c, i int) string {
				if i == 0 {
					return "DEADLINE 5000" // headroom on loaded CI machines
				}
				return fmt.Sprintf("GET %d", 50+i%20)
			}
			b.ResetTimer()
			res, err := GenerateLoad(addr, tc.conns, tc.depth, total, time.Second, line)
			b.StopTimer()
			if err != nil {
				b.Fatal(err)
			}
			if res.Errors > 0 || res.Misses > 0 {
				b.Fatalf("%d errors, %d misses over %d requests", res.Errors, res.Misses, res.Requests)
			}
			b.ReportMetric(res.Throughput, "req/s")
		})
	}
}
