package service

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/simtime"
)

// FailoverClient is a client that knows every node of a RODAIN pair and
// fails over transparently: when the connection drops or the node
// answers "ERR not-serving" (it is a mirror), the client rotates to the
// next address and retries. Telecom front ends keep dialing through a
// takeover; so does this.
type FailoverClient struct {
	addrs   []string
	timeout time.Duration
	budget  time.Duration
	clock   simtime.Clock // times the failover budget; the shared wall clock by default

	mu  sync.Mutex
	cur int
	c   *Client
}

// DialFailover connects to the first reachable node of addrs. timeout
// bounds each dial; budget bounds how long one Do may spend failing
// over before giving up.
func DialFailover(addrs []string, timeout, budget time.Duration) (*FailoverClient, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("service: no addresses")
	}
	if budget <= 0 {
		budget = 5 * time.Second
	}
	f := &FailoverClient{addrs: addrs, timeout: timeout, budget: budget, clock: simtime.Wall}
	if err := f.reconnectLocked(); err != nil {
		return nil, err
	}
	return f, nil
}

// reconnectLocked tries every address once, starting at cur.
func (f *FailoverClient) reconnectLocked() error {
	var lastErr error
	for i := 0; i < len(f.addrs); i++ {
		idx := (f.cur + i) % len(f.addrs)
		c, err := Dial(f.addrs[idx], f.timeout)
		if err != nil {
			lastErr = err
			continue
		}
		if f.c != nil {
			f.c.Close()
		}
		f.c = c
		f.cur = idx
		return nil
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("service: all nodes unreachable")
	}
	return lastErr
}

// Current reports the address currently in use.
func (f *FailoverClient) Current() string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.addrs[f.cur]
}

// Do sends one request, failing over between nodes until it gets a
// served response or the failover budget is exhausted. MISS responses
// are returned as-is — a real-time abort is an answer, not a failure.
func (f *FailoverClient) Do(line string) (string, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	deadline := f.clock.Now().Add(f.budget)
	var lastErr error
	for {
		if f.c != nil {
			resp, err := f.c.Do(line)
			switch {
			case err == nil && !strings.HasPrefix(resp, "ERR not-serving"):
				return resp, nil
			case err == nil:
				// A mirror: rotate to the next node.
				lastErr = fmt.Errorf("service: %s is not serving", f.addrs[f.cur])
			default:
				lastErr = err
			}
			f.c.Close()
			f.c = nil
		}
		if f.clock.Now() > deadline {
			return "", fmt.Errorf("service: failover budget exhausted: %w", lastErr)
		}
		f.cur = (f.cur + 1) % len(f.addrs)
		if err := f.reconnectLocked(); err != nil {
			lastErr = err
			simtime.SleepOn(f.clock, 20*time.Millisecond)
		}
	}
}

// Close disconnects.
func (f *FailoverClient) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.c == nil {
		return nil
	}
	err := f.c.Close()
	f.c = nil
	return err
}
