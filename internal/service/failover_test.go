package service

import (
	"strings"
	"testing"
	"time"

	rodain "repro"
)

// TestFailoverClientSurvivesTakeover drives a live pair through its
// service front ends and verifies the client keeps working across a
// primary crash.
func TestFailoverClientSurvivesTakeover(t *testing.T) {
	opts := rodain.Options{
		Workers:         2,
		HeartbeatEvery:  25 * time.Millisecond,
		HeartbeatMisses: 4,
	}
	primary, err := rodain.OpenPrimary(opts, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		primary.Load(rodain.ObjectID(i), []byte("init"))
	}
	mirror, err := rodain.OpenMirror(opts, primary.ReplAddr(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer mirror.Close()
	waitAttach(t, primary)

	pSrv := NewServer(primary)
	pAddr, err := pSrv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer pSrv.Close()
	mSrv := NewServer(mirror)
	mAddr, err := mSrv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer mSrv.Close()

	c, err := DialFailover([]string{pAddr, mAddr}, time.Second, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if resp, err := c.Do(`SET 1 "before"`); err != nil || resp != "OK" {
		t.Fatalf("SET before: %q %v", resp, err)
	}
	if c.Current() != pAddr {
		t.Fatalf("client on %s, want primary %s", c.Current(), pAddr)
	}

	// Kill the primary node (its service keeps listening but the DB is
	// dead — requests will error and the client must move on).
	primary.Crash()

	// The client transparently fails over to the promoted mirror.
	deadline := time.Now().Add(10 * time.Second)
	var resp string
	for {
		resp, err = c.Do("GET 1")
		if err == nil && OK(resp) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("client never recovered: %q %v", resp, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !strings.Contains(resp, `"before"`) {
		t.Fatalf("committed data lost across failover: %q", resp)
	}
	if c.Current() != mAddr {
		t.Fatalf("client on %s, want mirror %s", c.Current(), mAddr)
	}
	// Writes work on the promoted node too.
	if resp, err := c.Do(`SET 2 "after"`); err != nil || resp != "OK" {
		t.Fatalf("SET after: %q %v", resp, err)
	}
}

func TestFailoverClientMirrorFirst(t *testing.T) {
	// Listing the mirror first must not matter: the client rotates off
	// "not-serving" nodes.
	opts := rodain.Options{Workers: 2}
	primary, err := rodain.OpenPrimary(opts, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	primary.Load(1, []byte("v"))
	mirror, err := rodain.OpenMirror(opts, primary.ReplAddr(), "")
	if err != nil {
		t.Fatal(err)
	}
	defer mirror.Close()
	waitAttach(t, primary)

	pSrv := NewServer(primary)
	pAddr, _ := pSrv.Listen("127.0.0.1:0")
	defer pSrv.Close()
	mSrv := NewServer(mirror)
	mAddr, _ := mSrv.Listen("127.0.0.1:0")
	defer mSrv.Close()

	c, err := DialFailover([]string{mAddr, pAddr}, time.Second, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	resp, err := c.Do("GET 1")
	if err != nil || !OK(resp) {
		t.Fatalf("GET: %q %v", resp, err)
	}
	if c.Current() != pAddr {
		t.Fatalf("client stuck on mirror %s", c.Current())
	}
}

func TestFailoverClientNoNodes(t *testing.T) {
	if _, err := DialFailover(nil, time.Second, time.Second); err == nil {
		t.Fatal("empty address list accepted")
	}
	if _, err := DialFailover([]string{"127.0.0.1:1"}, 100*time.Millisecond, time.Second); err == nil {
		t.Fatal("unreachable node accepted")
	}
}

func waitAttach(t *testing.T, db *rodain.DB) {
	t.Helper()
	deadline := time.After(10 * time.Second)
	for {
		select {
		case ev := <-db.Events():
			if ev.Kind == rodain.EventMirrorAttached {
				return
			}
		case <-deadline:
			t.Fatal("mirror never attached")
		}
	}
}
