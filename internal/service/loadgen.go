package service

import (
	"sync"
	"time"

	"repro/internal/simtime"
)

// LoadResult summarizes one closed-loop load-generation run.
type LoadResult struct {
	// Requests is the number of request lines answered.
	Requests int
	// Misses counts MISS responses (deadline, overload, conflict).
	Misses int
	// Errors counts ERR responses.
	Errors int
	// Elapsed is the wall time from first send to last response.
	Elapsed time.Duration
	// Throughput is Requests / Elapsed, in requests per second.
	Throughput float64
}

// GenerateLoad drives addr with conns closed-loop connections, each
// keeping up to depth requests in flight, total requests overall. line
// produces the request line for connection c's i-th request. It is the
// measurement client behind BenchmarkServiceThroughput and the
// rodain-experiments front-end figure: closed loop means a connection
// refills its window only as responses drain, so the offered load
// self-regulates the way the paper's 200–300 tps sources do.
func GenerateLoad(addr string, conns, depth, total int, timeout time.Duration, line func(c, i int) string) (LoadResult, error) {
	if conns < 1 {
		conns = 1
	}
	if depth < 1 {
		depth = 1
	}
	per := total / conns
	if per < 1 {
		per = 1
	}
	clients := make([]*Client, conns)
	for i := range clients {
		c, err := Dial(addr, timeout)
		if err != nil {
			for _, d := range clients[:i] {
				d.Close()
			}
			return LoadResult{}, err
		}
		clients[i] = c
	}
	defer func() {
		for _, c := range clients {
			c.Close()
		}
	}()

	scripts := make([][]string, conns)
	for c := range scripts {
		script := make([]string, per)
		for i := range script {
			script[i] = line(c, i)
		}
		scripts[c] = script
	}

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		res      LoadResult
		firstErr error
	)
	start := simtime.Wall.Now()
	for c := range clients {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			resps, err := clients[c].Pipeline(scripts[c], depth)
			mu.Lock()
			defer mu.Unlock()
			res.Requests += len(resps)
			for _, r := range resps {
				switch {
				case Miss(r):
					res.Misses++
				case !OK(r):
					res.Errors++
				}
			}
			if err != nil && firstErr == nil {
				firstErr = err
			}
		}(c)
	}
	wg.Wait()
	res.Elapsed = time.Duration(simtime.Wall.Now().Sub(start))
	if res.Elapsed > 0 {
		res.Throughput = float64(res.Requests) / res.Elapsed.Seconds()
	}
	return res, firstErr
}
