package service

import (
	"bufio"
	"errors"
	"io"
	"net"
	"sync"
	"time"

	rodain "repro"
	"repro/internal/simtime"
)

// The per-connection pipeline. One reader goroutine parses ahead up to
// the configured window, one writer goroutine drains a sequenced reply
// ring so responses always leave in request order, and a server-wide
// worker pool executes read-only requests concurrently. Session-mutating
// commands (DEADLINE, CLASS, QUIT) and update transactions are
// execution barriers: the reader waits for the in-flight window to
// drain, then runs them inline, so a connection keeps sequential
// (read-your-writes) semantics while its lookups overlap freely.

// maxLineBytes bounds one request line, matching the old Scanner limit.
const maxLineBytes = 1 << 20

// request is one parsed client request flowing through a connection's
// pipeline. Requests are pooled; every byte slice keeps its capacity
// across uses, so a warmed-up connection parses and answers without
// allocating.
type request struct {
	cmd    command
	cmdTok []byte          // verb token (unknown-command echo); into buf
	args   [maxArgs][]byte // argument tokens; into buf
	nargs  int

	// Session snapshot at parse time: the deadline/class this request
	// runs under regardless of later session commands.
	class    rodain.Class
	deadline time.Duration
	arrival  simtime.Time

	buf  []byte // the request line, owned by this request
	resp []byte // the response line being built (no newline)

	// ready is signalled exactly once per cycle, when resp is complete.
	ready chan struct{}
	// done is the owning connection's in-flight counter; set only while
	// the request is out with the worker pool.
	done *sync.WaitGroup
}

var requestPool = sync.Pool{
	New: func() any { return &request{ready: make(chan struct{}, 1)} },
}

func getRequest() *request { return requestPool.Get().(*request) }

func putRequest(req *request) {
	req.cmd = cmdUnknown
	req.cmdTok = nil
	for i := range req.args {
		req.args[i] = nil
	}
	req.nargs = 0
	req.buf = req.buf[:0]
	req.resp = req.resp[:0]
	req.done = nil
	requestPool.Put(req)
}

// signalReady marks the response complete. It must be the request's
// last touch by its producer: the writer may recycle it immediately.
func (req *request) signalReady() { req.ready <- struct{}{} }

// pipeConn is the per-connection pipeline state.
type pipeConn struct {
	s    *Server
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
	sess session

	// pending is the sequenced reply ring: requests enter in parse
	// order and the writer drains them in that order; its capacity is
	// the connection's in-flight window.
	pending    chan *request
	inflight   sync.WaitGroup // requests out with the worker pool
	writerDone chan struct{}
}

// serve runs one client connection through the pipeline.
func (s *Server) serve(conn net.Conn) {
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true) // response latency beats segment coalescing
		tc.SetKeepAlive(true)
		tc.SetKeepAlivePeriod(30 * time.Second)
	}
	br := s.readers.Get().(*bufio.Reader)
	br.Reset(conn)
	bw := s.writers.Get().(*bufio.Writer)
	bw.Reset(conn)
	c := &pipeConn{
		s:          s,
		conn:       conn,
		br:         br,
		bw:         bw,
		sess:       session{deadline: 50 * time.Millisecond, class: rodain.Firm},
		pending:    make(chan *request, s.cfg.PipelineDepth),
		writerDone: make(chan struct{}),
	}
	c.run()
	br.Reset(nil)
	s.readers.Put(br)
	bw.Reset(nil)
	s.writers.Put(bw)
}

func (c *pipeConn) run() {
	go c.writeLoop()
	defer func() {
		close(c.pending)
		<-c.writerDone
		c.conn.Close()
	}()
	for {
		line, err := c.readLine()
		if err != nil {
			return
		}
		req := getRequest()
		req.buf = append(req.buf[:0], line...)
		if !req.tokenize() {
			putRequest(req) // blank line
			continue
		}
		req.arrival = c.s.clock.Now()
		req.class = c.sess.class
		req.deadline = c.sess.deadline

		switch {
		case req.cmd == cmdQuit:
			// Barrier, then answer and hang up (any arguments are
			// ignored, as they always were).
			c.barrier()
			req.resp = append(req.resp[:0], "OK bye"...)
			c.completeInline(req)
			return

		case isSessionCmd(req.cmd):
			// DEADLINE/CLASS: drain the window, then mutate the session
			// inline so the new settings bind exactly the requests
			// parsed after this one.
			c.barrier()
			req.resp = handleSession(req, &c.sess, req.resp[:0])
			c.completeInline(req)

		case req.cmd == cmdUnknown:
			req.resp = appendUnknown(req.resp[:0], req.cmdTok)
			c.completeInline(req)

		case cmdArgc[req.cmd] >= 0 && req.nargs != cmdArgc[req.cmd]:
			req.resp = appendUsage(req.resp[:0], req.cmd)
			c.completeInline(req)

		case isTxnCmd(req.cmd) && c.s.overloadedAtSocket():
			// Admission at the socket: the overload manager is at its
			// limit, so the arriving request — the lowest-priority work
			// in the system — is denied without consuming a worker.
			req.resp = append(req.resp[:0], "MISS overload"...)
			c.completeInline(req)

		case isWriteCmd(req.cmd):
			// Updates are ordering points: drain everything in flight,
			// run inline, and only then parse ahead again.
			c.barrier()
			req.resp = c.s.exec(req, req.resp[:0])
			c.completeInline(req)

		default:
			// Read-only request (GET/TRANSLATE/BALANCE/STATS): enter
			// the reply ring in order, then hand it to the shared
			// worker pool so many lookups overlap per connection.
			c.s.depthDist.Observe(len(c.pending) + 1)
			c.pending <- req
			c.inflight.Add(1)
			req.done = &c.inflight
			c.s.work <- req
		}
	}
}

// barrier waits until every request handed to the worker pool has
// finished executing (its response is built; the writer may still be
// flushing it, which preserves ordering on its own).
func (c *pipeConn) barrier() { c.inflight.Wait() }

// completeInline enqueues a reader-built response into the reply ring.
func (c *pipeConn) completeInline(req *request) {
	c.s.depthDist.Observe(len(c.pending) + 1)
	req.signalReady()
	c.pending <- req
}

// readLine returns the next request line (without its newline),
// enforcing the idle timeout and the line-length bound.
func (c *pipeConn) readLine() ([]byte, error) {
	if c.s.cfg.IdleTimeout > 0 {
		c.conn.SetReadDeadline(time.Now().Add(c.s.cfg.IdleTimeout)) //rodain:allow wallclock (socket I/O deadlines are wall-clock by nature)
	}
	line, err := c.br.ReadSlice('\n')
	if errors.Is(err, bufio.ErrBufferFull) {
		// Long line: accumulate (allocates; off the hot path).
		acc := append([]byte(nil), line...)
		for errors.Is(err, bufio.ErrBufferFull) {
			if len(acc) > maxLineBytes {
				return nil, bufio.ErrBufferFull
			}
			line, err = c.br.ReadSlice('\n')
			acc = append(acc, line...)
		}
		line = acc
	}
	if err != nil {
		if len(line) > 0 && errors.Is(err, io.EOF) {
			return chompNL(line), nil // final unterminated line
		}
		return nil, err
	}
	return chompNL(line), nil
}

func chompNL(b []byte) []byte {
	if n := len(b); n > 0 && b[n-1] == '\n' {
		return b[:n-1]
	}
	return b
}

// writeLoop drains the reply ring in sequence, coalescing the flush:
// the buffered writer is flushed only when no further response is
// immediately ready — one flush per drained batch, not per request.
func (c *pipeConn) writeLoop() {
	defer close(c.writerDone)
	var werr error
	dirty := false
	flush := func() {
		if dirty && werr == nil {
			if werr = c.bw.Flush(); werr != nil {
				// Unstick the reader: it may be blocked on a read
				// while the client waits for responses we can't send.
				c.conn.Close()
			}
			dirty = false
		}
	}
	for {
		var req *request
		select {
		case req = <-c.pending:
		default:
			flush()
			req = <-c.pending
		}
		if req == nil {
			flush()
			return
		}
		select {
		case <-req.ready:
		default:
			flush()
			<-req.ready
		}
		if werr == nil {
			c.bw.Write(req.resp)
			c.bw.WriteByte('\n')
			dirty = true
		}
		c.s.reqLat.Observe(c.s.clock.Now().Sub(req.arrival))
		putRequest(req)
	}
}

// worker executes read-only requests from every connection.
func (s *Server) worker() {
	defer s.workerWG.Done()
	for req := range s.work {
		req.resp = s.exec(req, req.resp[:0])
		done := req.done
		req.done = nil
		req.signalReady() // last touch: the writer owns req now
		done.Done()
	}
}
