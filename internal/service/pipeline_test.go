package service

import (
	"bufio"
	"fmt"
	"math/rand"
	"net"
	"strings"
	"testing"
	"time"

	rodain "repro"
	"repro/internal/telecom"
)

// newTestDB opens a DB with a deterministic population: telecom entries
// at ids 0..49, raw values "v50".."v69" at ids 50..69, and five prepaid
// subscribers.
func newTestDB(tb testing.TB, opts rodain.Options) *rodain.DB {
	tb.Helper()
	db, err := rodain.Open(opts)
	if err != nil {
		tb.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		db.Load(rodain.ObjectID(i), telecom.Encode(&telecom.Entry{
			Routed: "+358500000001", Active: true, Version: 1, Weight: 1,
		}))
	}
	for i := 50; i < 70; i++ {
		db.Load(rodain.ObjectID(i), []byte(fmt.Sprintf("v%d", i)))
	}
	for s := 0; s < 5; s++ {
		db.Load(telecom.SubscriberID(s), telecom.NewSubscriber("+3585", "A", true, 100000).Encode())
	}
	return db
}

func startPipeServer(tb testing.TB, cfg Config, opts rodain.Options) (string, *Server, *rodain.DB) {
	tb.Helper()
	db := newTestDB(tb, opts)
	srv := NewServerConfig(db, cfg)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() {
		srv.Close()
		db.Close()
	})
	return addr, srv, db
}

// genScript produces a random but deterministic-outcome command script:
// no STATS (timing-dependent output), no QUIT (hangs up), no blank
// lines (produce no response). Values written are sequence-numbered so
// any serial execution yields one canonical transcript.
func genScript(rng *rand.Rand, n int) []string {
	script := []string{"DEADLINE 10000"}
	classes := []string{"firm", "soft", "nonrt"}
	garbage := []string{"FROB 1", "GET", "SET 1", "CHARGE 0 x", "BALANCE -1", "get xyz zz qq"}
	val := 0
	for len(script) < n {
		switch rng.Intn(12) {
		case 0:
			script = append(script, fmt.Sprintf("GET %d", rng.Intn(80))) // 70..79 missing
		case 1:
			val++
			script = append(script, fmt.Sprintf("SET %d %q", 50+rng.Intn(20), fmt.Sprintf("w%d", val)))
		case 2:
			script = append(script, fmt.Sprintf("DEL %d", 50+rng.Intn(25))) // may be gone already
		case 3:
			script = append(script, fmt.Sprintf("TRANSLATE %d", rng.Intn(50)))
		case 4:
			script = append(script, fmt.Sprintf("REROUTE %d +35840%d", rng.Intn(50), rng.Intn(1000)))
		case 5:
			script = append(script, fmt.Sprintf("BALANCE %d", rng.Intn(6))) // 5 missing
		case 6:
			script = append(script, fmt.Sprintf("CHARGE %d %d", rng.Intn(5), 1+rng.Intn(50)))
		case 7:
			script = append(script, fmt.Sprintf("TOPUP %d %d", rng.Intn(5), 1+rng.Intn(50)))
		case 8:
			script = append(script, "CLASS "+classes[rng.Intn(len(classes))])
		case 9:
			script = append(script, fmt.Sprintf("DEADLINE %d", 2000+rng.Intn(8000)))
		case 10:
			script = append(script, garbage[rng.Intn(len(garbage))])
		case 11:
			val++
			script = append(script, fmt.Sprintf("SET %d w%d", 50+rng.Intn(20), val)) // bare word
		}
	}
	return script
}

// runScript executes script against a fresh identically-populated DB
// through a server with the given pipeline window, using a client
// keeping clientDepth requests in flight, and returns the transcript.
func runScript(t *testing.T, script []string, serverDepth, clientDepth int) []string {
	t.Helper()
	db := newTestDB(t, rodain.Options{Durability: rodain.DurNone, Workers: 4})
	defer db.Close()
	srv := NewServerConfig(db, Config{PipelineDepth: serverDepth})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	resps, err := c.Pipeline(script, clientDepth)
	if err != nil {
		t.Fatalf("pipeline (server depth %d, client depth %d): %v", serverDepth, clientDepth, err)
	}
	return resps
}

// TestPipelineSerialEquivalence is the property test for the pipelined
// front end: for random scripts (dependent writes, session commands,
// parse errors included) the transcript at a random pipeline depth is
// byte-identical to the serial depth-1 transcript.
func TestPipelineSerialEquivalence(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		script := genScript(rng, 120)
		serverDepth := 2 + rng.Intn(15)
		clientDepth := 2 + rng.Intn(15)

		serial := runScript(t, script, 1, 1)
		piped := runScript(t, script, serverDepth, clientDepth)

		if len(serial) != len(piped) {
			t.Fatalf("seed %d: %d serial responses vs %d pipelined", seed, len(serial), len(piped))
		}
		for i := range serial {
			if serial[i] != piped[i] {
				t.Errorf("seed %d (depth %d/%d), line %d %q:\n  serial:    %q\n  pipelined: %q",
					seed, serverDepth, clientDepth, i, script[i], serial[i], piped[i])
			}
		}
	}
}

// TestPipelineOrderedResponses checks that overlapping read-only
// requests still answer strictly in request order.
func TestPipelineOrderedResponses(t *testing.T) {
	addr, _, _ := startPipeServer(t, Config{PipelineDepth: 16},
		rodain.Options{Durability: rodain.DurNone, Workers: 4})
	c, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const n = 200
	lines := make([]string, n)
	for i := range lines {
		lines[i] = fmt.Sprintf("GET %d", 50+i%20)
	}
	resps, err := c.Pipeline(lines, 16)
	if err != nil {
		t.Fatal(err)
	}
	for i, resp := range resps {
		want := fmt.Sprintf("OK %q", fmt.Sprintf("v%d", 50+i%20))
		if resp != want {
			t.Fatalf("response %d = %q, want %q", i, resp, want)
		}
	}
}

// TestPipelineBarrierSemantics pins the exact transcript around session
// commands, updates and parse errors inside one pipelined batch.
func TestPipelineBarrierSemantics(t *testing.T) {
	addr, _, _ := startPipeServer(t, Config{PipelineDepth: 8},
		rodain.Options{Durability: rodain.DurNone, Workers: 4})
	c, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	steps := []struct{ line, want string }{
		{`SET 50 "x1"`, "OK"},
		{"GET 50", `OK "x1"`}, // read-your-writes across the barrier
		{"CLASS soft", "OK"},
		{"GET 50", `OK "x1"`},
		{"DEADLINE 5000", "OK"},
		{"CLASS bogus", "ERR unknown class bogus"},
		{"FROB 1", "ERR unknown command FROB"},
		{"GET", "ERR usage: GET <id>"},
		{"GET 1 2", "ERR usage: GET <id>"},
		{"GET 50", `OK "x1"`},
		{"QUIT now", "OK bye"}, // arguments ignored, as they always were
	}
	lines := make([]string, len(steps))
	for i, s := range steps {
		lines[i] = s.line
	}
	resps, err := c.Pipeline(lines, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range steps {
		if resps[i] != s.want {
			t.Errorf("%q: got %q, want %q", s.line, resps[i], s.want)
		}
	}
}

// TestPipelineQuitDrains checks that QUIT behaves as a barrier: every
// pipelined request written before it is answered before "OK bye".
func TestPipelineQuitDrains(t *testing.T) {
	addr, _, _ := startPipeServer(t, Config{PipelineDepth: 32},
		rodain.Options{Durability: rodain.DurNone, Workers: 4})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	var batch strings.Builder
	const n = 30
	for i := 0; i < n; i++ {
		batch.WriteString("GET 50\n")
	}
	batch.WriteString("QUIT\n")
	if _, err := conn.Write([]byte(batch.String())); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(conn)
	for i := 0; i < n; i++ {
		if !sc.Scan() {
			t.Fatalf("response %d: %v", i, sc.Err())
		}
		if got := sc.Text(); got != `OK "v50"` {
			t.Fatalf("response %d = %q", i, got)
		}
	}
	if !sc.Scan() || sc.Text() != "OK bye" {
		t.Fatalf("QUIT response: %q (%v)", sc.Text(), sc.Err())
	}
	if sc.Scan() {
		t.Fatalf("data after QUIT: %q", sc.Text())
	}
}

// TestBlankLinesSkipped: blank lines produce no response (unchanged
// from the scanner front end).
func TestBlankLinesSkipped(t *testing.T) {
	addr, _, _ := startPipeServer(t, Config{}, rodain.Options{Durability: rodain.DurNone, Workers: 2})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Write([]byte("\n   \n\t\r\nGET 50\n")); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(conn)
	if !sc.Scan() {
		t.Fatal(sc.Err())
	}
	if got := sc.Text(); got != `OK "v50"` {
		t.Fatalf("got %q", got)
	}
}

// TestLongLines: a line longer than the 64 KiB read buffer takes the
// slow accumulation path and still works; a line over the 1 MiB bound
// hangs up the connection.
func TestLongLines(t *testing.T) {
	addr, _, _ := startPipeServer(t, Config{}, rodain.Options{Durability: rodain.DurNone, Workers: 2})
	c, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	big := strings.Repeat("a", 100_000)
	if resp, err := c.Do(fmt.Sprintf("SET 50 %q", big)); err != nil || resp != "OK" {
		t.Fatalf("long SET: %q %v", resp, err)
	}
	if resp, err := c.Do("GET 50"); err != nil || resp != fmt.Sprintf("OK %q", big) {
		t.Fatalf("long GET: %d bytes, %v", len(resp), err)
	}

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	huge := make([]byte, maxLineBytes+(1<<17))
	for i := range huge {
		huge[i] = 'a'
	}
	huge[len(huge)-1] = '\n'
	if _, err := conn.Write(huge); err == nil {
		if _, err := bufio.NewReader(conn).ReadString('\n'); err == nil {
			t.Fatal("over-long line was answered instead of hanging up")
		}
	}
}

// TestSocketAdmission checks admission control at the socket: while the
// overload manager is at its limit, an arriving transactional request
// is answered MISS overload from the reader without queueing.
func TestSocketAdmission(t *testing.T) {
	addr, _, db := startPipeServer(t, Config{},
		rodain.Options{Durability: rodain.DurNone, Workers: 2, MaxActive: 1})
	c, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	started := make(chan struct{})
	release := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- db.Update(5*time.Second, func(tx *rodain.Tx) error {
			close(started)
			<-release
			return nil
		})
	}()
	<-started

	resp, err := c.Do("GET 50")
	if err != nil {
		t.Fatal(err)
	}
	if resp != "MISS overload" {
		t.Fatalf("at admission limit: %q, want MISS overload", resp)
	}

	close(release)
	if err := <-done; err != nil {
		t.Fatalf("slot-holding update: %v", err)
	}
	resp, err = c.Do("GET 50")
	if err != nil {
		t.Fatal(err)
	}
	if resp != `OK "v50"` {
		t.Fatalf("after release: %q", resp)
	}

	stats, err := c.Do("STATS")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stats, "sockmiss=1") {
		t.Fatalf("STATS should count the socket miss: %q", stats)
	}
}

// TestListenAfterClose: a closed server refuses new listeners instead
// of silently accepting on a dead server.
func TestListenAfterClose(t *testing.T) {
	db := newTestDB(t, rodain.Options{Durability: rodain.DurNone, Workers: 2})
	defer db.Close()

	srv := NewServer(db)
	if _, err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Listen("127.0.0.1:0"); err == nil {
		t.Fatal("Listen succeeded on a closed server")
	}

	// A server closed before it ever listened behaves the same, and
	// Close stays idempotent.
	srv2 := NewServer(db)
	srv2.Close()
	if _, err := srv2.Listen("127.0.0.1:0"); err == nil {
		t.Fatal("Listen succeeded on a never-listened closed server")
	}
	srv2.Close()
}

// TestIdleTimeout: a connection that goes quiet past the idle deadline
// is disconnected; an active one is not.
func TestIdleTimeout(t *testing.T) {
	addr, _, _ := startPipeServer(t, Config{IdleTimeout: 150 * time.Millisecond},
		rodain.Options{Durability: rodain.DurNone, Workers: 2})
	c, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Stays alive while requests keep arriving inside the window.
	for i := 0; i < 3; i++ {
		if resp, err := c.Do("GET 50"); err != nil || resp != `OK "v50"` {
			t.Fatalf("active connection request %d: %q %v", i, resp, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	// Goes quiet: the server hangs up.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Fatal("idle connection not disconnected")
	}
}
