// Package service is the interface process of a RODAIN node: a
// line-based TCP protocol through which clients submit transactions
// (the prototype's requests arrived through exactly such a front end).
//
// Protocol (one request per line, space-separated, values are Go-quoted
// strings):
//
//	DEADLINE <ms>                 set this connection's deadline
//	CLASS firm|soft|nonrt         set this connection's criticality class
//	GET <id>                      read-only transaction
//	SET <id> <value>              update transaction (read + write)
//	DEL <id>                      delete transaction
//	TRANSLATE <number>            number-translation service provision
//	REROUTE <number> <dest>       update service provision
//	BALANCE <subscriber>          read a subscriber profile's balance
//	CHARGE <subscriber> <cents>   debit a call charge (balance-checked)
//	TOPUP <subscriber> <cents>    credit a subscriber
//	STATS                         node statistics
//	QUIT
//
// Responses: "OK ...", "ERR <reason>", or "MISS <reason>" for real-time
// aborts (deadline, overload, conflict) — the client counts those
// toward the miss ratio.
//
// Clients may pipeline: many request lines may be written before the
// first response is read. Responses always come back in request order.
// Within one connection, read-only requests execute concurrently on a
// shared worker pool while update and session-mutating commands
// (SET/DEL/REROUTE/CHARGE/TOPUP, DEADLINE/CLASS/QUIT) act as execution
// barriers, so a pipelined connection observes exactly the transcript a
// serial one would (read-your-writes). See DESIGN.md §8.
package service

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	rodain "repro"
	"repro/internal/metrics"
	"repro/internal/simtime"
	"repro/internal/telecom"
)

// Defaults for Config's zero values.
const (
	// DefaultPipelineDepth is the per-connection in-flight window.
	DefaultPipelineDepth = 16
	// DefaultWorkers sizes the shared read-request execution pool.
	DefaultWorkers = 16
)

// Config tunes the service front end.
type Config struct {
	// PipelineDepth bounds how many requests one connection may have in
	// flight: parsed ahead, executing, or waiting their turn in the
	// reply ring. 1 disables pipelining (the ablation knob measured in
	// EXPERIMENTS.md); 0 means DefaultPipelineDepth.
	PipelineDepth int
	// Workers sizes the shared pool executing read-only requests from
	// all connections. 0 means DefaultWorkers.
	Workers int
	// IdleTimeout disconnects a client that sends nothing for this
	// long, so dead connections cannot pin pooled buffers and
	// goroutines forever. 0 disables the timeout.
	IdleTimeout time.Duration
	// Clock stamps request arrivals for queue-expiry checks and the
	// request-latency histogram. Nil means the shared wall clock.
	Clock simtime.Clock
}

func (c Config) withDefaults() Config {
	if c.PipelineDepth <= 0 {
		c.PipelineDepth = DefaultPipelineDepth
	}
	if c.Workers <= 0 {
		c.Workers = DefaultWorkers
	}
	if c.Clock == nil {
		c.Clock = simtime.Wall
	}
	return c
}

// Server serves the client protocol over a DB node.
type Server struct {
	db    *rodain.DB
	cfg   Config
	clock simtime.Clock

	mu        sync.Mutex
	listeners []net.Listener
	conns     map[net.Conn]struct{}
	closed    bool
	wg        sync.WaitGroup

	work        chan *request
	workersOnce sync.Once
	workerWG    sync.WaitGroup

	readers sync.Pool // *bufio.Reader
	writers sync.Pool // *bufio.Writer

	// Front-end measurements, reported by STATS.
	depthDist    metrics.IntDist   // reply-ring occupancy at enqueue
	reqLat       metrics.Histogram // parse → response-written latency
	sockOverload atomic.Uint64     // MISS overload answered at the socket
	sockExpired  atomic.Uint64     // MISS deadline answered on dequeue
}

// NewServer returns a server over db with default front-end settings.
func NewServer(db *rodain.DB) *Server { return NewServerConfig(db, Config{}) }

// NewServerConfig returns a server over db with explicit front-end
// settings (pipeline window, worker pool, idle timeout).
func NewServerConfig(db *rodain.DB, cfg Config) *Server {
	cfg = cfg.withDefaults()
	return &Server{
		db:    db,
		cfg:   cfg,
		clock: cfg.Clock,
		conns: make(map[net.Conn]struct{}),
		readers: sync.Pool{New: func() any {
			return bufio.NewReaderSize(nil, 1<<16)
		}},
		writers: sync.Pool{New: func() any {
			return bufio.NewWriterSize(nil, 1<<16)
		}},
	}
}

// Listen starts accepting clients on addr and returns the bound
// address. It fails on a server that has been closed.
func (s *Server) Listen(addr string) (string, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return "", errors.New("service: server closed")
	}
	s.mu.Unlock()
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	if s.closed {
		// Closed while binding: don't leak the listener or start an
		// accept loop on a dead server.
		s.mu.Unlock()
		l.Close()
		return "", errors.New("service: server closed")
	}
	s.listeners = append(s.listeners, l)
	s.mu.Unlock()
	s.workersOnce.Do(func() {
		s.work = make(chan *request)
		for i := 0; i < s.cfg.Workers; i++ {
			s.workerWG.Add(1)
			go s.worker()
		}
	})
	s.wg.Add(1)
	go s.acceptLoop(l)
	return l.Addr().String(), nil
}

func (s *Server) acceptLoop(l net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serve(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// Close stops the listeners, disconnects clients and shuts the worker
// pool down. Safe to call more than once.
func (s *Server) Close() error {
	s.mu.Lock()
	already := s.closed
	s.closed = true
	ls := s.listeners
	s.listeners = nil
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	var err error
	for _, l := range ls {
		if cerr := l.Close(); err == nil {
			err = cerr
		}
	}
	s.wg.Wait()
	if !already && s.work != nil {
		close(s.work)
	}
	s.workerWG.Wait()
	return err
}

// session holds per-connection transaction settings.
type session struct {
	deadline time.Duration
	class    rodain.Class
}

// overloadedAtSocket consults the overload manager before any work is
// queued: at the limit, an arriving request is answered MISS overload
// straight from the reader, consuming no pipeline slot downstream.
func (s *Server) overloadedAtSocket() bool {
	if !s.db.Overloaded() {
		return false
	}
	s.sockOverload.Add(1)
	return true
}

// view runs fn declared read-only: GET/TRANSLATE/BALANCE lookups ride
// the snapshot fast path (lock-free reads, no conflict registration,
// commit without a log record).
func (s *Server) view(req *request, deadline time.Duration, fn func(*rodain.Tx) error) error {
	return s.db.ExecReadOnly(req.class, deadline, 0, fn)
}

// update runs fn with the request's class and remaining deadline.
func (s *Server) update(req *request, deadline time.Duration, fn func(*rodain.Tx) error) error {
	return s.db.Exec(req.class, deadline, 0, fn)
}

// remainingDeadline converts the request's parse-time deadline tag into
// the budget left at execution time. Firm requests whose budget is gone
// report expired=true and are MISSed without executing; soft requests
// keep a token budget so the engine still counts them late.
func (s *Server) remainingDeadline(req *request) (d time.Duration, expired bool) {
	if req.class == rodain.NonRealTime || req.deadline <= 0 {
		return req.deadline, false
	}
	left := req.deadline - time.Duration(s.clock.Now().Sub(req.arrival))
	if left > 0 {
		return left, false
	}
	if req.class == rodain.Firm {
		return 0, true
	}
	return time.Nanosecond, false
}

// exec executes one validated, non-session request and appends its
// response line to resp. It runs on a pool worker for read-only
// commands and inline on the connection reader for updates.
func (s *Server) exec(req *request, resp []byte) []byte {
	deadline := req.deadline
	if isTxnCmd(req.cmd) {
		var expired bool
		if deadline, expired = s.remainingDeadline(req); expired {
			// Tagged deadline already passed while queued: answer the
			// miss on dequeue without consuming execution time.
			s.sockExpired.Add(1)
			return append(resp, "MISS deadline"...)
		}
	}
	switch req.cmd {
	case cmdGet:
		id, ok := parseUintBytes(req.args[0])
		if !ok {
			return appendBadID(resp, req.args[0])
		}
		var value []byte
		err := s.view(req, deadline, func(tx *rodain.Tx) error {
			v, err := tx.Read(rodain.ObjectID(id))
			value = v
			return err
		})
		if err != nil {
			return appendClassified(resp, err)
		}
		resp = append(resp, "OK "...)
		return strconv.AppendQuote(resp, string(value))

	case cmdSet:
		id, ok := parseUintBytes(req.args[0])
		if !ok {
			return appendBadID(resp, req.args[0])
		}
		value, err := strconv.Unquote(string(req.args[1]))
		if err != nil {
			value = string(req.args[1]) // allow bare words
		}
		err = s.update(req, deadline, func(tx *rodain.Tx) error {
			if _, err := tx.ReadView(rodain.ObjectID(id)); err != nil { // existence check only
				return err
			}
			return tx.Write(rodain.ObjectID(id), []byte(value))
		})
		if err != nil {
			return appendClassified(resp, err)
		}
		return append(resp, "OK"...)

	case cmdDel:
		id, ok := parseUintBytes(req.args[0])
		if !ok {
			return appendBadID(resp, req.args[0])
		}
		err := s.update(req, deadline, func(tx *rodain.Tx) error {
			if _, err := tx.ReadView(rodain.ObjectID(id)); err != nil { // existence check only
				return err
			}
			return tx.Delete(rodain.ObjectID(id))
		})
		if err != nil {
			return appendClassified(resp, err)
		}
		return append(resp, "OK"...)

	case cmdTranslate:
		id, err := telecom.NumberToID(string(req.args[0]))
		if err != nil {
			return appendErr(resp, err)
		}
		var entry *telecom.Entry
		err = s.view(req, deadline, func(tx *rodain.Tx) error {
			e, err := telecom.Translate(func(id rodain.ObjectID) ([]byte, bool) {
				// Translate decodes and discards, so the zero-copy
				// borrowed read is safe.
				v, rerr := tx.ReadView(id)
				return v, rerr == nil
			}, id)
			entry = e
			return err
		})
		if err != nil {
			return appendClassified(resp, err)
		}
		return fmt.Appendf(resp, "OK %s v%d", entry.Routed, entry.Version)

	case cmdReroute:
		id, err := telecom.NumberToID(string(req.args[0]))
		if err != nil {
			return appendErr(resp, err)
		}
		dest := string(req.args[1])
		err = s.update(req, deadline, func(tx *rodain.Tx) error {
			v, err := tx.ReadView(id) // decoded below before any write is staged
			if err != nil {
				return err
			}
			old, err := telecom.Decode(v)
			if err != nil {
				return err
			}
			return tx.Write(id, telecom.Encode(telecom.Reroute(old, dest)))
		})
		if err != nil {
			return appendClassified(resp, err)
		}
		return append(resp, "OK"...)

	case cmdBalance:
		idx, ok := parseIntBytes(req.args[0])
		if !ok || idx < 0 {
			return append(resp, "ERR bad subscriber index"...)
		}
		var balance int64
		var prepaid bool
		err := s.view(req, deadline, func(tx *rodain.Tx) error {
			enc, err := tx.ReadView(telecom.SubscriberID(int(idx)))
			if err != nil {
				return err
			}
			o, err := telecom.Subscriber.Decode(enc)
			if err != nil {
				return err
			}
			balance, _ = o.Int("balanceCents")
			prepaid, _ = o.Bool("prepaid")
			return nil
		})
		if err != nil {
			return appendClassified(resp, err)
		}
		kind := "postpaid"
		if prepaid {
			kind = "prepaid"
		}
		return fmt.Appendf(resp, "OK %d %s", balance, kind)

	case cmdCharge, cmdTopup:
		idx, ok := parseIntBytes(req.args[0])
		if !ok || idx < 0 {
			return append(resp, "ERR bad subscriber index"...)
		}
		cents, ok := parseIntBytes(req.args[1])
		if !ok {
			return append(resp, "ERR bad amount"...)
		}
		charge := req.cmd == cmdCharge
		err := s.update(req, deadline, func(tx *rodain.Tx) error {
			id := telecom.SubscriberID(int(idx))
			enc, err := tx.ReadView(id) // consumed by Charge/TopUp before the write
			if err != nil {
				return err
			}
			var next []byte
			if charge {
				next, err = telecom.Charge(enc, cents)
			} else {
				next, err = telecom.TopUp(enc, cents)
			}
			if err != nil {
				return err
			}
			return tx.Write(id, next)
		})
		if err != nil {
			return appendClassified(resp, err)
		}
		return append(resp, "OK"...)

	case cmdStats:
		st := s.db.Stats()
		lat := s.reqLat.Summary()
		return fmt.Appendf(resp,
			"OK mode=%s log=%s submitted=%d committed=%d missed=%d miss=%.4f resp=%v cwait=%v pdepth=%.1f/%d reqp50=%v reqp95=%v sockmiss=%d",
			st.Mode, st.LogMode, st.Outcome.Submitted, st.Outcome.Committed,
			st.Outcome.Missed, st.MissRatio, st.MeanResponse, st.MeanCommitWait,
			s.depthDist.Mean(), s.depthDist.Max(), lat.P50, lat.P95,
			s.sockOverload.Load()+s.sockExpired.Load())
	}
	return appendUnknown(resp, req.cmdTok) // unreachable: the reader filters
}

// handleSession applies a session-mutating command (DEADLINE, CLASS) to
// sess and appends the response. It runs on the connection reader,
// after the pipeline barrier.
func handleSession(req *request, sess *session, resp []byte) []byte {
	if cmdArgc[req.cmd] >= 0 && req.nargs != cmdArgc[req.cmd] {
		return appendUsage(resp, req.cmd)
	}
	switch req.cmd {
	case cmdDeadline:
		ms, ok := parseIntBytes(req.args[0])
		if !ok || ms <= 0 {
			return append(resp, "ERR bad deadline"...)
		}
		sess.deadline = time.Duration(ms) * time.Millisecond
		return append(resp, "OK"...)
	case cmdClass:
		arg := req.args[0]
		switch {
		case eqFold(arg, "FIRM"):
			sess.class = rodain.Firm
		case eqFold(arg, "SOFT"):
			sess.class = rodain.Soft
		case eqFold(arg, "NONRT"):
			sess.class = rodain.NonRealTime
		default:
			resp = append(resp, "ERR unknown class "...)
			return append(resp, arg...)
		}
		return append(resp, "OK"...)
	}
	return resp
}

// --- response builders -------------------------------------------------------

func appendUsage(resp []byte, c command) []byte {
	resp = append(resp, "ERR usage: "...)
	return append(resp, cmdUsage[c]...)
}

func appendUnknown(resp, cmdTok []byte) []byte {
	resp = append(resp, "ERR unknown command "...)
	for _, c := range cmdTok {
		if 'a' <= c && c <= 'z' {
			c -= 'a' - 'A'
		}
		resp = append(resp, c)
	}
	return resp
}

func appendBadID(resp, tok []byte) []byte {
	resp = append(resp, "ERR bad object id "...)
	return strconv.AppendQuote(resp, string(tok))
}

func appendErr(resp []byte, err error) []byte {
	resp = append(resp, "ERR "...)
	return append(resp, err.Error()...)
}

// appendClassified maps real-time aborts to MISS responses so clients
// can count them; everything else is an ERR.
func appendClassified(resp []byte, err error) []byte {
	return append(resp, classify(err)...)
}

// classify maps real-time aborts to MISS responses so clients can count
// them; everything else is an ERR.
func classify(err error) string {
	switch {
	case errors.Is(err, rodain.ErrDeadline):
		return "MISS deadline"
	case errors.Is(err, rodain.ErrOverload):
		return "MISS overload"
	case errors.Is(err, rodain.ErrConflict):
		return "MISS conflict"
	case errors.Is(err, rodain.ErrNotServing), errors.Is(err, rodain.ErrClosed):
		return "ERR not-serving"
	default:
		return "ERR " + err.Error()
	}
}

// Client is a protocol client.
type Client struct {
	conn net.Conn
	r    *bufio.Scanner
	w    *bufio.Writer
	mu   sync.Mutex
}

// Dial connects to a node's service port.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	return &Client{conn: conn, r: sc, w: bufio.NewWriter(conn)}, nil
}

// Do sends one request line and returns the response line.
func (c *Client) Do(line string) (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, err := fmt.Fprintln(c.w, line); err != nil {
		return "", err
	}
	if err := c.w.Flush(); err != nil {
		return "", err
	}
	return c.readLocked()
}

// Pipeline sends every line keeping up to depth requests in flight
// (closed loop) and returns the responses in request order. depth < 1
// is treated as 1, which degenerates to serial Do calls.
func (c *Client) Pipeline(lines []string, depth int) ([]string, error) {
	if depth < 1 {
		depth = 1
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	resps := make([]string, 0, len(lines))
	sent := 0
	for len(resps) < len(lines) {
		for sent < len(lines) && sent-len(resps) < depth {
			if _, err := fmt.Fprintln(c.w, lines[sent]); err != nil {
				return resps, err
			}
			sent++
		}
		if err := c.w.Flush(); err != nil {
			return resps, err
		}
		resp, err := c.readLocked()
		if err != nil {
			return resps, err
		}
		resps = append(resps, resp)
	}
	return resps, nil
}

func (c *Client) readLocked() (string, error) {
	if !c.r.Scan() {
		if err := c.r.Err(); err != nil {
			return "", err
		}
		return "", fmt.Errorf("service: connection closed")
	}
	return c.r.Text(), nil
}

// Miss reports whether a response line is a real-time miss.
func Miss(resp string) bool { return len(resp) >= 4 && resp[:4] == "MISS" }

// OK reports whether a response line is a success.
func OK(resp string) bool { return len(resp) >= 2 && resp[:2] == "OK" }

// Close disconnects.
func (c *Client) Close() error { return c.conn.Close() }
