// Package service is the interface process of a RODAIN node: a
// line-based TCP protocol through which clients submit transactions
// (the prototype's requests arrived through exactly such a front end).
//
// Protocol (one request per line, space-separated, values are Go-quoted
// strings):
//
//	DEADLINE <ms>                 set this connection's deadline
//	CLASS firm|soft|nonrt         set this connection's criticality class
//	GET <id>                      read-only transaction
//	SET <id> <value>              update transaction (read + write)
//	DEL <id>                      delete transaction
//	TRANSLATE <number>            number-translation service provision
//	REROUTE <number> <dest>       update service provision
//	BALANCE <subscriber>          read a subscriber profile's balance
//	CHARGE <subscriber> <cents>   debit a call charge (balance-checked)
//	TOPUP <subscriber> <cents>    credit a subscriber
//	STATS                         node statistics
//	QUIT
//
// Responses: "OK ...", "ERR <reason>", or "MISS <reason>" for real-time
// aborts (deadline, overload, conflict) — the client counts those
// toward the miss ratio.
package service

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	rodain "repro"
	"repro/internal/telecom"
)

// Server serves the client protocol over a DB node.
type Server struct {
	db *rodain.DB

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup
}

// NewServer returns a server over db.
func NewServer(db *rodain.DB) *Server {
	return &Server{db: db, conns: make(map[net.Conn]struct{})}
}

// Listen starts accepting clients on addr and returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	s.listener = l
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(l)
	return l.Addr().String(), nil
}

func (s *Server) acceptLoop(l net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serve(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// Close stops the listener and disconnects clients.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	l := s.listener
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	var err error
	if l != nil {
		err = l.Close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) serve(conn net.Conn) {
	defer conn.Close()
	r := bufio.NewScanner(conn)
	r.Buffer(make([]byte, 1<<16), 1<<20)
	w := bufio.NewWriter(conn)
	sess := &session{deadline: 50 * time.Millisecond, class: rodain.Firm}
	for r.Scan() {
		line := strings.TrimSpace(r.Text())
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		cmd := strings.ToUpper(fields[0])
		if cmd == "QUIT" {
			fmt.Fprintln(w, "OK bye")
			w.Flush()
			return
		}
		resp := s.handle(cmd, fields[1:], sess)
		fmt.Fprintln(w, resp)
		if err := w.Flush(); err != nil {
			return
		}
	}
}

// session holds per-connection transaction settings.
type session struct {
	deadline time.Duration
	class    rodain.Class
}

// view runs fn with the session's class and deadline, declared
// read-only: GET/TRANSLATE/BALANCE lookups ride the snapshot fast path
// (lock-free reads, no conflict registration, commit without a log
// record).
func (s *Server) view(sess *session, fn func(*rodain.Tx) error) error {
	return s.db.ExecReadOnly(sess.class, sess.deadline, 0, fn)
}

// update runs fn with the session's class and deadline.
func (s *Server) update(sess *session, fn func(*rodain.Tx) error) error {
	return s.db.Exec(sess.class, sess.deadline, 0, fn)
}

func (s *Server) handle(cmd string, args []string, sess *session) string {
	switch cmd {
	case "DEADLINE":
		if len(args) != 1 {
			return "ERR usage: DEADLINE <ms>"
		}
		ms, err := strconv.Atoi(args[0])
		if err != nil || ms <= 0 {
			return "ERR bad deadline"
		}
		sess.deadline = time.Duration(ms) * time.Millisecond
		return "OK"
	case "CLASS":
		if len(args) != 1 {
			return "ERR usage: CLASS firm|soft|nonrt"
		}
		switch strings.ToLower(args[0]) {
		case "firm":
			sess.class = rodain.Firm
		case "soft":
			sess.class = rodain.Soft
		case "nonrt":
			sess.class = rodain.NonRealTime
		default:
			return "ERR unknown class " + args[0]
		}
		return "OK"
	case "GET":
		if len(args) != 1 {
			return "ERR usage: GET <id>"
		}
		id, err := parseID(args[0])
		if err != nil {
			return "ERR " + err.Error()
		}
		var value []byte
		err = s.view(sess, func(tx *rodain.Tx) error {
			v, err := tx.Read(id)
			value = v
			return err
		})
		if err != nil {
			return classify(err)
		}
		return "OK " + strconv.Quote(string(value))
	case "SET":
		if len(args) != 2 {
			return "ERR usage: SET <id> <value>"
		}
		id, err := parseID(args[0])
		if err != nil {
			return "ERR " + err.Error()
		}
		value, err := strconv.Unquote(args[1])
		if err != nil {
			value = args[1] // allow bare words
		}
		err = s.update(sess, func(tx *rodain.Tx) error {
			if _, err := tx.ReadView(id); err != nil { // existence check only
				return err
			}
			return tx.Write(id, []byte(value))
		})
		if err != nil {
			return classify(err)
		}
		return "OK"
	case "DEL":
		if len(args) != 1 {
			return "ERR usage: DEL <id>"
		}
		id, err := parseID(args[0])
		if err != nil {
			return "ERR " + err.Error()
		}
		err = s.update(sess, func(tx *rodain.Tx) error {
			if _, err := tx.ReadView(id); err != nil { // existence check only
				return err
			}
			return tx.Delete(id)
		})
		if err != nil {
			return classify(err)
		}
		return "OK"
	case "TRANSLATE":
		if len(args) != 1 {
			return "ERR usage: TRANSLATE <number>"
		}
		id, err := telecom.NumberToID(args[0])
		if err != nil {
			return "ERR " + err.Error()
		}
		var entry *telecom.Entry
		err = s.view(sess, func(tx *rodain.Tx) error {
			e, err := telecom.Translate(func(id rodain.ObjectID) ([]byte, bool) {
				// Translate decodes and discards, so the zero-copy
				// borrowed read is safe.
				v, rerr := tx.ReadView(id)
				return v, rerr == nil
			}, id)
			entry = e
			return err
		})
		if err != nil {
			return classify(err)
		}
		return fmt.Sprintf("OK %s v%d", entry.Routed, entry.Version)
	case "REROUTE":
		if len(args) != 2 {
			return "ERR usage: REROUTE <number> <dest>"
		}
		id, err := telecom.NumberToID(args[0])
		if err != nil {
			return "ERR " + err.Error()
		}
		err = s.update(sess, func(tx *rodain.Tx) error {
			v, err := tx.ReadView(id) // decoded below before any write is staged
			if err != nil {
				return err
			}
			old, err := telecom.Decode(v)
			if err != nil {
				return err
			}
			return tx.Write(id, telecom.Encode(telecom.Reroute(old, args[1])))
		})
		if err != nil {
			return classify(err)
		}
		return "OK"
	case "BALANCE":
		if len(args) != 1 {
			return "ERR usage: BALANCE <subscriber>"
		}
		idx, err := strconv.Atoi(args[0])
		if err != nil || idx < 0 {
			return "ERR bad subscriber index"
		}
		var balance int64
		var prepaid bool
		err = s.view(sess, func(tx *rodain.Tx) error {
			enc, err := tx.ReadView(telecom.SubscriberID(idx))
			if err != nil {
				return err
			}
			o, err := telecom.Subscriber.Decode(enc)
			if err != nil {
				return err
			}
			balance, _ = o.Int("balanceCents")
			prepaid, _ = o.Bool("prepaid")
			return nil
		})
		if err != nil {
			return classify(err)
		}
		kind := "postpaid"
		if prepaid {
			kind = "prepaid"
		}
		return fmt.Sprintf("OK %d %s", balance, kind)
	case "CHARGE", "TOPUP":
		if len(args) != 2 {
			return "ERR usage: " + cmd + " <subscriber> <cents>"
		}
		idx, err := strconv.Atoi(args[0])
		if err != nil || idx < 0 {
			return "ERR bad subscriber index"
		}
		cents, err := strconv.ParseInt(args[1], 10, 64)
		if err != nil {
			return "ERR bad amount"
		}
		err = s.update(sess, func(tx *rodain.Tx) error {
			id := telecom.SubscriberID(idx)
			enc, err := tx.ReadView(id) // consumed by Charge/TopUp before the write
			if err != nil {
				return err
			}
			var next []byte
			if cmd == "CHARGE" {
				next, err = telecom.Charge(enc, cents)
			} else {
				next, err = telecom.TopUp(enc, cents)
			}
			if err != nil {
				return err
			}
			return tx.Write(id, next)
		})
		if err != nil {
			return classify(err)
		}
		return "OK"
	case "STATS":
		st := s.db.Stats()
		return fmt.Sprintf("OK mode=%s log=%s submitted=%d committed=%d missed=%d miss=%.4f resp=%v cwait=%v",
			st.Mode, st.LogMode, st.Outcome.Submitted, st.Outcome.Committed,
			st.Outcome.Missed, st.MissRatio, st.MeanResponse, st.MeanCommitWait)
	default:
		return "ERR unknown command " + cmd
	}
}

func parseID(s string) (rodain.ObjectID, error) {
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad object id %q", s)
	}
	return rodain.ObjectID(v), nil
}

// classify maps real-time aborts to MISS responses so clients can count
// them; everything else is an ERR.
func classify(err error) string {
	switch {
	case errors.Is(err, rodain.ErrDeadline):
		return "MISS deadline"
	case errors.Is(err, rodain.ErrOverload):
		return "MISS overload"
	case errors.Is(err, rodain.ErrConflict):
		return "MISS conflict"
	case errors.Is(err, rodain.ErrNotServing), errors.Is(err, rodain.ErrClosed):
		return "ERR not-serving"
	default:
		return "ERR " + err.Error()
	}
}

// Client is a protocol client.
type Client struct {
	conn net.Conn
	r    *bufio.Scanner
	w    *bufio.Writer
	mu   sync.Mutex
}

// Dial connects to a node's service port.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	return &Client{conn: conn, r: sc, w: bufio.NewWriter(conn)}, nil
}

// Do sends one request line and returns the response line.
func (c *Client) Do(line string) (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, err := fmt.Fprintln(c.w, line); err != nil {
		return "", err
	}
	if err := c.w.Flush(); err != nil {
		return "", err
	}
	if !c.r.Scan() {
		if err := c.r.Err(); err != nil {
			return "", err
		}
		return "", fmt.Errorf("service: connection closed")
	}
	return c.r.Text(), nil
}

// Miss reports whether a response line is a real-time miss.
func Miss(resp string) bool { return strings.HasPrefix(resp, "MISS") }

// OK reports whether a response line is a success.
func OK(resp string) bool { return strings.HasPrefix(resp, "OK") }

// Close disconnects.
func (c *Client) Close() error { return c.conn.Close() }
