package service

import (
	"strings"
	"sync"
	"testing"
	"time"

	rodain "repro"
	"repro/internal/telecom"
)

func startServer(t *testing.T) (*Server, *Client, *rodain.DB) {
	t.Helper()
	db, err := rodain.Open(rodain.Options{Durability: rodain.DurNone, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		db.Load(rodain.ObjectID(i), telecom.Encode(&telecom.Entry{
			Routed: "+358500000001", Active: true, Version: 1, Weight: 1,
		}))
	}
	srv := NewServer(db)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		c.Close()
		srv.Close()
		db.Close()
	})
	return srv, c, db
}

func do(t *testing.T, c *Client, line string) string {
	t.Helper()
	resp, err := c.Do(line)
	if err != nil {
		t.Fatalf("%q: %v", line, err)
	}
	return resp
}

func TestGetSet(t *testing.T) {
	_, c, _ := startServer(t)
	if resp := do(t, c, `SET 5 "hello"`); resp != "OK" {
		t.Fatalf("SET: %q", resp)
	}
	resp := do(t, c, "GET 5")
	if resp != `OK "hello"` {
		t.Fatalf("GET: %q", resp)
	}
}

func TestTranslateAndReroute(t *testing.T) {
	_, c, _ := startServer(t)
	resp := do(t, c, "TRANSLATE 42")
	if !OK(resp) || !strings.Contains(resp, "+358500000001 v1") {
		t.Fatalf("TRANSLATE: %q", resp)
	}
	if resp := do(t, c, "REROUTE 42 +358409999999"); resp != "OK" {
		t.Fatalf("REROUTE: %q", resp)
	}
	resp = do(t, c, "TRANSLATE 42")
	if !strings.Contains(resp, "+358409999999 v2") {
		t.Fatalf("after reroute: %q", resp)
	}
}

func TestDeadlineCommand(t *testing.T) {
	_, c, _ := startServer(t)
	if resp := do(t, c, "DEADLINE 200"); resp != "OK" {
		t.Fatalf("DEADLINE: %q", resp)
	}
	for _, bad := range []string{"DEADLINE", "DEADLINE x", "DEADLINE -1"} {
		if resp := do(t, c, bad); !strings.HasPrefix(resp, "ERR") {
			t.Fatalf("%q accepted: %q", bad, resp)
		}
	}
}

func TestErrors(t *testing.T) {
	_, c, _ := startServer(t)
	cases := []string{
		"GET", "GET x", "GET 9999",
		"SET", "SET x v",
		"TRANSLATE", "TRANSLATE 80o0",
		"REROUTE 1", "REROUTE x y",
		"FROB 1",
	}
	for _, line := range cases {
		resp := do(t, c, line)
		if OK(resp) {
			t.Fatalf("%q unexpectedly ok: %q", line, resp)
		}
	}
}

func TestStats(t *testing.T) {
	_, c, _ := startServer(t)
	do(t, c, "GET 1")
	resp := do(t, c, "STATS")
	if !OK(resp) || !strings.Contains(resp, "committed=") {
		t.Fatalf("STATS: %q", resp)
	}
}

func TestQuit(t *testing.T) {
	_, c, _ := startServer(t)
	resp := do(t, c, "QUIT")
	if !OK(resp) {
		t.Fatalf("QUIT: %q", resp)
	}
	if _, err := c.Do("GET 1"); err == nil {
		t.Fatal("connection still alive after QUIT")
	}
}

func TestConcurrentClients(t *testing.T) {
	srv, _, db := startServer(t)
	_ = db
	addr := srv.listeners[0].Addr().String()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := Dial(addr, time.Second)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for i := 0; i < 50; i++ {
				resp, err := c.Do("GET 7")
				if err != nil || !OK(resp) {
					t.Errorf("client %d: %q %v", g, resp, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestMissClassification(t *testing.T) {
	if !Miss("MISS deadline") || Miss("OK") || Miss("ERR x") {
		t.Fatal("Miss misclassifies")
	}
	if !OK("OK v") || OK("MISS x") {
		t.Fatal("OK misclassifies")
	}
}

func TestClassCommand(t *testing.T) {
	_, c, _ := startServer(t)
	for _, class := range []string{"firm", "soft", "nonrt", "FIRM"} {
		if resp := do(t, c, "CLASS "+class); resp != "OK" {
			t.Fatalf("CLASS %s: %q", class, resp)
		}
		if resp := do(t, c, "GET 1"); !OK(resp) {
			t.Fatalf("GET under class %s: %q", class, resp)
		}
	}
	for _, bad := range []string{"CLASS", "CLASS bogus"} {
		if resp := do(t, c, bad); !strings.HasPrefix(resp, "ERR") {
			t.Fatalf("%q accepted: %q", bad, resp)
		}
	}
}

func TestDelCommand(t *testing.T) {
	_, c, _ := startServer(t)
	if resp := do(t, c, `SET 9 "gone-soon"`); resp != "OK" {
		t.Fatalf("SET: %q", resp)
	}
	if resp := do(t, c, "DEL 9"); resp != "OK" {
		t.Fatalf("DEL: %q", resp)
	}
	if resp := do(t, c, "GET 9"); OK(resp) {
		t.Fatalf("GET after DEL: %q", resp)
	}
	for _, bad := range []string{"DEL", "DEL x", "DEL 99999"} {
		if resp := do(t, c, bad); OK(resp) {
			t.Fatalf("%q accepted", bad)
		}
	}
}

func TestBillingCommands(t *testing.T) {
	_, c, db := startServer(t)
	// Provision subscriber 0 (prepaid, 1000 cents).
	db.Load(telecom.SubscriberID(0), telecom.NewSubscriber("+3585", "A", true, 1000).Encode())

	if resp := do(t, c, "BALANCE 0"); resp != "OK 1000 prepaid" {
		t.Fatalf("BALANCE: %q", resp)
	}
	if resp := do(t, c, "CHARGE 0 300"); resp != "OK" {
		t.Fatalf("CHARGE: %q", resp)
	}
	if resp := do(t, c, "TOPUP 0 50"); resp != "OK" {
		t.Fatalf("TOPUP: %q", resp)
	}
	if resp := do(t, c, "BALANCE 0"); resp != "OK 750 prepaid" {
		t.Fatalf("BALANCE after: %q", resp)
	}
	// Overdraw is a business error, not a miss.
	resp := do(t, c, "CHARGE 0 9999")
	if OK(resp) || Miss(resp) {
		t.Fatalf("overdraw: %q", resp)
	}
	for _, bad := range []string{"CHARGE", "CHARGE x 1", "CHARGE 0 x", "CHARGE -1 5",
		"TOPUP 0", "BALANCE", "BALANCE x", "BALANCE 99999"} {
		if resp := do(t, c, bad); OK(resp) {
			t.Fatalf("%q accepted", bad)
		}
	}
}
