package service

import "math"

// The request tokenizer: a zero-allocation replacement for the old
// Scanner.Text() + strings.Fields front end. A request line is copied
// once into the pooled request's own buffer and split in place; the
// command word is matched case-insensitively against the fixed command
// set without building a string, and argument tokens stay byte slices
// into that buffer until the moment a handler actually needs a string.
// Steady state, parsing a GET/TRANSLATE/BALANCE line performs zero heap
// allocations (see BenchmarkTokenize).

// command identifies one protocol verb.
type command uint8

const (
	cmdUnknown command = iota
	cmdDeadline
	cmdClass
	cmdGet
	cmdSet
	cmdDel
	cmdTranslate
	cmdReroute
	cmdBalance
	cmdCharge
	cmdTopup
	cmdStats
	cmdQuit
	commandCount
)

// maxArgs is the largest argument count any command takes; tokens past
// it are counted (for usage errors) but not retained.
const maxArgs = 3

// cmdName is the canonical (upper-case) verb, used in usage errors.
var cmdName = [commandCount]string{
	cmdUnknown:   "?",
	cmdDeadline:  "DEADLINE",
	cmdClass:     "CLASS",
	cmdGet:       "GET",
	cmdSet:       "SET",
	cmdDel:       "DEL",
	cmdTranslate: "TRANSLATE",
	cmdReroute:   "REROUTE",
	cmdBalance:   "BALANCE",
	cmdCharge:    "CHARGE",
	cmdTopup:     "TOPUP",
	cmdStats:     "STATS",
	cmdQuit:      "QUIT",
}

// cmdArgc is the exact argument count each command requires; -1 means
// arguments are ignored (STATS and QUIT historically accept anything).
var cmdArgc = [commandCount]int{
	cmdUnknown:   -1,
	cmdDeadline:  1,
	cmdClass:     1,
	cmdGet:       1,
	cmdSet:       2,
	cmdDel:       1,
	cmdTranslate: 1,
	cmdReroute:   2,
	cmdBalance:   1,
	cmdCharge:    2,
	cmdTopup:     2,
	cmdStats:     -1,
	cmdQuit:      -1,
}

// cmdUsage is the usage string answered on an argument-count mismatch.
var cmdUsage = [commandCount]string{
	cmdDeadline:  "DEADLINE <ms>",
	cmdClass:     "CLASS firm|soft|nonrt",
	cmdGet:       "GET <id>",
	cmdSet:       "SET <id> <value>",
	cmdDel:       "DEL <id>",
	cmdTranslate: "TRANSLATE <number>",
	cmdReroute:   "REROUTE <number> <dest>",
	cmdBalance:   "BALANCE <subscriber>",
	cmdCharge:    "CHARGE <subscriber> <cents>",
	cmdTopup:     "TOPUP <subscriber> <cents>",
}

// isSessionCmd reports whether cmd mutates per-connection session state
// and therefore acts as a pipeline barrier (DESIGN.md §8).
func isSessionCmd(c command) bool {
	return c == cmdDeadline || c == cmdClass || c == cmdQuit
}

// isWriteCmd reports whether cmd runs an update transaction. Updates
// are execution ordering points within a connection: they wait for the
// in-flight window to drain and run before anything later, so a
// pipeline keeps read-your-writes semantics.
func isWriteCmd(c command) bool {
	switch c {
	case cmdSet, cmdDel, cmdReroute, cmdCharge, cmdTopup:
		return true
	}
	return false
}

// isTxnCmd reports whether cmd submits a transaction to the engine (and
// is therefore subject to socket admission and deadline expiry).
func isTxnCmd(c command) bool {
	switch c {
	case cmdGet, cmdSet, cmdDel, cmdTranslate, cmdReroute, cmdBalance, cmdCharge, cmdTopup:
		return true
	}
	return false
}

func isFieldSep(c byte) bool { return c == ' ' || c == '\t' || c == '\r' }

// nextToken skips leading separators and returns the first token of b
// and the remainder after it.
func nextToken(b []byte) (tok, rest []byte) {
	i := 0
	for i < len(b) && isFieldSep(b[i]) {
		i++
	}
	j := i
	for j < len(b) && !isFieldSep(b[j]) {
		j++
	}
	return b[i:j], b[j:]
}

// eqFold reports whether tok equals upper under ASCII case folding.
// upper must be an upper-case ASCII string.
func eqFold(tok []byte, upper string) bool {
	if len(tok) != len(upper) {
		return false
	}
	for i := 0; i < len(tok); i++ {
		c := tok[i]
		if 'a' <= c && c <= 'z' {
			c -= 'a' - 'A'
		}
		if c != upper[i] {
			return false
		}
	}
	return true
}

// matchCommand maps a verb token to its command, case-insensitively,
// without allocating.
func matchCommand(tok []byte) command {
	if len(tok) == 0 {
		return cmdUnknown
	}
	c0 := tok[0]
	if 'a' <= c0 && c0 <= 'z' {
		c0 -= 'a' - 'A'
	}
	switch c0 {
	case 'B':
		if eqFold(tok, "BALANCE") {
			return cmdBalance
		}
	case 'C':
		if eqFold(tok, "CLASS") {
			return cmdClass
		}
		if eqFold(tok, "CHARGE") {
			return cmdCharge
		}
	case 'D':
		if eqFold(tok, "DEL") {
			return cmdDel
		}
		if eqFold(tok, "DEADLINE") {
			return cmdDeadline
		}
	case 'G':
		if eqFold(tok, "GET") {
			return cmdGet
		}
	case 'Q':
		if eqFold(tok, "QUIT") {
			return cmdQuit
		}
	case 'R':
		if eqFold(tok, "REROUTE") {
			return cmdReroute
		}
	case 'S':
		if eqFold(tok, "SET") {
			return cmdSet
		}
		if eqFold(tok, "STATS") {
			return cmdStats
		}
	case 'T':
		if eqFold(tok, "TRANSLATE") {
			return cmdTranslate
		}
		if eqFold(tok, "TOPUP") {
			return cmdTopup
		}
	}
	return cmdUnknown
}

// tokenize parses one request line (already copied into req.buf, no
// trailing newline) into req.cmd, req.cmdTok, req.args and req.nargs.
// It reports false for a blank line. It never allocates: every token is
// a sub-slice of req.buf.
func (req *request) tokenize() bool {
	b := req.buf
	tok, rest := nextToken(b)
	if len(tok) == 0 {
		return false
	}
	req.cmd = matchCommand(tok)
	req.cmdTok = tok
	req.nargs = 0
	for {
		tok, rest = nextToken(rest)
		if len(tok) == 0 {
			return true
		}
		if req.nargs < maxArgs {
			req.args[req.nargs] = tok
		}
		req.nargs++
	}
}

// parseUintBytes is strconv.ParseUint(string(b), 10, 64) without the
// string: digits only, no sign, overflow rejected.
func parseUintBytes(b []byte) (uint64, bool) {
	if len(b) == 0 {
		return 0, false
	}
	var n uint64
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, false
		}
		d := uint64(c - '0')
		if n > (math.MaxUint64-d)/10 {
			return 0, false
		}
		n = n*10 + d
	}
	return n, true
}

// parseIntBytes is strconv.ParseInt(string(b), 10, 64) without the
// string. The single value it rejects that strconv accepts is
// math.MinInt64, which no protocol field comes near.
func parseIntBytes(b []byte) (int64, bool) {
	if len(b) == 0 {
		return 0, false
	}
	neg := false
	i := 0
	if b[0] == '+' || b[0] == '-' {
		neg = b[0] == '-'
		i++
	}
	if i == len(b) {
		return 0, false
	}
	var n uint64
	for ; i < len(b); i++ {
		c := b[i]
		if c < '0' || c > '9' {
			return 0, false
		}
		d := uint64(c - '0')
		if n > (math.MaxInt64-d)/10 {
			return 0, false
		}
		n = n*10 + d
	}
	if neg {
		return -int64(n), true
	}
	return int64(n), true
}
