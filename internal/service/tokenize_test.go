package service

import (
	"bytes"
	"math"
	"strconv"
	"testing"
)

// refFields is the reference splitter tokenize must agree with: the
// old strings.Fields behaviour restricted to the protocol's separator
// set (space, tab, carriage return).
func refFields(line []byte) [][]byte {
	var out [][]byte
	cur := -1
	for i := 0; i <= len(line); i++ {
		sep := i == len(line) || isFieldSep(line[i])
		switch {
		case !sep && cur < 0:
			cur = i
		case sep && cur >= 0:
			out = append(out, line[cur:i])
			cur = -1
		}
	}
	return out
}

func TestTokenizeGolden(t *testing.T) {
	cases := []struct {
		line  string
		cmd   command
		nargs int
		args  []string
	}{
		{"GET 5", cmdGet, 1, []string{"5"}},
		{"get 5", cmdGet, 1, []string{"5"}},
		{"  GET\t5\r", cmdGet, 1, []string{"5"}},
		{`SET 5 "hello"`, cmdSet, 2, []string{"5", `"hello"`}},
		{"TRANSLATE 0401234567", cmdTranslate, 1, []string{"0401234567"}},
		{"BALANCE 17", cmdBalance, 1, []string{"17"}},
		{"charge 0 300", cmdCharge, 2, []string{"0", "300"}},
		{"TOPUP 0 50", cmdTopup, 2, []string{"0", "50"}},
		{"DeadLine 200", cmdDeadline, 1, []string{"200"}},
		{"CLASS soft", cmdClass, 1, []string{"soft"}},
		{"STATS", cmdStats, 0, nil},
		{"QUIT now really", cmdQuit, 2, []string{"now", "really"}},
		{"DEL 9", cmdDel, 1, []string{"9"}},
		{"REROUTE 42 +358", cmdReroute, 2, []string{"42", "+358"}},
		{"FROB 1", cmdUnknown, 1, []string{"1"}},
		{"GETT 1", cmdUnknown, 1, []string{"1"}},
		{"SET a b c d e", cmdSet, 5, []string{"a", "b", "c"}},
	}
	for _, tc := range cases {
		req := getRequest()
		req.buf = append(req.buf[:0], tc.line...)
		if !req.tokenize() {
			t.Fatalf("%q: tokenize reported blank", tc.line)
		}
		if req.cmd != tc.cmd {
			t.Errorf("%q: cmd = %v, want %v", tc.line, req.cmd, tc.cmd)
		}
		if req.nargs != tc.nargs {
			t.Errorf("%q: nargs = %d, want %d", tc.line, req.nargs, tc.nargs)
		}
		for i, want := range tc.args {
			if string(req.args[i]) != want {
				t.Errorf("%q: arg %d = %q, want %q", tc.line, i, req.args[i], want)
			}
		}
		putRequest(req)
	}
	for _, blank := range []string{"", "   ", "\t", "\r", " \t \r "} {
		req := getRequest()
		req.buf = append(req.buf[:0], blank...)
		if req.tokenize() {
			t.Errorf("%q: tokenize reported non-blank", blank)
		}
		putRequest(req)
	}
}

func TestParseBytes(t *testing.T) {
	for _, s := range []string{"0", "5", "18446744073709551615", "184467440737095516159", "x", "", "-1", "+1", "1x"} {
		got, ok := parseUintBytes([]byte(s))
		want, err := strconv.ParseUint(s, 10, 64)
		if ok != (err == nil) || (ok && got != want) {
			t.Errorf("parseUintBytes(%q) = %d,%v; strconv: %d,%v", s, got, ok, want, err)
		}
	}
	for _, s := range []string{"0", "-1", "+1", "9223372036854775807", "9223372036854775808", "x", "", "--1", "1 2"} {
		got, ok := parseIntBytes([]byte(s))
		want, err := strconv.ParseInt(s, 10, 64)
		if ok != (err == nil) || (ok && got != want) {
			t.Errorf("parseIntBytes(%q) = %d,%v; strconv: %d,%v", s, got, ok, want, err)
		}
	}
	// The single deliberate divergence: math.MinInt64 is rejected.
	if _, ok := parseIntBytes([]byte("-9223372036854775808")); ok {
		t.Error("parseIntBytes accepted MinInt64")
	}
}

// FuzzTokenize feeds arbitrary bytes to the request tokenizer: it must
// never panic, must agree with the reference splitter, and its numeric
// parsers must agree with strconv.
func FuzzTokenize(f *testing.F) {
	f.Add([]byte("GET 5"))
	f.Add([]byte(`SET 5 "hello world"`))
	f.Add([]byte("  \t\rTRANSLATE\t0401234567  "))
	f.Add([]byte("CHARGE 0 -300 extra junk here"))
	f.Add([]byte{0x00, 0xff, ' ', 0xfe})
	f.Add(bytes.Repeat([]byte("A "), 100))
	f.Add([]byte("деадлайн 5")) // non-ASCII stays one token
	f.Fuzz(func(t *testing.T, data []byte) {
		if bytes.ContainsRune(data, '\n') {
			return // a line never contains its own terminator
		}
		req := getRequest()
		defer putRequest(req)
		req.buf = append(req.buf[:0], data...)
		fields := refFields(req.buf)
		ok := req.tokenize()
		if ok != (len(fields) > 0) {
			t.Fatalf("tokenize(%q) ok=%v, reference found %d fields", data, ok, len(fields))
		}
		if !ok {
			return
		}
		if !bytes.Equal(req.cmdTok, fields[0]) {
			t.Fatalf("cmdTok = %q, want %q", req.cmdTok, fields[0])
		}
		if req.nargs != len(fields)-1 {
			t.Fatalf("nargs = %d, want %d", req.nargs, len(fields)-1)
		}
		for i := 0; i < req.nargs && i < maxArgs; i++ {
			if !bytes.Equal(req.args[i], fields[i+1]) {
				t.Fatalf("arg %d = %q, want %q", i, req.args[i], fields[i+1])
			}
		}
		if req.cmd >= commandCount {
			t.Fatalf("cmd out of range: %d", req.cmd)
		}
		if req.cmd != cmdUnknown && !eqFold(req.cmdTok, cmdName[req.cmd]) {
			t.Fatalf("cmd %v does not fold-match token %q", req.cmd, req.cmdTok)
		}
		// Numeric parsers agree with strconv on every token.
		for _, tok := range fields {
			s := string(tok)
			u, uok := parseUintBytes(tok)
			su, uerr := strconv.ParseUint(s, 10, 64)
			if uok != (uerr == nil) || (uok && u != su) {
				t.Fatalf("parseUintBytes(%q) = %d,%v; strconv %d,%v", s, u, uok, su, uerr)
			}
			i, iok := parseIntBytes(tok)
			si, ierr := strconv.ParseInt(s, 10, 64)
			if iok && (ierr != nil || i != si) {
				t.Fatalf("parseIntBytes(%q) = %d; strconv %d,%v", s, i, si, ierr)
			}
			if !iok && ierr == nil && si != math.MinInt64 {
				t.Fatalf("parseIntBytes(%q) rejected; strconv accepted %d", s, si)
			}
		}
	})
}
