// Package sim is a discrete-event simulation of a RODAIN node pair. It
// reproduces the paper's experimental study deterministically: the same
// concurrency controller (package occ), EDF ready queue and overload
// manager (package sched) and transaction model (package txn) as the
// real engine run against virtual time, with a calibrated cost model
// standing in for the prototype's 200 MHz Pentium Pro, its disk, and the
// node interconnect.
//
// The simulated primary has one CPU. Transactions are sequences of
// steps (operations, validation, commit processing), each charging the
// CPU its modeled cost; between steps the transaction re-enters the
// modified-EDF ready queue, so preemption happens at operation
// boundaries. The commit path depends on the logging mode: shipping to
// the mirror costs a message round trip through the mirror's CPU;
// transient-mode disk logging serializes commits through a disk device;
// the no-log baselines skip the wait entirely.
package sim

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/occ"
	"repro/internal/sched"
	"repro/internal/simtime"
	"repro/internal/store"
	"repro/internal/txn"
	"repro/internal/workload"
)

// CostModel holds the per-operation costs of the simulated hardware.
// Defaults are calibrated so the system saturates at 200–300
// transactions per second, the band the paper reports for its prototype.
type CostModel struct {
	// TxnOverhead is charged once per attempt (begin + bookkeeping).
	TxnOverhead time.Duration
	// PerRead is the CPU cost of one transactional read.
	PerRead time.Duration
	// PerWriteStage is the CPU cost of staging one deferred write.
	PerWriteStage time.Duration
	// Validate is the base CPU cost of atomic validation.
	Validate time.Duration
	// ApplyPerWrite is the write-phase CPU cost per updated item.
	ApplyPerWrite time.Duration
	// LogRecordBuild is the CPU cost of generating one log record
	// (writes + the commit record); zero records are built in
	// LogNone mode.
	LogRecordBuild time.Duration
	// MsgCPU is the CPU cost of sending or receiving one message.
	MsgCPU time.Duration
	// MirrorPerRecord is the mirror CPU cost of processing one record.
	MirrorPerRecord time.Duration
	// NetLatency is the one-way network latency between the nodes.
	NetLatency time.Duration
	// DiskLatency is the latency of one log flush (seek + write +
	// controller overhead); the log disk handles one flush at a time.
	DiskLatency time.Duration
	// MirrorFlushEvery is how often the mirror flushes buffered log
	// records to its disk (asynchronously).
	MirrorFlushEvery time.Duration
}

// DefaultCostModel returns the calibration described in DESIGN.md §7.
func DefaultCostModel() CostModel {
	return CostModel{
		TxnOverhead:      800 * time.Microsecond,
		PerRead:          600 * time.Microsecond,
		PerWriteStage:    300 * time.Microsecond,
		Validate:         400 * time.Microsecond,
		ApplyPerWrite:    200 * time.Microsecond,
		LogRecordBuild:   150 * time.Microsecond,
		MsgCPU:           150 * time.Microsecond,
		MirrorPerRecord:  200 * time.Microsecond,
		NetLatency:       350 * time.Microsecond,
		DiskLatency:      8 * time.Millisecond,
		MirrorFlushEvery: 20 * time.Millisecond,
	}
}

// Config parameterizes one simulation run.
type Config struct {
	Workload workload.Config
	Cost     CostModel
	// LogMode selects the commit path (see core.LogMode).
	LogMode core.LogMode
	// MirrorDisk controls whether the mirror stores logs to its disk
	// (only meaningful with LogShip).
	MirrorDisk bool
	// Protocol is the concurrency-control protocol (default OCC-DATI).
	Protocol occ.Kind
	// Overload configures the overload manager; zero uses the paper's
	// defaults (50 active transactions).
	Overload sched.OverloadConfig
	// MaxRestarts bounds per-transaction restarts (default 10).
	MaxRestarts int
	// NonRTReserve is the scheduler reservation for non-RT work.
	NonRTReserve float64
	// Trace, when non-nil, replaces the generated workload: the
	// simulator replays exactly these transactions (an off-line test
	// file loaded with workload.ReadTrace). Workload is still used for
	// the database size and value sizes.
	Trace []*workload.Spec
	// FailMirrorAt, when > 0 with LogShip, kills the mirror at this
	// virtual time: the node switches to transient mode (LogDisk) for
	// every commit that starts afterwards — the dynamic version of the
	// paper's normal-vs-transient comparison. Commits already in flight
	// complete against the mirror (it processed their records before
	// dying).
	FailMirrorAt time.Duration
}

// Result is the outcome of one run.
type Result struct {
	Outcome metrics.Snapshot
	// MissRatio is the paper's headline metric.
	MissRatio float64
	// MeanResponse and MeanCommitWait summarize latency.
	MeanResponse   time.Duration
	MeanCommitWait time.Duration
	P95Response    time.Duration
	// Commit-wait distribution detail: the predictability of the
	// commit phase is the paper's qualitative argument for the mirror.
	CommitWaitP95 time.Duration
	CommitWaitP99 time.Duration
	CommitWaitMax time.Duration
	// CPUBusy and DiskBusy are utilizations of the primary resources;
	// MirrorCPUBusy of the stand-by CPU.
	CPUBusy       float64
	DiskBusy      float64
	MirrorCPUBusy float64
	// OCC are the concurrency-control counters.
	OCC occ.Stats
	// Duration is the simulated span of the session.
	Duration time.Duration
	// MirrorBacklog is the peak count of log records buffered on the
	// mirror awaiting its disk.
	MirrorBacklog int
	// Timeline is the per-second view of the session (populated when
	// the configuration asks for it via FailMirrorAt, or always — it is
	// cheap).
	Timeline []TimelineBucket
}

// TimelineBucket is one second of the session.
type TimelineBucket struct {
	Second    int
	Committed uint64
	Missed    uint64
	// MeanCommitWait is the mean LogWait of commits completing in this
	// second.
	MeanCommitWait time.Duration
}

// resource is a FIFO-served device (disk, mirror CPU).
type resource struct {
	loop *simtime.Loop
	busy bool
	q    []work
	used simtime.Duration
	peak int
}

type work struct {
	cost simtime.Duration
	fn   func()
}

func (r *resource) enqueue(cost simtime.Duration, fn func()) {
	r.q = append(r.q, work{cost, fn})
	if len(r.q) > r.peak {
		r.peak = len(r.q)
	}
	r.dispatch()
}

func (r *resource) dispatch() {
	if r.busy || len(r.q) == 0 {
		return
	}
	w := r.q[0]
	r.q = r.q[1:]
	r.busy = true
	r.used += w.cost
	r.loop.After(w.cost, func() {
		r.busy = false
		if w.fn != nil {
			w.fn()
		}
		r.dispatch()
	})
}

type simTxn struct {
	t       *txn.Transaction
	spec    *workload.Spec
	n       int // transaction number, for after-image generation
	opIndex int // next operation; len(reads)+len(writes) → validate
	// commitStarted is when validation completed, for the LogWait
	// (commit-wait) measurement of shipped transactions.
	commitStarted simtime.Time
}

// Sim is one simulation instance.
type Sim struct {
	cfg  Config
	cost CostModel
	loop *simtime.Loop
	rng  *rand.Rand

	db       *store.Store
	ctl      *occ.Controller
	ready    *sched.Queue
	overload *sched.Overload
	outcome  *metrics.Outcome
	resp     *metrics.Histogram
	cwait    *metrics.Histogram

	cpuBusy bool
	cpuUsed simtime.Duration

	disk      *resource // primary log disk (transient mode)
	mirrorCPU *resource
	mirrorDsk *resource

	gen       *workload.Generator
	traceIdx  int
	txns      map[txn.ID]*simTxn
	nextID    txn.ID
	remaining int // transactions not yet terminal

	mirrorBuffered int // records awaiting the mirror's flush
	mirrorBacklog  int
	flushing       bool

	// effective logging mode; flips from LogShip to LogDisk at
	// FailMirrorAt.
	mode core.LogMode

	timeline []TimelineBucket
}

// New builds a simulation from cfg.
func New(cfg Config) *Sim {
	if cfg.Cost == (CostModel{}) {
		cfg.Cost = DefaultCostModel()
	}
	if cfg.MaxRestarts <= 0 {
		cfg.MaxRestarts = 10
	}
	loop := simtime.NewLoop()
	db := store.New()
	workload.Populate(db, cfg.Workload)
	s := &Sim{
		cfg:      cfg,
		cost:     cfg.Cost,
		loop:     loop,
		rng:      rand.New(rand.NewSource(cfg.Workload.Seed + 7919)),
		db:       db,
		ctl:      occ.NewController(cfg.Protocol, db),
		ready:    sched.NewQueue(cfg.NonRTReserve),
		overload: sched.NewOverload(cfg.Overload),
		outcome:  metrics.NewOutcome(),
		resp:     new(metrics.Histogram),
		cwait:    new(metrics.Histogram),
		gen:      workload.NewGenerator(cfg.Workload),
		txns:     make(map[txn.ID]*simTxn),
	}
	s.disk = &resource{loop: loop}
	s.mirrorCPU = &resource{loop: loop}
	s.mirrorDsk = &resource{loop: loop}
	s.mode = cfg.LogMode
	if cfg.FailMirrorAt > 0 && cfg.LogMode == core.LogShip {
		loop.After(simtime.Duration(cfg.FailMirrorAt), func() {
			s.mode = core.LogDisk
		})
	}
	return s
}

// Run executes the session to completion and returns the result.
func (s *Sim) Run() Result {
	s.scheduleNextArrival()
	s.loop.Run()
	return s.result()
}

func (s *Sim) scheduleNextArrival() {
	var spec *workload.Spec
	if s.cfg.Trace != nil {
		if s.traceIdx >= len(s.cfg.Trace) {
			return
		}
		spec = s.cfg.Trace[s.traceIdx]
		s.traceIdx++
	} else {
		spec = s.gen.Next()
	}
	if spec == nil {
		return
	}
	s.loop.At(spec.Arrival, func() {
		s.arrive(spec)
		s.scheduleNextArrival()
	})
}

func (s *Sim) arrive(spec *workload.Spec) {
	s.outcome.Submit()
	s.remaining++
	now := s.loop.Now()
	if !s.overload.Admit(now) {
		s.outcome.Abort(txn.OverloadDenied)
		s.bucket(now).Missed++
		s.remaining--
		return
	}
	deadline := txn.NoDeadline
	if spec.Class != txn.NonRealTime {
		deadline = now.Add(simtime.Duration(spec.Deadline))
	}
	s.nextID++
	t := txn.New(s.nextID, spec.Class, now, deadline)
	st := &simTxn{t: t, spec: spec, n: int(s.nextID)}
	s.txns[t.ID] = st
	s.ctl.Begin(t)
	s.ready.Push(t)
	s.tryDispatch()
}

// tryDispatch gives the CPU to the next ready transaction.
func (s *Sim) tryDispatch() {
	if s.cpuBusy {
		return
	}
	now := s.loop.Now()
	for _, dead := range s.ready.DropExpired(now) {
		s.terminal(s.txns[dead.ID], txn.DeadlineMiss)
	}
	t := s.ready.Pop()
	if t == nil {
		return
	}
	st := s.txns[t.ID]
	if st == nil {
		s.tryDispatch()
		return
	}
	// Doomed transactions restart without consuming the step's cost —
	// the controller already knows they cannot validate.
	if _, dead := s.ctl.Doomed(t); dead {
		s.restart(st)
		s.tryDispatch()
		return
	}
	cost := s.stepCost(st)
	s.cpuBusy = true
	s.cpuUsed += cost
	s.loop.After(cost, func() {
		s.cpuBusy = false
		s.finishStep(st)
		s.tryDispatch()
	})
}

// opsOf counts a spec's operations: reads, then writes, then deletes.
func opsOf(spec *workload.Spec) int {
	return len(spec.Reads) + len(spec.Writes) + len(spec.Deletes)
}

// stepCost prices the step the transaction is about to perform.
func (s *Sim) stepCost(st *simTxn) simtime.Duration {
	ops := opsOf(st.spec)
	mutations := len(st.spec.Writes) + len(st.spec.Deletes)
	switch {
	case st.opIndex == 0:
		return s.cost.TxnOverhead + s.opCost(st)
	case st.opIndex < ops:
		return s.opCost(st)
	case st.opIndex == ops: // validation + write phase + log build
		c := s.cost.Validate + simtime.Duration(mutations)*s.cost.ApplyPerWrite
		if s.mode != core.LogNone {
			c += simtime.Duration(mutations+1) * s.cost.LogRecordBuild
		}
		return c
	default: // commit processing (ship send / ack receive)
		return s.cost.MsgCPU
	}
}

func (s *Sim) opCost(st *simTxn) simtime.Duration {
	if st.opIndex < len(st.spec.Reads) {
		return s.cost.PerRead
	}
	return s.cost.PerWriteStage
}

// finishStep performs the logic whose cost was just charged.
func (s *Sim) finishStep(st *simTxn) {
	t := st.t
	now := s.loop.Now()
	if t.Class == txn.Firm && t.Expired(now) {
		s.ctl.Finish(t)
		s.terminal(st, txn.DeadlineMiss)
		return
	}
	if _, dead := s.ctl.Doomed(t); dead {
		s.restart(st)
		return
	}
	ops := opsOf(st.spec)
	switch {
	case st.opIndex < len(st.spec.Reads): // a read
		id := st.spec.Reads[st.opIndex]
		// The simulated body discards the value, so the borrowed
		// zero-copy read is safe here.
		if _, ok := t.ReadView(s.db, id); ok {
			if wts, observed := t.ObservedWriteTS(id); observed {
				if !s.ctl.OnRead(t, id, wts) {
					s.restart(st)
					return
				}
			}
		}
		st.opIndex++
		s.ready.Push(t)
	case st.opIndex < len(st.spec.Reads)+len(st.spec.Writes): // a write
		id := st.spec.Writes[st.opIndex-len(st.spec.Reads)]
		t.StageWrite(id, s.genValue(id, st.n))
		if !s.ctl.OnWrite(t, id) {
			s.restart(st)
			return
		}
		st.opIndex++
		s.ready.Push(t)
	case st.opIndex < ops: // a delete (provisioning churn)
		id := st.spec.Deletes[st.opIndex-len(st.spec.Reads)-len(st.spec.Writes)]
		t.StageDelete(id)
		if !s.ctl.OnWrite(t, id) {
			s.restart(st)
			return
		}
		st.opIndex++
		s.ready.Push(t)
	case st.opIndex == ops: // validation
		res := s.ctl.Validate(t)
		if !res.OK {
			s.restart(st)
			return
		}
		st.opIndex++
		s.startCommit(st)
	default: // final commit processing step (ack received / send done)
		s.commitDone(st)
	}
}

func (s *Sim) genValue(id store.ObjectID, n int) []byte {
	return s.gen.Value(id, n)
}

// startCommit routes the validated transaction down the mode's commit
// path. Validation time is recorded to measure the LogWait step.
func (s *Sim) startCommit(st *simTxn) {
	t := st.t
	validated := s.loop.Now()
	records := len(st.spec.Writes) + len(st.spec.Deletes) + 1 // redo records + commit record
	switch s.mode {
	case core.LogNone, core.LogDiscard:
		// No stable-storage wait at all.
		s.observeCommitWait(s.loop.Now(), 0)
		s.ctl.Finish(t)
		s.complete(st)
	case core.LogDisk:
		// The Log Writer stores the records directly to the disk before
		// the transaction may commit: one synchronous flush, FIFO
		// through the single log device.
		s.disk.enqueue(simtime.Duration(s.cost.DiskLatency), func() {
			s.observeCommitWait(s.loop.Now(), s.loop.Now().Sub(validated))
			s.ctl.Finish(t)
			s.complete(st)
		})
	case core.LogShip:
		// Send to the mirror (the send CPU was charged as this step);
		// the mirror processes the records and acknowledges the commit
		// record immediately; the ack returns and is processed on the
		// primary CPU as a final step.
		mirrorCost := simtime.Duration(records)*simtime.Duration(s.cost.MirrorPerRecord) + simtime.Duration(s.cost.MsgCPU)
		s.loop.After(simtime.Duration(s.cost.NetLatency), func() {
			s.mirrorCPU.enqueue(mirrorCost, func() {
				s.mirrorReceived(records)
				s.loop.After(simtime.Duration(s.cost.NetLatency), func() {
					// Ack processing re-enters the EDF queue as the
					// transaction's final step.
					st.commitStarted = validated
					s.ready.Push(t)
					s.tryDispatch()
				})
			})
		})
	}
}

// commitDone completes a shipped transaction after its ack-processing
// step.
func (s *Sim) commitDone(st *simTxn) {
	s.observeCommitWait(s.loop.Now(), s.loop.Now().Sub(st.commitStarted))
	s.ctl.Finish(st.t)
	s.complete(st)
}

// mirrorReceived accounts mirror-side buffering and async disk flushes:
// the mirror batches everything buffered since the last flush into one
// device write, off the commit path.
func (s *Sim) mirrorReceived(records int) {
	if !s.cfg.MirrorDisk {
		return
	}
	s.mirrorBuffered += records
	if s.mirrorBuffered > s.mirrorBacklog {
		s.mirrorBacklog = s.mirrorBuffered
	}
	s.kickMirrorFlush()
}

// kickMirrorFlush arms the next asynchronous flush cycle if one is not
// already pending.
func (s *Sim) kickMirrorFlush() {
	if s.flushing || s.mirrorBuffered == 0 {
		return
	}
	s.flushing = true
	s.loop.After(simtime.Duration(s.cost.MirrorFlushEvery), func() {
		n := s.mirrorBuffered
		s.mirrorDsk.enqueue(simtime.Duration(s.cost.DiskLatency), func() {
			s.mirrorBuffered -= n
			s.flushing = false
			s.kickMirrorFlush()
		})
	})
}

// complete finishes a committed transaction.
func (s *Sim) complete(st *simTxn) {
	t := st.t
	now := s.loop.Now()
	s.resp.Observe(now.Sub(t.Arrival))
	late := t.Class == txn.Soft && t.Expired(now)
	if late {
		s.outcome.CommitLate()
		s.overload.RecordMiss(now)
	} else {
		s.outcome.Commit()
	}
	b := s.bucket(now)
	b.Committed++
	if late {
		b.Missed++
	}
	s.release(st)
}

// bucket returns the timeline bucket for a virtual time, extending the
// timeline as needed.
func (s *Sim) bucket(now simtime.Time) *TimelineBucket {
	sec := int(now / simtime.Time(time.Second))
	for len(s.timeline) <= sec {
		s.timeline = append(s.timeline, TimelineBucket{Second: len(s.timeline)})
	}
	return &s.timeline[sec]
}

// observeCommitWait records a commit wait globally and in the timeline
// (incremental mean).
func (s *Sim) observeCommitWait(now simtime.Time, d simtime.Duration) {
	s.cwait.Observe(d)
	b := s.bucket(now)
	n := time.Duration(b.Committed + 1) // this commit lands right after
	b.MeanCommitWait += (time.Duration(d) - b.MeanCommitWait) / n
}

// terminal finishes a transaction with an abort.
func (s *Sim) terminal(st *simTxn, reason txn.AbortReason) {
	st.t.Abort(reason)
	s.outcome.Abort(reason)
	if reason == txn.DeadlineMiss {
		s.overload.RecordMiss(s.loop.Now())
	}
	s.bucket(s.loop.Now()).Missed++
	s.release(st)
}

func (s *Sim) release(st *simTxn) {
	delete(s.txns, st.t.ID)
	s.overload.Done()
	s.remaining--
}

// restart re-runs a conflicted transaction from scratch, if it still has
// time and restarts left.
func (s *Sim) restart(st *simTxn) {
	t := st.t
	s.ctl.Finish(t)
	if t.Restarts >= s.cfg.MaxRestarts {
		s.terminal(st, txn.Conflict)
		return
	}
	if t.Class == txn.Firm && t.Expired(s.loop.Now()) {
		s.terminal(st, txn.DeadlineMiss)
		return
	}
	s.outcome.Restart()
	t.ResetForRestart()
	st.opIndex = 0
	s.ctl.Begin(t)
	s.ready.Push(t)
}

func (s *Sim) result() Result {
	snap := s.outcome.Snapshot()
	dur := simtime.Duration(s.loop.Now())
	r := Result{
		Outcome:        snap,
		MissRatio:      snap.MissRatio(),
		MeanResponse:   s.resp.Mean(),
		MeanCommitWait: s.cwait.Mean(),
		P95Response:    s.resp.Quantile(0.95),
		CommitWaitP95:  s.cwait.Quantile(0.95),
		CommitWaitP99:  s.cwait.Quantile(0.99),
		CommitWaitMax:  s.cwait.Max(),
		OCC:            s.ctl.Stats(),
		Duration:       dur,
		MirrorBacklog:  s.mirrorBacklog,
		Timeline:       s.timeline,
	}
	if dur > 0 {
		r.CPUBusy = float64(s.cpuUsed) / float64(dur)
		r.DiskBusy = float64(s.disk.used) / float64(dur)
		r.MirrorCPUBusy = float64(s.mirrorCPU.used) / float64(dur)
	}
	return r
}

// Run is a convenience wrapper: build and run one simulation.
func Run(cfg Config) Result { return New(cfg).Run() }

// RunRepeated runs the configuration with reps different seeds and
// returns the per-rep results; the reported values of the paper are the
// means of such repetitions. Repetitions are independent simulations and
// run in parallel.
func RunRepeated(cfg Config, reps int) []Result {
	out := make([]Result, reps)
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i := 0; i < reps; i++ {
		i := i
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			c := cfg
			c.Workload.Seed = cfg.Workload.Seed + int64(i)*1000003
			out[i] = Run(c)
		}()
	}
	wg.Wait()
	return out
}

// MeanMissRatio averages the miss ratio over results.
func MeanMissRatio(rs []Result) float64 {
	if len(rs) == 0 {
		return 0
	}
	sum := 0.0
	for _, r := range rs {
		sum += r.MissRatio
	}
	return sum / float64(len(rs))
}

func (r Result) String() string {
	return fmt.Sprintf("miss=%.1f%% resp=%v cwait=%v cpu=%.0f%% disk=%.0f%%",
		100*r.MissRatio, r.MeanResponse, r.MeanCommitWait, 100*r.CPUBusy, 100*r.DiskBusy)
}
