package sim

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/occ"
	"repro/internal/simtime"
	"repro/internal/txn"
	"repro/internal/workload"
)

func testWorkload(rate float64, writeFrac float64, count int, seed int64) workload.Config {
	cfg := workload.Default()
	cfg.ArrivalRate = rate
	cfg.WriteFraction = writeFrac
	cfg.Count = count
	cfg.Seed = seed
	cfg.DBSize = 5000 // smaller DB for test speed; conflicts stay rare
	return cfg
}

func run(t *testing.T, mode core.LogMode, mirrorDisk bool, rate, writeFrac float64, count int) Result {
	t.Helper()
	return Run(Config{
		Workload:   testWorkload(rate, writeFrac, count, 42),
		LogMode:    mode,
		MirrorDisk: mirrorDisk,
	})
}

func TestLowLoadAllModesCommitEverything(t *testing.T) {
	for _, mode := range []core.LogMode{core.LogNone, core.LogDiscard, core.LogDisk, core.LogShip} {
		r := run(t, mode, mode == core.LogShip, 50, 0.05, 1000)
		if r.MissRatio > 0.01 {
			t.Fatalf("%v at 50 tps: miss ratio %.3f", mode, r.MissRatio)
		}
		if r.Outcome.Committed == 0 {
			t.Fatalf("%v: nothing committed", mode)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := run(t, core.LogShip, true, 250, 0.2, 1500)
	b := run(t, core.LogShip, true, 250, 0.2, 1500)
	if a.MissRatio != b.MissRatio || a.MeanResponse != b.MeanResponse ||
		a.Outcome.Committed != b.Outcome.Committed || a.Duration != b.Duration {
		t.Fatalf("identical seeds diverged: %v vs %v", a, b)
	}
}

func TestDiskCommitLatencyDominates(t *testing.T) {
	disk := run(t, core.LogDisk, false, 50, 0.05, 800)
	ship := run(t, core.LogShip, false, 50, 0.05, 800)
	none := run(t, core.LogNone, false, 50, 0.05, 800)

	if disk.MeanCommitWait < 8*time.Millisecond {
		t.Fatalf("disk commit wait %v < disk latency", disk.MeanCommitWait)
	}
	if ship.MeanCommitWait >= disk.MeanCommitWait/2 {
		t.Fatalf("shipping commit wait %v not clearly below disk %v",
			ship.MeanCommitWait, disk.MeanCommitWait)
	}
	if ship.MeanCommitWait < 2*350*time.Microsecond {
		t.Fatalf("shipping commit wait %v below one round trip", ship.MeanCommitWait)
	}
	if none.MeanCommitWait != 0 {
		t.Fatalf("no-log commit wait %v", none.MeanCommitWait)
	}
}

func TestSingleNodeDiskSaturatesFirst(t *testing.T) {
	// The paper's Fig 2: with true log writes, the single node trashes
	// on its disk long before the two-node system hits its CPU limit.
	const rate = 200
	single := run(t, core.LogDisk, false, rate, 0.05, 3000)
	pair := run(t, core.LogShip, true, rate, 0.05, 3000)
	if single.MissRatio < pair.MissRatio+0.2 {
		t.Fatalf("at %d tps: single-node-disk miss %.3f vs two-node %.3f — disk bottleneck missing",
			rate, single.MissRatio, pair.MissRatio)
	}
	if single.DiskBusy < 0.9 {
		t.Fatalf("single-node disk utilization %.2f, want saturated", single.DiskBusy)
	}
}

func TestSaturationKneeInPaperBand(t *testing.T) {
	// The two-node system must saturate between 200 and 300 tps.
	low := run(t, core.LogShip, true, 150, 0.2, 3000)
	high := run(t, core.LogShip, true, 400, 0.2, 3000)
	if low.MissRatio > 0.05 {
		t.Fatalf("150 tps should be under the knee: miss %.3f", low.MissRatio)
	}
	if high.MissRatio < 0.25 {
		t.Fatalf("400 tps should be far past the knee: miss %.3f", high.MissRatio)
	}
	if high.CPUBusy < 0.9 {
		t.Fatalf("saturated CPU utilization %.2f", high.CPUBusy)
	}
}

func TestNoLogsIsUpperBound(t *testing.T) {
	// Fig 3 ordering at a saturating rate: No logs ≤ 1 node (disk off)
	// ≤ 2 nodes (disk off), within tolerance.
	const rate, count = 350, 3000
	none := run(t, core.LogNone, false, rate, 0.2, count)
	solo := run(t, core.LogDiscard, false, rate, 0.2, count)
	pair := run(t, core.LogShip, false, rate, 0.2, count)
	if none.MissRatio > solo.MissRatio+0.02 {
		t.Fatalf("no-logs (%.3f) should not miss more than discard (%.3f)", none.MissRatio, solo.MissRatio)
	}
	if solo.MissRatio > pair.MissRatio+0.02 {
		t.Fatalf("single-no-disk (%.3f) should not miss more than two-node (%.3f)", solo.MissRatio, pair.MissRatio)
	}
	// And the gaps are small: the log-handling overhead is modest.
	if pair.MissRatio-none.MissRatio > 0.15 {
		t.Fatalf("two-node overhead too large: %.3f vs %.3f", pair.MissRatio, none.MissRatio)
	}
}

func TestWriteRatioEffectIsSmall(t *testing.T) {
	// Paper: "The effect of the ratio of update transactions is
	// relatively small" — both transaction types pay a commit record.
	const rate, count = 300, 3000
	lo := run(t, core.LogShip, true, rate, 0.0, count)
	hi := run(t, core.LogShip, true, rate, 0.8, count)
	if hi.MissRatio-lo.MissRatio > 0.25 {
		t.Fatalf("write ratio changed miss too much: %.3f → %.3f", lo.MissRatio, hi.MissRatio)
	}
}

func TestOverloadManagerDominatesPastSaturation(t *testing.T) {
	r := run(t, core.LogShip, true, 450, 0.2, 3000)
	denied := r.Outcome.ByReason[txn.OverloadDenied]
	deadline := r.Outcome.ByReason[txn.DeadlineMiss]
	if denied == 0 {
		t.Fatalf("no overload denials past saturation: %+v", r.Outcome)
	}
	// "most of the unsuccessfully executed transactions are due to
	// abortions by the overload manager", with occasional deadline
	// misses.
	if denied < deadline {
		t.Fatalf("denied=%d < deadline=%d", denied, deadline)
	}
}

func TestMirrorDiskBatchingKeepsUp(t *testing.T) {
	r := run(t, core.LogShip, true, 250, 0.2, 3000)
	if r.MirrorBacklog == 0 {
		t.Fatal("mirror never buffered anything despite MirrorDisk")
	}
	// Batched async flushes must not build an unbounded backlog.
	if r.MirrorBacklog > 3000 {
		t.Fatalf("mirror backlog %d records — disk cannot keep up", r.MirrorBacklog)
	}
}

// contendedWorkload mixes non-real-time transactions into a tiny, hot
// database. Under pure firm-deadline EDF on one CPU, transactions run
// nearly serially and conflicts are as rare as the paper observes; the
// deadline-less transactions stretch across many real-time ones and
// create genuine read/write overlap.
func contendedWorkload(seed int64) workload.Config {
	return workload.Config{
		ArrivalRate: 250, WriteFraction: 0.6, DBSize: 30,
		ReadsPerTxn: 4, WritesPerTxn: 2,
		ReadDeadline: 50 * time.Millisecond, WriteDeadline: 150 * time.Millisecond,
		ValueSize: 16, Count: 3000, Seed: seed, NonRTFraction: 0.3,
	}
}

func TestConflictsOccurUnderNonRTMix(t *testing.T) {
	r := Run(Config{Workload: contendedWorkload(7), LogMode: core.LogShip, NonRTReserve: 0.1})
	if r.Outcome.Restarts == 0 {
		t.Fatalf("no restarts under contention: %+v", r.Outcome)
	}
	if r.Outcome.ByReason[txn.Conflict] == 0 {
		t.Fatalf("no terminal conflict aborts: %+v", r.Outcome)
	}
	if r.Outcome.Committed == 0 {
		t.Fatal("nothing committed")
	}
}

func TestProtocolAblation(t *testing.T) {
	// The paper's claim for OCC-DATI — fewer unnecessary restarts —
	// shows up as more commits and fewer wasted validations than
	// classic backward validation under identical contended load.
	dati := Run(Config{Workload: contendedWorkload(3), LogMode: core.LogNone, Protocol: occ.DATI, NonRTReserve: 0.1})
	bc := Run(Config{Workload: contendedWorkload(3), LogMode: core.LogNone, Protocol: occ.BC, NonRTReserve: 0.1})
	if dati.Outcome.Committed <= bc.Outcome.Committed {
		t.Fatalf("DATI commits (%d) not above BC (%d)",
			dati.Outcome.Committed, bc.Outcome.Committed)
	}
	if dati.MissRatio >= bc.MissRatio {
		t.Fatalf("DATI miss (%.3f) not below BC (%.3f)", dati.MissRatio, bc.MissRatio)
	}
	if dati.OCC.Validations >= bc.OCC.Validations {
		t.Fatalf("DATI wasted validations (%d) not below BC (%d)",
			dati.OCC.Validations, bc.OCC.Validations)
	}
}

func TestRunRepeatedVariesSeeds(t *testing.T) {
	rs := RunRepeated(Config{
		Workload: testWorkload(250, 0.2, 800, 1),
		LogMode:  core.LogShip,
	}, 3)
	if len(rs) != 3 {
		t.Fatalf("len = %d", len(rs))
	}
	if rs[0].Outcome.Committed == rs[1].Outcome.Committed &&
		rs[1].Outcome.Committed == rs[2].Outcome.Committed &&
		rs[0].MeanResponse == rs[1].MeanResponse {
		t.Fatal("repetitions look identical; seeds not varied")
	}
	m := MeanMissRatio(rs)
	if m < 0 || m > 1 {
		t.Fatalf("mean miss ratio %v", m)
	}
	if MeanMissRatio(nil) != 0 {
		t.Fatal("empty mean should be 0")
	}
}

func TestNonRTTransactionsComplete(t *testing.T) {
	wl := testWorkload(100, 0.1, 1000, 9)
	wl.NonRTFraction = 0.2
	r := Run(Config{Workload: wl, LogMode: core.LogShip, NonRTReserve: 0.1})
	if r.MissRatio > 0.02 {
		t.Fatalf("miss ratio %.3f with non-RT mix at low load", r.MissRatio)
	}
}

func TestResultString(t *testing.T) {
	r := run(t, core.LogNone, false, 50, 0, 100)
	if r.String() == "" {
		t.Fatal("empty result string")
	}
}

func TestSoftDeadlinesCommitLateInSim(t *testing.T) {
	// Past saturation, soft transactions finish late (counted as missed
	// but committed) instead of aborting.
	wl := testWorkload(400, 0.2, 2000, 11)
	wl.SoftFraction = 1.0 // every RT transaction is soft
	r := Run(Config{Workload: wl, LogMode: core.LogShip, MirrorDisk: true})
	if r.Outcome.LateCommits == 0 {
		t.Fatalf("no late commits under pure-soft overload: %+v", r.Outcome)
	}
	if r.Outcome.ByReason[txn.DeadlineMiss] != 0 {
		t.Fatalf("soft transactions were deadline-aborted: %+v", r.Outcome)
	}
	// Misses (denials + late) still counted.
	if r.MissRatio == 0 {
		t.Fatal("soft overload should still show misses")
	}
}

func TestFailoverTimelineShowsTransition(t *testing.T) {
	// 180 tps is comfortable for shipping but above the ~125 tps disk
	// ceiling: after the mirror dies at t=5s, commit waits jump and
	// misses appear.
	wl := testWorkload(180, 0.2, 4000, 5)
	r := Run(Config{
		Workload:     wl,
		LogMode:      core.LogShip,
		MirrorDisk:   true,
		FailMirrorAt: 5 * time.Second,
	})
	if len(r.Timeline) < 10 {
		t.Fatalf("timeline too short: %d buckets", len(r.Timeline))
	}
	before := r.Timeline[3] // steady shipping
	after := r.Timeline[8]  // steady transient
	if before.MeanCommitWait >= 4*time.Millisecond {
		t.Fatalf("shipping-phase commit wait %v too high", before.MeanCommitWait)
	}
	if after.MeanCommitWait < 8*time.Millisecond {
		t.Fatalf("transient-phase commit wait %v below disk latency", after.MeanCommitWait)
	}
	var missedBefore, missedAfter uint64
	for _, b := range r.Timeline {
		if b.Second < 5 {
			missedBefore += b.Missed
		} else {
			missedAfter += b.Missed
		}
	}
	if missedAfter <= missedBefore {
		t.Fatalf("no miss surge after failover: before=%d after=%d", missedBefore, missedAfter)
	}
}

func TestTimelineAccounting(t *testing.T) {
	r := run(t, core.LogShip, true, 100, 0.1, 1000)
	var committed, missed uint64
	for _, b := range r.Timeline {
		committed += b.Committed
		missed += b.Missed
	}
	if committed != r.Outcome.Committed {
		t.Fatalf("timeline commits %d != outcome %d", committed, r.Outcome.Committed)
	}
	if missed != r.Outcome.Missed {
		t.Fatalf("timeline misses %d != outcome %d", missed, r.Outcome.Missed)
	}
}

func TestTraceDrivenSim(t *testing.T) {
	// A trace round-tripped through the off-line test-file format drives
	// the simulator to the identical result as the generator.
	cfg := testWorkload(200, 0.2, 1200, 21)
	specs := workload.NewGenerator(cfg).All()
	var buf bytes.Buffer
	if err := workload.WriteTrace(&buf, specs); err != nil {
		t.Fatal(err)
	}
	replayed, err := workload.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}

	direct := Run(Config{Workload: cfg, LogMode: core.LogShip, MirrorDisk: true})
	traced := Run(Config{Workload: cfg, Trace: replayed, LogMode: core.LogShip, MirrorDisk: true})
	if direct.Outcome.Committed != traced.Outcome.Committed ||
		direct.MissRatio != traced.MissRatio {
		t.Fatalf("trace replay diverged: direct=%+v traced=%+v", direct.Outcome, traced.Outcome)
	}
}

func TestChurnWorkloadInSim(t *testing.T) {
	wl := testWorkload(150, 0.1, 2500, 31)
	wl.ChurnFraction = 0.2
	r := Run(Config{Workload: wl, LogMode: core.LogShip, MirrorDisk: true})
	if r.MissRatio > 0.05 {
		t.Fatalf("churn at low load missed %.3f", r.MissRatio)
	}
	if r.Outcome.Committed == 0 {
		t.Fatal("nothing committed")
	}
	// Churn must not change the saturation story: the knee stays put.
	hot := Run(Config{Workload: func() workload.Config {
		w := testWorkload(450, 0.1, 2500, 31)
		w.ChurnFraction = 0.2
		return w
	}(), LogMode: core.LogShip, MirrorDisk: true})
	if hot.MissRatio < 0.25 {
		t.Fatalf("churn workload at 450 tps missed only %.3f", hot.MissRatio)
	}
}

// TestOverloadLimitAdaptsToBurst drives the simulator with a trace whose
// middle third compresses arrivals to 3x the sustainable rate: the
// adaptive admission limit must shrink during the burst and recover
// afterwards (observable through denials concentrated in the burst).
func TestOverloadLimitAdaptsToBurst(t *testing.T) {
	cfg := testWorkload(150, 0.1, 6000, 17)
	specs := workload.NewGenerator(cfg).All()
	// Compress the middle 2000 arrivals into a 600 tps burst.
	burstStart := specs[2000].Arrival
	for i := 2000; i < 4000; i++ {
		specs[i].Arrival = burstStart + simtime.Time(i-2000)*simtime.Time(time.Second/600)
	}
	burstEnd := specs[3999].Arrival
	// Shift the tail after the burst, keeping its 150 tps spacing.
	shift := specs[4000].Arrival - burstEnd - simtime.Time(time.Second/150)
	for i := 4000; i < len(specs); i++ {
		specs[i].Arrival -= shift
	}

	r := Run(Config{Workload: cfg, Trace: specs, LogMode: core.LogShip, MirrorDisk: true})
	if r.Outcome.ByReason[txn.OverloadDenied] == 0 {
		t.Fatalf("burst produced no admission denials: %+v", r.Outcome)
	}
	// Denials concentrate inside the burst window; the pre-burst phase
	// commits essentially everything.
	var missBefore, missDuring uint64
	for _, b := range r.Timeline {
		sec := simtime.Time(b.Second) * simtime.Time(time.Second)
		switch {
		case sec < burstStart-simtime.Time(time.Second):
			missBefore += b.Missed
		case sec <= burstEnd+simtime.Time(time.Second):
			missDuring += b.Missed
		}
	}
	if missDuring == 0 {
		t.Fatal("no misses during the burst")
	}
	if missBefore > missDuring/10 {
		t.Fatalf("misses not concentrated in the burst: before=%d during=%d", missBefore, missDuring)
	}
	// The system recovers: the last seconds commit cleanly again.
	tail := r.Timeline[len(r.Timeline)-2]
	if tail.Committed == 0 {
		t.Fatal("system never recovered after the burst")
	}
}
