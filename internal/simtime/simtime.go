// Package simtime provides a virtual clock and a discrete-event queue for
// deterministic simulation, plus a Clock abstraction that lets the same
// engine code run against either simulated or wall-clock time.
package simtime

import (
	"container/heap"
	"fmt"
	"math"
	"sync"
	"time"
)

// Time is a point in virtual time, in nanoseconds since simulation start.
type Time int64

// Duration is a span of virtual time, in nanoseconds. It is convertible to
// and from time.Duration one-to-one.
type Duration = time.Duration

// Never is a sentinel farther in the future than any event the simulator
// will ever schedule.
const Never Time = math.MaxInt64

// Add returns t shifted forward by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds reports t as floating-point seconds since simulation start.
func (t Time) Seconds() float64 { return float64(t) / float64(time.Second) }

func (t Time) String() string {
	if t == Never {
		return "never"
	}
	return Duration(t).String()
}

// Event is a scheduled callback. Events fire in (time, sequence) order, so
// simultaneous events fire in the order they were scheduled, which keeps
// runs reproducible.
type Event struct {
	at    Time
	seq   uint64
	index int // heap index; -1 once fired or canceled
	fn    func()
}

// At reports the virtual time the event is scheduled for.
func (e *Event) At() Time { return e.at }

// Scheduled reports whether the event is still pending.
func (e *Event) Scheduled() bool { return e.index >= 0 }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Loop is a discrete-event simulation loop: a virtual clock plus an ordered
// queue of pending events. It is not safe for concurrent use; a simulation
// is a single logical thread by construction.
type Loop struct {
	now    Time
	seq    uint64
	events eventHeap
	fired  uint64
}

// NewLoop returns a loop with the clock at zero and no pending events.
func NewLoop() *Loop { return &Loop{} }

// Now reports the current virtual time.
func (l *Loop) Now() Time { return l.now }

// Pending reports the number of events waiting to fire.
func (l *Loop) Pending() int { return len(l.events) }

// Fired reports how many events have fired so far.
func (l *Loop) Fired() uint64 { return l.fired }

// At schedules fn to run at absolute virtual time at. Scheduling in the
// past (before Now) panics: it would mean the simulation model violated
// causality, and silently reordering would corrupt results.
func (l *Loop) At(at Time, fn func()) *Event {
	if at < l.now {
		panic(fmt.Sprintf("simtime: scheduling at %v before now %v", at, l.now))
	}
	e := &Event{at: at, seq: l.seq, fn: fn}
	l.seq++
	heap.Push(&l.events, e)
	return e
}

// After schedules fn to run d after the current time. Negative d panics.
func (l *Loop) After(d Duration, fn func()) *Event { return l.At(l.now.Add(d), fn) }

// Cancel removes a pending event. Canceling an already-fired or
// already-canceled event is a no-op and reports false.
func (l *Loop) Cancel(e *Event) bool {
	if e == nil || e.index < 0 {
		return false
	}
	heap.Remove(&l.events, e.index)
	return true
}

// Reschedule moves a pending event to a new absolute time, preserving
// its callback. If the event already fired it is re-armed.
func (l *Loop) Reschedule(e *Event, at Time) {
	if at < l.now {
		panic(fmt.Sprintf("simtime: rescheduling at %v before now %v", at, l.now))
	}
	if e.index >= 0 {
		e.at = at
		e.seq = l.seq
		l.seq++
		heap.Fix(&l.events, e.index)
		return
	}
	e.at = at
	e.seq = l.seq
	l.seq++
	heap.Push(&l.events, e)
}

// Step fires the earliest pending event, advancing the clock to its time.
// It reports false when no events remain.
func (l *Loop) Step() bool {
	if len(l.events) == 0 {
		return false
	}
	e := heap.Pop(&l.events).(*Event)
	l.now = e.at
	l.fired++
	e.fn()
	return true
}

// Run fires events until the queue is empty.
func (l *Loop) Run() {
	for l.Step() {
	}
}

// RunUntil fires events with time ≤ deadline, then advances the clock to
// deadline (if it is beyond the last event fired).
func (l *Loop) RunUntil(deadline Time) {
	for len(l.events) > 0 && l.events[0].at <= deadline {
		l.Step()
	}
	if l.now < deadline {
		l.now = deadline
	}
}

// Clock abstracts "what time is it" and "call me later" so that engine
// code can run identically under simulation and wall-clock execution.
type Clock interface {
	// Now returns the current time on this clock's timeline.
	Now() Time
	// AfterFunc arranges for fn to be called d from now and returns a
	// cancel function. Cancel is best-effort: fn may already be running.
	AfterFunc(d Duration, fn func()) (cancel func() bool)
}

// SimClock adapts a Loop to the Clock interface.
type SimClock struct{ Loop *Loop }

// Now implements Clock.
func (c SimClock) Now() Time { return c.Loop.Now() }

// AfterFunc implements Clock.
func (c SimClock) AfterFunc(d Duration, fn func()) func() bool {
	e := c.Loop.After(d, fn)
	return func() bool { return c.Loop.Cancel(e) }
}

// WallClock implements Clock against the real time.Timer machinery.
// Time zero is the moment the WallClock was created.
type WallClock struct{ start time.Time }

// NewWallClock returns a wall clock whose origin is now.
func NewWallClock() *WallClock { return &WallClock{start: time.Now()} } //rodain:allow wallclock (the wall-clock implementation is where real time enters)

// Now implements Clock.
func (c *WallClock) Now() Time { return Time(time.Since(c.start)) } //rodain:allow wallclock (the wall-clock implementation is where real time enters)

// AfterFunc implements Clock.
func (c *WallClock) AfterFunc(d Duration, fn func()) func() bool {
	t := time.AfterFunc(d, fn) //rodain:allow wallclock (the wall-clock implementation is where real time enters)
	return t.Stop
}

// Wall is a process-wide wall clock: the default for components whose
// caller did not inject a clock. Sharing one instance keeps every
// uninjected component on the same timeline.
var Wall = NewWallClock()

// SleepOn blocks until d has elapsed on c — the clock-respecting
// replacement for time.Sleep. Under a SimClock it blocks until the
// simulation loop advances past the deadline, so code using it stays
// deterministic in simulated runs.
func SleepOn(c Clock, d Duration) {
	if d <= 0 {
		return
	}
	done := make(chan struct{})
	c.AfterFunc(d, func() { close(done) })
	<-done
}

// Ticker delivers a tick on C every period, driven by an arbitrary
// Clock — the clock-respecting replacement for time.NewTicker. Like
// time.Ticker it drops ticks a slow receiver misses (C has a one-slot
// buffer) and does not close C on Stop.
type Ticker struct {
	C chan struct{}

	mu      sync.Mutex
	clock   Clock
	period  Duration
	cancel  func() bool
	stopped bool
}

// NewTicker returns a started ticker on c firing every period.
func NewTicker(c Clock, period Duration) *Ticker {
	if period <= 0 {
		panic("simtime: non-positive ticker period")
	}
	t := &Ticker{C: make(chan struct{}, 1), clock: c, period: period}
	t.arm()
	return t
}

func (t *Ticker) arm() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.stopped {
		return
	}
	t.cancel = t.clock.AfterFunc(t.period, func() {
		select {
		case t.C <- struct{}{}:
		default: // receiver is behind; drop the tick like time.Ticker
		}
		t.arm()
	})
}

// Stop cancels future ticks. It does not drain C.
func (t *Ticker) Stop() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.stopped = true
	if t.cancel != nil {
		t.cancel()
	}
}
