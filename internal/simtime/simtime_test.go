package simtime

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestLoopFiresInOrder(t *testing.T) {
	l := NewLoop()
	var got []int
	l.At(30, func() { got = append(got, 3) })
	l.At(10, func() { got = append(got, 1) })
	l.At(20, func() { got = append(got, 2) })
	l.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if l.Now() != 30 {
		t.Fatalf("Now = %v, want 30", l.Now())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	l := NewLoop()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		l.At(5, func() { got = append(got, i) })
	}
	l.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("simultaneous events fired out of scheduling order: %v", got)
		}
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	l := NewLoop()
	var at Time
	l.At(100, func() {
		l.After(50, func() { at = l.Now() })
	})
	l.Run()
	if at != 150 {
		t.Fatalf("After fired at %v, want 150", at)
	}
}

func TestCancel(t *testing.T) {
	l := NewLoop()
	fired := false
	e := l.At(10, func() { fired = true })
	if !l.Cancel(e) {
		t.Fatal("Cancel returned false for pending event")
	}
	if l.Cancel(e) {
		t.Fatal("second Cancel should report false")
	}
	l.Run()
	if fired {
		t.Fatal("canceled event fired")
	}
}

func TestCancelNil(t *testing.T) {
	l := NewLoop()
	if l.Cancel(nil) {
		t.Fatal("Cancel(nil) should report false")
	}
}

func TestReschedulePending(t *testing.T) {
	l := NewLoop()
	var at Time
	e := l.At(10, func() { at = l.Now() })
	l.Reschedule(e, 40)
	l.Run()
	if at != 40 {
		t.Fatalf("rescheduled event fired at %v, want 40", at)
	}
}

func TestRescheduleFiredReArms(t *testing.T) {
	l := NewLoop()
	count := 0
	var e *Event
	e = l.At(10, func() { count++ })
	l.Run()
	if count != 1 {
		t.Fatalf("count = %d, want 1", count)
	}
	l.Reschedule(e, 20)
	l.Run()
	if count != 2 {
		t.Fatalf("after re-arm count = %d, want 2", count)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	l := NewLoop()
	l.At(100, func() {})
	l.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past should panic")
		}
	}()
	l.At(50, func() {})
}

func TestRunUntil(t *testing.T) {
	l := NewLoop()
	var fired []Time
	for _, at := range []Time{10, 20, 30, 40} {
		at := at
		l.At(at, func() { fired = append(fired, at) })
	}
	l.RunUntil(25)
	if len(fired) != 2 || fired[0] != 10 || fired[1] != 20 {
		t.Fatalf("fired = %v, want [10 20]", fired)
	}
	if l.Now() != 25 {
		t.Fatalf("Now = %v, want 25", l.Now())
	}
	if l.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", l.Pending())
	}
}

func TestRunUntilAdvancesIdleClock(t *testing.T) {
	l := NewLoop()
	l.RunUntil(1000)
	if l.Now() != 1000 {
		t.Fatalf("Now = %v, want 1000", l.Now())
	}
}

// Property: for any set of scheduled times, events fire in nondecreasing
// time order and the count of fired events equals the count scheduled.
func TestPropertyFiringOrder(t *testing.T) {
	f := func(offsets []uint16) bool {
		l := NewLoop()
		var fired []Time
		for _, off := range offsets {
			at := Time(off)
			l.At(at, func() { fired = append(fired, l.Now()) })
		}
		l.Run()
		if len(fired) != len(offsets) {
			return false
		}
		if !sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] }) {
			return false
		}
		return l.Fired() == uint64(len(offsets))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: canceling a random subset prevents exactly that subset.
func TestPropertyCancelSubset(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		l := NewLoop()
		total := int(n%64) + 1
		firedCount := 0
		events := make([]*Event, total)
		for i := 0; i < total; i++ {
			events[i] = l.At(Time(rng.Intn(1000)), func() { firedCount++ })
		}
		canceled := 0
		for _, e := range events {
			if rng.Intn(2) == 0 {
				if l.Cancel(e) {
					canceled++
				}
			}
		}
		l.Run()
		return firedCount == total-canceled
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSimClock(t *testing.T) {
	l := NewLoop()
	c := SimClock{Loop: l}
	fired := false
	cancel := c.AfterFunc(100*time.Nanosecond, func() { fired = true })
	l.Run()
	if !fired {
		t.Fatal("AfterFunc did not fire")
	}
	if cancel() {
		t.Fatal("cancel after firing should report false")
	}
}

func TestWallClock(t *testing.T) {
	c := NewWallClock()
	t0 := c.Now()
	done := make(chan struct{})
	c.AfterFunc(time.Millisecond, func() { close(done) })
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("wall AfterFunc never fired")
	}
	if c.Now() <= t0 {
		t.Fatal("wall clock did not advance")
	}
}

func TestTimeStringAndMath(t *testing.T) {
	if Never.String() != "never" {
		t.Fatalf("Never.String() = %q", Never.String())
	}
	tt := Time(0).Add(time.Second)
	if tt.Seconds() != 1.0 {
		t.Fatalf("Seconds = %v, want 1", tt.Seconds())
	}
	if tt.Sub(Time(0)) != time.Second {
		t.Fatalf("Sub = %v", tt.Sub(Time(0)))
	}
	if Time(time.Millisecond).String() != "1ms" {
		t.Fatalf("String = %q", Time(time.Millisecond).String())
	}
}
