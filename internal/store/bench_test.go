package store

import (
	"sync/atomic"
	"testing"
)

// kv is the operation surface shared by the striped store and the
// single-mutex baseline, so both run the identical benchmark body.
type kv interface {
	Get(ObjectID) ([]byte, bool)
	Apply(ObjectID, []byte, uint64)
}

const benchObjects = 30000 // the paper's database size

func populate(s interface{ Put(ObjectID, []byte) }) {
	v := make([]byte, 32)
	for i := 0; i < benchObjects; i++ {
		s.Put(ObjectID(i), v)
	}
}

// BenchmarkStoreParallel measures concurrent store throughput with
// b.RunParallel at two mixes — read-heavy (5% writes) and 20% writes —
// for the striped store and the pre-striping single-mutex baseline.
// Run with -cpu 8 (or higher) to see the contention difference; ops/sec
// is the inverse of the reported ns/op.
func BenchmarkStoreParallel(b *testing.B) {
	impls := []struct {
		name string
		make func() kv
	}{
		{"striped", func() kv { s := New(); populate(s); return s }},
		{"mutex", func() kv { s := newLockedStore(); populate(s); return s }},
	}
	mixes := []struct {
		name       string
		writeEvery int // 1 write per writeEvery ops
	}{
		{"read95", 20},
		{"write20", 5},
	}
	img := make([]byte, 32)
	for _, impl := range impls {
		for _, mix := range mixes {
			b.Run(impl.name+"/"+mix.name, func(b *testing.B) {
				s := impl.make()
				var ts atomic.Uint64
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					// Per-goroutine prime stride spreads accesses over
					// the whole id space without a per-op RNG in the
					// measured loop.
					i := int(ts.Add(1)) * 104729
					n := 0
					for pb.Next() {
						id := ObjectID((i * 7919) % benchObjects)
						if n%mix.writeEvery == 0 {
							s.Apply(id, img, ts.Add(1))
						} else {
							if _, ok := s.Get(id); !ok {
								b.Fatal("missing object")
							}
						}
						i++
						n++
					}
				})
			})
		}
	}
}

// BenchmarkStoreViewParallel measures the zero-copy read path against
// the cloning Get on the striped store — the per-read allocation the
// borrowed-read contract removes from the engine's read phase.
func BenchmarkStoreViewParallel(b *testing.B) {
	s := New()
	populate(s)
	b.Run("get", func(b *testing.B) {
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				if _, ok := s.Get(ObjectID(i % benchObjects)); !ok {
					b.Fatal("missing object")
				}
				i++
			}
		})
	})
	b.Run("view", func(b *testing.B) {
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				if _, ok := s.View(ObjectID(i % benchObjects)); !ok {
					b.Fatal("missing object")
				}
				i++
			}
		})
	})
}

// BenchmarkApplyGroup measures the multi-object atomic write step used
// by the engine's write phase and the mirror's group apply.
func BenchmarkApplyGroup(b *testing.B) {
	s := New()
	populate(s)
	img := make([]byte, 32)
	ops := make([]Op, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range ops {
			ops[j] = Op{ID: ObjectID((i + j*7919) % benchObjects), Value: img}
		}
		s.ApplyGroup(ops, uint64(i+1))
	}
}
