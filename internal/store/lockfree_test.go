package store

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

// TestPropertyLockFreeReadsSeeOnlyReferenceStates is the equivalence
// proof for the versioned read path: while a writer drives a random
// operation sequence through the striped store, concurrent lock-free
// readers may only ever observe (value, writeTS) states that the
// single-mutex reference model passes through when fed the same
// sequence — never a torn pair, never an invented intermediate.
//
// The per-id state history is precomputed on the reference (groups
// expanded op by op, since a lock-free reader may catch a group
// half-applied per item), then the striped store runs with readers
// hammering Get/View/ViewMeta/ReadInfo under -race.
func TestPropertyLockFreeReadsSeeOnlyReferenceStates(t *testing.T) {
	const idSpace = 48 * 4 // randOps ids times the group fan-out margin
	type stateKey struct {
		val string
		wts uint64
		ok  bool
	}
	f := func(seed int64) bool {
		ops := randOps(seed, 300)

		// Phase 1: replay on the reference, recording every state each
		// id passes through (including the initial absent state).
		ref := newLockedStore()
		hist := make(map[ObjectID]map[stateKey]bool)
		vals := make(map[ObjectID]map[string]bool)
		note := func(id ObjectID) {
			v, ok := ref.Get(id)
			k := stateKey{ok: ok}
			if ok {
				_, wts, _ := ref.Timestamps(id)
				k.val, k.wts = string(v), wts
				m := vals[id]
				if m == nil {
					m = make(map[string]bool)
					vals[id] = m
				}
				m[k.val] = true
			}
			m := hist[id]
			if m == nil {
				m = make(map[stateKey]bool)
				hist[id] = m
			}
			m[k] = true
		}
		for id := ObjectID(0); id < idSpace; id++ {
			note(id)
		}
		for _, op := range ops {
			switch op.kind {
			case 0:
				ref.Put(op.id, op.value)
				note(op.id)
			case 1:
				ref.Apply(op.id, op.value, op.commitTS)
				note(op.id)
			case 2:
				ref.ApplyDelete(op.id, op.commitTS)
				note(op.id)
			case 3:
				ref.Delete(op.id)
				note(op.id)
			case 4:
				// Expand the group: a lock-free reader may observe any
				// per-item prefix of it, so every intermediate per-id
				// state is legitimate.
				for _, g := range op.group {
					if g.Delete {
						ref.ApplyDelete(g.ID, op.commitTS)
					} else {
						ref.Apply(g.ID, g.Value, op.commitTS)
					}
					note(g.ID)
				}
			}
		}

		// Phase 2: run the striped store with concurrent lock-free
		// readers checking every observation against the history.
		striped := New()
		stop := make(chan struct{})
		var bad error
		var badMu sync.Mutex
		report := func(err error) {
			badMu.Lock()
			if bad == nil {
				bad = err
			}
			badMu.Unlock()
		}
		var readers sync.WaitGroup
		for r := 0; r < 3; r++ {
			readers.Add(1)
			go func(r int) {
				defer readers.Done()
				rng := rand.New(rand.NewSource(seed ^ int64(r)))
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					id := ObjectID(rng.Intn(idSpace))
					v, _, wts, ok := striped.ViewMeta(id)
					k := stateKey{ok: ok}
					if ok {
						k.val, k.wts = string(v), wts
					}
					if !hist[id][k] {
						report(fmt.Errorf("seed %d: reader saw id %d in state {ok:%v wts:%d val:%q} the reference never passed through",
							seed, id, k.ok, k.wts, k.val))
						return
					}
					// Get returns an owned copy; its value must likewise be
					// one the reference held for this id at some point.
					if gv, gok := striped.Get(id); gok && !vals[id][string(gv)] {
						report(fmt.Errorf("seed %d: Get saw id %d holding %q, a value the reference never held",
							seed, id, gv))
						return
					}
					striped.ReadInfo(id)
					if i%128 == 0 {
						striped.DeletedAt(id)
					}
				}
			}(r)
		}
		for _, op := range ops {
			switch op.kind {
			case 0:
				striped.Put(op.id, op.value)
			case 1:
				striped.Apply(op.id, op.value, op.commitTS)
			case 2:
				striped.ApplyDelete(op.id, op.commitTS)
			case 3:
				striped.Delete(op.id)
			case 4:
				striped.ApplyGroup(op.group, op.commitTS)
			}
		}
		close(stop)
		readers.Wait()
		if bad != nil {
			t.Log(bad)
			return false
		}
		// Final states must agree exactly.
		return striped.Checksum() == ref.Checksum() && striped.Len() == ref.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 6}); err != nil {
		t.Fatal(err)
	}
}

// TestLockFreeMetaPairsNeverTearUnderChurn pins the two properties the
// read-only fast path depends on: (value, writeTS) always come from one
// atomically published version (a value that encodes its own commit
// timestamp must always decode to the writeTS returned beside it), and
// the write timestamp a reader observes for a transactionally
// maintained item never moves backwards. Structural churn — inserts and
// deletes of sibling ids plus periodic delete/re-create of the hot ids
// — keeps republication and the locked fallback window exercised, not
// just the steady-state table hit.
func TestLockFreeMetaPairsNeverTearUnderChurn(t *testing.T) {
	const (
		hotIDs  = 8
		rounds  = 4000
		readers = 3
	)
	s := New()
	encode := func(ts uint64) []byte {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], ts)
		return b[:]
	}
	for i := 0; i < hotIDs; i++ {
		s.Apply(ObjectID(i), encode(1), 1)
	}

	stop := make(chan struct{})
	var bad error
	var badMu sync.Mutex
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			var last [hotIDs]uint64
			rng := rand.New(rand.NewSource(int64(r) * 7919))
			for {
				select {
				case <-stop:
					return
				default:
				}
				id := ObjectID(rng.Intn(hotIDs))
				v, _, wts, ok := s.ViewMeta(id)
				if !ok {
					continue // mid delete/re-create
				}
				if got := binary.LittleEndian.Uint64(v); got != wts {
					badMu.Lock()
					if bad == nil {
						bad = fmt.Errorf("torn version/meta pair on id %d: value says ts %d, writeTS %d", id, got, wts)
					}
					badMu.Unlock()
					return
				}
				if wts < last[id] {
					badMu.Lock()
					if bad == nil {
						bad = fmt.Errorf("write timestamp moved backwards on id %d: %d after %d", id, wts, last[id])
					}
					badMu.Unlock()
					return
				}
				last[id] = wts
			}
		}(r)
	}

	for ts := uint64(2); ts < rounds; ts++ {
		id := ObjectID(ts % hotIDs)
		switch {
		case ts%97 == 0:
			// Delete and re-create the hot id at the next timestamps:
			// readers must see the tombstone or either version, never a
			// mixture.
			s.ApplyDelete(id, ts)
			s.Apply(id, encode(ts+1), ts+1)
		case ts%13 == 0:
			// Structural churn in the same stripes: insert and remove a
			// sibling id to force table republication around the reads.
			sibling := ObjectID(hotIDs + int(ts%577))
			s.Apply(sibling, encode(ts), ts)
			s.ApplyDelete(sibling, ts+1)
		default:
			s.Apply(id, encode(ts), ts)
		}
	}
	close(stop)
	wg.Wait()
	if bad != nil {
		t.Fatal(bad)
	}
}
