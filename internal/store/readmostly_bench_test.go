package store

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// BenchmarkReadMostly sweeps read fraction × worker count for the
// lock-free versioned read path against the single-mutex reference
// ablation. The striped rows read through View (an atomic version load,
// zero-copy, zero-lock); the mutex rows read through the reference's
// Get (RLock plus clone — the shape of the pre-versioned read path).
// The pure-read fraction is the acceptance row: the striped View path
// must report 0 allocs/op, and from two workers up the lock-free rows
// should beat the mutex rows even on a single-CPU host (no lock word
// bouncing, no clone).
func BenchmarkReadMostly(b *testing.B) {
	type impl struct {
		name  string
		make  func() kv
		reads func(kv) func(ObjectID) bool
	}
	impls := []impl{
		{
			name: "lockfree",
			make: func() kv { s := New(); populate(s); return s },
			reads: func(s kv) func(ObjectID) bool {
				st := s.(*Store)
				return func(id ObjectID) bool { _, ok := st.View(id); return ok }
			},
		},
		{
			name: "mutex",
			make: func() kv { s := newLockedStore(); populate(s); return s },
			reads: func(s kv) func(ObjectID) bool {
				return func(id ObjectID) bool { _, ok := s.Get(id); return ok }
			},
		},
	}
	fractions := []struct {
		name       string
		writeEvery int // 1 Apply per writeEvery ops; 0 = pure reads
	}{
		{"read100", 0},
		{"read99", 100},
		{"read90", 10},
	}
	img := make([]byte, 32)
	for _, im := range impls {
		for _, workers := range []int{1, 2, 4} {
			for _, frac := range fractions {
				b.Run(fmt.Sprintf("%s/workers=%d/%s", im.name, workers, frac.name), func(b *testing.B) {
					s := im.make()
					read := im.reads(s)
					var ts atomic.Uint64
					b.ReportAllocs()
					b.ResetTimer()
					per := b.N / workers
					if per == 0 {
						per = 1
					}
					var wg sync.WaitGroup
					for w := 0; w < workers; w++ {
						w := w
						wg.Add(1)
						go func() {
							defer wg.Done()
							// Prime stride spreads each worker over the
							// whole id space without a per-op RNG.
							i := (w + 1) * 104729
							for n := 0; n < per; n++ {
								id := ObjectID((i * 7919) % benchObjects)
								if frac.writeEvery != 0 && n%frac.writeEvery == 0 {
									s.Apply(id, img, ts.Add(1))
								} else if !read(id) {
									panic("missing object")
								}
								i++
							}
						}()
					}
					wg.Wait()
				})
			}
		}
	}
}
