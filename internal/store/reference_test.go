package store

import (
	"hash/crc32"
	"sort"
	"sync"
)

// lockedItem is the pre-versioning item layout: plain fields guarded by
// the store mutex. The reference model keeps it so that it exercises none
// of the atomic-publication machinery it is meant to check.
type lockedItem struct {
	value   []byte
	readTS  uint64
	writeTS uint64
}

// lockedStore is the pre-striping store: one global RWMutex over a
// single map. It is kept verbatim as (a) the reference model the
// property tests compare the striped store against, and (b) the baseline
// BenchmarkStoreParallel measures the striping win against.
type lockedStore struct {
	mu      sync.RWMutex
	items   map[ObjectID]*lockedItem
	deleted map[ObjectID]uint64
}

func newLockedStore() *lockedStore {
	return &lockedStore{items: make(map[ObjectID]*lockedItem), deleted: make(map[ObjectID]uint64)}
}

func (s *lockedStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.items)
}

func (s *lockedStore) Get(id ObjectID) ([]byte, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	it, ok := s.items[id]
	if !ok {
		return nil, false
	}
	return cloneBytes(it.value), true
}

func (s *lockedStore) Timestamps(id ObjectID) (readTS, writeTS uint64, ok bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	it, ok := s.items[id]
	if !ok {
		return 0, 0, false
	}
	return it.readTS, it.writeTS, true
}

func (s *lockedStore) Put(id ObjectID, value []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.items[id] = &lockedItem{value: cloneBytes(value)}
}

func (s *lockedStore) Apply(id ObjectID, value []byte, commitTS uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.applyLocked(id, value, commitTS)
}

func (s *lockedStore) applyLocked(id ObjectID, value []byte, commitTS uint64) {
	if s.deleted[id] > commitTS {
		return
	}
	it, ok := s.items[id]
	if !ok {
		it = &lockedItem{}
		s.items[id] = it
	}
	if commitTS >= it.writeTS {
		it.value = cloneBytes(value)
		it.writeTS = commitTS
	}
}

func (s *lockedStore) ObserveRead(id ObjectID, commitTS uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if it, ok := s.items[id]; ok && commitTS > it.readTS {
		it.readTS = commitTS
	}
}

func (s *lockedStore) ApplyDelete(id ObjectID, commitTS uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.applyDeleteLocked(id, commitTS)
}

func (s *lockedStore) applyDeleteLocked(id ObjectID, commitTS uint64) {
	it, ok := s.items[id]
	if ok && it.writeTS > commitTS {
		return
	}
	delete(s.items, id)
	if commitTS > s.deleted[id] {
		s.deleted[id] = commitTS
	}
}

// ApplyGroup applies ops under one lock hold — trivially atomic on a
// single-mutex store.
func (s *lockedStore) ApplyGroup(ops []Op, commitTS uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range ops {
		if ops[i].Delete {
			s.applyDeleteLocked(ops[i].ID, commitTS)
		} else {
			s.applyLocked(ops[i].ID, ops[i].Value, commitTS)
		}
	}
}

func (s *lockedStore) DeletedAt(id ObjectID) uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.deleted[id]
}

func (s *lockedStore) Delete(id ObjectID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.items[id]; !ok {
		return false
	}
	delete(s.items, id)
	return true
}

func (s *lockedStore) Snapshot() []Record {
	s.mu.RLock()
	defer s.mu.RUnlock()
	recs := make([]Record, 0, len(s.items))
	for id, it := range s.items {
		recs = append(recs, Record{ID: id, Value: cloneBytes(it.value), WriteTS: it.writeTS})
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].ID < recs[j].ID })
	return recs
}

func (s *lockedStore) Checksum() uint32 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ids := make([]ObjectID, 0, len(s.items))
	for id := range s.items {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	h := crc32.NewIEEE()
	var buf [8]byte
	for _, id := range ids {
		putUint64(buf[:], uint64(id))
		h.Write(buf[:])
		h.Write(s.items[id].value)
		h.Write([]byte{0xff})
	}
	return h.Sum32()
}
