// Package store implements the RODAIN main-memory object store: a flat
// collection of data items addressed by object id, each carrying the
// read/write timestamps that the optimistic concurrency-control protocols
// maintain. Transactions never write the store directly during their read
// phase — deferred writes live in the transaction's private workspace and
// are applied here only in the write phase, after validation.
//
// The store is hash-partitioned into power-of-two lock stripes so that
// independent transactions touching different objects never contend on a
// shared mutex. Single-object operations lock exactly one stripe.
// Multi-object operations (ApplyGroup, Snapshot, Checksum, LoadSnapshot,
// IDs) acquire the stripes they need in ascending stripe order, which
// makes them deadlock-free against each other and keeps the guarantees
// the rest of the system relies on: a Snapshot is a transaction-
// consistent point-in-time copy, and a validated transaction's write
// phase becomes visible atomically.
//
// Values are immutable once installed: every update stores a fresh copy
// and never mutates an installed byte slice in place. This is what makes
// the zero-copy View/ViewMeta reads safe — a borrowed slice can never be
// concurrently overwritten, it can only go stale.
package store

import (
	"fmt"
	"hash/crc32"
	"sort"
	"sync"
)

// ObjectID identifies a data item in the database.
type ObjectID uint64

// Record is one data item in export form, used for snapshots and state
// transfer to a rejoining mirror.
type Record struct {
	ID      ObjectID
	Value   []byte
	WriteTS uint64
}

// Op is one element of a transactional write group: an insert/update
// (after image in Value) or a deletion (Delete true, Value ignored).
type Op struct {
	ID     ObjectID
	Value  []byte
	Delete bool
}

type item struct {
	value   []byte
	readTS  uint64 // largest commit timestamp of any validated reader
	writeTS uint64 // commit timestamp of the last validated writer
}

// DefaultStripes is the stripe count used by New. Power of two; 64
// stripes keep the per-stripe mutexes effectively uncontended up to far
// more cores than a node realistically runs transaction workers on.
const DefaultStripes = 64

// stripe is one lock partition. Padded to a cache line so neighboring
// stripes' mutexes do not false-share under write contention.
type stripe struct {
	mu      sync.RWMutex
	items   map[ObjectID]*item
	deleted map[ObjectID]uint64 // tombstone commit timestamps
	epoch   uint64              // bumped under mu on every content mutation
	_       [16]byte            // RWMutex(24) + 2 map headers(16) + epoch(8) + 16 = one cache line
}

// Store is a main-memory object store safe for concurrent use.
// The zero value is not usable; call New.
type Store struct {
	stripes []stripe
	shift   uint // 64 - log2(len(stripes)); maps hashed ids to stripes
}

// New returns an empty store with DefaultStripes lock stripes.
func New() *Store { return newStriped(DefaultStripes) }

// newStriped returns an empty store with n (power of two) stripes.
// Stripe count is an internal tuning knob: the logical contents,
// Snapshot and Checksum of a store are identical for every n.
func newStriped(n int) *Store {
	if n <= 0 || n&(n-1) != 0 {
		panic(fmt.Sprintf("store: stripe count %d is not a positive power of two", n))
	}
	s := &Store{stripes: make([]stripe, n), shift: 64}
	for nn := n; nn > 1; nn >>= 1 {
		s.shift--
	}
	for i := range s.stripes {
		s.stripes[i].items = make(map[ObjectID]*item)
		s.stripes[i].deleted = make(map[ObjectID]uint64)
	}
	return s
}

// stripeIndex hashes an object id to its stripe. Fibonacci hashing keeps
// strided id patterns (sequential keys, per-shard key spaces) spread
// evenly instead of piling onto a few stripes.
func (s *Store) stripeIndex(id ObjectID) int {
	return int((uint64(id) * 0x9E3779B97F4A7C15) >> s.shift)
}

// StripeOf reports the stripe index id maps to in a store with n lock
// stripes (n must be a positive power of two). It is the same Fibonacci
// hash stripeIndex uses, exported so the checkpoint format can route a
// logged record to its stripe watermark without a Store in hand.
func StripeOf(id ObjectID, n int) int {
	shift := uint(64)
	for ; n > 1; n >>= 1 {
		shift--
	}
	return int((uint64(id) * 0x9E3779B97F4A7C15) >> shift)
}

// NumStripes reports the store's lock-stripe count.
func (s *Store) NumStripes() int { return len(s.stripes) }

func (s *Store) stripeFor(id ObjectID) *stripe {
	return &s.stripes[s.stripeIndex(id)]
}

// Len reports the number of objects.
func (s *Store) Len() int {
	n := 0
	for i := range s.stripes {
		st := &s.stripes[i]
		st.mu.RLock()
		n += len(st.items)
		st.mu.RUnlock()
	}
	return n
}

// Get returns a copy of the object's value. It reports false if the
// object does not exist.
func (s *Store) Get(id ObjectID) ([]byte, bool) {
	st := s.stripeFor(id)
	st.mu.RLock()
	it, ok := st.items[id]
	if !ok {
		st.mu.RUnlock()
		return nil, false
	}
	v := cloneBytes(it.value)
	st.mu.RUnlock()
	return v, true
}

// View returns the object's value without copying. The returned slice is
// owned by the store and MUST NOT be modified by the caller. Because
// installed values are never mutated in place, the slice stays readable
// indefinitely, but it no longer reflects the current database state
// once a later transaction overwrites the object — callers should decode
// and discard it. Use Get where the caller needs an owned copy.
func (s *Store) View(id ObjectID) ([]byte, bool) {
	st := s.stripeFor(id)
	st.mu.RLock()
	it, ok := st.items[id]
	if !ok {
		st.mu.RUnlock()
		return nil, false
	}
	v := it.value
	st.mu.RUnlock()
	return v, true
}

// GetMeta returns a copy of the value together with the item's read and
// write timestamps.
func (s *Store) GetMeta(id ObjectID) (value []byte, readTS, writeTS uint64, ok bool) {
	st := s.stripeFor(id)
	st.mu.RLock()
	it, ok := st.items[id]
	if !ok {
		st.mu.RUnlock()
		return nil, 0, 0, false
	}
	value, readTS, writeTS = cloneBytes(it.value), it.readTS, it.writeTS
	st.mu.RUnlock()
	return value, readTS, writeTS, true
}

// ViewMeta is GetMeta without the value copy; the View borrowing
// contract applies to the returned slice.
func (s *Store) ViewMeta(id ObjectID) (value []byte, readTS, writeTS uint64, ok bool) {
	st := s.stripeFor(id)
	st.mu.RLock()
	it, ok := st.items[id]
	if !ok {
		st.mu.RUnlock()
		return nil, 0, 0, false
	}
	value, readTS, writeTS = it.value, it.readTS, it.writeTS
	st.mu.RUnlock()
	return value, readTS, writeTS, true
}

// Timestamps returns the item's read and write timestamps without copying
// the value.
func (s *Store) Timestamps(id ObjectID) (readTS, writeTS uint64, ok bool) {
	st := s.stripeFor(id)
	st.mu.RLock()
	it, ok := st.items[id]
	if !ok {
		st.mu.RUnlock()
		return 0, 0, false
	}
	readTS, writeTS = it.readTS, it.writeTS
	st.mu.RUnlock()
	return readTS, writeTS, true
}

// ReadInfo returns the item's timestamps together with its tombstone
// timestamp in a single lock acquisition — the copy-free read the
// validation path performs per write-set member. exists reports whether
// the item is present; deletedTS is meaningful either way.
func (s *Store) ReadInfo(id ObjectID) (readTS, writeTS, deletedTS uint64, exists bool) {
	st := s.stripeFor(id)
	st.mu.RLock()
	deletedTS = st.deleted[id]
	it, exists := st.items[id]
	if exists {
		readTS, writeTS = it.readTS, it.writeTS
	}
	st.mu.RUnlock()
	return readTS, writeTS, deletedTS, exists
}

// Put inserts or replaces an object outside of any transaction (bulk
// load). Timestamps are reset to zero.
func (s *Store) Put(id ObjectID, value []byte) {
	st := s.stripeFor(id)
	st.mu.Lock()
	st.items[id] = &item{value: cloneBytes(value)}
	st.epoch++
	st.mu.Unlock()
}

// Apply installs a validated transactional write: the after image becomes
// the current value and the item's write timestamp advances to commitTS.
// Apply creates the object if it does not exist (an insert).
func (s *Store) Apply(id ObjectID, value []byte, commitTS uint64) {
	st := s.stripeFor(id)
	st.mu.Lock()
	st.apply(id, value, commitTS)
	st.mu.Unlock()
}

// apply is Apply with the stripe lock held. Writes install in
// timestamp order regardless of arrival order: when validated write
// phases run concurrently, a transaction with a lower commit timestamp
// may reach the stripe after one with a higher timestamp, and its
// after image must not clobber the newer value (last-writer-wins by
// commitTS, mirroring applyDelete's tombstone check).
func (st *stripe) apply(id ObjectID, value []byte, commitTS uint64) {
	st.epoch++ // conservative: count guarded no-ops too; a spurious bump only costs a copy
	if st.deleted[id] > commitTS {
		return // deleted by a newer transaction; do not resurrect
	}
	it, ok := st.items[id]
	if !ok {
		it = &item{}
		st.items[id] = it
	}
	if commitTS >= it.writeTS {
		it.value = cloneBytes(value)
		it.writeTS = commitTS
	}
}

// ObserveRead records that a transaction with the given commit timestamp
// read the object, advancing the item's read timestamp.
func (s *Store) ObserveRead(id ObjectID, commitTS uint64) {
	st := s.stripeFor(id)
	st.mu.Lock()
	if it, ok := st.items[id]; ok && commitTS > it.readTS {
		it.readTS = commitTS
	}
	st.mu.Unlock()
}

// ApplyDelete installs a validated transactional deletion. Unlike
// Delete, it remembers the deletion timestamp as a tombstone so that a
// log replay applying groups out of timestamp order cannot resurrect the
// object with an older write. Tombstones are retained until the next
// LoadSnapshot — bounded in practice by the checkpoint cycle, which
// replaces the store contents and clears them.
func (s *Store) ApplyDelete(id ObjectID, commitTS uint64) {
	st := s.stripeFor(id)
	st.mu.Lock()
	st.applyDelete(id, commitTS)
	st.mu.Unlock()
}

// applyDelete is ApplyDelete with the stripe lock held.
func (st *stripe) applyDelete(id ObjectID, commitTS uint64) {
	st.epoch++
	it, ok := st.items[id]
	if ok && it.writeTS > commitTS {
		return // a newer write already superseded this deletion
	}
	delete(st.items, id)
	if commitTS > st.deleted[id] {
		st.deleted[id] = commitTS
	}
}

// ApplyGroup installs one committed transaction's writes and deletes as
// a single atomic step: every stripe the group touches is locked (in
// ascending stripe order, so concurrent groups and whole-store readers
// cannot deadlock) before the first update and released after the last.
// A concurrent Snapshot therefore sees either none or all of the group —
// the write phase is atomic, exactly as it was under one global mutex.
// Ops are applied in slice order, so a group may write and then delete
// (or re-write) the same object with last-op-wins semantics.
func (s *Store) ApplyGroup(ops []Op, commitTS uint64) {
	switch len(ops) {
	case 0:
		return
	case 1: // single-object fast path: plain single-stripe locking
		if ops[0].Delete {
			s.ApplyDelete(ops[0].ID, commitTS)
		} else {
			s.Apply(ops[0].ID, ops[0].Value, commitTS)
		}
		return
	}
	var touched uint64 // stripe bitmask; DefaultStripes and every test count fit in 64 bits
	if len(s.stripes) <= 64 {
		for i := range ops {
			touched |= 1 << uint(s.stripeIndex(ops[i].ID))
		}
		for i := range s.stripes {
			if touched&(1<<uint(i)) != 0 {
				s.stripes[i].mu.Lock()
			}
		}
	} else {
		touched = ^uint64(0)
		for i := range s.stripes {
			s.stripes[i].mu.Lock()
		}
	}
	for i := range ops {
		st := s.stripeFor(ops[i].ID)
		if ops[i].Delete {
			st.applyDelete(ops[i].ID, commitTS)
		} else {
			st.apply(ops[i].ID, ops[i].Value, commitTS)
		}
	}
	if len(s.stripes) <= 64 {
		for i := range s.stripes {
			if touched&(1<<uint(i)) != 0 {
				s.stripes[i].mu.Unlock()
			}
		}
	} else {
		for i := range s.stripes {
			s.stripes[i].mu.Unlock()
		}
	}
}

// DeletedAt reports the tombstone timestamp for id (zero if never
// transactionally deleted).
func (s *Store) DeletedAt(id ObjectID) uint64 {
	st := s.stripeFor(id)
	st.mu.RLock()
	ts := st.deleted[id]
	st.mu.RUnlock()
	return ts
}

// Delete removes an object. It reports whether the object existed.
func (s *Store) Delete(id ObjectID) bool {
	st := s.stripeFor(id)
	st.mu.Lock()
	_, ok := st.items[id]
	if ok {
		delete(st.items, id)
		st.epoch++
	}
	st.mu.Unlock()
	return ok
}

// rlockAll / runlockAll take every stripe read lock in ascending order —
// the whole-store consistent read point used by Snapshot, Checksum and
// IDs.
func (s *Store) rlockAll() {
	for i := range s.stripes {
		s.stripes[i].mu.RLock()
	}
}

func (s *Store) runlockAll() {
	for i := range s.stripes {
		s.stripes[i].mu.RUnlock()
	}
}

// IDs returns all object ids in ascending order.
func (s *Store) IDs() []ObjectID {
	s.rlockAll()
	ids := make([]ObjectID, 0, s.lenLocked())
	for i := range s.stripes {
		for id := range s.stripes[i].items {
			ids = append(ids, id)
		}
	}
	s.runlockAll()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// lenLocked sums item counts; every stripe lock must be held.
func (s *Store) lenLocked() int {
	n := 0
	for i := range s.stripes {
		n += len(s.stripes[i].items)
	}
	return n
}

// Snapshot returns a consistent copy of the whole database in ascending
// id order, suitable for state transfer to a rejoining mirror node. All
// stripes are read-locked for the duration, so the copy is a single
// point in time: it contains every group applied before it and none
// applied after.
func (s *Store) Snapshot() []Record {
	s.rlockAll()
	recs := make([]Record, 0, s.lenLocked())
	for i := range s.stripes {
		for id, it := range s.stripes[i].items {
			recs = append(recs, Record{ID: id, Value: cloneBytes(it.value), WriteTS: it.writeTS})
		}
	}
	s.runlockAll()
	sort.Slice(recs, func(i, j int) bool { return recs[i].ID < recs[j].ID })
	return recs
}

// StripeEpoch reports stripe i's change epoch: a counter bumped under
// the stripe lock on every content mutation (transactional applies,
// bulk loads, deletes, snapshot loads). Two equal readings with no
// mutation in between mean the stripe's contents are unchanged — the
// dirty-stripe test the incremental checkpointer uses.
func (s *Store) StripeEpoch(i int) uint64 {
	st := &s.stripes[i]
	st.mu.RLock()
	e := st.epoch
	st.mu.RUnlock()
	return e
}

// SnapshotStripe copies stripe i alone — the fuzzy checkpointer's unit
// of work: only this stripe's lock is held, so commits touching other
// stripes proceed while the copy runs. The returned records are sorted
// by id and their epoch is the stripe's change epoch at the copy point.
//
// The Value slices are borrowed, not copied (the View contract):
// installed values are immutable, so the caller may encode them after
// the lock is released, which keeps the per-stripe pause to the map
// walk instead of the full value copy. Callers that mutate or retain
// them must clone.
func (s *Store) SnapshotStripe(i int) ([]Record, uint64) {
	st := &s.stripes[i]
	st.mu.RLock()
	recs := make([]Record, 0, len(st.items))
	for id, it := range st.items {
		recs = append(recs, Record{ID: id, Value: it.value, WriteTS: it.writeTS})
	}
	epoch := st.epoch
	st.mu.RUnlock()
	sort.Slice(recs, func(a, b int) bool { return recs[a].ID < recs[b].ID })
	return recs, epoch
}

// LoadSnapshot replaces the store contents with the given records.
func (s *Store) LoadSnapshot(recs []Record) {
	for i := range s.stripes {
		s.stripes[i].mu.Lock()
	}
	for i := range s.stripes {
		s.stripes[i].items = make(map[ObjectID]*item)
		s.stripes[i].deleted = make(map[ObjectID]uint64)
		s.stripes[i].epoch++
	}
	for _, r := range recs {
		st := s.stripeFor(r.ID)
		st.items[r.ID] = &item{value: cloneBytes(r.Value), writeTS: r.WriteTS}
	}
	for i := range s.stripes {
		s.stripes[i].mu.Unlock()
	}
}

// Checksum returns a CRC-32 over (id, value) pairs in ascending id order.
// Two stores holding the same logical database produce the same checksum
// regardless of stripe count; timestamps are deliberately excluded since
// a mirror rebuilt from logs may carry different read timestamps.
func (s *Store) Checksum() uint32 {
	s.rlockAll()
	defer s.runlockAll()
	ids := make([]ObjectID, 0, s.lenLocked())
	for i := range s.stripes {
		for id := range s.stripes[i].items {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	h := crc32.NewIEEE()
	var buf [8]byte
	for _, id := range ids {
		putUint64(buf[:], uint64(id))
		h.Write(buf[:])
		h.Write(s.stripeFor(id).items[id].value)
		h.Write([]byte{0xff}) // separator so (1,"ab")+(2,"") != (1,"a")+(2,"b")
	}
	return h.Sum32()
}

func (s *Store) String() string {
	return fmt.Sprintf("store{%d objects}", s.Len())
}

func cloneBytes(b []byte) []byte {
	if b == nil {
		return nil
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

func putUint64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}
