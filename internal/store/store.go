// Package store implements the RODAIN main-memory object store: a flat
// collection of data items addressed by object id, each carrying the
// read/write timestamps that the optimistic concurrency-control protocols
// maintain. Transactions never write the store directly during their read
// phase — deferred writes live in the transaction's private workspace and
// are applied here only in the write phase, after validation.
package store

import (
	"fmt"
	"hash/crc32"
	"sort"
	"sync"
)

// ObjectID identifies a data item in the database.
type ObjectID uint64

// Record is one data item in export form, used for snapshots and state
// transfer to a rejoining mirror.
type Record struct {
	ID      ObjectID
	Value   []byte
	WriteTS uint64
}

type item struct {
	value   []byte
	readTS  uint64 // largest commit timestamp of any validated reader
	writeTS uint64 // commit timestamp of the last validated writer
}

// Store is a main-memory object store safe for concurrent use.
// The zero value is not usable; call New.
type Store struct {
	mu      sync.RWMutex
	items   map[ObjectID]*item
	deleted map[ObjectID]uint64 // tombstone commit timestamps
}

// New returns an empty store.
func New() *Store {
	return &Store{items: make(map[ObjectID]*item), deleted: make(map[ObjectID]uint64)}
}

// Len reports the number of objects.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.items)
}

// Get returns a copy of the object's value. It reports false if the
// object does not exist.
func (s *Store) Get(id ObjectID) ([]byte, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	it, ok := s.items[id]
	if !ok {
		return nil, false
	}
	return cloneBytes(it.value), true
}

// GetMeta returns a copy of the value together with the item's read and
// write timestamps.
func (s *Store) GetMeta(id ObjectID) (value []byte, readTS, writeTS uint64, ok bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	it, ok := s.items[id]
	if !ok {
		return nil, 0, 0, false
	}
	return cloneBytes(it.value), it.readTS, it.writeTS, true
}

// Timestamps returns the item's read and write timestamps without copying
// the value.
func (s *Store) Timestamps(id ObjectID) (readTS, writeTS uint64, ok bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	it, ok := s.items[id]
	if !ok {
		return 0, 0, false
	}
	return it.readTS, it.writeTS, true
}

// Put inserts or replaces an object outside of any transaction (bulk
// load). Timestamps are reset to zero.
func (s *Store) Put(id ObjectID, value []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.items[id] = &item{value: cloneBytes(value)}
}

// Apply installs a validated transactional write: the after image becomes
// the current value and the item's write timestamp advances to commitTS.
// Apply creates the object if it does not exist (an insert).
func (s *Store) Apply(id ObjectID, value []byte, commitTS uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.deleted[id] > commitTS {
		return // deleted by a newer transaction; do not resurrect
	}
	it, ok := s.items[id]
	if !ok {
		it = &item{}
		s.items[id] = it
	}
	it.value = cloneBytes(value)
	if commitTS > it.writeTS {
		it.writeTS = commitTS
	}
}

// ObserveRead records that a transaction with the given commit timestamp
// read the object, advancing the item's read timestamp.
func (s *Store) ObserveRead(id ObjectID, commitTS uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if it, ok := s.items[id]; ok && commitTS > it.readTS {
		it.readTS = commitTS
	}
}

// ApplyDelete installs a validated transactional deletion. Unlike
// Delete, it remembers the deletion timestamp as a tombstone so that a
// log replay applying groups out of timestamp order cannot resurrect the
// object with an older write. Tombstones are retained until the next
// LoadSnapshot — bounded in practice by the checkpoint cycle, which
// replaces the store contents and clears them.
func (s *Store) ApplyDelete(id ObjectID, commitTS uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	it, ok := s.items[id]
	if ok && it.writeTS > commitTS {
		return // a newer write already superseded this deletion
	}
	delete(s.items, id)
	if commitTS > s.deleted[id] {
		if s.deleted == nil {
			s.deleted = make(map[ObjectID]uint64)
		}
		s.deleted[id] = commitTS
	}
}

// DeletedAt reports the tombstone timestamp for id (zero if never
// transactionally deleted).
func (s *Store) DeletedAt(id ObjectID) uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.deleted[id]
}

// Delete removes an object. It reports whether the object existed.
func (s *Store) Delete(id ObjectID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.items[id]; !ok {
		return false
	}
	delete(s.items, id)
	return true
}

// IDs returns all object ids in ascending order.
func (s *Store) IDs() []ObjectID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ids := make([]ObjectID, 0, len(s.items))
	for id := range s.items {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Snapshot returns a consistent copy of the whole database in ascending
// id order, suitable for state transfer to a rejoining mirror node.
func (s *Store) Snapshot() []Record {
	s.mu.RLock()
	defer s.mu.RUnlock()
	recs := make([]Record, 0, len(s.items))
	for id, it := range s.items {
		recs = append(recs, Record{ID: id, Value: cloneBytes(it.value), WriteTS: it.writeTS})
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].ID < recs[j].ID })
	return recs
}

// LoadSnapshot replaces the store contents with the given records.
func (s *Store) LoadSnapshot(recs []Record) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.items = make(map[ObjectID]*item, len(recs))
	s.deleted = make(map[ObjectID]uint64)
	for _, r := range recs {
		s.items[r.ID] = &item{value: cloneBytes(r.Value), writeTS: r.WriteTS}
	}
}

// Checksum returns a CRC-32 over (id, value) pairs in ascending id order.
// Two stores holding the same logical database produce the same checksum;
// timestamps are deliberately excluded since a mirror rebuilt from logs
// may carry different read timestamps.
func (s *Store) Checksum() uint32 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ids := make([]ObjectID, 0, len(s.items))
	for id := range s.items {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	h := crc32.NewIEEE()
	var buf [8]byte
	for _, id := range ids {
		putUint64(buf[:], uint64(id))
		h.Write(buf[:])
		h.Write(s.items[id].value)
		h.Write([]byte{0xff}) // separator so (1,"ab")+(2,"") != (1,"a")+(2,"b")
	}
	return h.Sum32()
}

func (s *Store) String() string {
	return fmt.Sprintf("store{%d objects}", s.Len())
}

func cloneBytes(b []byte) []byte {
	if b == nil {
		return nil
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

func putUint64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}
