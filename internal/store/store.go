// Package store implements the RODAIN main-memory object store: a flat
// collection of data items addressed by object id, each carrying the
// read/write timestamps that the optimistic concurrency-control protocols
// maintain. Transactions never write the store directly during their read
// phase — deferred writes live in the transaction's private workspace and
// are applied here only in the write phase, after validation.
//
// The store is hash-partitioned into power-of-two stripes. Writers
// (Apply, ApplyGroup, Put, deletes, snapshot loads) serialize on the
// stripe mutex exactly as before: multi-object operations acquire the
// stripes they need in ascending stripe order, which keeps them
// deadlock-free against each other, and a Snapshot remains a
// transaction-consistent point-in-time copy.
//
// Reads, however, take no lock at all on the hot path. Every item holds
// its current state in one immutable version (value + write timestamp +
// tombstone timestamp) behind an atomic pointer, installed copy-on-write
// by the write phase; the read timestamp sits beside the pointer as a
// CAS-max atomic so ObserveRead stays allocation-free. Each stripe
// additionally publishes an immutable id→item table through an atomic
// pointer (RCU style): the table is rebuilt and republished only on a
// structural change — insert, delete, snapshot load — which the paper's
// number-translation workload makes rare. Get/View/GetMeta/Timestamps/
// ReadInfo therefore resolve to two or three atomic loads. A reader that
// misses in its table compares the table's generation against the
// stripe's structural-change counter (a seqlock-flavoured check): equal
// means the miss is real, different means a structural change is in
// flight and the reader falls back to the locked legacy path for that
// one access.
//
// Values are immutable once installed: every update stores a fresh copy
// and never mutates an installed byte slice in place. This is what makes
// the zero-copy View/ViewMeta reads safe — a borrowed slice can never be
// concurrently overwritten, it can only go stale. Single-item reads stay
// linearizable (the version-pointer store is the linearization point);
// what the lock-free path gives up is multi-item group atomicity for
// readers that bypass the concurrency controller: a reader interleaving
// with an ApplyGroup may observe some of the group's items installed and
// others not yet. Transactional readers are unaffected — validation (or
// the read-only fast path's revalidation) catches exactly that window.
package store

import (
	"fmt"
	"hash/crc32"
	"sort"
	"sync"
	"sync/atomic"
)

// ObjectID identifies a data item in the database.
type ObjectID uint64

// Record is one data item in export form, used for snapshots and state
// transfer to a rejoining mirror.
type Record struct {
	ID      ObjectID
	Value   []byte
	WriteTS uint64
}

// Op is one element of a transactional write group: an insert/update
// (after image in Value) or a deletion (Delete true, Value ignored).
type Op struct {
	ID     ObjectID
	Value  []byte
	Delete bool
}

// version is one immutable state of an item: the installed value, the
// commit timestamp of the writer that installed it, and — for an item
// that has been transactionally deleted — the deletion timestamp. A
// version is never mutated after it is stored into an item's pointer;
// writers install a fresh one. Readers therefore obtain (value, writeTS,
// deletedTS) as one consistent unit from a single atomic load — no torn
// value/timestamp pairs.
type version struct {
	value     []byte
	writeTS   uint64
	deletedTS uint64 // nonzero: the item was deleted at this timestamp
}

// item is one data item. The current version hangs off an atomic
// pointer; the read timestamp is a CAS-max atomic beside it (it
// constrains future writers but is independent of the value, and keeping
// it out of the version keeps ObserveRead allocation-free). An item
// reachable from a stale published table whose object has since been
// deleted carries a tombstone version, so even stale readers observe the
// deletion without locking.
type item struct {
	ver    atomic.Pointer[version]
	readTS atomic.Uint64 // largest commit timestamp of any validated reader
}

// live reports the item's current version, nil if it is tombstoned.
func (it *item) live() *version {
	v := it.ver.Load()
	if v == nil || v.deletedTS != 0 {
		return nil
	}
	return v
}

// roTable is a stripe's published, immutable id→item index. Both maps
// are frozen at publication: lock-free readers may look items up in them
// concurrently because nothing ever writes a published table.
type roTable struct {
	items   map[ObjectID]*item
	deleted map[ObjectID]uint64 // tombstone commit timestamps
	gen     uint64              // structGen value this table reflects
}

// DefaultStripes is the stripe count used by New. Power of two; 64
// stripes keep the per-stripe mutexes effectively uncontended up to far
// more cores than a node realistically runs transaction workers on.
const DefaultStripes = 64

// stripe is one lock partition. The mutex serializes writers; readers go
// through tbl. items/deleted are the authoritative mutable maps, guarded
// by mu; tbl is their immutable published copy, rebuilt on structural
// changes only (value updates reuse the shared *item and need no
// republish).
type stripe struct {
	mu        sync.RWMutex
	items     map[ObjectID]*item
	deleted   map[ObjectID]uint64
	epoch     uint64 // bumped under mu on every content mutation (checkpointer dirty test)
	structGen atomic.Uint64
	tbl       atomic.Pointer[roTable]
}

// Store is a main-memory object store safe for concurrent use.
// The zero value is not usable; call New.
type Store struct {
	stripes []stripe
	shift   uint // 64 - log2(len(stripes)); maps hashed ids to stripes
}

// New returns an empty store with DefaultStripes lock stripes.
func New() *Store { return newStriped(DefaultStripes) }

// newStriped returns an empty store with n (power of two) stripes.
// Stripe count is an internal tuning knob: the logical contents,
// Snapshot and Checksum of a store are identical for every n.
func newStriped(n int) *Store {
	if n <= 0 || n&(n-1) != 0 {
		panic(fmt.Sprintf("store: stripe count %d is not a positive power of two", n))
	}
	s := &Store{stripes: make([]stripe, n), shift: 64}
	for nn := n; nn > 1; nn >>= 1 {
		s.shift--
	}
	for i := range s.stripes {
		st := &s.stripes[i]
		st.items = make(map[ObjectID]*item)
		st.deleted = make(map[ObjectID]uint64)
		// The published table never aliases the authoritative maps: those
		// are mutated in place under mu while readers walk the table.
		st.tbl.Store(&roTable{items: make(map[ObjectID]*item), deleted: make(map[ObjectID]uint64)})
	}
	return s
}

// republish rebuilds the stripe's published table from the authoritative
// maps. Caller holds the stripe write lock and must have bumped
// structGen before mutating the maps (bump → mutate → republish is the
// order the lock-free miss check relies on). The published maps are
// fresh copies: after publication nothing writes them.
func (st *stripe) republish() {
	items := make(map[ObjectID]*item, len(st.items))
	for id, it := range st.items {
		items[id] = it
	}
	deleted := make(map[ObjectID]uint64, len(st.deleted))
	for id, ts := range st.deleted {
		deleted[id] = ts
	}
	st.tbl.Store(&roTable{items: items, deleted: deleted, gen: st.structGen.Load()})
}

// lookup is the lock-free read entry: it resolves id to its current
// version, or reports how the miss should be handled.
//
//	it != nil, v != nil  — the item exists; v is its state (linearized
//	                       at the version load)
//	ok == true, v == nil — the item definitely does not exist (tombstone
//	                       or a miss in a table proven current)
//	ok == false          — a structural change is in flight; the caller
//	                       must fall back to the locked path
func (st *stripe) lookup(id ObjectID) (it *item, v *version, ok bool) {
	tbl := st.tbl.Load()
	if it = tbl.items[id]; it != nil {
		if v = it.live(); v != nil {
			return it, v, true
		}
		// Tombstoned: the deletion is definitive even if the table is
		// stale — versions only move forward.
		return nil, nil, true
	}
	// Miss. If no structural change has happened since this table was
	// published, the miss is real; otherwise an insert may be in flight
	// and only the locked path can answer.
	if st.structGen.Load() == tbl.gen {
		return nil, nil, true
	}
	return nil, nil, false
}

// stripeIndex hashes an object id to its stripe. Fibonacci hashing keeps
// strided id patterns (sequential keys, per-shard key spaces) spread
// evenly instead of piling onto a few stripes.
func (s *Store) stripeIndex(id ObjectID) int {
	return int((uint64(id) * 0x9E3779B97F4A7C15) >> s.shift)
}

// StripeOf reports the stripe index id maps to in a store with n lock
// stripes (n must be a positive power of two). It is the same Fibonacci
// hash stripeIndex uses, exported so the checkpoint format can route a
// logged record to its stripe watermark without a Store in hand.
func StripeOf(id ObjectID, n int) int {
	shift := uint(64)
	for ; n > 1; n >>= 1 {
		shift--
	}
	return int((uint64(id) * 0x9E3779B97F4A7C15) >> shift)
}

// NumStripes reports the store's lock-stripe count.
func (s *Store) NumStripes() int { return len(s.stripes) }

func (s *Store) stripeFor(id ObjectID) *stripe {
	return &s.stripes[s.stripeIndex(id)]
}

// Len reports the number of objects.
func (s *Store) Len() int {
	n := 0
	for i := range s.stripes {
		st := &s.stripes[i]
		st.mu.RLock()
		n += len(st.items)
		st.mu.RUnlock()
	}
	return n
}

// Get returns a copy of the object's value. It reports false if the
// object does not exist. The common case is two atomic loads plus the
// copy; only a read racing a structural change on its stripe touches the
// stripe lock, and even then the value is cloned after the lock is
// released (installed values are immutable, so the clone needs no lock).
func (s *Store) Get(id ObjectID) ([]byte, bool) {
	st := s.stripeFor(id)
	if _, v, ok := st.lookup(id); ok {
		if v == nil {
			return nil, false
		}
		return cloneBytes(v.value), true
	}
	v := st.lockedVersion(id)
	if v == nil {
		return nil, false
	}
	return cloneBytes(v.value), true
}

// lockedVersion is the structural-change-window fallback: resolve the
// item under the stripe read lock. The returned version is immutable, so
// callers clone or decode it after the lock is released.
func (st *stripe) lockedVersion(id ObjectID) *version {
	st.mu.RLock()
	it, ok := st.items[id]
	var v *version
	if ok {
		v = it.live()
	}
	st.mu.RUnlock()
	return v
}

// View returns the object's value without copying. The returned slice is
// owned by the store and MUST NOT be modified by the caller. Because
// installed values are never mutated in place, the slice stays readable
// indefinitely, but it no longer reflects the current database state
// once a later transaction overwrites the object — callers should decode
// and discard it. Use Get where the caller needs an owned copy.
func (s *Store) View(id ObjectID) ([]byte, bool) {
	st := s.stripeFor(id)
	if _, v, ok := st.lookup(id); ok {
		if v == nil {
			return nil, false
		}
		return v.value, true
	}
	v := st.lockedVersion(id)
	if v == nil {
		return nil, false
	}
	return v.value, true
}

// GetMeta returns a copy of the value together with the item's read and
// write timestamps.
func (s *Store) GetMeta(id ObjectID) (value []byte, readTS, writeTS uint64, ok bool) {
	value, readTS, writeTS, ok = s.ViewMeta(id)
	if ok {
		value = cloneBytes(value)
	}
	return value, readTS, writeTS, ok
}

// ViewMeta is GetMeta without the value copy; the View borrowing
// contract applies to the returned slice. (value, writeTS) come from one
// immutable version — a single atomic load — so the pair can never tear;
// readTS is an independently monotone atomic read beside it.
func (s *Store) ViewMeta(id ObjectID) (value []byte, readTS, writeTS uint64, ok bool) {
	st := s.stripeFor(id)
	if it, v, fastOK := st.lookup(id); fastOK {
		if v == nil {
			return nil, 0, 0, false
		}
		return v.value, it.readTS.Load(), v.writeTS, true
	}
	st.mu.RLock()
	it, ok := st.items[id]
	var v *version
	if ok {
		v = it.live()
	}
	st.mu.RUnlock()
	if v == nil {
		return nil, 0, 0, false
	}
	return v.value, it.readTS.Load(), v.writeTS, true
}

// Timestamps returns the item's read and write timestamps without copying
// the value.
func (s *Store) Timestamps(id ObjectID) (readTS, writeTS uint64, ok bool) {
	_, readTS, writeTS, ok = s.ViewMeta(id)
	return readTS, writeTS, ok
}

// ReadInfo returns the item's timestamps together with its tombstone
// timestamp — the copy-free read the validation path performs per
// write-set member. exists reports whether the item is present;
// deletedTS is meaningful either way. Lock-free in the common case; a
// racing structural change falls back to the stripe lock so the answer
// is never built from a half-published table.
func (s *Store) ReadInfo(id ObjectID) (readTS, writeTS, deletedTS uint64, exists bool) {
	st := s.stripeFor(id)
	tbl := st.tbl.Load()
	if it := tbl.items[id]; it != nil {
		if v := it.live(); v != nil {
			// Live item: its version is authoritative; the tombstone
			// entry (from a deletion before this item's re-creation) only
			// matters if the table is still current.
			if st.structGen.Load() == tbl.gen {
				return it.readTS.Load(), v.writeTS, tbl.deleted[id], true
			}
		} else if v := it.ver.Load(); v != nil && v.deletedTS != 0 {
			// Tombstoned version: definitive even from a stale table.
			return 0, 0, v.deletedTS, false
		}
	} else if st.structGen.Load() == tbl.gen {
		return 0, 0, tbl.deleted[id], false
	}
	st.mu.RLock()
	deletedTS = st.deleted[id]
	it, exists := st.items[id]
	if exists {
		if v := it.live(); v != nil {
			readTS, writeTS = it.readTS.Load(), v.writeTS
		} else {
			exists = false
		}
	}
	st.mu.RUnlock()
	return readTS, writeTS, deletedTS, exists
}

// Put inserts or replaces an object outside of any transaction (bulk
// load). Timestamps are reset to zero.
func (s *Store) Put(id ObjectID, value []byte) {
	st := s.stripeFor(id)
	st.mu.Lock()
	st.epoch++
	v := &version{value: cloneBytes(value)}
	if it, ok := st.items[id]; ok {
		it.ver.Store(v)
		it.readTS.Store(0)
	} else {
		it = &item{}
		it.ver.Store(v)
		st.structGen.Add(1)
		st.items[id] = it
		st.republish()
	}
	st.mu.Unlock()
}

// Apply installs a validated transactional write: the after image becomes
// the current value and the item's write timestamp advances to commitTS.
// Apply creates the object if it does not exist (an insert).
func (s *Store) Apply(id ObjectID, value []byte, commitTS uint64) {
	st := s.stripeFor(id)
	st.mu.Lock()
	st.apply(id, value, commitTS)
	st.mu.Unlock()
}

// apply is Apply with the stripe lock held. Writes install in
// timestamp order regardless of arrival order: when validated write
// phases run concurrently, a transaction with a lower commit timestamp
// may reach the stripe after one with a higher timestamp, and its
// after image must not clobber the newer value (last-writer-wins by
// commitTS, mirroring applyDelete's tombstone check). An update of an
// existing item publishes one fresh version through the item's pointer —
// the structure is untouched, so no table rebuild happens on the
// steady-state write path.
func (st *stripe) apply(id ObjectID, value []byte, commitTS uint64) {
	st.epoch++ // conservative: count guarded no-ops too; a spurious bump only costs a copy
	if st.deleted[id] > commitTS {
		return // deleted by a newer transaction; do not resurrect
	}
	it, ok := st.items[id]
	if !ok {
		it = &item{}
		it.ver.Store(&version{value: cloneBytes(value), writeTS: commitTS})
		st.structGen.Add(1)
		st.items[id] = it
		st.republish()
		return
	}
	if cur := it.ver.Load(); cur == nil || commitTS >= cur.writeTS {
		it.ver.Store(&version{value: cloneBytes(value), writeTS: commitTS})
	}
}

// ObserveRead records that a transaction with the given commit timestamp
// read the object, advancing the item's read timestamp. It is a
// lock-free CAS-max: the read timestamp is advisory metadata for
// validation (monotone, independent of the value), so it needs neither
// the stripe lock nor a fresh version.
func (s *Store) ObserveRead(id ObjectID, commitTS uint64) {
	st := s.stripeFor(id)
	it, v, ok := st.lookup(id)
	if !ok {
		st.mu.RLock()
		if cur, found := st.items[id]; found {
			it, v = cur, cur.live()
		}
		st.mu.RUnlock()
	}
	if it == nil || v == nil {
		return
	}
	for {
		cur := it.readTS.Load()
		if commitTS <= cur {
			return
		}
		if it.readTS.CompareAndSwap(cur, commitTS) {
			return
		}
	}
}

// ApplyDelete installs a validated transactional deletion. Unlike
// Delete, it remembers the deletion timestamp as a tombstone so that a
// log replay applying groups out of timestamp order cannot resurrect the
// object with an older write. Tombstones are retained until the next
// LoadSnapshot — bounded in practice by the checkpoint cycle, which
// replaces the store contents and clears them.
func (s *Store) ApplyDelete(id ObjectID, commitTS uint64) {
	st := s.stripeFor(id)
	st.mu.Lock()
	st.applyDelete(id, commitTS)
	st.mu.Unlock()
}

// applyDelete is ApplyDelete with the stripe lock held. The removed
// item's version is replaced with a tombstone version first, so readers
// holding a stale published table observe the deletion too.
func (st *stripe) applyDelete(id ObjectID, commitTS uint64) {
	st.epoch++
	it, ok := st.items[id]
	if ok {
		if v := it.ver.Load(); v != nil && v.deletedTS == 0 && v.writeTS > commitTS {
			return // a newer write already superseded this deletion
		}
		it.ver.Store(&version{deletedTS: commitTS})
	}
	st.structGen.Add(1)
	delete(st.items, id)
	if commitTS > st.deleted[id] {
		st.deleted[id] = commitTS
	}
	st.republish()
}

// ApplyGroup installs one committed transaction's writes and deletes as
// a single atomic step with respect to locked whole-store readers: every
// stripe the group touches is locked (in ascending stripe order, so
// concurrent groups and whole-store readers cannot deadlock) before the
// first update and released after the last, so a concurrent Snapshot
// sees either none or all of the group. Lock-free single-item readers
// observe each item's new version the moment it is stored — per-item
// linearizable, but a multi-read sequence can straddle the group; the
// concurrency controller's validation (and the read-only fast path's
// revalidation against the committed-write overlay) is what restores
// transaction-level atomicity for them. Ops are applied in slice order,
// so a group may write and then delete (or re-write) the same object
// with last-op-wins semantics.
func (s *Store) ApplyGroup(ops []Op, commitTS uint64) {
	switch len(ops) {
	case 0:
		return
	case 1: // single-object fast path: plain single-stripe locking
		if ops[0].Delete {
			s.ApplyDelete(ops[0].ID, commitTS)
		} else {
			s.Apply(ops[0].ID, ops[0].Value, commitTS)
		}
		return
	}
	var touched uint64 // stripe bitmask; DefaultStripes and every test count fit in 64 bits
	if len(s.stripes) <= 64 {
		for i := range ops {
			touched |= 1 << uint(s.stripeIndex(ops[i].ID))
		}
		for i := range s.stripes {
			if touched&(1<<uint(i)) != 0 {
				s.stripes[i].mu.Lock()
			}
		}
	} else {
		touched = ^uint64(0)
		for i := range s.stripes {
			s.stripes[i].mu.Lock()
		}
	}
	for i := range ops {
		st := s.stripeFor(ops[i].ID)
		if ops[i].Delete {
			st.applyDelete(ops[i].ID, commitTS)
		} else {
			st.apply(ops[i].ID, ops[i].Value, commitTS)
		}
	}
	if len(s.stripes) <= 64 {
		for i := range s.stripes {
			if touched&(1<<uint(i)) != 0 {
				s.stripes[i].mu.Unlock()
			}
		}
	} else {
		for i := range s.stripes {
			s.stripes[i].mu.Unlock()
		}
	}
}

// DeletedAt reports the tombstone timestamp for id (zero if never
// transactionally deleted).
func (s *Store) DeletedAt(id ObjectID) uint64 {
	st := s.stripeFor(id)
	tbl := st.tbl.Load()
	ts, present := tbl.deleted[id]
	if st.structGen.Load() == tbl.gen {
		return ts
	}
	_ = present
	st.mu.RLock()
	ts = st.deleted[id]
	st.mu.RUnlock()
	return ts
}

// Delete removes an object. It reports whether the object existed.
func (s *Store) Delete(id ObjectID) bool {
	st := s.stripeFor(id)
	st.mu.Lock()
	it, ok := st.items[id]
	if ok {
		it.ver.Store(&version{deletedTS: ^uint64(0)}) // non-transactional removal: stale tables must still see it gone
		st.structGen.Add(1)
		delete(st.items, id)
		st.epoch++
		st.republish()
	}
	st.mu.Unlock()
	return ok
}

// rlockAll / runlockAll take every stripe read lock in ascending order —
// the whole-store consistent read point used by Snapshot, Checksum and
// IDs.
func (s *Store) rlockAll() {
	for i := range s.stripes {
		s.stripes[i].mu.RLock()
	}
}

func (s *Store) runlockAll() {
	for i := range s.stripes {
		s.stripes[i].mu.RUnlock()
	}
}

// IDs returns all object ids in ascending order.
func (s *Store) IDs() []ObjectID {
	s.rlockAll()
	ids := make([]ObjectID, 0, s.lenLocked())
	for i := range s.stripes {
		for id := range s.stripes[i].items {
			ids = append(ids, id)
		}
	}
	s.runlockAll()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// lenLocked sums item counts; every stripe lock must be held.
func (s *Store) lenLocked() int {
	n := 0
	for i := range s.stripes {
		n += len(s.stripes[i].items)
	}
	return n
}

// Snapshot returns a consistent copy of the whole database in ascending
// id order, suitable for state transfer to a rejoining mirror node. All
// stripes are read-locked for the duration, so the copy is a single
// point in time: it contains every group applied before it and none
// applied after.
func (s *Store) Snapshot() []Record {
	s.rlockAll()
	recs := make([]Record, 0, s.lenLocked())
	for i := range s.stripes {
		for id, it := range s.stripes[i].items {
			if v := it.live(); v != nil {
				recs = append(recs, Record{ID: id, Value: cloneBytes(v.value), WriteTS: v.writeTS})
			}
		}
	}
	s.runlockAll()
	sort.Slice(recs, func(i, j int) bool { return recs[i].ID < recs[j].ID })
	return recs
}

// StripeEpoch reports stripe i's change epoch: a counter bumped under
// the stripe lock on every content mutation (transactional applies,
// bulk loads, deletes, snapshot loads). Two equal readings with no
// mutation in between mean the stripe's contents are unchanged — the
// dirty-stripe test the incremental checkpointer uses. (ObserveRead is
// deliberately not a mutation: read-timestamp advances carry no
// recoverable state, exactly as before the lock-free read path.)
func (s *Store) StripeEpoch(i int) uint64 {
	st := &s.stripes[i]
	st.mu.RLock()
	e := st.epoch
	st.mu.RUnlock()
	return e
}

// SnapshotStripe copies stripe i alone — the fuzzy checkpointer's unit
// of work: only this stripe's lock is held, so commits touching other
// stripes proceed while the copy runs. The returned records are sorted
// by id and their epoch is the stripe's change epoch at the copy point.
//
// The Value slices are borrowed, not copied (the View contract):
// installed values are immutable, so the caller may encode them after
// the lock is released, which keeps the per-stripe pause to the map
// walk instead of the full value copy. Callers that mutate or retain
// them must clone.
func (s *Store) SnapshotStripe(i int) ([]Record, uint64) {
	st := &s.stripes[i]
	st.mu.RLock()
	recs := make([]Record, 0, len(st.items))
	for id, it := range st.items {
		if v := it.live(); v != nil {
			recs = append(recs, Record{ID: id, Value: v.value, WriteTS: v.writeTS})
		}
	}
	epoch := st.epoch
	st.mu.RUnlock()
	sort.Slice(recs, func(a, b int) bool { return recs[a].ID < recs[b].ID })
	return recs, epoch
}

// LoadSnapshot replaces the store contents with the given records.
func (s *Store) LoadSnapshot(recs []Record) {
	for i := range s.stripes {
		s.stripes[i].mu.Lock()
	}
	for i := range s.stripes {
		st := &s.stripes[i]
		// Tombstone every replaced item so stale published tables do not
		// resurrect pre-snapshot state for lock-free readers.
		for _, it := range st.items {
			it.ver.Store(&version{deletedTS: ^uint64(0)})
		}
		st.structGen.Add(1)
		st.items = make(map[ObjectID]*item)
		st.deleted = make(map[ObjectID]uint64)
		st.epoch++
	}
	for _, r := range recs {
		st := s.stripeFor(r.ID)
		it := &item{}
		it.ver.Store(&version{value: cloneBytes(r.Value), writeTS: r.WriteTS})
		st.items[r.ID] = it
	}
	for i := range s.stripes {
		s.stripes[i].republish()
		s.stripes[i].mu.Unlock()
	}
}

// Checksum returns a CRC-32 over (id, value) pairs in ascending id order.
// Two stores holding the same logical database produce the same checksum
// regardless of stripe count; timestamps are deliberately excluded since
// a mirror rebuilt from logs may carry different read timestamps.
func (s *Store) Checksum() uint32 {
	s.rlockAll()
	defer s.runlockAll()
	ids := make([]ObjectID, 0, s.lenLocked())
	for i := range s.stripes {
		for id := range s.stripes[i].items {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	h := crc32.NewIEEE()
	var buf [8]byte
	for _, id := range ids {
		putUint64(buf[:], uint64(id))
		h.Write(buf[:])
		if v := s.stripeFor(id).items[id].live(); v != nil {
			h.Write(v.value)
		}
		h.Write([]byte{0xff}) // separator so (1,"ab")+(2,"") != (1,"a")+(2,"b")
	}
	return h.Sum32()
}

func (s *Store) String() string {
	return fmt.Sprintf("store{%d objects}", s.Len())
}

func cloneBytes(b []byte) []byte {
	if b == nil {
		return nil
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

func putUint64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}
