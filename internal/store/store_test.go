package store

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"
)

func TestGetMissing(t *testing.T) {
	s := New()
	if _, ok := s.Get(42); ok {
		t.Fatal("Get on empty store reported ok")
	}
	if _, _, _, ok := s.GetMeta(42); ok {
		t.Fatal("GetMeta on empty store reported ok")
	}
	if _, _, ok := s.Timestamps(42); ok {
		t.Fatal("Timestamps on empty store reported ok")
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	s := New()
	s.Put(1, []byte("hello"))
	v, ok := s.Get(1)
	if !ok || string(v) != "hello" {
		t.Fatalf("Get = %q, %v", v, ok)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestGetReturnsCopy(t *testing.T) {
	s := New()
	s.Put(1, []byte("abc"))
	v, _ := s.Get(1)
	v[0] = 'X'
	v2, _ := s.Get(1)
	if string(v2) != "abc" {
		t.Fatalf("mutating returned slice leaked into store: %q", v2)
	}
}

func TestPutCopiesInput(t *testing.T) {
	s := New()
	in := []byte("abc")
	s.Put(1, in)
	in[0] = 'X'
	v, _ := s.Get(1)
	if string(v) != "abc" {
		t.Fatalf("mutating input slice leaked into store: %q", v)
	}
}

func TestApplyAdvancesWriteTS(t *testing.T) {
	s := New()
	s.Put(1, []byte("v0"))
	s.Apply(1, []byte("v1"), 10)
	_, wts, _ := mustTS(t, s, 1)
	if wts != 10 {
		t.Fatalf("writeTS = %d, want 10", wts)
	}
	// An older (already superseded) apply must not move writeTS backwards.
	s.Apply(1, []byte("v2"), 5)
	_, wts, _ = mustTS(t, s, 1)
	if wts != 10 {
		t.Fatalf("writeTS regressed to %d", wts)
	}
	// ... nor clobber the newer value: write phases of concurrently
	// validated transactions may reach the stripe out of timestamp
	// order, and the store keeps last-writer-wins by commitTS.
	if v, _ := s.Get(1); string(v) != "v1" {
		t.Fatalf("stale apply installed %q over newer value", v)
	}
}

func TestApplyInsertsMissing(t *testing.T) {
	s := New()
	s.Apply(7, []byte("new"), 3)
	v, ok := s.Get(7)
	if !ok || string(v) != "new" {
		t.Fatalf("Apply did not insert: %q %v", v, ok)
	}
}

func TestObserveRead(t *testing.T) {
	s := New()
	s.Put(1, []byte("v"))
	s.ObserveRead(1, 7)
	rts, _, _ := mustTS(t, s, 1)
	if rts != 7 {
		t.Fatalf("readTS = %d, want 7", rts)
	}
	s.ObserveRead(1, 3) // must not regress
	rts, _, _ = mustTS(t, s, 1)
	if rts != 7 {
		t.Fatalf("readTS regressed to %d", rts)
	}
	s.ObserveRead(99, 5) // missing object: no-op
}

func TestDelete(t *testing.T) {
	s := New()
	s.Put(1, []byte("v"))
	if !s.Delete(1) {
		t.Fatal("Delete existing reported false")
	}
	if s.Delete(1) {
		t.Fatal("Delete missing reported true")
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d after delete", s.Len())
	}
}

func TestIDsSorted(t *testing.T) {
	s := New()
	for _, id := range []ObjectID{5, 1, 9, 3} {
		s.Put(id, nil)
	}
	ids := s.IDs()
	want := []ObjectID{1, 3, 5, 9}
	if len(ids) != len(want) {
		t.Fatalf("IDs = %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("IDs = %v, want %v", ids, want)
		}
	}
}

func TestSnapshotLoadSnapshotRoundTrip(t *testing.T) {
	s := New()
	for i := 0; i < 100; i++ {
		s.Put(ObjectID(i), []byte(fmt.Sprintf("value-%d", i)))
	}
	s.Apply(50, []byte("updated"), 99)

	snap := s.Snapshot()
	s2 := New()
	s2.LoadSnapshot(snap)

	if s.Checksum() != s2.Checksum() {
		t.Fatal("checksums differ after snapshot round trip")
	}
	_, wts, ok := s2.Timestamps(50)
	if !ok || wts != 99 {
		t.Fatalf("writeTS not carried through snapshot: %d %v", wts, ok)
	}
}

func TestSnapshotIsDeepCopy(t *testing.T) {
	s := New()
	s.Put(1, []byte("abc"))
	snap := s.Snapshot()
	snap[0].Value[0] = 'X'
	v, _ := s.Get(1)
	if string(v) != "abc" {
		t.Fatal("snapshot aliases store memory")
	}
}

func TestChecksumDistinguishesBoundaries(t *testing.T) {
	a := New()
	a.Put(1, []byte("ab"))
	a.Put(2, []byte(""))
	b := New()
	b.Put(1, []byte("a"))
	b.Put(2, []byte("b"))
	if a.Checksum() == b.Checksum() {
		t.Fatal("checksum collision on shifted boundaries")
	}
}

func TestChecksumIgnoresReadTS(t *testing.T) {
	a := New()
	a.Put(1, []byte("v"))
	b := New()
	b.Put(1, []byte("v"))
	b.ObserveRead(1, 123)
	if a.Checksum() != b.Checksum() {
		t.Fatal("checksum should not depend on read timestamps")
	}
}

func TestStringer(t *testing.T) {
	s := New()
	s.Put(1, nil)
	if got := s.String(); got != "store{1 objects}" {
		t.Fatalf("String = %q", got)
	}
}

// Property: applying any sequence of writes leaves exactly the last value
// per object visible, regardless of interleaving with reads.
func TestPropertyLastWriteWins(t *testing.T) {
	f := func(writes []struct {
		ID  uint8
		Val []byte
	}) bool {
		s := New()
		last := map[ObjectID][]byte{}
		for i, w := range writes {
			id := ObjectID(w.ID)
			s.Apply(id, w.Val, uint64(i+1))
			last[id] = w.Val
		}
		for id, want := range last {
			got, ok := s.Get(id)
			if !ok || !bytes.Equal(got, want) {
				return false
			}
		}
		return s.Len() == len(last)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: snapshot/load preserves checksum equality for arbitrary
// contents.
func TestPropertySnapshotPreservesChecksum(t *testing.T) {
	f := func(pairs map[uint16][]byte) bool {
		s := New()
		for id, v := range pairs {
			s.Put(ObjectID(id), v)
		}
		s2 := New()
		s2.LoadSnapshot(s.Snapshot())
		return s.Checksum() == s2.Checksum() && s.Len() == s2.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := New()
	for i := 0; i < 64; i++ {
		s.Put(ObjectID(i), []byte{byte(i)})
	}
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		g := g
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 1000; i++ {
				id := ObjectID((g*31 + i) % 64)
				if g%2 == 0 {
					s.Apply(id, []byte{byte(i)}, uint64(i))
				} else {
					s.Get(id)
					s.ObserveRead(id, uint64(i))
				}
			}
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
}

func mustTS(t *testing.T, s *Store, id ObjectID) (rts, wts uint64, ok bool) {
	t.Helper()
	rts, wts, ok = s.Timestamps(id)
	if !ok {
		t.Fatalf("object %d missing", id)
	}
	return
}

func TestApplyDeleteTombstone(t *testing.T) {
	s := New()
	s.Put(1, []byte("v"))
	s.Apply(1, []byte("v2"), 5)
	s.ApplyDelete(1, 10)
	if _, ok := s.Get(1); ok {
		t.Fatal("delete did not remove")
	}
	// An older write must not resurrect the object.
	s.Apply(1, []byte("stale"), 7)
	if _, ok := s.Get(1); ok {
		t.Fatal("older write resurrected a deleted object")
	}
	// A newer write recreates it.
	s.Apply(1, []byte("fresh"), 12)
	v, ok := s.Get(1)
	if !ok || string(v) != "fresh" {
		t.Fatalf("newer write blocked: %q %v", v, ok)
	}
	if s.DeletedAt(1) != 10 {
		t.Fatalf("DeletedAt = %d", s.DeletedAt(1))
	}
}

func TestApplyDeleteSupersededByNewerWrite(t *testing.T) {
	s := New()
	s.Apply(1, []byte("new"), 20)
	s.ApplyDelete(1, 10) // an older delete replayed late
	v, ok := s.Get(1)
	if !ok || string(v) != "new" {
		t.Fatal("older delete removed a newer write")
	}
}
