package store

import (
	"fmt"
	"sort"
	"testing"
)

func TestStripeOfDeterministicAndInRange(t *testing.T) {
	for _, n := range []int{1, 2, 8, 64, 1024} {
		for id := ObjectID(0); id < 5000; id += 13 {
			s := StripeOf(id, n)
			if s < 0 || s >= n {
				t.Fatalf("StripeOf(%d, %d) = %d out of range", id, n, s)
			}
			if s != StripeOf(id, n) {
				t.Fatalf("StripeOf(%d, %d) not deterministic", id, n)
			}
		}
	}
}

// TestStripeOfMatchesStore: the package-level function is the store's own
// placement — the property a checkpoint's watermark vector depends on
// when it is decoded by a process whose store object doesn't exist yet.
func TestStripeOfMatchesStore(t *testing.T) {
	db := New()
	n := db.NumStripes()
	for id := ObjectID(0); id < 2000; id += 7 {
		db.Put(id, []byte("x"))
		stripe := StripeOf(id, n)
		recs, _ := db.SnapshotStripe(stripe)
		found := false
		for _, r := range recs {
			if r.ID == id {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("object %d not in SnapshotStripe(%d)", id, stripe)
		}
	}
}

func TestStripeEpochAdvancesOnMutation(t *testing.T) {
	db := New()
	id := ObjectID(42)
	stripe := StripeOf(id, db.NumStripes())
	e0 := db.StripeEpoch(stripe)
	db.Put(id, []byte("a"))
	e1 := db.StripeEpoch(stripe)
	if e1 <= e0 {
		t.Fatalf("Put did not advance epoch: %d -> %d", e0, e1)
	}
	db.Apply(id, []byte("b"), 5)
	e2 := db.StripeEpoch(stripe)
	if e2 <= e1 {
		t.Fatalf("Apply did not advance epoch: %d -> %d", e1, e2)
	}
	db.ApplyDelete(id, 6)
	e3 := db.StripeEpoch(stripe)
	if e3 <= e2 {
		t.Fatalf("ApplyDelete did not advance epoch: %d -> %d", e2, e3)
	}
	// Reads leave the epoch alone.
	db.Get(id)
	_, _ = db.SnapshotStripe(stripe)
	if db.StripeEpoch(stripe) != e3 {
		t.Fatal("read advanced the epoch")
	}
	// A miss delete leaves the epoch alone.
	db.Delete(ObjectID(1 << 50))
	maxStripe := StripeOf(ObjectID(1<<50), db.NumStripes())
	if maxStripe == stripe && db.StripeEpoch(stripe) != e3 {
		t.Fatal("no-op delete advanced the epoch")
	}
}

func TestSnapshotStripesCoverSnapshot(t *testing.T) {
	db := New()
	for i := 0; i < 500; i++ {
		db.Apply(ObjectID(i*17), []byte(fmt.Sprintf("v%d", i)), uint64(i+1))
	}
	var union []Record
	for i := 0; i < db.NumStripes(); i++ {
		recs, _ := db.SnapshotStripe(i)
		if !sort.SliceIsSorted(recs, func(a, b int) bool { return recs[a].ID < recs[b].ID }) {
			t.Fatalf("stripe %d snapshot not sorted", i)
		}
		for _, r := range recs {
			if StripeOf(r.ID, db.NumStripes()) != i {
				t.Fatalf("object %d reported by stripe %d, lives in %d",
					r.ID, i, StripeOf(r.ID, db.NumStripes()))
			}
		}
		union = append(union, recs...)
	}
	whole := db.Snapshot()
	if len(union) != len(whole) {
		t.Fatalf("stripe union has %d records, Snapshot has %d", len(union), len(whole))
	}
	restored := New()
	restored.LoadSnapshot(union)
	if restored.Checksum() != db.Checksum() {
		t.Fatal("union of stripe snapshots does not reproduce the store")
	}
}

func TestSnapshotStripeEpochConsistent(t *testing.T) {
	db := New()
	id := ObjectID(3)
	stripe := StripeOf(id, db.NumStripes())
	db.Put(id, []byte("a"))
	_, epoch := db.SnapshotStripe(stripe)
	if epoch != db.StripeEpoch(stripe) {
		t.Fatalf("snapshot epoch %d, live epoch %d", epoch, db.StripeEpoch(stripe))
	}
	db.Put(id, []byte("b"))
	if epoch == db.StripeEpoch(stripe) {
		t.Fatal("epoch did not move past the snapshot after a write")
	}
}
