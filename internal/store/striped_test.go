package store

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

// randOps generates a deterministic random operation sequence from seed:
// puts, transactional applies/deletes, bare deletes and multi-object
// groups over a small hot id range (so operations actually collide).
type storeOp struct {
	kind     int // 0 put, 1 apply, 2 applyDelete, 3 delete, 4 group
	id       ObjectID
	value    []byte
	commitTS uint64
	group    []Op
}

func randOps(seed int64, n int) []storeOp {
	rng := rand.New(rand.NewSource(seed))
	ops := make([]storeOp, n)
	val := func() []byte {
		b := make([]byte, rng.Intn(24))
		rng.Read(b)
		return b
	}
	for i := range ops {
		op := storeOp{
			kind:     rng.Intn(5),
			id:       ObjectID(rng.Intn(48)),
			commitTS: uint64(rng.Intn(64)),
		}
		switch op.kind {
		case 0, 1:
			op.value = val()
		case 4:
			g := make([]Op, 1+rng.Intn(6))
			for j := range g {
				g[j] = Op{ID: ObjectID(rng.Intn(48)), Delete: rng.Intn(4) == 0}
				if !g[j].Delete {
					g[j].Value = val()
				}
			}
			op.group = g
		}
		ops[i] = op
	}
	return ops
}

func runOp(op storeOp, striped *Store, ref *lockedStore) {
	switch op.kind {
	case 0:
		striped.Put(op.id, op.value)
		ref.Put(op.id, op.value)
	case 1:
		striped.Apply(op.id, op.value, op.commitTS)
		ref.Apply(op.id, op.value, op.commitTS)
	case 2:
		striped.ApplyDelete(op.id, op.commitTS)
		ref.ApplyDelete(op.id, op.commitTS)
	case 3:
		striped.Delete(op.id)
		ref.Delete(op.id)
	case 4:
		striped.ApplyGroup(op.group, op.commitTS)
		ref.ApplyGroup(op.group, op.commitTS)
	}
}

// TestPropertyStripedMatchesReference drives random operation sequences
// through the striped store and the single-mutex reference model and
// requires identical observable state: Snapshot, Checksum, Len, Get and
// tombstones.
func TestPropertyStripedMatchesReference(t *testing.T) {
	f := func(seed int64) bool {
		striped := New()
		ref := newLockedStore()
		for _, op := range randOps(seed, 300) {
			runOp(op, striped, ref)
		}
		if striped.Checksum() != ref.Checksum() {
			t.Logf("seed %d: checksum mismatch", seed)
			return false
		}
		if striped.Len() != ref.Len() {
			t.Logf("seed %d: len %d != %d", seed, striped.Len(), ref.Len())
			return false
		}
		ss, rs := striped.Snapshot(), ref.Snapshot()
		if len(ss) != len(rs) {
			return false
		}
		for i := range ss {
			if ss[i].ID != rs[i].ID || ss[i].WriteTS != rs[i].WriteTS || !bytes.Equal(ss[i].Value, rs[i].Value) {
				t.Logf("seed %d: snapshot record %d differs: %v vs %v", seed, i, ss[i], rs[i])
				return false
			}
		}
		for id := ObjectID(0); id < 48; id++ {
			sv, sok := striped.Get(id)
			rv, rok := ref.Get(id)
			if sok != rok || !bytes.Equal(sv, rv) {
				t.Logf("seed %d: Get(%d) differs", seed, id)
				return false
			}
			if striped.DeletedAt(id) != ref.DeletedAt(id) {
				t.Logf("seed %d: DeletedAt(%d) differs", seed, id)
				return false
			}
			srts, swts, _ := striped.Timestamps(id)
			rrts, rwts, _ := ref.Timestamps(id)
			if srts != rrts || swts != rwts {
				t.Logf("seed %d: Timestamps(%d) differ", seed, id)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyStripedMatchesReferenceConcurrent repeats the comparison
// with the op stream partitioned across goroutines whose ops never share
// an object id (so the final state is deterministic), while extra reader
// goroutines hammer Get/View/Snapshot/Checksum. Run under -race this
// checks the locking, not just the logic.
func TestPropertyStripedMatchesReferenceConcurrent(t *testing.T) {
	const writers = 4
	f := func(seed int64) bool {
		striped := New()
		ref := newLockedStore()
		perWriter := make([][]storeOp, writers)
		for w := 0; w < writers; w++ {
			ops := randOps(seed+int64(w), 150)
			// Shift ids into a per-writer key space: disjoint writers
			// commute, so striped and reference converge to the same
			// state regardless of interleaving.
			for i := range ops {
				ops[i].id = ops[i].id*writers + ObjectID(w)
				for j := range ops[i].group {
					ops[i].group[j].ID = ops[i].group[j].ID*writers + ObjectID(w)
				}
			}
			perWriter[w] = ops
		}
		stop := make(chan struct{})
		var readers sync.WaitGroup
		for r := 0; r < 2; r++ {
			readers.Add(1)
			go func(r int) {
				defer readers.Done()
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					id := ObjectID(i % (48 * writers))
					striped.Get(id)
					striped.View(id)
					striped.ViewMeta(id)
					striped.ReadInfo(id)
					if i%64 == 0 {
						striped.Snapshot()
						striped.Checksum()
					}
				}
			}(r)
		}
		var wg sync.WaitGroup
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(ops []storeOp) {
				defer wg.Done()
				for _, op := range ops {
					runOp(op, striped, ref)
				}
			}(perWriter[w])
		}
		wg.Wait()
		close(stop)
		readers.Wait()
		return striped.Checksum() == ref.Checksum() && striped.Len() == ref.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

// TestChecksumStableAcrossStripeCounts verifies that stripe count is
// invisible in the store's logical contents: the same operations produce
// the same Checksum, Snapshot and IDs at every power-of-two stripe count.
func TestChecksumStableAcrossStripeCounts(t *testing.T) {
	counts := []int{1, 2, 8, 64, 256}
	stores := make([]*Store, len(counts))
	for i, n := range counts {
		stores[i] = newStriped(n)
	}
	for _, op := range randOps(7, 500) {
		for _, s := range stores {
			switch op.kind {
			case 0:
				s.Put(op.id, op.value)
			case 1:
				s.Apply(op.id, op.value, op.commitTS)
			case 2:
				s.ApplyDelete(op.id, op.commitTS)
			case 3:
				s.Delete(op.id)
			case 4:
				s.ApplyGroup(op.group, op.commitTS)
			}
		}
	}
	want := stores[0].Checksum()
	wantSnap := stores[0].Snapshot()
	for i, s := range stores[1:] {
		if got := s.Checksum(); got != want {
			t.Fatalf("stripes=%d: checksum %08x != %08x (stripes=1)", counts[i+1], got, want)
		}
		snap := s.Snapshot()
		if len(snap) != len(wantSnap) {
			t.Fatalf("stripes=%d: snapshot length %d != %d", counts[i+1], len(snap), len(wantSnap))
		}
		for j := range snap {
			if snap[j].ID != wantSnap[j].ID || !bytes.Equal(snap[j].Value, wantSnap[j].Value) {
				t.Fatalf("stripes=%d: snapshot record %d differs", counts[i+1], j)
			}
		}
	}
}

// TestApplyGroupAtomicSnapshot checks the write-phase atomicity the
// engine relies on: a concurrent Snapshot sees either all of a group's
// writes or none. Each group writes the same sequence number to every
// member object; a snapshot observing two different sequence numbers
// would be a torn group.
func TestApplyGroupAtomicSnapshot(t *testing.T) {
	const objects = 16
	s := New()
	seq := func(n uint64) []byte {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], n)
		return b[:]
	}
	ops := make([]Op, objects)
	for i := range ops {
		ops[i] = Op{ID: ObjectID(i * 17), Value: seq(0)} // spread across stripes
	}
	s.ApplyGroup(ops, 1)

	stop := make(chan struct{})
	var torn error
	var mu sync.Mutex
	var readers sync.WaitGroup
	for r := 0; r < 3; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := s.Snapshot()
				if len(snap) != objects {
					mu.Lock()
					torn = fmt.Errorf("snapshot has %d objects, want %d", len(snap), objects)
					mu.Unlock()
					return
				}
				first := binary.LittleEndian.Uint64(snap[0].Value)
				for _, rec := range snap[1:] {
					if got := binary.LittleEndian.Uint64(rec.Value); got != first {
						mu.Lock()
						torn = fmt.Errorf("torn group: object %d at seq %d, object %d at seq %d", snap[0].ID, first, rec.ID, got)
						mu.Unlock()
						return
					}
				}
			}
		}()
	}
	for n := uint64(1); n <= 300; n++ {
		for i := range ops {
			ops[i].Value = seq(n)
		}
		s.ApplyGroup(ops, n+1)
	}
	close(stop)
	readers.Wait()
	if torn != nil {
		t.Fatal(torn)
	}
}

// TestViewBorrowedRead pins the View contract: no copy (the returned
// slice aliases store memory) and stale-but-stable after an overwrite.
func TestViewBorrowedRead(t *testing.T) {
	s := New()
	s.Put(1, []byte("before"))
	v, ok := s.View(1)
	if !ok || string(v) != "before" {
		t.Fatalf("View = %q, %v", v, ok)
	}
	s.Apply(1, []byte("after"), 1)
	if string(v) != "before" {
		t.Fatalf("borrowed slice mutated in place: %q", v)
	}
	now, _ := s.View(1)
	if string(now) != "after" {
		t.Fatalf("View after Apply = %q", now)
	}
	if _, _, _, ok := s.ViewMeta(99); ok {
		t.Fatal("ViewMeta reported ok for a missing object")
	}
	if _, ok := s.View(99); ok {
		t.Fatal("View reported ok for a missing object")
	}
}

// TestReadInfoMatchesSeparateReads checks ReadInfo against the separate
// Timestamps + DeletedAt reads it fuses.
func TestReadInfoMatchesSeparateReads(t *testing.T) {
	s := New()
	s.Apply(5, []byte("x"), 3)
	s.ObserveRead(5, 7)
	s.ApplyDelete(9, 4)
	for _, id := range []ObjectID{5, 9, 11} {
		rts, wts, ok := s.Timestamps(id)
		del := s.DeletedAt(id)
		gr, gw, gd, gok := s.ReadInfo(id)
		if gr != rts || gw != wts || gd != del || gok != ok {
			t.Fatalf("ReadInfo(%d) = (%d,%d,%d,%v), want (%d,%d,%d,%v)", id, gr, gw, gd, gok, rts, wts, del, ok)
		}
	}
}

func TestNewStripedRejectsBadCounts(t *testing.T) {
	for _, n := range []int{0, -1, 3, 48} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("newStriped(%d) did not panic", n)
				}
			}()
			newStriped(n)
		}()
	}
}
