package telecom

import (
	"fmt"

	"repro/internal/object"
	"repro/internal/store"
)

// Subscriber is the declared class for subscriber profiles — the second
// kind of data a number-translation service keeps besides routing
// entries, expressed through the object layer instead of hand-packed
// bytes.
var Subscriber = object.MustClass("Subscriber",
	object.Field{Name: "msisdn", Type: object.String},
	object.Field{Name: "name", Type: object.String},
	object.Field{Name: "balanceCents", Type: object.Int},
	object.Field{Name: "prepaid", Type: object.Bool},
	object.Field{Name: "creditLimitCents", Type: object.Int},
)

// SubscriberIDBase offsets subscriber objects away from routing entries
// in the flat id space (routing entries live at the number's value).
const SubscriberIDBase store.ObjectID = 1 << 40

// SubscriberID maps a subscriber index to its object id.
func SubscriberID(i int) store.ObjectID { return SubscriberIDBase + store.ObjectID(i) }

// NewSubscriber builds a subscriber profile object.
func NewSubscriber(msisdn, name string, prepaid bool, balanceCents int64) *object.Object {
	o := Subscriber.New()
	o.SetString("msisdn", msisdn)
	o.SetString("name", name)
	o.SetBool("prepaid", prepaid)
	o.SetInt("balanceCents", balanceCents)
	o.SetInt("creditLimitCents", 0)
	return o
}

// Charge debits a call charge from a subscriber profile encoding and
// returns the updated encoding — the read-modify-write body of a billing
// transaction. Prepaid subscribers cannot go below zero; postpaid ones
// may run to their credit limit (a negative balance).
func Charge(encoded []byte, cents int64) ([]byte, error) {
	if cents < 0 {
		return nil, fmt.Errorf("telecom: negative charge %d", cents)
	}
	o, err := Subscriber.Decode(encoded)
	if err != nil {
		return nil, err
	}
	balance, _ := o.Int("balanceCents")
	prepaid, _ := o.Bool("prepaid")
	limit, _ := o.Int("creditLimitCents")
	next := balance - cents
	if prepaid && next < 0 {
		return nil, fmt.Errorf("telecom: insufficient prepaid balance (%d < %d)", balance, cents)
	}
	if !prepaid && next < -limit {
		return nil, fmt.Errorf("telecom: credit limit exceeded (%d - %d < -%d)", balance, cents, limit)
	}
	o.SetInt("balanceCents", next)
	return o.Encode(), nil
}

// TopUp credits a subscriber profile encoding.
func TopUp(encoded []byte, cents int64) ([]byte, error) {
	if cents < 0 {
		return nil, fmt.Errorf("telecom: negative top-up %d", cents)
	}
	o, err := Subscriber.Decode(encoded)
	if err != nil {
		return nil, err
	}
	balance, _ := o.Int("balanceCents")
	o.SetInt("balanceCents", balance+cents)
	return o.Encode(), nil
}

// PopulateSubscribers loads n subscriber profiles, ids
// SubscriberID(0..n-1).
func PopulateSubscribers(db *store.Store, n int) {
	for i := 0; i < n; i++ {
		o := NewSubscriber(
			fmt.Sprintf("+35850%07d", i),
			fmt.Sprintf("Subscriber %d", i),
			i%2 == 0, // alternate prepaid/postpaid
			100_00,   // 100 units of balance
		)
		if i%2 == 1 {
			o.SetInt("creditLimitCents", 50_00)
		}
		db.Put(SubscriberID(i), o.Encode())
	}
}
