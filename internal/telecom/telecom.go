// Package telecom implements the number-translation service schema the
// paper's test database represents: intelligent-network (IN) numbers
// (e.g. freephone 0800 numbers) mapped to routing entries that resolve
// to a physical subscriber number, possibly time-of-day dependent.
//
// The schema is deliberately simple — it is the workload the RODAIN
// prototype served, not a full IN service layer — but it gives the
// examples and integration tests realistic keys, values and operations:
// Translate (read-only service provision) and UpdateRouting (update
// service provision).
package telecom

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/store"
)

// Entry is the routing record stored per service number.
type Entry struct {
	// Routed is the physical E.164 number calls are forwarded to.
	Routed string
	// Weight supports load-shared routing among destinations.
	Weight uint8
	// Active reports whether the service number is in service.
	Active bool
	// Version counts updates, so tests can check read-your-writes and
	// replica convergence.
	Version uint32
}

// ErrBadEntry reports an undecodable routing record.
var ErrBadEntry = errors.New("telecom: bad routing entry")

// Encode serializes e.
func Encode(e *Entry) []byte {
	buf := make([]byte, 0, 8+len(e.Routed))
	var hdr [6]byte
	binary.LittleEndian.PutUint32(hdr[0:], e.Version)
	hdr[4] = e.Weight
	if e.Active {
		hdr[5] = 1
	}
	buf = append(buf, hdr[:]...)
	return append(buf, e.Routed...)
}

// Decode parses a routing record.
func Decode(b []byte) (*Entry, error) {
	if len(b) < 6 {
		return nil, ErrBadEntry
	}
	return &Entry{
		Version: binary.LittleEndian.Uint32(b[0:]),
		Weight:  b[4],
		Active:  b[5] == 1,
		Routed:  string(b[6:]),
	}, nil
}

// NumberToID maps a service number (digits only) to an object id: the
// database is keyed directly by the number's integer value.
func NumberToID(number string) (store.ObjectID, error) {
	if number == "" {
		return 0, fmt.Errorf("telecom: empty number")
	}
	var v uint64
	for _, d := range number {
		if d < '0' || d > '9' {
			return 0, fmt.Errorf("telecom: non-digit %q in number %q", d, number)
		}
		v = v*10 + uint64(d-'0')
	}
	return store.ObjectID(v), nil
}

// IDToNumber renders an object id as the dialed service number with the
// 0800 service prefix.
func IDToNumber(id store.ObjectID) string {
	return fmt.Sprintf("0800%06d", uint64(id)%1000000)
}

// Populate loads n service numbers, ids 0..n-1, each routed to a
// deterministic subscriber number.
func Populate(db *store.Store, n int) {
	for i := 0; i < n; i++ {
		e := &Entry{
			Routed:  fmt.Sprintf("+35850%07d", i),
			Weight:  100,
			Active:  true,
			Version: 1,
		}
		db.Put(store.ObjectID(i), Encode(e))
	}
}

// Translate resolves a service number to its routing destination — the
// read-only service-provision operation. It is a plain helper over any
// read function, so it works against a transaction, a store, or a remote
// client.
func Translate(read func(store.ObjectID) ([]byte, bool), id store.ObjectID) (*Entry, error) {
	b, ok := read(id)
	if !ok {
		return nil, fmt.Errorf("telecom: number %s not provisioned", IDToNumber(id))
	}
	e, err := Decode(b)
	if err != nil {
		return nil, err
	}
	if !e.Active {
		return nil, fmt.Errorf("telecom: number %s out of service", IDToNumber(id))
	}
	return e, nil
}

// Reroute builds the updated routing record for an update
// service-provision transaction: same number, new destination, bumped
// version.
func Reroute(old *Entry, newDest string) *Entry {
	return &Entry{
		Routed:  newDest,
		Weight:  old.Weight,
		Active:  old.Active,
		Version: old.Version + 1,
	}
}
