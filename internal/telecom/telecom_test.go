package telecom

import (
	"testing"
	"testing/quick"

	"repro/internal/store"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	e := &Entry{Routed: "+358501234567", Weight: 42, Active: true, Version: 7}
	got, err := Decode(Encode(e))
	if err != nil {
		t.Fatal(err)
	}
	if *got != *e {
		t.Fatalf("round trip: %+v vs %+v", got, e)
	}
}

func TestPropertyEncodeDecode(t *testing.T) {
	f := func(routed string, weight uint8, active bool, version uint32) bool {
		e := &Entry{Routed: routed, Weight: weight, Active: active, Version: version}
		got, err := Decode(Encode(e))
		return err == nil && *got == *e
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeShort(t *testing.T) {
	if _, err := Decode([]byte{1, 2}); err != ErrBadEntry {
		t.Fatalf("err = %v", err)
	}
}

func TestNumberToID(t *testing.T) {
	id, err := NumberToID("0800123456")
	if err != nil || id != 800123456 {
		t.Fatalf("id = %d err = %v", id, err)
	}
	if _, err := NumberToID("080o1"); err == nil {
		t.Fatal("non-digit accepted")
	}
	if _, err := NumberToID(""); err == nil {
		t.Fatal("empty number accepted")
	}
}

func TestIDToNumber(t *testing.T) {
	if got := IDToNumber(42); got != "0800000042" {
		t.Fatalf("IDToNumber = %q", got)
	}
}

func TestPopulateAndTranslate(t *testing.T) {
	db := store.New()
	Populate(db, 100)
	if db.Len() != 100 {
		t.Fatalf("Len = %d", db.Len())
	}
	e, err := Translate(db.Get, 7)
	if err != nil {
		t.Fatal(err)
	}
	if e.Routed != "+358500000007" || !e.Active || e.Version != 1 {
		t.Fatalf("entry = %+v", e)
	}
	if _, err := Translate(db.Get, 1000); err == nil {
		t.Fatal("unprovisioned number translated")
	}
}

func TestTranslateInactive(t *testing.T) {
	db := store.New()
	db.Put(1, Encode(&Entry{Routed: "+3585", Active: false, Version: 1}))
	if _, err := Translate(db.Get, 1); err == nil {
		t.Fatal("out-of-service number translated")
	}
}

func TestTranslateCorrupt(t *testing.T) {
	db := store.New()
	db.Put(1, []byte{1})
	if _, err := Translate(db.Get, 1); err == nil {
		t.Fatal("corrupt entry translated")
	}
}

func TestReroute(t *testing.T) {
	old := &Entry{Routed: "+111", Weight: 5, Active: true, Version: 3}
	got := Reroute(old, "+222")
	if got.Routed != "+222" || got.Version != 4 || got.Weight != 5 || !got.Active {
		t.Fatalf("rerouted = %+v", got)
	}
}

func TestSubscriberChargeAndTopUp(t *testing.T) {
	o := NewSubscriber("+358501", "Alice", true, 1000)
	enc := o.Encode()

	charged, err := Charge(enc, 300)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Subscriber.Decode(charged)
	if err != nil {
		t.Fatal(err)
	}
	balance, _ := back.Int("balanceCents")
	if balance != 700 {
		t.Fatalf("balance = %d", balance)
	}

	topped, err := TopUp(charged, 500)
	if err != nil {
		t.Fatal(err)
	}
	back, _ = Subscriber.Decode(topped)
	balance, _ = back.Int("balanceCents")
	if balance != 1200 {
		t.Fatalf("balance after top-up = %d", balance)
	}
}

func TestPrepaidCannotOverdraw(t *testing.T) {
	enc := NewSubscriber("+358501", "Alice", true, 100).Encode()
	if _, err := Charge(enc, 101); err == nil {
		t.Fatal("prepaid overdraw allowed")
	}
	if _, err := Charge(enc, 100); err != nil {
		t.Fatalf("exact balance charge refused: %v", err)
	}
}

func TestPostpaidCreditLimit(t *testing.T) {
	o := NewSubscriber("+358501", "Bob", false, 100)
	o.SetInt("creditLimitCents", 500)
	enc := o.Encode()
	if _, err := Charge(enc, 600); err != nil {
		t.Fatalf("within-limit charge refused: %v", err)
	}
	if _, err := Charge(enc, 601); err == nil {
		t.Fatal("beyond-limit charge allowed")
	}
}

func TestChargeValidation(t *testing.T) {
	enc := NewSubscriber("+1", "X", true, 100).Encode()
	if _, err := Charge(enc, -1); err == nil {
		t.Fatal("negative charge allowed")
	}
	if _, err := TopUp(enc, -1); err == nil {
		t.Fatal("negative top-up allowed")
	}
	if _, err := Charge([]byte("junk"), 1); err == nil {
		t.Fatal("junk profile charged")
	}
	if _, err := TopUp([]byte("junk"), 1); err == nil {
		t.Fatal("junk profile topped up")
	}
}

func TestPopulateSubscribers(t *testing.T) {
	db := store.New()
	PopulateSubscribers(db, 10)
	if db.Len() != 10 {
		t.Fatalf("Len = %d", db.Len())
	}
	enc, ok := db.Get(SubscriberID(3))
	if !ok {
		t.Fatal("subscriber 3 missing")
	}
	o, err := Subscriber.Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	prepaid, _ := o.Bool("prepaid")
	if prepaid { // 3 is odd → postpaid
		t.Fatal("subscriber 3 should be postpaid")
	}
	limit, _ := o.Int("creditLimitCents")
	if limit != 50_00 {
		t.Fatalf("credit limit = %d", limit)
	}
}
