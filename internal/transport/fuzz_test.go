package transport

import (
	"bytes"
	"io"
	"testing"
)

// rwc adapts a reader to the io.ReadWriteCloser the framing needs.
type rwc struct {
	io.Reader
}

func (rwc) Write(p []byte) (int, error) { return len(p), nil }
func (rwc) Close() error                { return nil }

// FuzzRecv feeds arbitrary bytes to the frame decoder: it must never
// panic or allocate unboundedly, only produce messages or errors.
func FuzzRecv(f *testing.F) {
	// Seed with a valid frame.
	var buf bytes.Buffer
	pipeA, pipeB := Pipe()
	go pipeA.Send(&Msg{Type: MsgRecord, Serial: 9, Payload: []byte("seed")})
	if m, err := pipeB.Recv(); err == nil {
		c := New(rwc{Reader: &buf})
		_ = c
		_ = m
	}
	pipeA.Close()
	pipeB.Close()
	f.Add([]byte{})
	f.Add([]byte{0xde, 0xad, 0xbe, 0xef, 0x01, 0x02})
	f.Add(bytes.Repeat([]byte{0}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		c := New(rwc{Reader: bytes.NewReader(data)})
		for {
			if _, err := c.Recv(); err != nil {
				return
			}
		}
	})
}
