// Package transport implements the message channel between the Primary
// and Mirror nodes of a RODAIN pair: a length-prefixed, CRC-checked
// framing protocol carrying log records primary→mirror and commit
// acknowledgments mirror→primary, plus the handshake and state-transfer
// messages used when a recovered node rejoins as mirror.
//
// The framing runs over any io.ReadWriteCloser; production uses a TCP
// net.Conn, tests use net.Pipe.
package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"sync"
	"time"
)

// MsgType discriminates protocol messages.
type MsgType uint8

// Protocol messages.
const (
	// MsgHello opens a session; Serial carries the sender's last known
	// validation order (the mirror's replay position).
	MsgHello MsgType = iota + 1
	// MsgRecord carries one encoded wal record in Payload.
	MsgRecord
	// MsgAck acknowledges that every log record of the transaction
	// whose commit record had validation order Serial is on the mirror.
	MsgAck
	// MsgSnapshotBegin starts a state transfer; Serial is the serial
	// order the snapshot corresponds to.
	MsgSnapshotBegin
	// MsgSnapshotChunk carries a chunk of checkpoint-encoded records.
	MsgSnapshotChunk
	// MsgSnapshotEnd completes a state transfer.
	MsgSnapshotEnd
	// MsgPing and MsgPong are watchdog heartbeats.
	MsgPing
	MsgPong
)

func (t MsgType) String() string {
	switch t {
	case MsgHello:
		return "hello"
	case MsgRecord:
		return "record"
	case MsgAck:
		return "ack"
	case MsgSnapshotBegin:
		return "snapshot-begin"
	case MsgSnapshotChunk:
		return "snapshot-chunk"
	case MsgSnapshotEnd:
		return "snapshot-end"
	case MsgPing:
		return "ping"
	case MsgPong:
		return "pong"
	default:
		return fmt.Sprintf("MsgType(%d)", uint8(t))
	}
}

// Msg is one protocol message.
type Msg struct {
	Type    MsgType
	Serial  uint64
	Payload []byte
}

// msgPool recycles frames between RecvPooled and ReleaseMsg. Pooled
// messages keep their payload capacity, so a steady-state log stream
// receives without allocating.
var msgPool = sync.Pool{New: func() any { return new(Msg) }}

// ReleaseMsg returns a message obtained from RecvPooled to the frame
// pool. The message and its payload must not be used afterwards. Passing
// a message not obtained from RecvPooled is allowed (its payload buffer
// joins the pool); passing nil is a no-op.
func ReleaseMsg(m *Msg) {
	if m == nil {
		return
	}
	m.Type = 0
	m.Serial = 0
	m.Payload = m.Payload[:0]
	msgPool.Put(m)
}

// ErrBadFrame reports framing or checksum damage on the wire.
var ErrBadFrame = errors.New("transport: bad frame")

// MaxFrameSize bounds a single frame to keep a damaged length field from
// allocating unbounded memory.
const MaxFrameSize = 1 << 26 // 64 MiB

// frame header: crc(4) paylen(4) type(1) serial(8)
const frameHeader = 4 + 4 + 1 + 8

// Conn is a framed duplex message connection. Read and Write may be used
// concurrently with each other; concurrent Writes are serialized
// internally.
type Conn struct {
	rw io.ReadWriteCloser
	br *bufio.Reader

	wmu sync.Mutex
	bw  *bufio.Writer

	wbuf []byte

	closeOnce sync.Once
	closeErr  error
}

// New wraps rw in the framing protocol.
func New(rw io.ReadWriteCloser) *Conn {
	return &Conn{
		rw: rw,
		br: bufio.NewReaderSize(rw, 1<<16),
		bw: bufio.NewWriterSize(rw, 1<<16),
	}
}

// Dial connects to a RODAIN node at addr (TCP).
func Dial(addr string, timeout time.Duration) (*Conn, error) {
	c, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetNoDelay(true) // commit latency beats throughput here
	}
	return New(c), nil
}

// Send writes one message and flushes it to the wire.
func (c *Conn) Send(m *Msg) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if err := c.encodeLocked(m); err != nil {
		return err
	}
	return c.bw.Flush()
}

// SendBatch writes several messages with a single flush, amortizing
// syscalls when the log writer ships a whole transaction group.
func (c *Conn) SendBatch(ms []*Msg) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	for _, m := range ms {
		if err := c.encodeLocked(m); err != nil {
			return err
		}
	}
	return c.bw.Flush()
}

func (c *Conn) encodeLocked(m *Msg) error {
	if len(m.Payload) > MaxFrameSize-frameHeader {
		return fmt.Errorf("transport: frame too large: %d bytes", len(m.Payload))
	}
	need := frameHeader + len(m.Payload)
	if cap(c.wbuf) < need {
		c.wbuf = make([]byte, need)
	}
	buf := c.wbuf[:need]
	binary.LittleEndian.PutUint32(buf[4:], uint32(len(m.Payload)))
	buf[8] = byte(m.Type)
	binary.LittleEndian.PutUint64(buf[9:], m.Serial)
	copy(buf[frameHeader:], m.Payload)
	binary.LittleEndian.PutUint32(buf[:4], crc32.ChecksumIEEE(buf[4:]))
	_, err := c.bw.Write(buf)
	return err
}

// Recv reads the next message. It returns io.EOF on clean shutdown and
// ErrBadFrame on checksum or framing damage. The returned message and
// payload are freshly allocated and owned by the caller; hot paths that
// can promise not to retain them should use RecvPooled.
func (c *Conn) Recv() (*Msg, error) {
	m := new(Msg)
	if err := c.recvInto(m); err != nil {
		return nil, err
	}
	return m, nil
}

// RecvPooled is Recv drawing the message and its payload buffer from the
// frame pool: a receive loop that calls ReleaseMsg after processing each
// message runs allocation-free once payload capacities have warmed up.
// The message must not be retained past ReleaseMsg.
func (c *Conn) RecvPooled() (*Msg, error) {
	m := msgPool.Get().(*Msg)
	if err := c.recvInto(m); err != nil {
		ReleaseMsg(m)
		return nil, err
	}
	return m, nil
}

// recvInto reads the next frame into m, growing (or allocating) the
// payload buffer only when its capacity is insufficient.
func (c *Conn) recvInto(m *Msg) error {
	var hdr [frameHeader]byte
	if _, err := io.ReadFull(c.br, hdr[:1]); err != nil {
		return err
	}
	if _, err := io.ReadFull(c.br, hdr[1:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return err
	}
	payLen := binary.LittleEndian.Uint32(hdr[4:])
	if int(payLen) > MaxFrameSize-frameHeader {
		return ErrBadFrame
	}
	m.Type = MsgType(hdr[8])
	m.Serial = binary.LittleEndian.Uint64(hdr[9:])
	m.Payload = m.Payload[:0]
	if payLen > 0 {
		if uint32(cap(m.Payload)) < payLen {
			m.Payload = make([]byte, payLen)
		} else {
			m.Payload = m.Payload[:payLen]
		}
		if _, err := io.ReadFull(c.br, m.Payload); err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return err
		}
	}
	crc := crc32.ChecksumIEEE(hdr[4:])
	crc = crc32.Update(crc, crc32.IEEETable, m.Payload)
	if crc != binary.LittleEndian.Uint32(hdr[:4]) {
		return ErrBadFrame
	}
	return nil
}

// SendControl sends a payload-less message (ack, ping, pong, hello)
// without constructing a Msg on the heap — these are the per-commit and
// per-heartbeat frames of the mirror protocol.
func (c *Conn) SendControl(t MsgType, serial uint64) error {
	m := Msg{Type: t, Serial: serial}
	return c.Send(&m)
}

// Buffered reports how many received bytes are waiting in the read
// buffer — data already delivered to this side but not yet consumed by
// Recv. A receive loop can use it to tell "more of this batch is
// already here" (> 0) from "the wire is drained for now" (== 0), e.g.
// to coalesce acknowledgments across a burst of frames.
func (c *Conn) Buffered() int { return c.br.Buffered() }

// SetRecvDeadline sets a read deadline on the underlying stream, when it
// supports one (net.Conn does; net.Pipe does too). It reports whether a
// deadline could be set. A zero time clears the deadline.
func (c *Conn) SetRecvDeadline(t time.Time) bool {
	if d, ok := c.rw.(interface{ SetReadDeadline(time.Time) error }); ok {
		return d.SetReadDeadline(t) == nil
	}
	return false
}

// Close closes the underlying stream. Safe to call multiple times and
// concurrently with Recv (which will then return an error).
func (c *Conn) Close() error {
	c.closeOnce.Do(func() {
		c.wmu.Lock()
		c.bw.Flush()
		c.wmu.Unlock()
		c.closeErr = c.rw.Close()
	})
	return c.closeErr
}

// Pipe returns two connected in-process Conns, for tests.
func Pipe() (*Conn, *Conn) {
	a, b := net.Pipe()
	return New(a), New(b)
}

// Listener accepts framed connections.
type Listener struct {
	L net.Listener
}

// Listen starts a TCP listener on addr.
func Listen(addr string) (*Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Listener{L: l}, nil
}

// Accept waits for the next connection.
func (l *Listener) Accept() (*Conn, error) {
	c, err := l.L.Accept()
	if err != nil {
		return nil, err
	}
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	return New(c), nil
}

// Addr reports the listener's address.
func (l *Listener) Addr() string { return l.L.Addr().String() }

// Close stops the listener.
func (l *Listener) Close() error { return l.L.Close() }
