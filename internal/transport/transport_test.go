package transport

import (
	"bytes"
	"io"
	"net"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestPipeRoundTrip(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	done := make(chan error, 1)
	go func() {
		done <- a.Send(&Msg{Type: MsgRecord, Serial: 7, Payload: []byte("log data")})
	}()
	m, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if m.Type != MsgRecord || m.Serial != 7 || string(m.Payload) != "log data" {
		t.Fatalf("msg = %+v", m)
	}
}

func TestEmptyPayload(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	go a.Send(&Msg{Type: MsgPing, Serial: 1})
	m, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if m.Type != MsgPing || len(m.Payload) != 0 {
		t.Fatalf("msg = %+v", m)
	}
}

func TestSendBatch(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	batch := []*Msg{
		{Type: MsgRecord, Serial: 1, Payload: []byte("one")},
		{Type: MsgRecord, Serial: 2, Payload: []byte("two")},
		{Type: MsgAck, Serial: 3},
	}
	go a.SendBatch(batch)
	for i, want := range batch {
		m, err := b.Recv()
		if err != nil {
			t.Fatalf("msg %d: %v", i, err)
		}
		if m.Type != want.Type || m.Serial != want.Serial || !bytes.Equal(m.Payload, want.Payload) {
			t.Fatalf("msg %d = %+v, want %+v", i, m, want)
		}
	}
}

func TestTCPRoundTrip(t *testing.T) {
	l, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c, err := l.Accept()
		if err != nil {
			t.Error(err)
			return
		}
		defer c.Close()
		m, err := c.Recv()
		if err != nil {
			t.Error(err)
			return
		}
		m.Serial++
		c.Send(&Msg{Type: MsgPong, Serial: m.Serial})
	}()

	c, err := Dial(l.Addr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Send(&Msg{Type: MsgPing, Serial: 41}); err != nil {
		t.Fatal(err)
	}
	m, err := c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if m.Type != MsgPong || m.Serial != 42 {
		t.Fatalf("msg = %+v", m)
	}
	wg.Wait()
}

func TestRecvEOFOnClose(t *testing.T) {
	a, b := Pipe()
	a.Close()
	if _, err := b.Recv(); err == nil {
		t.Fatal("Recv after peer close should fail")
	}
	b.Close()
}

func TestCloseIdempotent(t *testing.T) {
	a, b := Pipe()
	defer b.Close()
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestBadFrameCRC(t *testing.T) {
	client, server := net.Pipe()
	c := New(server)
	defer c.Close()
	go func() {
		// A frame with a wrong checksum.
		frame := make([]byte, frameHeader)
		frame[8] = byte(MsgPing)
		frame[0] = 0xde // bogus CRC
		client.Write(frame)
		client.Close()
	}()
	if _, err := c.Recv(); err != ErrBadFrame {
		t.Fatalf("err = %v, want ErrBadFrame", err)
	}
}

func TestOversizeFrameRejected(t *testing.T) {
	client, server := net.Pipe()
	c := New(server)
	defer c.Close()
	go func() {
		frame := make([]byte, frameHeader)
		frame[4], frame[5], frame[6], frame[7] = 0xff, 0xff, 0xff, 0x7f
		client.Write(frame)
		client.Close()
	}()
	if _, err := c.Recv(); err != ErrBadFrame {
		t.Fatalf("err = %v, want ErrBadFrame", err)
	}
	if err := c.Send(&Msg{Type: MsgRecord, Payload: make([]byte, MaxFrameSize)}); err == nil {
		t.Fatal("oversize send accepted")
	}
}

func TestTruncatedFrame(t *testing.T) {
	client, server := net.Pipe()
	c := New(server)
	defer c.Close()
	go func() {
		client.Write([]byte{1, 2, 3})
		client.Close()
	}()
	if _, err := c.Recv(); err != io.ErrUnexpectedEOF {
		t.Fatalf("err = %v, want ErrUnexpectedEOF", err)
	}
}

func TestConcurrentWriters(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	const writers, per = 4, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := a.Send(&Msg{Type: MsgRecord, Serial: uint64(w*1000 + i), Payload: []byte("pay")}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	got := 0
	for got < writers*per {
		m, err := b.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if m.Type != MsgRecord || string(m.Payload) != "pay" {
			t.Fatalf("frame interleaving corrupted message: %+v", m)
		}
		got++
	}
	wg.Wait()
}

func TestPropertyFrameRoundTrip(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	f := func(ty uint8, serial uint64, payload []byte) bool {
		m := &Msg{Type: MsgType(ty), Serial: serial, Payload: payload}
		errc := make(chan error, 1)
		go func() { errc <- a.Send(m) }()
		got, err := b.Recv()
		if err != nil || <-errc != nil {
			return false
		}
		return got.Type == m.Type && got.Serial == m.Serial && bytes.Equal(got.Payload, m.Payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMsgTypeString(t *testing.T) {
	for _, ty := range []MsgType{MsgHello, MsgRecord, MsgAck, MsgSnapshotBegin,
		MsgSnapshotChunk, MsgSnapshotEnd, MsgPing, MsgPong, MsgType(99)} {
		if ty.String() == "" {
			t.Fatal("empty MsgType string")
		}
	}
}
