// Package txn defines the RODAIN transaction model: real-time attributes
// (criticality class and deadline), the deferred-write private workspace,
// read/write-set bookkeeping for optimistic concurrency control, and the
// lifecycle state machine.
//
// The deferred write mechanism is central to the paper's design: a
// transaction writes modified data to the database only after it has been
// accepted for commit by the concurrency controller, so an aborted
// transaction simply discards its private copies — no rollback is ever
// needed.
package txn

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"repro/internal/simtime"
	"repro/internal/store"
)

// ID identifies a transaction. IDs are assigned in arrival order by the
// node that executes the transaction.
type ID uint64

// Class is the real-time criticality class of a transaction.
type Class int

// Criticality classes, most critical first. RODAIN executes firm- and
// soft-deadline transactions alongside transactions with no deadline.
const (
	// Firm transactions are aborted the moment their deadline expires;
	// a late result has no value.
	Firm Class = iota
	// Soft transactions keep running past their deadline; the miss is
	// recorded but the result is still useful.
	Soft
	// NonRealTime transactions have no deadline and run in the
	// execution-time fraction the scheduler reserves on demand.
	NonRealTime
)

func (c Class) String() string {
	switch c {
	case Firm:
		return "firm"
	case Soft:
		return "soft"
	case NonRealTime:
		return "non-rt"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// State is a transaction lifecycle state.
type State int

// Lifecycle states. The happy path is
// Created → Running → Validating → Writing → LogWait → Committed.
const (
	Created State = iota
	Running
	Validating
	// Writing is the write phase: validated updates are applied to the
	// database and redo log records are generated.
	Writing
	// LogWait is the commit step where the transaction waits for its
	// log records to reach stable storage — the mirror node in normal
	// mode, the local disk in transient mode.
	LogWait
	Committed
	Aborted
)

func (s State) String() string {
	switch s {
	case Created:
		return "created"
	case Running:
		return "running"
	case Validating:
		return "validating"
	case Writing:
		return "writing"
	case LogWait:
		return "logwait"
	case Committed:
		return "committed"
	case Aborted:
		return "aborted"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// AbortReason records why a transaction failed. The experimental study
// classifies misses into deadline expiry, concurrency-control conflict,
// and admission denial by the overload manager.
type AbortReason int

// Abort reasons.
const (
	NoAbort AbortReason = iota
	DeadlineMiss
	Conflict
	OverloadDenied
	NodeFailure
	UserAbort
)

func (r AbortReason) String() string {
	switch r {
	case NoAbort:
		return "none"
	case DeadlineMiss:
		return "deadline"
	case Conflict:
		return "conflict"
	case OverloadDenied:
		return "overload"
	case NodeFailure:
		return "node-failure"
	case UserAbort:
		return "user"
	default:
		return fmt.Sprintf("AbortReason(%d)", int(r))
	}
}

// NoDeadline marks a transaction without a deadline.
const NoDeadline simtime.Time = math.MaxInt64

// ReadEntry records one read-set member: the object and the write
// timestamp the transaction observed when it read the object.
type ReadEntry struct {
	ID      store.ObjectID
	WriteTS uint64
}

// Transaction is one RODAIN transaction. It is owned by a single worker
// goroutine (or the simulation loop) at any moment and is not internally
// synchronized, with two exceptions shared with concurrent validators:
// the timestamp interval bounds and the doomed flag, which are atomics.
type Transaction struct {
	ID          ID
	Class       Class
	Criticality int // higher is more important to the overload manager
	Arrival     simtime.Time
	Deadline    simtime.Time // absolute; NoDeadline for non-RT

	State  State
	Reason AbortReason

	// Restarts counts concurrency-control restarts of this transaction.
	Restarts int

	// Timestamp interval for OCC-TI/OCC-DATI dynamic adjustment of the
	// serialization order. The final timestamp is chosen inside
	// [tsLow, tsHigh]; an empty interval (tsLow > tsHigh) means the
	// transaction must restart. The bounds are atomics because a
	// concurrent validator may adjust another transaction's interval
	// while its owner goroutine is running: the low bound only ever
	// rises and the high bound only ever falls while the transaction is
	// active, so CAS-max/CAS-min keep both monotonic without a lock.
	tsLow, tsHigh atomic.Uint64

	// doom holds the pending abort reason (NoAbort when healthy). A
	// validator dooms a victim by CAS-ing NoAbort→reason, so exactly one
	// doomer wins; the owner polls it lock-free between operations.
	doom atomic.Int64

	// CommitTS is the final serialization timestamp assigned at
	// successful validation.
	CommitTS uint64

	// SerialOrder is the true validation order: the position of this
	// transaction in the sequence of successfully validated
	// transactions. The mirror reorders log records by this.
	SerialOrder uint64

	// roDeclared marks a transaction its submitter declared read-only.
	// The engine skips per-read controller registration for such a
	// transaction and commits it through the read-only snapshot fast
	// path; a declaration that proves wrong (the body stages a write, or
	// the fast path cannot certify the snapshot) is demoted and the
	// transaction restarts through the fully registered path — the
	// declaration is a performance hint, never a correctness contract.
	roDeclared bool

	readSet    []ReadEntry
	readIndex  map[store.ObjectID]int
	writes     map[store.ObjectID][]byte // deferred after images
	tombstones map[store.ObjectID]bool   // deferred deletions
	writeIDs   []store.ObjectID          // in first-write order

	applyOps []store.Op // write-phase scratch, reused across restarts
}

// New returns a transaction in the Created state. deadline is absolute
// virtual time; pass NoDeadline for none.
func New(id ID, class Class, arrival, deadline simtime.Time) *Transaction {
	t := &Transaction{
		ID:         id,
		Class:      class,
		Arrival:    arrival,
		Deadline:   deadline,
		readIndex:  make(map[store.ObjectID]int),
		writes:     make(map[store.ObjectID][]byte),
		tombstones: make(map[store.ObjectID]bool),
	}
	t.tsLow.Store(1)
	t.tsHigh.Store(math.MaxUint64)
	return t
}

// Interval returns the current timestamp interval bounds.
func (t *Transaction) Interval() (lo, hi uint64) {
	return t.tsLow.Load(), t.tsHigh.Load()
}

// SetInterval forcibly sets both interval bounds. It is only safe while
// no concurrent adjuster can touch the transaction (construction,
// restart, tests).
func (t *Transaction) SetInterval(lo, hi uint64) {
	t.tsLow.Store(lo)
	t.tsHigh.Store(hi)
}

// RaiseLow raises the interval low bound to v if v is larger
// (CAS-max). It reports whether the bound actually moved.
func (t *Transaction) RaiseLow(v uint64) bool {
	for {
		cur := t.tsLow.Load()
		if v <= cur {
			return false
		}
		if t.tsLow.CompareAndSwap(cur, v) {
			return true
		}
	}
}

// LowerHigh lowers the interval high bound to v if v is smaller
// (CAS-min). It reports whether the bound actually moved.
func (t *Transaction) LowerHigh(v uint64) bool {
	for {
		cur := t.tsHigh.Load()
		if v >= cur {
			return false
		}
		if t.tsHigh.CompareAndSwap(cur, v) {
			return true
		}
	}
}

// IntervalEmpty reports whether the timestamp interval has shut
// (low > high), meaning the transaction cannot be serialized and must
// restart.
func (t *Transaction) IntervalEmpty() bool {
	return t.tsLow.Load() > t.tsHigh.Load()
}

// MarkDoomed requests an abort with the given reason. Only the first
// doomer wins (CAS NoAbort→reason); it reports whether this call was
// the one that doomed the transaction. reason must not be NoAbort.
func (t *Transaction) MarkDoomed(reason AbortReason) bool {
	return t.doom.CompareAndSwap(int64(NoAbort), int64(reason))
}

// DoomState returns the pending abort reason, if any. It is lock-free
// and allocation-free: the per-operation Doomed poll rides on it.
func (t *Transaction) DoomState() (AbortReason, bool) {
	r := AbortReason(t.doom.Load())
	return r, r != NoAbort
}

// ClearDoom resets the pending abort reason (begin / restart).
func (t *Transaction) ClearDoom() {
	t.doom.Store(int64(NoAbort))
}

// HasDeadline reports whether the transaction carries a deadline.
func (t *Transaction) HasDeadline() bool { return t.Deadline != NoDeadline }

// Expired reports whether the transaction's deadline has passed at now.
func (t *Transaction) Expired(now simtime.Time) bool {
	return t.HasDeadline() && now > t.Deadline
}

// ReadOnly reports whether the transaction staged no writes or deletes.
func (t *Transaction) ReadOnly() bool { return len(t.writes) == 0 && len(t.tombstones) == 0 }

// DeclareReadOnly marks the transaction as submitter-declared read-only
// (see the roDeclared field). Call before the body first runs.
func (t *Transaction) DeclareReadOnly() { t.roDeclared = true }

// ReadOnlyDeclared reports whether the submitter declared this
// transaction read-only and it has not been demoted since.
func (t *Transaction) ReadOnlyDeclared() bool { return t.roDeclared }

// DemoteReadOnly withdraws the read-only declaration: subsequent
// attempts run through the fully registered read path. Demotion is
// one-way for the transaction's lifetime — a declaration that proved
// wrong once is not trusted again.
func (t *Transaction) DemoteReadOnly() { t.roDeclared = false }

// Read performs a transactional read against db: it returns the
// transaction's own deferred write if one exists (read-your-writes, and
// a deferred delete hides the object), otherwise the current database
// value, recording the observed write timestamp in the read set. It
// reports false if the object is absent.
func (t *Transaction) Read(db *store.Store, id store.ObjectID) ([]byte, bool) {
	if t.tombstones[id] {
		return nil, false
	}
	if v, ok := t.writes[id]; ok {
		return cloneBytes(v), true
	}
	v, _, wts, ok := db.GetMeta(id)
	if !ok {
		return nil, false
	}
	t.recordRead(id, wts)
	return v, true
}

// ReadView is Read without the defensive copies: the returned slice is
// borrowed — from the database (store.View contract: never mutated in
// place, but stale after a later commit) or from the private workspace —
// and must not be modified or retained by the caller. It is the
// engine-internal read for decode-and-discard accesses; Read keeps the
// owned-copy contract for everything else.
func (t *Transaction) ReadView(db *store.Store, id store.ObjectID) ([]byte, bool) {
	if t.tombstones[id] {
		return nil, false
	}
	if v, ok := t.writes[id]; ok {
		return v, true
	}
	v, _, wts, ok := db.ViewMeta(id)
	if !ok {
		return nil, false
	}
	t.recordRead(id, wts)
	return v, true
}

// recordRead adds (or refreshes) a read-set entry.
func (t *Transaction) recordRead(id store.ObjectID, wts uint64) {
	if i, ok := t.readIndex[id]; ok {
		t.readSet[i].WriteTS = wts
		return
	}
	t.readIndex[id] = len(t.readSet)
	t.readSet = append(t.readSet, ReadEntry{ID: id, WriteTS: wts})
}

// StageWrite defers a write into the private workspace. The after image
// is copied. Nothing reaches the database until ApplyWrites. A write
// cancels an earlier deferred delete of the same object.
func (t *Transaction) StageWrite(id store.ObjectID, afterImage []byte) {
	if _, w := t.writes[id]; !w && !t.tombstones[id] {
		t.writeIDs = append(t.writeIDs, id)
	}
	delete(t.tombstones, id)
	t.writes[id] = cloneBytes(afterImage)
}

// StageDelete defers a deletion into the private workspace. For
// concurrency control a delete is a write of the object.
func (t *Transaction) StageDelete(id store.ObjectID) {
	if _, w := t.writes[id]; !w && !t.tombstones[id] {
		t.writeIDs = append(t.writeIDs, id)
	}
	delete(t.writes, id)
	t.tombstones[id] = true
}

// IsDelete reports whether the staged write of id is a deletion.
func (t *Transaction) IsDelete(id store.ObjectID) bool { return t.tombstones[id] }

// ReadSet returns the read-set entries in first-read order. The slice is
// shared; callers must not modify it.
func (t *Transaction) ReadSet() []ReadEntry { return t.readSet }

// WriteIDs returns the written object ids in first-write order. The
// slice is shared; callers must not modify it.
func (t *Transaction) WriteIDs() []store.ObjectID { return t.writeIDs }

// WriteImage returns the staged after image for id (nil, true for a
// staged deletion).
func (t *Transaction) WriteImage(id store.ObjectID) ([]byte, bool) {
	if t.tombstones[id] {
		return nil, true
	}
	v, ok := t.writes[id]
	return v, ok
}

// ObservedWriteTS returns the write timestamp the transaction observed
// when it read id from the database. It reports false if id is not in the
// read set.
func (t *Transaction) ObservedWriteTS(id store.ObjectID) (uint64, bool) {
	i, ok := t.readIndex[id]
	if !ok {
		return 0, false
	}
	return t.readSet[i].WriteTS, true
}

// ReadsObject reports whether id is in the read set.
func (t *Transaction) ReadsObject(id store.ObjectID) bool {
	_, ok := t.readIndex[id]
	return ok
}

// WritesObject reports whether id is in the write set (including staged
// deletions).
func (t *Transaction) WritesObject(id store.ObjectID) bool {
	if t.tombstones[id] {
		return true
	}
	_, ok := t.writes[id]
	return ok
}

// ApplyWrites installs every staged write into db with the transaction's
// commit timestamp and marks the read set as observed. This is the write
// phase; it must only be called after successful validation. The writes
// go through ApplyGroup, so they become visible as one atomic step even
// to readers that bypass the concurrency controller.
func (t *Transaction) ApplyWrites(db *store.Store) {
	ops := t.applyOps[:0]
	for _, id := range t.writeIDs {
		if t.tombstones[id] {
			ops = append(ops, store.Op{ID: id, Delete: true})
			continue
		}
		ops = append(ops, store.Op{ID: id, Value: t.writes[id]})
	}
	t.applyOps = ops
	db.ApplyGroup(ops, t.CommitTS)
	for _, re := range t.readSet {
		db.ObserveRead(re.ID, t.CommitTS)
	}
}

// DiscardWrites drops the private workspace: the whole abort path of the
// deferred-write design. Read/write sets are cleared so a restarted
// transaction begins fresh.
func (t *Transaction) DiscardWrites() {
	t.readSet = t.readSet[:0]
	t.readIndex = make(map[store.ObjectID]int)
	t.writes = make(map[store.ObjectID][]byte)
	t.tombstones = make(map[store.ObjectID]bool)
	t.writeIDs = t.writeIDs[:0]
}

// ResetForRestart prepares the transaction to run again after a
// concurrency-control restart: workspace discarded, interval reset,
// restart counted. Arrival time and deadline are unchanged — a restarted
// firm transaction still has to finish by its original deadline.
func (t *Transaction) ResetForRestart() {
	t.DiscardWrites()
	t.tsLow.Store(1)
	t.tsHigh.Store(math.MaxUint64)
	t.ClearDoom()
	t.CommitTS = 0
	t.State = Created
	t.Reason = NoAbort
	t.Restarts++
}

// Abort moves the transaction to Aborted with the given reason and drops
// its workspace.
func (t *Transaction) Abort(reason AbortReason) {
	t.State = Aborted
	t.Reason = reason
	t.DiscardWrites()
}

// SortedWriteIDs returns the written ids in ascending order (a fresh
// slice), used where deterministic output is wanted.
func (t *Transaction) SortedWriteIDs() []store.ObjectID {
	ids := make([]store.ObjectID, len(t.writeIDs))
	copy(ids, t.writeIDs)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func (t *Transaction) String() string {
	return fmt.Sprintf("txn{%d %s %s r=%d w=%d}", t.ID, t.Class, t.State, len(t.readSet), len(t.writes))
}

func cloneBytes(b []byte) []byte {
	if b == nil {
		return nil
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out
}
