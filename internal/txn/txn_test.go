package txn

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/simtime"
	"repro/internal/store"
)

func newDB(t *testing.T) *store.Store {
	t.Helper()
	db := store.New()
	db.Put(1, []byte("one"))
	db.Put(2, []byte("two"))
	db.Put(3, []byte("three"))
	return db
}

func TestReadRecordsReadSet(t *testing.T) {
	db := newDB(t)
	db.Apply(2, []byte("two'"), 42)
	tx := New(1, Firm, 0, 1000)
	v, ok := tx.Read(db, 2)
	if !ok || string(v) != "two'" {
		t.Fatalf("Read = %q %v", v, ok)
	}
	rs := tx.ReadSet()
	if len(rs) != 1 || rs[0].ID != 2 || rs[0].WriteTS != 42 {
		t.Fatalf("read set = %+v", rs)
	}
}

func TestReadMissing(t *testing.T) {
	db := newDB(t)
	tx := New(1, Firm, 0, 1000)
	if _, ok := tx.Read(db, 99); ok {
		t.Fatal("read of missing object reported ok")
	}
	if len(tx.ReadSet()) != 0 {
		t.Fatal("missing read should not enter read set")
	}
}

func TestReadYourWrites(t *testing.T) {
	db := newDB(t)
	tx := New(1, Firm, 0, 1000)
	tx.StageWrite(1, []byte("mine"))
	v, ok := tx.Read(db, 1)
	if !ok || string(v) != "mine" {
		t.Fatalf("read-your-writes = %q %v", v, ok)
	}
	// A read satisfied from the workspace must not add a read-set entry:
	// validation conflicts are judged against what was read from the DB.
	if tx.ReadsObject(1) {
		t.Fatal("workspace read polluted the read set")
	}
	// The DB is untouched before the write phase.
	dv, _ := db.Get(1)
	if string(dv) != "one" {
		t.Fatalf("deferred write leaked to db: %q", dv)
	}
}

func TestStageWriteCopies(t *testing.T) {
	db := newDB(t)
	tx := New(1, Firm, 0, 1000)
	img := []byte("abc")
	tx.StageWrite(1, img)
	img[0] = 'X'
	v, _ := tx.Read(db, 1)
	if string(v) != "abc" {
		t.Fatalf("staged image aliased caller memory: %q", v)
	}
}

func TestApplyWritesInstallsAndStampsReads(t *testing.T) {
	db := newDB(t)
	tx := New(1, Firm, 0, 1000)
	tx.Read(db, 2)
	tx.StageWrite(1, []byte("one'"))
	tx.CommitTS = 77
	tx.ApplyWrites(db)

	v, _ := db.Get(1)
	if string(v) != "one'" {
		t.Fatalf("write not applied: %q", v)
	}
	_, wts, _ := db.Timestamps(1)
	if wts != 77 {
		t.Fatalf("writeTS = %d, want 77", wts)
	}
	rts, _, _ := db.Timestamps(2)
	if rts != 77 {
		t.Fatalf("readTS = %d, want 77", rts)
	}
}

func TestDiscardWritesLeavesDBUntouched(t *testing.T) {
	db := newDB(t)
	before := db.Checksum()
	tx := New(1, Firm, 0, 1000)
	tx.Read(db, 1)
	tx.StageWrite(2, []byte("junk"))
	tx.StageWrite(3, []byte("junk2"))
	tx.DiscardWrites()
	if db.Checksum() != before {
		t.Fatal("discard changed the database")
	}
	if len(tx.ReadSet()) != 0 || len(tx.WriteIDs()) != 0 {
		t.Fatal("discard did not clear the workspace")
	}
}

func TestResetForRestart(t *testing.T) {
	tx := New(1, Firm, 5, 1000)
	tx.SetInterval(10, 20)
	tx.MarkDoomed(Conflict)
	tx.CommitTS = 15
	tx.State = Validating
	tx.ResetForRestart()
	if tx.Restarts != 1 {
		t.Fatalf("Restarts = %d", tx.Restarts)
	}
	lo, hi := tx.Interval()
	if lo != 1 || hi != math.MaxUint64 || tx.CommitTS != 0 || tx.State != Created {
		t.Fatalf("restart did not reset: %+v", tx)
	}
	if _, doomed := tx.DoomState(); doomed {
		t.Fatal("restart must clear the doomed flag")
	}
	if tx.Arrival != 5 || tx.Deadline != 1000 {
		t.Fatal("restart must keep arrival and deadline")
	}
}

func TestAbort(t *testing.T) {
	tx := New(1, Firm, 0, 1000)
	tx.StageWrite(1, []byte("x"))
	tx.Abort(Conflict)
	if tx.State != Aborted || tx.Reason != Conflict {
		t.Fatalf("state=%v reason=%v", tx.State, tx.Reason)
	}
	if !tx.ReadOnly() {
		t.Fatal("abort should drop writes")
	}
}

func TestExpired(t *testing.T) {
	tx := New(1, Firm, 0, 100)
	if tx.Expired(100) {
		t.Fatal("deadline instant itself is not expired")
	}
	if !tx.Expired(101) {
		t.Fatal("past deadline should be expired")
	}
	nr := New(2, NonRealTime, 0, NoDeadline)
	if nr.HasDeadline() || nr.Expired(simtime.Never-1) {
		t.Fatal("non-RT transaction must never expire")
	}
}

func TestRereadRefreshesObservedTS(t *testing.T) {
	db := newDB(t)
	tx := New(1, Firm, 0, 1000)
	tx.Read(db, 1)
	db.Apply(1, []byte("newer"), 9)
	tx.Read(db, 1)
	rs := tx.ReadSet()
	if len(rs) != 1 {
		t.Fatalf("re-read duplicated read set: %+v", rs)
	}
	if rs[0].WriteTS != 9 {
		t.Fatalf("observed ts = %d, want 9", rs[0].WriteTS)
	}
}

func TestWriteIDsFirstWriteOrder(t *testing.T) {
	tx := New(1, Firm, 0, 1000)
	tx.StageWrite(5, []byte("a"))
	tx.StageWrite(2, []byte("b"))
	tx.StageWrite(5, []byte("c")) // overwrite keeps original position
	ids := tx.WriteIDs()
	if len(ids) != 2 || ids[0] != 5 || ids[1] != 2 {
		t.Fatalf("WriteIDs = %v", ids)
	}
	img, ok := tx.WriteImage(5)
	if !ok || string(img) != "c" {
		t.Fatalf("WriteImage = %q %v", img, ok)
	}
	sorted := tx.SortedWriteIDs()
	if sorted[0] != 2 || sorted[1] != 5 {
		t.Fatalf("SortedWriteIDs = %v", sorted)
	}
}

func TestStringers(t *testing.T) {
	cases := []struct {
		got, want string
	}{
		{Firm.String(), "firm"},
		{Soft.String(), "soft"},
		{NonRealTime.String(), "non-rt"},
		{Class(9).String(), "Class(9)"},
		{Created.String(), "created"},
		{Running.String(), "running"},
		{Validating.String(), "validating"},
		{Writing.String(), "writing"},
		{LogWait.String(), "logwait"},
		{Committed.String(), "committed"},
		{Aborted.String(), "aborted"},
		{State(9).String(), "State(9)"},
		{NoAbort.String(), "none"},
		{DeadlineMiss.String(), "deadline"},
		{Conflict.String(), "conflict"},
		{OverloadDenied.String(), "overload"},
		{NodeFailure.String(), "node-failure"},
		{UserAbort.String(), "user"},
		{AbortReason(9).String(), "AbortReason(9)"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Fatalf("String = %q, want %q", c.got, c.want)
		}
	}
	tx := New(7, Firm, 0, 10)
	if tx.String() == "" {
		t.Fatal("empty Stringer")
	}
}

// Property: after any staged-write sequence, ApplyWrites makes the DB
// reflect exactly the last image per object, and DiscardWrites instead
// leaves the DB byte-identical.
func TestPropertyDeferredWrites(t *testing.T) {
	f := func(ops []struct {
		ID  uint8
		Img []byte
	}, discard bool) bool {
		db := store.New()
		for i := 0; i < 16; i++ {
			db.Put(store.ObjectID(i), []byte{byte(i)})
		}
		before := db.Checksum()
		tx := New(1, Firm, 0, NoDeadline)
		last := map[store.ObjectID][]byte{}
		for _, op := range ops {
			id := store.ObjectID(op.ID % 16)
			tx.StageWrite(id, op.Img)
			last[id] = op.Img
		}
		if discard {
			tx.DiscardWrites()
			return db.Checksum() == before
		}
		tx.CommitTS = 1
		tx.ApplyWrites(db)
		for id, want := range last {
			got, ok := db.Get(id)
			if !ok || !bytes.Equal(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestStageDelete(t *testing.T) {
	db := newDB(t)
	tx := New(1, Firm, 0, NoDeadline)
	tx.StageDelete(2)
	if !tx.WritesObject(2) || !tx.IsDelete(2) {
		t.Fatal("delete not in write set")
	}
	if _, ok := tx.Read(db, 2); ok {
		t.Fatal("deferred delete did not hide the object")
	}
	img, ok := tx.WriteImage(2)
	if !ok || img != nil {
		t.Fatalf("tombstone image = %v %v", img, ok)
	}
	tx.CommitTS = 9
	tx.ApplyWrites(db)
	if _, ok := db.Get(2); ok {
		t.Fatal("delete not applied")
	}
	if db.DeletedAt(2) != 9 {
		t.Fatalf("tombstone ts = %d", db.DeletedAt(2))
	}
}

func TestWriteCancelsDelete(t *testing.T) {
	db := newDB(t)
	tx := New(1, Firm, 0, NoDeadline)
	tx.StageDelete(1)
	tx.StageWrite(1, []byte("back"))
	if tx.IsDelete(1) {
		t.Fatal("write did not cancel the delete")
	}
	v, ok := tx.Read(db, 1)
	if !ok || string(v) != "back" {
		t.Fatalf("read = %q %v", v, ok)
	}
	if ids := tx.WriteIDs(); len(ids) != 1 {
		t.Fatalf("write ids = %v", ids)
	}
}

func TestDeleteCancelsWrite(t *testing.T) {
	tx := New(1, Firm, 0, NoDeadline)
	tx.StageWrite(1, []byte("x"))
	tx.StageDelete(1)
	if !tx.IsDelete(1) {
		t.Fatal("delete did not supersede the write")
	}
	if ids := tx.WriteIDs(); len(ids) != 1 {
		t.Fatalf("write ids = %v", ids)
	}
	if tx.ReadOnly() {
		t.Fatal("delete-only txn reported read-only")
	}
}
