package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"

	"repro/internal/store"
)

// This file implements the v2 checkpoint format produced by the fuzzy,
// stripe-incremental checkpointer. A v1 checkpoint (WriteCheckpoint) is
// a transaction-consistent snapshot: a bare record stream — Write
// records followed by one Commit marker carrying the serial the log
// resumes from. A v2 checkpoint is fuzzy: each lock stripe of the store
// was copied at a different moment, so one serial is not enough — the
// file carries a per-stripe watermark vector, and recovery replays each
// logged record's suffix from its own stripe's watermark.
//
// Layout:
//
//	magic "RDCKPT2\x00" (8) | stripes u32 | crc32(magic+stripes) u32
//	record stream: Write records per object (stripe by stripe),
//	               terminated by the v1 Commit marker (SerialOrder =
//	               max watermark)
//	watermarks: stripes × u64 | crc32(watermark bytes) u32
//
// The record stream between header and trailer is exactly the v1 body,
// so every v1 tool that tolerates the header keeps working, and
// DecodeCheckpoint reads both formats transparently (the 8-byte magic
// cannot begin a v1 stream: a record's first 4 bytes are a CRC over a
// header that would have to declare an impossible type).

// checkpointMagic begins every v2 checkpoint file.
const checkpointMagic = "RDCKPT2\x00"

// checkpointHeaderSize is magic + stripe count + header CRC.
const checkpointHeaderSize = 8 + 4 + 4

// maxCheckpointStripes bounds the declared stripe count so a corrupt
// header cannot cause a huge allocation.
const maxCheckpointStripes = 1 << 20

// StripeWatermarks is a v2 checkpoint's per-stripe serial vector: mark
// i promises that every committed group with serial ≤ mark i had its
// writes installed in stripe i before that stripe was copied. Replay
// applies a logged write iff its group's serial exceeds the mark of the
// object's stripe.
type StripeWatermarks struct {
	marks []uint64
}

// NewStripeWatermarks wraps a watermark vector; len(marks) must be the
// store's stripe count (a positive power of two).
func NewStripeWatermarks(marks []uint64) *StripeWatermarks {
	return &StripeWatermarks{marks: marks}
}

// Stripes reports the stripe count.
func (w *StripeWatermarks) Stripes() int { return len(w.marks) }

// Mark reports stripe i's watermark.
func (w *StripeWatermarks) Mark(i int) uint64 { return w.marks[i] }

// For reports the watermark of the stripe id maps to.
func (w *StripeWatermarks) For(id store.ObjectID) uint64 {
	return w.marks[store.StripeOf(id, len(w.marks))]
}

// Min reports the smallest watermark — the truncation bound: every
// group at or below it is fully reflected in the checkpoint, so log
// data containing only such groups is redundant.
func (w *StripeWatermarks) Min() uint64 {
	if len(w.marks) == 0 {
		return 0
	}
	min := w.marks[0]
	for _, m := range w.marks[1:] {
		if m < min {
			min = m
		}
	}
	return min
}

// Max reports the largest watermark — the serial the checkpoint as a
// whole corresponds to once the suffix is replayed.
func (w *StripeWatermarks) Max() uint64 {
	var max uint64
	for _, m := range w.marks {
		if m > max {
			max = m
		}
	}
	return max
}

// WriteCheckpointHeader begins a v2 checkpoint: magic, stripe count and
// a CRC over both, so a corrupt count is caught before it sizes the
// watermark read.
func WriteCheckpointHeader(w io.Writer, stripes int) error {
	var buf [checkpointHeaderSize]byte
	copy(buf[:8], checkpointMagic)
	binary.LittleEndian.PutUint32(buf[8:], uint32(stripes))
	binary.LittleEndian.PutUint32(buf[12:], crc32.ChecksumIEEE(buf[:12]))
	_, err := w.Write(buf[:])
	return err
}

// AppendCheckpointRecord appends one snapshot record in checkpoint body
// form (a Write record under the reserved checkpoint transaction id)
// and returns the extended slice.
func AppendCheckpointRecord(dst []byte, rec store.Record) []byte {
	return AppendEncoded(dst, &Record{
		Type:       TypeWrite,
		TxnID:      checkpointTxnID,
		ObjectID:   rec.ID,
		CommitTS:   rec.WriteTS,
		AfterImage: rec.Value,
	})
}

// WriteCheckpointTrailer ends a v2 checkpoint: the commit marker that
// terminates the record stream (carrying the max watermark, which is
// what a v1-style reader reports as the checkpoint serial) followed by
// the CRC-protected watermark vector. marks must match the stripe count
// declared in the header.
func WriteCheckpointTrailer(w io.Writer, marks []uint64) error {
	var max uint64
	for _, m := range marks {
		if m > max {
			max = m
		}
	}
	buf := AppendEncoded(nil, &Record{
		Type:        TypeCommit,
		TxnID:       checkpointTxnID,
		SerialOrder: max,
	})
	start := len(buf)
	for _, m := range marks {
		buf = binary.LittleEndian.AppendUint64(buf, m)
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf[start:]))
	_, err := w.Write(buf)
	return err
}

// Checkpoint is a decoded checkpoint file of either format.
type Checkpoint struct {
	// Snapshot is the database image, one record per object.
	Snapshot []store.Record
	// LastSerial is the serial the log tail resumes from: the v1
	// checkpoint serial, or the max stripe watermark of a v2 file.
	LastSerial uint64
	// Version is 1 (frozen, WriteCheckpoint) or 2 (fuzzy).
	Version int
	// Watermarks is the per-stripe replay vector; nil on v1 files
	// (replay everything — the frozen copy makes re-applying the prefix
	// idempotent).
	Watermarks *StripeWatermarks
}

// DecodeCheckpoint reads a checkpoint of either version from r: a v2
// file is recognized by its magic, anything else is parsed as a v1
// record stream. Incomplete or damaged files yield
// ErrIncompleteCheckpoint or ErrCorrupt — a checkpoint is all-or-
// nothing; recovery must fall back to the previous one plus the log.
func DecodeCheckpoint(r io.Reader) (*Checkpoint, error) {
	var head [checkpointHeaderSize]byte
	if _, err := io.ReadFull(r, head[:8]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, ErrIncompleteCheckpoint
		}
		return nil, err
	}
	if string(head[:8]) != checkpointMagic {
		// v1: the 8 bytes already consumed are the stream's start.
		snap, serial, err := ReadCheckpoint(io.MultiReader(bytes.NewReader(head[:8]), r))
		if err != nil {
			return nil, err
		}
		return &Checkpoint{Snapshot: snap, LastSerial: serial, Version: 1}, nil
	}
	if _, err := io.ReadFull(r, head[8:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, ErrIncompleteCheckpoint
		}
		return nil, err
	}
	if crc32.ChecksumIEEE(head[:12]) != binary.LittleEndian.Uint32(head[12:]) {
		return nil, ErrCorrupt
	}
	stripes := int(binary.LittleEndian.Uint32(head[8:]))
	if stripes <= 0 || stripes&(stripes-1) != 0 || stripes > maxCheckpointStripes {
		return nil, ErrCorrupt
	}
	ck := &Checkpoint{Version: 2}
	for {
		rec, err := Decode(r)
		if err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF || errors.Is(err, ErrCorrupt) {
				return nil, ErrIncompleteCheckpoint
			}
			return nil, err
		}
		if rec.Type == TypeCommit {
			ck.LastSerial = rec.SerialOrder
			break
		}
		if rec.Type != TypeWrite {
			return nil, ErrCorrupt
		}
		ck.Snapshot = append(ck.Snapshot, store.Record{ID: rec.ObjectID, Value: rec.AfterImage, WriteTS: rec.CommitTS})
	}
	trailer := make([]byte, 8*stripes+4)
	if _, err := io.ReadFull(r, trailer); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, ErrIncompleteCheckpoint
		}
		return nil, err
	}
	if crc32.ChecksumIEEE(trailer[:8*stripes]) != binary.LittleEndian.Uint32(trailer[8*stripes:]) {
		return nil, ErrCorrupt
	}
	marks := make([]uint64, stripes)
	for i := range marks {
		marks[i] = binary.LittleEndian.Uint64(trailer[8*i:])
	}
	ck.Watermarks = NewStripeWatermarks(marks)
	if s := ck.Watermarks.Max(); s != ck.LastSerial {
		return nil, ErrCorrupt
	}
	return ck, nil
}
