package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"testing"

	"repro/internal/store"
)

// writeV2 builds a complete v2 checkpoint file from a snapshot and a
// watermark vector, the way the fuzzy checkpointer does.
func writeV2(t *testing.T, snap []store.Record, marks []uint64) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteCheckpointHeader(&buf, len(marks)); err != nil {
		t.Fatal(err)
	}
	var body []byte
	for _, rec := range snap {
		body = AppendCheckpointRecord(body, rec)
	}
	buf.Write(body)
	if err := WriteCheckpointTrailer(&buf, marks); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestCheckpointV2RoundTrip(t *testing.T) {
	snap := []store.Record{
		{ID: 1, Value: []byte("one"), WriteTS: 11},
		{ID: 7, Value: []byte("seven"), WriteTS: 3},
		{ID: 1 << 40, Value: []byte(""), WriteTS: 99},
	}
	marks := []uint64{5, 9, 2, 9, 7, 5, 2, 8}
	ck, err := DecodeCheckpoint(bytes.NewReader(writeV2(t, snap, marks)))
	if err != nil {
		t.Fatal(err)
	}
	if ck.Version != 2 {
		t.Fatalf("Version = %d, want 2", ck.Version)
	}
	if ck.LastSerial != 9 {
		t.Fatalf("LastSerial = %d, want max watermark 9", ck.LastSerial)
	}
	if ck.Watermarks == nil || ck.Watermarks.Stripes() != len(marks) {
		t.Fatalf("watermarks = %+v", ck.Watermarks)
	}
	for i, m := range marks {
		if ck.Watermarks.Mark(i) != m {
			t.Fatalf("mark[%d] = %d, want %d", i, ck.Watermarks.Mark(i), m)
		}
	}
	if got, want := ck.Watermarks.Min(), uint64(2); got != want {
		t.Fatalf("Min = %d, want %d", got, want)
	}
	if len(ck.Snapshot) != len(snap) {
		t.Fatalf("snapshot: %d records, want %d", len(ck.Snapshot), len(snap))
	}
	for i, rec := range ck.Snapshot {
		want := snap[i]
		if rec.ID != want.ID || rec.WriteTS != want.WriteTS || !bytes.Equal(rec.Value, want.Value) {
			t.Fatalf("record %d = %+v, want %+v", i, rec, want)
		}
	}
}

func TestCheckpointV2RestoresStore(t *testing.T) {
	db := store.New()
	for i := 0; i < 100; i++ {
		db.Put(store.ObjectID(i), []byte{byte(i), byte(i >> 1)})
	}
	marks := make([]uint64, db.NumStripes())
	for i := range marks {
		marks[i] = uint64(40 + i%3)
	}
	ck, err := DecodeCheckpoint(bytes.NewReader(writeV2(t, db.Snapshot(), marks)))
	if err != nil {
		t.Fatal(err)
	}
	restored := store.New()
	restored.LoadSnapshot(ck.Snapshot)
	if restored.Checksum() != db.Checksum() {
		t.Fatal("v2 checkpoint does not reproduce the store")
	}
}

func TestDecodeCheckpointV1Fallback(t *testing.T) {
	db := store.New()
	for i := 0; i < 20; i++ {
		db.Put(store.ObjectID(i*3), []byte("v1"))
	}
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, db.Snapshot(), 77); err != nil {
		t.Fatal(err)
	}
	ck, err := DecodeCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Version != 1 || ck.LastSerial != 77 || ck.Watermarks != nil {
		t.Fatalf("v1 decode: version=%d serial=%d wm=%v", ck.Version, ck.LastSerial, ck.Watermarks)
	}
	restored := store.New()
	restored.LoadSnapshot(ck.Snapshot)
	if restored.Checksum() != db.Checksum() {
		t.Fatal("v1 fallback does not reproduce the store")
	}
}

func TestDecodeCheckpointEveryTruncationFails(t *testing.T) {
	snap := []store.Record{{ID: 4, Value: []byte("x"), WriteTS: 1}, {ID: 5, Value: []byte("y"), WriteTS: 2}}
	full := writeV2(t, snap, []uint64{3, 3, 3, 3})
	if _, err := DecodeCheckpoint(bytes.NewReader(full)); err != nil {
		t.Fatalf("full file must decode: %v", err)
	}
	for cut := 0; cut < len(full); cut++ {
		_, err := DecodeCheckpoint(bytes.NewReader(full[:cut]))
		if err == nil {
			t.Fatalf("truncation at %d/%d accepted", cut, len(full))
		}
		// A cut can land so a record frame looks damaged (ErrCorrupt via
		// the record CRC) but never so the file silently decodes.
		if !errors.Is(err, ErrIncompleteCheckpoint) && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation at %d: unexpected error %v", cut, err)
		}
	}
}

func TestDecodeCheckpointHeaderCorruption(t *testing.T) {
	full := writeV2(t, []store.Record{{ID: 1, Value: []byte("a")}}, []uint64{1, 1})
	// Flip the stripe count without fixing the header CRC.
	bad := append([]byte(nil), full...)
	bad[8] ^= 0xff
	if _, err := DecodeCheckpoint(bytes.NewReader(bad)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("header corruption: err = %v, want ErrCorrupt", err)
	}
	// Flip a watermark byte without fixing the trailer CRC.
	bad = append([]byte(nil), full...)
	bad[len(bad)-6] ^= 0x01
	if _, err := DecodeCheckpoint(bytes.NewReader(bad)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("trailer corruption: err = %v, want ErrCorrupt", err)
	}
}

// badHeader builds a v2 header with a valid CRC but an arbitrary stripe
// count, to prove the count is validated beyond the checksum.
func badHeader(stripes uint32) []byte {
	buf := make([]byte, checkpointHeaderSize)
	copy(buf, checkpointMagic)
	binary.LittleEndian.PutUint32(buf[8:], stripes)
	binary.LittleEndian.PutUint32(buf[12:], crc32.ChecksumIEEE(buf[:12]))
	return buf
}

func TestDecodeCheckpointRejectsBadStripeCounts(t *testing.T) {
	for _, stripes := range []uint32{0, 3, 6, 1 << 21} {
		if _, err := DecodeCheckpoint(bytes.NewReader(badHeader(stripes))); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("stripes=%d: err = %v, want ErrCorrupt", stripes, err)
		}
	}
}

func TestDecodeCheckpointRejectsWatermarkMismatch(t *testing.T) {
	// Commit marker says serial 5 but the watermark vector maxes at 7:
	// one of the two is lying, so the file must be rejected.
	var buf bytes.Buffer
	buf.Write(badHeader(2))
	buf.Write(AppendEncoded(nil, &Record{Type: TypeCommit, TxnID: checkpointTxnID, SerialOrder: 5}))
	marks := []uint64{7, 4}
	var trailer []byte
	for _, m := range marks {
		trailer = binary.LittleEndian.AppendUint64(trailer, m)
	}
	trailer = binary.LittleEndian.AppendUint32(trailer, crc32.ChecksumIEEE(trailer))
	buf.Write(trailer)
	if _, err := DecodeCheckpoint(&buf); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestStripeWatermarksFor(t *testing.T) {
	marks := make([]uint64, 16)
	for i := range marks {
		marks[i] = uint64(100 + i)
	}
	wm := NewStripeWatermarks(marks)
	for id := store.ObjectID(0); id < 1000; id += 37 {
		want := marks[store.StripeOf(id, 16)]
		if got := wm.For(id); got != want {
			t.Fatalf("For(%d) = %d, want %d", id, got, want)
		}
	}
	if wm.Min() != 100 || wm.Max() != 115 {
		t.Fatalf("Min/Max = %d/%d", wm.Min(), wm.Max())
	}
}
