package wal

import (
	"bytes"
	"testing"

	"repro/internal/store"
)

// FuzzDecode hammers the record decoder with arbitrary bytes: it must
// never panic or over-allocate, only return records or errors.
func FuzzDecode(f *testing.F) {
	f.Add(AppendEncoded(nil, &Record{Type: TypeWrite, TxnID: 1, ObjectID: 2, AfterImage: []byte("seed")}))
	f.Add(AppendEncoded(nil, &Record{Type: TypeCommit, TxnID: 3, SerialOrder: 4, CommitTS: 5}))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for {
			rec, err := Decode(r)
			if err != nil {
				break
			}
			// Any decoded record must re-encode to a decodable form.
			round, err2 := Decode(bytes.NewReader(AppendEncoded(nil, rec)))
			if err2 != nil {
				t.Fatalf("re-encode of decoded record failed: %v", err2)
			}
			if round.Type != rec.Type || round.TxnID != rec.TxnID {
				t.Fatal("re-encode round trip mismatch")
			}
		}
	})
}

// FuzzRecover feeds arbitrary bytes to the recovery pass: it must
// terminate cleanly on any input.
func FuzzRecover(f *testing.F) {
	var good bytes.Buffer
	Encode(&good, &Record{Type: TypeWrite, TxnID: 1, ObjectID: 1, AfterImage: []byte("v")})
	Encode(&good, &Record{Type: TypeCommit, TxnID: 1, SerialOrder: 1, CommitTS: 65536})
	f.Add(good.Bytes())
	f.Add([]byte("not a log at all"))
	f.Fuzz(func(t *testing.T, data []byte) {
		db := store.New()
		if _, err := Recover(bytes.NewReader(data), db); err != nil {
			t.Fatalf("Recover returned a hard error on fuzzed input: %v", err)
		}
	})
}

// FuzzReadCheckpoint must reject or parse any byte soup without panic.
func FuzzReadCheckpoint(f *testing.F) {
	var good bytes.Buffer
	db := store.New()
	db.Put(1, []byte("x"))
	WriteCheckpoint(&good, db.Snapshot(), 7)
	f.Add(good.Bytes())
	f.Add([]byte{1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		ReadCheckpoint(bytes.NewReader(data))
	})
}
