package wal

import (
	"errors"
	"io"
	"runtime"
	"sync"

	"repro/internal/store"
)

// ParallelApplier applies committed transaction groups to a store on a
// worker pool while preserving the only order that matters for
// correctness: groups that write the same object apply in submission
// order. Groups with disjoint write sets commute on the store (they
// touch different map entries and tombstones), so they may apply
// concurrently — this is what lets a mirror's live apply path and crash
// recovery use the lock-striped store's parallelism instead of replaying
// one group at a time.
//
// The scheduler tracks the last submitted, not-yet-applied writer task
// per object. Submitting a group adds one dependency edge per write-set
// member whose last writer is still outstanding; a task dispatches to
// the pool when its dependency count reaches zero. Because edges only
// point from earlier to later submissions the graph is acyclic, and the
// earliest unfinished task is always runnable — the pipeline cannot
// stall.
//
// Submission order is the caller's serialization order (validation order
// for a mirror, commit-record order for recovery), so the final store
// contents are bit-identical to a sequential replay: conflicting groups
// apply in the same order as sequentially, and non-conflicting groups
// commute. Mid-stream the store is NOT a serial-order prefix — group 7
// may be visible while group 5 is still in flight — so callers that need
// a consistent point (takeover, state transfer, checkpoint) must call
// Wait or Close first.
//
// Apply, Wait and Close must be called from a single goroutine; the
// worker pool is internal.
type ParallelApplier struct {
	db      *store.Store
	tsGuard bool

	mu         sync.Mutex
	cond       sync.Cond // queue became non-empty, or closing
	idle       sync.Cond // inflight hit zero
	queue      []*applyTask
	lastWriter map[store.ObjectID]*applyTask
	inflight   int // submitted but not yet fully applied
	closing    bool

	// stats, guarded by mu
	applied       int
	writesApplied int
	maxSerial     uint64
	maxCommitTS   uint64

	wg sync.WaitGroup
}

// applyTask is one submitted group plus its place in the conflict graph.
type applyTask struct {
	g    *Group
	deps int          // outstanding predecessor edges; guarded by ParallelApplier.mu
	kids []*applyTask // tasks holding an edge from this one
}

// maxApplierInflight bounds how many groups may be submitted ahead of
// the workers before Apply blocks — backpressure so that recovering a
// multi-gigabyte log does not buffer it wholesale in task objects.
const maxApplierInflight = 1024

// NewParallelApplier returns an applier over db with the given worker
// count (values < 1 are raised to 1; a single worker degenerates to an
// asynchronous sequential applier). tsGuard selects Recover's per-write
// timestamp check — skip a write whose object already carries a newer
// write timestamp — which replaying a transient-mode log needs because
// such a log may hold write-write conflicting groups out of timestamp
// order. A mirror applying a live stream in validation order passes
// false and gets the atomic ApplyGroup write phase instead.
func NewParallelApplier(db *store.Store, workers int, tsGuard bool) *ParallelApplier {
	if workers < 1 {
		workers = 1
	}
	p := &ParallelApplier{
		db:         db,
		tsGuard:    tsGuard,
		lastWriter: make(map[store.ObjectID]*applyTask),
	}
	p.cond.L = &p.mu
	p.idle.L = &p.mu
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

// DefaultRecoverWorkers is the worker count used when a caller passes 0:
// one per available CPU.
func DefaultRecoverWorkers() int { return runtime.GOMAXPROCS(0) }

// Apply submits one committed group. It returns once the group is
// scheduled (not applied); conflicting groups apply in submission order.
// Apply blocks only when the backpressure bound is full.
func (p *ParallelApplier) Apply(g *Group) {
	t := &applyTask{g: g}
	p.mu.Lock()
	for p.inflight >= maxApplierInflight {
		p.idle.Wait()
	}
	p.inflight++
	for _, w := range g.Writes {
		if prev := p.lastWriter[w.ObjectID]; prev != nil && prev != t {
			prev.kids = append(prev.kids, t)
			t.deps++
		}
		p.lastWriter[w.ObjectID] = t
	}
	if t.deps == 0 {
		p.queue = append(p.queue, t)
		p.cond.Signal()
	}
	p.mu.Unlock()
}

// Wait blocks until every submitted group has been applied. The store is
// then a consistent serial-order prefix again.
func (p *ParallelApplier) Wait() {
	p.mu.Lock()
	for p.inflight > 0 {
		p.idle.Wait()
	}
	p.mu.Unlock()
}

// Close drains all submitted groups and stops the workers. The applier
// must not be used afterwards.
func (p *ParallelApplier) Close() {
	p.mu.Lock()
	for p.inflight > 0 {
		p.idle.Wait()
	}
	p.closing = true
	p.cond.Broadcast()
	p.mu.Unlock()
	p.wg.Wait()
}

// Applied reports how many groups have been fully applied so far.
func (p *ParallelApplier) Applied() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.applied
}

// WritesApplied reports how many after images (and tombstones) have been
// installed; with the timestamp guard, skipped stale writes are not
// counted — matching Recover's accounting.
func (p *ParallelApplier) WritesApplied() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.writesApplied
}

// MaxSerial reports the largest SerialOrder applied.
func (p *ParallelApplier) MaxSerial() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.maxSerial
}

// MaxCommitTS reports the largest commit timestamp applied.
func (p *ParallelApplier) MaxCommitTS() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.maxCommitTS
}

func (p *ParallelApplier) worker() {
	defer p.wg.Done()
	for {
		p.mu.Lock()
		for len(p.queue) == 0 && !p.closing {
			p.cond.Wait()
		}
		if len(p.queue) == 0 {
			p.mu.Unlock()
			return
		}
		t := p.queue[0]
		p.queue = p.queue[1:]
		p.mu.Unlock()

		n := p.applyGroup(t.g)
		p.complete(t, n)
	}
}

// applyGroup installs one group's writes; it runs without the scheduler
// lock. Returns the number of writes actually installed.
func (p *ParallelApplier) applyGroup(g *Group) int {
	ts := g.Commit.CommitTS
	if p.tsGuard {
		applied := 0
		for _, w := range g.Writes {
			if w.Type == TypeDelete {
				p.db.ApplyDelete(w.ObjectID, ts)
				applied++
				continue
			}
			if _, wts, ok := p.db.Timestamps(w.ObjectID); ok && wts > ts {
				continue
			}
			p.db.Apply(w.ObjectID, w.AfterImage, ts)
			applied++
		}
		return applied
	}
	ops := make([]store.Op, 0, len(g.Writes))
	for _, w := range g.Writes {
		ops = append(ops, store.Op{ID: w.ObjectID, Value: w.AfterImage, Delete: w.Type == TypeDelete})
	}
	p.db.ApplyGroup(ops, ts)
	return len(ops)
}

// complete retires a finished task: releases its conflict-graph edges,
// dispatches newly runnable successors and folds the group into the
// stats.
func (p *ParallelApplier) complete(t *applyTask, writes int) {
	p.mu.Lock()
	for _, w := range t.g.Writes {
		if p.lastWriter[w.ObjectID] == t {
			delete(p.lastWriter, w.ObjectID)
		}
	}
	signalled := false
	for _, k := range t.kids {
		k.deps--
		if k.deps == 0 {
			p.queue = append(p.queue, k)
			signalled = true
		}
	}
	if signalled {
		p.cond.Broadcast()
	}
	p.applied++
	p.writesApplied += writes
	if t.g.Commit.SerialOrder > p.maxSerial {
		p.maxSerial = t.g.Commit.SerialOrder
	}
	if t.g.Commit.CommitTS > p.maxCommitTS {
		p.maxCommitTS = t.g.Commit.CommitTS
	}
	p.inflight--
	if p.inflight == 0 || p.inflight == maxApplierInflight-1 {
		p.idle.Broadcast()
	}
	p.mu.Unlock()
}

// ParallelRecover is Recover with the apply phase fanned out over a
// conflict-aware worker pool: record decode and commit-group assembly
// stay a single ordered pass (exactly Recover's buffering semantics),
// but each committed group is handed to a ParallelApplier, so groups
// with disjoint write sets install concurrently while per-object order —
// and therefore the final database — is bit-identical to Recover.
// workers <= 1 falls back to the sequential pass; workers == 0 uses one
// worker per CPU via DefaultRecoverWorkers.
func ParallelRecover(r io.Reader, db *store.Store, workers int) (RecoverStats, error) {
	return ParallelRecoverSuffix(r, db, workers, nil)
}

// ParallelRecoverSuffix is ParallelRecover with a fuzzy-checkpoint
// watermark filter (see RecoverSuffix): writes whose group serial is at
// or below their stripe's watermark are dropped at group assembly, before
// the conflict graph ever sees them, so a mostly-covered log suffix
// costs decode time but no apply contention.
func ParallelRecoverSuffix(r io.Reader, db *store.Store, workers int, wm *StripeWatermarks) (RecoverStats, error) {
	if workers == 0 {
		workers = DefaultRecoverWorkers()
	}
	if workers <= 1 {
		return RecoverSuffix(r, db, wm)
	}
	var st RecoverStats
	ap := NewParallelApplier(db, workers, true)
	buffered := 0
	pending := make(map[uint64][]*Record)
	err := func() error {
		for {
			rec, err := Decode(r)
			if err != nil {
				switch {
				case err == io.EOF:
					return nil
				case err == io.ErrUnexpectedEOF || errors.Is(err, ErrCorrupt):
					st.Truncated = true
					return nil
				default:
					return err
				}
			}
			switch rec.Type {
			case TypeWrite, TypeDelete:
				pending[uint64(rec.TxnID)] = append(pending[uint64(rec.TxnID)], rec)
				buffered++
				if buffered > st.PeakBuffered {
					st.PeakBuffered = buffered
				}
			case TypeAbort:
				buffered -= len(pending[uint64(rec.TxnID)])
				delete(pending, uint64(rec.TxnID))
			case TypeCommit:
				g := &Group{Writes: pending[uint64(rec.TxnID)], Commit: rec}
				buffered -= len(g.Writes)
				delete(pending, uint64(rec.TxnID))
				if wm != nil {
					kept := g.Writes[:0]
					for _, w := range g.Writes {
						if rec.SerialOrder <= wm.For(w.ObjectID) {
							st.WritesSkipped++
							continue
						}
						kept = append(kept, w)
					}
					g.Writes = kept
				}
				// Apply even when every write was filtered: the commit
				// still advances the applier's MaxSerial bookkeeping.
				ap.Apply(g)
			case TypeHeartbeat:
				// ignore
			}
		}
	}()
	ap.Close()
	st.Discarded = len(pending)
	st.Applied = ap.Applied()
	st.WritesApplied = ap.WritesApplied()
	if s := ap.MaxSerial(); s > st.LastSerial {
		st.LastSerial = s
	}
	return st, err
}
