package wal

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/store"
	"repro/internal/txn"
)

// benchLog builds a committed-only log of txns transactions with
// writesPer 64-byte after images each, drawing object ids from idDomain.
// A small domain forces write-write conflicts (serial chains in the
// conflict graph); a large one keeps write sets disjoint.
func benchLog(txns, writesPer, idDomain int) []byte {
	rng := rand.New(rand.NewSource(42))
	img := make([]byte, 64)
	var buf bytes.Buffer
	for i := 1; i <= txns; i++ {
		for w := 0; w < writesPer; w++ {
			if err := Encode(&buf, &Record{Type: TypeWrite, TxnID: txn.ID(i),
				ObjectID: store.ObjectID(rng.Intn(idDomain)), AfterImage: img}); err != nil {
				panic(err)
			}
		}
		if err := Encode(&buf, &Record{Type: TypeCommit, TxnID: txn.ID(i),
			SerialOrder: uint64(i), CommitTS: uint64(i) * 64}); err != nil {
			panic(err)
		}
	}
	return buf.Bytes()
}

// BenchmarkRecoverParallel measures full-log replay throughput at 1, 2,
// 4 and 8 workers under low contention (write sets effectively disjoint
// — the conflict graph is wide and the store's 64 stripes absorb the
// parallelism) and high contention (64 hot objects — conflict chains
// serialize much of the apply). One op = one complete replay; the B/s
// figure is log bytes per second. workers=1 is the sequential Recover
// baseline the ≥1.5×@4-workers acceptance target compares against.
func BenchmarkRecoverParallel(b *testing.B) {
	const txns, writesPer = 3000, 4
	for _, c := range []struct {
		name     string
		idDomain int
	}{
		{"lowContention", 1 << 20},
		{"highContention", 64},
	} {
		logBytes := benchLog(txns, writesPer, c.idDomain)
		for _, workers := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/workers=%d", c.name, workers), func(b *testing.B) {
				b.SetBytes(int64(len(logBytes)))
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					db := store.New()
					if _, err := ParallelRecover(bytes.NewReader(logBytes), db, workers); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(txns)*float64(b.N)/b.Elapsed().Seconds(), "txn/s")
			})
		}
	}
}

// BenchmarkParallelApplier isolates the conflict-aware scheduler +
// worker pool (no decode): one op = one group through Apply, drained at
// the end. The mirror's live apply path is exactly this plus the
// ordered log append.
func BenchmarkParallelApplier(b *testing.B) {
	img := make([]byte, 64)
	for _, c := range []struct {
		name     string
		idDomain int
	}{
		{"lowContention", 1 << 20},
		{"highContention", 64},
	} {
		for _, workers := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/workers=%d", c.name, workers), func(b *testing.B) {
				rng := rand.New(rand.NewSource(1))
				groups := make([]*Group, 4096)
				for i := range groups {
					serial := uint64(i + 1)
					groups[i] = &Group{
						Writes: []*Record{
							{Type: TypeWrite, TxnID: txn.ID(serial), ObjectID: store.ObjectID(rng.Intn(c.idDomain)), AfterImage: img},
							{Type: TypeWrite, TxnID: txn.ID(serial), ObjectID: store.ObjectID(rng.Intn(c.idDomain)), AfterImage: img},
						},
						Commit: &Record{Type: TypeCommit, TxnID: txn.ID(serial), SerialOrder: serial, CommitTS: serial * 64},
					}
				}
				db := store.New()
				ap := NewParallelApplier(db, workers, false)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					ap.Apply(groups[i%len(groups)])
				}
				ap.Wait()
				b.StopTimer()
				ap.Close()
			})
		}
	}
}
