package wal

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/store"
	"repro/internal/txn"
)

// randomLog builds an encoded log of randomized transactions: random
// write-set sizes over a small (contended) id domain, a mix of
// committed, aborted and dangling transactions, and — when interleave is
// set — write records shuffled across transaction boundaries the way a
// transient-mode log can hold them. It returns the encoded bytes.
func randomLog(rng *rand.Rand, txns, idDomain int, interleave bool) []byte {
	type source struct{ recs []*Record }
	srcs := make([]*source, 0, txns)
	serial := uint64(0)
	for i := 0; i < txns; i++ {
		id := txn.ID(i + 1)
		s := &source{}
		nw := rng.Intn(5)
		for w := 0; w < nw; w++ {
			if rng.Intn(10) == 0 {
				s.recs = append(s.recs, &Record{Type: TypeDelete, TxnID: id,
					ObjectID: store.ObjectID(rng.Intn(idDomain))})
				continue
			}
			s.recs = append(s.recs, &Record{Type: TypeWrite, TxnID: id,
				ObjectID:   store.ObjectID(rng.Intn(idDomain)),
				AfterImage: []byte{byte(i), byte(w), byte(rng.Intn(256))}})
		}
		switch r := rng.Intn(100); {
		case r < 75: // committed; commit timestamps deliberately not serial-monotone
			serial++
			s.recs = append(s.recs, &Record{Type: TypeCommit, TxnID: id,
				SerialOrder: serial, CommitTS: uint64(1 + rng.Intn(txns*4))})
		case r < 85: // aborted
			s.recs = append(s.recs, &Record{Type: TypeAbort, TxnID: id})
		default: // dangling (no commit record — discarded by recovery)
		}
		srcs = append(srcs, s)
	}
	var ordered []*Record
	if interleave {
		remaining := 0
		for _, s := range srcs {
			if len(s.recs) > 0 {
				remaining++
			}
		}
		for remaining > 0 {
			i := rng.Intn(len(srcs))
			if len(srcs[i].recs) == 0 {
				continue
			}
			ordered = append(ordered, srcs[i].recs[0])
			srcs[i].recs = srcs[i].recs[1:]
			if len(srcs[i].recs) == 0 {
				remaining--
			}
		}
	} else {
		for _, s := range srcs {
			ordered = append(ordered, s.recs...)
		}
	}
	var buf bytes.Buffer
	for _, r := range ordered {
		if err := Encode(&buf, r); err != nil {
			panic(err)
		}
	}
	return buf.Bytes()
}

// TestPropertyParallelRecoverEquivalence is the acceptance property of
// the parallel redo pipeline: across randomized group interleavings,
// contention levels and worker counts, ParallelRecover yields a database
// checksum and recovery statistics identical to the sequential pass.
func TestPropertyParallelRecoverEquivalence(t *testing.T) {
	f := func(seed int64, w uint8, inter bool) bool {
		rng := rand.New(rand.NewSource(seed))
		workers := 2 + int(w%7) // 2..8
		idDomain := 1 + rng.Intn(12)
		logBytes := randomLog(rng, 20+rng.Intn(40), idDomain, inter)

		seq := store.New()
		seqStats, err := Recover(bytes.NewReader(logBytes), seq)
		if err != nil {
			t.Logf("sequential recover: %v", err)
			return false
		}
		par := store.New()
		parStats, err := ParallelRecover(bytes.NewReader(logBytes), par, workers)
		if err != nil {
			t.Logf("parallel recover: %v", err)
			return false
		}
		if seq.Checksum() != par.Checksum() {
			t.Logf("checksum mismatch: workers=%d domain=%d interleave=%v", workers, idDomain, inter)
			return false
		}
		if seqStats.Applied != parStats.Applied ||
			seqStats.WritesApplied != parStats.WritesApplied ||
			seqStats.Discarded != parStats.Discarded ||
			seqStats.LastSerial != parStats.LastSerial ||
			seqStats.Truncated != parStats.Truncated {
			t.Logf("stats mismatch: seq=%+v par=%+v", seqStats, parStats)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestParallelRecoverTruncatedTail pushes a torn log (ended mid-record)
// through the parallel path: everything before the damage applies, the
// pass ends cleanly with Truncated set, and the result still matches the
// sequential pass bit for bit.
func TestParallelRecoverTruncatedTail(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	logBytes := randomLog(rng, 40, 8, true)
	logBytes = logBytes[:len(logBytes)-11] // tear the last record

	seq := store.New()
	seqStats, err := Recover(bytes.NewReader(logBytes), seq)
	if err != nil {
		t.Fatal(err)
	}
	if !seqStats.Truncated {
		t.Fatal("sequential pass did not report truncation — test setup broken")
	}
	par := store.New()
	parStats, err := ParallelRecover(bytes.NewReader(logBytes), par, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !parStats.Truncated {
		t.Fatal("parallel pass did not report the torn tail")
	}
	if seq.Checksum() != par.Checksum() {
		t.Fatalf("torn-tail divergence: seq %08x par %08x", seq.Checksum(), par.Checksum())
	}
	if seqStats.Applied != parStats.Applied || seqStats.Discarded != parStats.Discarded {
		t.Fatalf("torn-tail stats mismatch: seq=%+v par=%+v", seqStats, parStats)
	}
}

// TestParallelRecoverCorruptTail covers checksum damage (not just
// truncation) ending the parallel pass cleanly.
func TestParallelRecoverCorruptTail(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	logBytes := randomLog(rng, 30, 6, false)
	logBytes[len(logBytes)-20] ^= 0xff // corrupt inside the last record

	par := store.New()
	st, err := ParallelRecover(bytes.NewReader(logBytes), par, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Truncated {
		t.Fatal("corrupt tail not reported as truncation")
	}
	seq := store.New()
	seqStats, err := Recover(bytes.NewReader(logBytes), seq)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Checksum() != par.Checksum() || seqStats.Applied != st.Applied {
		t.Fatalf("corrupt-tail divergence: seq=%+v par=%+v", seqStats, st)
	}
}

// TestPropertyParallelApplierMirrorEquivalence checks the mirror-side
// sink (no timestamp guard, atomic ApplyGroup write phase): applying
// groups through the parallel applier in validation order leaves the
// database copy identical to the sequential inline loop, for any
// conflict structure and worker count.
func TestPropertyParallelApplierMirrorEquivalence(t *testing.T) {
	f := func(seed int64, w uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		workers := 2 + int(w%7)
		idDomain := 1 + rng.Intn(10)
		groups := make([]*Group, 0, 64)
		for i := 0; i < 30+rng.Intn(30); i++ {
			id := txn.ID(i + 1)
			var writes []*Record
			for n := rng.Intn(4); n > 0; n-- {
				if rng.Intn(8) == 0 {
					writes = append(writes, &Record{Type: TypeDelete, TxnID: id,
						ObjectID: store.ObjectID(rng.Intn(idDomain))})
					continue
				}
				writes = append(writes, &Record{Type: TypeWrite, TxnID: id,
					ObjectID:   store.ObjectID(rng.Intn(idDomain)),
					AfterImage: []byte{byte(i), byte(n)}})
			}
			groups = append(groups, &Group{Writes: writes, Commit: &Record{
				Type: TypeCommit, TxnID: id,
				SerialOrder: uint64(i + 1), CommitTS: uint64(1 + rng.Intn(200)),
			}})
		}

		seq := store.New()
		for _, g := range groups {
			ops := make([]store.Op, 0, len(g.Writes))
			for _, w := range g.Writes {
				ops = append(ops, store.Op{ID: w.ObjectID, Value: w.AfterImage, Delete: w.Type == TypeDelete})
			}
			seq.ApplyGroup(ops, g.Commit.CommitTS)
		}

		par := store.New()
		ap := NewParallelApplier(par, workers, false)
		for _, g := range groups {
			ap.Apply(g)
		}
		ap.Close()
		if ap.Applied() != len(groups) {
			t.Logf("applied %d of %d groups", ap.Applied(), len(groups))
			return false
		}
		return seq.Checksum() == par.Checksum()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestParallelApplierWaitDrains checks that Wait is a full barrier: the
// store is a consistent serial-order prefix afterwards and the applier
// remains usable for further groups.
func TestParallelApplierWaitDrains(t *testing.T) {
	db := store.New()
	ap := NewParallelApplier(db, 4, false)
	defer ap.Close()
	for round := 0; round < 3; round++ {
		for i := 0; i < 200; i++ {
			serial := uint64(round*200 + i + 1)
			ap.Apply(&Group{
				Writes: []*Record{{Type: TypeWrite, TxnID: txn.ID(serial),
					ObjectID: store.ObjectID(i % 17), AfterImage: []byte{byte(round)}}},
				Commit: &Record{Type: TypeCommit, TxnID: txn.ID(serial),
					SerialOrder: serial, CommitTS: serial},
			})
		}
		ap.Wait()
		if got, want := ap.Applied(), (round+1)*200; got != want {
			t.Fatalf("round %d: applied %d, want %d", round, got, want)
		}
		if got, want := ap.MaxSerial(), uint64((round+1)*200); got != want {
			t.Fatalf("round %d: max serial %d, want %d", round, got, want)
		}
	}
	if db.Len() != 17 {
		t.Fatalf("got %d objects, want 17", db.Len())
	}
}

// TestParallelApplierBackpressure floods the applier far past its
// inflight bound with maximally conflicting groups (every group writes
// object 0, forcing a fully serial chain) and checks nothing deadlocks
// or is lost.
func TestParallelApplierBackpressure(t *testing.T) {
	db := store.New()
	ap := NewParallelApplier(db, 8, true)
	const n = 3 * maxApplierInflight
	for i := 1; i <= n; i++ {
		ap.Apply(&Group{
			Writes: []*Record{{Type: TypeWrite, TxnID: txn.ID(i),
				ObjectID: 0, AfterImage: []byte{byte(i)}}},
			Commit: &Record{Type: TypeCommit, TxnID: txn.ID(i),
				SerialOrder: uint64(i), CommitTS: uint64(i)},
		})
	}
	ap.Close()
	if got := ap.Applied(); got != n {
		t.Fatalf("applied %d, want %d", got, n)
	}
	v, ok := db.Get(0)
	if !ok || v[0] != byte(n%256) {
		t.Fatalf("final value %v (ok=%v), want [%d]", v, ok, byte(n%256))
	}
}

// TestParallelRecoverWorkerDefaults: 0 means one worker per CPU, <=1
// falls back to the sequential pass — both must still replay correctly.
func TestParallelRecoverWorkerDefaults(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	logBytes := randomLog(rng, 25, 6, true)
	want := store.New()
	if _, err := Recover(bytes.NewReader(logBytes), want); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{-1, 0, 1} {
		db := store.New()
		if _, err := ParallelRecover(bytes.NewReader(logBytes), db, workers); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if db.Checksum() != want.Checksum() {
			t.Fatalf("workers=%d: checksum mismatch", workers)
		}
	}
}
