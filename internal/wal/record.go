// Package wal implements RODAIN's redo-only transaction log: record
// encoding, the log writer, the mirror-side reordering buffer, single-pass
// recovery, and database checkpoints.
//
// Log records serve two purposes in a RODAIN node (§3 of the paper):
// they keep the database copy on the Mirror Node up to date, and they are
// stored on secondary media like a traditional database log so that the
// database survives even a simultaneous failure of both nodes.
//
// Records are generated in a transaction's write phase, after it has been
// accepted for commit: one Write record per updated item (transaction id,
// object id, after image) and one Commit record per transaction — also
// for read-only transactions, which is why read-only and update commit
// times stay close. There are no undo records: a transaction that entered
// its write phase will commit unless the node fails, and the mirror
// applies updates only when it has seen the commit record, so recovery
// never undoes anything.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/store"
	"repro/internal/txn"
)

// Type discriminates log record kinds.
type Type uint8

// Record kinds.
const (
	// TypeWrite carries one updated item's after image.
	TypeWrite Type = iota + 1
	// TypeCommit marks a transaction committed; its log records are
	// complete. SerialOrder carries the true validation order.
	TypeCommit
	// TypeAbort tells the mirror to drop a transaction's buffered
	// records (used when the primary restarts a validated-then-doomed
	// transaction; rare, but keeps the stream self-contained).
	TypeAbort
	// TypeHeartbeat is an empty keep-alive record used by the shipping
	// layer; it never reaches the database.
	TypeHeartbeat
	// TypeDelete removes one item (transaction id, object id).
	TypeDelete
)

func (t Type) String() string {
	switch t {
	case TypeWrite:
		return "write"
	case TypeCommit:
		return "commit"
	case TypeAbort:
		return "abort"
	case TypeHeartbeat:
		return "heartbeat"
	case TypeDelete:
		return "delete"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// Record is one log record.
type Record struct {
	Type Type
	// TxnID identifies the transaction on the node that executed it.
	TxnID txn.ID
	// SerialOrder is the true validation order, set on Commit records.
	SerialOrder uint64
	// CommitTS is the serialization timestamp, set on Commit records.
	CommitTS uint64
	// ObjectID and AfterImage are set on Write records.
	ObjectID   store.ObjectID
	AfterImage []byte
}

// ErrCorrupt reports a record whose checksum or framing is invalid.
var ErrCorrupt = errors.New("wal: corrupt record")

// header layout: crc(4) len(4) type(1) txn(8) serial(8) ts(8) obj(8) = 41
// bytes, followed by len bytes of after image. crc covers everything
// after itself.
const headerSize = 4 + 4 + 1 + 8 + 8 + 8 + 8

// MaxImageSize bounds a single after image; larger records are rejected
// as corrupt rather than causing huge allocations on a damaged log.
const MaxImageSize = 1 << 26 // 64 MiB

// EncodedSize reports the on-disk size of r.
func EncodedSize(r *Record) int { return headerSize + len(r.AfterImage) }

// AppendEncoded appends the encoded form of r to dst and returns the
// extended slice.
func AppendEncoded(dst []byte, r *Record) []byte {
	off := len(dst)
	dst = append(dst, make([]byte, headerSize)...)
	binary.LittleEndian.PutUint32(dst[off+4:], uint32(len(r.AfterImage)))
	dst[off+8] = byte(r.Type)
	binary.LittleEndian.PutUint64(dst[off+9:], uint64(r.TxnID))
	binary.LittleEndian.PutUint64(dst[off+17:], r.SerialOrder)
	binary.LittleEndian.PutUint64(dst[off+25:], r.CommitTS)
	binary.LittleEndian.PutUint64(dst[off+33:], uint64(r.ObjectID))
	dst = append(dst, r.AfterImage...)
	crc := crc32.ChecksumIEEE(dst[off+4:])
	binary.LittleEndian.PutUint32(dst[off:], crc)
	return dst
}

// Encode writes r to w.
func Encode(w io.Writer, r *Record) error {
	_, err := w.Write(AppendEncoded(nil, r))
	return err
}

// DecodeBytes decodes exactly one record from b, the zero-reader fast
// path for framed transports whose payload is one whole record. The
// after image is copied out of b, so the caller may reuse b immediately.
// It returns ErrCorrupt on checksum, framing or trailing-garbage damage.
func DecodeBytes(b []byte) (*Record, error) {
	if len(b) < headerSize {
		return nil, ErrCorrupt
	}
	imgLen := binary.LittleEndian.Uint32(b[4:])
	if imgLen > MaxImageSize || len(b) != headerSize+int(imgLen) {
		return nil, ErrCorrupt
	}
	if crc32.ChecksumIEEE(b[4:]) != binary.LittleEndian.Uint32(b[:4]) {
		return nil, ErrCorrupt
	}
	rec := &Record{
		Type:        Type(b[8]),
		TxnID:       txn.ID(binary.LittleEndian.Uint64(b[9:])),
		SerialOrder: binary.LittleEndian.Uint64(b[17:]),
		CommitTS:    binary.LittleEndian.Uint64(b[25:]),
		ObjectID:    store.ObjectID(binary.LittleEndian.Uint64(b[33:])),
	}
	if imgLen > 0 {
		rec.AfterImage = make([]byte, imgLen)
		copy(rec.AfterImage, b[headerSize:])
	}
	switch rec.Type {
	case TypeWrite, TypeCommit, TypeAbort, TypeHeartbeat, TypeDelete:
	default:
		return nil, ErrCorrupt
	}
	return rec, nil
}

// Decode reads one record from r. It returns io.EOF at a clean record
// boundary, io.ErrUnexpectedEOF if the stream ends mid-record, and
// ErrCorrupt on checksum or framing damage.
func Decode(r io.Reader) (*Record, error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, err
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, io.ErrUnexpectedEOF
		}
		return nil, err
	}
	imgLen := binary.LittleEndian.Uint32(hdr[4:])
	if imgLen > MaxImageSize {
		return nil, ErrCorrupt
	}
	rec := &Record{
		Type:        Type(hdr[8]),
		TxnID:       txn.ID(binary.LittleEndian.Uint64(hdr[9:])),
		SerialOrder: binary.LittleEndian.Uint64(hdr[17:]),
		CommitTS:    binary.LittleEndian.Uint64(hdr[25:]),
		ObjectID:    store.ObjectID(binary.LittleEndian.Uint64(hdr[33:])),
	}
	if imgLen > 0 {
		rec.AfterImage = make([]byte, imgLen)
		if _, err := io.ReadFull(r, rec.AfterImage); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return nil, io.ErrUnexpectedEOF
			}
			return nil, err
		}
	}
	wantCRC := binary.LittleEndian.Uint32(hdr[:4])
	crc := crc32.ChecksumIEEE(hdr[4:])
	crc = crc32.Update(crc, crc32.IEEETable, rec.AfterImage)
	if crc != wantCRC {
		return nil, ErrCorrupt
	}
	switch rec.Type {
	case TypeWrite, TypeCommit, TypeAbort, TypeHeartbeat, TypeDelete:
	default:
		return nil, ErrCorrupt
	}
	return rec, nil
}

// WriteRecordsFor builds the redo records for a validated transaction:
// one Write record per staged after image, in first-write order.
func WriteRecordsFor(t *txn.Transaction) []*Record {
	ids := t.WriteIDs()
	recs := make([]*Record, 0, len(ids))
	for _, id := range ids {
		if t.IsDelete(id) {
			recs = append(recs, &Record{Type: TypeDelete, TxnID: t.ID, ObjectID: id})
			continue
		}
		img, _ := t.WriteImage(id)
		recs = append(recs, &Record{
			Type:       TypeWrite,
			TxnID:      t.ID,
			ObjectID:   id,
			AfterImage: img,
		})
	}
	return recs
}

// CommitRecordFor builds the commit record for a validated transaction.
func CommitRecordFor(t *txn.Transaction) *Record {
	return &Record{
		Type:        TypeCommit,
		TxnID:       t.ID,
		SerialOrder: t.SerialOrder,
		CommitTS:    t.CommitTS,
	}
}

func (r *Record) String() string {
	switch r.Type {
	case TypeWrite:
		return fmt.Sprintf("write{txn=%d obj=%d len=%d}", r.TxnID, r.ObjectID, len(r.AfterImage))
	case TypeCommit:
		return fmt.Sprintf("commit{txn=%d serial=%d ts=%d}", r.TxnID, r.SerialOrder, r.CommitTS)
	case TypeAbort:
		return fmt.Sprintf("abort{txn=%d}", r.TxnID)
	case TypeHeartbeat:
		return "heartbeat{}"
	case TypeDelete:
		return fmt.Sprintf("delete{txn=%d obj=%d}", r.TxnID, r.ObjectID)
	default:
		return fmt.Sprintf("record{type=%d}", r.Type)
	}
}
