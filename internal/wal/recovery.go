package wal

import (
	"errors"
	"io"

	"repro/internal/store"
)

// RecoverStats summarizes a recovery pass.
type RecoverStats struct {
	// Applied is the number of committed transactions replayed.
	Applied int
	// WritesApplied is the number of after images installed.
	WritesApplied int
	// Discarded is the number of transactions whose writes were present
	// but that had no commit record (aborted by the failure).
	Discarded int
	// LastSerial is the validation order of the last transaction
	// replayed, zero if none.
	LastSerial uint64
	// Truncated reports whether the log ended mid-record or with a
	// corrupt tail — expected after a crash; everything before the
	// damage has been applied.
	Truncated bool
	// PeakBuffered is the largest number of write records buffered
	// while waiting for a commit record. A log stored in reordered
	// (grouped) form needs only one transaction's worth; an unordered
	// log can force the recovery to hold much more — this is the cost
	// the mirror's reordering avoids.
	PeakBuffered int
	// WritesSkipped counts writes dropped by a stripe-watermark filter
	// during suffix replay: their group's serial was at or below the
	// watermark of the object's stripe, so the checkpoint already holds
	// them.
	WritesSkipped int
}

// Recover replays a stored redo log into db in a single pass: write
// records are buffered per transaction and applied when the transaction's
// commit record is seen; transactions with no commit record are
// discarded. The log is expected in the stored format (groups in
// validation order), which is exactly why the mirror reorders before
// storing — but buffering per transaction makes the pass robust to
// interleaved groups too.
//
// A truncated or corrupt tail ends the pass cleanly (Truncated is set);
// any other read error is returned.
func Recover(r io.Reader, db *store.Store) (RecoverStats, error) {
	return RecoverSuffix(r, db, nil)
}

// RecoverSuffix is Recover with a fuzzy-checkpoint watermark filter: a
// committed write is applied only if its group's serial exceeds the
// watermark of the stripe its object lives in (wm nil replays
// everything). Commit records below every watermark still advance
// LastSerial, so the controller reseeds past serials the checkpoint
// already covers.
func RecoverSuffix(r io.Reader, db *store.Store, wm *StripeWatermarks) (RecoverStats, error) {
	var st RecoverStats
	buffered := 0
	pending := make(map[uint64][]*Record)
	for {
		rec, err := Decode(r)
		if err != nil {
			switch {
			case err == io.EOF:
				st.Discarded = len(pending)
				return st, nil
			case err == io.ErrUnexpectedEOF || errors.Is(err, ErrCorrupt):
				st.Truncated = true
				st.Discarded = len(pending)
				return st, nil
			default:
				return st, err
			}
		}
		switch rec.Type {
		case TypeWrite, TypeDelete:
			pending[uint64(rec.TxnID)] = append(pending[uint64(rec.TxnID)], rec)
			buffered++
			if buffered > st.PeakBuffered {
				st.PeakBuffered = buffered
			}
		case TypeAbort:
			buffered -= len(pending[uint64(rec.TxnID)])
			delete(pending, uint64(rec.TxnID))
		case TypeCommit:
			for _, w := range pending[uint64(rec.TxnID)] {
				// A transient-mode log may hold write-write conflicting
				// groups out of timestamp order (workers append after
				// validation); keep the version with the larger commit
				// timestamp. Tombstones carry their own timestamps so
				// older writes cannot resurrect deleted objects.
				if wm != nil && rec.SerialOrder <= wm.For(w.ObjectID) {
					st.WritesSkipped++
					continue
				}
				if w.Type == TypeDelete {
					db.ApplyDelete(w.ObjectID, rec.CommitTS)
					st.WritesApplied++
					continue
				}
				if _, wts, ok := db.Timestamps(w.ObjectID); ok && wts > rec.CommitTS {
					continue
				}
				db.Apply(w.ObjectID, w.AfterImage, rec.CommitTS)
				st.WritesApplied++
			}
			buffered -= len(pending[uint64(rec.TxnID)])
			delete(pending, uint64(rec.TxnID))
			st.Applied++
			if rec.SerialOrder > st.LastSerial {
				st.LastSerial = rec.SerialOrder
			}
		case TypeHeartbeat:
			// ignore
		}
	}
}

// checkpointTxnID marks checkpoint records; it can never collide with a
// real transaction id because ids start at 1.
const checkpointTxnID = 0

// WriteCheckpoint serializes a database snapshot to w in log-record
// format: one Write record per object followed by a Commit record whose
// SerialOrder is the validation order the log tail resumes from.
func WriteCheckpoint(w io.Writer, snap []store.Record, lastSerial uint64) error {
	buf := make([]byte, 0, 4096)
	for _, rec := range snap {
		buf = AppendEncoded(buf[:0], &Record{
			Type:       TypeWrite,
			TxnID:      checkpointTxnID,
			ObjectID:   rec.ID,
			CommitTS:   rec.WriteTS,
			AfterImage: rec.Value,
		})
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	buf = AppendEncoded(buf[:0], &Record{
		Type:        TypeCommit,
		TxnID:       checkpointTxnID,
		SerialOrder: lastSerial,
	})
	_, err := w.Write(buf)
	return err
}

// ErrIncompleteCheckpoint reports a checkpoint stream without the final
// commit marker — the checkpoint was cut mid-write and must not be used.
var ErrIncompleteCheckpoint = errors.New("wal: incomplete checkpoint")

// ReadCheckpoint parses a checkpoint written by WriteCheckpoint and
// returns the snapshot along with the validation order to resume the log
// from.
func ReadCheckpoint(r io.Reader) ([]store.Record, uint64, error) {
	var snap []store.Record
	for {
		rec, err := Decode(r)
		if err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF || errors.Is(err, ErrCorrupt) {
				return nil, 0, ErrIncompleteCheckpoint
			}
			return nil, 0, err
		}
		switch rec.Type {
		case TypeWrite:
			snap = append(snap, store.Record{ID: rec.ObjectID, Value: rec.AfterImage, WriteTS: rec.CommitTS})
		case TypeCommit:
			return snap, rec.SerialOrder, nil
		default:
			return nil, 0, ErrCorrupt
		}
	}
}
