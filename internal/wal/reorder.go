package wal

import (
	"container/heap"
	"fmt"
)

// Group is one committed transaction's log records in apply order: all
// Write records followed by the Commit record.
type Group struct {
	Writes []*Record
	Commit *Record
}

// SerialOrder reports the group's true validation order.
func (g *Group) SerialOrder() uint64 { return g.Commit.SerialOrder }

// Reorderer is the mirror-side buffer that reorders incoming log records
// into true validation order, grouped by transaction (§3: "The logs are
// reordered based on transactions before the Mirror Node updates its
// database copy and stores the logs on disk").
//
// Write records are buffered per transaction. When a transaction's
// Commit record arrives the group is complete; complete groups are
// released strictly in SerialOrder, so the mirror applies updates in the
// exact validation order of the primary and the stored log can be
// replayed in a single pass. An Abort record discards a transaction's
// buffered writes.
//
// Reorderer is not safe for concurrent use; the mirror feeds it from a
// single stream.
type Reorderer struct {
	pending    map[uint64][]*Record // txn id → buffered writes
	ready      groupHeap
	nextSerial uint64 // next SerialOrder to release
	buffered   int    // count of buffered (unreleased) records
}

// NewReorderer returns an empty reordering buffer that releases groups
// starting at the given serial order. Pass 0 for a fresh stream, which
// starts at serial order 1; a mirror resuming after a checkpoint passes
// the checkpoint's last serial plus one.
func NewReorderer(startSerial uint64) *Reorderer {
	if startSerial == 0 {
		startSerial = 1
	}
	return &Reorderer{
		pending:    make(map[uint64][]*Record),
		nextSerial: startSerial,
	}
}

type groupHeap []*Group

func (h groupHeap) Len() int           { return len(h) }
func (h groupHeap) Less(i, j int) bool { return h[i].SerialOrder() < h[j].SerialOrder() }
func (h groupHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *groupHeap) Push(x any)        { *h = append(*h, x.(*Group)) }
func (h *groupHeap) Pop() any          { old := *h; n := len(old); g := old[n-1]; *h = old[:n-1]; return g }
func (h groupHeap) peekSerial() uint64 { return h[0].SerialOrder() }

// Add feeds one record into the buffer and returns the groups that
// became releasable, in validation order. Heartbeats are ignored.
func (r *Reorderer) Add(rec *Record) ([]*Group, error) {
	switch rec.Type {
	case TypeHeartbeat:
		return nil, nil
	case TypeWrite, TypeDelete:
		r.pending[uint64(rec.TxnID)] = append(r.pending[uint64(rec.TxnID)], rec)
		r.buffered++
		return nil, nil
	case TypeAbort:
		r.buffered -= len(r.pending[uint64(rec.TxnID)])
		delete(r.pending, uint64(rec.TxnID))
		return nil, nil
	case TypeCommit:
		g := &Group{Writes: r.pending[uint64(rec.TxnID)], Commit: rec}
		delete(r.pending, uint64(rec.TxnID))
		r.buffered++
		heap.Push(&r.ready, g)
		var out []*Group
		for len(r.ready) > 0 && r.ready.peekSerial() == r.nextSerial {
			g := heap.Pop(&r.ready).(*Group)
			r.buffered -= len(g.Writes) + 1
			r.nextSerial++
			out = append(out, g)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("wal: reorderer: %w: unknown type %d", ErrCorrupt, rec.Type)
	}
}

// Buffered reports how many records are held back waiting for commit
// records or earlier serial orders.
func (r *Reorderer) Buffered() int { return r.buffered }

// PendingTxns reports how many transactions have buffered writes but no
// commit record yet. On primary failure these are the transactions that
// are considered aborted.
func (r *Reorderer) PendingTxns() int { return len(r.pending) }

// DiscardPending drops every buffered, uncommitted transaction — the
// mirror does this on takeover: transactions without a commit record are
// considered aborted and their updates are never applied.
func (r *Reorderer) DiscardPending() int {
	n := len(r.pending)
	for id, recs := range r.pending {
		r.buffered -= len(recs)
		delete(r.pending, id)
	}
	return n
}

// Flatten returns the group's records in stored-log order: writes first,
// then the commit record.
func (g *Group) Flatten() []*Record {
	out := make([]*Record, 0, len(g.Writes)+1)
	out = append(out, g.Writes...)
	return append(out, g.Commit)
}

// AppendEncoded appends the group's records in stored-log order to dst
// and returns the extended slice — Flatten + AppendEncoded without the
// intermediate slice, for the commit hot path.
func (g *Group) AppendEncoded(dst []byte) []byte {
	for _, rec := range g.Writes {
		dst = AppendEncoded(dst, rec)
	}
	return AppendEncoded(dst, g.Commit)
}

// EncodedSize reports the group's total stored-log size.
func (g *Group) EncodedSize() int {
	n := EncodedSize(g.Commit)
	for _, rec := range g.Writes {
		n += EncodedSize(rec)
	}
	return n
}
