package wal

import "encoding/binary"

// LogScanner is a streaming frame tracker for an append path: feed it
// every byte written to a log device, in order, and it tells you whether
// the stream currently ends at a group boundary — no partial record, no
// transaction with buffered writes awaiting its commit — and the largest
// commit serial seen so far. A segmented log store uses it to roll
// segment files only at points where the prefix is a self-contained
// group sequence, which is what makes whole-segment truncation safe.
//
// The scanner trusts its input (it is fed the writer's own bytes, not a
// disk read-back), so it tracks framing only and skips checksums.
type LogScanner struct {
	hdr  [headerSize]byte
	hdrN int               // bytes of the current header buffered
	skip uint32            // after-image bytes still to consume
	open map[uint64]uint64 // txn id -> buffered write/delete records

	records   uint64
	maxSerial uint64
}

// Scan consumes the next chunk of appended bytes.
func (s *LogScanner) Scan(b []byte) {
	for len(b) > 0 {
		if s.skip > 0 {
			n := uint32(len(b))
			if n > s.skip {
				n = s.skip
			}
			s.skip -= n
			b = b[n:]
			continue
		}
		n := copy(s.hdr[s.hdrN:], b)
		s.hdrN += n
		b = b[n:]
		if s.hdrN < headerSize {
			return
		}
		s.hdrN = 0
		s.skip = binary.LittleEndian.Uint32(s.hdr[4:])
		s.records++
		txn := binary.LittleEndian.Uint64(s.hdr[9:])
		switch Type(s.hdr[8]) {
		case TypeWrite, TypeDelete:
			if s.open == nil {
				s.open = make(map[uint64]uint64)
			}
			s.open[txn]++
		case TypeCommit, TypeAbort:
			delete(s.open, txn)
			if Type(s.hdr[8]) == TypeCommit {
				if serial := binary.LittleEndian.Uint64(s.hdr[17:]); serial > s.maxSerial {
					s.maxSerial = serial
				}
			}
		case TypeHeartbeat:
			// stateless keep-alive
		}
	}
}

// AtBoundary reports whether everything scanned so far forms a
// self-contained group sequence: no record is cut mid-frame and every
// transaction with buffered writes has committed or aborted.
func (s *LogScanner) AtBoundary() bool {
	return s.hdrN == 0 && s.skip == 0 && len(s.open) == 0
}

// MaxSerial reports the largest commit SerialOrder scanned so far. It is
// cumulative across segment rolls by design: sealing a segment with a
// serial ≥ any commit it contains only makes truncation keep the segment
// longer than strictly necessary, never drop it too early.
func (s *LogScanner) MaxSerial() uint64 { return s.maxSerial }

// Records reports how many complete record headers have been scanned.
func (s *LogScanner) Records() uint64 { return s.records }
