package wal

import (
	"math/rand"
	"testing"
)

// groupStream encodes a few transactions and returns the byte stream
// plus the set of offsets that are group boundaries (no partial frame,
// no uncommitted transaction).
func groupStream() (stream []byte, boundaries map[int]bool, maxSerial uint64) {
	boundaries = map[int]bool{0: true}
	add := func(recs ...*Record) {
		for _, r := range recs {
			stream = AppendEncoded(stream, r)
		}
		boundaries[len(stream)] = true
	}
	add(&Record{Type: TypeHeartbeat})
	add(
		&Record{Type: TypeWrite, TxnID: 1, ObjectID: 10, AfterImage: []byte("aa")},
		&Record{Type: TypeWrite, TxnID: 1, ObjectID: 11, AfterImage: []byte("bbb")},
		&Record{Type: TypeCommit, TxnID: 1, SerialOrder: 1, CommitTS: 5},
	)
	add(
		&Record{Type: TypeDelete, TxnID: 2, ObjectID: 10},
		&Record{Type: TypeCommit, TxnID: 2, SerialOrder: 2, CommitTS: 6},
	)
	// An aborted transaction closes its group too.
	add(
		&Record{Type: TypeWrite, TxnID: 3, ObjectID: 12, AfterImage: []byte("dropped")},
		&Record{Type: TypeAbort, TxnID: 3},
	)
	// Interleaved transactions: the boundary is only after both commit.
	add(
		&Record{Type: TypeWrite, TxnID: 4, ObjectID: 13, AfterImage: []byte("x")},
		&Record{Type: TypeWrite, TxnID: 5, ObjectID: 14, AfterImage: []byte("y")},
		&Record{Type: TypeCommit, TxnID: 4, SerialOrder: 3, CommitTS: 7},
		&Record{Type: TypeCommit, TxnID: 5, SerialOrder: 4, CommitTS: 8},
	)
	return stream, boundaries, 4
}

func TestLogScannerBoundariesByteAtATime(t *testing.T) {
	stream, boundaries, maxSerial := groupStream()
	var s LogScanner
	if !s.AtBoundary() {
		t.Fatal("empty scanner must be at a boundary")
	}
	for i := 0; i < len(stream); i++ {
		s.Scan(stream[i : i+1])
		if got, want := s.AtBoundary(), boundaries[i+1]; got != want {
			t.Fatalf("offset %d: AtBoundary = %v, want %v", i+1, got, want)
		}
	}
	if s.MaxSerial() != maxSerial {
		t.Fatalf("MaxSerial = %d, want %d", s.MaxSerial(), maxSerial)
	}
}

func TestLogScannerChunkingInvariant(t *testing.T) {
	stream, boundaries, maxSerial := groupStream()
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		var s LogScanner
		for off := 0; off < len(stream); {
			n := 1 + rng.Intn(len(stream)-off)
			s.Scan(stream[off : off+n])
			off += n
			if got, want := s.AtBoundary(), boundaries[off]; got != want {
				t.Fatalf("trial %d offset %d: AtBoundary = %v, want %v", trial, off, got, want)
			}
		}
		if s.MaxSerial() != maxSerial {
			t.Fatalf("trial %d: MaxSerial = %d, want %d", trial, s.MaxSerial(), maxSerial)
		}
	}
}

func TestLogScannerMidWriteNotBoundary(t *testing.T) {
	rec := AppendEncoded(nil, &Record{Type: TypeWrite, TxnID: 9, ObjectID: 1, AfterImage: make([]byte, 100)})
	var s LogScanner
	s.Scan(rec[:headerSize+10]) // header complete, image partial
	if s.AtBoundary() {
		t.Fatal("mid-image must not be a boundary")
	}
	s.Scan(rec[headerSize+10:])
	if s.AtBoundary() {
		t.Fatal("uncommitted write must not be a boundary")
	}
	s.Scan(AppendEncoded(nil, &Record{Type: TypeCommit, TxnID: 9, SerialOrder: 1}))
	if !s.AtBoundary() {
		t.Fatal("commit must close the group")
	}
	if s.Records() != 2 {
		t.Fatalf("Records = %d, want 2", s.Records())
	}
}
