package wal

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/store"
)

// randomLogUniqueTS is randomLog with one difference: commit timestamps
// are a random permutation, so no two transactions share one — the real
// engine's serialization timestamps are unique per transaction. Suffix
// replay reorders groups across the watermark split, which commutes
// under last-writer-wins only when conflicting groups have distinct
// timestamps; randomLog's deliberate collisions would test an ordering
// no engine-written log contains.
func randomLogUniqueTS(rng *rand.Rand, txns, idDomain int, interleave bool) []byte {
	logBytes := randomLog(rng, txns, idDomain, interleave)
	perm := rng.Perm(txns * 8)
	var out []byte
	r := bytes.NewReader(logBytes)
	for r.Len() > 0 {
		rec, err := Decode(r)
		if err != nil {
			panic(err)
		}
		if rec.Type == TypeCommit {
			rec.CommitTS = uint64(1 + perm[rec.SerialOrder])
		}
		out = AppendEncoded(out, rec)
	}
	return out
}

// replayPrefix applies to db exactly the committed writes a fuzzy
// checkpoint is guaranteed to contain: those whose group serial is at or
// below the watermark of the object's stripe. It mirrors RecoverSuffix's
// apply semantics (buffer per transaction, last-writer-wins timestamps,
// tombstones) with the filter inverted.
func replayPrefix(t *testing.T, logBytes []byte, db *store.Store, wm *StripeWatermarks) {
	t.Helper()
	pending := make(map[uint64][]*Record)
	r := bytes.NewReader(logBytes)
	for r.Len() > 0 {
		rec, err := Decode(r)
		if err != nil {
			t.Fatal(err)
		}
		switch rec.Type {
		case TypeWrite, TypeDelete:
			pending[uint64(rec.TxnID)] = append(pending[uint64(rec.TxnID)], rec)
		case TypeAbort:
			delete(pending, uint64(rec.TxnID))
		case TypeCommit:
			for _, w := range pending[uint64(rec.TxnID)] {
				if rec.SerialOrder > wm.For(w.ObjectID) {
					continue
				}
				if w.Type == TypeDelete {
					db.ApplyDelete(w.ObjectID, rec.CommitTS)
					continue
				}
				if _, wts, ok := db.Timestamps(w.ObjectID); ok && wts > rec.CommitTS {
					continue
				}
				db.Apply(w.ObjectID, w.AfterImage, rec.CommitTS)
			}
			delete(pending, uint64(rec.TxnID))
		}
	}
}

// TestPropertySuffixReplayEquivalence is the replay half of the fuzzy
// checkpoint contract: for any log and any per-stripe watermark vector,
// (state guaranteed by the checkpoint at those watermarks) + (suffix
// replay filtered by them) equals a full sequential replay.
func TestPropertySuffixReplayEquivalence(t *testing.T) {
	totalSkipped := 0
	f := func(seed int64, inter bool) bool {
		rng := rand.New(rand.NewSource(seed))
		logBytes := randomLogUniqueTS(rng, 20+rng.Intn(40), 1+rng.Intn(12), inter)

		full := store.New()
		fullStats, err := Recover(bytes.NewReader(logBytes), full)
		if err != nil {
			t.Fatal(err)
		}

		marks := make([]uint64, 8)
		for i := range marks {
			marks[i] = uint64(rng.Intn(int(fullStats.LastSerial) + 2))
		}
		wm := NewStripeWatermarks(marks)

		snap := store.New()
		replayPrefix(t, logBytes, snap, wm)
		st, err := RecoverSuffix(bytes.NewReader(logBytes), snap, wm)
		if err != nil {
			t.Fatal(err)
		}
		totalSkipped += st.WritesSkipped
		if st.LastSerial != fullStats.LastSerial {
			t.Fatalf("suffix LastSerial = %d, full = %d", st.LastSerial, fullStats.LastSerial)
		}
		if snap.Checksum() != full.Checksum() {
			t.Logf("seed=%d marks=%v", seed, marks)
			return false
		}

		// The parallel suffix pass agrees with the sequential one.
		psnap := store.New()
		replayPrefix(t, logBytes, psnap, wm)
		pst, err := ParallelRecoverSuffix(bytes.NewReader(logBytes), psnap, 4, wm)
		if err != nil {
			t.Fatal(err)
		}
		if psnap.Checksum() != full.Checksum() {
			t.Logf("parallel: seed=%d marks=%v", seed, marks)
			return false
		}
		if pst.WritesSkipped != st.WritesSkipped {
			t.Fatalf("WritesSkipped: parallel %d, sequential %d", pst.WritesSkipped, st.WritesSkipped)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
	if totalSkipped == 0 {
		t.Fatal("watermark filter never engaged across all trials")
	}
}

func TestSuffixReplayNilWatermarksIsFullReplay(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	logBytes := randomLog(rng, 30, 8, true)
	a, b := store.New(), store.New()
	sa, err := Recover(bytes.NewReader(logBytes), a)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := RecoverSuffix(bytes.NewReader(logBytes), b, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.Checksum() != b.Checksum() || sa != sb {
		t.Fatalf("nil-watermark suffix differs: %+v vs %+v", sa, sb)
	}
	if sb.WritesSkipped != 0 {
		t.Fatalf("WritesSkipped = %d without a filter", sb.WritesSkipped)
	}
}

// TestSuffixReplayMaxWatermarkSkipsEverything: with every mark at the
// last serial the checkpoint covers the whole log; replay must change
// nothing and apply nothing.
func TestSuffixReplayMaxWatermarkSkipsEverything(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	logBytes := randomLog(rng, 30, 8, false)
	full := store.New()
	fullStats, err := Recover(bytes.NewReader(logBytes), full)
	if err != nil {
		t.Fatal(err)
	}
	marks := make([]uint64, 4)
	for i := range marks {
		marks[i] = fullStats.LastSerial
	}
	before := full.Checksum()
	st, err := RecoverSuffix(bytes.NewReader(logBytes), full, NewStripeWatermarks(marks))
	if err != nil {
		t.Fatal(err)
	}
	if st.WritesApplied != 0 {
		t.Fatalf("WritesApplied = %d, want 0", st.WritesApplied)
	}
	if st.LastSerial != fullStats.LastSerial {
		t.Fatalf("LastSerial = %d, want %d (commits still advance it)", st.LastSerial, fullStats.LastSerial)
	}
	if full.Checksum() != before {
		t.Fatal("fully-covered replay mutated the store")
	}
}
